#include "trace/trace.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cctype>
#include <chrono>
#include <cstring>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "service/engine.hpp"
#include "service/metrics.hpp"
#include "trace/chrome_trace.hpp"
#include "trace/collector.hpp"
#include "trace/export.hpp"
#include "trace/prometheus.hpp"
#include "trace/sampler.hpp"

namespace mpct::trace {
namespace {

/// The Tracer is a process-wide singleton shared by every test in this
/// binary: each test starts from a disabled, empty, default-capacity
/// state and leaves it that way.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override { reset(Tracer::kDefaultCapacity); }
  void TearDown() override { reset(Tracer::kDefaultCapacity); }

  static void reset(std::size_t capacity) {
    Tracer& tracer = Tracer::instance();
    tracer.disable();
    tracer.set_capacity_per_thread(capacity);
    tracer.clear();
  }
};

const Span* find_span(const TraceSnapshot& snap, std::string_view name) {
  for (const Span& span : snap.spans) {
    if (span.name != nullptr && name == span.name) return &span;
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// Recording semantics

TEST_F(TraceTest, DisabledTracerRecordsNothing) {
  ASSERT_FALSE(enabled());
  {
    ScopedSpan span("never", Category::Core);
    EXPECT_FALSE(span.active());
    span.annotate("x", 1);
  }
  const auto t0 = std::chrono::steady_clock::now();
  emit_span("never.interval", Category::Queue, t0, t0);
  emit_instant("never.instant", Category::Mark);
  profile_count(ProfilePoint::ClassifyFast);
  { ProfileTimer timer(ProfilePoint::NocReroute); }

  const TraceSnapshot snap = Tracer::instance().snapshot();
  EXPECT_TRUE(snap.spans.empty());
  EXPECT_EQ(snap.dropped, 0u);
  for (const ProfileTotals& totals : snap.profile) {
    EXPECT_EQ(totals.calls, 0u);
    EXPECT_EQ(totals.total_ns, 0);
  }
}

TEST_F(TraceTest, NestedSpansLinkParentAndStayOrdered) {
  Tracer::instance().enable();
  {
    ScopedSpan outer("outer", Category::Core);
    EXPECT_TRUE(outer.active());
    {
      ScopedSpan inner("inner", Category::Cost, "cells", 42);
      EXPECT_TRUE(inner.active());
    }
  }
  Tracer::instance().disable();

  const TraceSnapshot snap = Tracer::instance().snapshot();
  const Span* outer = find_span(snap, "outer");
  const Span* inner = find_span(snap, "inner");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);

  EXPECT_NE(outer->id, 0u);
  EXPECT_NE(inner->id, 0u);
  EXPECT_NE(outer->id, inner->id);
  EXPECT_EQ(outer->parent, 0u);           // root
  EXPECT_EQ(inner->parent, outer->id);    // nested
  EXPECT_EQ(outer->thread, inner->thread);
  EXPECT_EQ(outer->category, Category::Core);
  EXPECT_EQ(inner->category, Category::Cost);
  ASSERT_NE(inner->arg_name, nullptr);
  EXPECT_STREQ(inner->arg_name, "cells");
  EXPECT_EQ(inner->arg, 42);

  // The inner interval sits inside the outer one.
  EXPECT_GE(outer->start_ns, 0);
  EXPECT_GE(outer->dur_ns, 0);
  EXPECT_GE(inner->start_ns, outer->start_ns);
  EXPECT_LE(inner->start_ns + inner->dur_ns,
            outer->start_ns + outer->dur_ns);
  EXPECT_FALSE(outer->instant());
}

TEST_F(TraceTest, EmitSpanReproducesTheMeasuredInterval) {
  Tracer::instance().enable();
  const auto t0 = std::chrono::steady_clock::now();
  // Burn a little time so the interval is nonzero.
  volatile int sink = 0;
  for (int i = 0; i < 10000; ++i) sink = sink + i;
  const auto t1 = std::chrono::steady_clock::now();
  emit_span("queue.wait", Category::Queue, t0, t1, "depth", 7);
  Tracer::instance().disable();

  const TraceSnapshot snap = Tracer::instance().snapshot();
  const Span* span = find_span(snap, "queue.wait");
  ASSERT_NE(span, nullptr);
  const std::int64_t expected =
      std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count();
  EXPECT_EQ(span->dur_ns, expected);
  EXPECT_GE(span->start_ns, 0);
  EXPECT_EQ(span->category, Category::Queue);
  ASSERT_NE(span->arg_name, nullptr);
  EXPECT_STREQ(span->arg_name, "depth");
  EXPECT_EQ(span->arg, 7);
}

TEST_F(TraceTest, InstantEventsCarryTheSentinelDuration) {
  Tracer::instance().enable();
  emit_instant("deadline.expired", Category::Mark, "reason", 2);
  Tracer::instance().disable();

  const TraceSnapshot snap = Tracer::instance().snapshot();
  const Span* span = find_span(snap, "deadline.expired");
  ASSERT_NE(span, nullptr);
  EXPECT_EQ(span->dur_ns, Span::kInstant);
  EXPECT_TRUE(span->instant());
  EXPECT_EQ(span->category, Category::Mark);
  EXPECT_EQ(span->arg, 2);
}

TEST_F(TraceTest, RingWrapDropsOldestSpansAndCountsThem) {
  reset(8);  // tiny ring so 20 spans must wrap
  Tracer::instance().enable();
  for (int i = 0; i < 20; ++i) {
    ScopedSpan span("wrapped", Category::Sweep, "i", i);
  }
  Tracer::instance().disable();

  const TraceSnapshot snap = Tracer::instance().snapshot();
  // Quiescent arithmetic: head = 20, capacity 8 keeps indices [12, 20),
  // and the in-flight-writer guard discards one more -> 7 survivors,
  // 13 reported dropped.  Survivors are the NEWEST spans, oldest first.
  ASSERT_EQ(snap.spans.size(), 7u);
  EXPECT_EQ(snap.dropped, 13u);
  for (std::size_t k = 0; k < snap.spans.size(); ++k) {
    EXPECT_EQ(snap.spans[k].arg, static_cast<std::int64_t>(13 + k));
  }
}

TEST_F(TraceTest, ClearDropsSpansAndProfileTotals) {
  Tracer::instance().enable();
  { ScopedSpan span("gone", Category::Core); }
  profile_count(ProfilePoint::SweepCell);
  Tracer::instance().clear();
  { ScopedSpan span("kept", Category::Core); }
  Tracer::instance().disable();

  const TraceSnapshot snap = Tracer::instance().snapshot();
  EXPECT_EQ(find_span(snap, "gone"), nullptr);
  EXPECT_NE(find_span(snap, "kept"), nullptr);
  EXPECT_EQ(snap.profile[static_cast<std::size_t>(ProfilePoint::SweepCell)]
                .calls,
            0u);
}

TEST_F(TraceTest, ProfileCountersAccumulateCallsAndTime) {
  Tracer::instance().enable();
  profile_count(ProfilePoint::ClassifyFast);
  profile_count(ProfilePoint::ClassifyFast);
  profile_count(ProfilePoint::ClassifyFast);
  {
    ProfileTimer timer(ProfilePoint::NocReroute);
    volatile int sink = 0;
    for (int i = 0; i < 10000; ++i) sink = sink + i;
  }
  Tracer::instance().disable();

  const TraceSnapshot snap = Tracer::instance().snapshot();
  const auto& classify =
      snap.profile[static_cast<std::size_t>(ProfilePoint::ClassifyFast)];
  EXPECT_EQ(classify.calls, 3u);
  EXPECT_EQ(classify.total_ns, 0);  // count-only point
  const auto& reroute =
      snap.profile[static_cast<std::size_t>(ProfilePoint::NocReroute)];
  EXPECT_EQ(reroute.calls, 1u);
  EXPECT_GT(reroute.total_ns, 0);
}

// ---------------------------------------------------------------------------
// Snapshot determinism + exporters

TEST_F(TraceTest, SnapshotIsSortedAndExportsDeterministically) {
  Tracer::instance().enable();
  { ScopedSpan span("main.a", Category::Core); }
  std::thread other([] {
    ScopedSpan span("other.b", Category::Cost);
  });
  other.join();
  { ScopedSpan span("main.c", Category::Core); }
  Tracer::instance().disable();

  const TraceSnapshot first = Tracer::instance().snapshot();
  const TraceSnapshot second = Tracer::instance().snapshot();
  ASSERT_EQ(first.spans.size(), 3u);
  EXPECT_GE(first.thread_count, 2u);
  EXPECT_TRUE(std::is_sorted(first.spans.begin(), first.spans.end(),
                             [](const Span& a, const Span& b) {
                               if (a.start_ns != b.start_ns)
                                 return a.start_ns < b.start_ns;
                               return a.id < b.id;
                             }));
  // A frozen buffer renders byte-identically, every time.
  EXPECT_EQ(to_chrome_json(first), to_chrome_json(second));
}

/// Minimal recursive-descent JSON validator: accepts exactly the
/// grammar the Chrome exporter can emit, rejecting anything torn or
/// unbalanced.  ~RFC 8259 minus number edge cases we never produce.
class JsonChecker {
 public:
  explicit JsonChecker(std::string_view text) : text_(text) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == text_.size();
  }

 private:
  bool value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default:  return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    for (;;) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    for (;;) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') { ++pos_; return true; }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
      }
      ++pos_;
    }
    return false;  // unterminated
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool literal(const char* word) {
    const std::size_t len = std::strlen(word);
    if (text_.compare(pos_, len, word) != 0) return false;
    pos_ += len;
    return true;
  }

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

std::size_t count_occurrences(std::string_view text, std::string_view what) {
  std::size_t count = 0;
  for (std::size_t at = text.find(what); at != std::string_view::npos;
       at = text.find(what, at + what.size())) {
    ++count;
  }
  return count;
}

TEST_F(TraceTest, ChromeJsonIsStructurallyValid) {
  Tracer::instance().enable();
  {
    ScopedSpan outer("outer \"quoted\"\n", Category::Engine);
    ScopedSpan inner("inner", Category::Chunk, "cells", 17);
  }
  emit_instant("deadline.expired", Category::Mark);
  Tracer::instance().disable();

  const std::string json = to_chrome_json(Tracer::instance().snapshot());
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  // Trace-event envelope Perfetto expects.
  EXPECT_EQ(json.rfind("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[", 0), 0u);
  EXPECT_EQ(json.substr(json.size() - 2), "]}");
  // Two complete spans (ph X with ts+dur), one instant (ph i).
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"X\""), 2u);
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"i\",\"s\":\"t\""), 1u);
  EXPECT_EQ(count_occurrences(json, "\"name\":"), 3u);
  EXPECT_EQ(count_occurrences(json, "\"pid\":1,\"tid\":"), 3u);
  EXPECT_EQ(count_occurrences(json, "\"args\":{\"span\":"), 3u);
  EXPECT_EQ(count_occurrences(json, "\"dur\":"), 2u);  // instants omit dur
  EXPECT_NE(json.find("\"cells\":17"), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"chunk\""), std::string::npos);
  // The hostile name was escaped, never emitted raw.
  EXPECT_NE(json.find("outer \\\"quoted\\\"\\n"), std::string::npos);
}

TEST_F(TraceTest, EmptySnapshotExportsAnEmptyValidDocument) {
  const std::string json = to_chrome_json(Tracer::instance().snapshot());
  EXPECT_TRUE(JsonChecker(json).valid());
  EXPECT_EQ(json, "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[]}");
}

// ---------------------------------------------------------------------------
// Prometheus exposition

TEST_F(TraceTest, PromWriterRendersProfileTotals) {
  TraceSnapshot snap;
  snap.profile[static_cast<std::size_t>(ProfilePoint::ClassifyFast)] = {5, 0};
  snap.profile[static_cast<std::size_t>(ProfilePoint::NocReroute)] = {2, 900};

  PromWriter writer;
  render_profile(writer, snap);
  const std::string& text = writer.str();
  EXPECT_NE(text.find("# TYPE mpct_profile_calls_total counter"),
            std::string::npos);
  EXPECT_NE(
      text.find("mpct_profile_calls_total{point=\"classify_fast\"} 5"),
      std::string::npos);
  EXPECT_NE(text.find("mpct_profile_ns_total{point=\"noc_reroute\"} 900"),
            std::string::npos);
}

/// Pull every `metric{...,le="..."} value` sample for one histogram
/// series out of an exposition document, in emission order.
std::vector<std::uint64_t> bucket_values(const std::string& text,
                                         const std::string& prefix) {
  std::vector<std::uint64_t> values;
  for (std::size_t at = text.find(prefix); at != std::string::npos;
       at = text.find(prefix, at + prefix.size())) {
    const std::size_t space = text.find(' ', at);
    const std::size_t eol = text.find('\n', at);
    if (space == std::string::npos || eol == std::string::npos) break;
    values.push_back(static_cast<std::uint64_t>(
        std::stoull(text.substr(space + 1, eol - space - 1))));
    at = eol;
  }
  return values;
}

TEST_F(TraceTest, RegistryPrometheusExpositionIsWellFormed) {
  service::MetricsRegistry metrics;
  metrics.submitted.add(4);
  metrics.completed.add(3);
  metrics.failed.add(1);
  metrics.queue_depth.set(2);
  metrics.batch_sizes.record(2);
  metrics.batch_sizes.record(1);
  // 1 ns and 3 ns land in buckets 0 and 1; 5 us in bucket 12.
  metrics.latency(service::RequestType::Classify)
      .record(std::chrono::nanoseconds(1));
  metrics.latency(service::RequestType::Classify)
      .record(std::chrono::nanoseconds(3));
  metrics.latency(service::RequestType::Classify)
      .record(std::chrono::microseconds(5));

  service::CacheStats cache;
  cache.hits = 7;
  cache.entries = 3;
  const std::string text = metrics.to_prometheus(cache);

  EXPECT_NE(text.find("# TYPE mpct_requests_submitted_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("mpct_requests_submitted_total 4"), std::string::npos);
  EXPECT_NE(text.find("# TYPE mpct_queue_depth gauge"), std::string::npos);
  EXPECT_NE(text.find("mpct_queue_depth 2"), std::string::npos);
  EXPECT_NE(text.find("mpct_cache_entries 3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE mpct_request_latency_seconds histogram"),
            std::string::npos);
  // Pinned le bound of bucket 0: (2^1 - 1) ns = 1e-09 s.
  EXPECT_NE(text.find("mpct_request_latency_seconds_bucket{type=\"classify\""
                      ",le=\"1e-09\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("mpct_request_latency_seconds_sum{type=\"classify\"}"),
            std::string::npos);
  EXPECT_NE(text.find("mpct_request_latency_seconds_count{type=\"classify\"}"
                      " 3"),
            std::string::npos);

  // Cumulative buckets are nondecreasing and the +Inf bucket equals the
  // series count, for every request type.
  for (std::size_t t = 0; t < service::kRequestTypeCount; ++t) {
    const std::string label(
        to_string(static_cast<service::RequestType>(t)));
    const std::vector<std::uint64_t> buckets = bucket_values(
        text, "mpct_request_latency_seconds_bucket{type=\"" + label + "\"");
    ASSERT_FALSE(buckets.empty()) << label;
    EXPECT_TRUE(std::is_sorted(buckets.begin(), buckets.end())) << label;
    const std::vector<std::uint64_t> counts = bucket_values(
        text, "mpct_request_latency_seconds_count{type=\"" + label + "\"");
    ASSERT_EQ(counts.size(), 1u) << label;
    EXPECT_EQ(buckets.back(), counts.front()) << label;  // le="+Inf"
  }

  // Profile totals only appear on request.
  EXPECT_EQ(text.find("mpct_profile_calls_total"), std::string::npos);
  Tracer::instance().enable();
  profile_count(ProfilePoint::OmegaRoute);
  Tracer::instance().disable();
  const std::string with_profile = metrics.to_prometheus(cache, true);
  EXPECT_NE(
      with_profile.find("mpct_profile_calls_total{point=\"omega_route\"} 1"),
      std::string::npos);
}

// ---------------------------------------------------------------------------
// Trace context propagation

TEST_F(TraceTest, TraceContextScopeStampsSpansAndRestores) {
  Tracer::instance().enable();
  EXPECT_EQ(current_trace_id(), 0u);
  { ScopedSpan span("ctx.none", Category::Core); }
  {
    TraceContextScope outer(42);
    EXPECT_EQ(current_trace_id(), 42u);
    { ScopedSpan span("ctx.outer", Category::Core); }
    {
      TraceContextScope inner(43);
      EXPECT_EQ(current_trace_id(), 43u);
      { ScopedSpan span("ctx.inner", Category::Core); }
      emit_instant("ctx.mark", Category::Mark);
    }
    // The inner scope restored the outer context, not zero.
    EXPECT_EQ(current_trace_id(), 42u);
    { ScopedSpan span("ctx.again", Category::Core); }
  }
  EXPECT_EQ(current_trace_id(), 0u);
  Tracer::instance().disable();

  const TraceSnapshot snap = Tracer::instance().snapshot();
  EXPECT_EQ(find_span(snap, "ctx.none")->trace_id, 0u);
  EXPECT_EQ(find_span(snap, "ctx.outer")->trace_id, 42u);
  EXPECT_EQ(find_span(snap, "ctx.inner")->trace_id, 43u);
  EXPECT_EQ(find_span(snap, "ctx.mark")->trace_id, 43u);
  EXPECT_EQ(find_span(snap, "ctx.again")->trace_id, 42u);
}

// ---------------------------------------------------------------------------
// Head/tail sampling (sampler.hpp + ExportFilter)

TEST(TraceSampler, HeadDecisionIsDeterministicAndFleetWide) {
  const SamplerPolicy policy = SamplerPolicy::probabilistic(0.25);
  std::size_t kept = 0;
  for (std::uint64_t id = 1; id <= 100000; ++id) {
    const bool first = head_keep(policy, id);
    // Pure function of (policy, id): every node in the fleet lands on
    // the same side for the same trace, call after call.
    EXPECT_EQ(head_keep(policy, id), first);
    EXPECT_EQ(first, static_cast<double>(mix_trace_id(id)) <
                         0.25 * 18446744073709551616.0);
    if (first) ++kept;
  }
  // splitmix64 is uniform: the keep fraction tracks the probability.
  EXPECT_GT(kept, 23000u);
  EXPECT_LT(kept, 27000u);

  EXPECT_TRUE(head_keep(SamplerPolicy::always(), 7));
  SamplerPolicy never;
  never.mode = SamplerPolicy::Mode::Never;
  EXPECT_FALSE(head_keep(never, 7));
  EXPECT_TRUE(head_keep(SamplerPolicy::probabilistic(1.0), 99));
  EXPECT_FALSE(head_keep(SamplerPolicy::probabilistic(0.0), 99));
}

TEST(TraceSampler, TailTriggersFireOnErrorsExpiryHedgesAndSlowSpans) {
  SamplerPolicy policy = SamplerPolicy::probabilistic(0.0);
  Span healthy;
  healthy.name = "execute.recommend";
  healthy.dur_ns = 100;
  EXPECT_FALSE(tail_trigger(policy, healthy));
  for (const char* name : {"deadline.expired", "request.failed",
                           "cluster.hedge", "cluster.failover"}) {
    Span mark;
    mark.name = name;
    mark.dur_ns = Span::kInstant;
    EXPECT_TRUE(tail_trigger(policy, mark)) << name;
  }
  // The latency trigger is off by default and never fires on instants
  // (kInstant is a sentinel, not a duration).
  policy.slow_span_ns = 1000;
  EXPECT_FALSE(tail_trigger(policy, healthy));
  healthy.dur_ns = 1000;
  EXPECT_TRUE(tail_trigger(policy, healthy));
  Span instant;
  instant.name = "cache.note";
  instant.dur_ns = Span::kInstant;
  EXPECT_FALSE(tail_trigger(policy, instant));
}

TEST(TraceSampler, ExportFilterRescuesTriggeredTracesAtZeroProbability) {
  ExportFilter filter(SamplerPolicy::probabilistic(0.0));
  Span healthy;
  healthy.name = "execute.classify";
  healthy.id = 1;
  healthy.trace_id = 100;
  healthy.dur_ns = 10;
  Span before;
  before.name = "engine.submit";
  before.id = 2;
  before.trace_id = 200;
  before.dur_ns = 10;
  Span failed;
  failed.name = "request.failed";
  failed.id = 3;
  failed.trace_id = 200;
  failed.dur_ns = Span::kInstant;

  // The whole of trace 200 comes back — including the span recorded
  // *before* its trigger — while trace 100 is sampled out.
  const std::vector<ExportSpan> kept =
      filter.apply({healthy, before, failed});
  ASSERT_EQ(kept.size(), 2u);
  EXPECT_EQ(kept[0].name, "engine.submit");
  EXPECT_EQ(kept[1].name, "request.failed");
  EXPECT_EQ(filter.sampled_out(), 1u);

  // The force-keep is sticky: later batches of trace 200 still export.
  Span later;
  later.name = "execute.classify";
  later.id = 4;
  later.trace_id = 200;
  later.dur_ns = 5;
  Span other;
  other.name = "execute.classify";
  other.id = 5;
  other.trace_id = 100;
  other.dur_ns = 5;
  const std::vector<ExportSpan> second = filter.apply({later, other});
  ASSERT_EQ(second.size(), 1u);
  EXPECT_EQ(second[0].trace_id, 200u);
  EXPECT_EQ(filter.sampled_out(), 2u);
}

// ---------------------------------------------------------------------------
// Exporter drain cursor (Tracer::drain) vs on-demand snapshots

TEST_F(TraceTest, DrainIsIncrementalAndLeavesSnapshotsAlone) {
  Tracer::instance().enable();
  { ScopedSpan span("drain.a", Category::Core); }
  { ScopedSpan span("drain.b", Category::Core); }
  Tracer::instance().disable();

  EXPECT_EQ(Tracer::instance().snapshot().spans.size(), 2u);
  const Tracer::DrainResult first = Tracer::instance().drain();
  EXPECT_EQ(first.spans.size(), 2u);
  EXPECT_EQ(first.dropped, 0u);
  // The cursor belongs to drain() alone: a snapshot taken after the
  // drain still sees everything the ring holds...
  EXPECT_EQ(Tracer::instance().snapshot().spans.size(), 2u);
  // ...and draining again returns nothing — no double export.
  EXPECT_TRUE(Tracer::instance().drain().spans.empty());

  Tracer::instance().enable();
  { ScopedSpan span("drain.c", Category::Core); }
  Tracer::instance().disable();
  const Tracer::DrainResult second = Tracer::instance().drain();
  ASSERT_EQ(second.spans.size(), 1u);
  EXPECT_STREQ(second.spans[0].name, "drain.c");
  EXPECT_EQ(Tracer::instance().snapshot().spans.size(), 3u);
}

TEST_F(TraceTest, DrainCountsRingWrapPastItsCursor) {
  reset(8);
  Tracer::instance().enable();
  for (int i = 0; i < 20; ++i) {
    ScopedSpan span("wrapped", Category::Sweep, "i", i);
  }
  Tracer::instance().disable();

  // Same arithmetic as the snapshot wrap case: indices [0, 13) wrapped
  // past the cursor before the first drain, the newest 7 survive.
  const Tracer::DrainResult drained = Tracer::instance().drain();
  ASSERT_EQ(drained.spans.size(), 7u);
  EXPECT_EQ(drained.dropped, 13u);
  for (std::size_t k = 0; k < drained.spans.size(); ++k) {
    EXPECT_EQ(drained.spans[k].arg, static_cast<std::int64_t>(13 + k));
  }
  // Every loss was counted exactly once: a second drain is clean.
  const Tracer::DrainResult again = Tracer::instance().drain();
  EXPECT_TRUE(again.spans.empty());
  EXPECT_EQ(again.dropped, 0u);
}

/// The satellite regression test for the exporter cursor: drain() runs
/// against a live recorder with snapshots interleaved, and every span
/// must come back exactly once or be counted dropped — never twice,
/// never torn.  Runs under TSan in CI.
TEST_F(TraceTest, MidTrafficDrainNeverDoubleExportsAndAccountsExactly) {
  reset(512);  // small ring so the writer laps the exporter
  Tracer::instance().enable();
  constexpr int kPushed = 20000;
  std::thread writer([] {
    for (int i = 0; i < kPushed; ++i) {
      ScopedSpan span("drain.mid", Category::Core, "seq", i);
    }
  });

  std::vector<std::int64_t> seen;
  std::uint64_t dropped = 0;
  const auto absorb = [&seen, &dropped](const Tracer::DrainResult& result) {
    dropped += result.dropped;
    for (const Span& span : result.spans) {
      ASSERT_STREQ(span.name, "drain.mid");  // fully written, never torn
      ASSERT_STREQ(span.arg_name, "seq");
      ASSERT_GE(span.dur_ns, 0);
      seen.push_back(span.arg);
    }
  };
  for (int round = 0; round < 50; ++round) {
    absorb(Tracer::instance().drain());
    // On-demand dumps interleave with the stream without perturbing it.
    const TraceSnapshot snap = Tracer::instance().snapshot();
    for (const Span& span : snap.spans) {
      ASSERT_NE(span.name, nullptr);
    }
    std::this_thread::yield();
  }
  writer.join();
  Tracer::instance().disable();
  absorb(Tracer::instance().drain());

  // Strictly increasing sequence numbers: the cursor advanced past
  // everything it returned, so nothing was exported twice; and nothing
  // went missing either — exported once or counted dropped.
  for (std::size_t k = 1; k < seen.size(); ++k) {
    ASSERT_LT(seen[k - 1], seen[k]) << "span exported twice or reordered";
  }
  EXPECT_EQ(seen.size() + dropped, static_cast<std::size_t>(kPushed));
}

// ---------------------------------------------------------------------------
// Cross-fleet assembly (trace/collector.hpp)

TEST(TraceCollector, GroupsByTraceAlignsClocksAndFiltersProcessRows) {
  Collector collector;

  SpanBatch alpha;
  alpha.node = "alpha";
  alpha.send_ns = 1000;
  ExportSpan root;
  root.name = "alpha.root";
  root.id = 10;
  root.trace_id = 1;
  root.start_ns = 100;
  root.dur_ns = 50;
  root.category = Category::Engine;
  ExportSpan other;
  other.name = "alpha.other";
  other.id = 11;
  other.trace_id = 2;
  other.start_ns = 300;
  other.dur_ns = 10;
  other.category = Category::Engine;
  alpha.spans = {root, other};
  collector.ingest(alpha, 501000);  // offset(alpha) = 500000

  SpanBatch beta;
  beta.node = "beta";
  beta.send_ns = 2000;
  beta.dropped = 5;
  ExportSpan hop;
  hop.name = "beta.hop";
  hop.id = 20;
  hop.trace_id = 1;
  hop.start_ns = 100000;
  hop.dur_ns = 20;
  hop.category = Category::Cluster;
  beta.spans = {hop};
  collector.ingest(beta, 302000);  // offset(beta) = 300000

  // A later, slower batch must not loosen beta's offset: the one-way-
  // delay minimum keeps the tightest bound seen.
  SpanBatch beta_slow;
  beta_slow.node = "beta";
  beta_slow.send_ns = 3000;
  collector.ingest(beta_slow, 312000);  // delta 309000 > 300000: ignored

  const CollectorStats stats = collector.stats();
  EXPECT_EQ(stats.batches, 3u);
  EXPECT_EQ(stats.spans, 3u);
  EXPECT_EQ(stats.dropped, 5u);
  EXPECT_EQ(stats.nodes, 2u);
  EXPECT_EQ(collector.trace_ids(), (std::vector<std::uint64_t>{1, 2}));
  EXPECT_EQ(collector.node_count(1), 2u);
  EXPECT_EQ(collector.node_count(2), 1u);
  EXPECT_EQ(collector.node_count(99), 0u);
  EXPECT_EQ(collector.richest_trace(), 1u);  // the only two-node trace

  const std::string timeline = collector.assemble(1);
  EXPECT_TRUE(JsonChecker(timeline).valid()) << timeline;
  EXPECT_EQ(count_occurrences(timeline, "\"process_name\""), 2u);
  EXPECT_NE(timeline.find("\"name\":\"alpha\""), std::string::npos);
  EXPECT_NE(timeline.find("\"name\":\"beta\""), std::string::npos);
  // Clock alignment: beta's hop lands at 100000 + 300000 ns = 400 us,
  // alpha's root at 100 + 500000 ns = 500.1 us — so beta renders FIRST
  // even though its raw clock reads much later than alpha's.
  EXPECT_NE(timeline.find("\"ts\":400.000"), std::string::npos);
  EXPECT_NE(timeline.find("\"ts\":500.100"), std::string::npos);
  EXPECT_LT(timeline.find("beta.hop"), timeline.find("alpha.root"));
  EXPECT_NE(timeline.find("\"trace\":1"), std::string::npos);
  // The trace filter held: trace 2's span is not on this timeline.
  EXPECT_EQ(timeline.find("alpha.other"), std::string::npos);

  // A single-node trace renders only the contributing process row —
  // no empty rows for the rest of the fleet.
  const std::string solo = collector.assemble(2);
  EXPECT_TRUE(JsonChecker(solo).valid()) << solo;
  EXPECT_EQ(count_occurrences(solo, "\"process_name\""), 1u);
  EXPECT_NE(solo.find("\"name\":\"alpha\""), std::string::npos);
  EXPECT_EQ(solo.find("beta"), std::string::npos);
  EXPECT_NE(solo.find("alpha.other"), std::string::npos);

  EXPECT_EQ(collector.assemble(99), "");
  const std::string everything = collector.assemble_all();
  EXPECT_TRUE(JsonChecker(everything).valid());
  EXPECT_NE(everything.find("alpha.other"), std::string::npos);
  EXPECT_NE(everything.find("beta.hop"), std::string::npos);
}

}  // namespace
}  // namespace mpct::trace

// ---------------------------------------------------------------------------
// Engine integration: the traced request lifecycle (this suite also runs
// under TSan in CI, together with the mid-traffic snapshot test below).

namespace mpct::service {
namespace {

using trace::Category;
using trace::Span;
using trace::TraceSnapshot;
using trace::Tracer;

class EngineTraceTest : public ::testing::Test {
 protected:
  void SetUp() override { reset(); }
  void TearDown() override { reset(); }

  static void reset() {
    Tracer::instance().disable();
    Tracer::instance().set_capacity_per_thread(Tracer::kDefaultCapacity);
    Tracer::instance().clear();
  }
};

explore::SweepGrid traced_grid() {
  explore::SweepGrid grid;
  grid.n_values = {2, 4, 8, 16};
  grid.lut_budgets = {64, 4096};
  grid.objectives = {explore::Requirements::Objective::MinConfigBits,
                     explore::Requirements::Objective::MinArea};
  return grid;
}

std::vector<const Span*> spans_named(const TraceSnapshot& snap,
                                     std::string_view name) {
  std::vector<const Span*> out;
  for (const Span& span : snap.spans) {
    if (span.name != nullptr && name == span.name) out.push_back(&span);
  }
  return out;
}

/// The acceptance shape: one traced SweepRequest on a single worker
/// produces queue-wait, chunk-execute and merge spans that together fit
/// inside the end-to-end latency the engine itself recorded.
TEST_F(EngineTraceTest, SweepSpansAccountForRecordedLatency) {
  Tracer::instance().enable();
  EngineOptions options;
  options.worker_threads = 1;
  QueryEngine engine(options);
  QueryResponse response = engine.submit(SweepRequest{traced_grid()}).get();
  ASSERT_TRUE(response.ok()) << response.status.to_string();
  Tracer::instance().disable();

  const TraceSnapshot snap = Tracer::instance().snapshot();
  EXPECT_EQ(snap.dropped, 0u);

  const auto submits = spans_named(snap, "engine.submit");
  ASSERT_EQ(submits.size(), 1u);
  ASSERT_NE(submits[0]->arg_name, nullptr);
  EXPECT_STREQ(submits[0]->arg_name, "type");
  EXPECT_EQ(submits[0]->arg,
            static_cast<std::int64_t>(RequestType::Sweep));
  EXPECT_EQ(spans_named(snap, "engine.enqueue").size(), 1u);

  const auto probes = spans_named(snap, "cache.probe");
  ASSERT_EQ(probes.size(), 1u);
  EXPECT_STREQ(probes[0]->arg_name, "hit");
  EXPECT_EQ(probes[0]->arg, 0);  // cold cache

  const auto waits = spans_named(snap, "queue.wait");
  const auto chunks = spans_named(snap, "sweep.chunk");
  const auto merges = spans_named(snap, "sweep.merge");
  ASSERT_FALSE(waits.empty());
  ASSERT_FALSE(chunks.empty());
  ASSERT_EQ(merges.size(), 1u);
  EXPECT_EQ(waits.size(), chunks.size());  // one wait per dequeued chunk

  // With one worker the chunk and merge intervals are disjoint pieces of
  // the submit-to-completion window, so their sum can never exceed the
  // latency the engine recorded; every queue wait also fits inside it.
  const std::int64_t latency = response.latency.count();
  std::int64_t accounted = merges[0]->dur_ns;
  std::int64_t total_cells = 0;
  for (const Span* chunk : chunks) {
    EXPECT_EQ(chunk->category, Category::Chunk);
    ASSERT_NE(chunk->arg_name, nullptr);
    EXPECT_STREQ(chunk->arg_name, "cells");
    accounted += chunk->dur_ns;
    total_cells += chunk->arg;
  }
  EXPECT_EQ(total_cells,
            static_cast<std::int64_t>(traced_grid().cell_count()));
  EXPECT_GT(latency, 0);
  EXPECT_LE(accounted, latency);
  for (const Span* wait : waits) {
    EXPECT_EQ(wait->category, Category::Queue);
    EXPECT_LE(wait->dur_ns, latency);
  }
  // The merge ran after every chunk had closed — a sibling, not a child.
  for (const Span* chunk : chunks) {
    EXPECT_NE(merges[0]->parent, chunk->id);
    EXPECT_GE(merges[0]->start_ns, chunk->start_ns + chunk->dur_ns);
  }

  // And the whole trace exports as loadable Chrome JSON.
  const std::string json = trace::to_chrome_json(snap);
  EXPECT_TRUE(trace::JsonChecker(json).valid());
}

TEST_F(EngineTraceTest, CacheProbeAnnotatesHitAndMiss) {
  Tracer::instance().enable();
  EngineOptions options;
  options.worker_threads = 0;  // inline: deterministic span counts
  QueryEngine engine(options);
  RecommendRequest request;
  request.requirements.min_flexibility = 3;
  ASSERT_TRUE(engine.submit(Request(request)).get().ok());
  QueryResponse second = engine.submit(Request(request)).get();
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second.cache_hit);
  Tracer::instance().disable();

  const TraceSnapshot snap = Tracer::instance().snapshot();
  const auto probes = spans_named(snap, "cache.probe");
  ASSERT_EQ(probes.size(), 2u);
  EXPECT_EQ(probes[0]->arg, 0);  // miss, then
  EXPECT_EQ(probes[1]->arg, 1);  // hit
  // Both rounds run under an execute span (the hit resolves inside it),
  // and each probe is nested in its round's execute span.
  const auto executes = spans_named(snap, "execute.recommend");
  ASSERT_EQ(executes.size(), 2u);
  EXPECT_EQ(probes[0]->parent, executes[0]->id);
  EXPECT_EQ(probes[1]->parent, executes[1]->id);
}

TEST_F(EngineTraceTest, ExpiredDeadlineEmitsAnInstantMarker) {
  Tracer::instance().enable();
  EngineOptions options;
  options.worker_threads = 0;
  QueryEngine engine(options);
  QueryResponse response =
      engine
          .submit(Request(RecommendRequest{}),
                  Deadline::at_time(Clock::now() - std::chrono::seconds(1)))
          .get();
  EXPECT_EQ(response.status.code, StatusCode::DeadlineExceeded);
  Tracer::instance().disable();

  const TraceSnapshot snap = Tracer::instance().snapshot();
  const auto marks = spans_named(snap, "deadline.expired");
  ASSERT_EQ(marks.size(), 1u);
  EXPECT_TRUE(marks[0]->instant());
  EXPECT_EQ(marks[0]->category, Category::Mark);
}

/// Trace-id propagation across the submit boundary: the submitter's
/// context must reach every span the request produces, including the
/// queue waits and chunk spans recorded on pool worker threads.
TEST_F(EngineTraceTest, SubmitterTraceContextReachesWorkerSpans) {
  Tracer::instance().enable();
  EngineOptions options;
  options.worker_threads = 1;
  QueryEngine engine(options);
  QueryResponse response;
  {
    trace::TraceContextScope context(0xabcd);
    response = engine.submit(SweepRequest{traced_grid()}).get();
  }
  ASSERT_TRUE(response.ok()) << response.status.to_string();
  Tracer::instance().disable();

  const TraceSnapshot snap = Tracer::instance().snapshot();
  for (const char* name : {"engine.submit", "engine.enqueue", "queue.wait",
                           "sweep.chunk", "sweep.merge", "cache.probe"}) {
    const auto spans = spans_named(snap, name);
    ASSERT_FALSE(spans.empty()) << name;
    for (const Span* span : spans) {
      EXPECT_EQ(span->trace_id, 0xabcdu) << name;
    }
  }
}

// ---------------------------------------------------------------------------
// Mid-traffic consistency (the TSan target): snapshots taken while
// workers are recording must contain only fully-written spans, and the
// metrics histograms must never tear.

TEST_F(EngineTraceTest, MidTrafficSnapshotsAreInternallyConsistent) {
  Tracer::instance().disable();
  Tracer::instance().set_capacity_per_thread(512);  // force ring wrap
  Tracer::instance().clear();
  Tracer::instance().enable();

  EngineOptions options;
  options.worker_threads = 2;
  options.queue_capacity = 4096;
  QueryEngine engine(options);

  constexpr int kProducers = 2;
  constexpr int kPerProducer = 150;
  std::atomic<bool> failed{false};
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&engine, &failed, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        RecommendRequest request;
        // Vary the fingerprint so the cache serves hits AND misses.
        request.requirements.min_flexibility = (p * kPerProducer + i) % 7;
        request.top_k = static_cast<std::size_t>(i % 3);
        if (!engine.submit(Request(request)).get().ok()) {
          failed.store(true, std::memory_order_relaxed);
        }
      }
    });
  }

  const LatencyHistogram& recommend_latency =
      engine.metrics().latency(RequestType::Recommend);
  LatencyHistogram::Buckets previous = recommend_latency.buckets();
  for (int round = 0; round < 25; ++round) {
    const TraceSnapshot snap = Tracer::instance().snapshot();
    for (const Span& span : snap.spans) {
      // Discarded-slot arithmetic guarantees fully-written spans only.
      ASSERT_NE(span.name, nullptr);
      ASSERT_NE(span.id, 0u);
      ASSERT_GE(span.dur_ns, Span::kInstant);
      ASSERT_GE(span.start_ns, 0);
      ASSERT_LT(span.thread, snap.thread_count);
      ASSERT_LE(static_cast<unsigned>(span.category),
                static_cast<unsigned>(Category::Mark));
    }
    // Histogram reads race records but are monotone, never torn.
    const LatencyHistogram::Buckets current = recommend_latency.buckets();
    ASSERT_GE(current.count, previous.count);
    ASSERT_GE(current.sum_ns, previous.sum_ns);
    for (std::size_t b = 0; b < LatencyHistogram::kBucketCount; ++b) {
      ASSERT_GE(current.counts[b], previous.counts[b]) << "bucket " << b;
    }
    previous = current;
    std::this_thread::yield();
  }

  for (std::thread& producer : producers) producer.join();
  engine.drain();
  EXPECT_FALSE(failed.load());
  Tracer::instance().disable();

  // Quiescent: the histogram adds up exactly.
  const LatencyHistogram::Buckets drained = recommend_latency.buckets();
  EXPECT_EQ(drained.count,
            static_cast<std::uint64_t>(kProducers * kPerProducer));
  std::uint64_t bucket_sum = 0;
  for (const std::uint64_t count : drained.counts) bucket_sum += count;
  EXPECT_EQ(bucket_sum, drained.count);
  // And the frozen buffer still exports deterministically.
  const TraceSnapshot snap = Tracer::instance().snapshot();
  EXPECT_EQ(trace::to_chrome_json(snap),
            trace::to_chrome_json(Tracer::instance().snapshot()));
}

}  // namespace
}  // namespace mpct::service
