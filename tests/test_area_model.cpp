#include "cost/area_model.hpp"

#include <gtest/gtest.h>

#include "arch/registry.hpp"
#include "core/classifier.hpp"
#include "core/flexibility.hpp"
#include "core/taxonomy_table.hpp"

namespace mpct::cost {
namespace {

MachineClass named(const char* text) {
  return *canonical_class(*parse_taxonomic_name(text));
}

TEST(AreaModel, IupIsBlocksOnly) {
  // Eq. 1 for a uniprocessor: 1*A_IP + 1*A_IM + 1*A_DP + 1*A_DM plus
  // three direct links (wire-only area).
  const ComponentLibrary lib = ComponentLibrary::default_library();
  const AreaEstimate e = estimate_area(named("IUP"), lib);
  EXPECT_EQ(e.n_ips, 1);
  EXPECT_EQ(e.n_dps, 1);
  EXPECT_DOUBLE_EQ(e.ip_blocks, lib.ip.area_kge);
  EXPECT_DOUBLE_EQ(e.dp_blocks, lib.dp.area_kge);
  EXPECT_DOUBLE_EQ(e.im_blocks, lib.im.area_kge);
  EXPECT_DOUBLE_EQ(e.dm_blocks, lib.dm.area_kge);
  EXPECT_EQ(e.ip_ip_switch, 0);
  EXPECT_EQ(e.dp_dp_switch, 0);
  EXPECT_GT(e.total_kge(), lib.ip.area_kge + lib.dp.area_kge +
                               lib.im.area_kge + lib.dm.area_kge);
}

TEST(AreaModel, DataFlowIgnoresIpTerms) {
  // "In a data flow machine, the first part involving IP and IM will be
  // ignored" — falls out of the zero counts.
  const ComponentLibrary lib = ComponentLibrary::default_library();
  const AreaEstimate e = estimate_area(named("DMP-IV"), lib, {.n = 8});
  EXPECT_EQ(e.ip_blocks, 0);
  EXPECT_EQ(e.im_blocks, 0);
  EXPECT_EQ(e.ip_ip_switch, 0);
  EXPECT_EQ(e.ip_im_switch, 0);
  EXPECT_GT(e.dp_blocks, 0);
  EXPECT_GT(e.dp_dp_switch, 0);
}

TEST(AreaModel, BlockTermsScaleWithN) {
  const ComponentLibrary lib = ComponentLibrary::default_library();
  const AreaEstimate e8 = estimate_area(named("IMP-I"), lib, {.n = 8});
  const AreaEstimate e16 = estimate_area(named("IMP-I"), lib, {.n = 16});
  EXPECT_DOUBLE_EQ(e16.ip_blocks, 2 * e8.ip_blocks);
  EXPECT_DOUBLE_EQ(e16.dp_blocks, 2 * e8.dp_blocks);
}

TEST(AreaModel, FlexibilityCostsArea) {
  // Section III-C: area increases with flexibility inside a family.
  const ComponentLibrary lib = ComponentLibrary::default_library();
  const EstimateOptions options{.n = 16};
  double previous = -1;
  for (const char* name : {"IMP-I", "IMP-II", "IMP-IV"}) {
    const double area = estimate_area(named(name), lib, options).total_kge();
    EXPECT_GT(area, previous) << name;
    previous = area;
  }
}

TEST(AreaModel, IspCostsMoreThanImp) {
  const ComponentLibrary lib = ComponentLibrary::default_library();
  const EstimateOptions options{.n = 16};
  for (int sub = 1; sub <= 16; ++sub) {
    const TaxonomicName imp{MachineType::InstructionFlow,
                            ProcessingType::MultiProcessor, sub};
    const TaxonomicName isp{MachineType::InstructionFlow,
                            ProcessingType::SpatialProcessor, sub};
    EXPECT_GT(estimate_area(*canonical_class(isp), lib, options).total_kge(),
              estimate_area(*canonical_class(imp), lib, options).total_kge())
        << sub;
  }
}

TEST(AreaModel, CrossbarGrowthDominatesAtScale) {
  // The nxn crossbar term grows quadratically, blocks linearly: at large
  // N the switch share of an IMP-XVI must exceed the block share.
  const ComponentLibrary lib = ComponentLibrary::default_library();
  const AreaEstimate e =
      estimate_area(named("IMP-XVI"), lib, {.n = 1024});
  EXPECT_GT(e.switch_kge(), e.total_kge() / 2);
}

TEST(AreaModel, UspUsesLutBlocks) {
  const ComponentLibrary lib = ComponentLibrary::default_library();
  const AreaEstimate e = estimate_area(named("USP"), lib, {.v = 512});
  EXPECT_EQ(e.n_luts, 512);
  EXPECT_DOUBLE_EQ(e.lut_blocks, 512 * lib.lut.area_kge);
  EXPECT_EQ(e.ip_blocks, 0);
  EXPECT_EQ(e.dp_blocks, 0);
  EXPECT_GT(e.switch_kge(), 0);
}

TEST(AreaModel, Eq1OmitsIpDpSwitchByDefault) {
  const ComponentLibrary lib = ComponentLibrary::default_library();
  // IMP-IX has a crossbar on IP-DP; Eq. 1 as printed still charges
  // nothing for it.
  const AreaEstimate faithful = estimate_area(named("IMP-IX"), lib, {.n = 8});
  EXPECT_EQ(faithful.ip_dp_switch, 0);
  EstimateOptions extended{.n = 8};
  extended.include_ip_dp_switch = true;
  const AreaEstimate with_term = estimate_area(named("IMP-IX"), lib, extended);
  EXPECT_GT(with_term.ip_dp_switch, 0);
  EXPECT_GT(with_term.total_kge(), faithful.total_kge());
}

TEST(AreaModel, SpecUsesExactCounts) {
  const ComponentLibrary lib = ComponentLibrary::default_library();
  const arch::ArchitectureSpec* morphosys =
      arch::find_architecture("MorphoSys");
  ASSERT_NE(morphosys, nullptr);
  const AreaEstimate e = estimate_area(*morphosys, lib);
  EXPECT_EQ(e.n_ips, 1);
  EXPECT_EQ(e.n_dps, 64);
  EXPECT_DOUBLE_EQ(e.dp_blocks, 64 * lib.dp.area_kge);
}

TEST(AreaModel, SpecMemoryBankCountsFromCells) {
  // Montium: 5 ALUs, 10 memory banks (DP-DM cell "5x10").
  const ComponentLibrary lib = ComponentLibrary::default_library();
  const arch::ArchitectureSpec* montium = arch::find_architecture("Montium");
  ASSERT_NE(montium, nullptr);
  const AreaEstimate e = estimate_area(*montium, lib);
  EXPECT_EQ(e.n_dps, 5);
  EXPECT_EQ(e.n_dms, 10);
  EXPECT_DOUBLE_EQ(e.dm_blocks, 10 * lib.dm.area_kge);
}

TEST(AreaModel, SpecSymbolicCountsBind) {
  const ComponentLibrary lib = ComponentLibrary::default_library();
  const arch::ArchitectureSpec* garp = arch::find_architecture("GARP");
  ASSERT_NE(garp, nullptr);
  // GARP has 24n DPs: with n = 4 that is 96.
  const AreaEstimate e = estimate_area(*garp, lib, {.n = 4});
  EXPECT_EQ(e.n_dps, 96);
}

TEST(AreaModel, SpecRapidBindsBothSymbols) {
  const ComponentLibrary lib = ComponentLibrary::default_library();
  const arch::ArchitectureSpec* rapid = arch::find_architecture("RaPiD");
  ASSERT_NE(rapid, nullptr);
  const AreaEstimate e = estimate_area(*rapid, lib, {.n = 4, .m = 12});
  EXPECT_EQ(e.n_ips, 4);
  EXPECT_EQ(e.n_dps, 12);
}

TEST(AreaModel, Mm2ConversionUsesNode) {
  const ComponentLibrary lib = ComponentLibrary::default_library();
  const AreaEstimate e = estimate_area(named("IUP"), lib);
  const TechnologyNode n90 = technology_node("90nm");
  const TechnologyNode n45 = technology_node("45nm");
  EXPECT_NEAR(e.total_mm2(n45), e.total_mm2(n90) / 4.0, 1e-9);
}

/// Property: area is monotone in N for every implementable class.
class AreaMonotoneInN : public ::testing::TestWithParam<int> {};

TEST_P(AreaMonotoneInN, EveryClassGrowsWithN) {
  const ComponentLibrary lib = ComponentLibrary::default_library();
  const int serial = GetParam();
  const TaxonomyEntry* row = find_entry(serial);
  ASSERT_NE(row, nullptr);
  if (!row->implementable) GTEST_SKIP() << "NI row";
  double previous = -1;
  for (std::int64_t n : {2, 4, 8, 16, 32}) {
    EstimateOptions options;
    options.n = n;
    options.v = n * 16;
    const double area = estimate_area(row->machine, lib, options).total_kge();
    EXPECT_GE(area, previous) << "serial " << serial << " n " << n;
    previous = area;
  }
}

INSTANTIATE_TEST_SUITE_P(AllSerials, AreaMonotoneInN,
                         ::testing::Range(1, 48));

}  // namespace
}  // namespace mpct::cost
