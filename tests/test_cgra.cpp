#include "sim/cgra/cgra.hpp"
#include "sim/cgra/scheduler.hpp"

#include <gtest/gtest.h>

#include "sim/memory.hpp"

namespace mpct::sim::cgra {
namespace {

df::Graph axpy() {
  df::Graph g;
  const df::NodeId a = g.add_input("a");
  const df::NodeId x = g.add_input("x");
  const df::NodeId y = g.add_input("y");
  const df::NodeId ax = g.add_op(df::Op::Mul, a, x);
  g.add_output("out", g.add_op(df::Op::Add, ax, y));
  return g;
}

df::Graph reduction_tree(int leaves) {
  df::Graph g;
  std::vector<df::NodeId> layer;
  for (int i = 0; i < leaves; ++i) {
    layer.push_back(g.add_input("i" + std::to_string(i)));
  }
  while (layer.size() > 1) {
    std::vector<df::NodeId> next;
    for (std::size_t i = 0; i + 1 < layer.size(); i += 2) {
      next.push_back(g.add_op(df::Op::Add, layer[i], layer[i + 1]));
    }
    if (layer.size() % 2) next.push_back(layer.back());
    layer = std::move(next);
  }
  g.add_output("sum", layer[0]);
  return g;
}

std::vector<std::pair<std::string, Word>> tree_inputs(int leaves) {
  std::vector<std::pair<std::string, Word>> inputs;
  for (int i = 0; i < leaves; ++i) {
    inputs.emplace_back("i" + std::to_string(i), i + 1);
  }
  return inputs;
}

// ------------------------------------------------------------- fabric

TEST(Cgra, ManualProgramAndRun) {
  CgraShape shape;
  shape.fus = 2;
  shape.contexts = 2;
  shape.primary_inputs = 2;
  Cgra cgra(shape);
  // cycle 0: fu0 = in0 + in1; cycle 1: fu1 = fu0 * 10.
  FuInstruction add;
  add.active = true;
  add.op = df::Op::Add;
  add.a = Operand::input_of(0);
  add.b = Operand::input_of(1);
  cgra.program(0, 0, add);
  FuInstruction mul;
  mul.active = true;
  mul.op = df::Op::Mul;
  mul.a = Operand::fu_of(0);
  mul.b = Operand::constant_of(10);
  cgra.program(1, 1, mul);

  const RunStats stats = cgra.run({3, 4});
  EXPECT_EQ(cgra.fu_value(0), 7);
  EXPECT_EQ(cgra.fu_value(1), 70);
  EXPECT_EQ(stats.instructions, 2);
  EXPECT_EQ(stats.cycles, 2);
}

TEST(Cgra, ReadsAreLatchedNotCombinational) {
  // Same cycle: fu1 reads fu0's OLD value, not the one computed this
  // cycle (synchronous semantics).
  CgraShape shape;
  shape.fus = 2;
  shape.contexts = 1;
  shape.primary_inputs = 1;
  Cgra cgra(shape);
  FuInstruction write5;
  write5.active = true;
  write5.op = df::Op::Add;
  write5.a = Operand::constant_of(5);
  write5.b = Operand::constant_of(0);
  cgra.program(0, 0, write5);
  FuInstruction copy;
  copy.active = true;
  copy.op = df::Op::Add;
  copy.a = Operand::fu_of(0);
  copy.b = Operand::constant_of(0);
  cgra.program(0, 1, copy);
  cgra.run({0});
  EXPECT_EQ(cgra.fu_value(0), 5);
  EXPECT_EQ(cgra.fu_value(1), 0);  // saw the pre-cycle value
}

TEST(Cgra, ProgramValidatesIndicesAndOperators) {
  Cgra cgra(CgraShape{.fus = 2, .contexts = 2, .primary_inputs = 1});
  FuInstruction inst;
  inst.active = true;
  inst.op = df::Op::Add;
  inst.a = Operand::constant_of(1);
  inst.b = Operand::constant_of(2);
  EXPECT_THROW(cgra.program(5, 0, inst), SimError);
  EXPECT_THROW(cgra.program(0, 9, inst), SimError);
  inst.a = Operand::fu_of(7);
  EXPECT_THROW(cgra.program(0, 0, inst), SimError);
  inst.a = Operand::input_of(3);
  EXPECT_THROW(cgra.program(0, 0, inst), SimError);
  inst.a = Operand::none();
  EXPECT_THROW(cgra.program(0, 0, inst), SimError);
  inst.a = Operand::constant_of(1);
  inst.op = df::Op::Input;
  EXPECT_THROW(cgra.program(0, 0, inst), SimError);
  inst.op = df::Op::Const;
  EXPECT_THROW(cgra.program(0, 0, inst), SimError);
}

TEST(Cgra, WindowConstrainsOperandRouting) {
  CgraShape shape;
  shape.fus = 8;
  shape.contexts = 2;
  shape.primary_inputs = 1;
  shape.window = 1;
  Cgra cgra(shape);
  FuInstruction inst;
  inst.active = true;
  inst.op = df::Op::Add;
  inst.a = Operand::fu_of(0);
  inst.b = Operand::constant_of(0);
  EXPECT_NO_THROW(cgra.program(1, 1, inst));  // distance 1: ok
  inst.a = Operand::fu_of(0);
  EXPECT_THROW(cgra.program(1, 3, inst), SimError);  // distance 3: no
}

TEST(Cgra, RunValidatesInputsAndDepth) {
  Cgra cgra(CgraShape{.fus = 2, .contexts = 2, .primary_inputs = 2});
  EXPECT_THROW(cgra.run({1}), SimError);        // wrong input count
  EXPECT_THROW(cgra.run({1, 2}, 5), SimError);  // beyond context depth
}

TEST(Cgra, ConfigBitsScaleWithShape) {
  const Cgra small(CgraShape{.fus = 4, .contexts = 4, .primary_inputs = 4});
  const Cgra deeper(
      CgraShape{.fus = 4, .contexts = 8, .primary_inputs = 4});
  const Cgra wider(CgraShape{.fus = 8, .contexts = 4, .primary_inputs = 4});
  EXPECT_EQ(deeper.config_bits(), 2 * small.config_bits());
  EXPECT_EQ(wider.config_bits(), 2 * small.config_bits());
  EXPECT_GT(small.config_bits(), 0);
}

// ---------------------------------------------------------- scheduler

TEST(Scheduler, AxpyMatchesFunctionalEvaluation) {
  const df::Graph g = axpy();
  Cgra cgra(CgraShape{.fus = 4, .contexts = 4, .primary_inputs = 4});
  const Schedule schedule = map_graph(g, cgra);
  EXPECT_EQ(schedule.fus_used, 2);
  EXPECT_EQ(schedule.depth, 2);  // mul then add
  const auto outputs =
      run_mapped(cgra, schedule, {{"a", 3}, {"x", 4}, {"y", 5}});
  const auto expected = df::evaluate(g, {{"a", 3}, {"x", 4}, {"y", 5}});
  EXPECT_EQ(outputs, expected);
}

TEST(Scheduler, ReductionTreeUsesLogDepth) {
  const df::Graph g = reduction_tree(8);
  Cgra cgra(CgraShape{.fus = 8, .contexts = 8, .primary_inputs = 8});
  const Schedule schedule = map_graph(g, cgra);
  EXPECT_EQ(schedule.fus_used, 7);  // 4 + 2 + 1 adders
  EXPECT_EQ(schedule.depth, 3);     // log2(8) levels
  const auto outputs = run_mapped(cgra, schedule, tree_inputs(8));
  EXPECT_EQ(outputs.at(0).second, 36);  // 1+..+8
}

TEST(Scheduler, MatchesEvaluationAcrossShapes) {
  const df::Graph g = reduction_tree(8);
  const auto expected = df::evaluate(g, tree_inputs(8));
  for (int window : {-1, 4, 7}) {
    CgraShape shape;
    shape.fus = 16;
    shape.contexts = 8;
    shape.primary_inputs = 8;
    shape.window = window;
    Cgra cgra(shape);
    const Schedule schedule = map_graph(g, cgra);
    EXPECT_EQ(run_mapped(cgra, schedule, tree_inputs(8)), expected)
        << "window " << window;
  }
}

TEST(Scheduler, RejectsWhenFabricTooSmall) {
  const df::Graph g = reduction_tree(8);  // 7 compute nodes
  Cgra few_fus(CgraShape{.fus = 3, .contexts = 8, .primary_inputs = 8});
  EXPECT_THROW(map_graph(g, few_fus), SimError);
  Cgra few_contexts(
      CgraShape{.fus = 8, .contexts = 2, .primary_inputs = 8});
  EXPECT_THROW(map_graph(g, few_contexts), SimError);
  Cgra few_inputs(CgraShape{.fus = 8, .contexts = 8, .primary_inputs = 4});
  EXPECT_THROW(map_graph(g, few_inputs), SimError);
}

TEST(Scheduler, NarrowWindowCanMakeGraphsUnmappable) {
  // A 16-leaf tree's final adder must reach across the row; with
  // window 1 the greedy placer runs out of reachable FUs.
  const df::Graph g = reduction_tree(16);
  CgraShape shape;
  shape.fus = 15;
  shape.contexts = 8;
  shape.primary_inputs = 16;
  shape.window = 1;
  Cgra cgra(shape);
  EXPECT_THROW(map_graph(g, cgra), SimError);
}

TEST(Scheduler, RejectsOutputFedByInput) {
  df::Graph g;
  const df::NodeId a = g.add_input("a");
  g.add_output("echo", a);
  Cgra cgra(CgraShape{.fus = 2, .contexts = 2, .primary_inputs = 2});
  EXPECT_THROW(map_graph(g, cgra), SimError);
}

TEST(Scheduler, RunMappedRejectsUnknownInput) {
  const df::Graph g = axpy();
  Cgra cgra(CgraShape{.fus = 4, .contexts = 4, .primary_inputs = 4});
  const Schedule schedule = map_graph(g, cgra);
  EXPECT_THROW(run_mapped(cgra, schedule, {{"zz", 1}}), SimError);
}

TEST(Scheduler, SelectAndMinMaxMap) {
  df::Graph g;
  const df::NodeId a = g.add_input("a");
  const df::NodeId b = g.add_input("b");
  const df::NodeId lt = g.add_op(df::Op::Lt, a, b);
  g.add_output("min", g.add_select(lt, a, b));
  Cgra cgra(CgraShape{.fus = 4, .contexts = 4, .primary_inputs = 4});
  const Schedule schedule = map_graph(g, cgra);
  EXPECT_EQ(run_mapped(cgra, schedule, {{"a", 3}, {"b", 9}}).at(0).second,
            3);
  EXPECT_EQ(run_mapped(cgra, schedule, {{"a", 12}, {"b", 9}}).at(0).second,
            9);
}

/// Property sweep: random-ish expression DAGs evaluate identically on
/// the CGRA and the reference across sizes.
class CgraTreeSweep : public ::testing::TestWithParam<int> {};

TEST_P(CgraTreeSweep, TreeOfAnySizeMatches) {
  const int leaves = GetParam();
  const df::Graph g = reduction_tree(leaves);
  CgraShape shape;
  shape.fus = leaves;
  shape.contexts = 8;
  shape.primary_inputs = leaves;
  Cgra cgra(shape);
  const Schedule schedule = map_graph(g, cgra);
  EXPECT_EQ(run_mapped(cgra, schedule, tree_inputs(leaves)),
            df::evaluate(g, tree_inputs(leaves)));
  EXPECT_EQ(run_mapped(cgra, schedule, tree_inputs(leaves)).at(0).second,
            leaves * (leaves + 1) / 2);
}

INSTANTIATE_TEST_SUITE_P(Leaves, CgraTreeSweep,
                         ::testing::Values(2, 3, 5, 8, 16, 32));

}  // namespace
}  // namespace mpct::sim::cgra
