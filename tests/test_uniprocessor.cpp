#include "sim/isa/uniprocessor.hpp"

#include <gtest/gtest.h>

#include "sim/isa/assembler.hpp"

namespace mpct::sim {
namespace {

TEST(Uniprocessor, ArithmeticAndHalt) {
  Uniprocessor cpu(assemble_or_throw(R"(
    ldi r1, 6
    ldi r2, 7
    mul r3, r1, r2
    out r3
    halt
  )"),
                   16);
  const RunStats stats = cpu.run();
  EXPECT_TRUE(stats.halted);
  EXPECT_EQ(stats.output, (std::vector<Word>{42}));
  EXPECT_EQ(stats.instructions, 5);
  EXPECT_EQ(stats.cycles, 5);
}

TEST(Uniprocessor, LoadStoreRoundTrip) {
  Uniprocessor cpu(assemble_or_throw(R"(
    ldi r1, 3      ; address
    ldi r2, 99
    st r1, r2, 1   ; DM[4] = 99
    ld r3, r1, 1   ; r3 = DM[4]
    out r3
    halt
  )"),
                   16);
  const RunStats stats = cpu.run();
  EXPECT_EQ(stats.output, (std::vector<Word>{99}));
  EXPECT_EQ(cpu.dm().load(4), 99);
}

TEST(Uniprocessor, LoopComputesSum) {
  // Sum 1..10 = 55.
  Uniprocessor cpu(assemble_or_throw(R"(
    ldi r1, 0     ; acc
    ldi r2, 10    ; i
    ldi r3, 0
loop:
    beq r2, r3, done
    add r1, r1, r2
    addi r2, r2, -1
    jmp loop
done:
    out r1
    halt
  )"),
                   16);
  const RunStats stats = cpu.run();
  EXPECT_EQ(stats.output, (std::vector<Word>{55}));
  EXPECT_TRUE(stats.halted);
}

TEST(Uniprocessor, LaneIsZero) {
  Uniprocessor cpu(assemble_or_throw("lane r1\nout r1\nhalt\n"), 8);
  EXPECT_EQ(cpu.run().output, (std::vector<Word>{0}));
}

TEST(Uniprocessor, MaxCyclesStopsInfiniteLoop) {
  Uniprocessor cpu(assemble_or_throw("loop: jmp loop\n"), 8);
  const RunStats stats = cpu.run(1000);
  EXPECT_FALSE(stats.halted);
  EXPECT_EQ(stats.cycles, 1000);
}

TEST(Uniprocessor, RunContinuesAndResetRestarts) {
  Uniprocessor cpu(assemble_or_throw(R"(
    ldi r1, 1
    ldi r1, 2
    halt
  )"),
                   8);
  RunStats stats = cpu.run(1);  // only the first ldi
  EXPECT_FALSE(stats.halted);
  EXPECT_EQ(cpu.core().reg(1), 1);
  stats = cpu.run();  // continues
  EXPECT_TRUE(stats.halted);
  EXPECT_EQ(cpu.core().reg(1), 2);
  cpu.reset();
  EXPECT_EQ(cpu.core().pc, 0);
  EXPECT_EQ(cpu.core().reg(1), 0);
}

TEST(Uniprocessor, MemoryOutOfRangeTraps) {
  Uniprocessor cpu(assemble_or_throw("ldi r1, 100\nld r2, r1, 0\nhalt\n"),
                   16);
  EXPECT_THROW(cpu.run(), SimError);
}

TEST(Uniprocessor, PcFallOffTraps) {
  Uniprocessor cpu(assemble_or_throw("nop\n"), 8);  // no halt
  EXPECT_THROW(cpu.run(), SimError);
}

TEST(Uniprocessor, CommunicationOpsTrapOnIup) {
  // The flexibility-0 class has no DP-DP switch: SHUF/SEND/RECV cannot
  // execute (the taxonomy boundary, enforced).
  for (const char* source :
       {"shuf r1, r2, r3\nhalt\n", "send r1, r2\nhalt\n",
        "recv r1\nhalt\n"}) {
    Uniprocessor cpu(assemble_or_throw(source), 8);
    EXPECT_THROW(cpu.run(), SimError) << source;
  }
}

TEST(Uniprocessor, DivByZeroTraps) {
  Uniprocessor cpu(
      assemble_or_throw("ldi r1, 5\nldi r2, 0\ndivs r3, r1, r2\nhalt\n"),
      8);
  EXPECT_THROW(cpu.run(), SimError);
}

TEST(Uniprocessor, BranchOutOfRangeTraps) {
  Uniprocessor cpu(assemble_or_throw("jmp 99\n"), 8);
  EXPECT_THROW(cpu.run(), SimError);
}

}  // namespace
}  // namespace mpct::sim
