#include "core/taxonomy_table.hpp"

#include <gtest/gtest.h>

#include <set>

namespace mpct {
namespace {

TEST(TaxonomyTable, Has47Rows) {
  EXPECT_EQ(extended_taxonomy().size(), 47u);
}

TEST(TaxonomyTable, SerialNumbersAreDense) {
  int expected = 1;
  for (const TaxonomyEntry& row : extended_taxonomy()) {
    EXPECT_EQ(row.serial, expected++);
  }
}

TEST(TaxonomyTable, FourNiRowsAt11To14) {
  int ni_count = 0;
  for (const TaxonomyEntry& row : extended_taxonomy()) {
    if (!row.implementable) {
      ++ni_count;
      EXPECT_GE(row.serial, 11);
      EXPECT_LE(row.serial, 14);
      EXPECT_FALSE(row.name.has_value());
      EXPECT_EQ(row.comment(), "NI");
    }
  }
  EXPECT_EQ(ni_count, 4);
  EXPECT_EQ(implementable_class_count(), 43);
}

TEST(TaxonomyTable, RowBoundariesMatchTableI) {
  // Spot-check the section structure: 1 DUP, 2-5 DMP, 6 IUP, 7-10 IAP,
  // 15-30 IMP, 31-46 ISP, 47 USP.
  EXPECT_EQ(find_entry(1)->comment(), "DUP");
  EXPECT_EQ(find_entry(2)->comment(), "DMP-I");
  EXPECT_EQ(find_entry(5)->comment(), "DMP-IV");
  EXPECT_EQ(find_entry(6)->comment(), "IUP");
  EXPECT_EQ(find_entry(7)->comment(), "IAP-I");
  EXPECT_EQ(find_entry(10)->comment(), "IAP-IV");
  EXPECT_EQ(find_entry(15)->comment(), "IMP-I");
  EXPECT_EQ(find_entry(30)->comment(), "IMP-XVI");
  EXPECT_EQ(find_entry(31)->comment(), "ISP-I");
  EXPECT_EQ(find_entry(46)->comment(), "ISP-XVI");
  EXPECT_EQ(find_entry(47)->comment(), "USP");
}

TEST(TaxonomyTable, Row8MatchesPaperCells) {
  // Table I row 8: IAP-II — 1 IP, n DPs, none, 1-n, 1-1, n-n, nxn.
  const TaxonomyEntry* row = find_entry(8);
  ASSERT_NE(row, nullptr);
  EXPECT_EQ(row->comment(), "IAP-II");
  EXPECT_EQ(format_cell(row->machine, ConnectivityRole::IpIp), "none");
  EXPECT_EQ(format_cell(row->machine, ConnectivityRole::IpDp), "1-n");
  EXPECT_EQ(format_cell(row->machine, ConnectivityRole::IpIm), "1-1");
  EXPECT_EQ(format_cell(row->machine, ConnectivityRole::DpDm), "n-n");
  EXPECT_EQ(format_cell(row->machine, ConnectivityRole::DpDp), "nxn");
}

TEST(TaxonomyTable, Row19MatchesPaperCells) {
  // Table I row 19: IMP-V — n, n, none, n-n, nxn, n-n, none.
  const TaxonomyEntry* row = find_entry(19);
  ASSERT_NE(row, nullptr);
  EXPECT_EQ(row->comment(), "IMP-V");
  EXPECT_EQ(format_cell(row->machine, ConnectivityRole::IpDp), "n-n");
  EXPECT_EQ(format_cell(row->machine, ConnectivityRole::IpIm), "nxn");
  EXPECT_EQ(format_cell(row->machine, ConnectivityRole::DpDm), "n-n");
  EXPECT_EQ(format_cell(row->machine, ConnectivityRole::DpDp), "none");
}

TEST(TaxonomyTable, Row40MatchesPaperCells) {
  // Table I row 40: ISP-X — n, n, nxn, nxn, n-n, n-n, nxn.
  const TaxonomyEntry* row = find_entry(40);
  ASSERT_NE(row, nullptr);
  EXPECT_EQ(row->comment(), "ISP-X");
  EXPECT_EQ(format_cell(row->machine, ConnectivityRole::IpIp), "nxn");
  EXPECT_EQ(format_cell(row->machine, ConnectivityRole::IpDp), "nxn");
  EXPECT_EQ(format_cell(row->machine, ConnectivityRole::IpIm), "n-n");
  EXPECT_EQ(format_cell(row->machine, ConnectivityRole::DpDm), "n-n");
  EXPECT_EQ(format_cell(row->machine, ConnectivityRole::DpDp), "nxn");
}

TEST(TaxonomyTable, Row47IsLutGrained) {
  const TaxonomyEntry* row = find_entry(47);
  ASSERT_NE(row, nullptr);
  EXPECT_EQ(row->machine.granularity, Granularity::Lut);
  EXPECT_EQ(format_cell(row->machine, ConnectivityRole::IpIp), "vxv");
}

TEST(TaxonomyTable, NiRowsMatchPaperCells) {
  // Rows 11-14: n IPs, 1 DP; IP-IM upgrades before IP-IP.
  const auto cell = [](int serial, ConnectivityRole role) {
    return format_cell(find_entry(serial)->machine, role);
  };
  EXPECT_EQ(cell(11, ConnectivityRole::IpIp), "none");
  EXPECT_EQ(cell(11, ConnectivityRole::IpIm), "n-n");
  EXPECT_EQ(cell(12, ConnectivityRole::IpIp), "none");
  EXPECT_EQ(cell(12, ConnectivityRole::IpIm), "nxn");
  EXPECT_EQ(cell(13, ConnectivityRole::IpIp), "nxn");
  EXPECT_EQ(cell(13, ConnectivityRole::IpIm), "n-n");
  EXPECT_EQ(cell(14, ConnectivityRole::IpIp), "nxn");
  EXPECT_EQ(cell(14, ConnectivityRole::IpIm), "nxn");
  for (int serial = 11; serial <= 14; ++serial) {
    EXPECT_EQ(cell(serial, ConnectivityRole::IpDp), "n-1") << serial;
    EXPECT_EQ(cell(serial, ConnectivityRole::DpDm), "1-1") << serial;
    EXPECT_EQ(cell(serial, ConnectivityRole::DpDp), "none") << serial;
  }
}

TEST(TaxonomyTable, StructuresAreUnique) {
  std::set<std::string> signatures;
  for (const TaxonomyEntry& row : extended_taxonomy()) {
    signatures.insert(to_string(row.machine));
  }
  EXPECT_EQ(signatures.size(), 47u);
}

TEST(TaxonomyTable, LookupByNameAndStructureAgree) {
  for (const TaxonomyEntry& row : extended_taxonomy()) {
    EXPECT_EQ(find_entry(row.machine), &row);
    if (row.name) {
      EXPECT_EQ(find_entry(*row.name), &row);
    }
  }
}

TEST(TaxonomyTable, LookupFailures) {
  EXPECT_EQ(find_entry(0), nullptr);
  EXPECT_EQ(find_entry(48), nullptr);
  MachineClass bogus;
  bogus.ips = Multiplicity::Variable;
  EXPECT_EQ(find_entry(bogus), nullptr);
}

TEST(TaxonomyTable, SectionsFollowFigure2Order) {
  EXPECT_EQ(find_entry(1)->section, "Data Flow Machines -> Single Processor");
  EXPECT_EQ(find_entry(3)->section, "Data Flow Machines -> Multi Processors");
  EXPECT_EQ(find_entry(6)->section, "Instruction Flow -> Single Processor");
  EXPECT_EQ(find_entry(9)->section, "Instruction Flow -> Array Processor");
  EXPECT_EQ(find_entry(20)->section, "Instruction Flow -> Multi Processor");
  EXPECT_EQ(find_entry(47)->section,
            "Universal Flow Machine -> Spatial Computing");
}

}  // namespace
}  // namespace mpct
