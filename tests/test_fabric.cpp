#include "sim/spatial/fabric.hpp"

#include <gtest/gtest.h>

#include "sim/memory.hpp"

namespace mpct::sim::spatial {
namespace {

/// Truth table builder: apply fn to the low `arity` address bits.
template <typename Fn>
std::array<bool, 16> table(Fn&& fn) {
  std::array<bool, 16> t{};
  for (unsigned address = 0; address < 16; ++address) {
    t[address] = fn(address & 1u, (address >> 1) & 1u, (address >> 2) & 1u,
                    (address >> 3) & 1u);
  }
  return t;
}

TEST(LutFabric, CombinationalAndGate) {
  LutFabric fabric(1, 2, 1);
  LutCell cell;
  cell.truth = table([](bool a, bool b, bool, bool) { return a && b; });
  cell.inputs[0] = Source::primary(0);
  cell.inputs[1] = Source::primary(1);
  fabric.configure_cell(0, cell);
  fabric.route_output(0, Source::cell(0));
  EXPECT_FALSE(fabric.step({false, true})[0]);
  EXPECT_TRUE(fabric.step({true, true})[0]);
}

TEST(LutFabric, TwoLevelLogicSettles) {
  // y = (a & b) ^ c over two cells.
  LutFabric fabric(2, 3, 1);
  LutCell and_cell;
  and_cell.truth = table([](bool a, bool b, bool, bool) { return a && b; });
  and_cell.inputs[0] = Source::primary(0);
  and_cell.inputs[1] = Source::primary(1);
  fabric.configure_cell(0, and_cell);
  LutCell xor_cell;
  xor_cell.truth = table([](bool a, bool b, bool, bool) { return a != b; });
  xor_cell.inputs[0] = Source::cell(0);
  xor_cell.inputs[1] = Source::primary(2);
  fabric.configure_cell(1, xor_cell);
  fabric.route_output(0, Source::cell(1));
  EXPECT_TRUE(fabric.step({true, true, false})[0]);
  EXPECT_FALSE(fabric.step({true, true, true})[0]);
  EXPECT_TRUE(fabric.step({false, true, true})[0]);
}

TEST(LutFabric, CellOrderDoesNotMatter) {
  // The consumer cell has a LOWER index than its producer: the settle
  // loop must still converge.
  LutFabric fabric(2, 1, 1);
  LutCell consumer;  // cell 0 reads cell 1
  consumer.truth = table([](bool a, bool, bool, bool) { return !a; });
  consumer.inputs[0] = Source::cell(1);
  fabric.configure_cell(0, consumer);
  LutCell producer;  // cell 1 reads the primary input
  producer.truth = table([](bool a, bool, bool, bool) { return a; });
  producer.inputs[0] = Source::primary(0);
  fabric.configure_cell(1, producer);
  fabric.route_output(0, Source::cell(0));
  EXPECT_FALSE(fabric.step({true})[0]);
  EXPECT_TRUE(fabric.step({false})[0]);
}

TEST(LutFabric, RegisteredCellDelaysOneCycle) {
  LutFabric fabric(1, 1, 1);
  LutCell flop;
  flop.truth = table([](bool a, bool, bool, bool) { return a; });
  flop.inputs[0] = Source::primary(0);
  flop.registered = true;
  fabric.configure_cell(0, flop);
  fabric.route_output(0, Source::cell(0));
  EXPECT_FALSE(fabric.step({true})[0]);   // outputs pre-clock state
  EXPECT_TRUE(fabric.step({false})[0]);   // captured last cycle's 1
  EXPECT_FALSE(fabric.step({false})[0]);
  EXPECT_TRUE(fabric.cell_state(0) == false);
}

TEST(LutFabric, RegisteredFeedbackToggles) {
  LutFabric fabric(1, 0, 1);
  LutCell toggle;
  toggle.truth = table([](bool a, bool, bool, bool) { return !a; });
  toggle.inputs[0] = Source::cell(0);  // own output (state feedback)
  toggle.registered = true;
  fabric.configure_cell(0, toggle);
  fabric.route_output(0, Source::cell(0));
  EXPECT_FALSE(fabric.step({})[0]);
  EXPECT_TRUE(fabric.step({})[0]);
  EXPECT_FALSE(fabric.step({})[0]);
}

TEST(LutFabric, CombinationalCycleThrows) {
  LutFabric fabric(1, 0, 1);
  LutCell inv;
  inv.truth = table([](bool a, bool, bool, bool) { return !a; });
  inv.inputs[0] = Source::cell(0);  // unregistered self-loop: oscillator
  fabric.configure_cell(0, inv);
  EXPECT_THROW(fabric.step({}), SimError);
}

TEST(LutFabric, UnroutedOutputReadsZero) {
  LutFabric fabric(1, 1, 2);
  EXPECT_FALSE(fabric.step({true})[1]);
}

TEST(LutFabric, RoutingValidation) {
  LutFabric fabric(2, 1, 1);
  LutCell cell;
  cell.inputs[0] = Source::primary(5);  // out of range
  EXPECT_THROW(fabric.configure_cell(0, cell), SimError);
  cell.inputs[0] = Source::cell(9);
  EXPECT_THROW(fabric.configure_cell(0, cell), SimError);
  EXPECT_THROW(fabric.configure_cell(7, LutCell{}), SimError);
  EXPECT_THROW(fabric.route_output(3, Source::none()), SimError);
}

TEST(LutFabric, WrongInputCountThrows) {
  LutFabric fabric(1, 2, 1);
  EXPECT_THROW(fabric.step({true}), SimError);
}

TEST(LutFabric, ConfigBitsFormula) {
  // 8 cells, 4 primaries: candidates = 4 + 8 + 1 = 13 -> 4 select bits.
  // Per cell: 16 truth + 4*4 select + 1 mode = 33; outputs: 2 * 4.
  LutFabric fabric(8, 4, 2);
  EXPECT_EQ(fabric.config_bits(), 8 * 33 + 2 * 4);
}

TEST(LutFabric, ClearResetsEverything) {
  LutFabric fabric(1, 1, 1);
  LutCell flop;
  flop.truth = table([](bool a, bool, bool, bool) { return a; });
  flop.inputs[0] = Source::primary(0);
  flop.registered = true;
  fabric.configure_cell(0, flop);
  fabric.route_output(0, Source::cell(0));
  fabric.step({true});
  EXPECT_TRUE(fabric.cell_state(0));
  fabric.clear();
  EXPECT_FALSE(fabric.cell_state(0));
  EXPECT_FALSE(fabric.cell(0).registered);
}

TEST(LutFabric, RejectsBadShape) {
  EXPECT_THROW(LutFabric(0, 1, 1), std::invalid_argument);
  EXPECT_THROW(LutFabric(4, -1, 1), std::invalid_argument);
}

/// Property: config bits grow strictly with the cell count (the
/// flexibility-vs-overhead law at the fabric level).
class FabricConfigGrowth : public ::testing::TestWithParam<int> {};

TEST_P(FabricConfigGrowth, MoreCellsMoreBits) {
  const int cells = GetParam();
  LutFabric small(cells, 8, 8);
  LutFabric large(cells * 2, 8, 8);
  EXPECT_GT(large.config_bits(), small.config_bits());
}

INSTANTIATE_TEST_SUITE_P(Sizes, FabricConfigGrowth,
                         ::testing::Values(1, 4, 16, 64, 256));

}  // namespace
}  // namespace mpct::sim::spatial
