#include "interconnect/traffic.hpp"

#include <gtest/gtest.h>

#include <map>

namespace mpct::interconnect {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(Rng, GoldenStreamIsStable) {
  // Golden values captured before the generator was hoisted into
  // core/rng.hpp: the shared Rng must keep every pre-existing traffic
  // stream bit-identical, so these constants must never change.
  Rng seed1(1);
  EXPECT_EQ(seed1.next(), 0x47e4ce4b896cdd1dULL);
  EXPECT_EQ(seed1.next(), 0xabcfa6a8e079651dULL);
  EXPECT_EQ(seed1.next(), 0xb9d10d8feb731f57ULL);
  EXPECT_EQ(seed1.next(), 0x4db418a0bb1b019dULL);
  Rng seed0(0);  // zero seed substitutes the golden-ratio constant
  EXPECT_EQ(seed0.next(), 0x0d83b3e29a21487aULL);
  EXPECT_EQ(seed0.next(), 0x54c44c79f1fe9d67ULL);
  Rng fuzz_seed(2012);
  EXPECT_EQ(fuzz_seed.next(), 0xfef2afe4bc77d1dfULL);
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(Rng, ZeroSeedIsUsable) {
  Rng rng(0);
  EXPECT_NE(rng.next(), 0u);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(13), 13u);
  }
  EXPECT_EQ(rng.next_below(0), 0u);
  EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(Rng, NextBelowIsRoughlyUniform) {
  Rng rng(99);
  std::map<std::uint64_t, int> histogram;
  const int samples = 80000;
  for (int i = 0; i < samples; ++i) {
    ++histogram[rng.next_below(8)];
  }
  for (const auto& [bucket, count] : histogram) {
    EXPECT_NEAR(count, samples / 8.0, samples * 0.01) << bucket;
  }
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(5);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Traffic, UniformIsDeterministic) {
  MeshNoc mesh(4, 4);
  TrafficParams params;
  params.cycles = 100;
  params.rate = 0.1;
  params.seed = 3;
  const auto a = uniform_traffic(mesh, params);
  const auto b = uniform_traffic(mesh, params);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].src, b[i].src);
    EXPECT_EQ(a[i].dst, b[i].dst);
    EXPECT_EQ(a[i].inject_cycle, b[i].inject_cycle);
  }
}

TEST(Traffic, RateControlsVolume) {
  MeshNoc mesh(4, 4);
  TrafficParams low{.cycles = 500, .rate = 0.02, .seed = 1};
  TrafficParams high{.cycles = 500, .rate = 0.2, .seed = 1};
  const auto few = uniform_traffic(mesh, low);
  const auto many = uniform_traffic(mesh, high);
  EXPECT_GT(many.size(), few.size() * 5);
  // Expected volume: nodes * cycles * rate, within 20%.
  const double expected = 16 * 500 * 0.2;
  EXPECT_NEAR(static_cast<double>(many.size()), expected, expected * 0.2);
}

TEST(Traffic, NoSelfAddressedPackets) {
  MeshNoc mesh(4, 4);
  TrafficParams params{.cycles = 200, .rate = 0.2, .seed = 11};
  for (const Packet& p : uniform_traffic(mesh, params)) {
    EXPECT_NE(p.src, p.dst);
  }
  for (const Packet& p : hotspot_traffic(mesh, params, 0, 0.5)) {
    EXPECT_NE(p.src, p.dst);
  }
}

TEST(Traffic, HotspotConcentratesOnHotNode) {
  MeshNoc mesh(4, 4);
  TrafficParams params{.cycles = 500, .rate = 0.2, .seed = 17};
  const int hot = 5;
  const auto packets = hotspot_traffic(mesh, params, hot, 0.7);
  int to_hot = 0;
  for (const Packet& p : packets) {
    if (p.dst == hot) ++to_hot;
  }
  EXPECT_GT(to_hot, static_cast<int>(packets.size()) / 2);
}

TEST(Traffic, NeighborTargetsSuccessor) {
  MeshNoc mesh(4, 2);
  TrafficParams params{.cycles = 50, .rate = 0.5, .seed = 23};
  for (const Packet& p : neighbor_traffic(mesh, params)) {
    EXPECT_EQ(p.dst, (p.src + 1) % mesh.node_count());
  }
}

TEST(Traffic, TransposeSwapsCoordinates) {
  MeshNoc mesh(4, 4);
  TrafficParams params{.cycles = 50, .rate = 0.5, .seed = 29};
  for (const Packet& p : transpose_traffic(mesh, params)) {
    EXPECT_EQ(mesh.x_of(p.dst), mesh.y_of(p.src));
    EXPECT_EQ(mesh.y_of(p.dst), mesh.x_of(p.src));
  }
}

TEST(Traffic, InjectionCyclesWithinWindow) {
  MeshNoc mesh(4, 4);
  TrafficParams params{.cycles = 100, .rate = 0.1, .seed = 31};
  for (const Packet& p : uniform_traffic(mesh, params)) {
    EXPECT_GE(p.inject_cycle, 0);
    EXPECT_LT(p.inject_cycle, 100);
  }
}

TEST(TrafficIntegration, UniformLoadDeliversOnLargeMesh) {
  // End-to-end smoke: moderate uniform load on an 8x8 mesh fully drains.
  MeshNoc mesh(8, 8);
  TrafficParams params{.cycles = 200, .rate = 0.05, .seed = 41};
  auto packets = uniform_traffic(mesh, params);
  ASSERT_FALSE(packets.empty());
  const auto stats = mesh.simulate(packets, 100000);
  EXPECT_EQ(stats.undelivered, 0);
  EXPECT_GE(stats.avg_latency, 1.0);
}

}  // namespace
}  // namespace mpct::interconnect
