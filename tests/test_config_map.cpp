#include "cost/config_map.hpp"

#include <gtest/gtest.h>

#include "arch/registry.hpp"
#include "core/classifier.hpp"

namespace mpct::cost {
namespace {

MachineClass named(const char* text) {
  return *canonical_class(*parse_taxonomic_name(text));
}

TEST(ConfigMap, TotalEqualsEq2ForEveryClass) {
  const ComponentLibrary lib = ComponentLibrary::default_library();
  const EstimateOptions options{.n = 8, .v = 64};
  for (const char* name : {"DUP", "DMP-IV", "IUP", "IAP-II", "IMP-I",
                           "IMP-XVI", "ISP-IV", "USP"}) {
    const MachineClass mc = named(name);
    const ConfigMap map = plan_config_map(mc, lib, options);
    EXPECT_EQ(map.total_bits(),
              estimate_config_bits(mc, lib, options).total())
        << name;
  }
}

TEST(ConfigMap, TotalEqualsEq2ForEverySurveyRow) {
  const ComponentLibrary lib = ComponentLibrary::default_library();
  const EstimateOptions options{.n = 8, .m = 8, .v = 64};
  for (const arch::ArchitectureSpec& spec :
       arch::surveyed_architectures()) {
    const ConfigMap map = plan_config_map(spec, lib, options);
    EXPECT_EQ(map.total_bits(),
              estimate_config_bits(spec, lib, options).total())
        << spec.name;
  }
}

TEST(ConfigMap, FieldsAreContiguousAndDisjoint) {
  const ComponentLibrary lib = ComponentLibrary::default_library();
  const ConfigMap map =
      plan_config_map(named("IMP-XVI"), lib, {.n = 4});
  ASSERT_FALSE(map.fields.empty());
  EXPECT_EQ(map.fields.front().offset, 0);
  for (std::size_t i = 1; i < map.fields.size(); ++i) {
    EXPECT_EQ(map.fields[i].offset, map.fields[i - 1].end()) << i;
    EXPECT_GT(map.fields[i].width, 0) << i;
  }
}

TEST(ConfigMap, PerInstanceFieldsAreAddressable) {
  const ComponentLibrary lib = ComponentLibrary::default_library();
  const ConfigMap map = plan_config_map(named("IMP-I"), lib, {.n = 4});
  int ips = 0, dps = 0;
  for (const ConfigField& field : map.fields) {
    if (field.component.rfind("IP[", 0) == 0) ++ips;
    if (field.component.rfind("DP[", 0) == 0) ++dps;
  }
  EXPECT_EQ(ips, 4);
  EXPECT_EQ(dps, 4);
}

TEST(ConfigMap, DirectOnlyMachinesHaveNoSwitchFields) {
  const ComponentLibrary lib = ComponentLibrary::default_library();
  const ConfigMap map = plan_config_map(named("IUP"), lib);
  for (const ConfigField& field : map.fields) {
    EXPECT_EQ(field.component.find("switch"), std::string::npos)
        << field.component;
  }
}

TEST(ConfigMap, SwitchFieldsAppearForCrossbars) {
  const ComponentLibrary lib = ComponentLibrary::default_library();
  const ConfigMap map = plan_config_map(named("IMP-XVI"), lib, {.n = 8});
  bool dpdp = false, ipim = false, ipdp = false;
  for (const ConfigField& field : map.fields) {
    if (field.component == "DP-DP switch") dpdp = true;
    if (field.component == "IP-IM switch") ipim = true;
    if (field.component == "IP-DP switch") ipdp = true;
  }
  EXPECT_TRUE(dpdp);
  EXPECT_TRUE(ipim);
  EXPECT_FALSE(ipdp);  // Eq. 2 as printed omits it

  EstimateOptions extended{.n = 8};
  extended.include_ip_dp_switch = true;
  const ConfigMap with_term =
      plan_config_map(named("IMP-XVI"), lib, extended);
  bool found = false;
  for (const ConfigField& field : with_term.fields) {
    if (field.component == "IP-DP switch") found = true;
  }
  EXPECT_TRUE(found);
}

TEST(ConfigMap, LutFabricFields) {
  const ComponentLibrary lib = ComponentLibrary::default_library();
  const ConfigMap map = plan_config_map(named("USP"), lib, {.v = 16});
  int luts = 0;
  for (const ConfigField& field : map.fields) {
    if (field.component.rfind("LUT[", 0) == 0) ++luts;
  }
  EXPECT_EQ(luts, 16);
}

TEST(ConfigMap, FieldAtLookup) {
  const ComponentLibrary lib = ComponentLibrary::default_library();
  const ConfigMap map = plan_config_map(named("IUP"), lib);
  const ConfigField* first = map.field_at(0);
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first->component, "IP[0]");
  const ConfigField* last = map.field_at(map.total_bits() - 1);
  ASSERT_NE(last, nullptr);
  EXPECT_EQ(last->component, "DM[0]");
  EXPECT_EQ(map.field_at(map.total_bits()), nullptr);
  EXPECT_EQ(map.field_at(-1), nullptr);
}

TEST(ConfigMap, ToStringListsFields) {
  const ComponentLibrary lib = ComponentLibrary::default_library();
  const std::string text =
      plan_config_map(named("IAP-II"), lib, {.n = 2}).to_string();
  EXPECT_NE(text.find("DP[1]"), std::string::npos);
  EXPECT_NE(text.find("DP-DP switch"), std::string::npos);
  EXPECT_NE(text.find("total:"), std::string::npos);
}

TEST(ConfigMap, MontiumAsymmetricLayout) {
  const ComponentLibrary lib = ComponentLibrary::default_library();
  const arch::ArchitectureSpec* montium = arch::find_architecture("Montium");
  ASSERT_NE(montium, nullptr);
  const ConfigMap map = plan_config_map(*montium, lib);
  int dms = 0;
  for (const ConfigField& field : map.fields) {
    if (field.component.rfind("DM[", 0) == 0) ++dms;
  }
  EXPECT_EQ(dms, 10);  // 10 memory banks from the 5x10 cell
}

}  // namespace
}  // namespace mpct::cost
