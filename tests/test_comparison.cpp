#include "core/comparison.hpp"

#include <gtest/gtest.h>

#include "core/flexibility.hpp"
#include "core/taxonomy_table.hpp"

namespace mpct {
namespace {

TaxonomicName name_of(const char* text) {
  return *parse_taxonomic_name(text);
}

TEST(Compare, IdenticalNames) {
  const NameComparison cmp = compare(name_of("IMP-III"), name_of("IMP-III"));
  EXPECT_TRUE(cmp.identical);
  EXPECT_TRUE(cmp.same_machine_type);
  EXPECT_TRUE(cmp.same_processing_type);
  EXPECT_TRUE(cmp.same_subtype);
  EXPECT_TRUE(cmp.differing_columns.empty());
  EXPECT_EQ(cmp.similarity_level(), 3);
  EXPECT_EQ(cmp.summary(), "identical classes");
}

TEST(Compare, SameSubtypeAcrossFamilies) {
  // Section III-A: IAP-I and IMP-I share the same connectivity pattern.
  const NameComparison cmp = compare(name_of("IAP-I"), name_of("IMP-I"));
  EXPECT_FALSE(cmp.identical);
  EXPECT_TRUE(cmp.same_machine_type);
  EXPECT_FALSE(cmp.same_processing_type);
  EXPECT_TRUE(cmp.same_subtype);
  // Canonical structures differ only in multiplicity, not switch kinds.
  EXPECT_TRUE(cmp.differing_columns.empty());
}

TEST(Compare, DifferentFlowParadigms) {
  const NameComparison cmp = compare(name_of("DMP-II"), name_of("IAP-II"));
  EXPECT_FALSE(cmp.same_machine_type);
  EXPECT_FALSE(cmp.same_processing_type);
  EXPECT_TRUE(cmp.same_subtype);
  EXPECT_EQ(cmp.similarity_level(), 1);
}

TEST(Compare, ColumnDiffsIdentifyTheSwitch) {
  const NameComparison cmp = compare(name_of("IMP-I"), name_of("IMP-II"));
  ASSERT_EQ(cmp.differing_columns.size(), 1u);
  EXPECT_EQ(cmp.differing_columns[0].role, ConnectivityRole::DpDp);
  EXPECT_EQ(cmp.differing_columns[0].left, SwitchKind::None);
  EXPECT_EQ(cmp.differing_columns[0].right, SwitchKind::Crossbar);
  EXPECT_NE(cmp.summary().find("DP-DP"), std::string::npos);
}

TEST(Compare, ImpVsIspDiffersInIpIp) {
  const NameComparison cmp = compare(name_of("IMP-VII"), name_of("ISP-VII"));
  ASSERT_EQ(cmp.differing_columns.size(), 1u);
  EXPECT_EQ(cmp.differing_columns[0].role, ConnectivityRole::IpIp);
}

// -- can_morph_into: the executable form of Section III-B's ordering. --

TEST(Morph, ImpActsAsArrayProcessor) {
  EXPECT_TRUE(can_morph_into(name_of("IMP-I"), name_of("IAP-I")));
  EXPECT_TRUE(can_morph_into(name_of("IMP-IV"), name_of("IAP-IV")));
  EXPECT_TRUE(can_morph_into(name_of("IMP-XVI"), name_of("IAP-I")));
}

TEST(Morph, IapCannotActAsImp) {
  EXPECT_FALSE(can_morph_into(name_of("IAP-I"), name_of("IMP-I")));
  EXPECT_FALSE(can_morph_into(name_of("IAP-IV"), name_of("IMP-I")));
}

TEST(Morph, IapActsAsUniprocessorButNotConversely) {
  EXPECT_TRUE(can_morph_into(name_of("IAP-I"), name_of("IUP")));
  EXPECT_FALSE(can_morph_into(name_of("IUP"), name_of("IAP-I")));
}

TEST(Morph, SubtypeSwitchesGate) {
  // IMP-I lacks the DP-DP crossbar IAP-II needs.
  EXPECT_FALSE(can_morph_into(name_of("IMP-I"), name_of("IAP-II")));
  EXPECT_TRUE(can_morph_into(name_of("IMP-II"), name_of("IAP-II")));
  // A crossbar can impersonate a direct link: XVI reaches everything
  // below it in its own family.
  EXPECT_TRUE(can_morph_into(name_of("IMP-XVI"), name_of("IMP-I")));
  EXPECT_FALSE(can_morph_into(name_of("IMP-I"), name_of("IMP-XVI")));
}

TEST(Morph, SpatialReachesMultiButNotConversely) {
  EXPECT_TRUE(can_morph_into(name_of("ISP-I"), name_of("IMP-I")));
  EXPECT_FALSE(can_morph_into(name_of("IMP-I"), name_of("ISP-I")));
}

TEST(Morph, FlowParadigmsDoNotSubstitute) {
  EXPECT_FALSE(can_morph_into(name_of("IMP-XVI"), name_of("DMP-I")));
  EXPECT_FALSE(can_morph_into(name_of("DMP-IV"), name_of("IUP")));
}

TEST(Morph, UniversalReachesEverything) {
  for (const TaxonomyEntry& row : extended_taxonomy()) {
    if (!row.name) continue;
    EXPECT_TRUE(can_morph_into(name_of("USP"), *row.name))
        << to_string(*row.name);
  }
}

TEST(Morph, NothingReachesUniversal) {
  for (const TaxonomyEntry& row : extended_taxonomy()) {
    if (!row.name || row.name->machine_type == MachineType::UniversalFlow) {
      continue;
    }
    EXPECT_FALSE(can_morph_into(*row.name, name_of("USP")))
        << to_string(*row.name);
  }
}

TEST(Morph, ReflexiveOverCanonicalClasses) {
  for (const TaxonomyEntry& row : extended_taxonomy()) {
    if (!row.name) continue;
    EXPECT_TRUE(can_morph_into(*row.name, *row.name))
        << to_string(*row.name);
  }
}

/// Property: morphing is consistent with flexibility — if a can morph
/// into b (a != b, same machine type), then flex(a) >= flex(b).
TEST(Morph, ConsistentWithFlexibilityScores) {
  for (const TaxonomyEntry& a : extended_taxonomy()) {
    if (!a.name) continue;
    for (const TaxonomyEntry& b : extended_taxonomy()) {
      if (!b.name) continue;
      if (can_morph_into(*a.name, *b.name)) {
        EXPECT_GE(flexibility_score(a.machine), flexibility_score(b.machine))
            << to_string(*a.name) << " -> " << to_string(*b.name);
      }
    }
  }
}

}  // namespace
}  // namespace mpct
