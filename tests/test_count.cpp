#include "arch/count.hpp"

#include <gtest/gtest.h>

namespace mpct::arch {
namespace {

TEST(Count, DefaultIsFixedZero) {
  const Count c;
  EXPECT_EQ(c.kind(), Count::Kind::Fixed);
  EXPECT_EQ(c.value(), 0);
  EXPECT_EQ(c.multiplicity(), Multiplicity::Zero);
}

TEST(Count, FixedMultiplicities) {
  EXPECT_EQ(Count::fixed(0).multiplicity(), Multiplicity::Zero);
  EXPECT_EQ(Count::fixed(1).multiplicity(), Multiplicity::One);
  EXPECT_EQ(Count::fixed(2).multiplicity(), Multiplicity::Many);
  EXPECT_EQ(Count::fixed(64).multiplicity(), Multiplicity::Many);
}

TEST(Count, SymbolicAndVariable) {
  EXPECT_EQ(Count::symbolic('n').multiplicity(), Multiplicity::Many);
  EXPECT_EQ(Count::symbolic('m').multiplicity(), Multiplicity::Many);
  EXPECT_EQ(Count::scaled_symbolic(24, 'n').multiplicity(),
            Multiplicity::Many);
  EXPECT_EQ(Count::variable().multiplicity(), Multiplicity::Variable);
}

TEST(Count, ToStringUsesTableNotation) {
  EXPECT_EQ(Count::fixed(64).to_string(), "64");
  EXPECT_EQ(Count::symbolic('n').to_string(), "n");
  EXPECT_EQ(Count::symbolic('m').to_string(), "m");
  EXPECT_EQ(Count::scaled_symbolic(24, 'n').to_string(), "24n");
  EXPECT_EQ(Count::variable().to_string(), "v");
}

TEST(Count, ParseAcceptsTableNotation) {
  EXPECT_EQ(Count::parse("0"), Count::fixed(0));
  EXPECT_EQ(Count::parse("1"), Count::fixed(1));
  EXPECT_EQ(Count::parse("64"), Count::fixed(64));
  EXPECT_EQ(Count::parse("n"), Count::symbolic('n'));
  EXPECT_EQ(Count::parse("m"), Count::symbolic('m'));
  EXPECT_EQ(Count::parse("N"), Count::symbolic('n'));
  EXPECT_EQ(Count::parse("v"), Count::variable());
  EXPECT_EQ(Count::parse("V"), Count::variable());
  EXPECT_EQ(Count::parse("24n"), Count::scaled_symbolic(24, 'n'));
}

TEST(Count, ParseRejectsMalformed) {
  EXPECT_EQ(Count::parse(""), std::nullopt);
  EXPECT_EQ(Count::parse("-1"), std::nullopt);
  EXPECT_EQ(Count::parse("n24"), std::nullopt);
  EXPECT_EQ(Count::parse("24v"), std::nullopt);  // scaled variable: no
  EXPECT_EQ(Count::parse("0n"), std::nullopt);   // zero scale: no
  EXPECT_EQ(Count::parse("24x"), std::nullopt);
  EXPECT_EQ(Count::parse("nn"), std::nullopt);
  EXPECT_EQ(Count::parse("12345678901"), std::nullopt);  // implausible
}

TEST(Count, EvaluateFixedIgnoresBindings) {
  EXPECT_EQ(Count::fixed(7).evaluate(), 7);
  EXPECT_EQ(Count::fixed(7).evaluate({{'n', 99}}), 7);
}

TEST(Count, EvaluateSymbolicNeedsBinding) {
  EXPECT_EQ(Count::symbolic('n').evaluate(), std::nullopt);
  EXPECT_EQ(Count::symbolic('n').evaluate({{'n', 8}}), 8);
  EXPECT_EQ(Count::symbolic('m').evaluate({{'n', 8}}), std::nullopt);
  EXPECT_EQ(Count::symbolic('m').evaluate({{'m', 3}}), 3);
}

TEST(Count, EvaluateScaledMultiplies) {
  // GARP: 24 logic elements per row, n rows.
  EXPECT_EQ(Count::scaled_symbolic(24, 'n').evaluate({{'n', 4}}), 96);
}

TEST(Count, EvaluateVariableIsUnbound) {
  EXPECT_EQ(Count::variable().evaluate({{'n', 8}}), std::nullopt);
}

/// Property: parse/to_string round-trip over representative counts.
class CountRoundTrip : public ::testing::TestWithParam<const char*> {};

TEST_P(CountRoundTrip, RoundTrips) {
  const auto parsed = Count::parse(GetParam());
  ASSERT_TRUE(parsed.has_value()) << GetParam();
  EXPECT_EQ(parsed->to_string(), GetParam());
}

INSTANTIATE_TEST_SUITE_P(TableIIICounts, CountRoundTrip,
                         ::testing::Values("0", "1", "2", "4", "5", "6", "8",
                                           "16", "24", "48", "64", "n", "m",
                                           "v", "24n"));

}  // namespace
}  // namespace mpct::arch
