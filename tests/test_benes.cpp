#include "interconnect/benes.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "interconnect/crossbar.hpp"
#include "interconnect/omega.hpp"
#include "interconnect/traffic.hpp"

namespace mpct::interconnect {
namespace {

std::vector<int> random_permutation(int n, Rng& rng) {
  std::vector<int> perm(static_cast<std::size_t>(n));
  std::iota(perm.begin(), perm.end(), 0);
  for (int i = n - 1; i > 0; --i) {
    std::swap(perm[static_cast<std::size_t>(i)],
              perm[rng.next_below(static_cast<std::uint64_t>(i + 1))]);
  }
  return perm;
}

TEST(Benes, ShapeRules) {
  EXPECT_THROW(BenesNetwork(3), std::invalid_argument);
  EXPECT_THROW(BenesNetwork(0), std::invalid_argument);
  EXPECT_EQ(BenesNetwork(2).stage_count(), 1);
  EXPECT_EQ(BenesNetwork(8).stage_count(), 5);
  EXPECT_EQ(BenesNetwork(64).stage_count(), 11);
}

TEST(Benes, IdentityByDefault) {
  const BenesNetwork net(8);
  for (int o = 0; o < 8; ++o) {
    EXPECT_EQ(net.source_of(o), o);
  }
}

TEST(Benes, RoutesSimpleSwap) {
  BenesNetwork net(4);
  net.route_permutation({1, 0, 2, 3});
  EXPECT_EQ(net.source_of(0), 1);
  EXPECT_EQ(net.source_of(1), 0);
  EXPECT_EQ(net.source_of(2), 2);
  const auto out = net.propagate({10, 20, 30, 40});
  EXPECT_EQ(out, (std::vector<std::uint64_t>{20, 10, 30, 40}));
}

TEST(Benes, RejectsMalformedPermutations) {
  BenesNetwork net(4);
  EXPECT_THROW(net.route_permutation({0, 1, 2}), std::invalid_argument);
  EXPECT_THROW(net.route_permutation({0, 0, 2, 3}), std::invalid_argument);
  EXPECT_THROW(net.route_permutation({0, 1, 2, 9}), std::invalid_argument);
}

TEST(Benes, BitReversalRoutes) {
  // The permutation that blocks an Omega network routes on a Beneš.
  BenesNetwork net(8);
  const std::vector<int> reversal{0, 4, 2, 6, 1, 5, 3, 7};
  net.route_permutation(reversal);
  for (int o = 0; o < 8; ++o) {
    EXPECT_EQ(net.source_of(o), reversal[static_cast<std::size_t>(o)]);
  }
}

TEST(Benes, RearrangeableWhereOmegaBlocks) {
  // Find a permutation the Omega cannot route; the Beneš must route it.
  OmegaNetwork omega(16);
  BenesNetwork benes(16);
  Rng rng(31);
  bool found = false;
  for (int attempt = 0; attempt < 50 && !found; ++attempt) {
    const std::vector<int> perm = random_permutation(16, rng);
    if (omega.route_permutation(perm) < 16) {
      found = true;
      benes.route_permutation(perm);
      for (int o = 0; o < 16; ++o) {
        EXPECT_EQ(benes.source_of(o), perm[static_cast<std::size_t>(o)]);
      }
    }
  }
  EXPECT_TRUE(found) << "no omega-blocking permutation sampled";
}

TEST(Benes, ConfigBitsBetweenOmegaAndCrossbar) {
  BenesNetwork benes(64);
  OmegaNetwork omega(64);
  Crossbar xbar(64, 64);
  EXPECT_EQ(benes.config_bits(), 11 * 32);
  EXPECT_GT(benes.config_bits(), omega.config_bits());
  EXPECT_LT(benes.config_bits(), xbar.config_bits());
}

TEST(Benes, ReRoutingReplacesConfiguration) {
  BenesNetwork net(8);
  Rng rng(5);
  const auto first = random_permutation(8, rng);
  const auto second = random_permutation(8, rng);
  net.route_permutation(first);
  net.route_permutation(second);
  for (int o = 0; o < 8; ++o) {
    EXPECT_EQ(net.source_of(o), second[static_cast<std::size_t>(o)]);
  }
}

TEST(Benes, PropagateValidatesWidth) {
  BenesNetwork net(4);
  EXPECT_THROW(net.propagate({1, 2}), std::invalid_argument);
  EXPECT_THROW(net.source_of(9), std::invalid_argument);
}

/// The rearrangeability property: EVERY sampled random permutation
/// routes exactly, across sizes — the defining contrast with Omega.
class BenesRearrangeable : public ::testing::TestWithParam<int> {};

TEST_P(BenesRearrangeable, AllSampledPermutationsRoute) {
  const int n = GetParam();
  BenesNetwork net(n);
  Rng rng(static_cast<std::uint64_t>(n) * 7919);
  for (int trial = 0; trial < 50; ++trial) {
    const std::vector<int> perm = random_permutation(n, rng);
    net.route_permutation(perm);
    // Validate through actual value propagation, not bookkeeping.
    std::vector<std::uint64_t> inputs(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      inputs[static_cast<std::size_t>(i)] =
          static_cast<std::uint64_t>(100 + i);
    }
    const auto out = net.propagate(inputs);
    for (int o = 0; o < n; ++o) {
      EXPECT_EQ(out[static_cast<std::size_t>(o)],
                static_cast<std::uint64_t>(
                    100 + perm[static_cast<std::size_t>(o)]))
          << "n=" << n << " trial=" << trial << " output=" << o;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(PowersOfTwo, BenesRearrangeable,
                         ::testing::Values(2, 4, 8, 16, 32, 64, 128));

}  // namespace
}  // namespace mpct::interconnect
