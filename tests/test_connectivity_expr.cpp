#include "arch/connectivity_expr.hpp"

#include <gtest/gtest.h>

namespace mpct::arch {
namespace {

TEST(ConnectivityExpr, NoneRoundTrips) {
  EXPECT_EQ(ConnectivityExpr::none().to_string(), "none");
  EXPECT_EQ(ConnectivityExpr::parse("none"), ConnectivityExpr::none());
  EXPECT_EQ(ConnectivityExpr::parse("NONE"), ConnectivityExpr::none());
}

TEST(ConnectivityExpr, DirectCells) {
  const auto expr = ConnectivityExpr::parse("1-6");
  ASSERT_TRUE(expr.has_value());
  EXPECT_EQ(expr->kind, SwitchKind::Direct);
  EXPECT_EQ(expr->left, Count::fixed(1));
  EXPECT_EQ(expr->right, Count::fixed(6));
}

TEST(ConnectivityExpr, CrossbarCells) {
  const auto expr = ConnectivityExpr::parse("5x10");
  ASSERT_TRUE(expr.has_value());
  EXPECT_EQ(expr->kind, SwitchKind::Crossbar);
  EXPECT_EQ(expr->left, Count::fixed(5));
  EXPECT_EQ(expr->right, Count::fixed(10));
}

TEST(ConnectivityExpr, SymbolicCells) {
  const auto nxm = ConnectivityExpr::parse("nxm");
  ASSERT_TRUE(nxm.has_value());
  EXPECT_EQ(nxm->kind, SwitchKind::Crossbar);
  EXPECT_EQ(nxm->left, Count::symbolic('n'));
  EXPECT_EQ(nxm->right, Count::symbolic('m'));

  const auto nx14 = ConnectivityExpr::parse("nx14");
  ASSERT_TRUE(nx14.has_value());
  EXPECT_EQ(nx14->left, Count::symbolic('n'));
  EXPECT_EQ(nx14->right, Count::fixed(14));
}

TEST(ConnectivityExpr, GarpProductCells) {
  // The trickiest cell in Table III: "24nx24n" — separator between two
  // scaled products.
  const auto expr = ConnectivityExpr::parse("24nx24n");
  ASSERT_TRUE(expr.has_value());
  EXPECT_EQ(expr->kind, SwitchKind::Crossbar);
  EXPECT_EQ(expr->left, Count::scaled_symbolic(24, 'n'));
  EXPECT_EQ(expr->right, Count::scaled_symbolic(24, 'n'));

  const auto direct = ConnectivityExpr::parse("1-24n");
  ASSERT_TRUE(direct.has_value());
  EXPECT_EQ(direct->kind, SwitchKind::Direct);
  EXPECT_EQ(direct->right, Count::scaled_symbolic(24, 'n'));
}

TEST(ConnectivityExpr, VariableCells) {
  const auto expr = ConnectivityExpr::parse("vxv");
  ASSERT_TRUE(expr.has_value());
  EXPECT_EQ(expr->kind, SwitchKind::Crossbar);
  EXPECT_EQ(expr->left, Count::variable());
  EXPECT_EQ(expr->right, Count::variable());
}

TEST(ConnectivityExpr, ParseIsCaseInsensitive) {
  EXPECT_EQ(ConnectivityExpr::parse("VXV"), ConnectivityExpr::parse("vxv"));
  EXPECT_EQ(ConnectivityExpr::parse("64X64"),
            ConnectivityExpr::parse("64x64"));
}

TEST(ConnectivityExpr, RejectsMalformed) {
  EXPECT_EQ(ConnectivityExpr::parse(""), std::nullopt);
  EXPECT_EQ(ConnectivityExpr::parse("x"), std::nullopt);
  EXPECT_EQ(ConnectivityExpr::parse("64x"), std::nullopt);
  EXPECT_EQ(ConnectivityExpr::parse("x64"), std::nullopt);
  EXPECT_EQ(ConnectivityExpr::parse("64"), std::nullopt);
  EXPECT_EQ(ConnectivityExpr::parse("a-b"), std::nullopt);
  EXPECT_EQ(ConnectivityExpr::parse("64~64"), std::nullopt);
}

/// Property: every cell string appearing in Table III round-trips.
class ExprRoundTrip : public ::testing::TestWithParam<const char*> {};

TEST_P(ExprRoundTrip, RoundTrips) {
  const auto parsed = ConnectivityExpr::parse(GetParam());
  ASSERT_TRUE(parsed.has_value()) << GetParam();
  EXPECT_EQ(parsed->to_string(), GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    TableIIICells, ExprRoundTrip,
    ::testing::Values("none", "1-1", "1-6", "1-64", "1-n", "1-8", "n-n",
                      "1-5", "1-24n", "1-2", "48-48", "4-4", "2-2", "n-1",
                      "6-1", "64-1", "8-1", "m-1", "6x6", "64x64", "nxn",
                      "8x8", "5x10", "24nx1", "24nx24n", "nx1", "2x2",
                      "nxm", "mxm", "22x1", "16x6", "16x16", "nx14", "vxv",
                      "5x5"));

}  // namespace
}  // namespace mpct::arch
