#include "sim/morph.hpp"

#include <gtest/gtest.h>

namespace mpct::sim {
namespace {

TEST(Morph, ImpActsAsIap) {
  const MorphDemo demo = demo_imp_acts_as_iap(4);
  EXPECT_TRUE(demo.succeeded) << demo.detail;
  EXPECT_EQ(to_string(demo.from), "IMP-I");
  EXPECT_EQ(to_string(demo.to), "IAP-I");
}

TEST(Morph, ImpActsAsIapAcrossWidths) {
  for (int lanes : {1, 2, 3, 8, 16}) {
    EXPECT_TRUE(demo_imp_acts_as_iap(lanes).succeeded) << lanes;
  }
}

TEST(Morph, IapCannotActAsImp) {
  const MorphDemo demo = demo_iap_cannot_act_as_imp(4);
  EXPECT_FALSE(demo.succeeded);
  // The IMP ran the mixed workload: detail carries its outputs.
  EXPECT_NE(demo.detail.find("IMP ran"), std::string::npos);
  EXPECT_NE(demo.detail.find("100"), std::string::npos);
}

TEST(Morph, IapActsAsIup) {
  const MorphDemo demo = demo_iap_acts_as_iup();
  EXPECT_TRUE(demo.succeeded) << demo.detail;
  EXPECT_NE(demo.detail.find("42"), std::string::npos);
}

TEST(Morph, SubtypeGatesShuffle) {
  const MorphDemo demo = demo_subtype_gates_shuffle(4);
  EXPECT_FALSE(demo.succeeded);
  EXPECT_NE(demo.detail.find("trapped"), std::string::npos);
  EXPECT_NE(demo.detail.find("DP-DP"), std::string::npos);
}

TEST(Morph, AllDemosRun) {
  const auto demos = all_morph_demos(4);
  ASSERT_EQ(demos.size(), 4u);
  for (const MorphDemo& demo : demos) {
    EXPECT_FALSE(demo.description.empty());
    EXPECT_FALSE(demo.detail.empty());
  }
  // The positive morphs succeed, the negative ones fail — matching the
  // can_morph_into partial order.
  EXPECT_TRUE(demos[0].succeeded);
  EXPECT_FALSE(demos[1].succeeded);
  EXPECT_TRUE(demos[2].succeeded);
  EXPECT_FALSE(demos[3].succeeded);
}

}  // namespace
}  // namespace mpct::sim
