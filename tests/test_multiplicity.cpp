#include "core/multiplicity.hpp"

#include <gtest/gtest.h>

namespace mpct {
namespace {

TEST(Multiplicity, SymbolsMatchTableNotation) {
  EXPECT_EQ(to_symbol(Multiplicity::Zero), "0");
  EXPECT_EQ(to_symbol(Multiplicity::One), "1");
  EXPECT_EQ(to_symbol(Multiplicity::Many), "n");
  EXPECT_EQ(to_symbol(Multiplicity::Variable), "v");
}

TEST(Multiplicity, ParsesTableSymbols) {
  EXPECT_EQ(multiplicity_from_symbol("0"), Multiplicity::Zero);
  EXPECT_EQ(multiplicity_from_symbol("1"), Multiplicity::One);
  EXPECT_EQ(multiplicity_from_symbol("n"), Multiplicity::Many);
  EXPECT_EQ(multiplicity_from_symbol("v"), Multiplicity::Variable);
}

TEST(Multiplicity, ParsesSecondSymbolicConstantAsMany) {
  // RaPiD's Table III row uses 'm' for its second template dimension.
  EXPECT_EQ(multiplicity_from_symbol("m"), Multiplicity::Many);
  EXPECT_EQ(multiplicity_from_symbol("M"), Multiplicity::Many);
}

TEST(Multiplicity, RejectsUnknownSymbols) {
  EXPECT_EQ(multiplicity_from_symbol(""), std::nullopt);
  EXPECT_EQ(multiplicity_from_symbol("2"), std::nullopt);
  EXPECT_EQ(multiplicity_from_symbol("nn"), std::nullopt);
  EXPECT_EQ(multiplicity_from_symbol("x"), std::nullopt);
}

TEST(Multiplicity, CountsAsManyDrivesScoring) {
  // The Table II rule: 'n' IPs or DPs score a point; 'v' subsumes 'n'.
  EXPECT_FALSE(counts_as_many(Multiplicity::Zero));
  EXPECT_FALSE(counts_as_many(Multiplicity::One));
  EXPECT_TRUE(counts_as_many(Multiplicity::Many));
  EXPECT_TRUE(counts_as_many(Multiplicity::Variable));
}

TEST(Multiplicity, OrderingReflectsCapability) {
  EXPECT_LT(Multiplicity::Zero, Multiplicity::One);
  EXPECT_LT(Multiplicity::One, Multiplicity::Many);
  EXPECT_LT(Multiplicity::Many, Multiplicity::Variable);
}

TEST(Multiplicity, NamesAreHumanReadable) {
  EXPECT_EQ(to_string(Multiplicity::Zero), "zero");
  EXPECT_EQ(to_string(Multiplicity::One), "one");
  EXPECT_EQ(to_string(Multiplicity::Many), "many");
  EXPECT_EQ(to_string(Multiplicity::Variable), "variable");
}

}  // namespace
}  // namespace mpct
