#include "core/classifier.hpp"

#include <gtest/gtest.h>

#include "core/taxonomy_table.hpp"

namespace mpct {
namespace {

MachineClass make(Multiplicity ips, Multiplicity dps, SwitchKind ip_ip,
                  SwitchKind ip_dp, SwitchKind ip_im, SwitchKind dp_dm,
                  SwitchKind dp_dp,
                  Granularity granularity = Granularity::IpDp) {
  MachineClass mc;
  mc.granularity = granularity;
  mc.ips = ips;
  mc.dps = dps;
  mc.set_switch(ConnectivityRole::IpIp, ip_ip);
  mc.set_switch(ConnectivityRole::IpDp, ip_dp);
  mc.set_switch(ConnectivityRole::IpIm, ip_im);
  mc.set_switch(ConnectivityRole::DpDm, dp_dm);
  mc.set_switch(ConnectivityRole::DpDp, dp_dp);
  return mc;
}

TEST(SubtypeNumbering, ArraySubtypeBits) {
  // Bits (DP-DM, DP-DP), I..IV — the DMP/IAP ordering of Table I.
  EXPECT_EQ(array_subtype(SwitchKind::Direct, SwitchKind::None), 1);
  EXPECT_EQ(array_subtype(SwitchKind::Direct, SwitchKind::Crossbar), 2);
  EXPECT_EQ(array_subtype(SwitchKind::Crossbar, SwitchKind::None), 3);
  EXPECT_EQ(array_subtype(SwitchKind::Crossbar, SwitchKind::Crossbar), 4);
}

TEST(SubtypeNumbering, MultiSubtypeBits) {
  // Bits (IP-DP, IP-IM, DP-DM, DP-DP), I..XVI.
  EXPECT_EQ(multi_subtype(SwitchKind::Direct, SwitchKind::Direct,
                          SwitchKind::Direct, SwitchKind::None),
            1);
  EXPECT_EQ(multi_subtype(SwitchKind::Direct, SwitchKind::Direct,
                          SwitchKind::Direct, SwitchKind::Crossbar),
            2);
  EXPECT_EQ(multi_subtype(SwitchKind::Direct, SwitchKind::Crossbar,
                          SwitchKind::Direct, SwitchKind::None),
            5);
  EXPECT_EQ(multi_subtype(SwitchKind::Crossbar, SwitchKind::Direct,
                          SwitchKind::Direct, SwitchKind::None),
            9);
  EXPECT_EQ(multi_subtype(SwitchKind::Crossbar, SwitchKind::Crossbar,
                          SwitchKind::Direct, SwitchKind::Crossbar),
            14);  // RaPiD's IMP-XIV pattern
  EXPECT_EQ(multi_subtype(SwitchKind::Crossbar, SwitchKind::Crossbar,
                          SwitchKind::Crossbar, SwitchKind::Crossbar),
            16);
}

TEST(Classifier, DataFlowUniProcessor) {
  const auto result =
      classify(make(Multiplicity::Zero, Multiplicity::One, SwitchKind::None,
                    SwitchKind::None, SwitchKind::None, SwitchKind::Direct,
                    SwitchKind::None));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(to_string(*result.name), "DUP");
}

TEST(Classifier, DataFlowMultiProcessorSubtypes) {
  for (int sub = 1; sub <= 4; ++sub) {
    const bool dm_x = (sub - 1) & 2;
    const bool dp_x = (sub - 1) & 1;
    const auto result = classify(
        make(Multiplicity::Zero, Multiplicity::Many, SwitchKind::None,
             SwitchKind::None, SwitchKind::None,
             dm_x ? SwitchKind::Crossbar : SwitchKind::Direct,
             dp_x ? SwitchKind::Crossbar : SwitchKind::None));
    ASSERT_TRUE(result.ok()) << sub;
    EXPECT_EQ(result.name->subtype, sub);
    EXPECT_EQ(result.name->machine_type, MachineType::DataFlow);
  }
}

TEST(Classifier, InstructionFlowUniProcessor) {
  const auto result = classify(
      make(Multiplicity::One, Multiplicity::One, SwitchKind::None,
           SwitchKind::Direct, SwitchKind::Direct, SwitchKind::Direct,
           SwitchKind::None));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(to_string(*result.name), "IUP");
}

TEST(Classifier, IpIpConnectivityMakesSpatial) {
  const MachineClass imp =
      make(Multiplicity::Many, Multiplicity::Many, SwitchKind::None,
           SwitchKind::Direct, SwitchKind::Direct, SwitchKind::Direct,
           SwitchKind::Crossbar);
  MachineClass isp = imp;
  isp.set_switch(ConnectivityRole::IpIp, SwitchKind::Crossbar);

  const auto imp_result = classify(imp);
  const auto isp_result = classify(isp);
  ASSERT_TRUE(imp_result.ok());
  ASSERT_TRUE(isp_result.ok());
  EXPECT_EQ(to_string(*imp_result.name), "IMP-II");
  EXPECT_EQ(to_string(*isp_result.name), "ISP-II");
}

TEST(Classifier, LutGranularityIsUniversal) {
  const auto result = classify(
      make(Multiplicity::Variable, Multiplicity::Variable,
           SwitchKind::Crossbar, SwitchKind::Crossbar, SwitchKind::Crossbar,
           SwitchKind::Crossbar, SwitchKind::Crossbar, Granularity::Lut));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(to_string(*result.name), "USP");
}

TEST(Classifier, VariableCountsWithoutLutGranularityRejected) {
  const auto result = classify(
      make(Multiplicity::Variable, Multiplicity::Variable,
           SwitchKind::Crossbar, SwitchKind::Crossbar, SwitchKind::Crossbar,
           SwitchKind::Crossbar, SwitchKind::Crossbar));
  EXPECT_FALSE(result.ok());
  EXPECT_FALSE(result.implementable);
  EXPECT_NE(result.note.find("LUT granularity"), std::string::npos);
}

TEST(Classifier, ManyIpsOneDpIsNotImplementable) {
  const auto result = classify(
      make(Multiplicity::Many, Multiplicity::One, SwitchKind::None,
           SwitchKind::Direct, SwitchKind::Direct, SwitchKind::Direct,
           SwitchKind::None));
  EXPECT_FALSE(result.ok());
  EXPECT_FALSE(result.implementable);
  EXPECT_NE(result.note.find("not implementable"), std::string::npos);
}

TEST(Classifier, ZeroDpsRejected) {
  const auto result = classify(
      make(Multiplicity::One, Multiplicity::Zero, SwitchKind::None,
           SwitchKind::Direct, SwitchKind::Direct, SwitchKind::None,
           SwitchKind::None));
  EXPECT_FALSE(result.ok());
}

TEST(Classifier, DataFlowWithIpConnectivityRejected) {
  const auto result = classify(
      make(Multiplicity::Zero, Multiplicity::Many, SwitchKind::None,
           SwitchKind::Direct, SwitchKind::None, SwitchKind::Direct,
           SwitchKind::None));
  EXPECT_FALSE(result.ok());
}

TEST(Classifier, DirectIpIpStillSpatial) {
  // DRRA's IP-IP window is a restricted switch, but any IP-IP
  // connectivity composes processors: the class is spatial.
  const auto result = classify(
      make(Multiplicity::Many, Multiplicity::Many, SwitchKind::Direct,
           SwitchKind::Direct, SwitchKind::Direct, SwitchKind::Direct,
           SwitchKind::None));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.name->processing_type, ProcessingType::SpatialProcessor);
  EXPECT_EQ(result.name->subtype, 1);
}

/// Property: classify(canonical_class(name)) == name for every named row.
TEST(Classifier, RoundTripsOverCanonicalTable) {
  for (const TaxonomyEntry& row : extended_taxonomy()) {
    if (!row.name) continue;
    const auto mc = canonical_class(*row.name);
    ASSERT_TRUE(mc.has_value()) << to_string(*row.name);
    const auto result = classify(*mc);
    ASSERT_TRUE(result.ok()) << to_string(*row.name);
    EXPECT_EQ(*result.name, *row.name) << to_string(*row.name);
  }
}

/// Property: the four NI rows classify as not implementable.
TEST(Classifier, NiRowsRejected) {
  for (const TaxonomyEntry& row : extended_taxonomy()) {
    if (row.name) continue;
    const auto result = classify(row.machine);
    EXPECT_FALSE(result.ok()) << row.serial;
    EXPECT_FALSE(result.implementable) << row.serial;
  }
}

TEST(CanonicalClass, RejectsNonCanonicalNames) {
  EXPECT_EQ(canonical_class(TaxonomicName{MachineType::DataFlow,
                                          ProcessingType::ArrayProcessor, 1}),
            std::nullopt);
  EXPECT_EQ(canonical_class(TaxonomicName{MachineType::InstructionFlow,
                                          ProcessingType::MultiProcessor,
                                          17}),
            std::nullopt);
  EXPECT_EQ(canonical_class(TaxonomicName{MachineType::InstructionFlow,
                                          ProcessingType::MultiProcessor, 0}),
            std::nullopt);
  EXPECT_EQ(canonical_class(TaxonomicName{MachineType::UniversalFlow,
                                          ProcessingType::SpatialProcessor,
                                          2}),
            std::nullopt);
}

TEST(CanonicalClass, UspIsLutGrainAllCrossbar) {
  const auto usp = canonical_class(
      TaxonomicName{MachineType::UniversalFlow,
                    ProcessingType::SpatialProcessor, 0});
  ASSERT_TRUE(usp.has_value());
  EXPECT_EQ(usp->granularity, Granularity::Lut);
  EXPECT_EQ(usp->ips, Multiplicity::Variable);
  EXPECT_EQ(usp->dps, Multiplicity::Variable);
  for (ConnectivityRole role : kAllConnectivityRoles) {
    EXPECT_EQ(usp->switch_at(role), SwitchKind::Crossbar);
  }
}

}  // namespace
}  // namespace mpct
