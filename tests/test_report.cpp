#include <gtest/gtest.h>

#include "report/chart.hpp"
#include "report/csv.hpp"
#include "report/svg.hpp"
#include "report/table.hpp"

namespace mpct::report {
namespace {

TEST(TextTable, AsciiRenderingAlignsColumns) {
  TextTable table({"Name", "Flex"});
  table.set_align(1, Align::Right);
  table.add_row({"IUP", "0"});
  table.add_row({"IMP-XVI", "6"});
  const std::string out = table.render_ascii();
  EXPECT_NE(out.find("| Name    | Flex |"), std::string::npos);
  EXPECT_NE(out.find("| IUP     |    0 |"), std::string::npos);
  EXPECT_NE(out.find("| IMP-XVI |    6 |"), std::string::npos);
  EXPECT_NE(out.find("+---------+------+"), std::string::npos);
}

TEST(TextTable, SectionsRenderFullWidth) {
  TextTable table({"A", "B"});
  table.add_section("Data Flow Machines");
  table.add_row({"x", "y"});
  const std::string out = table.render_ascii();
  EXPECT_NE(out.find("Data Flow Machines"), std::string::npos);
}

TEST(TextTable, ShortAndLongRowsNormalised) {
  TextTable table({"A", "B", "C"});
  table.add_row({"1"});                    // padded
  table.add_row({"1", "2", "3", "4"});     // truncated
  EXPECT_EQ(table.row_count(), 2u);
  const std::string out = table.render_ascii();
  EXPECT_EQ(out.find("4"), std::string::npos);
}

TEST(TextTable, MarkdownRendering) {
  TextTable table({"Name", "Flex"});
  table.set_align(1, Align::Right);
  table.add_section("Group");
  table.add_row({"IUP", "0"});
  const std::string md = table.render_markdown();
  EXPECT_NE(md.find("| Name | Flex |"), std::string::npos);
  EXPECT_NE(md.find("| --- | ---: |"), std::string::npos);
  EXPECT_NE(md.find("| **Group** |  |"), std::string::npos);
  EXPECT_NE(md.find("| IUP | 0 |"), std::string::npos);
}

TEST(BarChart, ScalesToMaxValue) {
  const std::string out = render_bar_chart(
      {{"FPGA", 8}, {"IUP", 0}, {"MATRIX", 7}},
      BarChartOptions{.max_bar_width = 8, .show_value = true});
  EXPECT_NE(out.find("FPGA   |######## 8"), std::string::npos);
  EXPECT_NE(out.find("IUP    | 0"), std::string::npos);
  EXPECT_NE(out.find("MATRIX |####### 7"), std::string::npos);
}

TEST(BarChart, EmptyInputYieldsEmptyString) {
  EXPECT_EQ(render_bar_chart({}), "");
}

TEST(LineChart, PlotsAllSeriesWithLegend) {
  std::vector<std::string> years{"2005", "2006", "2007", "2008"};
  std::vector<Series> series{
      {"multicore", {1, 5, 20, 60}},
      {"fpga", {30, 32, 35, 40}},
  };
  const std::string out = render_line_chart(years, series);
  EXPECT_NE(out.find("* = multicore"), std::string::npos);
  EXPECT_NE(out.find("o = fpga"), std::string::npos);
  EXPECT_NE(out.find('*'), std::string::npos);
  EXPECT_NE(out.find('o'), std::string::npos);
}

TEST(LineChart, EmptyInputsYieldEmptyString) {
  EXPECT_EQ(render_line_chart({}, {{"x", {}}}), "");
  EXPECT_EQ(render_line_chart({"a"}, {}), "");
}

TEST(Csv, EscapingRules) {
  EXPECT_EQ(CsvWriter::escape("plain"), "plain");
  EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvWriter::escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(Csv, WriteAndParseRoundTrip) {
  CsvWriter writer;
  writer.add_row({"name", "flex", "note"});
  writer.add_row({"PACT XPP", "2", "erratum, formula says 3"});
  writer.add_row({"quote\"y", "8", "multi\nline"});
  const auto rows = parse_csv(writer.str());
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"name", "flex", "note"}));
  EXPECT_EQ(rows[1][2], "erratum, formula says 3");
  EXPECT_EQ(rows[2][0], "quote\"y");
  EXPECT_EQ(rows[2][2], "multi\nline");
}

TEST(Csv, ParseHandlesEmptyFields) {
  const auto rows = parse_csv("a,,c\n,\n");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(rows[1], (std::vector<std::string>{"", ""}));
}

TEST(Csv, CustomSeparator) {
  CsvWriter writer(';');
  writer.add_row({"a;b", "c"});
  EXPECT_EQ(writer.str(), "\"a;b\";c\n");
  const auto rows = parse_csv(writer.str(), ';');
  EXPECT_EQ(rows[0], (std::vector<std::string>{"a;b", "c"}));
}

TEST(Svg, XmlEscaping) {
  EXPECT_EQ(xml_escape("a<b>&\"c\""), "a&lt;b&gt;&amp;&quot;c&quot;");
}

TEST(Svg, BarChartIsWellFormedDocument) {
  SvgOptions options;
  options.title = "Flexibility <relative>";
  const std::string svg =
      svg_bar_chart({{"FPGA", 8}, {"IUP", 0}}, options);
  EXPECT_EQ(svg.find("<svg"), 0u);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  EXPECT_NE(svg.find("&lt;relative&gt;"), std::string::npos);
  EXPECT_NE(svg.find("<rect"), std::string::npos);
  EXPECT_NE(svg.find("FPGA"), std::string::npos);
}

TEST(Svg, LineChartHasPolylinePerSeries) {
  const std::string svg = svg_line_chart(
      {"2005", "2006"}, {{"a", {1, 2}}, {"b", {2, 1}}, {"c", {3, 3}}});
  std::size_t count = 0;
  std::size_t pos = 0;
  while ((pos = svg.find("<polyline", pos)) != std::string::npos) {
    ++count;
    ++pos;
  }
  EXPECT_EQ(count, 3u);
}

}  // namespace
}  // namespace mpct::report
