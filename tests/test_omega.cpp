#include "interconnect/omega.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "interconnect/crossbar.hpp"

namespace mpct::interconnect {
namespace {

TEST(Omega, RequiresPowerOfTwoPorts) {
  EXPECT_THROW(OmegaNetwork(0), std::invalid_argument);
  EXPECT_THROW(OmegaNetwork(3), std::invalid_argument);
  EXPECT_THROW(OmegaNetwork(12), std::invalid_argument);
  EXPECT_NO_THROW(OmegaNetwork(2));
  EXPECT_NO_THROW(OmegaNetwork(64));
}

TEST(Omega, StageCountIsLog2) {
  EXPECT_EQ(OmegaNetwork(2).stage_count(), 1);
  EXPECT_EQ(OmegaNetwork(8).stage_count(), 3);
  EXPECT_EQ(OmegaNetwork(64).stage_count(), 6);
}

TEST(Omega, SingleRouteAlwaysSucceeds) {
  OmegaNetwork net(8);
  for (PortId in = 0; in < 8; ++in) {
    for (PortId out = 0; out < 8; ++out) {
      net.reset();
      EXPECT_TRUE(net.connect(in, out)) << in << "->" << out;
      EXPECT_EQ(net.source_of(out), in);
      EXPECT_EQ(net.route_latency(out), 3);
    }
  }
}

TEST(Omega, IdentityPermutationRoutes) {
  OmegaNetwork net(16);
  std::vector<PortId> identity(16);
  std::iota(identity.begin(), identity.end(), 0);
  EXPECT_EQ(net.route_permutation(identity), 16);
}

TEST(Omega, UniformShiftRoutes) {
  // Cyclic shifts are classic omega-routable permutations.
  OmegaNetwork net(16);
  for (int shift : {1, 3, 7}) {
    std::vector<PortId> perm(16);
    for (int i = 0; i < 16; ++i) perm[static_cast<std::size_t>(i)] = (i + shift) % 16;
    EXPECT_EQ(net.route_permutation(perm), 16) << shift;
  }
}

TEST(Omega, SomePermutationsBlock) {
  // The network is blocking: across all 8!-ish shuffles we only need one
  // witness.  Swapping within pairs while also swapping across halves
  // conflicts in the first stage for N=8 — search a few deterministic
  // permutations for a blocked one.
  OmegaNetwork net(8);
  bool found_blocked = false;
  std::vector<PortId> perm(8);
  std::iota(perm.begin(), perm.end(), 0);
  // Try all rotations of a bit-reversal-like pattern.
  const std::vector<PortId> reversal{0, 4, 2, 6, 1, 5, 3, 7};
  for (int rot = 0; rot < 8 && !found_blocked; ++rot) {
    std::vector<PortId> candidate(8);
    for (int i = 0; i < 8; ++i) {
      candidate[static_cast<std::size_t>(i)] =
          (reversal[static_cast<std::size_t>(i)] + rot) % 8;
    }
    if (net.route_permutation(candidate) < 8) found_blocked = true;
  }
  EXPECT_TRUE(found_blocked)
      << "omega should block on at least one tested permutation";
}

TEST(Omega, FailedConnectLeavesConfigurationIntact) {
  OmegaNetwork net(8);
  // Occupy a path, then find a conflicting request.
  ASSERT_TRUE(net.connect(0, 0));
  bool conflicted = false;
  for (PortId in = 1; in < 8 && !conflicted; ++in) {
    for (PortId out = 1; out < 8 && !conflicted; ++out) {
      if (!net.connect(in, out)) {
        conflicted = true;
        // Original route is untouched; target output stays unrouted.
        EXPECT_EQ(net.source_of(0), 0);
        EXPECT_EQ(net.source_of(out), std::nullopt);
      } else {
        net.disconnect(out);
      }
    }
  }
  EXPECT_TRUE(conflicted);
}

TEST(Omega, DisconnectReleasesSwitches) {
  OmegaNetwork net(8);
  // Find a pair of conflicting routes; after disconnecting the first,
  // the second must succeed.
  ASSERT_TRUE(net.connect(0, 0));
  PortId blocked_in = -1, blocked_out = -1;
  for (PortId in = 1; in < 8 && blocked_in < 0; ++in) {
    for (PortId out = 1; out < 8 && blocked_in < 0; ++out) {
      if (!net.connect(in, out)) {
        blocked_in = in;
        blocked_out = out;
      } else {
        net.disconnect(out);
      }
    }
  }
  ASSERT_GE(blocked_in, 0);
  net.disconnect(0);
  EXPECT_TRUE(net.connect(blocked_in, blocked_out));
}

TEST(Omega, ReprogramOutputRestoresOnFailure) {
  OmegaNetwork net(8);
  ASSERT_TRUE(net.connect(0, 0));
  ASSERT_TRUE(net.connect(1, 1));
  // Find an input that cannot drive output 1 given route 0->0.
  bool tested = false;
  for (PortId in = 2; in < 8; ++in) {
    OmegaNetwork probe(8);
    ASSERT_TRUE(probe.connect(0, 0));
    if (!probe.connect(in, 1)) {
      EXPECT_FALSE(net.connect(in, 1));
      EXPECT_EQ(net.source_of(1), 1);  // old route restored
      tested = true;
      break;
    }
  }
  EXPECT_TRUE(tested);
}

TEST(Omega, ConfigBitsBetweenBusAndCrossbar) {
  // (N/2)*log2(N) through/cross bits: far below the crossbar's
  // N*ceil(log2(N+1)).
  OmegaNetwork omega(64);
  Crossbar xbar(64, 64);
  EXPECT_EQ(omega.config_bits(), 32 * 6);
  EXPECT_LT(omega.config_bits(), xbar.config_bits());
}

TEST(Omega, PropagateFollowsRoutes) {
  OmegaNetwork net(4);
  ASSERT_TRUE(net.connect(3, 0));
  const auto out = net.propagate({1, 2, 3, 99});
  EXPECT_EQ(out[0], 99u);
  EXPECT_EQ(out[1], 0u);
}

/// Property: for every size, every single (input, output) pair routes on
/// an empty network and ends at the right place.
class OmegaSizes : public ::testing::TestWithParam<int> {};

TEST_P(OmegaSizes, AllPairsRoutableInIsolation) {
  const int n = GetParam();
  OmegaNetwork net(n);
  for (PortId in = 0; in < n; in += 3) {
    for (PortId out = 0; out < n; out += 3) {
      net.reset();
      EXPECT_TRUE(net.connect(in, out)) << in << "->" << out;
      EXPECT_EQ(net.source_of(out), in);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(PowersOfTwo, OmegaSizes,
                         ::testing::Values(2, 4, 8, 16, 32, 64));

// ---------------------------------------------------------------------------
// Fault mask (mirrors the BenesNetwork::fail_switch semantics)

TEST(OmegaFaults, DeadSwitchTearsDownRoutesAndBlocksThem) {
  OmegaNetwork net(8);
  // Route 0 -> 0 crosses stage-0 switch 0 (shuffle(0) = wire 0).
  ASSERT_TRUE(net.connect(0, 0));
  const std::int64_t bits = net.config_bits();

  ASSERT_TRUE(net.fail_switch(0, 0));
  EXPECT_FALSE(net.switch_alive(0, 0));
  EXPECT_EQ(net.dead_switch_count(), 1);
  EXPECT_FALSE(net.source_of(0).has_value());  // torn down
  EXPECT_FALSE(net.connect(0, 0));             // path crosses the corpse
  EXPECT_FALSE(net.reachable(0, 0));
  // Inputs 0 and 4 enter stage-0 switch 0 on every path; input 1 does
  // not, so output 0 is still reachable from elsewhere.
  EXPECT_FALSE(net.reachable(4, 3));
  EXPECT_TRUE(net.reachable(1, 0));
  EXPECT_TRUE(net.connect(1, 0));
  // The mask never shrinks the configuration memory.
  EXPECT_EQ(net.config_bits(), bits);

  EXPECT_FALSE(net.fail_switch(0, 99));
  EXPECT_FALSE(net.fail_switch(-1, 0));
  EXPECT_FALSE(net.switch_alive(9, 0));
}

TEST(OmegaFaults, LastStageDeathUnreachesItsOutputs) {
  OmegaNetwork net(8);
  EXPECT_DOUBLE_EQ(net.output_reachability(), 1.0);
  ASSERT_TRUE(net.fail_switch(net.stage_count() - 1, 0));
  const std::vector<bool> reach = net.reachable_outputs();
  EXPECT_FALSE(reach[0]);
  EXPECT_FALSE(reach[1]);
  for (int o = 2; o < 8; ++o) EXPECT_TRUE(reach[o]) << o;
  EXPECT_DOUBLE_EQ(net.output_reachability(), 0.75);
  for (PortId in = 0; in < 8; ++in) {
    EXPECT_FALSE(net.reachable(in, 0)) << in;
    EXPECT_FALSE(net.connect(in, 0)) << in;
  }
}

TEST(OmegaFaults, ResetAndRoutePermutationKeepTheMask) {
  OmegaNetwork net(8);
  ASSERT_TRUE(net.fail_switch(0, 0));
  std::vector<PortId> identity(8);
  std::iota(identity.begin(), identity.end(), 0);
  // route_permutation resets routes, never the mask: the two inputs
  // funnelled through the dead stage-0 switch (0 and 4) cannot route.
  EXPECT_EQ(net.route_permutation(identity), 6);
  EXPECT_EQ(net.dead_switch_count(), 1);
  net.reset();
  EXPECT_EQ(net.dead_switch_count(), 1);
  EXPECT_FALSE(net.connect(0, 0));
}

}  // namespace
}  // namespace mpct::interconnect
