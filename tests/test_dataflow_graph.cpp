#include "sim/dataflow/graph.hpp"

#include <gtest/gtest.h>

#include "sim/memory.hpp"

namespace mpct::sim::df {
namespace {

Graph axpy() {
  // out = a*x + y
  Graph g;
  const NodeId a = g.add_input("a");
  const NodeId x = g.add_input("x");
  const NodeId y = g.add_input("y");
  const NodeId ax = g.add_op(Op::Mul, a, x);
  const NodeId sum = g.add_op(Op::Add, ax, y);
  g.add_output("out", sum);
  return g;
}

TEST(DataflowGraph, BuildAndEvaluate) {
  const Graph g = axpy();
  EXPECT_EQ(g.node_count(), 6);
  EXPECT_TRUE(g.validate().empty());
  const auto outputs = evaluate(g, {{"a", 3}, {"x", 4}, {"y", 5}});
  ASSERT_EQ(outputs.size(), 1u);
  EXPECT_EQ(outputs[0].first, "out");
  EXPECT_EQ(outputs[0].second, 17);
}

TEST(DataflowGraph, ConstNodes) {
  Graph g;
  const NodeId c = g.add_const(21);
  const NodeId two = g.add_const(2);
  g.add_output("res", g.add_op(Op::Mul, c, two));
  EXPECT_EQ(evaluate(g, {})[0].second, 42);
}

TEST(DataflowGraph, AllOperators) {
  Graph g;
  const NodeId a = g.add_input("a");
  const NodeId b = g.add_input("b");
  g.add_output("add", g.add_op(Op::Add, a, b));
  g.add_output("sub", g.add_op(Op::Sub, a, b));
  g.add_output("mul", g.add_op(Op::Mul, a, b));
  g.add_output("div", g.add_op(Op::Divs, a, b));
  g.add_output("min", g.add_op(Op::Min, a, b));
  g.add_output("max", g.add_op(Op::Max, a, b));
  g.add_output("lt", g.add_op(Op::Lt, a, b));
  g.add_output("and", g.add_op(Op::And, a, b));
  g.add_output("or", g.add_op(Op::Or, a, b));
  g.add_output("xor", g.add_op(Op::Xor, a, b));
  g.add_output("shl", g.add_op(Op::Shl, a, b));
  g.add_output("shr", g.add_op(Op::Shr, a, b));
  const auto out = evaluate(g, {{"a", 12}, {"b", 2}});
  const auto value = [&](const char* name) {
    for (const auto& [n, v] : out) {
      if (n == name) return v;
    }
    ADD_FAILURE() << name;
    return Word{0};
  };
  EXPECT_EQ(value("add"), 14);
  EXPECT_EQ(value("sub"), 10);
  EXPECT_EQ(value("mul"), 24);
  EXPECT_EQ(value("div"), 6);
  EXPECT_EQ(value("min"), 2);
  EXPECT_EQ(value("max"), 12);
  EXPECT_EQ(value("lt"), 0);
  EXPECT_EQ(value("and"), 0);
  EXPECT_EQ(value("or"), 14);
  EXPECT_EQ(value("xor"), 14);
  EXPECT_EQ(value("shl"), 48);
  EXPECT_EQ(value("shr"), 3);
}

TEST(DataflowGraph, SelectPicksBranch) {
  Graph g;
  const NodeId c = g.add_input("c");
  const NodeId t = g.add_const(100);
  const NodeId f = g.add_const(200);
  g.add_output("r", g.add_select(c, t, f));
  EXPECT_EQ(evaluate(g, {{"c", 1}})[0].second, 100);
  EXPECT_EQ(evaluate(g, {{"c", 0}})[0].second, 200);
}

TEST(DataflowGraph, MissingInputThrows) {
  EXPECT_THROW(evaluate(axpy(), {{"a", 1}}), SimError);
}

TEST(DataflowGraph, DivisionByZeroThrows) {
  Graph g;
  const NodeId a = g.add_input("a");
  const NodeId z = g.add_const(0);
  g.add_output("r", g.add_op(Op::Divs, a, z));
  EXPECT_THROW(evaluate(g, {{"a", 1}}), SimError);
}

TEST(DataflowGraph, ValidateCatchesDanglingReference) {
  Graph g;
  const NodeId a = g.add_input("a");
  g.add_op(Op::Add, a, 99);  // node 99 does not exist
  const auto problems = g.validate();
  ASSERT_FALSE(problems.empty());
  EXPECT_NE(problems[0].find("missing node"), std::string::npos);
}

TEST(DataflowGraph, ValidateCatchesDuplicateInputNames) {
  Graph g;
  g.add_input("a");
  g.add_input("a");
  const auto problems = g.validate();
  ASSERT_FALSE(problems.empty());
  EXPECT_NE(problems[0].find("duplicate input"), std::string::npos);
}

TEST(DataflowGraph, TopologicalOrderRespectsEdges) {
  const Graph g = axpy();
  const auto order = g.topological_order();
  ASSERT_TRUE(order.has_value());
  std::vector<int> position(static_cast<std::size_t>(g.node_count()));
  for (std::size_t i = 0; i < order->size(); ++i) {
    position[static_cast<std::size_t>((*order)[i])] = static_cast<int>(i);
  }
  for (NodeId id = 0; id < g.node_count(); ++id) {
    for (NodeId producer : g.node(id).inputs) {
      EXPECT_LT(position[static_cast<std::size_t>(producer)],
                position[static_cast<std::size_t>(id)]);
    }
  }
}

TEST(DataflowGraph, ComponentsSeparateIndependentChains) {
  Graph g;
  // Component 0: a+b; component 1: c*d.
  const NodeId a = g.add_input("a");
  const NodeId b = g.add_input("b");
  g.add_output("s", g.add_op(Op::Add, a, b));
  const NodeId c = g.add_input("c");
  const NodeId d = g.add_input("d");
  g.add_output("p", g.add_op(Op::Mul, c, d));
  const auto comp = g.components();
  EXPECT_EQ(comp[0], comp[1]);
  EXPECT_EQ(comp[4], comp[5]);
  EXPECT_NE(comp[0], comp[4]);
}

TEST(DataflowGraph, ArityTable) {
  EXPECT_EQ(arity(Op::Const), 0);
  EXPECT_EQ(arity(Op::Input), 0);
  EXPECT_EQ(arity(Op::Add), 2);
  EXPECT_EQ(arity(Op::Select), 3);
  EXPECT_EQ(arity(Op::Output), 1);
}

TEST(DataflowGraph, ApplyOpRejectsInput) {
  Node node;
  node.op = Op::Input;
  EXPECT_THROW(apply_op(node, {}), SimError);
}

TEST(DataflowGraph, DiamondSharedOperand) {
  // One producer feeding two consumers that rejoin.
  Graph g;
  const NodeId x = g.add_input("x");
  const NodeId sq = g.add_op(Op::Mul, x, x);
  const NodeId twice = g.add_op(Op::Add, x, x);
  g.add_output("r", g.add_op(Op::Sub, sq, twice));
  EXPECT_EQ(evaluate(g, {{"x", 5}})[0].second, 25 - 10);
}

}  // namespace
}  // namespace mpct::sim::df
