#include "sim/mimd/multiprocessor.hpp"

#include <gtest/gtest.h>

#include "sim/isa/assembler.hpp"

namespace mpct::sim {
namespace {

TEST(MultiprocessorConfig, SubtypeFactory) {
  const auto i = MultiprocessorConfig::for_subtype(1);
  EXPECT_EQ(i.dp_dm, mpct::SwitchKind::Direct);
  EXPECT_EQ(i.dp_dp, mpct::SwitchKind::None);
  const auto ii = MultiprocessorConfig::for_subtype(2);
  EXPECT_EQ(ii.dp_dp, mpct::SwitchKind::Crossbar);
  const auto iv = MultiprocessorConfig::for_subtype(4);
  EXPECT_EQ(iv.dp_dm, mpct::SwitchKind::Crossbar);
  EXPECT_EQ(iv.dp_dp, mpct::SwitchKind::Crossbar);
  EXPECT_THROW(MultiprocessorConfig::for_subtype(17),
               std::invalid_argument);
}

TEST(Multiprocessor, RunsDifferentProgramsPerCore) {
  // The capability an IAP lacks: two genuinely different instruction
  // streams at once.
  std::vector<Program> programs{
      assemble_or_throw("ldi r1, 11\nout r1\nhalt\n"),
      assemble_or_throw("ldi r1, 22\nout r1\nhalt\n"),
  };
  MultiprocessorConfig config = MultiprocessorConfig::for_subtype(1);
  config.cores = 2;
  Multiprocessor imp(std::move(programs), config);
  const RunStats stats = imp.run();
  EXPECT_TRUE(stats.halted);
  EXPECT_EQ(stats.output, (std::vector<Word>{11, 22}));
}

TEST(Multiprocessor, ProgramCountMustMatchCores) {
  MultiprocessorConfig config = MultiprocessorConfig::for_subtype(1);
  config.cores = 3;
  std::vector<Program> two(2, assemble_or_throw("halt\n"));
  EXPECT_THROW(Multiprocessor(std::move(two), config),
               std::invalid_argument);
}

TEST(Multiprocessor, PrivateMemoryPerCore) {
  MultiprocessorConfig config = MultiprocessorConfig::for_subtype(1);
  config.cores = 3;
  config.bank_words = 8;
  Multiprocessor imp = Multiprocessor::broadcast(assemble_or_throw(R"(
    lane r1
    ldi r2, 0
    st r2, r1, 0
    halt
  )"),
                                                 config);
  imp.run();
  for (int core = 0; core < 3; ++core) {
    EXPECT_EQ(imp.bank(core).load(0), core);
  }
}

TEST(Multiprocessor, SharedMemoryWithCrossbar) {
  // IMP-III: DP-DM crossbar — one global address space.  Core 0 writes,
  // core 1 spins until the flag appears, then reads the value.
  MultiprocessorConfig config = MultiprocessorConfig::for_subtype(3);
  config.cores = 2;
  config.bank_words = 8;
  std::vector<Program> programs{
      assemble_or_throw(R"(
        ldi r1, 8      ; bank 1, offset 0 (flag)
        ldi r2, 123
        ldi r3, 0
        st r3, r2, 1   ; global[1] = 123 (payload)
        ldi r4, 1
        st r1, r4, 0   ; global[8] = 1 (flag)
        halt
      )"),
      assemble_or_throw(R"(
        ldi r1, 8
        ldi r2, 1
wait:
        ld r3, r1, 0
        bne r3, r2, wait
        ldi r4, 0
        ld r5, r4, 1   ; read payload
        out r5
        halt
      )"),
  };
  Multiprocessor imp(std::move(programs), config);
  const RunStats stats = imp.run();
  EXPECT_TRUE(stats.halted);
  EXPECT_EQ(stats.output, (std::vector<Word>{123}));
}

TEST(Multiprocessor, MessagePassingPingPong) {
  MultiprocessorConfig config = MultiprocessorConfig::for_subtype(2);
  config.cores = 2;
  std::vector<Program> programs{
      assemble_or_throw(R"(
        ldi r1, 7
        ldi r2, 1
        send r1, r2    ; to core 1
        recv r3        ; wait for the echo
        out r3
        halt
      )"),
      assemble_or_throw(R"(
        recv r1
        addi r1, r1, 1
        ldi r2, 0
        send r1, r2    ; echo +1 back
        halt
      )"),
  };
  Multiprocessor imp(std::move(programs), config);
  const RunStats stats = imp.run();
  EXPECT_TRUE(stats.halted);
  EXPECT_EQ(stats.output, (std::vector<Word>{8}));
  EXPECT_FALSE(imp.deadlocked());
}

TEST(Multiprocessor, SendTrapsWithoutDpDpSwitch) {
  MultiprocessorConfig config = MultiprocessorConfig::for_subtype(1);
  config.cores = 2;
  Multiprocessor imp = Multiprocessor::broadcast(
      assemble_or_throw("ldi r1, 1\nsend r1, r1\nhalt\n"), config);
  EXPECT_THROW(imp.run(), SimError);
}

TEST(Multiprocessor, RecvWithoutSenderDeadlocks) {
  MultiprocessorConfig config = MultiprocessorConfig::for_subtype(2);
  config.cores = 2;
  Multiprocessor imp =
      Multiprocessor::broadcast(assemble_or_throw("recv r1\nhalt\n"), config);
  const RunStats stats = imp.run(100000);
  EXPECT_FALSE(stats.halted);
  EXPECT_TRUE(imp.deadlocked());
  EXPECT_LT(stats.cycles, 100000);  // detected, not timed out
}

TEST(Multiprocessor, MessagesQueueFifo) {
  MultiprocessorConfig config = MultiprocessorConfig::for_subtype(2);
  config.cores = 2;
  std::vector<Program> programs{
      assemble_or_throw(R"(
        ldi r2, 1
        ldi r1, 10
        send r1, r2
        ldi r1, 20
        send r1, r2
        ldi r1, 30
        send r1, r2
        halt
      )"),
      assemble_or_throw(R"(
        recv r1
        out r1
        recv r1
        out r1
        recv r1
        out r1
        halt
      )"),
  };
  Multiprocessor imp(std::move(programs), config);
  const RunStats stats = imp.run();
  EXPECT_EQ(stats.output, (std::vector<Word>{10, 20, 30}));
}

TEST(Multiprocessor, ShufTrapsOnMimd) {
  MultiprocessorConfig config = MultiprocessorConfig::for_subtype(4);
  config.cores = 2;
  Multiprocessor imp = Multiprocessor::broadcast(
      assemble_or_throw("shuf r1, r2, r3\nhalt\n"), config);
  EXPECT_THROW(imp.run(), SimError);
}

TEST(Multiprocessor, BroadcastLockstepMatchesLaneOrder) {
  // Same program on every core: outputs appear in core order per cycle
  // (the morph demo relies on this).
  MultiprocessorConfig config = MultiprocessorConfig::for_subtype(1);
  config.cores = 4;
  Multiprocessor imp = Multiprocessor::broadcast(assemble_or_throw(R"(
    lane r1
    out r1
    out r1
    halt
  )"),
                                                 config);
  const RunStats stats = imp.run();
  EXPECT_EQ(stats.output,
            (std::vector<Word>{0, 1, 2, 3, 0, 1, 2, 3}));
}

TEST(Multiprocessor, ResetRestoresInitialState) {
  MultiprocessorConfig config = MultiprocessorConfig::for_subtype(2);
  config.cores = 2;
  Multiprocessor imp = Multiprocessor::broadcast(
      assemble_or_throw("lane r1\nhalt\n"), config);
  imp.run();
  EXPECT_EQ(imp.core_state(1).reg(1), 1);
  imp.reset();
  EXPECT_EQ(imp.core_state(1).reg(1), 0);
  EXPECT_FALSE(imp.deadlocked());
}

TEST(Multiprocessor, MeshLatencyDelaysDistantMessages) {
  // Core 0 sends to core 1 (adjacent) and to core 3 (diagonal) on a 2x2
  // mesh: the diagonal receiver waits longer.
  const auto receiver = assemble_or_throw("recv r1\nout r1\nhalt\n");
  const auto make_sender = [] {
    return assemble_or_throw(R"(
      ldi r1, 42
      ldi r2, 1
      send r1, r2
      ldi r2, 3
      send r1, r2
      halt
    )");
  };
  const auto run_with = [&](int mesh_width) {
    MultiprocessorConfig config = MultiprocessorConfig::for_subtype(2);
    config.cores = 4;
    config.mesh_width = mesh_width;
    std::vector<Program> programs{make_sender(), receiver,
                                  assemble_or_throw("halt\n"), receiver};
    Multiprocessor imp(std::move(programs), config);
    return imp.run();
  };
  const RunStats ideal = run_with(0);
  const RunStats mesh = run_with(2);
  EXPECT_TRUE(ideal.halted);
  EXPECT_TRUE(mesh.halted);
  EXPECT_EQ(ideal.output, (std::vector<Word>{42, 42}));
  EXPECT_EQ(mesh.output, (std::vector<Word>{42, 42}));
  // The diagonal message (2 hops) stalls core 3 an extra cycle.
  EXPECT_GT(mesh.cycles, ideal.cycles);
}

TEST(Multiprocessor, MeshLatencyPreservesDeadlockDetection) {
  // In-flight messages must defeat the deadlock detector until they
  // land: a long-haul message on a 4x1 mesh keeps the machine alive.
  MultiprocessorConfig config = MultiprocessorConfig::for_subtype(2);
  config.cores = 4;
  config.mesh_width = 4;
  std::vector<Program> programs{
      assemble_or_throw("ldi r1, 9\nldi r2, 3\nsend r1, r2\nhalt\n"),
      assemble_or_throw("halt\n"),
      assemble_or_throw("halt\n"),
      assemble_or_throw("recv r1\nout r1\nhalt\n"),
  };
  Multiprocessor imp(std::move(programs), config);
  const RunStats stats = imp.run();
  EXPECT_TRUE(stats.halted);
  EXPECT_FALSE(imp.deadlocked());
  EXPECT_EQ(stats.output, (std::vector<Word>{9}));
}

TEST(Multiprocessor, CyclesCountWhileAnyCoreRuns) {
  MultiprocessorConfig config = MultiprocessorConfig::for_subtype(1);
  config.cores = 2;
  std::vector<Program> programs{
      assemble_or_throw("halt\n"),
      assemble_or_throw("nop\nnop\nnop\nhalt\n"),
  };
  Multiprocessor imp(std::move(programs), config);
  const RunStats stats = imp.run();
  EXPECT_TRUE(stats.halted);
  EXPECT_EQ(stats.cycles, 4);
  EXPECT_EQ(stats.instructions, 5);
}

}  // namespace
}  // namespace mpct::sim
