#include "sim/isa/assembler.hpp"

#include <gtest/gtest.h>

#include "sim/memory.hpp"

namespace mpct::sim {
namespace {

TEST(Assembler, AssemblesStraightLineCode) {
  const AssemblyResult result = assemble(R"(
    ldi r1, 10
    ldi r2, -3
    add r3, r1, r2
    halt
  )");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.program.size(), 4u);
  EXPECT_EQ(result.program[0],
            (Instruction{Opcode::Ldi, 1, 0, 0, 10}));
  EXPECT_EQ(result.program[1],
            (Instruction{Opcode::Ldi, 2, 0, 0, -3}));
  EXPECT_EQ(result.program[2], (Instruction{Opcode::Add, 3, 1, 2, 0}));
  EXPECT_EQ(result.program[3].op, Opcode::Halt);
}

TEST(Assembler, ResolvesForwardAndBackwardLabels) {
  const AssemblyResult result = assemble(R"(
start:
    beq r0, r0, end
    jmp start
end:
    halt
  )");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.labels.at("start"), 0);
  EXPECT_EQ(result.labels.at("end"), 2);
  EXPECT_EQ(result.program[0].imm, 2);  // forward reference
  EXPECT_EQ(result.program[1].imm, 0);  // backward reference
}

TEST(Assembler, LabelSharesLineWithInstruction) {
  const AssemblyResult result = assemble("loop: jmp loop\n");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.program[0].imm, 0);
}

TEST(Assembler, NumericBranchTargets) {
  const AssemblyResult result = assemble("jmp 0\n");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.program[0].imm, 0);
}

TEST(Assembler, CommentsAndBlankLines) {
  const AssemblyResult result = assemble(R"(
    ; full line comment
    # hash comment
    nop        ; trailing comment
    halt       # another
  )");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.program.size(), 2u);
}

TEST(Assembler, MemoryOperandForms) {
  const AssemblyResult result = assemble(R"(
    ld r3, r1, 4
    st r1, r2, 0
  )");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.program[0], (Instruction{Opcode::Ld, 3, 1, 0, 4}));
  // St: ra = address base, rb = value.
  EXPECT_EQ(result.program[1], (Instruction{Opcode::St, 0, 1, 2, 0}));
}

TEST(Assembler, CommunicationOps) {
  const AssemblyResult result = assemble(R"(
    lane r1
    shuf r2, r3, r1
    send r2, r1
    recv r4
    out r4
  )");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.program[0].op, Opcode::Lane);
  EXPECT_EQ(result.program[1], (Instruction{Opcode::Shuf, 2, 3, 1, 0}));
  EXPECT_EQ(result.program[2], (Instruction{Opcode::Send, 0, 2, 1, 0}));
  EXPECT_EQ(result.program[3].op, Opcode::Recv);
}

TEST(Assembler, ReportsUnknownMnemonic) {
  const AssemblyResult result = assemble("bogus r1, r2\n");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.errors[0].line, 1);
  EXPECT_NE(result.errors[0].message.find("unknown mnemonic"),
            std::string::npos);
}

TEST(Assembler, ReportsBadRegister) {
  EXPECT_FALSE(assemble("ldi r16, 1\n").ok());  // only r0..r15
  EXPECT_FALSE(assemble("ldi x1, 1\n").ok());
  EXPECT_FALSE(assemble("mov r1, 7\n").ok());
}

TEST(Assembler, ReportsWrongOperandCount) {
  const AssemblyResult result = assemble("add r1, r2\n");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.errors[0].message.find("expects 3 operand"),
            std::string::npos);
}

TEST(Assembler, ReportsUndefinedLabel) {
  const AssemblyResult result = assemble("jmp nowhere\n");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.errors[0].message.find("undefined label"),
            std::string::npos);
}

TEST(Assembler, ReportsDuplicateLabel) {
  const AssemblyResult result = assemble("a: nop\na: halt\n");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.errors[0].message.find("duplicate label"),
            std::string::npos);
}

TEST(Assembler, BadInstructionDoesNotCorruptLabelFixups) {
  // The discarded instruction carried a label reference; the following
  // instruction must not inherit its fixup.
  const AssemblyResult result = assemble(R"(
    beq r1, r99, target
    ldi r1, 5
target:
    halt
  )");
  ASSERT_FALSE(result.ok());
  // The surviving ldi keeps its own immediate.
  ASSERT_GE(result.program.size(), 1u);
  EXPECT_EQ(result.program[0].op, Opcode::Ldi);
  EXPECT_EQ(result.program[0].imm, 5);
}

TEST(Assembler, CollectsMultipleErrors) {
  const AssemblyResult result = assemble(R"(
    bogus
    add r1, r2
    ldi r77, 3
  )");
  EXPECT_EQ(result.errors.size(), 3u);
}

TEST(Assembler, OrThrowHelper) {
  EXPECT_NO_THROW(assemble_or_throw("halt\n"));
  EXPECT_THROW(assemble_or_throw("bogus\n"), SimError);
}

TEST(Assembler, CaseInsensitiveMnemonicsAndRegisters) {
  const AssemblyResult result = assemble("LDI R1, 3\nHALT\n");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.program[0], (Instruction{Opcode::Ldi, 1, 0, 0, 3}));
}

}  // namespace
}  // namespace mpct::sim
