/// Compilation test for the umbrella header plus a tiny smoke tour of
/// one symbol per subsystem, guarding against future include breakage.
#include "mpct.hpp"

#include <gtest/gtest.h>

namespace {

TEST(Umbrella, EverySubsystemReachable) {
  using namespace mpct;
  EXPECT_EQ(extended_taxonomy().size(), 47u);                     // core
  EXPECT_EQ(arch::surveyed_count(), 25);                          // arch
  EXPECT_GT(cost::ComponentLibrary::default_library().ip.area_kge,
            0.0);                                                 // cost
  EXPECT_FALSE(explore::recommend({}).empty());                   // explore
  EXPECT_EQ(interconnect::Crossbar(4, 4).config_bits(), 4 * 3);   // icn
  EXPECT_EQ(sim::assemble_or_throw("halt\n").size(), 1u);         // sim
  EXPECT_GT(biblio::Corpus::standard().size(), 0u);               // biblio
  EXPECT_NE(report::render_bar_chart({{"x", 1.0}}).find('#'),
            std::string::npos);                                   // report
}

}  // namespace
