#include "core/connectivity.hpp"

#include <gtest/gtest.h>

namespace mpct {
namespace {

TEST(SwitchKind, FlexibleOnlyForCrossbar) {
  EXPECT_FALSE(is_flexible_switch(SwitchKind::None));
  EXPECT_FALSE(is_flexible_switch(SwitchKind::Direct));
  EXPECT_TRUE(is_flexible_switch(SwitchKind::Crossbar));
}

TEST(SwitchKind, Symbols) {
  EXPECT_EQ(to_symbol(SwitchKind::None), "none");
  EXPECT_EQ(to_symbol(SwitchKind::Direct), "-");
  EXPECT_EQ(to_symbol(SwitchKind::Crossbar), "x");
}

TEST(ConnectivityRole, ColumnHeadersMatchPaper) {
  EXPECT_EQ(to_string(ConnectivityRole::IpIp), "IP-IP");
  EXPECT_EQ(to_string(ConnectivityRole::IpDp), "IP-DP");
  EXPECT_EQ(to_string(ConnectivityRole::IpIm), "IP-IM");
  EXPECT_EQ(to_string(ConnectivityRole::DpDm), "DP-DM");
  EXPECT_EQ(to_string(ConnectivityRole::DpDp), "DP-DP");
}

TEST(ConnectivityRole, ParseIsCaseInsensitive) {
  EXPECT_EQ(connectivity_role_from_string("ip-dp"), ConnectivityRole::IpDp);
  EXPECT_EQ(connectivity_role_from_string("DP-DM"), ConnectivityRole::DpDm);
  EXPECT_EQ(connectivity_role_from_string("Ip-Ip"), ConnectivityRole::IpIp);
  EXPECT_EQ(connectivity_role_from_string("dp-dp"), ConnectivityRole::DpDp);
  EXPECT_EQ(connectivity_role_from_string("ip-im"), ConnectivityRole::IpIm);
}

TEST(ConnectivityRole, ParseRejectsUnknown) {
  EXPECT_EQ(connectivity_role_from_string("im-dm"), std::nullopt);
  EXPECT_EQ(connectivity_role_from_string(""), std::nullopt);
  EXPECT_EQ(connectivity_role_from_string("ipdp"), std::nullopt);
}

TEST(ConnectivityRole, AllRolesArrayCoversTable) {
  ASSERT_EQ(kAllConnectivityRoles.size(), kConnectivityRoleCount);
  // Enumerator values must be dense 0..4 since they index arrays.
  for (std::size_t i = 0; i < kAllConnectivityRoles.size(); ++i) {
    EXPECT_EQ(static_cast<std::size_t>(kAllConnectivityRoles[i]), i);
  }
}

TEST(FormatConnectivity, UsesPaperNotation) {
  EXPECT_EQ(format_connectivity(SwitchKind::None, Multiplicity::Many,
                                Multiplicity::Many),
            "none");
  EXPECT_EQ(format_connectivity(SwitchKind::Direct, Multiplicity::One,
                                Multiplicity::One),
            "1-1");
  EXPECT_EQ(format_connectivity(SwitchKind::Direct, Multiplicity::One,
                                Multiplicity::Many),
            "1-n");
  EXPECT_EQ(format_connectivity(SwitchKind::Crossbar, Multiplicity::Many,
                                Multiplicity::Many),
            "nxn");
  EXPECT_EQ(format_connectivity(SwitchKind::Crossbar, Multiplicity::Variable,
                                Multiplicity::Variable),
            "vxv");
}

struct CellCase {
  const char* cell;
  std::optional<SwitchKind> expected;
};

class SwitchKindFromCell : public ::testing::TestWithParam<CellCase> {};

TEST_P(SwitchKindFromCell, ParsesTableCells) {
  EXPECT_EQ(switch_kind_from_cell(GetParam().cell), GetParam().expected);
}

INSTANTIATE_TEST_SUITE_P(
    PaperCells, SwitchKindFromCell,
    ::testing::Values(
        // Every distinct cell syntax that appears in Table I / Table III.
        CellCase{"none", SwitchKind::None},
        CellCase{"1-1", SwitchKind::Direct},
        CellCase{"1-n", SwitchKind::Direct},
        CellCase{"n-n", SwitchKind::Direct},
        CellCase{"n-1", SwitchKind::Direct},
        CellCase{"64-1", SwitchKind::Direct},
        CellCase{"48-48", SwitchKind::Direct},
        CellCase{"1-24n", SwitchKind::Direct},
        CellCase{"nxn", SwitchKind::Crossbar},
        CellCase{"vxv", SwitchKind::Crossbar},
        CellCase{"64x64", SwitchKind::Crossbar},
        CellCase{"5x10", SwitchKind::Crossbar},
        CellCase{"22x1", SwitchKind::Crossbar},
        CellCase{"16x6", SwitchKind::Crossbar},
        CellCase{"nx14", SwitchKind::Crossbar},
        CellCase{"nxm", SwitchKind::Crossbar},
        CellCase{"24nx24n", SwitchKind::Crossbar},
        CellCase{"24nx1", SwitchKind::Crossbar}));

INSTANTIATE_TEST_SUITE_P(
    Malformed, SwitchKindFromCell,
    ::testing::Values(CellCase{"", std::nullopt},
                      CellCase{"x", std::nullopt},
                      CellCase{"-", std::nullopt},
                      CellCase{"x64", std::nullopt},
                      CellCase{"64x", std::nullopt},
                      CellCase{"a!b", std::nullopt}));

}  // namespace
}  // namespace mpct
