#include "interconnect/hierarchical.hpp"

#include <gtest/gtest.h>

namespace mpct::interconnect {
namespace {

TEST(Hierarchical, LocalRoutesAreCheapAndUnlimited) {
  HierarchicalNetwork net(16, 4, 1);
  // All of cluster 0 can interconnect locally.
  EXPECT_TRUE(net.connect(0, 1));
  EXPECT_TRUE(net.connect(1, 2));
  EXPECT_TRUE(net.connect(2, 3));
  EXPECT_EQ(net.route_latency(1), 1);
  EXPECT_EQ(net.global_links_in_use(0), 0);
}

TEST(Hierarchical, GlobalRoutesCostThreeCycles) {
  HierarchicalNetwork net(16, 4, 1);
  EXPECT_TRUE(net.connect(0, 15));  // cluster 0 -> cluster 3
  EXPECT_EQ(net.route_latency(15), 3);
  EXPECT_EQ(net.global_links_in_use(0), 1);
  EXPECT_EQ(net.global_links_in_use(3), 1);
}

TEST(Hierarchical, GlobalLinksBlockWhenExhausted) {
  HierarchicalNetwork net(16, 4, 1);
  EXPECT_TRUE(net.connect(0, 15));   // uses cluster 0's only up-link
  EXPECT_FALSE(net.connect(1, 14));  // cluster 0 has no free link
  // Traffic out of another cluster still fits.
  EXPECT_TRUE(net.connect(8, 4));
}

TEST(Hierarchical, DisconnectReleasesGlobalLink) {
  HierarchicalNetwork net(16, 4, 1);
  EXPECT_TRUE(net.connect(0, 15));
  net.disconnect(15);
  EXPECT_EQ(net.global_links_in_use(0), 0);
  EXPECT_TRUE(net.connect(1, 14));
}

TEST(Hierarchical, ReplacingARouteDoesNotDoubleCount) {
  HierarchicalNetwork net(16, 4, 1);
  EXPECT_TRUE(net.connect(0, 15));
  // Re-route the same output to a different remote source: the old link
  // must be released as part of the reprogram.
  EXPECT_TRUE(net.connect(1, 15));
  EXPECT_EQ(net.source_of(15), 1);
  EXPECT_EQ(net.global_links_in_use(0), 1);
}

TEST(Hierarchical, FailedGlobalConnectRestoresOldRoute) {
  HierarchicalNetwork net(16, 4, 1);
  EXPECT_TRUE(net.connect(12, 0));  // cluster 3 -> cluster 0 (uses links)
  EXPECT_TRUE(net.connect(1, 2));   // local in cluster 0
  // Output 2 tries to re-route from cluster 3, but cluster 3's link and
  // cluster 0's down-link are taken by output 0's route... cluster 0
  // down-link is used, so this must fail and keep the local route.
  EXPECT_FALSE(net.connect(13, 2));
  EXPECT_EQ(net.source_of(2), 1);
}

TEST(Hierarchical, ClusterMath) {
  HierarchicalNetwork net(10, 4, 1);
  EXPECT_EQ(net.cluster_count(), 3);  // 4 + 4 + 2
  EXPECT_EQ(net.cluster_of(0), 0);
  EXPECT_EQ(net.cluster_of(7), 1);
  EXPECT_EQ(net.cluster_of(9), 2);
}

TEST(Hierarchical, ConfigBitsBelowFlatCrossbar) {
  // PADDI-2's reason for a hierarchy: 48 PEs behind a flat crossbar
  // would need 48*ceil(log2(49)) = 288 select bits; clusters of 8 with a
  // single global link must be cheaper.
  HierarchicalNetwork net(48, 8, 1);
  EXPECT_LT(net.config_bits(), 48 * 6);
}

TEST(Hierarchical, EverythingReachable) {
  HierarchicalNetwork net(12, 4, 1);
  for (int from = 0; from < 12; ++from) {
    for (int to = 0; to < 12; ++to) {
      EXPECT_TRUE(net.reachable(from, to));
    }
  }
}

TEST(Hierarchical, PropagateAcrossClusters) {
  HierarchicalNetwork net(8, 4, 1);
  ASSERT_TRUE(net.connect(0, 7));
  ASSERT_TRUE(net.connect(5, 4));
  const auto out =
      net.propagate({100, 0, 0, 0, 0, 55, 0, 0});
  EXPECT_EQ(out[7], 100u);
  EXPECT_EQ(out[4], 55u);
}

TEST(Hierarchical, RejectsBadShape) {
  EXPECT_THROW(HierarchicalNetwork(0, 4, 1), std::invalid_argument);
  EXPECT_THROW(HierarchicalNetwork(8, 0, 1), std::invalid_argument);
  EXPECT_THROW(HierarchicalNetwork(8, 4, -1), std::invalid_argument);
}

/// Property: with zero global links, only intra-cluster routes succeed.
TEST(Hierarchical, ZeroGlobalLinksIsolatesClusters) {
  HierarchicalNetwork net(16, 4, 0);
  EXPECT_TRUE(net.connect(0, 3));
  EXPECT_FALSE(net.connect(0, 4));
  EXPECT_FALSE(net.connect(12, 0));
}

}  // namespace
}  // namespace mpct::interconnect
