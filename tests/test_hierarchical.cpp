#include "interconnect/hierarchical.hpp"

#include <gtest/gtest.h>

namespace mpct::interconnect {
namespace {

TEST(Hierarchical, LocalRoutesAreCheapAndUnlimited) {
  HierarchicalNetwork net(16, 4, 1);
  // All of cluster 0 can interconnect locally.
  EXPECT_TRUE(net.connect(0, 1));
  EXPECT_TRUE(net.connect(1, 2));
  EXPECT_TRUE(net.connect(2, 3));
  EXPECT_EQ(net.route_latency(1), 1);
  EXPECT_EQ(net.global_links_in_use(0), 0);
}

TEST(Hierarchical, GlobalRoutesCostThreeCycles) {
  HierarchicalNetwork net(16, 4, 1);
  EXPECT_TRUE(net.connect(0, 15));  // cluster 0 -> cluster 3
  EXPECT_EQ(net.route_latency(15), 3);
  EXPECT_EQ(net.global_links_in_use(0), 1);
  EXPECT_EQ(net.global_links_in_use(3), 1);
}

TEST(Hierarchical, GlobalLinksBlockWhenExhausted) {
  HierarchicalNetwork net(16, 4, 1);
  EXPECT_TRUE(net.connect(0, 15));   // uses cluster 0's only up-link
  EXPECT_FALSE(net.connect(1, 14));  // cluster 0 has no free link
  // Traffic out of another cluster still fits.
  EXPECT_TRUE(net.connect(8, 4));
}

TEST(Hierarchical, DisconnectReleasesGlobalLink) {
  HierarchicalNetwork net(16, 4, 1);
  EXPECT_TRUE(net.connect(0, 15));
  net.disconnect(15);
  EXPECT_EQ(net.global_links_in_use(0), 0);
  EXPECT_TRUE(net.connect(1, 14));
}

TEST(Hierarchical, ReplacingARouteDoesNotDoubleCount) {
  HierarchicalNetwork net(16, 4, 1);
  EXPECT_TRUE(net.connect(0, 15));
  // Re-route the same output to a different remote source: the old link
  // must be released as part of the reprogram.
  EXPECT_TRUE(net.connect(1, 15));
  EXPECT_EQ(net.source_of(15), 1);
  EXPECT_EQ(net.global_links_in_use(0), 1);
}

TEST(Hierarchical, FailedGlobalConnectRestoresOldRoute) {
  HierarchicalNetwork net(16, 4, 1);
  EXPECT_TRUE(net.connect(12, 0));  // cluster 3 -> cluster 0 (uses links)
  EXPECT_TRUE(net.connect(1, 2));   // local in cluster 0
  // Output 2 tries to re-route from cluster 3, but cluster 3's link and
  // cluster 0's down-link are taken by output 0's route... cluster 0
  // down-link is used, so this must fail and keep the local route.
  EXPECT_FALSE(net.connect(13, 2));
  EXPECT_EQ(net.source_of(2), 1);
}

TEST(Hierarchical, ClusterMath) {
  HierarchicalNetwork net(10, 4, 1);
  EXPECT_EQ(net.cluster_count(), 3);  // 4 + 4 + 2
  EXPECT_EQ(net.cluster_of(0), 0);
  EXPECT_EQ(net.cluster_of(7), 1);
  EXPECT_EQ(net.cluster_of(9), 2);
}

TEST(Hierarchical, ConfigBitsBelowFlatCrossbar) {
  // PADDI-2's reason for a hierarchy: 48 PEs behind a flat crossbar
  // would need 48*ceil(log2(49)) = 288 select bits; clusters of 8 with a
  // single global link must be cheaper.
  HierarchicalNetwork net(48, 8, 1);
  EXPECT_LT(net.config_bits(), 48 * 6);
}

TEST(Hierarchical, EverythingReachable) {
  HierarchicalNetwork net(12, 4, 1);
  for (int from = 0; from < 12; ++from) {
    for (int to = 0; to < 12; ++to) {
      EXPECT_TRUE(net.reachable(from, to));
    }
  }
}

TEST(Hierarchical, PropagateAcrossClusters) {
  HierarchicalNetwork net(8, 4, 1);
  ASSERT_TRUE(net.connect(0, 7));
  ASSERT_TRUE(net.connect(5, 4));
  const auto out =
      net.propagate({100, 0, 0, 0, 0, 55, 0, 0});
  EXPECT_EQ(out[7], 100u);
  EXPECT_EQ(out[4], 55u);
}

TEST(Hierarchical, RejectsBadShape) {
  EXPECT_THROW(HierarchicalNetwork(0, 4, 1), std::invalid_argument);
  EXPECT_THROW(HierarchicalNetwork(8, 0, 1), std::invalid_argument);
  EXPECT_THROW(HierarchicalNetwork(8, 4, -1), std::invalid_argument);
}

/// Property: with zero global links, only intra-cluster routes succeed.
TEST(Hierarchical, ZeroGlobalLinksIsolatesClusters) {
  HierarchicalNetwork net(16, 4, 0);
  EXPECT_TRUE(net.connect(0, 3));
  EXPECT_FALSE(net.connect(0, 4));
  EXPECT_FALSE(net.connect(12, 0));
}

TEST(HierarchicalFaults, FailSwitchUnreachesTheWholeCluster) {
  HierarchicalNetwork net(16, 4, 1);
  ASSERT_TRUE(net.connect(0, 1));    // local inside cluster 0
  ASSERT_TRUE(net.connect(2, 15));   // cluster 0 -> cluster 3
  ASSERT_TRUE(net.connect(8, 9));    // untouched: local in cluster 2

  ASSERT_TRUE(net.fail_switch(0));
  EXPECT_FALSE(net.switch_alive(0));
  EXPECT_EQ(net.dead_switch_count(), 1);
  // Routes touching cluster 0 are gone; the cluster-2 route survives.
  EXPECT_FALSE(net.source_of(1).has_value());
  EXPECT_FALSE(net.source_of(15).has_value());
  EXPECT_EQ(net.source_of(9), 8);
  // Nothing routes into, out of, or within the dead cluster.
  EXPECT_FALSE(net.reachable(0, 1));
  EXPECT_FALSE(net.reachable(0, 8));
  EXPECT_FALSE(net.reachable(8, 0));
  EXPECT_FALSE(net.connect(1, 2));
  EXPECT_FALSE(net.connect(8, 0));
  // Other clusters still interconnect.
  EXPECT_TRUE(net.reachable(8, 12));
  // A dead local crossbar strands the cluster's global ports too.
  EXPECT_EQ(net.live_global_links(0), 0);
  // Config state is still physically present (Eq. 2 keeps pricing it).
  EXPECT_EQ(net.config_bits(), HierarchicalNetwork(16, 4, 1).config_bits());
}

TEST(HierarchicalFaults, FailLinkShrinksTheGlobalBudget) {
  HierarchicalNetwork net(16, 4, 2);
  ASSERT_TRUE(net.connect(0, 15));  // global via cluster 0
  ASSERT_TRUE(net.connect(1, 14));  // second global out of cluster 0
  ASSERT_EQ(net.global_links_in_use(0), 2);

  ASSERT_TRUE(net.fail_link(0, 0));
  EXPECT_FALSE(net.link_alive(0, 0));
  EXPECT_TRUE(net.link_alive(0, 1));
  EXPECT_EQ(net.dead_link_count(), 1);
  EXPECT_EQ(net.live_global_links(0), 1);
  // Deterministic eviction: the highest-numbered output with a global
  // route through cluster 0 was torn down; the other survives.
  EXPECT_FALSE(net.source_of(15).has_value());
  EXPECT_EQ(net.source_of(14), 1);
  EXPECT_EQ(net.global_links_in_use(0), 1);
  // The shrunken budget refuses a second concurrent global route but
  // local traffic is unaffected...
  EXPECT_FALSE(net.connect(2, 12));
  EXPECT_TRUE(net.connect(2, 3));
  // ...and inter-cluster reachability survives while one link lives.
  EXPECT_TRUE(net.reachable(0, 15));

  ASSERT_TRUE(net.fail_link(0, 1));
  EXPECT_EQ(net.live_global_links(0), 0);
  EXPECT_FALSE(net.source_of(14).has_value());
  EXPECT_FALSE(net.reachable(0, 15));  // cluster 0 is now isolated
  EXPECT_TRUE(net.reachable(0, 3));    // but locally intact
}

TEST(HierarchicalFaults, MaskValidationAndReachabilityCensus) {
  HierarchicalNetwork net(12, 4, 1);
  EXPECT_FALSE(net.fail_switch(-1));
  EXPECT_FALSE(net.fail_switch(3));
  EXPECT_FALSE(net.fail_link(0, 1));  // only link 0 exists
  EXPECT_FALSE(net.fail_link(5, 0));
  EXPECT_DOUBLE_EQ(net.output_reachability(), 1.0);

  ASSERT_TRUE(net.fail_switch(1));
  const auto reach = net.reachable_outputs();
  for (int out = 0; out < 12; ++out) {
    EXPECT_EQ(reach[static_cast<std::size_t>(out)],
              net.cluster_of(out) != 1);
  }
  // 4 of 12 outputs died with their cluster.
  EXPECT_DOUBLE_EQ(net.output_reachability(), 8.0 / 12.0);
  // Global link faults never unreach outputs (local routes remain).
  ASSERT_TRUE(net.fail_link(0, 0));
  EXPECT_DOUBLE_EQ(net.output_reachability(), 8.0 / 12.0);
}

}  // namespace
}  // namespace mpct::interconnect
