#include "cost/switch_cost.hpp"

#include <gtest/gtest.h>

namespace mpct::cost {
namespace {

TEST(CeilLog2, SmallValues) {
  EXPECT_EQ(ceil_log2(1), 0);
  EXPECT_EQ(ceil_log2(2), 1);
  EXPECT_EQ(ceil_log2(3), 2);
  EXPECT_EQ(ceil_log2(4), 2);
  EXPECT_EQ(ceil_log2(5), 3);
  EXPECT_EQ(ceil_log2(8), 3);
  EXPECT_EQ(ceil_log2(9), 4);
  EXPECT_EQ(ceil_log2(1024), 10);
  EXPECT_EQ(ceil_log2(1025), 11);
}

TEST(CeilLog2, RejectsNonPositive) {
  EXPECT_THROW(ceil_log2(0), std::invalid_argument);
  EXPECT_THROW(ceil_log2(-4), std::invalid_argument);
}

TEST(SwitchCost, NoneIsFree) {
  const SwitchCost cost = switch_cost(SwitchKind::None, 64, 64, 32);
  EXPECT_EQ(cost.area_kge, 0);
  EXPECT_EQ(cost.config_bits, 0);
}

TEST(SwitchCost, ZeroPortsAreFree) {
  EXPECT_EQ(switch_cost(SwitchKind::Crossbar, 0, 8, 32).area_kge, 0);
  EXPECT_EQ(switch_cost(SwitchKind::Direct, 8, 0, 32).config_bits, 0);
}

TEST(SwitchCost, DirectHasNoConfiguration) {
  // "An architecture in which the connectivity of the components cannot
  // be changed" — direct wiring carries zero configuration state.
  const SwitchCost cost = switch_cost(SwitchKind::Direct, 16, 16, 32);
  EXPECT_EQ(cost.config_bits, 0);
  EXPECT_GT(cost.area_kge, 0);
}

TEST(SwitchCost, CrossbarConfigBitsFormula) {
  // outputs * ceil(log2(inputs + 1)).
  EXPECT_EQ(switch_cost(SwitchKind::Crossbar, 4, 4, 32).config_bits,
            4 * 3);  // log2(5) -> 3 bits
  EXPECT_EQ(switch_cost(SwitchKind::Crossbar, 7, 4, 32).config_bits,
            4 * 3);  // log2(8) -> 3 bits
  EXPECT_EQ(switch_cost(SwitchKind::Crossbar, 8, 4, 32).config_bits,
            4 * 4);  // log2(9) -> 4 bits
  EXPECT_EQ(switch_cost(SwitchKind::Crossbar, 64, 64, 32).config_bits,
            64 * 7);
  // Asymmetric (Montium 5x10).
  EXPECT_EQ(switch_cost(SwitchKind::Crossbar, 5, 10, 16).config_bits,
            10 * 3);
}

TEST(SwitchCost, CrossbarAreaIsQuadraticInPorts) {
  const double a8 = switch_cost(SwitchKind::Crossbar, 8, 8, 32).area_kge;
  const double a16 = switch_cost(SwitchKind::Crossbar, 16, 16, 32).area_kge;
  const double a32 = switch_cost(SwitchKind::Crossbar, 32, 32, 32).area_kge;
  EXPECT_NEAR(a16 / a8, 4.0, 1e-9);
  EXPECT_NEAR(a32 / a16, 4.0, 1e-9);
}

TEST(SwitchCost, DirectAreaIsLinearInPorts) {
  const double a8 = switch_cost(SwitchKind::Direct, 8, 8, 32).area_kge;
  const double a16 = switch_cost(SwitchKind::Direct, 16, 16, 32).area_kge;
  EXPECT_NEAR(a16 / a8, 2.0, 1e-9);
}

TEST(SwitchCost, CrossbarCostsMoreThanDirect) {
  // Section III-C: "the switch of type 'x' takes more area than a switch
  // of type '-'" — holds at any size >= 1.
  for (int ports : {1, 2, 4, 8, 64, 256}) {
    const double x =
        switch_cost(SwitchKind::Crossbar, ports, ports, 32).area_kge;
    const double d =
        switch_cost(SwitchKind::Direct, ports, ports, 32).area_kge;
    EXPECT_GE(x, d) << ports;
    if (ports > 1) {
      EXPECT_GT(x, d) << ports;
    }
  }
}

TEST(SwitchCost, AreaScalesWithDataWidth) {
  const double w16 = switch_cost(SwitchKind::Crossbar, 8, 8, 16).area_kge;
  const double w32 = switch_cost(SwitchKind::Crossbar, 8, 8, 32).area_kge;
  EXPECT_NEAR(w32 / w16, 2.0, 1e-9);
  // Config bits do NOT scale with width: selects address ports, not bits.
  EXPECT_EQ(switch_cost(SwitchKind::Crossbar, 8, 8, 16).config_bits,
            switch_cost(SwitchKind::Crossbar, 8, 8, 32).config_bits);
}

TEST(SwitchCost, InvalidArgumentsThrow) {
  EXPECT_THROW(switch_cost(SwitchKind::Crossbar, -1, 4, 32),
               std::invalid_argument);
  EXPECT_THROW(switch_cost(SwitchKind::Crossbar, 4, 4, 0),
               std::invalid_argument);
}

/// Property sweep: config bits grow monotonically with input count.
class CrossbarBitsMonotonic : public ::testing::TestWithParam<int> {};

TEST_P(CrossbarBitsMonotonic, MonotoneInInputs) {
  const int outputs = GetParam();
  std::int64_t previous = -1;
  for (int inputs = 1; inputs <= 512; inputs *= 2) {
    const std::int64_t bits =
        switch_cost(SwitchKind::Crossbar, inputs, outputs, 32).config_bits;
    EXPECT_GE(bits, previous) << inputs << "x" << outputs;
    previous = bits;
  }
}

INSTANTIATE_TEST_SUITE_P(OutputSweep, CrossbarBitsMonotonic,
                         ::testing::Values(1, 2, 5, 16, 64));

}  // namespace
}  // namespace mpct::cost
