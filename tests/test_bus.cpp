#include "interconnect/bus.hpp"

#include <gtest/gtest.h>

namespace mpct::interconnect {
namespace {

TEST(Bus, SingleBusBroadcasts) {
  BusNetwork bus(4, 4, 1);
  EXPECT_TRUE(bus.connect(2, 0));
  EXPECT_TRUE(bus.connect(2, 1));  // same driver, same bus
  EXPECT_EQ(bus.source_of(0), 2);
  EXPECT_EQ(bus.source_of(1), 2);
  EXPECT_EQ(bus.buses_in_use(), 1);
}

TEST(Bus, SingleBusBlocksSecondDriver) {
  BusNetwork bus(4, 4, 1);
  EXPECT_TRUE(bus.connect(0, 0));
  EXPECT_FALSE(bus.connect(1, 1));  // the only bus is owned by input 0
}

TEST(Bus, MultipleBusesAllowMultipleDrivers) {
  BusNetwork bus(4, 4, 2);
  EXPECT_TRUE(bus.connect(0, 0));
  EXPECT_TRUE(bus.connect(1, 1));
  EXPECT_FALSE(bus.connect(2, 2));  // third distinct driver blocks
  EXPECT_EQ(bus.buses_in_use(), 2);
}

TEST(Bus, DisconnectFreesBusWhenUnlistened) {
  BusNetwork bus(4, 4, 1);
  EXPECT_TRUE(bus.connect(0, 0));
  bus.disconnect(0);
  EXPECT_EQ(bus.buses_in_use(), 0);
  EXPECT_TRUE(bus.connect(3, 2));  // bus is free again
}

TEST(Bus, DisconnectKeepsBusWhileOthersListen) {
  BusNetwork bus(4, 4, 1);
  EXPECT_TRUE(bus.connect(0, 0));
  EXPECT_TRUE(bus.connect(0, 1));
  bus.disconnect(0);
  EXPECT_EQ(bus.source_of(1), 0);
  EXPECT_FALSE(bus.connect(2, 2));  // still held for output 1
}

TEST(Bus, ReroutingOutputReleasesOldBus) {
  BusNetwork bus(4, 4, 2);
  EXPECT_TRUE(bus.connect(0, 0));
  EXPECT_TRUE(bus.connect(1, 0));  // output 0 switches buses
  EXPECT_EQ(bus.source_of(0), 1);
  // Input 0's bus became unlistened and must be free now.
  EXPECT_TRUE(bus.connect(2, 1));
}

TEST(Bus, PropagateFollowsBusConfiguration) {
  BusNetwork bus(3, 3, 2);
  bus.connect(1, 0);
  bus.connect(1, 2);
  const auto out = bus.propagate({5, 6, 7});
  EXPECT_EQ(out, (std::vector<std::uint64_t>{6, 0, 6}));
}

TEST(Bus, ConfigBitsFormula) {
  // k buses * ceil(log2(inputs+1)) + outputs * ceil(log2(k+1)).
  BusNetwork bus(16, 16, 4);
  EXPECT_EQ(bus.config_bits(), 4 * 5 + 16 * 3);
}

TEST(Bus, FewerBusesMeanFewerConfigBitsThanCrossbar) {
  // The bus trades routability for configuration: with k << n it must
  // be cheaper than the full crossbar of the same port count.
  BusNetwork bus(64, 64, 4);
  // Crossbar: 64 * ceil(log2(65)) = 64 * 7.
  EXPECT_LT(bus.config_bits(), 64 * 7);
}

TEST(Bus, RejectsBadShape) {
  EXPECT_THROW(BusNetwork(0, 4, 1), std::invalid_argument);
  EXPECT_THROW(BusNetwork(4, 0, 1), std::invalid_argument);
  EXPECT_THROW(BusNetwork(4, 4, 0), std::invalid_argument);
}

TEST(Bus, RejectsBadPorts) {
  BusNetwork bus(2, 2, 1);
  EXPECT_FALSE(bus.connect(2, 0));
  EXPECT_FALSE(bus.connect(0, 2));
}

TEST(Bus, NameDescribesShape) {
  EXPECT_EQ(BusNetwork(8, 8, 2).name(), "bus 8x8 over 2 buses");
}

/// Property (the RaPiD scalability point, Section IV): with k buses, at
/// most k distinct sources can be live simultaneously, independent of
/// how many ports exist.
class BusSaturation : public ::testing::TestWithParam<int> {};

TEST_P(BusSaturation, AtMostKDistinctDrivers) {
  const int k = GetParam();
  const int ports = 32;
  BusNetwork bus(ports, ports, k);
  int routed = 0;
  for (int i = 0; i < ports; ++i) {
    if (bus.connect(i, i)) ++routed;
  }
  EXPECT_EQ(routed, k);
  EXPECT_EQ(bus.buses_in_use(), k);
}

INSTANTIATE_TEST_SUITE_P(BusCounts, BusSaturation,
                         ::testing::Values(1, 2, 4, 8, 16));

}  // namespace
}  // namespace mpct::interconnect
