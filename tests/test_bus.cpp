#include "interconnect/bus.hpp"

#include <gtest/gtest.h>

namespace mpct::interconnect {
namespace {

TEST(Bus, SingleBusBroadcasts) {
  BusNetwork bus(4, 4, 1);
  EXPECT_TRUE(bus.connect(2, 0));
  EXPECT_TRUE(bus.connect(2, 1));  // same driver, same bus
  EXPECT_EQ(bus.source_of(0), 2);
  EXPECT_EQ(bus.source_of(1), 2);
  EXPECT_EQ(bus.buses_in_use(), 1);
}

TEST(Bus, SingleBusBlocksSecondDriver) {
  BusNetwork bus(4, 4, 1);
  EXPECT_TRUE(bus.connect(0, 0));
  EXPECT_FALSE(bus.connect(1, 1));  // the only bus is owned by input 0
}

TEST(Bus, MultipleBusesAllowMultipleDrivers) {
  BusNetwork bus(4, 4, 2);
  EXPECT_TRUE(bus.connect(0, 0));
  EXPECT_TRUE(bus.connect(1, 1));
  EXPECT_FALSE(bus.connect(2, 2));  // third distinct driver blocks
  EXPECT_EQ(bus.buses_in_use(), 2);
}

TEST(Bus, DisconnectFreesBusWhenUnlistened) {
  BusNetwork bus(4, 4, 1);
  EXPECT_TRUE(bus.connect(0, 0));
  bus.disconnect(0);
  EXPECT_EQ(bus.buses_in_use(), 0);
  EXPECT_TRUE(bus.connect(3, 2));  // bus is free again
}

TEST(Bus, DisconnectKeepsBusWhileOthersListen) {
  BusNetwork bus(4, 4, 1);
  EXPECT_TRUE(bus.connect(0, 0));
  EXPECT_TRUE(bus.connect(0, 1));
  bus.disconnect(0);
  EXPECT_EQ(bus.source_of(1), 0);
  EXPECT_FALSE(bus.connect(2, 2));  // still held for output 1
}

TEST(Bus, ReroutingOutputReleasesOldBus) {
  BusNetwork bus(4, 4, 2);
  EXPECT_TRUE(bus.connect(0, 0));
  EXPECT_TRUE(bus.connect(1, 0));  // output 0 switches buses
  EXPECT_EQ(bus.source_of(0), 1);
  // Input 0's bus became unlistened and must be free now.
  EXPECT_TRUE(bus.connect(2, 1));
}

TEST(Bus, PropagateFollowsBusConfiguration) {
  BusNetwork bus(3, 3, 2);
  bus.connect(1, 0);
  bus.connect(1, 2);
  const auto out = bus.propagate({5, 6, 7});
  EXPECT_EQ(out, (std::vector<std::uint64_t>{6, 0, 6}));
}

TEST(Bus, ConfigBitsFormula) {
  // k buses * ceil(log2(inputs+1)) + outputs * ceil(log2(k+1)).
  BusNetwork bus(16, 16, 4);
  EXPECT_EQ(bus.config_bits(), 4 * 5 + 16 * 3);
}

TEST(Bus, FewerBusesMeanFewerConfigBitsThanCrossbar) {
  // The bus trades routability for configuration: with k << n it must
  // be cheaper than the full crossbar of the same port count.
  BusNetwork bus(64, 64, 4);
  // Crossbar: 64 * ceil(log2(65)) = 64 * 7.
  EXPECT_LT(bus.config_bits(), 64 * 7);
}

TEST(Bus, RejectsBadShape) {
  EXPECT_THROW(BusNetwork(0, 4, 1), std::invalid_argument);
  EXPECT_THROW(BusNetwork(4, 0, 1), std::invalid_argument);
  EXPECT_THROW(BusNetwork(4, 4, 0), std::invalid_argument);
}

TEST(Bus, RejectsBadPorts) {
  BusNetwork bus(2, 2, 1);
  EXPECT_FALSE(bus.connect(2, 0));
  EXPECT_FALSE(bus.connect(0, 2));
}

TEST(Bus, NameDescribesShape) {
  EXPECT_EQ(BusNetwork(8, 8, 2).name(), "bus 8x8 over 2 buses");
}

/// Property (the RaPiD scalability point, Section IV): with k buses, at
/// most k distinct sources can be live simultaneously, independent of
/// how many ports exist.
class BusSaturation : public ::testing::TestWithParam<int> {};

TEST_P(BusSaturation, AtMostKDistinctDrivers) {
  const int k = GetParam();
  const int ports = 32;
  BusNetwork bus(ports, ports, k);
  int routed = 0;
  for (int i = 0; i < ports; ++i) {
    if (bus.connect(i, i)) ++routed;
  }
  EXPECT_EQ(routed, k);
  EXPECT_EQ(bus.buses_in_use(), k);
}

INSTANTIATE_TEST_SUITE_P(BusCounts, BusSaturation,
                         ::testing::Values(1, 2, 4, 8, 16));

// ---------------------------------------------------------------------------
// Fault mask (mirrors the Crossbar::fail_input / fail_output semantics)

TEST(BusFaults, DeadSegmentDropsRoutesAndCannotBeClaimed) {
  BusNetwork bus(4, 4, 2);
  ASSERT_TRUE(bus.connect(0, 0));  // claims bus 0
  ASSERT_TRUE(bus.connect(1, 1));  // claims bus 1
  const std::int64_t bits = bus.config_bits();

  ASSERT_TRUE(bus.fail_segment(0));
  EXPECT_FALSE(bus.segment_alive(0));
  EXPECT_EQ(bus.live_bus_count(), 1);
  EXPECT_FALSE(bus.source_of(0).has_value());  // torn down
  EXPECT_EQ(bus.source_of(1), 1);              // other segment untouched
  // Input 0 would need a fresh segment; the only live one is driven by
  // input 1 — structural blocking, exactly as with one fewer bus.
  EXPECT_FALSE(bus.connect(0, 2));
  EXPECT_TRUE(bus.connect(1, 2));  // existing driver still broadcasts
  // The mask never shrinks the configuration memory.
  EXPECT_EQ(bus.config_bits(), bits);

  EXPECT_FALSE(bus.fail_segment(-1));
  EXPECT_FALSE(bus.fail_segment(2));
  EXPECT_FALSE(bus.segment_alive(2));
}

TEST(BusFaults, SurvivingSegmentStillRoutes) {
  BusNetwork bus(4, 4, 2);
  ASSERT_TRUE(bus.fail_segment(0));
  EXPECT_TRUE(bus.connect(2, 3));  // claims the surviving bus
  EXPECT_EQ(bus.source_of(3), 2);
  EXPECT_EQ(bus.buses_in_use(), 1);
  EXPECT_TRUE(bus.reachable(0, 0));
}

TEST(BusFaults, AllSegmentsDeadRouteNothing) {
  BusNetwork bus(2, 2, 1);
  ASSERT_TRUE(bus.connect(0, 0));
  ASSERT_TRUE(bus.fail_segment(0));
  EXPECT_EQ(bus.live_bus_count(), 0);
  EXPECT_EQ(bus.buses_in_use(), 0);
  EXPECT_FALSE(bus.reachable(0, 0));
  EXPECT_FALSE(bus.connect(0, 0));
  EXPECT_FALSE(bus.source_of(0).has_value());
}

}  // namespace
}  // namespace mpct::interconnect
