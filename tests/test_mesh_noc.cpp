#include "interconnect/mesh_noc.hpp"

#include <gtest/gtest.h>

namespace mpct::interconnect {
namespace {

TEST(MeshNoc, GeometryHelpers) {
  MeshNoc mesh(4, 3);
  EXPECT_EQ(mesh.node_count(), 12);
  EXPECT_EQ(mesh.node_id(2, 1), 6);
  EXPECT_EQ(mesh.x_of(6), 2);
  EXPECT_EQ(mesh.y_of(6), 1);
  EXPECT_EQ(mesh.hops(mesh.node_id(0, 0), mesh.node_id(3, 2)), 5);
  EXPECT_EQ(mesh.hops(5, 5), 0);
}

TEST(MeshNoc, SinglePacketArrivesAtZeroLoadLatency) {
  MeshNoc mesh(4, 4);
  std::vector<Packet> packets{{mesh.node_id(0, 0), mesh.node_id(3, 3), 0}};
  const auto stats = mesh.simulate(packets);
  EXPECT_EQ(stats.delivered, 1);
  EXPECT_EQ(stats.undelivered, 0);
  EXPECT_EQ(packets[0].latency(), 6);  // manhattan distance
  EXPECT_EQ(stats.max_latency, 6);
}

TEST(MeshNoc, SelfAddressedPacketDeliversImmediately) {
  MeshNoc mesh(2, 2);
  std::vector<Packet> packets{{1, 1, 5}};
  const auto stats = mesh.simulate(packets);
  EXPECT_EQ(stats.delivered, 1);
  EXPECT_EQ(packets[0].latency(), 0);
}

TEST(MeshNoc, DisjointPathsDoNotInterfere) {
  MeshNoc mesh(4, 4);
  std::vector<Packet> packets{
      {mesh.node_id(0, 0), mesh.node_id(3, 0), 0},
      {mesh.node_id(0, 3), mesh.node_id(3, 3), 0},
  };
  mesh.simulate(packets);
  EXPECT_EQ(packets[0].latency(), 3);
  EXPECT_EQ(packets[1].latency(), 3);
}

TEST(MeshNoc, ContendingPacketsSerialise) {
  // Two packets need the same first link in the same cycle: the older
  // injection wins, the other stalls one cycle.
  MeshNoc mesh(4, 1);
  std::vector<Packet> packets{
      {0, 3, 1},  // injected later but listed first
      {0, 2, 0},
  };
  mesh.simulate(packets);
  EXPECT_EQ(packets[1].latency(), 2);       // unobstructed
  EXPECT_GT(packets[0].latency(), 3 - 1);  // stalled behind the older one
}

TEST(MeshNoc, XyRoutingGoesXFirst) {
  // A packet from (0,0) to (1,1) must pass through (1,0), never (0,1).
  // Indirect check: with a link capacity of 1 and a blocker owning the
  // (0,0)->(0,1) link, the packet is unaffected.
  MeshNoc mesh(2, 2);
  std::vector<Packet> packets{
      {mesh.node_id(0, 0), mesh.node_id(0, 1), 0},  // blocker going north
      {mesh.node_id(0, 0), mesh.node_id(1, 1), 0},  // XY: east then north
  };
  mesh.simulate(packets);
  EXPECT_EQ(packets[0].latency(), 1);
  EXPECT_EQ(packets[1].latency(), 2);  // no stall: different first links
}

TEST(MeshNoc, HigherLinkCapacityRemovesStalls) {
  std::vector<Packet> contended{
      {0, 3, 0},
      {0, 3, 0},
  };
  MeshNoc narrow(4, 1, /*link_capacity=*/1);
  auto packets1 = contended;
  narrow.simulate(packets1);
  MeshNoc wide(4, 1, /*link_capacity=*/2);
  auto packets2 = contended;
  wide.simulate(packets2);
  EXPECT_GT(packets1[0].latency() + packets1[1].latency(),
            packets2[0].latency() + packets2[1].latency());
}

TEST(MeshNoc, MaxCyclesCutoffReportsUndelivered) {
  MeshNoc mesh(8, 8);
  std::vector<Packet> packets{{0, 63, 0}};
  const auto stats = mesh.simulate(packets, /*max_cycles=*/3);
  EXPECT_EQ(stats.delivered, 0);
  EXPECT_EQ(stats.undelivered, 1);
  EXPECT_FALSE(packets[0].delivered());
}

TEST(MeshNoc, StatsAggregateCorrectly) {
  MeshNoc mesh(3, 3);
  std::vector<Packet> packets{
      {0, 2, 0},  // 2 hops
      {0, 6, 0},  // 2 hops
      {4, 4, 0},  // self
  };
  const auto stats = mesh.simulate(packets);
  EXPECT_EQ(stats.delivered, 3);
  EXPECT_NEAR(stats.avg_latency, (2 + 2 + 0) / 3.0, 1e-9);
  EXPECT_GT(stats.throughput, 0);
}

TEST(MeshNoc, RejectsBadShape) {
  EXPECT_THROW(MeshNoc(0, 4), std::invalid_argument);
  EXPECT_THROW(MeshNoc(4, 4, 0), std::invalid_argument);
}

/// Property: on an empty mesh, latency equals hop distance for any pair
/// (sweep over an 8x8 REDEFINE-sized fabric).
class MeshZeroLoad : public ::testing::TestWithParam<int> {};

TEST_P(MeshZeroLoad, LatencyEqualsHops) {
  MeshNoc mesh(8, 8);
  const int src = GetParam();
  for (int dst = 0; dst < mesh.node_count(); dst += 7) {
    std::vector<Packet> packets{{src, dst, 0}};
    mesh.simulate(packets);
    EXPECT_EQ(packets[0].latency(), mesh.hops(src, dst))
        << src << "->" << dst;
  }
}

INSTANTIATE_TEST_SUITE_P(Sources, MeshZeroLoad,
                         ::testing::Values(0, 9, 27, 36, 63));

}  // namespace
}  // namespace mpct::interconnect
