/// Fleet tier (src/cluster) over loopback: consistent-hash routing is
/// deterministic and balanced, identical requests hit the same server's
/// cache, dead endpoints fail over with zero failed requests, hedged
/// retries win against a stalled backend and cancel the loser, Suspect
/// endpoints recover through pings, and the combining proxy's merged
/// sweep responses are bit-identical to a single server's.  The
/// multi-threaded cases run under TSan in CI.
#include <gtest/gtest.h>

#include <poll.h>
#include <sys/socket.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "arch/registry.hpp"
#include "cluster/cluster.hpp"
#include "net/net.hpp"
#include "service/service.hpp"
#include "wire/wire.hpp"

namespace {

using namespace mpct;
using cluster::ClusterClient;
using cluster::ClusterOptions;
using cluster::CombiningProxy;
using cluster::Endpoint;
using cluster::HashRing;
using cluster::HealthState;
using cluster::HealthTracker;
using service::Request;
using service::QueryResponse;
using service::StatusCode;

Request classify_request(std::size_t i) {
  const auto& specs = arch::surveyed_architectures();
  return service::ClassifyRequest::of(specs[i % specs.size()]);
}

/// Unbounded family of distinct request fingerprints (ring keys), for
/// tests that need many keys spread across the fleet.
Request diverse_request(std::size_t i) {
  service::CostRequest req;
  req.target = arch::surveyed_architectures()
      [i % arch::surveyed_architectures().size()];
  req.options.n = static_cast<std::int64_t>(1 + i);
  return req;
}

Request sweep_request() {
  service::SweepRequest req;
  req.grid.base.min_flexibility = 2;
  req.grid.n_values = {4, 16};
  req.grid.lut_budgets = {256, 1024};
  req.grid.objectives = {explore::Requirements::Objective::MinConfigBits,
                         explore::Requirements::Objective::MinArea};
  return req;
}

Request fault_sweep_request() {
  service::FaultSweepRequest req;
  MachineClass mc;
  mc.granularity = Granularity::IpDp;
  mc.ips = Multiplicity::Many;
  mc.dps = Multiplicity::Many;
  mc.set_switch(ConnectivityRole::IpDp, SwitchKind::Crossbar);
  mc.set_switch(ConnectivityRole::DpDm, SwitchKind::Crossbar);
  req.spec.machine = mc;
  req.spec.bindings.n = 4;
  req.spec.fault_rates = {0.0, 0.1, 0.25};
  req.spec.trials_per_rate = 6;
  req.spec.seed = 42;
  return req;
}

void expect_payload_parity(const QueryResponse& fleet,
                           const QueryResponse& inline_ref) {
  EXPECT_EQ(fleet.status, inline_ref.status);
  ASSERT_EQ(fleet.payload == nullptr, inline_ref.payload == nullptr);
  if (fleet.payload) {
    EXPECT_TRUE(*fleet.payload == *inline_ref.payload);
  }
}

/// A small backend fleet: N engine+server pairs on ephemeral ports.
class Fleet {
 public:
  explicit Fleet(std::size_t n, std::size_t worker_threads = 2) {
    for (std::size_t i = 0; i < n; ++i) {
      service::EngineOptions options;
      options.worker_threads = worker_threads;
      engines_.push_back(std::make_unique<service::QueryEngine>(options));
      servers_.push_back(std::make_unique<net::Server>(*engines_.back()));
      EXPECT_TRUE(servers_.back()->start()) << servers_.back()->error();
      endpoints_.push_back({"127.0.0.1", servers_.back()->port()});
    }
  }

  const std::vector<Endpoint>& endpoints() const { return endpoints_; }
  service::QueryEngine& engine(std::size_t i) { return *engines_[i]; }
  net::Server& server(std::size_t i) { return *servers_[i]; }
  void kill(std::size_t i) { servers_[i]->stop(); }

 private:
  std::vector<std::unique_ptr<service::QueryEngine>> engines_;
  std::vector<std::unique_ptr<net::Server>> servers_;
  std::vector<Endpoint> endpoints_;
};

ClusterOptions cluster_options(const std::vector<Endpoint>& endpoints,
                               service::MetricsRegistry* metrics = nullptr) {
  ClusterOptions options;
  options.endpoints = endpoints;
  options.metrics = metrics;
  options.connect_timeout = std::chrono::milliseconds(2000);
  options.io_timeout = std::chrono::milliseconds(10000);
  return options;
}

/// A backend that negotiates and answers pings but never answers a
/// request — a stalled-but-alive server, the case hedging exists for.
class MuteServer {
 public:
  MuteServer() {
    std::string error;
    listener_ = net::listen_tcp("127.0.0.1", 0, port_, error);
    EXPECT_TRUE(listener_.valid()) << error;
    thread_ = std::thread([this] { loop(); });
  }

  ~MuteServer() {
    stop_.store(true, std::memory_order_release);
    if (thread_.joinable()) thread_.join();
  }

  std::uint16_t port() const { return port_; }

 private:
  void loop() {
    std::vector<net::Socket> conns;
    std::vector<std::vector<std::uint8_t>> buffers;
    while (!stop_.load(std::memory_order_acquire)) {
      const int accepted = ::accept(listener_.fd(), nullptr, nullptr);
      if (accepted >= 0) {
        net::set_nonblocking(accepted);
        conns.emplace_back(accepted);
        buffers.emplace_back();
      }
      for (std::size_t c = 0; c < conns.size(); ++c) {
        std::uint8_t chunk[4096];
        const ssize_t n = ::recv(conns[c].fd(), chunk, sizeof(chunk), 0);
        if (n <= 0) continue;
        auto& in = buffers[c];
        in.insert(in.end(), chunk, chunk + n);
        std::size_t offset = 0;
        while (offset < in.size()) {
          const wire::FrameScan scan =
              wire::scan_frame(in.data() + offset, in.size() - offset);
          if (scan.state != wire::FrameScan::State::Ready) break;
          std::vector<std::uint8_t> reply;
          if (scan.header.kind == wire::FrameKind::Hello) {
            const auto hello =
                wire::decode_hello_frame(in.data() + offset, scan.frame_size);
            if (hello.ok()) {
              const auto agreed = wire::negotiate_version(
                  hello.value->min_version, hello.value->max_version);
              reply = wire::encode_hello_ack_frame(
                  scan.header.request_id, service::Status::okay(),
                  agreed.value_or(wire::kProtocolVersion));
            }
          } else if (scan.header.kind == wire::FrameKind::Ping) {
            reply = wire::encode_pong_frame(scan.header.request_id);
          }
          // Requests: swallowed.  That is the point.
          if (!reply.empty()) {
            std::size_t sent = 0;
            while (sent < reply.size()) {
              const ssize_t w = ::send(conns[c].fd(), reply.data() + sent,
                                       reply.size() - sent, MSG_NOSIGNAL);
              if (w > 0) {
                sent += static_cast<std::size_t>(w);
              } else if (errno != EAGAIN && errno != EWOULDBLOCK) {
                break;
              }
            }
          }
          offset += scan.frame_size;
        }
        in.erase(in.begin(), in.begin() + static_cast<std::ptrdiff_t>(offset));
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }

  net::Socket listener_;
  std::uint16_t port_ = 0;
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

// ---------------------------------------------------------------------------
// Ring

TEST(HashRingTest, PlacementIsDeterministicAndOrderedCoversEveryEndpoint) {
  std::vector<Endpoint> endpoints;
  for (std::uint16_t i = 0; i < 4; ++i) {
    endpoints.push_back({"10.0.0." + std::to_string(i + 1),
                         static_cast<std::uint16_t>(9000 + i)});
  }
  const HashRing ring(endpoints, 64);
  const HashRing again(endpoints, 64);
  ASSERT_EQ(ring.size(), 4u);

  std::vector<std::size_t> order;
  for (std::uint64_t key = 1; key <= 1000; ++key) {
    const service::Fingerprint fp = key * 0x9E3779B97F4A7C15ull;
    EXPECT_EQ(ring.owner(fp), again.owner(fp));  // deterministic
    ring.ordered(fp, order);
    ASSERT_EQ(order.size(), 4u);  // every endpoint, exactly once
    EXPECT_EQ(order.front(), ring.owner(fp));
    std::vector<char> seen(4, 0);
    for (std::size_t index : order) seen[index] = 1;
    for (char s : seen) EXPECT_EQ(s, 1);
  }
}

TEST(HashRingTest, VirtualNodesSpreadKeysAcrossTheFleet) {
  std::vector<Endpoint> endpoints;
  for (std::uint16_t i = 0; i < 4; ++i) {
    endpoints.push_back({"10.0.0." + std::to_string(i + 1), 9000});
  }
  const HashRing ring(endpoints, 64);
  std::vector<std::size_t> hits(4, 0);
  const std::size_t keys = 20000;
  for (std::uint64_t key = 1; key <= keys; ++key) {
    ++hits[ring.owner(key * 0x9E3779B97F4A7C15ull)];
  }
  for (std::size_t endpoint = 0; endpoint < hits.size(); ++endpoint) {
    // With 64 vnodes each of 4 endpoints owns roughly a quarter of the
    // key space; 5% is a loose floor that catches gross imbalance (an
    // endpoint owning one vnode or none).
    EXPECT_GT(hits[endpoint], keys / 20)
        << "endpoint " << endpoint << " owns almost nothing";
  }
}

// ---------------------------------------------------------------------------
// Health

TEST(HealthTrackerTest, UpSuspectDownTransitionsAndRecovery) {
  cluster::HealthOptions options;
  options.suspect_after = 1;
  options.down_after = 3;
  HealthTracker tracker(2, options);
  EXPECT_EQ(tracker.state(0), HealthState::Up);

  tracker.record_failure(0);
  EXPECT_EQ(tracker.state(0), HealthState::Suspect);
  EXPECT_TRUE(tracker.usable(0));  // Suspect still takes traffic
  tracker.record_failure(0);
  EXPECT_EQ(tracker.state(0), HealthState::Suspect);
  tracker.record_failure(0);
  EXPECT_EQ(tracker.state(0), HealthState::Down);
  EXPECT_FALSE(tracker.usable(0));
  EXPECT_EQ(tracker.state(1), HealthState::Up);  // isolation

  tracker.record_success(0);  // any success resets the machine
  EXPECT_EQ(tracker.state(0), HealthState::Up);

  EXPECT_EQ(to_string(HealthState::Up), "up");
  EXPECT_EQ(to_string(HealthState::Suspect), "suspect");
  EXPECT_EQ(to_string(HealthState::Down), "down");
}

TEST(HealthPingerTest, DownEndpointRecoversThroughASuccessfulPing) {
  Fleet fleet(1, 1);
  HealthTracker tracker(1);
  cluster::PingerOptions options;
  options.timeout = std::chrono::milliseconds(2000);
  options.connect_timeout = std::chrono::milliseconds(2000);
  cluster::HealthPinger pinger(fleet.endpoints(), tracker, options);

  // Data-path failures marked the endpoint Down; only a ping can bring
  // it back, because data traffic no longer reaches it.
  for (int i = 0; i < 5; ++i) tracker.record_failure(0);
  ASSERT_EQ(tracker.state(0), HealthState::Down);
  pinger.check_now();
  EXPECT_EQ(tracker.state(0), HealthState::Up);
}

TEST(HealthPingerTest, DeadEndpointKeepsFailingPings) {
  service::EngineOptions eopts;
  eopts.worker_threads = 0;
  service::QueryEngine engine(eopts);
  std::uint16_t dead_port = 0;
  {
    net::Server probe(engine);
    ASSERT_TRUE(probe.start());
    dead_port = probe.port();
  }
  HealthTracker tracker(1, {.suspect_after = 1, .down_after = 2});
  cluster::PingerOptions options;
  options.timeout = std::chrono::milliseconds(100);
  options.connect_timeout = std::chrono::milliseconds(100);
  cluster::HealthPinger pinger({{"127.0.0.1", dead_port}}, tracker, options);
  pinger.check_now();
  EXPECT_EQ(tracker.state(0), HealthState::Suspect);
  pinger.check_now();
  EXPECT_EQ(tracker.state(0), HealthState::Down);
}

// ---------------------------------------------------------------------------
// ClusterClient

TEST(ClusterClientTest, IdenticalRequestsLandOnTheSameServerCache) {
  Fleet fleet(3);
  service::MetricsRegistry metrics;
  ClusterClient client(cluster_options(fleet.endpoints(), &metrics));

  service::EngineOptions ref_options;
  ref_options.worker_threads = 0;
  service::QueryEngine reference(ref_options);

  for (std::size_t i = 0; i < 6; ++i) {
    const Request request = classify_request(i);
    const QueryResponse first = client.call(request);
    ASSERT_TRUE(first.ok()) << first.status.to_string();
    expect_payload_parity(first, reference.execute(request));
    EXPECT_FALSE(first.cache_hit);
    // Same fingerprint, same ring owner, same server: the repeat must
    // be a cache hit over there.
    const QueryResponse second = client.call(request);
    ASSERT_TRUE(second.ok());
    EXPECT_TRUE(second.cache_hit);
    expect_payload_parity(second, first);
  }
  EXPECT_EQ(metrics.net_requests_sent.value(), 12u);
}

TEST(ClusterClientTest, DeadEndpointFailsOverWithZeroFailedRequests) {
  Fleet fleet(3);
  service::MetricsRegistry metrics;
  ClusterOptions options = cluster_options(fleet.endpoints(), &metrics);
  options.health.suspect_after = 1;
  options.health.down_after = 1;  // first transport error marks it Down
  options.connect_timeout = std::chrono::milliseconds(300);
  ClusterClient client(options);

  // Warm every connection, then kill one backend: every subsequent
  // request must still be answered (ring successors absorb the dead
  // endpoint's keys), with zero failures surfacing to the caller.
  for (std::size_t i = 0; i < 8; ++i) {
    ASSERT_TRUE(client.call(classify_request(i)).ok());
  }
  fleet.kill(1);
  std::size_t routed_to_dead = 0;
  for (std::size_t i = 0; i < 32; ++i) {
    const Request request = diverse_request(i);
    if (client.owner_of(request) == 1) ++routed_to_dead;
    const QueryResponse response = client.call(request);
    EXPECT_TRUE(response.ok()) << i << ": " << response.status.to_string();
  }
  EXPECT_GT(routed_to_dead, 0u);  // the kill actually hit owned keys
  EXPECT_GE(metrics.net_failovers.value(), 1u);
  EXPECT_EQ(client.health().state(1), HealthState::Down);
  // Down endpoints are skipped up front: later calls do not pay a
  // connect timeout per request (this stays fast, which the 16-call
  // loop above implicitly asserts by finishing under the test timeout).
}

TEST(ClusterClientTest, HedgeWinsAgainstAStalledServerAndCancelsTheLoser) {
  Fleet fleet(1);
  MuteServer mute;
  // Find a request the *mute* endpoint owns, so the primary stalls and
  // only the hedge can answer.
  std::vector<Endpoint> endpoints = fleet.endpoints();
  endpoints.push_back({"127.0.0.1", mute.port()});

  service::MetricsRegistry metrics;
  ClusterOptions options = cluster_options(endpoints, &metrics);
  options.hedge_min_samples = 1u << 30;  // force delay = hedge_max_delay
  options.hedge_max_delay = std::chrono::milliseconds(25);
  ClusterClient client(options);

  Request stalled = diverse_request(0);
  bool found = false;
  for (std::size_t i = 0; i < 256; ++i) {
    stalled = diverse_request(i);
    if (client.owner_of(stalled) == 1) {
      found = true;
      break;
    }
  }
  ASSERT_TRUE(found) << "no request hashed onto the mute endpoint";

  const auto start = service::Clock::now();
  const QueryResponse response =
      client.call(stalled, service::Deadline::in(std::chrono::seconds(20)));
  const auto elapsed = service::Clock::now() - start;
  ASSERT_TRUE(response.ok()) << response.status.to_string();
  EXPECT_EQ(metrics.net_hedges_sent.value(), 1u);
  EXPECT_EQ(metrics.net_hedges_won.value(), 1u);
  // The win came from the hedge, not from waiting out a 10 s timeout.
  EXPECT_LT(elapsed, std::chrono::seconds(5));
}

TEST(ClusterClientTest, HedgeDelayTracksTheLiveP99) {
  service::MetricsRegistry metrics;
  ClusterOptions options = cluster_options({{"127.0.0.1", 1}}, &metrics);
  options.hedge_min_samples = 32;
  options.hedge_min_delay = std::chrono::milliseconds(2);
  options.hedge_max_delay = std::chrono::milliseconds(500);
  ClusterClient client(options);

  // Cold histogram: fall back to the max delay.
  EXPECT_EQ(client.hedge_delay(service::RequestType::Classify),
            options.hedge_max_delay);
  // Feed a tight latency distribution: the delay clamps to ~p99.
  for (int i = 0; i < 1000; ++i) {
    metrics.latency(service::RequestType::Classify)
        .record(std::chrono::milliseconds(10));
  }
  const auto delay = client.hedge_delay(service::RequestType::Classify);
  EXPECT_GE(delay, options.hedge_min_delay);
  EXPECT_LE(delay, std::chrono::milliseconds(50));
}

// ---------------------------------------------------------------------------
// CombiningProxy

TEST(CombiningProxyTest, MergedSweepsAreBitIdenticalToASingleServer) {
  Fleet fleet(2);
  cluster::ProxyOptions poptions;
  poptions.cluster = cluster_options(fleet.endpoints());
  poptions.worker_threads = 2;
  poptions.enable_pinger = false;  // deterministic: no background probes
  CombiningProxy proxy(poptions);
  ASSERT_TRUE(proxy.start()) << proxy.error();

  service::EngineOptions ref_options;
  ref_options.worker_threads = 0;
  service::QueryEngine reference(ref_options);

  net::ClientOptions copts;
  copts.port = proxy.port();
  net::Client client(copts);

  // Scattered, merged sweep == single-engine sweep, bit for bit; and
  // point queries pass through the hash-routing path unchanged.
  for (const Request& request :
       {sweep_request(), fault_sweep_request(), classify_request(3)}) {
    const QueryResponse merged = client.call(request);
    ASSERT_TRUE(merged.ok()) << merged.status.to_string();
    expect_payload_parity(merged, reference.execute(request));
  }
  // The sweep really scattered: the proxy issued more backend requests
  // than the three frontend ones.
  EXPECT_GT(proxy.metrics().net_requests_sent.value(), 3u);
  proxy.stop();
  EXPECT_FALSE(proxy.running());
}

TEST(CombiningProxyTest, KilledBackendMidTrafficLosesNoRequests) {
  Fleet fleet(3);
  cluster::ProxyOptions poptions;
  poptions.cluster = cluster_options(fleet.endpoints());
  poptions.cluster.health.down_after = 1;
  poptions.cluster.connect_timeout = std::chrono::milliseconds(300);
  poptions.worker_threads = 2;
  poptions.enable_pinger = false;
  CombiningProxy proxy(poptions);
  ASSERT_TRUE(proxy.start()) << proxy.error();

  service::EngineOptions ref_options;
  ref_options.worker_threads = 0;
  service::QueryEngine reference(ref_options);
  const QueryResponse expected = reference.execute(sweep_request());

  net::ClientOptions copts;
  copts.port = proxy.port();
  net::Client client(copts);

  std::atomic<bool> killed{false};
  std::thread killer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    fleet.kill(2);
    killed.store(true, std::memory_order_release);
  });

  // Sweeps keep flowing while one backend dies: chunks that land on the
  // dead endpoint fail over to ring successors, and every merged
  // response stays complete and bit-identical — zero failed requests.
  std::size_t completed = 0;
  for (int i = 0; i < 12; ++i) {
    const QueryResponse merged = client.call(sweep_request());
    ASSERT_TRUE(merged.ok()) << i << ": " << merged.status.to_string();
    expect_payload_parity(merged, expected);
    ++completed;
  }
  killer.join();
  EXPECT_TRUE(killed.load());
  EXPECT_EQ(completed, 12u);
}

TEST(CombiningProxyTest, ShutdownAnswersInsteadOfHanging) {
  Fleet fleet(1);
  cluster::ProxyOptions poptions;
  poptions.cluster = cluster_options(fleet.endpoints());
  poptions.worker_threads = 1;
  poptions.enable_pinger = false;
  auto proxy = std::make_unique<CombiningProxy>(poptions);
  ASSERT_TRUE(proxy->start()) << proxy->error();
  const std::uint16_t port = proxy->port();

  net::ClientOptions copts;
  copts.port = port;
  copts.max_retries = 0;
  net::Client client(copts);
  ASSERT_TRUE(client.call(classify_request(0)).ok());
  proxy->stop();
  // After stop the proxy is gone; a fresh call fails typed, not hung.
  const QueryResponse after = client.call(classify_request(1));
  EXPECT_FALSE(after.ok());
  proxy.reset();
}

}  // namespace
