#include "arch/modern.hpp"

#include <gtest/gtest.h>

#include "arch/validate.hpp"
#include "core/flynn.hpp"

namespace mpct::arch {
namespace {

std::string class_of(const char* name) {
  const ArchitectureSpec* spec = find_modern_example(name);
  EXPECT_NE(spec, nullptr) << name;
  const Classification result = spec->classify();
  EXPECT_TRUE(result.ok()) << name << ": " << result.note;
  return result.ok() ? to_string(*result.name) : "?";
}

TEST(Modern, SixStyles) {
  EXPECT_EQ(modern_examples().size(), 6u);
  EXPECT_EQ(find_modern_example("nonexistent"), nullptr);
  EXPECT_NE(find_modern_example("simt gpu sm"), nullptr);  // case-insensitive
}

TEST(Modern, GpuSmIsIapIV) {
  // Warp shuffle + banked shared memory: both DP-side crossbars.
  EXPECT_EQ(class_of("SIMT GPU SM"), "IAP-IV");
}

TEST(Modern, SystolicMxuIsIapI) {
  // Fixed neighbour pipes, edge-fed memory: the least flexible parallel
  // class — efficiency by inflexibility.
  EXPECT_EQ(class_of("Systolic MXU"), "IAP-I");
}

TEST(Modern, VectorLanesAreIapIII) {
  // Gather/scatter = DP-DM crossbar, no lane exchange.
  EXPECT_EQ(class_of("Vector lanes"), "IAP-III");
}

TEST(Modern, MeshManycoreIsImpIV) {
  EXPECT_EQ(class_of("Mesh manycore"), "IMP-IV");
}

TEST(Modern, SpatialDataflowIsIspClass) {
  // Distributed sequencers that compose: the paper's extension classes.
  const ArchitectureSpec* rdu = find_modern_example("Spatial dataflow RDU");
  ASSERT_NE(rdu, nullptr);
  const Classification result = rdu->classify();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.name->processing_type, ProcessingType::SpatialProcessor);
  EXPECT_EQ(to_string(*result.name), "ISP-IV");
}

TEST(Modern, EfpgaIsUsp) { EXPECT_EQ(class_of("Embedded FPGA fabric"), "USP"); }

TEST(Modern, AllStylesValid) {
  for (const ArchitectureSpec& spec : modern_examples()) {
    EXPECT_TRUE(is_valid(spec)) << spec.name;
    EXPECT_FALSE(spec.description.empty()) << spec.name;
    // These are library additions, so no paper values are claimed.
    EXPECT_FALSE(spec.paper_name.has_value()) << spec.name;
    EXPECT_FALSE(spec.paper_flexibility.has_value()) << spec.name;
  }
}

TEST(Modern, FlexibilityOrderingTellsTheEfficiencyStory) {
  // Systolic (most specialised) < vector < GPU SM < manycore <= spatial
  // dataflow < eFPGA.
  const auto flex = [&](const char* name) {
    return find_modern_example(name)->flexibility().total();
  };
  EXPECT_LT(flex("Systolic MXU"), flex("Vector lanes"));
  EXPECT_LT(flex("Vector lanes"), flex("SIMT GPU SM"));
  EXPECT_LT(flex("SIMT GPU SM"), flex("Mesh manycore"));
  EXPECT_LE(flex("Mesh manycore"), flex("Spatial dataflow RDU"));
  EXPECT_LT(flex("Spatial dataflow RDU"), flex("Embedded FPGA fabric"));
}

TEST(Modern, FlynnViewMatchesFolkTaxonomy) {
  const auto flynn = [&](const char* name) {
    return flynn_class(find_modern_example(name)->machine_class());
  };
  EXPECT_EQ(flynn("SIMT GPU SM"), FlynnClass::SIMD);
  EXPECT_EQ(flynn("Systolic MXU"), FlynnClass::SIMD);
  EXPECT_EQ(flynn("Mesh manycore"), FlynnClass::MIMD);
  EXPECT_EQ(flynn("Embedded FPGA fabric"), std::nullopt);
}

}  // namespace
}  // namespace mpct::arch
