#include "sim/dataflow/token_machine.hpp"

#include <gtest/gtest.h>

#include "sim/memory.hpp"

namespace mpct::sim::df {
namespace {

/// Wide independent graph: k parallel multiply-add chains rejoined by
/// nothing — lots of instruction-level parallelism.
Graph wide_graph(int chains) {
  Graph g;
  for (int i = 0; i < chains; ++i) {
    const NodeId a = g.add_input("a" + std::to_string(i));
    const NodeId b = g.add_input("b" + std::to_string(i));
    const NodeId m = g.add_op(Op::Mul, a, b);
    const NodeId c = g.add_const(1);
    g.add_output("o" + std::to_string(i), g.add_op(Op::Add, m, c));
  }
  return g;
}

std::vector<std::pair<std::string, Word>> wide_inputs(int chains) {
  std::vector<std::pair<std::string, Word>> inputs;
  for (int i = 0; i < chains; ++i) {
    inputs.emplace_back("a" + std::to_string(i), i + 1);
    inputs.emplace_back("b" + std::to_string(i), 2);
  }
  return inputs;
}

TEST(TokenMachine, DupMatchesFunctionalEvaluation) {
  const Graph g = wide_graph(3);
  TokenMachine dup(g, TokenMachineConfig::uniprocessor());
  const auto result = dup.run(wide_inputs(3));
  EXPECT_TRUE(result.stats.halted);
  const auto expected = evaluate(g, wide_inputs(3));
  EXPECT_EQ(result.outputs, expected);
  // One PE fires one node per cycle: makespan == node count.
  EXPECT_EQ(result.stats.instructions, g.node_count());
  EXPECT_EQ(result.stats.cycles, g.node_count());
}

TEST(TokenMachine, SubtypeFactory) {
  EXPECT_EQ(TokenMachineConfig::uniprocessor().subtype(), 0);
  EXPECT_EQ(TokenMachineConfig::for_subtype(1, 4).dp_dp,
            mpct::SwitchKind::None);
  EXPECT_EQ(TokenMachineConfig::for_subtype(2, 4).dp_dp,
            mpct::SwitchKind::Crossbar);
  EXPECT_EQ(TokenMachineConfig::for_subtype(3, 4).dp_dm,
            mpct::SwitchKind::Crossbar);
  EXPECT_EQ(TokenMachineConfig::for_subtype(4, 4).subtype(), 4);
  EXPECT_THROW(TokenMachineConfig::for_subtype(5, 4),
               std::invalid_argument);
}

TEST(TokenMachine, EveryDmpSubtypeComputesTheSameValues) {
  const Graph g = wide_graph(4);
  const auto expected = evaluate(g, wide_inputs(4));
  for (int subtype = 1; subtype <= 4; ++subtype) {
    TokenMachine machine(g, TokenMachineConfig::for_subtype(subtype, 4));
    const auto result = machine.run(wide_inputs(4));
    EXPECT_TRUE(result.stats.halted) << subtype;
    EXPECT_EQ(result.outputs, expected) << subtype;
  }
}

TEST(TokenMachine, ParallelPesBeatDupOnWideGraphs) {
  const Graph g = wide_graph(8);
  TokenMachine dup(g, TokenMachineConfig::uniprocessor());
  TokenMachine dmp4(g, TokenMachineConfig::for_subtype(4, 8));
  const auto t1 = dup.run(wide_inputs(8)).stats.cycles;
  const auto t8 = dmp4.run(wide_inputs(8)).stats.cycles;
  EXPECT_LT(t8, t1 / 2);
}

TEST(TokenMachine, Dmp1ParallelismIsLimitedToComponents) {
  // A single connected chain: DMP-I must serialise it on one PE while
  // DMP-IV pipelines it across PEs (the Fig. 3 sub-type story).
  Graph chain;
  NodeId prev = chain.add_input("x");
  for (int i = 0; i < 11; ++i) {
    prev = chain.add_op(Op::Add, prev, chain.add_const(1));
  }
  chain.add_output("r", prev);

  TokenMachine dmp1(chain, TokenMachineConfig::for_subtype(1, 4));
  const auto result = dmp1.run({{"x", 0}});
  EXPECT_EQ(result.outputs[0].second, 11);
  // All nodes on a single PE.
  const int pe = result.placement[0];
  for (int assignment : result.placement) {
    EXPECT_EQ(assignment, pe);
  }
}

TEST(TokenMachine, Dmp1RunsIndependentComponentsInParallel) {
  const Graph g = wide_graph(4);  // 4 independent components
  TokenMachine dmp1(g, TokenMachineConfig::for_subtype(1, 4));
  TokenMachine dup(g, TokenMachineConfig::uniprocessor());
  const auto t4 = dmp1.run(wide_inputs(4)).stats.cycles;
  const auto t1 = dup.run(wide_inputs(4)).stats.cycles;
  EXPECT_LT(t4, t1);
  // Components land on distinct PEs (each chain occupies 6 nodes, so
  // node 0 is in chain 0 and node 6 in chain 1).
  const auto placement = dmp1.run(wide_inputs(4)).placement;
  EXPECT_NE(placement[0], placement[6]);
}

TEST(TokenMachine, CrossbarTransferBeatsMemoryTransfer) {
  // The same connected graph on DMP-II (PE-PE crossbar, latency 1) vs
  // DMP-III (through memory, latency 2): the crossbar machine is at
  // least as fast.
  Graph chain;
  NodeId prev = chain.add_input("x");
  for (int i = 0; i < 16; ++i) {
    prev = chain.add_op(Op::Add, prev, chain.add_const(i));
  }
  chain.add_output("r", prev);

  TokenMachine dmp2(chain, TokenMachineConfig::for_subtype(2, 4));
  TokenMachine dmp3(chain, TokenMachineConfig::for_subtype(3, 4));
  const auto t2 = dmp2.run({{"x", 1}}).stats.cycles;
  const auto t3 = dmp3.run({{"x", 1}}).stats.cycles;
  EXPECT_LE(t2, t3);
}

TEST(TokenMachine, RejectsInvalidGraph) {
  Graph g;
  const NodeId a = g.add_input("a");
  g.add_op(Op::Add, a, 42);  // dangling
  EXPECT_THROW(TokenMachine(g, TokenMachineConfig::uniprocessor()),
               SimError);
}

TEST(TokenMachine, MissingInputThrows) {
  const Graph g = wide_graph(1);
  TokenMachine machine(g, TokenMachineConfig::uniprocessor());
  EXPECT_THROW(machine.run({}), SimError);
}

TEST(TokenMachine, FiringCountEqualsNodeCount) {
  const Graph g = wide_graph(5);
  for (int subtype = 1; subtype <= 4; ++subtype) {
    TokenMachine machine(g, TokenMachineConfig::for_subtype(subtype, 3));
    const auto result = machine.run(wide_inputs(5));
    EXPECT_EQ(result.stats.instructions, g.node_count()) << subtype;
  }
}

TEST(TokenMachine, RejectsBadPeCount) {
  const Graph g = wide_graph(1);
  TokenMachineConfig config;
  config.pes = 0;
  EXPECT_THROW(TokenMachine(g, config), std::invalid_argument);
}

/// Property sweep: for every subtype and PE count, results match the
/// functional evaluation (machine organisation never changes semantics).
struct SweepCase {
  int subtype;
  int pes;
};

class TokenMachineSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(TokenMachineSweep, SemanticsPreserved) {
  const Graph g = wide_graph(6);
  const auto expected = evaluate(g, wide_inputs(6));
  TokenMachine machine(
      g, TokenMachineConfig::for_subtype(GetParam().subtype, GetParam().pes));
  EXPECT_EQ(machine.run(wide_inputs(6)).outputs, expected);
}

INSTANTIATE_TEST_SUITE_P(
    SubtypesAndPes, TokenMachineSweep,
    ::testing::Values(SweepCase{1, 2}, SweepCase{1, 8}, SweepCase{2, 2},
                      SweepCase{2, 8}, SweepCase{3, 2}, SweepCase{3, 8},
                      SweepCase{4, 2}, SweepCase{4, 8}, SweepCase{4, 32}));

}  // namespace
}  // namespace mpct::sim::df
