#include "arch/spec.hpp"

#include <gtest/gtest.h>

#include "arch/adl_parser.hpp"

namespace mpct::arch {
namespace {

ArchitectureSpec morphosys_like() {
  ArchitectureSpec spec;
  spec.name = "MorphoSys";
  spec.ips = Count::fixed(1);
  spec.dps = Count::fixed(64);
  spec.at(ConnectivityRole::IpDp) =
      *ConnectivityExpr::parse("1-64");
  spec.at(ConnectivityRole::IpIm) = *ConnectivityExpr::parse("1-1");
  spec.at(ConnectivityRole::DpDm) = *ConnectivityExpr::parse("64-1");
  spec.at(ConnectivityRole::DpDp) = *ConnectivityExpr::parse("64x64");
  return spec;
}

TEST(Spec, MachineClassReduction) {
  const MachineClass mc = morphosys_like().machine_class();
  EXPECT_EQ(mc.ips, Multiplicity::One);
  EXPECT_EQ(mc.dps, Multiplicity::Many);
  EXPECT_EQ(mc.switch_at(ConnectivityRole::IpDp), SwitchKind::Direct);
  EXPECT_EQ(mc.switch_at(ConnectivityRole::DpDm), SwitchKind::Direct);
  EXPECT_EQ(mc.switch_at(ConnectivityRole::DpDp), SwitchKind::Crossbar);
  EXPECT_EQ(mc.switch_at(ConnectivityRole::IpIp), SwitchKind::None);
}

TEST(Spec, ClassifiesToPaperName) {
  const Classification result = morphosys_like().classify();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(to_string(*result.name), "IAP-II");
}

TEST(Spec, FlexibilityBreakdown) {
  const FlexibilityBreakdown b = morphosys_like().flexibility();
  EXPECT_EQ(b.many_ips, 0);
  EXPECT_EQ(b.many_dps, 1);
  EXPECT_EQ(b.crossbar_switches, 1);
  EXPECT_EQ(b.total(), 2);
}

TEST(Spec, AdlSerialisationRoundTripsThroughParser) {
  ArchitectureSpec spec = morphosys_like();
  spec.citation = "[13]";
  spec.year = 1999;
  spec.category = "CGRA";
  spec.description = "8x8 RC fabric under a TinyRISC host";
  spec.paper_name = "IAP-II";
  spec.paper_flexibility = 2;

  const std::string adl = to_adl(spec);
  const ParseResult parsed = parse_single_adl(adl);
  ASSERT_TRUE(parsed.ok()) << adl;
  ASSERT_EQ(parsed.specs.size(), 1u);
  EXPECT_EQ(parsed.specs[0], spec);
}

TEST(Spec, AdlOfLutFabricKeepsGranularity) {
  ArchitectureSpec spec;
  spec.name = "FPGA";
  spec.granularity = Granularity::Lut;
  spec.ips = Count::variable();
  spec.dps = Count::variable();
  for (ConnectivityRole role : kAllConnectivityRoles) {
    spec.at(role) = *ConnectivityExpr::parse("vxv");
  }
  const ParseResult parsed = parse_single_adl(to_adl(spec));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.specs[0].granularity, Granularity::Lut);
  EXPECT_EQ(to_string(*parsed.specs[0].classify().name), "USP");
}

}  // namespace
}  // namespace mpct::arch
