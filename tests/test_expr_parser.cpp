#include "sim/dataflow/expr_parser.hpp"

#include <gtest/gtest.h>

#include "sim/cgra/scheduler.hpp"
#include "sim/dataflow/token_machine.hpp"
#include "sim/memory.hpp"

namespace mpct::sim::df {
namespace {

Word eval_single(const char* source,
                 const std::vector<std::pair<std::string, Word>>& inputs) {
  const Graph g = compile_expression_or_throw(source);
  const auto outputs = evaluate(g, inputs);
  EXPECT_EQ(outputs.size(), 1u) << source;
  return outputs.at(0).second;
}

TEST(ExprParser, Arithmetic) {
  EXPECT_EQ(eval_single("r = 2 + 3 * 4", {}), 14);
  EXPECT_EQ(eval_single("r = (2 + 3) * 4", {}), 20);
  EXPECT_EQ(eval_single("r = 10 - 3 - 2", {}), 5);  // left associative
  EXPECT_EQ(eval_single("r = 20 / 4 / 5", {}), 1);
  EXPECT_EQ(eval_single("r = -5 + 2", {}), -3);
  EXPECT_EQ(eval_single("r = --5", {}), 5);
}

TEST(ExprParser, BitwiseAndShifts) {
  EXPECT_EQ(eval_single("r = 12 & 10", {}), 8);
  EXPECT_EQ(eval_single("r = 12 | 10", {}), 14);
  EXPECT_EQ(eval_single("r = 12 ^ 10", {}), 6);
  EXPECT_EQ(eval_single("r = 1 << 4", {}), 16);
  EXPECT_EQ(eval_single("r = 32 >> 2", {}), 8);
  // Precedence: shifts bind tighter than &, which binds tighter than |.
  EXPECT_EQ(eval_single("r = 1 | 2 & 3", {}), 3);
  EXPECT_EQ(eval_single("r = 2 & 1 << 1", {}), 2);
}

TEST(ExprParser, ComparisonAndTernary) {
  EXPECT_EQ(eval_single("r = 3 < 5", {}), 1);
  EXPECT_EQ(eval_single("r = 5 < 3", {}), 0);
  EXPECT_EQ(eval_single("r = 3 < 5 ? 10 : 20", {}), 10);
  EXPECT_EQ(eval_single("r = 5 < 3 ? 10 : 20", {}), 20);
  // Nested arms.
  EXPECT_EQ(eval_single("r = 1 ? 2 ? 30 : 40 : 50", {}), 30);
}

TEST(ExprParser, MinMaxBuiltins) {
  EXPECT_EQ(eval_single("r = min(3, 9)", {}), 3);
  EXPECT_EQ(eval_single("r = max(3, 9)", {}), 9);
  EXPECT_EQ(eval_single("r = max(min(5, 2), 1 + 1)", {}), 2);
}

TEST(ExprParser, FreeNamesBecomeInputs) {
  const Graph g = compile_expression_or_throw("out = a*x + y");
  EXPECT_EQ(g.input_nodes().size(), 3u);
  EXPECT_EQ(eval_single("out = a*x + y", {{"a", 3}, {"x", 4}, {"y", 5}}),
            17);
}

TEST(ExprParser, AssignedNamesChainAndBecomeOutputs) {
  const Graph g = compile_expression_or_throw(R"(
    prod = a * b
    out = prod + prod
  )");
  EXPECT_EQ(g.output_nodes().size(), 2u);
  const auto outputs = evaluate(g, {{"a", 3}, {"b", 4}});
  EXPECT_EQ(outputs[0], (std::pair<std::string, Word>{"prod", 12}));
  EXPECT_EQ(outputs[1], (std::pair<std::string, Word>{"out", 24}));
}

TEST(ExprParser, SemicolonsAndNewlinesSeparate) {
  const Graph g =
      compile_expression_or_throw("a2 = x + 1; b2 = x + 2\nc2 = a2 * b2");
  EXPECT_EQ(g.output_nodes().size(), 3u);
}

TEST(ExprParser, CommentsIgnored) {
  EXPECT_EQ(eval_single("r = 1 + 2 # trailing comment", {}), 3);
  const Graph g = compile_expression_or_throw(R"(
    # leading comment line
    r = 7
  )");
  EXPECT_EQ(evaluate(g, {}).at(0).second, 7);
}

TEST(ExprParser, ReportsErrors) {
  EXPECT_FALSE(compile_expression("= 3").ok());
  EXPECT_FALSE(compile_expression("x").ok());
  EXPECT_FALSE(compile_expression("x = ").ok());
  EXPECT_FALSE(compile_expression("x = (1 + 2").ok());
  EXPECT_FALSE(compile_expression("x = 1 ? 2").ok());
  EXPECT_FALSE(compile_expression("x = min(1)").ok());
  EXPECT_FALSE(compile_expression("x = 1 $ 2").ok());
  EXPECT_FALSE(compile_expression("x = 1; x = 2").ok());  // reassignment
  EXPECT_THROW(compile_expression_or_throw("="), SimError);
}

TEST(ExprParser, ErrorCarriesPosition) {
  const ExprResult result = compile_expression("out = (1 + 2");
  ASSERT_FALSE(result.ok());
  EXPECT_GT(result.errors[0].position, 0);
  EXPECT_NE(result.errors[0].to_string().find("')'"), std::string::npos);
}

TEST(ExprParser, CompiledGraphRunsOnTokenMachine) {
  const Graph g = compile_expression_or_throw(
      "clamped = min(a*b + c, 100); flag = clamped < 50");
  TokenMachine machine(g, TokenMachineConfig::for_subtype(4, 4));
  const auto result =
      machine.run({{"a", 6}, {"b", 7}, {"c", 1}});
  EXPECT_EQ(result.outputs.at(0).second, 43);
  EXPECT_EQ(result.outputs.at(1).second, 1);
}

TEST(ExprParser, CompiledGraphMapsOntoCgra) {
  const Graph g = compile_expression_or_throw("out = (a + b) * (a - b)");
  cgra::Cgra fabric(
      cgra::CgraShape{.fus = 4, .contexts = 4, .primary_inputs = 4});
  const cgra::Schedule schedule = cgra::map_graph(g, fabric);
  const auto outputs =
      cgra::run_mapped(fabric, schedule, {{"a", 9}, {"b", 4}});
  EXPECT_EQ(outputs.at(0).second, (9 + 4) * (9 - 4));
}

TEST(ExprParser, DivisionByZeroSurfacesAtRun) {
  const Graph g = compile_expression_or_throw("r = a / b");
  EXPECT_THROW(evaluate(g, {{"a", 1}, {"b", 0}}), SimError);
}

}  // namespace
}  // namespace mpct::sim::df
