#include "interconnect/neighbor.hpp"

#include <gtest/gtest.h>

namespace mpct::interconnect {
namespace {

TEST(Neighbor, ReachabilityIsTheWindow) {
  NeighborNetwork net(10, 3, /*wrap=*/false);
  EXPECT_TRUE(net.reachable(5, 5));
  EXPECT_TRUE(net.reachable(2, 5));
  EXPECT_TRUE(net.reachable(8, 5));
  EXPECT_FALSE(net.reachable(1, 5));
  EXPECT_FALSE(net.reachable(9, 5));
}

TEST(Neighbor, ConnectRespectsWindow) {
  NeighborNetwork net(8, 1, false);
  EXPECT_TRUE(net.connect(3, 4));
  EXPECT_EQ(net.source_of(4), 3);
  EXPECT_FALSE(net.connect(0, 4));
  EXPECT_EQ(net.source_of(4), 3);  // failed connect leaves state alone
}

TEST(Neighbor, TorusWrapsDistance) {
  NeighborNetwork line(8, 2, false);
  NeighborNetwork torus(8, 2, true);
  EXPECT_FALSE(line.reachable(7, 0));
  EXPECT_TRUE(torus.reachable(7, 0));
  EXPECT_EQ(line.distance(7, 0), 7);
  EXPECT_EQ(torus.distance(7, 0), 1);
}

TEST(Neighbor, RouteLatencyIsDistance) {
  NeighborNetwork net(16, 3, false);
  ASSERT_TRUE(net.connect(5, 8));
  EXPECT_EQ(net.route_latency(8), 3);
  ASSERT_TRUE(net.connect(8, 8));  // self route
  EXPECT_EQ(net.route_latency(8), 1);  // still one switch traversal
  EXPECT_EQ(net.route_latency(0), 0);  // unrouted
}

TEST(Neighbor, ZeroHopsMeansSelfOnly) {
  NeighborNetwork net(4, 0, false);
  EXPECT_TRUE(net.reachable(2, 2));
  EXPECT_FALSE(net.reachable(1, 2));
}

TEST(Neighbor, ConfigBitsScaleWithWindowNotSize) {
  // n * ceil(log2(window+1)): for fixed hops, doubling the array doubles
  // the bits (linear), unlike a crossbar's n*log(n).
  NeighborNetwork small(64, 3, false);   // window 7 -> 3 bits
  NeighborNetwork large(128, 3, false);
  EXPECT_EQ(small.config_bits(), 64 * 3);
  EXPECT_EQ(large.config_bits(), 2 * small.config_bits());
}

TEST(Neighbor, WindowClippedBySize) {
  // 4 elements with +-3 hops: window is the whole array (4 candidates).
  NeighborNetwork net(4, 3, false);
  EXPECT_EQ(net.config_bits(), 4 * 3);  // ceil(log2(5)) == 3
}

TEST(Neighbor, DrraStyleThreeHopWindow) {
  // DRRA: every element talks to elements within 3 hops left or right.
  NeighborNetwork drra(14, 3, false);
  for (int from = 0; from < 14; ++from) {
    for (int to = 0; to < 14; ++to) {
      EXPECT_EQ(drra.reachable(from, to), std::abs(from - to) <= 3)
          << from << "->" << to;
    }
  }
}

TEST(Neighbor, RejectsBadShape) {
  EXPECT_THROW(NeighborNetwork(0, 1), std::invalid_argument);
  EXPECT_THROW(NeighborNetwork(4, -1), std::invalid_argument);
}

TEST(Neighbor, DisconnectWorks) {
  NeighborNetwork net(8, 2, false);
  ASSERT_TRUE(net.connect(1, 2));
  net.disconnect(2);
  EXPECT_EQ(net.source_of(2), std::nullopt);
}

/// Property: a window of n-1 hops over a line makes every pair reachable
/// (degenerates to a crossbar's reachability).
class NeighborFullWindow : public ::testing::TestWithParam<int> {};

TEST_P(NeighborFullWindow, FullWindowReachesAll) {
  const int n = GetParam();
  NeighborNetwork net(n, n - 1, false);
  for (int from = 0; from < n; ++from) {
    for (int to = 0; to < n; ++to) {
      EXPECT_TRUE(net.reachable(from, to));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, NeighborFullWindow,
                         ::testing::Values(2, 3, 5, 9));

}  // namespace
}  // namespace mpct::interconnect
