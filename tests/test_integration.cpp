/// Cross-module integration tests: the paper's end-to-end pipelines.
#include <gtest/gtest.h>

#include "arch/adl_parser.hpp"
#include "arch/registry.hpp"
#include "core/flexibility.hpp"
#include "core/taxonomy_table.hpp"
#include "cost/config_bits.hpp"
#include "interconnect/crossbar.hpp"
#include "sim/dataflow/token_machine.hpp"
#include "sim/isa/assembler.hpp"
#include "sim/mimd/multiprocessor.hpp"
#include "sim/simd/array_processor.hpp"

namespace mpct {
namespace {

TEST(Integration, TableIIIFlexibilityOrderingMatchesFigure7) {
  // Figure 7's headline: FPGA first, MATRIX second, DRRA third (within
  // the comparable instruction/universal-flow set).
  const arch::ArchitectureSpec* fpga = arch::find_architecture("FPGA");
  const arch::ArchitectureSpec* matrix = arch::find_architecture("MATRIX");
  const arch::ArchitectureSpec* drra = arch::find_architecture("DRRA");
  ASSERT_TRUE(fpga && matrix && drra);
  const int f_fpga = fpga->flexibility().total();
  const int f_matrix = matrix->flexibility().total();
  const int f_drra = drra->flexibility().total();
  EXPECT_GT(f_fpga, f_matrix);
  EXPECT_GT(f_matrix, f_drra);
  // And nothing else in the survey beats DRRA except those two and RaPiD
  // ties at 5.
  for (const arch::ArchitectureSpec& spec :
       arch::surveyed_architectures()) {
    if (spec.name == "FPGA" || spec.name == "MATRIX") continue;
    EXPECT_LE(spec.flexibility().total(), f_drra) << spec.name;
  }
}

TEST(Integration, AdlRoundTripPreservesClassification) {
  // Serialise every surveyed architecture to ADL, parse it back, and
  // verify the classification pipeline is unchanged.
  for (const arch::ArchitectureSpec& spec :
       arch::surveyed_architectures()) {
    const arch::ParseResult parsed = arch::parse_single_adl(to_adl(spec));
    ASSERT_TRUE(parsed.ok()) << spec.name;
    const arch::ArchitectureSpec& round = parsed.specs[0];
    EXPECT_EQ(round, spec) << spec.name;
    const Classification a = spec.classify();
    const Classification b = round.classify();
    ASSERT_EQ(a.ok(), b.ok()) << spec.name;
    if (a.ok()) {
      EXPECT_EQ(*a.name, *b.name) << spec.name;
    }
  }
}

TEST(Integration, Eq2PredictionMatchesExecutableCrossbars) {
  // For each surveyed architecture with fixed-size crossbars, build the
  // actual interconnect::Crossbar instances and compare their measured
  // configuration state against the Eq. 2 switch terms.
  const cost::ComponentLibrary lib =
      cost::ComponentLibrary::default_library();
  const arch::ArchitectureSpec* morphosys =
      arch::find_architecture("MorphoSys");
  ASSERT_NE(morphosys, nullptr);
  const cost::ConfigBitsEstimate estimate =
      cost::estimate_config_bits(*morphosys, lib);
  interconnect::Crossbar dp_dp(64, 64);
  EXPECT_EQ(dp_dp.config_bits(), estimate.dp_dp_switch);

  const arch::ArchitectureSpec* montium = arch::find_architecture("Montium");
  ASSERT_NE(montium, nullptr);
  const cost::ConfigBitsEstimate m = cost::estimate_config_bits(*montium, lib);
  interconnect::Crossbar dp_dm(5, 10);
  EXPECT_EQ(dp_dm.config_bits(), m.dp_dm_switch);
  interconnect::Crossbar dp_dp5(5, 5);
  EXPECT_EQ(dp_dp5.config_bits(), m.dp_dp_switch);
}

TEST(Integration, FlexibilityOrderingHasExecutableTeeth) {
  // Table II says IMP-I(2) > IAP-I(1) > IUP(0).  The simulators make
  // that order operational:
  //  * the IAP program runs unchanged on the IMP (broadcast) — greater
  //    flexibility subsumes the lesser machine;
  //  * the lane-shuffle program needs the DP-DP switch (subtype bump);
  //  * the multi-program workload needs multiple IPs (family bump).
  const sim::Program vector_kernel = sim::assemble_or_throw(R"(
    lane r1
    addi r2, r1, 5
    out r2
    halt
  )");

  sim::ArrayProcessor iap(
      vector_kernel, sim::ArrayProcessorConfig::for_subtype(1, 4, 32));
  const sim::RunStats iap_stats = iap.run();

  sim::MultiprocessorConfig imp_config =
      sim::MultiprocessorConfig::for_subtype(1);
  imp_config.cores = 4;
  sim::Multiprocessor imp =
      sim::Multiprocessor::broadcast(vector_kernel, imp_config);
  const sim::RunStats imp_stats = imp.run();

  EXPECT_EQ(iap_stats.output, imp_stats.output);
  EXPECT_EQ(iap_stats.output, (std::vector<sim::Word>{5, 6, 7, 8}));
}

TEST(Integration, DataflowSubtypesShowFlexibilityLatencyTradeoff) {
  // DMP-IV (flex 3) never loses to DMP-I (flex 1) in makespan on a
  // connected graph, because DMP-I cannot spread a component.
  sim::df::Graph chain;
  sim::df::NodeId prev = chain.add_input("x");
  for (int i = 0; i < 20; ++i) {
    prev = chain.add_op(sim::df::Op::Add, prev, chain.add_const(1));
  }
  chain.add_output("r", prev);

  sim::df::TokenMachine dmp1(
      chain, sim::df::TokenMachineConfig::for_subtype(1, 4));
  sim::df::TokenMachine dmp4(
      chain, sim::df::TokenMachineConfig::for_subtype(4, 4));
  const auto r1 = dmp1.run({{"x", 0}});
  const auto r4 = dmp4.run({{"x", 0}});
  EXPECT_EQ(r1.outputs, r4.outputs);
  EXPECT_EQ(r1.outputs[0].second, 20);
  EXPECT_LE(r4.stats.cycles, r1.stats.cycles * 2);  // transfer overhead
}

TEST(Integration, DesignSpaceOrderingAreaVsFlexibility) {
  // The paper's design-space pitch: within the IMP family (fixed N),
  // flexibility and estimated cost rise together, so a designer picks
  // the cheapest class that satisfies a flexibility requirement.
  const cost::ComponentLibrary lib =
      cost::ComponentLibrary::default_library();
  const cost::EstimateOptions options{.n = 16};
  for (int sub = 1; sub < 16; ++sub) {
    const auto a = *canonical_class(TaxonomicName{
        MachineType::InstructionFlow, ProcessingType::MultiProcessor, sub});
    const auto b = *canonical_class(
        TaxonomicName{MachineType::InstructionFlow,
                      ProcessingType::MultiProcessor, sub + 1});
    if (flexibility_score(a) < flexibility_score(b)) {
      EXPECT_LE(
          cost::estimate_config_bits(a, lib, options).switch_bits(),
          cost::estimate_config_bits(b, lib, options).switch_bits())
          << sub;
    }
  }
}

TEST(Integration, EveryCanonicalClassHasConsistentPipeline) {
  // For all 43 named classes: canonical structure -> classify -> name,
  // flexibility computable, area/CB estimable and positive.
  const cost::ComponentLibrary lib =
      cost::ComponentLibrary::default_library();
  for (const TaxonomyEntry& row : extended_taxonomy()) {
    if (!row.name) continue;
    const Classification result = classify(row.machine);
    ASSERT_TRUE(result.ok()) << row.serial;
    EXPECT_EQ(*result.name, *row.name);
    EXPECT_GE(flexibility_score(row.machine), 0);
    const auto area = cost::estimate_area(row.machine, lib, {.n = 8});
    EXPECT_GT(area.total_kge(), 0) << row.serial;
    const auto cb = cost::estimate_config_bits(row.machine, lib, {.n = 8});
    EXPECT_GE(cb.total(), 0) << row.serial;
  }
}

TEST(Integration, PaperErratumIsTheOnlyMismatch) {
  // Across the whole survey, computed flexibility equals the printed
  // value except for the single documented erratum.
  int mismatches = 0;
  for (const arch::ArchitectureSpec& spec :
       arch::surveyed_architectures()) {
    if (spec.flexibility().total() != *spec.paper_flexibility) {
      ++mismatches;
      EXPECT_EQ(spec.name, "PACT XPP");
    }
  }
  EXPECT_EQ(mismatches, 1);
}

}  // namespace
}  // namespace mpct
