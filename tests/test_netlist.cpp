#include "sim/spatial/netlist.hpp"

#include <gtest/gtest.h>

#include "sim/memory.hpp"

namespace mpct::sim::spatial {
namespace {

std::vector<std::pair<std::string, bool>> adder_inputs(int bits, unsigned a,
                                                       unsigned b,
                                                       bool cin) {
  std::vector<std::pair<std::string, bool>> in;
  for (int i = 0; i < bits; ++i) {
    in.emplace_back("a" + std::to_string(i), (a >> i) & 1u);
    in.emplace_back("b" + std::to_string(i), (b >> i) & 1u);
  }
  in.emplace_back("cin", cin);
  return in;
}

unsigned decode_sum(const std::vector<bool>& outputs, int bits) {
  // Outputs are s0..s{bits-1}, cout in add_output order.
  unsigned value = 0;
  for (int i = 0; i < bits; ++i) {
    if (outputs[static_cast<std::size_t>(i)]) value |= 1u << i;
  }
  if (outputs[static_cast<std::size_t>(bits)]) value |= 1u << bits;
  return value;
}

TEST(Netlist, GateConstructionAndValidation) {
  Netlist nl;
  const GateId a = nl.add_input("a");
  const GateId b = nl.add_input("b");
  nl.add_output("y", nl.add_and(a, b));
  EXPECT_TRUE(nl.validate().empty());
  EXPECT_EQ(nl.gate_count(), 4);
  EXPECT_EQ(nl.dff_count(), 0);
}

TEST(Netlist, BasicGatesTruthTables) {
  Netlist nl;
  const GateId a = nl.add_input("a");
  const GateId b = nl.add_input("b");
  nl.add_output("and", nl.add_and(a, b));
  nl.add_output("or", nl.add_or(a, b));
  nl.add_output("xor", nl.add_xor(a, b));
  nl.add_output("not", nl.add_not(a));
  nl.add_output("one", nl.add_const(true));
  nl.add_output("zero", nl.add_const(false));
  for (int va = 0; va <= 1; ++va) {
    for (int vb = 0; vb <= 1; ++vb) {
      const auto out = nl.simulate(
          {{{"a", va != 0}, {"b", vb != 0}}})[0];
      EXPECT_EQ(out[0], va && vb);
      EXPECT_EQ(out[1], va || vb);
      EXPECT_EQ(out[2], va != vb);
      EXPECT_EQ(out[3], !va);
      EXPECT_TRUE(out[4]);
      EXPECT_FALSE(out[5]);
    }
  }
}

TEST(Netlist, MuxSelects) {
  Netlist nl;
  const GateId s = nl.add_input("s");
  const GateId a = nl.add_input("a");
  const GateId b = nl.add_input("b");
  nl.add_output("y", nl.add_mux(s, a, b));
  EXPECT_TRUE(
      nl.simulate({{{"s", true}, {"a", true}, {"b", false}}})[0][0]);
  EXPECT_FALSE(
      nl.simulate({{{"s", false}, {"a", true}, {"b", false}}})[0][0]);
}

TEST(Netlist, UnconnectedDffFailsValidation) {
  Netlist nl;
  nl.add_dff();
  const auto problems = nl.validate();
  ASSERT_FALSE(problems.empty());
  EXPECT_NE(problems[0].find("unconnected DFF"), std::string::npos);
}

TEST(Netlist, CombinationalCycleDetected) {
  // gate 1 = and(in, gate 2); gate 2 = and(gate 1, in): a combinational
  // loop with no DFF to break it.
  Netlist cyc;
  const GateId in = cyc.add_input("in");
  const GateId g1 = cyc.add_and(in, 2);  // forward reference to gate 2
  cyc.add_and(g1, in);
  const auto problems = cyc.validate();
  ASSERT_FALSE(problems.empty());
  EXPECT_NE(problems[0].find("combinational cycle"), std::string::npos);
}

TEST(Netlist, DffBreaksCycle) {
  // Feedback through a DFF is legal: toggle flop.
  Netlist nl;
  const GateId q = nl.add_dff();
  const GateId next = nl.add_not(q);
  nl.connect_dff(q, next);
  nl.add_output("q", q);
  EXPECT_TRUE(nl.validate().empty());
  const auto trace = nl.simulate({{}, {}, {}, {}});
  EXPECT_FALSE(trace[0][0]);
  EXPECT_TRUE(trace[1][0]);
  EXPECT_FALSE(trace[2][0]);
  EXPECT_TRUE(trace[3][0]);
}

TEST(Netlist, ConnectDffOnlyOnDffs) {
  Netlist nl;
  const GateId a = nl.add_input("a");
  EXPECT_THROW(nl.connect_dff(a, a), SimError);
}

TEST(Netlist, MissingInputThrows) {
  Netlist nl;
  const GateId a = nl.add_input("a");
  nl.add_output("y", nl.add_not(a));
  EXPECT_THROW(nl.simulate({{}}), SimError);
}

/// Exhaustive property: the 4-bit ripple adder equals binary addition on
/// every operand pair (and both carries).
class RippleAdder : public ::testing::TestWithParam<int> {};

TEST_P(RippleAdder, MatchesArithmetic) {
  const int bits = 4;
  const Netlist adder = build_ripple_adder(bits);
  const unsigned a = static_cast<unsigned>(GetParam()) & 0xF;
  for (unsigned b = 0; b < 16; ++b) {
    for (unsigned cin = 0; cin <= 1; ++cin) {
      const auto out =
          adder.simulate({adder_inputs(bits, a, b, cin != 0)})[0];
      EXPECT_EQ(decode_sum(out, bits), a + b + cin)
          << a << "+" << b << "+" << cin;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllA, RippleAdder, ::testing::Range(0, 16));

TEST(Counter, CountsWhenEnabled) {
  const Netlist counter = build_counter(3);
  std::vector<std::vector<std::pair<std::string, bool>>> stimulus(
      10, {{"en", true}});
  const auto trace = counter.simulate(stimulus);
  for (int cycle = 0; cycle < 10; ++cycle) {
    unsigned value = 0;
    for (int bit = 0; bit < 3; ++bit) {
      if (trace[static_cast<std::size_t>(cycle)]
               [static_cast<std::size_t>(bit)]) {
        value |= 1u << bit;
      }
    }
    EXPECT_EQ(value, static_cast<unsigned>(cycle) % 8) << cycle;
  }
}

TEST(Counter, HoldsWhenDisabled) {
  const Netlist counter = build_counter(3);
  const auto trace = counter.simulate({
      {{"en", true}},   // -> 1
      {{"en", true}},   // -> 2
      {{"en", false}},  // hold 2
      {{"en", false}},  // hold 2
      {{"en", true}},   // -> 3
  });
  const auto value = [&](int cycle) {
    unsigned v = 0;
    for (int bit = 0; bit < 3; ++bit) {
      if (trace[static_cast<std::size_t>(cycle)]
               [static_cast<std::size_t>(bit)]) {
        v |= 1u << bit;
      }
    }
    return v;
  };
  EXPECT_EQ(value(0), 0u);
  EXPECT_EQ(value(1), 1u);
  EXPECT_EQ(value(2), 2u);
  EXPECT_EQ(value(3), 2u);
  EXPECT_EQ(value(4), 2u);
}

TEST(SequenceDetector, FiresOnConsecutiveOnes) {
  const Netlist fsm = build_sequence_detector();
  const bool inputs[] = {true, true, false, true, true, true};
  std::vector<std::vector<std::pair<std::string, bool>>> stimulus;
  for (bool in : inputs) stimulus.push_back({{"in", in}});
  const auto trace = fsm.simulate(stimulus);
  const bool expected[] = {false, true, false, false, true, true};
  for (std::size_t i = 0; i < std::size(inputs); ++i) {
    EXPECT_EQ(trace[i][0], expected[i]) << i;
  }
}

}  // namespace
}  // namespace mpct::sim::spatial
