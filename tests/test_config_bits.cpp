#include "cost/config_bits.hpp"

#include <gtest/gtest.h>

#include "arch/registry.hpp"
#include "core/classifier.hpp"
#include "core/taxonomy_table.hpp"

namespace mpct::cost {
namespace {

MachineClass named(const char* text) {
  return *canonical_class(*parse_taxonomic_name(text));
}

TEST(ConfigBits, IupHasOnlyBlockConfiguration) {
  // Direct links carry no configuration, so an IUP's CB is the block CWs.
  const ComponentLibrary lib = ComponentLibrary::default_library();
  const ConfigBitsEstimate e = estimate_config_bits(named("IUP"), lib);
  EXPECT_EQ(e.switch_bits(), 0);
  EXPECT_EQ(e.total(), lib.ip.config_bits + lib.dp.config_bits +
                           lib.im.config_bits + lib.dm.config_bits);
}

TEST(ConfigBits, DataFlowDropsIpTerms) {
  const ComponentLibrary lib = ComponentLibrary::default_library();
  const ConfigBitsEstimate e =
      estimate_config_bits(named("DMP-II"), lib, {.n = 8});
  EXPECT_EQ(e.ip_blocks, 0);
  EXPECT_EQ(e.im_blocks, 0);
  EXPECT_EQ(e.dp_blocks, 8 * lib.dp.config_bits);
  // DMP-II: DP-DP crossbar of 8x8 -> 8 * ceil(log2(9)) = 8 * 4.
  EXPECT_EQ(e.dp_dp_switch, 8 * 4);
  EXPECT_EQ(e.dp_dm_switch, 0);  // direct
}

TEST(ConfigBits, CrossbarTermMatchesFormula) {
  const ComponentLibrary lib = ComponentLibrary::default_library();
  const ConfigBitsEstimate e =
      estimate_config_bits(named("IMP-XVI"), lib, {.n = 16});
  const std::int64_t per_square_crossbar = 16 * ceil_log2(17);  // 16*5
  EXPECT_EQ(e.ip_im_switch, per_square_crossbar);
  EXPECT_EQ(e.dp_dm_switch, per_square_crossbar);
  EXPECT_EQ(e.dp_dp_switch, per_square_crossbar);
  EXPECT_EQ(e.ip_dp_switch, 0);  // Eq. 2 as printed omits CW_IP-DP
}

TEST(ConfigBits, FlexibilityCostsConfiguration) {
  // Section III-B: flexibility and configuration overhead trade off.
  const ComponentLibrary lib = ComponentLibrary::default_library();
  const EstimateOptions options{.n = 16};
  EXPECT_LT(estimate_config_bits(named("IMP-I"), lib, options).total(),
            estimate_config_bits(named("IMP-II"), lib, options).total());
  EXPECT_LT(estimate_config_bits(named("IMP-II"), lib, options).total(),
            estimate_config_bits(named("IMP-IV"), lib, options).total());
  EXPECT_LT(estimate_config_bits(named("IMP-IV"), lib, options).total(),
            estimate_config_bits(named("IMP-VIII"), lib, options).total());
}

TEST(ConfigBits, UspDominatesCoarseClasses) {
  // An FPGA-style fabric with a comparable compute budget pays far more
  // configuration than any coarse class — the paper's FPGA-vs-CGRA
  // trade-off.
  const ComponentLibrary lib = ComponentLibrary::default_library();
  const EstimateOptions options{.n = 16, .v = 2048};
  const std::int64_t usp =
      estimate_config_bits(named("USP"), lib, options).total();
  for (const char* name : {"IUP", "IAP-IV", "IMP-XVI", "ISP-XVI"}) {
    EXPECT_GT(usp, estimate_config_bits(named(name), lib, options).total())
        << name;
  }
}

TEST(ConfigBits, SpecAsymmetricCrossbar) {
  // Montium's 5x10 DP-DM crossbar: 10 outputs * ceil(log2(6)) = 10 * 3.
  const ComponentLibrary lib = ComponentLibrary::default_library();
  const arch::ArchitectureSpec* montium = arch::find_architecture("Montium");
  ASSERT_NE(montium, nullptr);
  const ConfigBitsEstimate e = estimate_config_bits(*montium, lib);
  EXPECT_EQ(e.dp_dm_switch, 10 * 3);
  // DP-DP 5x5: 5 * ceil(log2(6)) = 15.
  EXPECT_EQ(e.dp_dp_switch, 5 * 3);
}

TEST(ConfigBits, DirectRowsHaveZeroSwitchBits) {
  // PADDI-2 / Cortex-A9 / Core2Duo are all-direct (IMP-I): the whole CB
  // is block configuration.
  const ComponentLibrary lib = ComponentLibrary::default_library();
  for (const char* name : {"PADDI-2", "Cortex-A9 (Quad core)", "Core2Duo"}) {
    const arch::ArchitectureSpec* spec = arch::find_architecture(name);
    ASSERT_NE(spec, nullptr) << name;
    EXPECT_EQ(estimate_config_bits(*spec, lib).switch_bits(), 0) << name;
  }
}

TEST(ConfigBits, IncludeIpDpOptionAddsTerm) {
  const ComponentLibrary lib = ComponentLibrary::default_library();
  const arch::ArchitectureSpec* rapid = arch::find_architecture("RaPiD");
  ASSERT_NE(rapid, nullptr);
  const EstimateOptions faithful{.n = 8, .m = 8};
  EstimateOptions extended = faithful;
  extended.include_ip_dp_switch = true;
  // RaPiD's IP-DP is a crossbar (nxm): the extended model charges it.
  EXPECT_EQ(estimate_config_bits(*rapid, lib, faithful).ip_dp_switch, 0);
  EXPECT_GT(estimate_config_bits(*rapid, lib, extended).ip_dp_switch, 0);
}

/// Property: config bits never decrease when any switch upgrades to a
/// crossbar (flexibility has a monotone configuration price).
TEST(ConfigBits, MonotoneUnderSwitchUpgrade) {
  const ComponentLibrary lib = ComponentLibrary::default_library();
  const EstimateOptions options{.n = 16};
  for (const TaxonomyEntry& row : extended_taxonomy()) {
    for (ConnectivityRole role :
         {ConnectivityRole::IpIp, ConnectivityRole::IpIm,
          ConnectivityRole::DpDm, ConnectivityRole::DpDp}) {
      MachineClass upgraded = row.machine;
      if (upgraded.switch_at(role) == SwitchKind::Crossbar) continue;
      const std::int64_t before =
          estimate_config_bits(upgraded, lib, options).total();
      upgraded.set_switch(role, SwitchKind::Crossbar);
      const std::int64_t after =
          estimate_config_bits(upgraded, lib, options).total();
      EXPECT_GE(after, before)
          << to_string(row.machine) << " role " << to_string(role);
    }
  }
}

/// Property: per class, CB grows with N.
class ConfigBitsMonotoneInN : public ::testing::TestWithParam<int> {};

TEST_P(ConfigBitsMonotoneInN, GrowsWithN) {
  const ComponentLibrary lib = ComponentLibrary::default_library();
  const TaxonomyEntry* row = find_entry(GetParam());
  ASSERT_NE(row, nullptr);
  std::int64_t previous = -1;
  for (std::int64_t n : {2, 4, 8, 16, 32, 64}) {
    EstimateOptions options;
    options.n = n;
    options.v = n * 16;
    const std::int64_t bits =
        estimate_config_bits(row->machine, lib, options).total();
    EXPECT_GE(bits, previous) << "n " << n;
    previous = bits;
  }
}

INSTANTIATE_TEST_SUITE_P(AllSerials, ConfigBitsMonotoneInN,
                         ::testing::Range(1, 48));

}  // namespace
}  // namespace mpct::cost
