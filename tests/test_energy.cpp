#include "cost/energy.hpp"

#include <gtest/gtest.h>

#include "cost/config_bits.hpp"
#include "core/classifier.hpp"
#include "sim/isa/assembler.hpp"
#include "sim/isa/uniprocessor.hpp"

namespace mpct::cost {
namespace {

TEST(Energy, ZeroActivityIsFree) {
  const EnergyEstimate e = estimate_energy({});
  EXPECT_EQ(e.total_pj(), 0);
}

TEST(Energy, TermsPriceIndependently) {
  EnergyParams params;
  params.alu_op_pj = 2;
  params.control_op_pj = 1;
  params.memory_access_pj = 5;
  params.hop_pj = 3;
  params.config_bit_pj = 0.5;
  ActivityCounts activity;
  activity.instructions = 10;
  activity.memory_accesses = 4;
  activity.interconnect_hops = 6;
  activity.config_bits_written = 100;
  const EnergyEstimate e = estimate_energy(activity, params);
  EXPECT_DOUBLE_EQ(e.compute_pj, 20);
  EXPECT_DOUBLE_EQ(e.control_pj, 10);
  EXPECT_DOUBLE_EQ(e.memory_pj, 20);
  EXPECT_DOUBLE_EQ(e.interconnect_pj, 18);
  EXPECT_DOUBLE_EQ(e.configuration_pj, 50);
  EXPECT_DOUBLE_EQ(e.total_pj(), 118);
  EXPECT_DOUBLE_EQ(e.total_nj(), 0.118);
}

TEST(Energy, DataFlowSkipsControlOverhead) {
  ActivityCounts activity;
  activity.instructions = 100;
  const EnergyEstimate with_ip = estimate_energy(activity, {}, true);
  const EnergyEstimate without_ip = estimate_energy(activity, {}, false);
  EXPECT_GT(with_ip.total_pj(), without_ip.total_pj());
  EXPECT_EQ(without_ip.control_pj, 0);
  EXPECT_EQ(with_ip.compute_pj, without_ip.compute_pj);
}

TEST(Energy, AccumulationOperator) {
  ActivityCounts a;
  a.instructions = 5;
  a.memory_accesses = 2;
  ActivityCounts b;
  b.instructions = 7;
  b.interconnect_hops = 3;
  a += b;
  EXPECT_EQ(a.instructions, 12);
  EXPECT_EQ(a.memory_accesses, 2);
  EXPECT_EQ(a.interconnect_hops, 3);
}

TEST(Energy, ConfigurationEnergyPricesEq2) {
  const ComponentLibrary lib = ComponentLibrary::default_library();
  const MachineClass usp =
      *canonical_class(*parse_taxonomic_name("USP"));
  const MachineClass iup =
      *canonical_class(*parse_taxonomic_name("IUP"));
  const EstimateOptions options{.n = 16, .v = 1024};
  const double usp_pj = configuration_energy_pj(
      estimate_config_bits(usp, lib, options).total());
  const double iup_pj = configuration_energy_pj(
      estimate_config_bits(iup, lib, options).total());
  // The flexibility/energy trade-off: configuring the universal fabric
  // costs orders of magnitude more than the fixed machine.
  EXPECT_GT(usp_pj, 100 * iup_pj);
}

TEST(Energy, PricedFromSimulatorRun) {
  // End-to-end: run a program, price the measured activity.
  sim::Uniprocessor cpu(sim::assemble_or_throw(R"(
    ldi r1, 5
    ldi r2, 0
    st r2, r1, 0
    ld r3, r2, 0
    halt
  )"),
                        16);
  const sim::RunStats stats = cpu.run();
  ActivityCounts activity;
  activity.instructions = stats.instructions;
  activity.memory_accesses = static_cast<std::int64_t>(
      cpu.dm().loads() + cpu.dm().stores());
  const EnergyEstimate e = estimate_energy(activity);
  EXPECT_EQ(activity.instructions, 5);
  EXPECT_EQ(activity.memory_accesses, 2);
  EXPECT_GT(e.compute_pj, 0);
  EXPECT_GT(e.memory_pj, 0);
  EXPECT_EQ(e.interconnect_pj, 0);
}

TEST(Energy, ToStringListsTerms) {
  ActivityCounts activity;
  activity.instructions = 1;
  const std::string text = estimate_energy(activity).to_string();
  EXPECT_NE(text.find("compute"), std::string::npos);
  EXPECT_NE(text.find("pJ"), std::string::npos);
}

}  // namespace
}  // namespace mpct::cost
