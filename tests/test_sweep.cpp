#include "explore/sweep.hpp"

#include <gtest/gtest.h>

#include <future>
#include <vector>

#include "core/taxonomy_index.hpp"
#include "cost/cost_plan.hpp"
#include "explore/recommend.hpp"
#include "service/engine.hpp"

namespace mpct::explore {
namespace {

// ---------------------------------------------------------------------------
// CostPlan: the memoized evaluator must be bit-identical to the
// unmemoized estimate functions, for every row of the table and across
// representative design points.  EXPECT_EQ on the doubles is deliberate:
// the contract is same-ops-same-order, not "close".

TEST(CostPlan, BitIdenticalToEstimatesAcrossTable) {
  const cost::ComponentLibrary lib = cost::ComponentLibrary::default_library();
  const std::int64_t ns[] = {1, 2, 8, 16, 64, 1000};
  const std::int64_t vs[] = {1, 64, 1024, 100000};
  for (const TaxonomyIndex::ClassInfo& row : taxonomy_index().rows()) {
    const cost::CostPlan plan(row.machine, lib);
    for (std::int64_t n : ns) {
      for (std::int64_t v : vs) {
        cost::EstimateOptions options;
        options.n = n;
        options.m = n;
        options.v = v;
        const cost::CostPoint point = plan.evaluate(n, v);
        EXPECT_EQ(point.area_kge,
                  cost::estimate_area(row.machine, lib, options).total_kge())
            << "serial " << row.serial << " n=" << n << " v=" << v;
        EXPECT_EQ(point.config_bits,
                  cost::estimate_config_bits(row.machine, lib, options).total())
            << "serial " << row.serial << " n=" << n << " v=" << v;
      }
    }
  }
}

TEST(CostPlan, BitIdenticalWithIpDpSwitchAndOtherLibraries) {
  for (const cost::ComponentLibrary& lib :
       {cost::ComponentLibrary::embedded(), cost::ComponentLibrary::hpc()}) {
    for (const TaxonomyIndex::ClassInfo& row : taxonomy_index().rows()) {
      const cost::CostPlan plan(row.machine, lib, /*include_ip_dp_switch=*/true);
      cost::EstimateOptions options;
      options.n = 32;
      options.m = 32;
      options.v = 4096;
      options.include_ip_dp_switch = true;
      const cost::CostPoint point = plan.evaluate(options);
      EXPECT_EQ(point.area_kge,
                cost::estimate_area(row.machine, lib, options).total_kge());
      EXPECT_EQ(point.config_bits,
                cost::estimate_config_bits(row.machine, lib, options).total());
    }
  }
}

// ---------------------------------------------------------------------------
// SweepGrid / sweep(): grid semantics and equivalence to sequential
// recommend() calls.

SweepGrid demo_grid() {
  SweepGrid grid;
  grid.base.min_flexibility = 2;
  grid.n_values = {4, 16, 64};
  grid.lut_budgets = {256, 1024};
  grid.objectives = {Requirements::Objective::MinConfigBits,
                     Requirements::Objective::MinArea};
  return grid;
}

TEST(Sweep, EmptyAxesNormalizeToBase) {
  SweepGrid grid;
  grid.base.n = 12;
  grid.base.lut_budget = 99;
  EXPECT_EQ(grid.cell_count(), 1u);
  const SweepResult result = sweep(grid);
  ASSERT_EQ(result.points.size(), 1u);
  EXPECT_EQ(result.points[0].n, 12);
  EXPECT_EQ(result.points[0].lut_budget, 99);
  EXPECT_EQ(result.points[0].objective, grid.base.objective);
}

TEST(Sweep, EveryCellMatchesSequentialRecommendBitForBit) {
  const SweepGrid grid = demo_grid();
  const SweepResult result = sweep(grid);
  ASSERT_EQ(result.points.size(), grid.cell_count());
  for (const SweepPoint& point : result.points) {
    Requirements req = grid.base;
    req.n = point.n;
    req.lut_budget = point.lut_budget;
    req.objective = point.objective;
    const std::vector<Recommendation> recs = recommend(req);
    ASSERT_FALSE(recs.empty());
    ASSERT_TRUE(point.feasible);
    EXPECT_EQ(point.best, recs.front().name);
    EXPECT_EQ(point.flexibility, recs.front().flexibility);
    EXPECT_EQ(point.area_kge, recs.front().area_kge);
    EXPECT_EQ(point.config_bits, recs.front().config_bits);
    EXPECT_EQ(result.candidate_classes, recs.size());
  }
}

TEST(Sweep, ThreadCountDoesNotChangeResults) {
  SweepGrid grid = demo_grid();
  grid.n_values = {1, 2, 3, 5, 8, 13, 21, 34, 55};
  grid.lut_budgets = {16, 256, 4096};
  const SweepResult sequential = sweep(grid);
  for (unsigned threads : {1u, 2u, 3u, 4u, 7u, 16u}) {
    EXPECT_EQ(sweep(grid, cost::ComponentLibrary::default_library(), threads),
              sequential)
        << "threads=" << threads;
  }
}

TEST(Sweep, ImpossibleFloorYieldsInfeasibleCells) {
  SweepGrid grid = demo_grid();
  grid.base.min_flexibility = 9;
  const SweepResult result = sweep(grid);
  EXPECT_EQ(result.candidate_classes, 0u);
  EXPECT_TRUE(result.pareto_front.empty());
  for (const SweepPoint& point : result.points) {
    EXPECT_FALSE(point.feasible);
  }
}

TEST(Sweep, ParetoFrontIsExactlyTheNonDominatedSubset) {
  const SweepGrid grid = demo_grid();
  const SweepResult result = sweep(grid);
  ASSERT_FALSE(result.pareto_front.empty());
  const auto cost_of = [](const SweepPoint& p) {
    return p.objective == Requirements::Objective::MinConfigBits
               ? static_cast<double>(p.config_bits)
               : p.area_kge;
  };
  const auto dominated = [&](const SweepPoint& p) {
    for (const SweepPoint& q : result.points) {
      if (!q.feasible || q.objective != p.objective) continue;
      if (q.flexibility >= p.flexibility && cost_of(q) <= cost_of(p) &&
          (q.flexibility > p.flexibility || cost_of(q) < cost_of(p))) {
        return true;
      }
    }
    return false;
  };
  for (const SweepPoint& p : result.pareto_front) {
    EXPECT_TRUE(p.feasible);
    EXPECT_FALSE(dominated(p));
  }
  std::size_t non_dominated = 0;
  for (const SweepPoint& p : result.points) {
    if (p.feasible && !dominated(p)) ++non_dominated;
  }
  EXPECT_EQ(result.pareto_front.size(), non_dominated);
}

TEST(Sweep, FilterMatchesRecommendCandidateSet) {
  SweepGrid grid;
  grid.base.paradigm = MachineType::InstructionFlow;
  grid.base.needs_pe_exchange = true;
  const SweepResult result = sweep(grid);
  EXPECT_EQ(result.candidate_classes, recommend(grid.base).size());
}

}  // namespace
}  // namespace mpct::explore

// ---------------------------------------------------------------------------
// Service integration: the chunk-parallel SweepRequest path must be
// indistinguishable from the sequential library call, under any worker
// count and interleaving (this suite also runs under TSan in CI).

namespace mpct::service {
namespace {

explore::SweepGrid service_grid() {
  explore::SweepGrid grid;
  grid.n_values = {2, 4, 8, 16, 32, 64};
  grid.lut_budgets = {64, 512, 4096};
  grid.objectives = {explore::Requirements::Objective::MinConfigBits,
                     explore::Requirements::Objective::MinArea};
  return grid;
}

TEST(SweepService, WorkerPoolMatchesSequentialLibrarySweep) {
  EngineOptions options;
  options.worker_threads = 4;
  QueryEngine engine(options);
  const explore::SweepGrid grid = service_grid();
  QueryResponse response = engine.submit(SweepRequest{grid}).get();
  ASSERT_TRUE(response.ok()) << response.status.to_string();
  const SweepResponse* payload = response.sweep();
  ASSERT_NE(payload, nullptr);
  EXPECT_EQ(payload->result, explore::sweep(grid));
}

TEST(SweepService, InlineModeMatchesWorkerPool) {
  EngineOptions inline_options;
  inline_options.worker_threads = 0;
  QueryEngine inline_engine(inline_options);
  EngineOptions pool_options;
  pool_options.worker_threads = 4;
  QueryEngine pool_engine(pool_options);

  const explore::SweepGrid grid = service_grid();
  QueryResponse inline_response =
      inline_engine.submit(SweepRequest{grid}).get();
  QueryResponse pool_response = pool_engine.submit(SweepRequest{grid}).get();
  ASSERT_TRUE(inline_response.ok());
  ASSERT_TRUE(pool_response.ok());
  ASSERT_NE(inline_response.sweep(), nullptr);
  ASSERT_NE(pool_response.sweep(), nullptr);
  EXPECT_EQ(inline_response.sweep()->result, pool_response.sweep()->result);
}

TEST(SweepService, SecondSubmissionHitsTheCache) {
  EngineOptions options;
  options.worker_threads = 4;
  QueryEngine engine(options);
  const explore::SweepGrid grid = service_grid();
  QueryResponse first = engine.submit(SweepRequest{grid}).get();
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first.cache_hit);
  QueryResponse second = engine.submit(SweepRequest{grid}).get();
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second.cache_hit);
  // Shared payload, not a deep copy.
  EXPECT_EQ(first.payload.get(), second.payload.get());
}

TEST(SweepService, InvalidGridRejectedInBothModes) {
  explore::SweepGrid bad = service_grid();
  bad.n_values.push_back(-3);
  for (unsigned workers : {0u, 4u}) {
    EngineOptions options;
    options.worker_threads = workers;
    QueryEngine engine(options);
    QueryResponse response = engine.submit(SweepRequest{bad}).get();
    EXPECT_EQ(response.status.code, StatusCode::InvalidRequest)
        << "workers=" << workers;
  }
}

TEST(SweepService, QueueTooSmallForChunksRejectsWholeSweep) {
  EngineOptions options;
  options.worker_threads = 2;
  options.queue_capacity = 3;
  options.start_workers = false;
  QueryEngine engine(options);
  // Fill two of the three slots so the sweep's chunks cannot all fit.
  std::vector<std::future<QueryResponse>> fillers;
  fillers.push_back(engine.submit(RecommendRequest{}));
  fillers.push_back(engine.submit(RecommendRequest{}));
  QueryResponse rejected = engine.submit(SweepRequest{service_grid()}).get();
  EXPECT_EQ(rejected.status.code, StatusCode::QueueFull);
  engine.start();
  for (auto& filler : fillers) {
    EXPECT_TRUE(filler.get().ok());
  }
}

TEST(SweepService, ShutdownResolvesQueuedSweepChunks) {
  EngineOptions options;
  options.worker_threads = 2;
  options.start_workers = false;
  QueryEngine engine(options);
  std::future<QueryResponse> future =
      engine.submit(SweepRequest{service_grid()});
  engine.shutdown();
  EXPECT_EQ(future.get().status.code, StatusCode::ShuttingDown);
}

TEST(SweepService, ConcurrentSweepsAndPointQueriesAgree) {
  EngineOptions options;
  options.worker_threads = 4;
  options.enable_cache = false;  // force every submission to execute
  QueryEngine engine(options);

  std::vector<explore::SweepGrid> grids;
  for (int i = 0; i < 6; ++i) {
    explore::SweepGrid grid = service_grid();
    grid.base.min_flexibility = i;
    grids.push_back(grid);
  }

  std::vector<std::future<QueryResponse>> sweeps;
  std::vector<std::future<QueryResponse>> recommends;
  for (const explore::SweepGrid& grid : grids) {
    sweeps.push_back(engine.submit(SweepRequest{grid}));
    RecommendRequest point;
    point.requirements = grid.base;
    recommends.push_back(engine.submit(point));
  }
  engine.drain();

  for (std::size_t i = 0; i < grids.size(); ++i) {
    QueryResponse sweep_response = sweeps[i].get();
    ASSERT_TRUE(sweep_response.ok()) << sweep_response.status.to_string();
    ASSERT_NE(sweep_response.sweep(), nullptr);
    EXPECT_EQ(sweep_response.sweep()->result, explore::sweep(grids[i]));
    QueryResponse rec_response = recommends[i].get();
    ASSERT_TRUE(rec_response.ok());
  }
}

}  // namespace
}  // namespace mpct::service
