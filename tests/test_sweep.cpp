#include "explore/sweep.hpp"

#include <gtest/gtest.h>

#include <future>
#include <random>
#include <vector>

#include "core/taxonomy_index.hpp"
#include "cost/cost_plan.hpp"
#include "cost/cost_plan_set.hpp"
#include "explore/recommend.hpp"
#include "service/engine.hpp"

namespace mpct::explore {
namespace {

// ---------------------------------------------------------------------------
// CostPlan: the memoized evaluator must be bit-identical to the
// unmemoized estimate functions, for every row of the table and across
// representative design points.  EXPECT_EQ on the doubles is deliberate:
// the contract is same-ops-same-order, not "close".

TEST(CostPlan, BitIdenticalToEstimatesAcrossTable) {
  const cost::ComponentLibrary lib = cost::ComponentLibrary::default_library();
  const std::int64_t ns[] = {1, 2, 8, 16, 64, 1000};
  const std::int64_t vs[] = {1, 64, 1024, 100000};
  for (const TaxonomyIndex::ClassInfo& row : taxonomy_index().rows()) {
    const cost::CostPlan plan(row.machine, lib);
    for (std::int64_t n : ns) {
      for (std::int64_t v : vs) {
        cost::EstimateOptions options;
        options.n = n;
        options.m = n;
        options.v = v;
        const cost::CostPoint point = plan.evaluate(n, v);
        EXPECT_EQ(point.area_kge,
                  cost::estimate_area(row.machine, lib, options).total_kge())
            << "serial " << row.serial << " n=" << n << " v=" << v;
        EXPECT_EQ(point.config_bits,
                  cost::estimate_config_bits(row.machine, lib, options).total())
            << "serial " << row.serial << " n=" << n << " v=" << v;
      }
    }
  }
}

TEST(CostPlan, BitIdenticalWithIpDpSwitchAndOtherLibraries) {
  for (const cost::ComponentLibrary& lib :
       {cost::ComponentLibrary::embedded(), cost::ComponentLibrary::hpc()}) {
    for (const TaxonomyIndex::ClassInfo& row : taxonomy_index().rows()) {
      const cost::CostPlan plan(row.machine, lib, /*include_ip_dp_switch=*/true);
      cost::EstimateOptions options;
      options.n = 32;
      options.m = 32;
      options.v = 4096;
      options.include_ip_dp_switch = true;
      const cost::CostPoint point = plan.evaluate(options);
      EXPECT_EQ(point.area_kge,
                cost::estimate_area(row.machine, lib, options).total_kge());
      EXPECT_EQ(point.config_bits,
                cost::estimate_config_bits(row.machine, lib, options).total());
    }
  }
}

// ---------------------------------------------------------------------------
// SweepGrid / sweep(): grid semantics and equivalence to sequential
// recommend() calls.

SweepGrid demo_grid() {
  SweepGrid grid;
  grid.base.min_flexibility = 2;
  grid.n_values = {4, 16, 64};
  grid.lut_budgets = {256, 1024};
  grid.objectives = {Requirements::Objective::MinConfigBits,
                     Requirements::Objective::MinArea};
  return grid;
}

TEST(Sweep, EmptyAxesNormalizeToBase) {
  SweepGrid grid;
  grid.base.n = 12;
  grid.base.lut_budget = 99;
  EXPECT_EQ(grid.cell_count(), 1u);
  const SweepResult result = sweep(grid);
  ASSERT_EQ(result.points.size(), 1u);
  EXPECT_EQ(result.points[0].n, 12);
  EXPECT_EQ(result.points[0].lut_budget, 99);
  EXPECT_EQ(result.points[0].objective, grid.base.objective);
}

TEST(Sweep, EveryCellMatchesSequentialRecommendBitForBit) {
  const SweepGrid grid = demo_grid();
  const SweepResult result = sweep(grid);
  ASSERT_EQ(result.points.size(), grid.cell_count());
  for (const SweepPoint& point : result.points) {
    Requirements req = grid.base;
    req.n = point.n;
    req.lut_budget = point.lut_budget;
    req.objective = point.objective;
    const std::vector<Recommendation> recs = recommend(req);
    ASSERT_FALSE(recs.empty());
    ASSERT_TRUE(point.feasible);
    EXPECT_EQ(point.best, recs.front().name);
    EXPECT_EQ(point.flexibility, recs.front().flexibility);
    EXPECT_EQ(point.area_kge, recs.front().area_kge);
    EXPECT_EQ(point.config_bits, recs.front().config_bits);
    EXPECT_EQ(result.candidate_classes, recs.size());
  }
}

TEST(Sweep, ThreadCountDoesNotChangeResults) {
  SweepGrid grid = demo_grid();
  grid.n_values = {1, 2, 3, 5, 8, 13, 21, 34, 55};
  grid.lut_budgets = {16, 256, 4096};
  const SweepResult sequential = sweep(grid);
  for (unsigned threads : {1u, 2u, 3u, 4u, 7u, 16u}) {
    EXPECT_EQ(sweep(grid, cost::ComponentLibrary::default_library(), threads),
              sequential)
        << "threads=" << threads;
  }
}

TEST(Sweep, ImpossibleFloorYieldsInfeasibleCells) {
  SweepGrid grid = demo_grid();
  grid.base.min_flexibility = 9;
  const SweepResult result = sweep(grid);
  EXPECT_EQ(result.candidate_classes, 0u);
  EXPECT_TRUE(result.pareto_front.empty());
  for (const SweepPoint& point : result.points) {
    EXPECT_FALSE(point.feasible);
  }
}

TEST(Sweep, ParetoFrontIsExactlyTheNonDominatedSubset) {
  const SweepGrid grid = demo_grid();
  const SweepResult result = sweep(grid);
  ASSERT_FALSE(result.pareto_front.empty());
  const auto cost_of = [](const SweepPoint& p) {
    return p.objective == Requirements::Objective::MinConfigBits
               ? static_cast<double>(p.config_bits)
               : p.area_kge;
  };
  const auto dominated = [&](const SweepPoint& p) {
    for (const SweepPoint& q : result.points) {
      if (!q.feasible || q.objective != p.objective) continue;
      if (q.flexibility >= p.flexibility && cost_of(q) <= cost_of(p) &&
          (q.flexibility > p.flexibility || cost_of(q) < cost_of(p))) {
        return true;
      }
    }
    return false;
  };
  for (const SweepPoint& p : result.pareto_front) {
    EXPECT_TRUE(p.feasible);
    EXPECT_FALSE(dominated(p));
  }
  std::size_t non_dominated = 0;
  for (const SweepPoint& p : result.points) {
    if (p.feasible && !dominated(p)) ++non_dominated;
  }
  EXPECT_EQ(result.pareto_front.size(), non_dominated);
}

TEST(Sweep, FilterMatchesRecommendCandidateSet) {
  SweepGrid grid;
  grid.base.paradigm = MachineType::InstructionFlow;
  grid.base.needs_pe_exchange = true;
  const SweepResult result = sweep(grid);
  EXPECT_EQ(result.candidate_classes, recommend(grid.base).size());
}

// ---------------------------------------------------------------------------
// Batch-kernel parity: evaluate_range() (batch path) must be
// bit-identical to evaluate_cell() (scalar path), cell for cell, over
// every canonical class and randomized (n, lut_budget, objective)
// grids — including ranges that split grid rows (the scalar edge path).

TEST(CostPlanBatch, EvaluateBatchBitIdenticalToScalar) {
  const cost::ComponentLibrary lib = cost::ComponentLibrary::default_library();
  std::mt19937_64 rng(2024);
  std::uniform_int_distribution<std::int64_t> n_dist(1, 4096);
  std::uniform_int_distribution<std::int64_t> v_dist(1, 1 << 20);
  for (const TaxonomyIndex::ClassInfo& row : taxonomy_index().rows()) {
    const cost::CostPlan plan(row.machine, lib);
    std::vector<std::int64_t> ns, vs;
    for (int i = 0; i < 64; ++i) {
      ns.push_back(n_dist(rng));
      vs.push_back(v_dist(rng));
    }
    std::vector<cost::CostPoint> batch(ns.size());
    plan.evaluate_batch(ns, vs, batch.data());
    for (std::size_t i = 0; i < ns.size(); ++i) {
      EXPECT_EQ(batch[i], plan.evaluate(ns[i], vs[i]))
          << "serial " << row.serial << " lane " << i;
    }
  }
}

TEST(CostPlanBatch, PlanSetMatchesIndividualPlans) {
  const cost::ComponentLibrary lib = cost::ComponentLibrary::default_library();
  cost::CostPlanSet set;
  std::vector<cost::CostPlan> plans;
  for (const TaxonomyIndex::ClassInfo& row : taxonomy_index().rows()) {
    set.add(row.machine, lib);
    plans.emplace_back(row.machine, lib);
  }
  ASSERT_EQ(set.size(), plans.size());
  const std::vector<std::int64_t> ns = {1, 2, 16, 64, 999};
  const std::vector<std::int64_t> vs = {1, 64, 4096, 100000, 7};
  std::vector<cost::CostPoint> lanes(ns.size());
  for (std::size_t p = 0; p < set.size(); ++p) {
    set.evaluate_lanes(p, ns, vs, lanes.data());
    for (std::size_t i = 0; i < ns.size(); ++i) {
      EXPECT_EQ(lanes[i], plans[p].evaluate(ns[i], vs[i])) << "plan " << p;
      EXPECT_EQ(set.evaluate(p, ns[i], vs[i]),
                plans[p].evaluate(ns[i], vs[i]));
    }
    set.evaluate_row(p, 16, vs, lanes.data());
    for (std::size_t i = 0; i < vs.size(); ++i) {
      EXPECT_EQ(lanes[i], plans[p].evaluate(16, vs[i])) << "plan " << p;
    }
  }
}

SweepGrid random_grid(std::mt19937_64& rng) {
  std::uniform_int_distribution<std::int64_t> n_dist(1, 512);
  std::uniform_int_distribution<std::int64_t> v_dist(1, 1 << 18);
  std::uniform_int_distribution<int> axis(1, 9);
  SweepGrid grid;
  const int n_count = axis(rng), l_count = axis(rng);
  for (int i = 0; i < n_count; ++i) grid.n_values.push_back(n_dist(rng));
  for (int i = 0; i < l_count; ++i) grid.lut_budgets.push_back(v_dist(rng));
  grid.objectives = {Requirements::Objective::MinConfigBits,
                     Requirements::Objective::MinArea};
  if (axis(rng) <= 3) grid.objectives.pop_back();
  return grid;
}

TEST(SweepBatch, RangeBitIdenticalToScalarCellsOnRandomGrids) {
  std::mt19937_64 rng(7);
  for (int round = 0; round < 8; ++round) {
    const SweepGrid grid = random_grid(rng);
    const SweepEvaluator evaluator(grid);
    // The default filter admits every named canonical class, so the
    // batch kernel is exercised across the entire table.
    EXPECT_EQ(evaluator.candidate_count(), recommend(grid.base).size());
    const std::size_t cells = evaluator.cell_count();
    std::vector<SweepPoint> batch(cells);
    evaluator.evaluate_range(0, cells, batch.data());
    for (std::size_t i = 0; i < cells; ++i) {
      EXPECT_EQ(batch[i], evaluator.evaluate_cell(i))
          << "round " << round << " cell " << i;
    }
  }
}

TEST(SweepBatch, RowSplittingRangesAgreeWithFullRange) {
  std::mt19937_64 rng(11);
  const SweepGrid grid = random_grid(rng);
  const SweepEvaluator evaluator(grid);
  const std::size_t cells = evaluator.cell_count();
  std::vector<SweepPoint> whole(cells);
  evaluator.evaluate_range(0, cells, whole.data());
  // Deliberately misaligned range boundaries: every split must land on
  // the same bits through the scalar edge path.
  std::uniform_int_distribution<std::size_t> cut(0, cells);
  for (int round = 0; round < 16; ++round) {
    std::size_t a = cut(rng), b = cut(rng);
    if (a > b) std::swap(a, b);
    std::vector<SweepPoint> part(b - a);
    evaluator.evaluate_range(a, b, part.data());
    for (std::size_t i = a; i < b; ++i) {
      EXPECT_EQ(part[i - a], whole[i]) << "range [" << a << "," << b << ")";
    }
  }
}

// ---------------------------------------------------------------------------
// Pareto front: the O(N log N) sort-then-sweep must return exactly the
// front the quadratic reference computes — same points, same order —
// on randomized inputs dense with ties.

TEST(ParetoFront, MatchesReferenceOnRandomizedPoints) {
  std::mt19937_64 rng(99);
  std::uniform_int_distribution<int> flex(0, 5);
  std::uniform_int_distribution<std::int64_t> bits(0, 20);
  std::uniform_int_distribution<int> area_step(0, 20);
  std::uniform_int_distribution<int> coin(0, 9);
  for (int round = 0; round < 50; ++round) {
    std::vector<SweepPoint> points;
    const int count = 1 + static_cast<int>(rng() % 200);
    for (int i = 0; i < count; ++i) {
      SweepPoint p;
      p.feasible = coin(rng) > 0;  // ~10% infeasible
      p.objective = coin(rng) < 5 ? Requirements::Objective::MinConfigBits
                                  : Requirements::Objective::MinArea;
      p.flexibility = flex(rng);
      // Coarse values on purpose: many exact cost ties.
      p.config_bits = bits(rng);
      p.area_kge = 0.5 * area_step(rng);
      p.n = i;  // make points distinguishable for order checks
      points.push_back(p);
    }
    EXPECT_EQ(pareto_front(points), detail::pareto_front_reference(points))
        << "round " << round;
  }
}

TEST(ParetoFront, MatchesReferenceOnRealSweepOutput) {
  std::mt19937_64 rng(123);
  for (int round = 0; round < 4; ++round) {
    const SweepGrid grid = random_grid(rng);
    const SweepResult result = sweep(grid);
    EXPECT_EQ(result.pareto_front,
              detail::pareto_front_reference(result.points));
  }
}

}  // namespace
}  // namespace mpct::explore

// ---------------------------------------------------------------------------
// Service integration: the chunk-parallel SweepRequest path must be
// indistinguishable from the sequential library call, under any worker
// count and interleaving (this suite also runs under TSan in CI).

namespace mpct::service {
namespace {

explore::SweepGrid service_grid() {
  explore::SweepGrid grid;
  grid.n_values = {2, 4, 8, 16, 32, 64};
  grid.lut_budgets = {64, 512, 4096};
  grid.objectives = {explore::Requirements::Objective::MinConfigBits,
                     explore::Requirements::Objective::MinArea};
  return grid;
}

TEST(SweepService, WorkerPoolMatchesSequentialLibrarySweep) {
  EngineOptions options;
  options.worker_threads = 4;
  QueryEngine engine(options);
  const explore::SweepGrid grid = service_grid();
  QueryResponse response = engine.submit(SweepRequest{grid}).get();
  ASSERT_TRUE(response.ok()) << response.status.to_string();
  const SweepResponse* payload = response.sweep();
  ASSERT_NE(payload, nullptr);
  EXPECT_EQ(payload->result, explore::sweep(grid));
}

TEST(SweepService, InlineModeMatchesWorkerPool) {
  EngineOptions inline_options;
  inline_options.worker_threads = 0;
  QueryEngine inline_engine(inline_options);
  EngineOptions pool_options;
  pool_options.worker_threads = 4;
  QueryEngine pool_engine(pool_options);

  const explore::SweepGrid grid = service_grid();
  QueryResponse inline_response =
      inline_engine.submit(SweepRequest{grid}).get();
  QueryResponse pool_response = pool_engine.submit(SweepRequest{grid}).get();
  ASSERT_TRUE(inline_response.ok());
  ASSERT_TRUE(pool_response.ok());
  ASSERT_NE(inline_response.sweep(), nullptr);
  ASSERT_NE(pool_response.sweep(), nullptr);
  EXPECT_EQ(inline_response.sweep()->result, pool_response.sweep()->result);
}

TEST(SweepService, SecondSubmissionHitsTheCache) {
  EngineOptions options;
  options.worker_threads = 4;
  QueryEngine engine(options);
  const explore::SweepGrid grid = service_grid();
  QueryResponse first = engine.submit(SweepRequest{grid}).get();
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first.cache_hit);
  QueryResponse second = engine.submit(SweepRequest{grid}).get();
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second.cache_hit);
  // Shared payload, not a deep copy.
  EXPECT_EQ(first.payload.get(), second.payload.get());
}

TEST(SweepService, InvalidGridRejectedInBothModes) {
  explore::SweepGrid bad = service_grid();
  bad.n_values.push_back(-3);
  for (unsigned workers : {0u, 4u}) {
    EngineOptions options;
    options.worker_threads = workers;
    QueryEngine engine(options);
    QueryResponse response = engine.submit(SweepRequest{bad}).get();
    EXPECT_EQ(response.status.code, StatusCode::InvalidRequest)
        << "workers=" << workers;
  }
}

TEST(SweepService, QueueTooSmallForChunksRejectsWholeSweep) {
  EngineOptions options;
  options.worker_threads = 2;
  options.queue_capacity = 3;
  options.start_workers = false;
  QueryEngine engine(options);
  // Fill two of the three slots so the sweep's chunks cannot all fit.
  std::vector<std::future<QueryResponse>> fillers;
  fillers.push_back(engine.submit(RecommendRequest{}));
  fillers.push_back(engine.submit(RecommendRequest{}));
  QueryResponse rejected = engine.submit(SweepRequest{service_grid()}).get();
  EXPECT_EQ(rejected.status.code, StatusCode::QueueFull);
  engine.start();
  for (auto& filler : fillers) {
    EXPECT_TRUE(filler.get().ok());
  }
}

TEST(SweepService, ShutdownResolvesQueuedSweepChunks) {
  EngineOptions options;
  options.worker_threads = 2;
  options.start_workers = false;
  QueryEngine engine(options);
  std::future<QueryResponse> future =
      engine.submit(SweepRequest{service_grid()});
  engine.shutdown();
  EXPECT_EQ(future.get().status.code, StatusCode::ShuttingDown);
}

TEST(SweepService, ConcurrentSweepsAndPointQueriesAgree) {
  EngineOptions options;
  options.worker_threads = 4;
  options.enable_cache = false;  // force every submission to execute
  QueryEngine engine(options);

  std::vector<explore::SweepGrid> grids;
  for (int i = 0; i < 6; ++i) {
    explore::SweepGrid grid = service_grid();
    grid.base.min_flexibility = i;
    grids.push_back(grid);
  }

  std::vector<std::future<QueryResponse>> sweeps;
  std::vector<std::future<QueryResponse>> recommends;
  for (const explore::SweepGrid& grid : grids) {
    sweeps.push_back(engine.submit(SweepRequest{grid}));
    RecommendRequest point;
    point.requirements = grid.base;
    recommends.push_back(engine.submit(point));
  }
  engine.drain();

  for (std::size_t i = 0; i < grids.size(); ++i) {
    QueryResponse sweep_response = sweeps[i].get();
    ASSERT_TRUE(sweep_response.ok()) << sweep_response.status.to_string();
    ASSERT_NE(sweep_response.sweep(), nullptr);
    EXPECT_EQ(sweep_response.sweep()->result, explore::sweep(grids[i]));
    QueryResponse rec_response = recommends[i].get();
    ASSERT_TRUE(rec_response.ok());
  }
}

}  // namespace
}  // namespace mpct::service
