/// The simulation-as-a-service pipeline end to end: the portable
/// workload IR lowers onto every runnable paradigm and reproduces the
/// host reference word for word, runs are deterministic (the golden
/// test compares inline engine vs threaded engine vs TCP vs proxy
/// byte for byte), injected mesh faults cost measurable cycles or
/// raise typed errors, SimulateRequest travels wire v2, and a recorded
/// session replays with a 100% response-fingerprint match.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <string>
#include <variant>
#include <vector>

#include "arch/registry.hpp"
#include "cluster/cluster.hpp"
#include "core/classifier.hpp"
#include "core/naming.hpp"
#include "fault/fault_model.hpp"
#include "net/net.hpp"
#include "service/service.hpp"
#include "wire/wire.hpp"
#include "workload/runner.hpp"

namespace mpct {
namespace {

using workload::Kernel;
using workload::Paradigm;
using workload::RunOptions;
using workload::WorkloadResult;
using workload::WorkloadSpec;

TaxonomicName name_of(const std::string& text) {
  const auto parsed = parse_taxonomic_name(text);
  EXPECT_TRUE(parsed.has_value()) << text;
  return *parsed;
}

MachineClass class_of(const std::string& text) {
  const auto canonical = canonical_class(name_of(text));
  EXPECT_TRUE(canonical.has_value()) << text;
  return *canonical;
}

WorkloadSpec stencil_spec(std::int32_t size = 8, std::int32_t iters = 4) {
  WorkloadSpec spec;
  spec.kernel = Kernel::Stencil5;
  spec.size = size;
  spec.iterations = iters;
  return spec;
}

WorkloadSpec reduce_spec(std::int32_t size = 32) {
  WorkloadSpec spec;
  spec.kernel = Kernel::Reduce;
  spec.size = size;
  spec.iterations = 1;
  return spec;
}

WorkloadSpec saxpy_spec(std::int32_t size = 24) {
  WorkloadSpec spec;
  spec.kernel = Kernel::Saxpy;
  spec.size = size;
  spec.iterations = 1;
  spec.alpha = 3;
  return spec;
}

/// The one machine name per paradigm the cross-paradigm sweeps use.
const std::vector<std::pair<std::string, Paradigm>> kMachines = {
    {"IUP", Paradigm::Uniprocessor},  {"IAP-III", Paradigm::ArrayProcessor},
    {"IMP-IV", Paradigm::Multiprocessor}, {"DUP", Paradigm::Dataflow},
    {"DMP-II", Paradigm::Dataflow},   {"ISP-II", Paradigm::Cgra},
    {"USP", Paradigm::Cgra},
};

// ---------------------------------------------------------------------------
// Workload IR

TEST(WorkloadIr, InputAndReferenceAreDeterministic) {
  for (const WorkloadSpec& spec :
       {stencil_spec(), reduce_spec(), saxpy_spec()}) {
    const auto in_a = workload::make_input(spec, 42);
    const auto in_b = workload::make_input(spec, 42);
    EXPECT_EQ(in_a, in_b);
    EXPECT_EQ(static_cast<std::int64_t>(in_a.size()),
              workload::input_words(spec));
    // A different seed is a different problem instance.
    EXPECT_NE(in_a, workload::make_input(spec, 43));

    const auto ref_a = workload::reference_output(spec, 42);
    const auto ref_b = workload::reference_output(spec, 42);
    EXPECT_EQ(ref_a, ref_b);
    EXPECT_EQ(static_cast<std::int64_t>(ref_a.size()),
              workload::output_words(spec));
    EXPECT_EQ(workload::checksum(ref_a), workload::checksum(ref_b));
  }
}

TEST(WorkloadIr, ValidateRejectsMalformedSpecs) {
  EXPECT_TRUE(workload::validate(stencil_spec()).empty());
  WorkloadSpec tiny = stencil_spec(2);  // stencil needs an interior
  EXPECT_FALSE(workload::validate(tiny).empty());
  WorkloadSpec repeated = reduce_spec();
  repeated.iterations = 2;  // only the stencil iterates
  EXPECT_FALSE(workload::validate(repeated).empty());
  WorkloadSpec huge = stencil_spec(120, 1024);  // blows the work cap
  EXPECT_FALSE(workload::validate(huge).empty());
}

// ---------------------------------------------------------------------------
// Cross-paradigm correctness: one semantics, five executions

TEST(WorkloadRunner, EveryParadigmReproducesTheReferenceOutput) {
  for (const auto& [machine, paradigm] : kMachines) {
    for (const WorkloadSpec& spec :
         {stencil_spec(), reduce_spec(), saxpy_spec()}) {
      const WorkloadResult result =
          workload::run_workload(spec, name_of(machine), RunOptions{}, {}, 7);
      EXPECT_EQ(result.paradigm, paradigm) << machine;
      EXPECT_TRUE(result.halted) << machine;
      EXPECT_TRUE(result.matches_reference)
          << machine << " " << workload::to_string(spec.kernel);
      EXPECT_GT(result.cycles, 0) << machine;
      EXPECT_GT(result.energy_pj, 0.0) << machine;
      EXPECT_EQ(result.noc_reachable_fraction, 1.0) << machine;
    }
  }
}

TEST(WorkloadRunner, NonDivisibleSizesStillMatchTheReference) {
  // Width 8 against sizes that don't split evenly across lanes, cores,
  // PEs or CGRA passes: remainder handling must not corrupt output.
  for (const auto& [machine, paradigm] : kMachines) {
    (void)paradigm;
    for (const WorkloadSpec& spec :
         {stencil_spec(9, 3), reduce_spec(13), saxpy_spec(10)}) {
      const WorkloadResult result =
          workload::run_workload(spec, name_of(machine), RunOptions{}, {}, 3);
      EXPECT_TRUE(result.matches_reference)
          << machine << " " << workload::to_string(spec.kernel);
    }
  }
}

TEST(WorkloadRunner, RepeatedRunsAreByteIdentical) {
  const RunOptions options;
  for (const auto& [machine, paradigm] : kMachines) {
    (void)paradigm;
    const WorkloadResult a =
        workload::run_workload(stencil_spec(), name_of(machine), options, {}, 11);
    const WorkloadResult b =
        workload::run_workload(stencil_spec(), name_of(machine), options, {}, 11);
    EXPECT_EQ(a, b) << machine;  // every field, checksum included
  }
}

// ---------------------------------------------------------------------------
// Faults: degraded mesh => route-around => measurable cycle cost

TEST(WorkloadFaults, DeadMeshLinkCostsCyclesButPreservesTheAnswer) {
  // Width 4 => a 2x2 mesh where killing link 0-1 forces traffic from
  // core 1 to detour 1->3->2->0 (and back): same output, more cycles.
  RunOptions options;
  options.width = 4;
  const WorkloadSpec spec = stencil_spec();
  const WorkloadResult clean =
      workload::run_workload(spec, name_of("IMP-IV"), options, {}, 7);
  fault::FaultSet faults;
  faults.add_noc_link(0, 1);
  const WorkloadResult degraded =
      workload::run_workload(spec, name_of("IMP-IV"), options, faults, 7);

  EXPECT_TRUE(clean.matches_reference);
  EXPECT_TRUE(degraded.matches_reference);
  EXPECT_EQ(clean.output_checksum, degraded.output_checksum);
  EXPECT_GT(degraded.cycles, clean.cycles);
  // One dead link leaves every node pair connected (via the detour), so
  // ordered-pair reachability stays at 1.0 — the cost shows up in
  // cycles, not connectivity.
  EXPECT_EQ(clean.noc_reachable_fraction, 1.0);
  EXPECT_EQ(degraded.noc_reachable_fraction, 1.0);
  // Deterministic under faults too.
  EXPECT_EQ(degraded,
            workload::run_workload(spec, name_of("IMP-IV"), options, faults, 7));
}

TEST(WorkloadFaults, DeadSpareRouterShrinksReachabilityWithoutKillingTheRun) {
  // Width 3 on a 2x2 mesh leaves node 3 without a core.  Killing that
  // spare router is survivable — no mapped core routes through a 2x2
  // corner — but the fabric honestly reports the lost connectivity.
  RunOptions options;
  options.width = 3;
  fault::FaultSet faults;
  faults.add(fault::FaultKind::NocRouterDead, 3);
  const WorkloadResult degraded =
      workload::run_workload(stencil_spec(), name_of("IMP-IV"), options,
                             faults, 7);
  EXPECT_TRUE(degraded.matches_reference);
  EXPECT_LT(degraded.noc_reachable_fraction, 1.0);
}

TEST(WorkloadFaults, DisconnectedMeshRaisesLoweringError) {
  // Killing both links of corner node 0 strands it: no surviving route.
  RunOptions options;
  options.width = 4;
  fault::FaultSet faults;
  faults.add_noc_link(0, 1);
  faults.add_noc_link(0, 2);
  EXPECT_THROW(
      workload::run_workload(stencil_spec(), name_of("IMP-IV"), options,
                             faults, 7),
      workload::LoweringError);
}

TEST(WorkloadFaults, FatalComponentFaultsAreTyped) {
  // The uniprocessor's only core dying is fatal, not UB.
  fault::FaultSet dead_core;
  dead_core.add(fault::FaultKind::IpDead, 0);
  EXPECT_THROW(workload::run_workload(reduce_spec(), name_of("IUP"),
                                      RunOptions{}, dead_core, 1),
               workload::LoweringError);
  // A class without the DP-DM crossbar cannot hold the shared grid.
  EXPECT_THROW(
      workload::run_workload(stencil_spec(), name_of("IAP-I"), RunOptions{}),
      workload::LoweringError);
}

// ---------------------------------------------------------------------------
// SimulateRequest through the engine

service::SimulateRequest simulate_request(
    const WorkloadSpec& spec = stencil_spec(),
    const std::string& machine = "IMP-IV") {
  service::SimulateRequest req;
  req.workload = spec;
  req.target = class_of(machine);
  req.options.width = 4;
  req.seed = 7;
  return req;
}

TEST(SimulateService, EngineResultMatchesDirectRunnerCall) {
  service::EngineOptions options;
  options.worker_threads = 0;
  service::QueryEngine engine(options);

  const service::SimulateRequest req = simulate_request();
  const service::QueryResponse response = engine.execute(req);
  ASSERT_TRUE(response.ok()) << response.status.to_string();
  const service::SimulateResponse* payload = response.simulate();
  ASSERT_NE(payload, nullptr);

  const WorkloadResult direct = workload::run_workload(
      req.workload, class_of("IMP-IV"), req.options, req.faults, req.seed);
  EXPECT_EQ(payload->result, direct);
  EXPECT_EQ(engine.metrics().sim_runs.value(), 1u);
  EXPECT_EQ(engine.metrics().sim_fault_runs.value(), 0u);
  EXPECT_EQ(engine.metrics().sim_cycles.value(),
            static_cast<std::uint64_t>(direct.cycles));
}

TEST(SimulateService, InvalidRequestsComeBackTyped) {
  service::EngineOptions options;
  options.worker_threads = 0;
  service::QueryEngine engine(options);

  service::SimulateRequest bad_spec = simulate_request();
  bad_spec.workload.size = 2;  // stencil needs an interior
  EXPECT_EQ(engine.execute(bad_spec).status.code,
            service::StatusCode::InvalidRequest);

  service::SimulateRequest bad_width = simulate_request();
  bad_width.options.width = 0;
  EXPECT_EQ(engine.execute(bad_width).status.code,
            service::StatusCode::InvalidRequest);

  service::SimulateRequest bad_budget = simulate_request();
  bad_budget.options.max_cycles = 0;
  EXPECT_EQ(engine.execute(bad_budget).status.code,
            service::StatusCode::InvalidRequest);

  // A lowering failure (mesh split in two) is the caller's fault too.
  service::SimulateRequest split = simulate_request();
  split.faults.add_noc_link(0, 1);
  split.faults.add_noc_link(0, 2);
  const service::QueryResponse response = engine.execute(split);
  EXPECT_EQ(response.status.code, service::StatusCode::InvalidRequest);
  EXPECT_NE(response.status.message.find("disconnect"), std::string::npos)
      << response.status.message;
}

TEST(SimulateService, ResultsAreFingerprintCached) {
  service::EngineOptions options;
  options.worker_threads = 0;
  service::QueryEngine engine(options);

  const service::SimulateRequest req = simulate_request();
  const service::QueryResponse first = engine.execute(req);
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first.cache_hit);
  const service::QueryResponse second = engine.execute(req);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second.cache_hit);
  EXPECT_TRUE(*second.payload == *first.payload);
  // The cached run is not re-counted as a simulation.
  EXPECT_EQ(engine.metrics().sim_runs.value(), 1u);

  // Faults, seed and options are all part of the key.
  service::SimulateRequest faulted = req;
  faulted.faults.add_noc_link(0, 1);
  const service::QueryResponse third = engine.execute(faulted);
  ASSERT_TRUE(third.ok());
  EXPECT_FALSE(third.cache_hit);
  EXPECT_FALSE(*third.payload == *first.payload);
  EXPECT_EQ(engine.metrics().sim_runs.value(), 2u);
  EXPECT_EQ(engine.metrics().sim_fault_runs.value(), 1u);

  service::SimulateRequest reseeded = req;
  reseeded.seed = 8;
  EXPECT_FALSE(engine.execute(reseeded).cache_hit);
}

// ---------------------------------------------------------------------------
// Wire protocol v2

TEST(SimulateWire, RequestRoundTripsAtVersion2) {
  service::SimulateRequest req = simulate_request();
  req.faults.add_noc_link(0, 1);
  req.faults.add(fault::FaultKind::DpDead, 3);
  const auto frame =
      wire::encode_request_frame(99, service::Request{req}, /*deadline=*/250);
  const auto decoded = wire::decode_request_frame(frame.data(), frame.size());
  ASSERT_TRUE(decoded.ok()) << decoded.error.message;
  EXPECT_EQ(decoded.value->request_id, 99u);
  ASSERT_TRUE(
      std::holds_alternative<service::SimulateRequest>(decoded.value->request));
  const auto& round =
      std::get<service::SimulateRequest>(decoded.value->request);
  EXPECT_EQ(round.workload, req.workload);
  EXPECT_TRUE(std::get<MachineClass>(round.target) ==
              std::get<MachineClass>(req.target));
  EXPECT_EQ(round.options, req.options);
  EXPECT_TRUE(round.faults == req.faults);
  EXPECT_EQ(round.seed, req.seed);
}

TEST(SimulateWire, ResponseRoundTripsAtVersion2) {
  service::EngineOptions options;
  options.worker_threads = 0;
  service::QueryEngine engine(options);
  const service::QueryResponse response = engine.execute(simulate_request());
  ASSERT_TRUE(response.ok());

  const auto frame = wire::encode_response_frame(99, response);
  const auto decoded = wire::decode_response_frame(frame.data(), frame.size());
  ASSERT_TRUE(decoded.ok()) << decoded.error.message;
  ASSERT_NE(decoded.value->response.payload, nullptr);
  EXPECT_TRUE(*decoded.value->response.payload == *response.payload);
}

TEST(SimulateWire, Version1FramesCannotCarrySimulate) {
  // Simulate is v2+: a v1 frame with its tag is malformed, not UB.
  const auto frame = wire::encode_request_frame(
      7, service::Request{simulate_request()}, 0, /*version=*/1);
  const auto decoded = wire::decode_request_frame(frame.data(), frame.size());
  EXPECT_FALSE(decoded.ok());
}

// ---------------------------------------------------------------------------
// Golden determinism: inline == threaded == TCP == proxy, byte for byte

TEST(SimulateGolden, SameRequestIsByteIdenticalAcrossEveryServingPath) {
  const service::SimulateRequest req = simulate_request();

  service::EngineOptions inline_options;
  inline_options.worker_threads = 0;
  service::QueryEngine inline_engine(inline_options);
  const service::QueryResponse inline_response = inline_engine.execute(req);
  ASSERT_TRUE(inline_response.ok());

  // Threaded engine behind a TCP server.
  service::EngineOptions threaded_options;
  threaded_options.worker_threads = 2;
  service::QueryEngine threaded(threaded_options);
  net::Server server(threaded);
  ASSERT_TRUE(server.start()) << server.error();
  net::ClientOptions copts;
  copts.port = server.port();
  net::Client client(copts);
  const service::QueryResponse wire_response = client.call(req);
  ASSERT_TRUE(wire_response.ok()) << wire_response.status.to_string();
  ASSERT_NE(wire_response.payload, nullptr);
  EXPECT_TRUE(*wire_response.payload == *inline_response.payload);

  // Same request through the combining proxy in front of that server.
  cluster::ProxyOptions poptions;
  poptions.cluster.endpoints = {{"127.0.0.1", server.port()}};
  poptions.worker_threads = 2;
  poptions.enable_pinger = false;
  cluster::CombiningProxy proxy(poptions);
  ASSERT_TRUE(proxy.start()) << proxy.error();
  net::ClientOptions fronted;
  fronted.port = proxy.port();
  net::Client proxy_client(fronted);
  const service::QueryResponse proxied = proxy_client.call(req);
  ASSERT_TRUE(proxied.ok()) << proxied.status.to_string();
  ASSERT_NE(proxied.payload, nullptr);
  EXPECT_TRUE(*proxied.payload == *inline_response.payload);

  proxy.stop();
  server.stop();
}

// ---------------------------------------------------------------------------
// Capture + replay

/// Temp file path unique to this test binary run.
std::string temp_path(const std::string& stem) {
  return ::testing::TempDir() + stem;
}

TEST(CaptureFile, RoundTripsAndRejectsTruncation) {
  const std::string path = temp_path("capture_roundtrip.bin");
  const std::vector<std::uint8_t> frame_a = {1, 2, 3, 4};
  const std::vector<std::uint8_t> frame_b = {9, 8, 7};
  {
    net::CaptureWriter writer;
    std::string error;
    ASSERT_TRUE(writer.open(path, error)) << error;
    writer.record(frame_a.data(), frame_a.size());
    writer.record(frame_b.data(), frame_b.size());
    EXPECT_EQ(writer.frames_written(), 2u);
  }
  net::CaptureFile capture;
  std::string error;
  ASSERT_TRUE(net::read_capture(path, capture, error)) << error;
  ASSERT_EQ(capture.records.size(), 2u);
  EXPECT_EQ(capture.records[0].frame, frame_a);
  EXPECT_EQ(capture.records[1].frame, frame_b);
  EXPECT_EQ(capture.records[0].delta_us, 0u);  // first frame has no gap

  // Chop the last byte: the reader reports truncation, all or nothing.
  std::FILE* file = std::fopen(path.c_str(), "rb");
  ASSERT_NE(file, nullptr);
  std::fseek(file, 0, SEEK_END);
  const long size = std::ftell(file);
  std::fclose(file);
  ASSERT_EQ(::truncate(path.c_str(), size - 1), 0);
  net::CaptureFile cut;
  EXPECT_FALSE(net::read_capture(path, cut, error));
  EXPECT_NE(error.find("truncated"), std::string::npos) << error;
  std::remove(path.c_str());
}

TEST(CaptureReplay, RecordedSessionReplaysWithFullFingerprintMatch) {
  const std::string path = temp_path("workload_session.capture");

  // Record: a server with the recorder hook on, a client sending a mix
  // of simulate (clean and faulted) and classify traffic.
  {
    service::EngineOptions eoptions;
    eoptions.worker_threads = 2;
    service::QueryEngine engine(eoptions);
    net::ServerOptions soptions;
    soptions.capture_path = path;
    net::Server server(engine, soptions);
    ASSERT_TRUE(server.start()) << server.error();

    net::ClientOptions copts;
    copts.port = server.port();
    net::Client client(copts);
    std::vector<service::Request> traffic;
    traffic.emplace_back(simulate_request());
    service::SimulateRequest faulted = simulate_request();
    faulted.faults.add_noc_link(0, 1);
    traffic.emplace_back(faulted);
    traffic.emplace_back(simulate_request(reduce_spec(), "DMP-II"));
    traffic.emplace_back(service::ClassifyRequest::of(
        arch::surveyed_architectures()[2]));
    for (const service::Request& request : traffic) {
      ASSERT_TRUE(client.call(request).ok());
    }
    server.stop();
  }

  net::CaptureFile capture;
  std::string error;
  ASSERT_TRUE(net::read_capture(path, capture, error)) << error;
  ASSERT_EQ(capture.records.size(), 4u);

  // Replay twice against a fresh engine: both runs answer everything,
  // and their normalized response fingerprints agree 100%.
  service::EngineOptions eoptions;
  eoptions.worker_threads = 2;
  service::QueryEngine engine(eoptions);
  net::Server server(engine);
  ASSERT_TRUE(server.start()) << server.error();

  net::ReplayOptions roptions;
  roptions.port = server.port();
  roptions.max_speed = true;
  const net::ReplayOutcome first = net::replay_capture(capture, roptions);
  ASSERT_TRUE(first.ok()) << first.error;
  EXPECT_EQ(first.sent, 4u);
  EXPECT_EQ(first.answered, 4u);
  ASSERT_EQ(first.fingerprints.size(), 4u);

  const net::ReplayOutcome second = net::replay_capture(capture, roptions);
  ASSERT_TRUE(second.ok()) << second.error;
  EXPECT_EQ(first, second);  // 100% fingerprint match, id by id

  server.stop();
  std::remove(path.c_str());
}

}  // namespace
}  // namespace mpct
