/// Deterministic versioned binary serialisation (src/wire): frame
/// scanning, round trips for every Request / Response variant —
/// bit-identical, enforced against the engine's canonical fingerprint
/// machinery — and the hardened decoder's typed error taxonomy
/// (truncation, bad magic, version skew, trailing bytes, enum ranges).
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "arch/registry.hpp"
#include "service/service.hpp"
#include "wire/wire.hpp"

namespace {

using namespace mpct;
using namespace mpct::wire;

using service::Request;
using service::QueryResponse;

// ---------------------------------------------------------------------------
// Representative requests, one per RequestType.

Request classify_spec_request() {
  return service::ClassifyRequest::of(arch::surveyed_architectures()[2]);
}

Request classify_adl_request() {
  return service::ClassifyRequest::of_adl(
      arch::to_adl(*arch::find_architecture("MorphoSys")));
}

Request recommend_request() {
  service::RecommendRequest req;
  req.requirements.min_flexibility = 3;
  req.requirements.paradigm = MachineType::DataFlow;
  req.requirements.needs_pe_exchange = true;
  req.requirements.n = 32;
  req.requirements.lut_budget = 2048;
  req.requirements.objective = explore::Requirements::Objective::MinArea;
  req.top_k = 5;
  return req;
}

Request cost_class_request() {
  service::CostRequest req;
  MachineClass mc;
  mc.granularity = Granularity::IpDp;
  mc.ips = Multiplicity::Many;
  mc.dps = Multiplicity::Many;
  mc.set_switch(ConnectivityRole::IpDp, SwitchKind::Crossbar);
  mc.set_switch(ConnectivityRole::DpDm, SwitchKind::Crossbar);
  req.target = mc;
  req.options.n = 8;
  req.options.include_ip_dp_switch = true;
  req.n_sweep = {4, 8, 16};
  return req;
}

Request cost_spec_request() {
  service::CostRequest req;
  req.target = arch::surveyed_architectures()[4];
  req.options.v = 128;
  return req;
}

Request sweep_request() {
  service::SweepRequest req;
  req.grid.base.min_flexibility = 2;
  req.grid.n_values = {4, 16};
  req.grid.lut_budgets = {256, 1024};
  req.grid.objectives = {explore::Requirements::Objective::MinConfigBits,
                         explore::Requirements::Objective::MinArea};
  return req;
}

Request fault_sweep_request() {
  service::FaultSweepRequest req;
  MachineClass mc;
  mc.granularity = Granularity::IpDp;
  mc.ips = Multiplicity::Many;
  mc.dps = Multiplicity::Many;
  mc.set_switch(ConnectivityRole::IpDp, SwitchKind::Crossbar);
  mc.set_switch(ConnectivityRole::DpDm, SwitchKind::Crossbar);
  req.spec.machine = mc;
  req.spec.bindings.n = 4;
  req.spec.fault_rates = {0.0, 0.1};
  req.spec.trials_per_rate = 4;
  req.spec.seed = 42;
  return req;
}

Request sweep_chunk_request() {
  service::SweepChunkRequest req;
  req.grid = std::get<service::SweepRequest>(sweep_request()).grid;
  req.begin = 1;
  req.end = 5;
  return req;
}

Request fault_chunk_request() {
  service::FaultChunkRequest req;
  req.spec = std::get<service::FaultSweepRequest>(fault_sweep_request()).spec;
  req.begin = 2;
  req.end = 6;
  return req;
}

std::vector<Request> all_requests() {
  std::vector<Request> requests;
  requests.push_back(classify_spec_request());
  requests.push_back(classify_adl_request());
  requests.push_back(recommend_request());
  requests.push_back(cost_class_request());
  requests.push_back(cost_spec_request());
  requests.push_back(sweep_request());
  requests.push_back(fault_sweep_request());
  requests.push_back(sweep_chunk_request());
  requests.push_back(fault_chunk_request());
  return requests;
}

// ---------------------------------------------------------------------------
// Frame scanning

TEST(FrameScan, IncompleteHeaderNeedsMore) {
  const auto frame = encode_request_frame(1, classify_spec_request());
  for (std::size_t len = 0; len < kHeaderSize; ++len) {
    const FrameScan scan = scan_frame(frame.data(), len);
    EXPECT_EQ(scan.state, FrameScan::State::NeedMore) << "len=" << len;
  }
}

TEST(FrameScan, IncompletePayloadNeedsMore) {
  const auto frame = encode_request_frame(1, classify_spec_request());
  const FrameScan scan = scan_frame(frame.data(), frame.size() - 1);
  EXPECT_EQ(scan.state, FrameScan::State::NeedMore);
}

TEST(FrameScan, CompleteFrameIsReady) {
  const auto frame = encode_request_frame(77, classify_spec_request(), 1234);
  const FrameScan scan = scan_frame(frame.data(), frame.size());
  ASSERT_EQ(scan.state, FrameScan::State::Ready);
  EXPECT_EQ(scan.header.kind, FrameKind::Request);
  EXPECT_EQ(scan.header.request_id, 77u);
  EXPECT_EQ(scan.frame_size, frame.size());
}

TEST(FrameScan, BadMagicIsRejectedEvenFromAPrefix) {
  // A garbage stream must be rejected as soon as the magic mismatches —
  // even before a whole header arrives — so a reader can never be
  // stalled on NeedMore by junk.
  const std::uint8_t junk[] = {'J', 'U', 'N', 'K'};
  for (std::size_t len = 1; len <= 4; ++len) {
    const FrameScan scan = scan_frame(junk, len);
    EXPECT_EQ(scan.state, FrameScan::State::Bad) << "len=" << len;
    EXPECT_EQ(scan.error.code, WireErrorCode::BadMagic);
  }
}

TEST(FrameScan, VersionSkewIsTyped) {
  auto frame = encode_request_frame(1, classify_spec_request());
  frame[4] = 0xFF;  // version low byte
  const FrameScan scan = scan_frame(frame.data(), frame.size());
  ASSERT_EQ(scan.state, FrameScan::State::Bad);
  EXPECT_EQ(scan.error.code, WireErrorCode::UnsupportedVersion);
}

TEST(FrameScan, BadKindAndReservedAreTyped) {
  auto frame = encode_request_frame(1, classify_spec_request());
  frame[6] = 9;  // frame kind
  EXPECT_EQ(scan_frame(frame.data(), frame.size()).error.code,
            WireErrorCode::BadFrameKind);
  frame[6] = 1;
  frame[7] = 1;  // reserved must be zero
  EXPECT_EQ(scan_frame(frame.data(), frame.size()).error.code,
            WireErrorCode::Malformed);
}

TEST(FrameScan, OversizedPayloadIsRejectedBeforeBuffering) {
  auto frame = encode_request_frame(1, classify_spec_request());
  const std::uint32_t huge = (16u << 20) + 1;
  std::memcpy(frame.data() + 16, &huge, sizeof(huge));
  const FrameScan scan = scan_frame(frame.data(), frame.size());
  ASSERT_EQ(scan.state, FrameScan::State::Bad);
  EXPECT_EQ(scan.error.code, WireErrorCode::Oversized);
}

// ---------------------------------------------------------------------------
// Request round trips

TEST(RequestRoundTrip, EveryRequestTypeIsBitIdentical) {
  std::uint64_t id = 100;
  for (const Request& request : all_requests()) {
    const auto frame = encode_request_frame(id, request, 5000);
    const auto decoded = decode_request_frame(frame.data(), frame.size());
    ASSERT_TRUE(decoded.ok()) << decoded.error.to_string();
    EXPECT_EQ(decoded.value->request_id, id);
    EXPECT_EQ(decoded.value->deadline_ms, 5000u);
    // The canonical fingerprint walks every response-relevant field
    // (including IEEE double bit patterns), so equality here means the
    // decoded request is response-equivalent to the original.
    EXPECT_EQ(service::fingerprint(decoded.value->request),
              service::fingerprint(request));
    EXPECT_EQ(decoded.value->request.index(), request.index());
    ++id;
  }
}

TEST(RequestRoundTrip, ReEncodingIsDeterministic) {
  for (const Request& request : all_requests()) {
    const auto first = encode_request_frame(9, request, 0);
    const auto decoded = decode_request_frame(first.data(), first.size());
    ASSERT_TRUE(decoded.ok());
    const auto second =
        encode_request_frame(9, decoded.value->request, 0);
    EXPECT_EQ(first, second);  // byte-for-byte stable across a round trip
  }
}

// ---------------------------------------------------------------------------
// Response round trips

void expect_equal_responses(const QueryResponse& a, const QueryResponse& b) {
  EXPECT_EQ(a.status, b.status);
  EXPECT_EQ(a.cache_hit, b.cache_hit);
  EXPECT_EQ(a.latency.count(), b.latency.count());
  ASSERT_EQ(a.payload == nullptr, b.payload == nullptr);
  if (a.payload) {
    EXPECT_TRUE(*a.payload == *b.payload);
  }
}

TEST(ResponseRoundTrip, EveryPayloadAlternativeIsBitIdentical) {
  service::EngineOptions options;
  options.worker_threads = 0;
  service::QueryEngine engine(options);
  std::uint64_t id = 1;
  for (const Request& request : all_requests()) {
    const QueryResponse response = engine.execute(request);
    ASSERT_TRUE(response.ok());
    const auto frame = encode_response_frame(id, response);
    const auto decoded = decode_response_frame(frame.data(), frame.size());
    ASSERT_TRUE(decoded.ok()) << decoded.error.to_string();
    EXPECT_EQ(decoded.value->request_id, id);
    expect_equal_responses(decoded.value->response, response);
    ++id;
  }
}

TEST(ResponseRoundTrip, CacheHitFlagAndLatencySurvive) {
  service::EngineOptions options;
  options.worker_threads = 0;
  service::QueryEngine engine(options);
  engine.execute(classify_spec_request());
  const QueryResponse hit = engine.execute(classify_spec_request());
  ASSERT_TRUE(hit.cache_hit);
  const auto frame = encode_response_frame(3, hit);
  const auto decoded = decode_response_frame(frame.data(), frame.size());
  ASSERT_TRUE(decoded.ok());
  expect_equal_responses(decoded.value->response, hit);
}

TEST(ResponseRoundTrip, EveryStatusCodeSurvivesIncludingNetOnes) {
  using service::Status;
  const Status statuses[] = {
      Status::okay(),
      Status::queue_full(),
      Status::deadline_exceeded(),
      Status::parse_error("line 3: expected '}'"),
      Status::invalid_request("empty sweep"),
      Status::shutting_down(),
      Status::internal_error("boom"),
      Status::unavailable("connect refused"),
      Status::protocol_error("truncated: payload"),
  };
  for (const Status& status : statuses) {
    QueryResponse response;
    response.status = status;
    response.latency = std::chrono::nanoseconds(987654321);
    const auto frame = encode_response_frame(8, response);
    const auto decoded = decode_response_frame(frame.data(), frame.size());
    ASSERT_TRUE(decoded.ok()) << decoded.error.to_string();
    expect_equal_responses(decoded.value->response, response);
  }
}

// ---------------------------------------------------------------------------
// Hardened decoding: typed errors, never UB

TEST(DecodeErrors, TruncatedPayloadIsTyped) {
  const auto frame = encode_request_frame(1, recommend_request());
  // Chop the payload but lie about nothing: decode sees a frame whose
  // size is smaller than the header announces.
  const auto decoded =
      decode_request_frame(frame.data(), frame.size() - 3);
  EXPECT_FALSE(decoded.ok());
}

TEST(DecodeErrors, TrailingBytesAreTyped) {
  auto frame = encode_request_frame(1, recommend_request());
  // Grow the payload and fix up the announced length so framing is
  // consistent but the codec has bytes left over.
  frame.push_back(0);
  const std::uint32_t announced =
      static_cast<std::uint32_t>(frame.size() - kHeaderSize);
  std::memcpy(frame.data() + 16, &announced, sizeof(announced));
  const auto decoded = decode_request_frame(frame.data(), frame.size());
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.error.code, WireErrorCode::TrailingData);
}

TEST(DecodeErrors, OutOfRangeEnumIsMalformed) {
  auto frame = encode_request_frame(1, classify_spec_request());
  // Payload byte layout: u32 deadline_ms, then the u8 RequestType tag.
  frame[kHeaderSize + 4] = 250;
  const auto decoded = decode_request_frame(frame.data(), frame.size());
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.error.code, WireErrorCode::Malformed);
}

TEST(DecodeErrors, WrongFrameKindIsTyped) {
  QueryResponse response;
  response.status = service::Status::okay();
  const auto frame = encode_response_frame(1, response);
  const auto decoded = decode_request_frame(frame.data(), frame.size());
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.error.code, WireErrorCode::BadFrameKind);

  const auto req_frame = encode_request_frame(1, recommend_request());
  const auto as_response =
      decode_response_frame(req_frame.data(), req_frame.size());
  ASSERT_FALSE(as_response.ok());
  EXPECT_EQ(as_response.error.code, WireErrorCode::BadFrameKind);
}

TEST(DecodeErrors, ImplausibleLengthPrefixIsMalformedNotOom) {
  // A recommend-response frame whose element count claims more entries
  // than the payload could possibly hold must be rejected by the length
  // plausibility bound — before any allocation is attempted.
  service::EngineOptions options;
  options.worker_threads = 0;
  service::QueryEngine engine(options);
  const QueryResponse response = engine.execute(recommend_request());
  ASSERT_TRUE(response.ok());
  auto frame = encode_response_frame(1, response);
  // Find the recommendation-count u32: it follows status (i32 + str),
  // cache_hit (u8), latency (i64) and the payload index (u8).  Status
  // message is empty here, so the offset is fixed.
  const std::size_t count_offset = kHeaderSize + 4 + 4 + 1 + 8 + 1;
  const std::uint32_t absurd = 0x7FFFFFFF;
  std::memcpy(frame.data() + count_offset, &absurd, sizeof(absurd));
  const auto decoded = decode_response_frame(frame.data(), frame.size());
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.error.code, WireErrorCode::Malformed);
}

TEST(DecodeErrors, ErrorsRenderReadably) {
  WireError error{WireErrorCode::Truncated, "payload ends early"};
  EXPECT_EQ(error.to_string(), "truncated: payload ends early");
  EXPECT_EQ(to_string(WireErrorCode::UnsupportedVersion),
            "unsupported-version");
}

// ---------------------------------------------------------------------------
// Protocol v2: per-version headers, trace ids, control frames, and the
// v1 compatibility rules.

TEST(ProtocolV2, V1FramesUseTheShortHeaderAndStillDecode) {
  const Request request = classify_spec_request();
  const auto frame =
      encode_request_frame(5, request, 100, /*version=*/1);
  const FrameScan scan = scan_frame(frame.data(), frame.size());
  ASSERT_EQ(scan.state, FrameScan::State::Ready);
  EXPECT_EQ(scan.header.version, 1u);
  EXPECT_EQ(scan.header.trace_id, 0u);  // v1 has no trace field
  EXPECT_EQ(scan.frame_size, frame.size());
  // The v1 header is 8 bytes shorter than v2's, and a v2 request
  // payload additionally carries the trailing QoS priority byte.
  const auto v2 = encode_request_frame(5, request, 100, /*version=*/2);
  EXPECT_EQ(frame.size() + (kHeaderSizeV2 - kHeaderSizeV1) + 1, v2.size());

  const auto decoded = decode_request_frame(frame.data(), frame.size());
  ASSERT_TRUE(decoded.ok()) << decoded.error.to_string();
  EXPECT_EQ(decoded.value->version, 1u);
  EXPECT_EQ(service::fingerprint(decoded.value->request),
            service::fingerprint(request));
}

TEST(ProtocolV2, TraceIdRidesTheV2HeaderBothWays) {
  const std::uint64_t trace_id = 0xFEEDFACE12345678ull;
  const auto frame = encode_request_frame(9, recommend_request(), 0,
                                          kProtocolVersion, trace_id);
  const FrameScan scan = scan_frame(frame.data(), frame.size());
  ASSERT_EQ(scan.state, FrameScan::State::Ready);
  EXPECT_EQ(scan.header.trace_id, trace_id);
  const auto decoded = decode_request_frame(frame.data(), frame.size());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value->trace_id, trace_id);

  QueryResponse response;
  response.status = service::Status::okay();
  const auto reply =
      encode_response_frame(9, response, kProtocolVersion, trace_id);
  const auto reply_decoded = decode_response_frame(reply.data(), reply.size());
  ASSERT_TRUE(reply_decoded.ok());
  EXPECT_EQ(reply_decoded.value->trace_id, trace_id);
}

TEST(ProtocolV2, ChunkRequestsAreRejectedOnV1Frames) {
  // The chunk request types are v2-only: a v1 frame carrying one is
  // malformed by definition (an old peer could never have sent it).
  for (const Request& request :
       {sweep_chunk_request(), fault_chunk_request()}) {
    const auto v1_frame = encode_request_frame(3, request, 0, /*version=*/1);
    const auto decoded =
        decode_request_frame(v1_frame.data(), v1_frame.size());
    ASSERT_FALSE(decoded.ok());
    EXPECT_EQ(decoded.error.code, WireErrorCode::Malformed);

    const auto v2_frame = encode_request_frame(3, request, 0, /*version=*/2);
    EXPECT_TRUE(
        decode_request_frame(v2_frame.data(), v2_frame.size()).ok());
  }
}

TEST(ProtocolV2, PingPongFramesScanAsHeaderOnlyFrames) {
  for (const auto& frame : {encode_ping_frame(21), encode_pong_frame(21)}) {
    const FrameScan scan = scan_frame(frame.data(), frame.size());
    ASSERT_EQ(scan.state, FrameScan::State::Ready);
    EXPECT_EQ(scan.header.request_id, 21u);
    EXPECT_EQ(scan.header.payload_size, 0u);
  }
  EXPECT_EQ(scan_frame(encode_ping_frame(1).data(),
                       encode_ping_frame(1).size())
                .header.kind,
            FrameKind::Ping);
  EXPECT_EQ(scan_frame(encode_pong_frame(1).data(),
                       encode_pong_frame(1).size())
                .header.kind,
            FrameKind::Pong);
}

TEST(ProtocolV2, HelloHandshakeRoundTripsAtV1Framing) {
  // Hello/HelloAck always travel with the v1 header: the handshake that
  // *selects* a version must be readable at every version.
  const auto hello = encode_hello_frame(31, 1, kProtocolVersion);
  const FrameScan scan = scan_frame(hello.data(), hello.size());
  ASSERT_EQ(scan.state, FrameScan::State::Ready);
  EXPECT_EQ(scan.header.version, 1u);
  EXPECT_EQ(scan.header.kind, FrameKind::Hello);
  const auto decoded = decode_hello_frame(hello.data(), hello.size());
  ASSERT_TRUE(decoded.ok()) << decoded.error.to_string();
  EXPECT_EQ(decoded.value->request_id, 31u);
  EXPECT_EQ(decoded.value->min_version, 1u);
  EXPECT_EQ(decoded.value->max_version, kProtocolVersion);

  const auto ack =
      encode_hello_ack_frame(31, service::Status::okay(), kProtocolVersion);
  const auto ack_decoded = decode_hello_ack_frame(ack.data(), ack.size());
  ASSERT_TRUE(ack_decoded.ok()) << ack_decoded.error.to_string();
  EXPECT_EQ(ack_decoded.value->request_id, 31u);
  EXPECT_TRUE(ack_decoded.value->status.ok());
  EXPECT_EQ(ack_decoded.value->agreed_version, kProtocolVersion);
}

TEST(ProtocolV2, NegotiateVersionPicksTheHighestCommonVersion) {
  EXPECT_EQ(negotiate_version(1, kProtocolVersion), kProtocolVersion);
  EXPECT_EQ(negotiate_version(1, 1), 1);  // old v1-only client
  EXPECT_EQ(negotiate_version(2, 2), 2);
  // A client entirely above what we speak cannot be served.
  EXPECT_EQ(negotiate_version(kProtocolVersion + 1, kProtocolVersion + 5),
            std::nullopt);
}

}  // namespace
