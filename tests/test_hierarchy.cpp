#include "core/hierarchy.hpp"

#include <gtest/gtest.h>

namespace mpct {
namespace {

TEST(Hierarchy, RootAndBranches) {
  const HierarchyNode root = machine_hierarchy();
  EXPECT_EQ(root.label, "Computing Machines");
  ASSERT_EQ(root.children.size(), 3u);
  EXPECT_EQ(root.children[0].label, "Data Flow");
  EXPECT_EQ(root.children[1].label, "Instruction Flow");
  EXPECT_EQ(root.children[2].label, "Universal Flow");
}

TEST(Hierarchy, DataFlowHasTwoProcessingTypes) {
  const HierarchyNode root = machine_hierarchy();
  const HierarchyNode& df = root.children[0];
  ASSERT_EQ(df.children.size(), 2u);
  EXPECT_EQ(df.children[0].label, "Uni Processor");
  EXPECT_EQ(df.children[0].classes.size(), 1u);
  EXPECT_EQ(df.children[1].label, "Multi Processor");
  EXPECT_EQ(df.children[1].classes.size(), 4u);
}

TEST(Hierarchy, InstructionFlowHasFourProcessingTypes) {
  const HierarchyNode root = machine_hierarchy();
  const HierarchyNode& ifl = root.children[1];
  ASSERT_EQ(ifl.children.size(), 4u);
  EXPECT_EQ(ifl.children[0].classes.size(), 1u);   // IUP
  EXPECT_EQ(ifl.children[1].classes.size(), 4u);   // IAP
  EXPECT_EQ(ifl.children[2].classes.size(), 16u);  // IMP
  EXPECT_EQ(ifl.children[3].classes.size(), 16u);  // ISP
}

TEST(Hierarchy, UniversalFlowIsSpatialComputingOnly) {
  const HierarchyNode root = machine_hierarchy();
  const HierarchyNode& uf = root.children[2];
  ASSERT_EQ(uf.children.size(), 1u);
  EXPECT_EQ(uf.children[0].label, "Spatial Computing");
  EXPECT_EQ(uf.children[0].classes.size(), 1u);
}

TEST(Hierarchy, LeafCountEqualsNamedClasses) {
  const HierarchyNode root = machine_hierarchy();
  std::size_t leaves = 0;
  for (const HierarchyNode& mt : root.children) {
    for (const HierarchyNode& pt : mt.children) {
      leaves += pt.classes.size();
    }
  }
  EXPECT_EQ(leaves, 43u);  // 47 rows minus 4 NI
}

TEST(Hierarchy, RenderShowsRangesAndCounts) {
  const std::string art = render_hierarchy(machine_hierarchy());
  EXPECT_NE(art.find("Computing Machines"), std::string::npos);
  EXPECT_NE(art.find("IMP-I..IMP-XVI"), std::string::npos);
  EXPECT_NE(art.find("(16 classes)"), std::string::npos);
  EXPECT_NE(art.find("USP"), std::string::npos);
  EXPECT_NE(art.find("DMP-I..DMP-IV"), std::string::npos);
}

TEST(Hierarchy, PathOfClass) {
  const auto path = hierarchy_path(
      TaxonomicName{MachineType::InstructionFlow,
                    ProcessingType::MultiProcessor, 3});
  ASSERT_EQ(path.size(), 4u);
  EXPECT_EQ(path[0], "Computing Machines");
  EXPECT_EQ(path[1], "Instruction Flow");
  EXPECT_EQ(path[2], "Multi Processor");
  EXPECT_EQ(path[3], "IMP-III");
}

TEST(Hierarchy, PathOfUsp) {
  const auto path = hierarchy_path(
      TaxonomicName{MachineType::UniversalFlow,
                    ProcessingType::SpatialProcessor, 0});
  ASSERT_EQ(path.size(), 4u);
  EXPECT_EQ(path[2], "Spatial Computing");
  EXPECT_EQ(path[3], "USP");
}

}  // namespace
}  // namespace mpct
