#include "sim/simd/array_processor.hpp"

#include <gtest/gtest.h>

#include "sim/isa/assembler.hpp"

namespace mpct::sim {
namespace {

TEST(ArrayProcessorConfig, SubtypeFactory) {
  const auto i = ArrayProcessorConfig::for_subtype(1);
  EXPECT_EQ(i.dp_dm, mpct::SwitchKind::Direct);
  EXPECT_EQ(i.dp_dp, mpct::SwitchKind::None);
  EXPECT_EQ(i.subtype(), 1);
  const auto ii = ArrayProcessorConfig::for_subtype(2);
  EXPECT_EQ(ii.dp_dp, mpct::SwitchKind::Crossbar);
  EXPECT_EQ(ii.subtype(), 2);
  const auto iii = ArrayProcessorConfig::for_subtype(3);
  EXPECT_EQ(iii.dp_dm, mpct::SwitchKind::Crossbar);
  EXPECT_EQ(iii.subtype(), 3);
  const auto iv = ArrayProcessorConfig::for_subtype(4);
  EXPECT_EQ(iv.subtype(), 4);
  EXPECT_THROW(ArrayProcessorConfig::for_subtype(0), std::invalid_argument);
  EXPECT_THROW(ArrayProcessorConfig::for_subtype(5), std::invalid_argument);
}

TEST(ArrayProcessor, BroadcastArithmeticDivergesByLane) {
  ArrayProcessor iap(assemble_or_throw(R"(
    lane r1
    ldi r2, 10
    mul r3, r1, r2
    out r3
    halt
  )"),
                     ArrayProcessorConfig::for_subtype(1, 4, 32));
  const RunStats stats = iap.run();
  EXPECT_TRUE(stats.halted);
  EXPECT_EQ(stats.output, (std::vector<Word>{0, 10, 20, 30}));
  // 5 broadcast cycles, 4 lanes of work each.
  EXPECT_EQ(stats.cycles, 5);
  EXPECT_EQ(stats.instructions, 20);
}

TEST(ArrayProcessor, DirectMemoryIsLaneLocal) {
  ArrayProcessor iap(assemble_or_throw(R"(
    lane r1
    ldi r2, 0
    st r2, r1, 0   ; DM_lane[0] = lane
    halt
  )"),
                     ArrayProcessorConfig::for_subtype(1, 4, 8));
  iap.run();
  for (int lane = 0; lane < 4; ++lane) {
    EXPECT_EQ(iap.bank(lane).load(0), lane);
  }
}

TEST(ArrayProcessor, CrossbarMemoryIsGlobal) {
  // IAP-III: every lane can address every bank; lane l writes to global
  // address 8*... here each lane writes its id to global address lane*2
  // (bank = addr / bank_words).
  ArrayProcessorConfig config = ArrayProcessorConfig::for_subtype(3, 4, 2);
  ArrayProcessor iap(assemble_or_throw(R"(
    lane r1
    ldi r2, 2
    mul r3, r1, r2   ; addr = 2*lane -> bank 'lane', offset 0
    st r3, r1, 0
    halt
  )"),
                     config);
  iap.run();
  for (int lane = 0; lane < 4; ++lane) {
    EXPECT_EQ(iap.bank(lane).load(0), lane);
  }
}

TEST(ArrayProcessor, CrossbarMemoryAllowsRemoteBank) {
  // Every lane writes into bank 3 at its own offset... offsets collide
  // across lanes, so instead: lane l stores to global address
  // (3 * bank_words) only from lane 0, the rest store to their own.
  // Simpler: lane 0 writes to the last bank.
  ArrayProcessorConfig config = ArrayProcessorConfig::for_subtype(3, 4, 4);
  ArrayProcessor iap(assemble_or_throw(R"(
    lane r1
    ldi r2, 4
    mul r3, r1, r2
    addi r4, r1, 70
    st r3, r4, 1    ; lane l: global[4*l + 1] = 70 + l
    halt
  )"),
                     config);
  iap.run();
  for (int lane = 0; lane < 4; ++lane) {
    EXPECT_EQ(iap.bank(lane).load(1), 70 + lane);
  }
}

TEST(ArrayProcessor, ShuffleRotates) {
  ArrayProcessor iap(assemble_or_throw(R"(
    lane r1
    ldi r2, 100
    add r3, r1, r2   ; r3 = 100 + lane
    addi r4, r1, 1   ; neighbour on the right
    shuf r5, r3, r4
    out r5
    halt
  )"),
                     ArrayProcessorConfig::for_subtype(2, 4, 8));
  const RunStats stats = iap.run();
  EXPECT_EQ(stats.output, (std::vector<Word>{101, 102, 103, 100}));
}

TEST(ArrayProcessor, ShuffleReadsPreInstructionSnapshot) {
  // Pairwise swap: every lane reads its partner's value simultaneously.
  ArrayProcessor iap(assemble_or_throw(R"(
    lane r1
    ldi r2, 1
    xor r4, r1, r2   ; partner = lane ^ 1
    shuf r5, r1, r4  ; r5 = partner's lane id
    out r5
    halt
  )"),
                     ArrayProcessorConfig::for_subtype(2, 4, 8));
  const RunStats stats = iap.run();
  EXPECT_EQ(stats.output, (std::vector<Word>{1, 0, 3, 2}));
}

TEST(ArrayProcessor, ShuffleTrapsWithoutDpDpSwitch) {
  for (int subtype : {1, 3}) {
    ArrayProcessor iap(assemble_or_throw("lane r1\nshuf r2, r1, r1\nhalt\n"),
                       ArrayProcessorConfig::for_subtype(subtype, 4, 8));
    EXPECT_THROW(iap.run(), SimError) << "IAP-" << subtype;
  }
}

TEST(ArrayProcessor, MessagePassingTraps) {
  ArrayProcessor iap(assemble_or_throw("send r1, r2\nhalt\n"),
                     ArrayProcessorConfig::for_subtype(4, 4, 8));
  EXPECT_THROW(iap.run(), SimError);
}

TEST(ArrayProcessor, ScalarControlUsesLaneZero) {
  // Lane 0 exits the loop after 3 iterations; all lanes follow the
  // single instruction stream (SIMD semantics).
  ArrayProcessor iap(assemble_or_throw(R"(
    ldi r1, 0      ; counter (same on all lanes)
    ldi r2, 3
loop:
    addi r1, r1, 1
    bne r1, r2, loop
    out r1
    halt
  )"),
                     ArrayProcessorConfig::for_subtype(1, 4, 8));
  const RunStats stats = iap.run();
  EXPECT_EQ(stats.output, (std::vector<Word>{3, 3, 3, 3}));
}

TEST(ArrayProcessor, DirectModeRequiresBankPerLane) {
  ArrayProcessorConfig config = ArrayProcessorConfig::for_subtype(1, 8, 8);
  config.banks = 4;  // fewer banks than lanes
  EXPECT_THROW(ArrayProcessor(assemble_or_throw("halt\n"), config),
               std::invalid_argument);
}

TEST(ArrayProcessor, MontiumStyleMoreBanksThanLanes) {
  // IAP-IV with 5 lanes and 10 banks (Montium's 5x10 DP-DM crossbar).
  ArrayProcessorConfig config = ArrayProcessorConfig::for_subtype(4, 5, 4);
  config.banks = 10;
  ArrayProcessor iap(assemble_or_throw(R"(
    lane r1
    ldi r2, 36     ; bank 9, offset 0
    st r2, r1, 0   ; every lane writes, lane 4 wins the final value
    halt
  )"),
                     config);
  iap.run();
  EXPECT_EQ(iap.banks(), 10);
  EXPECT_EQ(iap.bank(9).load(0), 4);
}

TEST(ArrayProcessor, ResetClearsState) {
  ArrayProcessor iap(assemble_or_throw("lane r1\nhalt\n"),
                     ArrayProcessorConfig::for_subtype(1, 2, 8));
  iap.run();
  EXPECT_EQ(iap.lane_state(1).reg(1), 1);
  iap.reset();
  EXPECT_EQ(iap.lane_state(1).reg(1), 0);
}

TEST(ArrayProcessor, MaxCyclesBoundsRun) {
  ArrayProcessor iap(assemble_or_throw("loop: jmp loop\n"),
                     ArrayProcessorConfig::for_subtype(1, 2, 8));
  const RunStats stats = iap.run(100);
  EXPECT_FALSE(stats.halted);
  EXPECT_EQ(stats.cycles, 100);
}

}  // namespace
}  // namespace mpct::sim
