#include "core/roman.hpp"

#include <gtest/gtest.h>

namespace mpct {
namespace {

TEST(Roman, RendersSubtypeRange) {
  // The numerals the taxonomy actually uses (sub-types I..XVI).
  const char* expected[] = {"I",   "II",  "III", "IV",  "V",   "VI",
                            "VII", "VIII", "IX", "X",   "XI",  "XII",
                            "XIII", "XIV", "XV", "XVI"};
  for (int i = 1; i <= 16; ++i) {
    EXPECT_EQ(to_roman(i), expected[i - 1]) << i;
  }
}

TEST(Roman, RendersSubtractiveForms) {
  EXPECT_EQ(to_roman(4), "IV");
  EXPECT_EQ(to_roman(9), "IX");
  EXPECT_EQ(to_roman(40), "XL");
  EXPECT_EQ(to_roman(90), "XC");
  EXPECT_EQ(to_roman(400), "CD");
  EXPECT_EQ(to_roman(900), "CM");
  EXPECT_EQ(to_roman(1994), "MCMXCIV");
  EXPECT_EQ(to_roman(3999), "MMMCMXCIX");
}

TEST(Roman, RejectsOutOfRange) {
  EXPECT_THROW(to_roman(0), std::invalid_argument);
  EXPECT_THROW(to_roman(-7), std::invalid_argument);
  EXPECT_THROW(to_roman(4000), std::invalid_argument);
}

TEST(Roman, ParsesCanonicalForms) {
  EXPECT_EQ(from_roman("I"), 1);
  EXPECT_EQ(from_roman("XVI"), 16);
  EXPECT_EQ(from_roman("XIV"), 14);
  EXPECT_EQ(from_roman("MCMXCIV"), 1994);
}

TEST(Roman, RejectsMalformedInput) {
  EXPECT_EQ(from_roman(""), std::nullopt);
  EXPECT_EQ(from_roman("ABC"), std::nullopt);
  EXPECT_EQ(from_roman("IIII"), std::nullopt);   // non-canonical 4
  EXPECT_EQ(from_roman("VV"), std::nullopt);     // V not repeatable
  EXPECT_EQ(from_roman("IVI"), std::nullopt);    // non-canonical 5
  EXPECT_EQ(from_roman("XVIZ"), std::nullopt);   // trailing junk
  EXPECT_EQ(from_roman("xvi"), std::nullopt);    // lowercase not accepted
}

/// Property: every value in range round-trips exactly.
class RomanRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(RomanRoundTrip, RoundTrips) {
  const int value = GetParam();
  EXPECT_EQ(from_roman(to_roman(value)), value);
}

INSTANTIATE_TEST_SUITE_P(SubtypeValues, RomanRoundTrip,
                         ::testing::Range(1, 17));
INSTANTIATE_TEST_SUITE_P(WiderSweep, RomanRoundTrip,
                         ::testing::Values(19, 38, 44, 99, 248, 500, 1000,
                                           1987, 2012, 2499, 3888, 3999));

}  // namespace
}  // namespace mpct
