/// Fault-injection and graceful-degradation engine (src/fault): fault-set
/// canonicalisation, sampling reproducibility, the degradation table over
/// all 47 canonical classes, interconnect route-around, Monte-Carlo
/// degradation curves (byte-identical across runs and thread counts) and
/// the service engine's FaultSweepRequest parity with the inline path.
#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <random>
#include <stdexcept>
#include <thread>

#include "core/classifier.hpp"
#include "core/flexibility.hpp"
#include "core/taxonomy_index.hpp"
#include "fault/fault.hpp"
#include "interconnect/benes.hpp"
#include "interconnect/bus.hpp"
#include "interconnect/crossbar.hpp"
#include "interconnect/hierarchical.hpp"
#include "interconnect/mesh_noc.hpp"
#include "interconnect/omega.hpp"
#include "interconnect/traffic.hpp"
#include "service/engine.hpp"

namespace mpct {
namespace {

using fault::CurveResult;
using fault::CurveSpec;
using fault::DegradeResult;
using fault::FabricShape;
using fault::Fault;
using fault::FaultKind;
using fault::FaultRates;
using fault::FaultSet;

cost::EstimateOptions small_bindings() {
  cost::EstimateOptions bindings;
  bindings.n = 4;
  bindings.m = 4;
  bindings.v = 16;
  return bindings;
}

/// A canonical instruction-flow multiprocessor: n IPs and n DPs joined by
/// crossbars — plenty of structure for faults to chew on.
MachineClass imp_machine() {
  MachineClass mc;
  mc.granularity = Granularity::IpDp;
  mc.ips = Multiplicity::Many;
  mc.dps = Multiplicity::Many;
  mc.set_switch(ConnectivityRole::IpDp, SwitchKind::Crossbar);
  mc.set_switch(ConnectivityRole::DpDm, SwitchKind::Crossbar);
  mc.set_switch(ConnectivityRole::DpDp, SwitchKind::Direct);
  return mc;
}

MachineClass usp_machine() {
  MachineClass mc;
  mc.granularity = Granularity::Lut;
  mc.ips = Multiplicity::Variable;
  mc.dps = Multiplicity::Variable;
  mc.set_switch(ConnectivityRole::DpDp, SwitchKind::Crossbar);
  return mc;
}

// ---------------------------------------------------------------------------
// FaultSet canonicalisation

TEST(FaultSet, CanonicalOrderIsInsertionIndependent) {
  FaultSet a;
  a.add(FaultKind::DpDead, 3);
  a.add(FaultKind::IpDead, 1);
  a.add_switch_port(ConnectivityRole::DpDm, 7);
  a.add(FaultKind::IpDead, 0);

  FaultSet b;
  b.add(FaultKind::IpDead, 0);
  b.add_switch_port(ConnectivityRole::DpDm, 7);
  b.add(FaultKind::IpDead, 1);
  b.add(FaultKind::DpDead, 3);

  EXPECT_EQ(a, b);
  ASSERT_EQ(a.size(), 4u);
  // Sorted by (kind, role, index, index2): IPs before DPs before ports.
  EXPECT_EQ(a.faults()[0].kind, FaultKind::IpDead);
  EXPECT_EQ(a.faults()[0].index, 0);
  EXPECT_EQ(a.faults()[1].index, 1);
  EXPECT_EQ(a.faults()[2].kind, FaultKind::DpDead);
  EXPECT_EQ(a.faults()[3].kind, FaultKind::SwitchPortDead);
}

TEST(FaultSet, AddIsIdempotent) {
  FaultSet set;
  set.add(FaultKind::IpDead, 2);
  set.add(FaultKind::IpDead, 2);
  set.add_noc_link(4, 5);
  set.add_noc_link(5, 4);  // canonicalised to (4, 5)
  EXPECT_EQ(set.size(), 2u);
  EXPECT_TRUE(set.contains({FaultKind::IpDead, ConnectivityRole::IpIp, 2, 0}));
  EXPECT_TRUE(
      set.contains({FaultKind::NocLinkDead, ConnectivityRole::IpIp, 4, 5}));
  EXPECT_FALSE(
      set.contains({FaultKind::NocLinkDead, ConnectivityRole::IpIp, 5, 4}));
}

TEST(FaultSet, CountAndMerge) {
  FaultSet a;
  a.add(FaultKind::IpDead, 0);
  a.add(FaultKind::IpDead, 1);
  a.add_switch_port(ConnectivityRole::IpDp, 0);
  FaultSet b;
  b.add(FaultKind::IpDead, 1);  // overlaps
  b.add(FaultKind::DpDead, 0);
  a.merge(b);
  EXPECT_EQ(a.size(), 4u);
  EXPECT_EQ(a.count(FaultKind::IpDead), 2u);
  EXPECT_EQ(a.count(FaultKind::DpDead), 1u);
  EXPECT_EQ(a.count_ports(ConnectivityRole::IpDp), 1u);
  EXPECT_EQ(a.count_ports(ConnectivityRole::DpDm), 0u);
}

// ---------------------------------------------------------------------------
// FabricShape binding and fault sampling

TEST(FabricShape, BindsMultiplicitiesLikeTheCostModel) {
  const FabricShape shape = FabricShape::of(imp_machine(), small_bindings());
  EXPECT_EQ(shape.ips, 4);
  EXPECT_EQ(shape.dps, 4);
  EXPECT_EQ(shape.luts, 0);
  // IP-DP column spans both populations; DP-DM pairs each DP with a
  // memory port; DP-DP is a direct wire but still has DP-side ports.
  EXPECT_EQ(shape.switch_ports[static_cast<int>(ConnectivityRole::IpDp)], 8);
  EXPECT_EQ(shape.switch_ports[static_cast<int>(ConnectivityRole::DpDm)], 8);
  EXPECT_EQ(shape.switch_ports[static_cast<int>(ConnectivityRole::IpIp)], 0);
  EXPECT_GT(shape.total_ports(), 0);
  EXPECT_EQ(shape.total_components(), shape.total_blocks() + shape.total_ports());
}

TEST(FabricShape, LutGrainBindsVariableToV) {
  const FabricShape shape = FabricShape::of(usp_machine(), small_bindings());
  EXPECT_EQ(shape.luts, 16);
  EXPECT_EQ(shape.ips, 0);
  EXPECT_EQ(shape.dps, 0);
  EXPECT_EQ(shape.switch_ports[static_cast<int>(ConnectivityRole::DpDp)], 16);
}

TEST(SampleFaults, DeterministicInSeedAndMonotoneInRate) {
  const FabricShape shape = FabricShape::of(imp_machine(), small_bindings());
  const FaultSet a = fault::sample_faults(shape, FaultRates::uniform(0.3), 42);
  const FaultSet b = fault::sample_faults(shape, FaultRates::uniform(0.3), 42);
  EXPECT_EQ(a, b);
  const FaultSet c = fault::sample_faults(shape, FaultRates::uniform(0.3), 43);
  EXPECT_NE(a, c);

  EXPECT_TRUE(fault::sample_faults(shape, FaultRates::uniform(0.0), 1).empty());
  const FaultSet all = fault::sample_faults(shape, FaultRates::uniform(1.0), 1);
  EXPECT_EQ(static_cast<std::int64_t>(all.size()), shape.total_components());
}

TEST(SampleFaults, KillAllHelpersCoverThePopulations) {
  const FabricShape shape = FabricShape::of(imp_machine(), small_bindings());
  EXPECT_EQ(fault::kill_all_ips(shape).count(FaultKind::IpDead), 4u);
  EXPECT_EQ(fault::kill_all_dps(shape).count(FaultKind::DpDead), 4u);
  EXPECT_TRUE(fault::kill_all_luts(shape).empty());
  EXPECT_EQ(
      static_cast<std::int64_t>(fault::kill_all_switch_ports(shape).size()),
      shape.total_ports());
}

// ---------------------------------------------------------------------------
// degrade(): graceful structural degradation

TEST(Degrade, EmptyFaultSetIsIdentity) {
  const MachineClass mc = imp_machine();
  const FabricShape shape = FabricShape::of(mc, small_bindings());
  const DegradeResult r =
      fault::degrade(mc, shape, FaultSet{},
                     cost::ComponentLibrary::default_library(),
                     small_bindings());
  EXPECT_EQ(r.degraded, mc);
  EXPECT_TRUE(r.classification.ok());
  EXPECT_EQ(r.degraded_score, r.original_score);
  EXPECT_DOUBLE_EQ(r.component_survival, 1.0);
  EXPECT_DOUBLE_EQ(r.flexibility_retention(), 1.0);
  EXPECT_TRUE(r.alive());
  EXPECT_DOUBLE_EQ(r.degraded_cost.area_kge, r.original_cost.area_kge);
  EXPECT_EQ(r.degraded_cost.config_bits, r.original_cost.config_bits);
}

TEST(Degrade, AllIpsDeadDegradesImpIntoDataFlow) {
  const MachineClass mc = imp_machine();
  const FabricShape shape = FabricShape::of(mc, small_bindings());
  const DegradeResult r = fault::degrade(mc, shape, fault::kill_all_ips(shape));
  EXPECT_EQ(r.surviving_ips, 0);
  EXPECT_EQ(r.surviving_dps, 4);
  ASSERT_TRUE(r.classification.ok()) << r.classification.note;
  EXPECT_EQ(r.classification.name->machine_type, MachineType::DataFlow);
  EXPECT_LE(r.degraded_score, r.original_score);
  // Dead IPs take their connectivity with them.
  EXPECT_EQ(r.degraded.switch_at(ConnectivityRole::IpDp), SwitchKind::None);
}

TEST(Degrade, AllDpsDeadIsWellTypedFailure) {
  const MachineClass mc = imp_machine();
  const FabricShape shape = FabricShape::of(mc, small_bindings());
  const DegradeResult r = fault::degrade(mc, shape, fault::kill_all_dps(shape));
  EXPECT_FALSE(r.classification.ok());
  EXPECT_FALSE(r.classification.note.empty());
  EXPECT_FALSE(r.alive());
  EXPECT_EQ(r.degraded_score, 0);
  EXPECT_DOUBLE_EQ(r.flexibility_retention(), 0.0);
}

TEST(Degrade, AllLutsDeadKillsUniversalFlowFabric) {
  const MachineClass mc = usp_machine();
  const FabricShape shape = FabricShape::of(mc, small_bindings());
  const DegradeResult r =
      fault::degrade(mc, shape, fault::kill_all_luts(shape));
  EXPECT_FALSE(r.classification.ok());
  EXPECT_FALSE(r.classification.note.empty());
  EXPECT_FALSE(r.alive());
  EXPECT_EQ(r.surviving_luts, 0);
}

TEST(Degrade, PartialFaultsShrinkMultiplicity) {
  MachineClass mc = imp_machine();
  const FabricShape shape = FabricShape::of(mc, small_bindings());
  FaultSet faults;  // 3 of 4 IPs die -> One
  faults.add(FaultKind::IpDead, 0);
  faults.add(FaultKind::IpDead, 1);
  faults.add(FaultKind::IpDead, 3);
  const DegradeResult r = fault::degrade(mc, shape, faults);
  EXPECT_EQ(r.surviving_ips, 1);
  EXPECT_EQ(r.degraded.ips, Multiplicity::One);
  EXPECT_EQ(r.degraded.dps, Multiplicity::Many);
  EXPECT_LE(r.degraded_score, r.original_score);
}

TEST(Degrade, DeadColumnPortsTurnSwitchToNone) {
  const MachineClass mc = imp_machine();
  const FabricShape shape = FabricShape::of(mc, small_bindings());
  FaultSet faults;
  const std::int64_t dm_ports =
      shape.switch_ports[static_cast<int>(ConnectivityRole::DpDm)];
  for (std::int64_t p = 0; p < dm_ports; ++p) {
    faults.add_switch_port(ConnectivityRole::DpDm,
                           static_cast<std::int32_t>(p));
  }
  const DegradeResult r = fault::degrade(mc, shape, faults);
  EXPECT_EQ(r.degraded.switch_at(ConnectivityRole::DpDm), SwitchKind::None);
  // A partially-dead column keeps its kind.
  FaultSet one_port;
  one_port.add_switch_port(ConnectivityRole::DpDm, 0);
  const DegradeResult r2 = fault::degrade(mc, shape, one_port);
  EXPECT_EQ(r2.degraded.switch_at(ConnectivityRole::DpDm),
            SwitchKind::Crossbar);
}

TEST(Degrade, NocRouterDeathKillsColocatedDp) {
  const MachineClass mc = imp_machine();
  FabricShape shape = FabricShape::of(mc, small_bindings());
  shape.noc_width = 2;
  shape.noc_height = 2;
  FaultSet faults;
  faults.add(FaultKind::NocRouterDead, 1);
  const DegradeResult r = fault::degrade(mc, shape, faults);
  EXPECT_EQ(r.surviving_dps, 3);
  // The same DP is not double-counted when both faults name it.
  faults.add(FaultKind::DpDead, 1);
  const DegradeResult r2 = fault::degrade(mc, shape, faults);
  EXPECT_EQ(r2.surviving_dps, 3);
}

TEST(Degrade, OutOfRangeFaultsAreInert) {
  const MachineClass mc = imp_machine();
  const FabricShape shape = FabricShape::of(mc, small_bindings());
  FaultSet faults;
  faults.add(FaultKind::IpDead, 1000);
  faults.add(FaultKind::LutDead, 3);  // coarse fabric has no LUTs
  faults.add(FaultKind::NocRouterDead, 0);  // no NoC on this shape
  const DegradeResult r = fault::degrade(mc, shape, faults);
  EXPECT_EQ(r.degraded, mc);
  EXPECT_DOUBLE_EQ(r.component_survival, 1.0);
}

// The satellite acceptance test: every canonical Table I row, hit with
// each whole-population kill set, must come back as either a valid
// classification or a well-typed error (non-empty note) — never an
// assert, never silent garbage — and flexibility must be monotone.
TEST(Degrade, All47CanonicalClassesDegradeGracefully) {
  const cost::ComponentLibrary lib = cost::ComponentLibrary::default_library();
  const cost::EstimateOptions bindings = small_bindings();
  int rows_checked = 0;
  for (const TaxonomyIndex::ClassInfo& row : taxonomy_index().rows()) {
    const MachineClass& mc = row.machine;
    const FabricShape shape = FabricShape::of(mc, bindings);
    FaultSet everything = fault::kill_all_ips(shape);
    everything.merge(fault::kill_all_dps(shape));
    everything.merge(fault::kill_all_luts(shape));
    everything.merge(fault::kill_all_switch_ports(shape));
    const FaultSet kill_sets[] = {
        fault::kill_all_ips(shape), fault::kill_all_dps(shape),
        fault::kill_all_luts(shape), fault::kill_all_switch_ports(shape),
        everything};
    for (const FaultSet& faults : kill_sets) {
      const DegradeResult r = fault::degrade(mc, shape, faults, lib, bindings);
      // Valid class or well-typed error; never a nameless silent success.
      EXPECT_TRUE(r.classification.ok() || !r.classification.note.empty())
          << "row " << row.serial << " (" << row.interned_name << ")";
      EXPECT_GE(r.component_survival, 0.0);
      EXPECT_LE(r.component_survival, 1.0);
      EXPECT_GE(r.flexibility_retention(), 0.0);
      EXPECT_LE(r.flexibility_retention(), 1.0);
      if (r.original_classification.ok() && r.classification.ok()) {
        EXPECT_LE(r.degraded_score, r.original_score)
            << "row " << row.serial << ": degradation raised flexibility";
      }
    }
    ++rows_checked;
  }
  EXPECT_EQ(rows_checked, TaxonomyIndex::kRowCount);
}

TEST(Degrade, MonotoneUnderSampledFaults) {
  const cost::EstimateOptions bindings = small_bindings();
  Rng rng(7001);
  for (const TaxonomyIndex::ClassInfo& row : taxonomy_index().rows()) {
    const FabricShape shape = FabricShape::of(row.machine, bindings);
    for (int trial = 0; trial < 4; ++trial) {
      const FaultSet faults = fault::sample_faults(
          shape, FaultRates::uniform(0.25), rng.next());
      const DegradeResult r = fault::degrade(row.machine, shape, faults);
      EXPECT_TRUE(r.classification.ok() || !r.classification.note.empty());
      if (r.original_classification.ok() && r.classification.ok()) {
        EXPECT_LE(r.degraded_score, r.original_score)
            << row.interned_name << " + " << faults.size() << " faults";
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Interconnect route-around

TEST(MeshNocFaults, LinkFailureRoutesAround) {
  interconnect::MeshNoc mesh(4, 4);
  EXPECT_FALSE(mesh.faulty());
  EXPECT_FALSE(mesh.fail_link(0, 5));  // diagonal: not mesh-adjacent
  ASSERT_TRUE(mesh.fail_link(0, 1));
  EXPECT_TRUE(mesh.faulty());
  EXPECT_FALSE(mesh.link_alive(0, 1));
  EXPECT_TRUE(mesh.link_alive(0, 4));
  // Still fully connected: the detour goes around the dead link.
  EXPECT_TRUE(mesh.routable(0, 1));
  EXPECT_DOUBLE_EQ(mesh.reachable_fraction(), 1.0);

  interconnect::TrafficParams params{.cycles = 100, .rate = 0.1, .seed = 3};
  auto packets = interconnect::uniform_traffic(mesh, params);
  const auto stats = mesh.simulate(packets, 100000);
  EXPECT_EQ(stats.unroutable, 0);
  EXPECT_EQ(stats.undelivered, 0);
  EXPECT_EQ(stats.delivered, static_cast<std::int64_t>(packets.size()));
}

TEST(MeshNocFaults, NodeFailureCountsUnroutablePackets) {
  interconnect::MeshNoc mesh(4, 4);
  mesh.fail_node(5);
  EXPECT_FALSE(mesh.node_alive(5));
  EXPECT_EQ(mesh.alive_node_count(), 15);
  EXPECT_FALSE(mesh.routable(0, 5));
  EXPECT_FALSE(mesh.routable(5, 0));
  EXPECT_TRUE(mesh.routable(0, 15));
  // Survivors remain fully connected on a 4x4 with one dead router.
  EXPECT_DOUBLE_EQ(mesh.reachable_fraction(), 1.0);

  interconnect::TrafficParams params{.cycles = 200, .rate = 0.1, .seed = 9};
  auto packets = interconnect::uniform_traffic(mesh, params);
  std::int64_t touching = 0;
  for (const interconnect::Packet& p : packets) {
    if (p.src == 5 || p.dst == 5) ++touching;
  }
  ASSERT_GT(touching, 0);
  const auto stats = mesh.simulate(packets, 100000);
  EXPECT_EQ(stats.unroutable, touching);
  EXPECT_EQ(stats.delivered + stats.unroutable,
            static_cast<std::int64_t>(packets.size()));
}

TEST(MeshNocFaults, IsolatedCornerBreaksConnectivity) {
  interconnect::MeshNoc mesh(4, 4);
  ASSERT_TRUE(mesh.fail_link(0, 1));
  ASSERT_TRUE(mesh.fail_link(0, 4));
  EXPECT_FALSE(mesh.routable(0, 5));
  EXPECT_LT(mesh.reachable_fraction(), 1.0);
  // 15 of 16 alive-pair sources still see each other: 1 - 2*15/(16*15).
  EXPECT_NEAR(mesh.reachable_fraction(), 1.0 - 2.0 * 15 / (16 * 15), 1e-12);
}

TEST(MeshNocFaults, BisectionWidthTracksCutLinks) {
  interconnect::MeshNoc mesh(4, 4);
  EXPECT_EQ(mesh.bisection_width(), 4);
  ASSERT_TRUE(mesh.fail_link(1, 2));  // row 0 crossing link
  EXPECT_EQ(mesh.bisection_width(), 3);
  mesh.fail_node(6);  // kills row 1's crossing link (5-6)
  EXPECT_EQ(mesh.bisection_width(), 2);
}

TEST(CrossbarFaults, DeadPortsRejectRoutesAndDropState) {
  interconnect::Crossbar xb(4, 4);
  ASSERT_TRUE(xb.connect(1, 2));
  xb.fail_input(1);
  EXPECT_FALSE(xb.input_alive(1));
  EXPECT_EQ(xb.live_input_count(), 3);
  EXPECT_FALSE(xb.source_of(2).has_value());  // torn down
  EXPECT_FALSE(xb.connect(1, 3));
  EXPECT_FALSE(xb.reachable(1, 3));
  EXPECT_TRUE(xb.connect(0, 3));

  xb.fail_output(3);
  EXPECT_EQ(xb.live_output_count(), 3);
  EXPECT_FALSE(xb.source_of(3).has_value());
  EXPECT_FALSE(xb.connect(0, 3));
}

TEST(CrossbarFaults, LoadBitstreamDropsRoutesThroughDeadPorts) {
  interconnect::Crossbar xb(4, 4);
  ASSERT_TRUE(xb.connect(0, 0));
  ASSERT_TRUE(xb.connect(2, 1));
  const std::vector<bool> bits = xb.bitstream();
  xb.fail_input(0);
  ASSERT_TRUE(xb.load_bitstream(bits));  // dead route dropped, not an error
  EXPECT_FALSE(xb.source_of(0).has_value());
  ASSERT_TRUE(xb.source_of(1).has_value());
  EXPECT_EQ(*xb.source_of(1), 2);
}

TEST(BenesFaults, DeadSwitchDropsSignalsAndReachability) {
  interconnect::BenesNetwork net(8);
  EXPECT_DOUBLE_EQ(net.output_reachability(), 1.0);
  EXPECT_FALSE(net.fail_switch(0, 99));
  ASSERT_TRUE(net.fail_switch(net.stage_count() - 1, 0));
  EXPECT_FALSE(net.switch_alive(net.stage_count() - 1, 0));
  EXPECT_EQ(net.dead_switch_count(), 1);

  const std::vector<bool> reach = net.reachable_outputs();
  EXPECT_FALSE(reach[0]);
  EXPECT_FALSE(reach[1]);
  for (int o = 2; o < 8; ++o) EXPECT_TRUE(reach[o]) << o;
  EXPECT_DOUBLE_EQ(net.output_reachability(), 0.75);

  // Identity configuration: signals bound for outputs 0/1 are dropped.
  const std::vector<std::uint64_t> in = {10, 20, 30, 40, 50, 60, 70, 80};
  const std::vector<std::uint64_t> out = net.propagate(in);
  EXPECT_EQ(out[0], 0u);
  EXPECT_EQ(out[1], 0u);
  EXPECT_EQ(net.source_of(0), -1);
}

// Fault-mask parity: every multistage/bus fabric answers the same
// questions (alive?, dead count, reachability fraction) the same way, so
// degrade()'s structural census and the executable models agree.
TEST(OmegaFaults, MaskMatchesDegradeCensusFraction) {
  // An 8-port DP-DP column, modelled both ways: the structural census
  // (SwitchPortDead faults into degrade()) and the executable Omega
  // fabric with its last-stage switch 0 dead — which unreaches exactly
  // outputs {0, 1}, the same 2-of-8 loss the census records.
  const MachineClass mc = imp_machine();
  FabricShape shape = FabricShape::of(mc, small_bindings());
  const auto role = static_cast<std::size_t>(ConnectivityRole::IpDp);
  shape.switch_ports[role] = 8;
  FaultSet faults;
  faults.add_switch_port(ConnectivityRole::IpDp, 0);
  faults.add_switch_port(ConnectivityRole::IpDp, 1);
  const DegradeResult r = fault::degrade(mc, shape, faults);
  EXPECT_EQ(r.surviving_ports[role], 6);
  // Partially-dead column keeps its switch kind.
  EXPECT_EQ(r.degraded.switch_at(ConnectivityRole::IpDp),
            SwitchKind::Crossbar);

  interconnect::OmegaNetwork net(8);
  ASSERT_TRUE(net.fail_switch(net.stage_count() - 1, 0));
  const double census_fraction =
      static_cast<double>(r.surviving_ports[role]) /
      static_cast<double>(shape.switch_ports[role]);
  EXPECT_DOUBLE_EQ(net.output_reachability(), census_fraction);
}

TEST(HierarchicalFaults, MaskMatchesDegradeCensusFraction) {
  // The same 8-port DP-DP column, modelled both ways: the structural
  // census (SwitchPortDead faults into degrade()) and the executable
  // two-level hierarchy with one cluster's local crossbar dead — which
  // unreaches exactly that cluster's outputs {0, 1}, the same 2-of-8
  // loss the census records.
  const MachineClass mc = imp_machine();
  FabricShape shape = FabricShape::of(mc, small_bindings());
  const auto role = static_cast<std::size_t>(ConnectivityRole::IpDp);
  shape.switch_ports[role] = 8;
  FaultSet faults;
  faults.add_switch_port(ConnectivityRole::IpDp, 0);
  faults.add_switch_port(ConnectivityRole::IpDp, 1);
  const DegradeResult r = fault::degrade(mc, shape, faults);
  EXPECT_EQ(r.surviving_ports[role], 6);
  // Partially-dead column keeps its switch kind.
  EXPECT_EQ(r.degraded.switch_at(ConnectivityRole::IpDp),
            SwitchKind::Crossbar);

  interconnect::HierarchicalNetwork net(8, 2, 1);
  ASSERT_TRUE(net.fail_switch(0));
  const double census_fraction =
      static_cast<double>(r.surviving_ports[role]) /
      static_cast<double>(shape.switch_ports[role]);
  EXPECT_DOUBLE_EQ(net.output_reachability(), census_fraction);
}

TEST(BusFaults, AllSegmentsDeadMirrorsColumnStrip) {
  // degrade() strips a connectivity column once every port died; the
  // executable bus fabric reaches the same verdict — nothing routes —
  // when every segment died.
  const MachineClass mc = imp_machine();
  const FabricShape shape = FabricShape::of(mc, small_bindings());
  FaultSet faults;
  const auto role = static_cast<std::size_t>(ConnectivityRole::DpDm);
  for (std::int64_t p = 0; p < shape.switch_ports[role]; ++p) {
    faults.add_switch_port(ConnectivityRole::DpDm,
                           static_cast<std::int32_t>(p));
  }
  const DegradeResult r = fault::degrade(mc, shape, faults);
  EXPECT_EQ(r.degraded.switch_at(ConnectivityRole::DpDm), SwitchKind::None);

  interconnect::BusNetwork bus(4, 4, 2);
  ASSERT_TRUE(bus.connect(0, 0));
  ASSERT_TRUE(bus.fail_segment(0));
  ASSERT_TRUE(bus.fail_segment(1));
  EXPECT_EQ(bus.live_bus_count(), 0);
  EXPECT_FALSE(bus.reachable(0, 0));
  EXPECT_FALSE(bus.connect(2, 2));
  EXPECT_FALSE(bus.source_of(0).has_value());
  // Config state is still physically present on both models, exactly as
  // Eq. 2 keeps pricing the stripped column's silicon.
  EXPECT_GT(bus.config_bits(), 0);
}

TEST(RouteAround, AnalyzeNocReportsConnectivityLoss) {
  FabricShape shape;
  shape.dps = 16;
  shape.noc_width = 4;
  shape.noc_height = 4;
  FaultSet faults;
  faults.add(FaultKind::NocRouterDead, 5);
  faults.add_noc_link(0, 1);
  faults.add(FaultKind::NocRouterDead, 99);  // out of range: inert

  const fault::NocDegradation d = fault::analyze_noc(shape, faults);
  EXPECT_EQ(d.total_routers, 16);
  EXPECT_EQ(d.alive_routers, 15);
  EXPECT_EQ(d.failed_links, 1);
  EXPECT_DOUBLE_EQ(d.reachable_fraction, 1.0);  // survivors connected
  EXPECT_EQ(d.bisection_before, 4);
  EXPECT_GT(d.baseline.delivered, 0);
  EXPECT_GT(d.degraded.unroutable, 0);
  EXPECT_LT(d.delivered_ratio, 1.0);
  EXPECT_GT(d.delivered_ratio, 0.0);
  EXPECT_LE(d.bisection_retention(), 1.0);
  EXPECT_FALSE(fault::to_string(d).empty());
}

TEST(RouteAround, NoNocShapeThrows) {
  FabricShape shape;
  shape.dps = 4;
  EXPECT_THROW(fault::build_degraded_noc(shape, FaultSet{}),
               std::invalid_argument);
  EXPECT_THROW(fault::analyze_noc(shape, FaultSet{}), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Degradation curves: determinism across runs and thread counts

CurveSpec curve_spec() {
  CurveSpec spec;
  spec.machine = imp_machine();
  spec.bindings = small_bindings();
  spec.noc_width = 2;
  spec.noc_height = 2;
  spec.fault_rates = {0.0, 0.05, 0.2, 0.5};
  spec.trials_per_rate = 16;
  spec.seed = 2026;
  return spec;
}

TEST(DegradationCurve, NormalizedSpecFillsDefaults) {
  CurveSpec spec;
  spec.trials_per_rate = 0;
  const CurveSpec norm = spec.normalized();
  EXPECT_EQ(norm.fault_rates, std::vector<double>{0.0});
  EXPECT_EQ(norm.trials_per_rate, 1);
  EXPECT_EQ(norm.cell_count(), 1u);
  EXPECT_EQ(curve_spec().cell_count(), 64u);
}

TEST(DegradationCurve, ZeroRateIsPerfectHealth) {
  const CurveResult result = fault::evaluate_curve(curve_spec());
  ASSERT_EQ(result.points.size(), 4u);
  const fault::CurvePoint& healthy = result.points[0];
  EXPECT_DOUBLE_EQ(healthy.fault_rate, 0.0);
  EXPECT_EQ(healthy.trials, 16);
  EXPECT_DOUBLE_EQ(healthy.yield, 1.0);
  EXPECT_DOUBLE_EQ(healthy.mean_flexibility, 1.0);
  EXPECT_DOUBLE_EQ(healthy.mean_connectivity, 1.0);
  EXPECT_DOUBLE_EQ(healthy.mean_survival, 1.0);
  // Higher fault rates only lose components on average.
  for (std::size_t i = 1; i < result.points.size(); ++i) {
    EXPECT_LE(result.points[i].mean_survival,
              result.points[i - 1].mean_survival + 1e-9);
  }
}

TEST(DegradationCurve, CellEvaluationMatchesRangeEvaluation) {
  const fault::CurveEvaluator evaluator(curve_spec());
  std::vector<fault::TrialOutcome> outcomes(evaluator.cell_count());
  evaluator.evaluate_range(0, evaluator.cell_count(), outcomes.data());
  for (std::size_t i = 0; i < evaluator.cell_count(); i += 7) {
    EXPECT_EQ(evaluator.evaluate_cell(i), outcomes[i]) << i;
  }
}

TEST(DegradationCurve, CsvIsByteIdenticalAcrossRunsAndThreadCounts) {
  const CurveSpec spec = curve_spec();
  const std::string run1 = fault::to_csv(fault::evaluate_curve(spec));
  const std::string run2 = fault::to_csv(fault::evaluate_curve(spec));
  EXPECT_EQ(run1, run2);
  // Thread-count invariance: the engine's core determinism contract.
  for (unsigned threads : {1u, 2u, 5u}) {
    EXPECT_EQ(fault::to_csv(fault::evaluate_curve(
                  spec, cost::ComponentLibrary::default_library(), threads)),
              run1)
        << threads << " threads";
  }
  EXPECT_EQ(run1.rfind("fault_rate,trials,yield,flexibility_retention,"
                       "connectivity,survival",
                       0),
            0u);
}

// The batch-parity satellite: every canonical Table I row, on a
// randomized (rates, seed) spec, must produce bit-identical outcomes on
// the scalar oracle (evaluate_cell: full sample_faults + degrade) and
// the batch path (evaluate_range: sample_faults_into +
// structural_degrade), and the CSV reduced from the scalar outcomes
// must be byte-identical to what every thread count of the batch path
// renders.
TEST(DegradationCurve, BatchPathMatchesScalarOracleOnAll47Classes) {
  std::mt19937_64 rng(4242);
  std::uniform_real_distribution<double> rate(0.0, 0.5);
  for (const TaxonomyIndex::ClassInfo& row : taxonomy_index().rows()) {
    CurveSpec spec;
    spec.machine = row.machine;
    spec.bindings = small_bindings();
    spec.fault_rates = {rate(rng), rate(rng)};
    spec.trials_per_rate = 4;
    spec.seed = rng();
    if (row.machine.dps == Multiplicity::Many) {
      spec.noc_width = 2;  // exercise the NoC connectivity branch too
      spec.noc_height = 2;
    }
    const fault::CurveEvaluator evaluator(spec);
    const std::size_t cells = evaluator.cell_count();
    std::vector<fault::TrialOutcome> scalar(cells), batch(cells);
    for (std::size_t i = 0; i < cells; ++i) {
      scalar[i] = evaluator.evaluate_cell(i);
    }
    evaluator.evaluate_range(0, cells, batch.data());
    for (std::size_t i = 0; i < cells; ++i) {
      EXPECT_EQ(batch[i], scalar[i])
          << "row " << row.serial << " cell " << i;
    }
    CurveResult oracle;
    oracle.spec = evaluator.spec();
    oracle.points = evaluator.finalize(scalar);
    const std::string csv = fault::to_csv(oracle);
    for (unsigned threads : {0u, 3u}) {
      EXPECT_EQ(fault::to_csv(fault::evaluate_curve(
                    spec, cost::ComponentLibrary::default_library(), threads)),
                csv)
          << "row " << row.serial << ", " << threads << " threads";
    }
  }
}

// Unaligned ranges: chunk boundaries anywhere in the cell space must
// reproduce the full-range bits (the engine chunks trials arbitrarily).
TEST(DegradationCurve, ArbitraryRangeSplitsAgreeWithFullRange) {
  const fault::CurveEvaluator evaluator(curve_spec());
  const std::size_t cells = evaluator.cell_count();
  std::vector<fault::TrialOutcome> whole(cells);
  evaluator.evaluate_range(0, cells, whole.data());
  std::mt19937_64 rng(5);
  std::uniform_int_distribution<std::size_t> cut(0, cells);
  for (int round = 0; round < 12; ++round) {
    std::size_t a = cut(rng), b = cut(rng);
    if (a > b) std::swap(a, b);
    std::vector<fault::TrialOutcome> part(b - a);
    evaluator.evaluate_range(a, b, part.data());
    for (std::size_t i = a; i < b; ++i) {
      EXPECT_EQ(part[i - a], whole[i]) << "range [" << a << "," << b << ")";
    }
  }
}

TEST(DegradationCurve, SvgRendersAllSeries) {
  const CurveResult result = fault::evaluate_curve(curve_spec());
  const std::string svg = fault::to_svg(result, "degradation");
  EXPECT_NE(svg.find("<svg"), std::string::npos);
  EXPECT_NE(svg.find("yield"), std::string::npos);
  EXPECT_NE(svg.find("connectivity"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Service engine integration: FaultSweepRequest

TEST(EngineFaultSweep, ParallelPathMatchesInlinePathBitForBit) {
  const CurveSpec spec = curve_spec();
  const CurveResult reference = fault::evaluate_curve(spec);

  service::EngineOptions inline_options;
  inline_options.worker_threads = 0;
  service::QueryEngine inline_engine(inline_options);
  const service::QueryResponse inline_response =
      inline_engine.submit(service::Request(service::FaultSweepRequest{spec}))
          .get();
  ASSERT_TRUE(inline_response.ok()) << inline_response.status.to_string();
  ASSERT_NE(inline_response.fault_sweep(), nullptr);
  EXPECT_EQ(inline_response.fault_sweep()->result, reference);

  service::EngineOptions pool_options;
  pool_options.worker_threads = 4;
  service::QueryEngine pool_engine(pool_options);
  const service::QueryResponse pool_response =
      pool_engine.submit(service::Request(service::FaultSweepRequest{spec}))
          .get();
  ASSERT_TRUE(pool_response.ok()) << pool_response.status.to_string();
  ASSERT_NE(pool_response.fault_sweep(), nullptr);
  EXPECT_EQ(pool_response.fault_sweep()->result, reference);
  EXPECT_EQ(fault::to_csv(pool_response.fault_sweep()->result),
            fault::to_csv(reference));

  // Second submission of the same spec is answered from the cache.
  const service::QueryResponse cached =
      pool_engine.submit(service::Request(service::FaultSweepRequest{spec}))
          .get();
  ASSERT_TRUE(cached.ok());
  EXPECT_TRUE(cached.cache_hit);
  EXPECT_EQ(cached.fault_sweep()->result, reference);
  EXPECT_GE(pool_engine.metrics().cache_hits.value(), 1u);
}

// Engine chunk path vs the scalar oracle on a LUT-grain fabric: the
// pool chunks cells across workers, each running the batch kernel; the
// merged curve must render the byte-identical CSV the per-cell
// evaluate_cell oracle reduces to.
TEST(EngineFaultSweep, ChunkedPathMatchesScalarOracleOnLutGrainFabric) {
  CurveSpec spec;
  spec.machine = usp_machine();
  spec.bindings = small_bindings();
  spec.fault_rates = {0.0, 0.1, 0.3};
  spec.trials_per_rate = 8;
  spec.seed = 77;

  const fault::CurveEvaluator evaluator(spec);
  std::vector<fault::TrialOutcome> scalar(evaluator.cell_count());
  for (std::size_t i = 0; i < scalar.size(); ++i) {
    scalar[i] = evaluator.evaluate_cell(i);
  }
  CurveResult oracle;
  oracle.spec = evaluator.spec();
  oracle.points = evaluator.finalize(scalar);

  service::EngineOptions options;
  options.worker_threads = 3;
  service::QueryEngine engine(options);
  const service::QueryResponse response =
      engine.submit(service::Request(service::FaultSweepRequest{spec})).get();
  ASSERT_TRUE(response.ok()) << response.status.to_string();
  ASSERT_NE(response.fault_sweep(), nullptr);
  EXPECT_EQ(response.fault_sweep()->result, oracle);
  EXPECT_EQ(fault::to_csv(response.fault_sweep()->result),
            fault::to_csv(oracle));
}

TEST(EngineFaultSweep, ValidationRejectsMalformedSpecs) {
  service::EngineOptions options;
  options.worker_threads = 0;
  service::QueryEngine engine(options);

  CurveSpec bad_rate = curve_spec();
  bad_rate.fault_rates = {0.1, -0.2};
  EXPECT_EQ(engine.submit(service::Request(service::FaultSweepRequest{bad_rate}))
                .get()
                .status.code,
            service::StatusCode::InvalidRequest);

  CurveSpec bad_trials = curve_spec();
  bad_trials.trials_per_rate = 0;
  EXPECT_EQ(
      engine.submit(service::Request(service::FaultSweepRequest{bad_trials}))
          .get()
          .status.code,
      service::StatusCode::InvalidRequest);

  CurveSpec half_noc = curve_spec();
  half_noc.noc_height = 0;
  EXPECT_EQ(
      engine.submit(service::Request(service::FaultSweepRequest{half_noc}))
          .get()
          .status.code,
      service::StatusCode::InvalidRequest);
  EXPECT_EQ(engine.metrics().failed.value(), 3u);
}

TEST(EngineFaultSweep, BatchOfSpecsAllResolve) {
  service::EngineOptions options;
  options.worker_threads = 2;
  service::QueryEngine engine(options);
  std::vector<service::Request> batch;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    CurveSpec spec = curve_spec();
    spec.seed = seed;
    batch.emplace_back(service::FaultSweepRequest{spec});
  }
  auto futures = engine.submit_batch(std::move(batch));
  ASSERT_EQ(futures.size(), 3u);
  for (std::size_t i = 0; i < futures.size(); ++i) {
    const service::QueryResponse response = futures[i].get();
    ASSERT_TRUE(response.ok()) << i;
    CurveSpec spec = curve_spec();
    spec.seed = i + 1;
    EXPECT_EQ(response.fault_sweep()->result, fault::evaluate_curve(spec));
  }
}

// ---------------------------------------------------------------------------
// Metrics: the expired-in-queue counter

TEST(Metrics, ExpiredInQueueRendersInTableAndCsv) {
  service::MetricsRegistry metrics;
  metrics.expired_in_queue.add(3);
  EXPECT_NE(metrics.to_table({}).find("expired in queue"), std::string::npos);
  EXPECT_NE(metrics.to_csv({}).find("expired_in_queue,3"), std::string::npos);
  EXPECT_NE(metrics.to_table({}).find("latency: fault_sweep"),
            std::string::npos);
}

TEST(Metrics, ExpiredInQueueCountsPostAcceptanceExpiry) {
  service::EngineOptions options;
  options.worker_threads = 1;
  options.start_workers = false;  // let the deadline lapse in the queue
  service::QueryEngine engine(options);

  service::RecommendRequest request;
  request.top_k = 3;
  auto future = engine.submit(service::Request(request),
                              service::Deadline::in(std::chrono::milliseconds(20)));
  const bool rejected_at_submit =
      future.wait_for(std::chrono::seconds(0)) == std::future_status::ready;
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  engine.start();
  const service::QueryResponse response = future.get();
  engine.drain();

  EXPECT_EQ(response.status.code, service::StatusCode::DeadlineExceeded);
  EXPECT_EQ(engine.metrics().rejected_deadline.value(), 1u);
  // Accepted-then-expired increments both counters; a submit-time
  // rejection (slow test machine) increments only rejected_deadline.
  EXPECT_EQ(engine.metrics().expired_in_queue.value(),
            rejected_at_submit ? 0u : 1u);
}

}  // namespace
}  // namespace mpct
