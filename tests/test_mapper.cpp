#include "sim/spatial/mapper.hpp"

#include <gtest/gtest.h>

#include "sim/memory.hpp"

namespace mpct::sim::spatial {
namespace {

std::vector<std::pair<std::string, bool>> adder_inputs(int bits, unsigned a,
                                                       unsigned b,
                                                       bool cin) {
  std::vector<std::pair<std::string, bool>> in;
  for (int i = 0; i < bits; ++i) {
    in.emplace_back("a" + std::to_string(i), (a >> i) & 1u);
    in.emplace_back("b" + std::to_string(i), (b >> i) & 1u);
  }
  in.emplace_back("cin", cin);
  return in;
}

TEST(Mapper, MapsSimpleGateNetlist) {
  Netlist nl;
  const GateId a = nl.add_input("a");
  const GateId b = nl.add_input("b");
  nl.add_output("y", nl.add_xor(a, b));

  LutFabric fabric(4, 4, 4);
  const MappingReport report = map_netlist(nl, fabric);
  EXPECT_EQ(report.cells_used, 1);
  EXPECT_EQ(report.input_index.size(), 2u);
  EXPECT_EQ(report.output_index.size(), 1u);

  const auto in = pack_inputs(report, fabric.primary_inputs(),
                              {{"a", true}, {"b", false}});
  const auto out = unpack_outputs(report, fabric.step(in));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_TRUE(out[0].second);
}

TEST(Mapper, MappedAdderMatchesNetlistSimulation) {
  // The universal-flow claim, executably: the fabric configured as an
  // adder computes exactly what the netlist reference computes.
  const int bits = 4;
  const Netlist adder = build_ripple_adder(bits);
  LutFabric fabric(64, 16, 8);
  const MappingReport report = map_netlist(adder, fabric);
  EXPECT_GT(report.cells_used, bits * 4);  // 5 gates per bit

  for (unsigned a : {0u, 3u, 9u, 15u}) {
    for (unsigned b : {0u, 1u, 7u, 15u}) {
      const auto stimulus = adder_inputs(bits, a, b, false);
      const auto expected = adder.simulate({stimulus})[0];
      const auto fabric_out = fabric.step(
          pack_inputs(report, fabric.primary_inputs(), stimulus));
      const auto named = unpack_outputs(report, fabric_out);
      for (const auto& [name, value] : named) {
        const int index = report.output_index.at(name);
        EXPECT_EQ(value, expected[static_cast<std::size_t>(index)])
            << name << " a=" << a << " b=" << b;
      }
    }
  }
}

TEST(Mapper, MappedCounterCountsOnFabric) {
  const Netlist counter = build_counter(3);
  LutFabric fabric(16, 4, 4);
  const MappingReport report = map_netlist(counter, fabric);

  for (int cycle = 0; cycle < 10; ++cycle) {
    const auto out = fabric.step(
        pack_inputs(report, fabric.primary_inputs(), {{"en", true}}));
    unsigned value = 0;
    for (int bit = 0; bit < 3; ++bit) {
      const int index = report.output_index.at("q" + std::to_string(bit));
      if (out[static_cast<std::size_t>(index)]) value |= 1u << bit;
    }
    EXPECT_EQ(value, static_cast<unsigned>(cycle) % 8) << cycle;
  }
}

TEST(Mapper, SameFabricReconfiguresAcrossParadigms) {
  // One physical fabric, two personalities: first a combinational adder
  // (data flow), then a sequential FSM (instruction flow).  This is
  // Section II-C.3 running.
  LutFabric fabric(64, 16, 8);

  const Netlist adder = build_ripple_adder(2);
  const MappingReport adder_map = map_netlist(adder, fabric);
  const auto sum = fabric.step(pack_inputs(
      adder_map, fabric.primary_inputs(), adder_inputs(2, 1, 2, false)));
  unsigned value = 0;
  for (int bit = 0; bit < 2; ++bit) {
    if (sum[static_cast<std::size_t>(
            adder_map.output_index.at("s" + std::to_string(bit)))]) {
      value |= 1u << bit;
    }
  }
  EXPECT_EQ(value, 3u);

  const Netlist fsm = build_sequence_detector();
  const MappingReport fsm_map = map_netlist(fsm, fabric);  // reconfigure
  const bool inputs[] = {true, true, true};
  std::vector<bool> hits;
  for (bool in : inputs) {
    const auto out = fabric.step(
        pack_inputs(fsm_map, fabric.primary_inputs(), {{"in", in}}));
    hits.push_back(out[static_cast<std::size_t>(
        fsm_map.output_index.at("hit"))]);
  }
  EXPECT_EQ(hits, (std::vector<bool>{false, true, true}));
}

TEST(Mapper, ThrowsWhenFabricTooSmall) {
  const Netlist adder = build_ripple_adder(4);
  LutFabric tiny(2, 16, 8);
  EXPECT_THROW(map_netlist(adder, tiny), SimError);
}

TEST(Mapper, ThrowsWhenPinsExhausted) {
  const Netlist adder = build_ripple_adder(4);  // 9 inputs, 5 outputs
  LutFabric few_inputs(64, 4, 8);
  EXPECT_THROW(map_netlist(adder, few_inputs), SimError);
  LutFabric few_outputs(64, 16, 2);
  EXPECT_THROW(map_netlist(adder, few_outputs), SimError);
}

TEST(Mapper, ThrowsOnInvalidNetlist) {
  Netlist nl;
  nl.add_dff();  // unconnected
  LutFabric fabric(4, 2, 2);
  EXPECT_THROW(map_netlist(nl, fabric), SimError);
}

TEST(Mapper, PackInputsRejectsUnknownName) {
  Netlist nl;
  const GateId a = nl.add_input("a");
  nl.add_output("y", nl.add_not(a));
  LutFabric fabric(2, 2, 2);
  const MappingReport report = map_netlist(nl, fabric);
  EXPECT_THROW(pack_inputs(report, 2, {{"zz", true}}), SimError);
}

}  // namespace
}  // namespace mpct::sim::spatial
