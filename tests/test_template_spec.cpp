#include "arch/template_spec.hpp"

#include <gtest/gtest.h>

#include "arch/adl_parser.hpp"
#include "arch/validate.hpp"
#include "core/flexibility.hpp"
#include "core/taxonomy_table.hpp"

namespace mpct::arch {
namespace {

TaxonomicName name_of(const char* text) {
  return *parse_taxonomic_name(text);
}

TEST(TemplateSpec, MaterialisesIapIV) {
  const auto spec = spec_from_class(name_of("IAP-IV"), 8);
  ASSERT_TRUE(spec.has_value());
  EXPECT_EQ(spec->name, "IAP-IV-template");
  EXPECT_EQ(spec->ips, Count::fixed(1));
  EXPECT_EQ(spec->dps, Count::fixed(8));
  EXPECT_EQ(spec->at(ConnectivityRole::DpDm).to_string(), "8x8");
  EXPECT_EQ(spec->at(ConnectivityRole::DpDp).to_string(), "8x8");
  EXPECT_EQ(spec->at(ConnectivityRole::IpDp).to_string(), "1-8");
  EXPECT_EQ(spec->at(ConnectivityRole::IpIp).to_string(), "none");
}

TEST(TemplateSpec, UniversalClassUsesVariableCounts) {
  const auto spec = spec_from_class(name_of("USP"), 8);
  ASSERT_TRUE(spec.has_value());
  EXPECT_EQ(spec->granularity, Granularity::Lut);
  EXPECT_EQ(spec->ips, Count::variable());
  EXPECT_EQ(spec->at(ConnectivityRole::DpDp).to_string(), "vxv");
}

TEST(TemplateSpec, RejectsBadInputs) {
  EXPECT_EQ(spec_from_class(TaxonomicName{MachineType::DataFlow,
                                          ProcessingType::ArrayProcessor,
                                          1}),
            std::nullopt);
  EXPECT_EQ(spec_from_class(name_of("IAP-IV"), 1), std::nullopt);
}

/// Property over all 43 canonical classes: the materialised template is
/// structurally valid, classifies back to its own class, keeps the
/// class's flexibility, and round-trips through the ADL.
TEST(TemplateSpec, EveryClassRoundTrips) {
  for (const TaxonomyEntry& row : extended_taxonomy()) {
    if (!row.name) continue;
    const auto spec = spec_from_class(*row.name, 16);
    ASSERT_TRUE(spec.has_value()) << to_string(*row.name);
    EXPECT_TRUE(is_valid(*spec)) << to_string(*row.name);
    const Classification result = spec->classify();
    ASSERT_TRUE(result.ok()) << to_string(*row.name);
    EXPECT_EQ(*result.name, *row.name);
    EXPECT_EQ(spec->flexibility().total(),
              flexibility_score(row.machine))
        << to_string(*row.name);
    const ParseResult parsed = parse_single_adl(to_adl(*spec));
    ASSERT_TRUE(parsed.ok()) << to_string(*row.name);
    EXPECT_EQ(parsed.specs[0], *spec) << to_string(*row.name);
  }
}

}  // namespace
}  // namespace mpct::arch
