/// End-to-end tests of the TCP transport (src/net) over loopback: every
/// request type served over the wire is bit-for-bit equal to the inline
/// QueryEngine result, pipelined responses complete out of order keyed
/// by request id, deadlines travel on the wire and expire as typed
/// responses, backpressure surfaces as QueueFull frames, malformed
/// payloads as ProtocolError frames, and graceful shutdown drains
/// mid-traffic.  The multi-threaded cases run under TSan in CI.
#include <gtest/gtest.h>

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <mutex>
#include <thread>
#include <vector>

#include "arch/registry.hpp"
#include "net/net.hpp"
#include "net/trace_stream.hpp"
#include "service/service.hpp"
#include "trace/collector.hpp"
#include "trace/trace.hpp"
#include "wire/wire.hpp"

namespace {

using namespace mpct;
using service::Request;
using service::QueryResponse;
using service::StatusCode;

Request classify_spec_request() {
  return service::ClassifyRequest::of(arch::surveyed_architectures()[2]);
}

Request classify_adl_request() {
  return service::ClassifyRequest::of_adl(
      arch::to_adl(*arch::find_architecture("MorphoSys")));
}

Request recommend_request() {
  service::RecommendRequest req;
  req.requirements.min_flexibility = 3;
  req.requirements.needs_pe_exchange = true;
  req.top_k = 5;
  return req;
}

Request cost_request() {
  service::CostRequest req;
  req.target = arch::surveyed_architectures()[4];
  req.n_sweep = {4, 8, 16};
  return req;
}

Request sweep_request() {
  service::SweepRequest req;
  req.grid.base.min_flexibility = 2;
  req.grid.n_values = {4, 16};
  req.grid.lut_budgets = {256, 1024};
  req.grid.objectives = {explore::Requirements::Objective::MinConfigBits,
                         explore::Requirements::Objective::MinArea};
  return req;
}

Request fault_sweep_request() {
  service::FaultSweepRequest req;
  MachineClass mc;
  mc.granularity = Granularity::IpDp;
  mc.ips = Multiplicity::Many;
  mc.dps = Multiplicity::Many;
  mc.set_switch(ConnectivityRole::IpDp, SwitchKind::Crossbar);
  mc.set_switch(ConnectivityRole::DpDm, SwitchKind::Crossbar);
  req.spec.machine = mc;
  req.spec.bindings.n = 4;
  req.spec.fault_rates = {0.0, 0.1};
  req.spec.trials_per_rate = 4;
  req.spec.seed = 42;
  return req;
}

std::vector<Request> all_requests() {
  std::vector<Request> requests;
  requests.push_back(classify_spec_request());
  requests.push_back(classify_adl_request());
  requests.push_back(recommend_request());
  requests.push_back(cost_request());
  requests.push_back(sweep_request());
  requests.push_back(fault_sweep_request());
  return requests;
}

net::ClientOptions client_options(std::uint16_t port,
                                  service::MetricsRegistry* metrics =
                                      nullptr) {
  net::ClientOptions options;
  options.port = port;
  options.metrics = metrics;
  return options;
}

/// Bit-for-bit response parity: payload and status must match exactly;
/// latency / cache_hit are measurements, not results.
void expect_payload_parity(const QueryResponse& wire,
                           const QueryResponse& inline_ref) {
  EXPECT_EQ(wire.status, inline_ref.status);
  ASSERT_EQ(wire.payload == nullptr, inline_ref.payload == nullptr);
  if (wire.payload) {
    EXPECT_TRUE(*wire.payload == *inline_ref.payload);
  }
}

/// Raw frame exchange for tests that need byte-level control: write
/// @p out, then read until one complete frame arrives (or ~2 s pass).
/// Empty result = connection closed / timed out.
std::vector<std::uint8_t> raw_exchange(std::uint16_t port,
                                       const std::vector<std::uint8_t>& out,
                                       bool expect_reply = true) {
  std::string error;
  net::Socket sock = net::connect_tcp("127.0.0.1", port, 2000, error);
  if (!sock.valid()) return {};
  std::size_t sent = 0;
  std::vector<std::uint8_t> in;
  for (int rounds = 0; rounds < 200; ++rounds) {
    pollfd pfd{sock.fd(), POLLIN, 0};
    if (sent < out.size()) pfd.events |= POLLOUT;
    ::poll(&pfd, 1, 50);
    if ((pfd.revents & POLLOUT) && sent < out.size()) {
      const ssize_t n = ::send(sock.fd(), out.data() + sent,
                               out.size() - sent, MSG_NOSIGNAL);
      if (n > 0) sent += static_cast<std::size_t>(n);
    }
    if (pfd.revents & (POLLIN | POLLHUP | POLLERR)) {
      std::uint8_t buf[4096];
      const ssize_t n = ::recv(sock.fd(), buf, sizeof(buf), 0);
      if (n <= 0) return {};  // closed
      in.insert(in.end(), buf, buf + n);
      const wire::FrameScan scan = wire::scan_frame(in.data(), in.size());
      if (scan.state == wire::FrameScan::State::Ready) {
        in.resize(scan.frame_size);
        return in;
      }
    }
    if (!expect_reply && sent == out.size()) return in;
  }
  return {};
}

// ---------------------------------------------------------------------------

TEST(NetServer, EveryRequestTypeServedOverLoopbackMatchesInline) {
  service::EngineOptions options;
  options.worker_threads = 2;
  service::QueryEngine engine(options);
  net::Server server(engine);
  ASSERT_TRUE(server.start()) << server.error();

  // The reference engine is configured identically; responses are pure
  // functions of (request, component library), so the payloads must be
  // bit-identical however many threads and sockets sit in between.
  service::EngineOptions ref_options;
  ref_options.worker_threads = 0;
  service::QueryEngine reference(ref_options);

  net::Client client(client_options(server.port()));
  for (const Request& request : all_requests()) {
    const QueryResponse wire_response = client.call(request);
    const QueryResponse inline_response = reference.execute(request);
    ASSERT_TRUE(wire_response.ok())
        << wire_response.status.to_string();
    expect_payload_parity(wire_response, inline_response);
  }
  server.stop();
  EXPECT_GE(engine.metrics().net_frames_in.value(), 6u);
  EXPECT_GE(engine.metrics().net_frames_out.value(), 6u);
  EXPECT_GT(engine.metrics().net_bytes_in.value(), 0u);
  EXPECT_GT(engine.metrics().net_bytes_out.value(), 0u);
  EXPECT_EQ(engine.metrics().net_connections_opened.value(), 1u);
}

TEST(NetServer, PipelinedBatchCompletesOutOfOrderByRequestId) {
  service::EngineOptions options;
  options.worker_threads = 4;
  service::QueryEngine engine(options);
  net::Server server(engine);
  ASSERT_TRUE(server.start()) << server.error();

  // One slow Monte-Carlo sweep pipelined ahead of many fast classifies:
  // workers finish the classifies first, so the server writes their
  // responses before the sweep's — the client must reassemble by id.
  std::vector<Request> batch;
  batch.push_back(fault_sweep_request());
  const auto& specs = arch::surveyed_architectures();
  for (std::size_t i = 0; i < 8; ++i) {
    batch.push_back(service::ClassifyRequest::of(specs[i % specs.size()]));
  }

  service::EngineOptions ref_options;
  ref_options.worker_threads = 0;
  service::QueryEngine reference(ref_options);

  net::Client client(client_options(server.port()));
  const auto responses = client.call_batch(batch);
  ASSERT_EQ(responses.size(), batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    ASSERT_TRUE(responses[i].ok()) << i << ": "
                                   << responses[i].status.to_string();
    expect_payload_parity(responses[i], reference.execute(batch[i]));
  }
}

TEST(NetServer, WireDeadlineExpiresAsTypedResponse) {
  // Workers deliberately not started: the request must age out in the
  // queue, and the 1 ms deadline that travelled on the wire must come
  // back as a DeadlineExceeded *response*, not a hang or a cut stream.
  service::EngineOptions options;
  options.worker_threads = 1;
  options.start_workers = false;
  service::QueryEngine engine(options);
  net::Server server(engine);
  ASSERT_TRUE(server.start()) << server.error();

  const auto frame =
      wire::encode_request_frame(7, classify_spec_request(), 1 /*ms*/);
  std::thread starter([&engine] {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    engine.start();
  });
  const auto reply = raw_exchange(server.port(), frame);
  starter.join();
  ASSERT_FALSE(reply.empty());
  const auto decoded = wire::decode_response_frame(reply.data(), reply.size());
  ASSERT_TRUE(decoded.ok()) << decoded.error.to_string();
  EXPECT_EQ(decoded.value->request_id, 7u);
  EXPECT_EQ(decoded.value->response.status.code,
            StatusCode::DeadlineExceeded);
}

TEST(NetServer, BackpressureSurfacesAsQueueFullFrames) {
  // queue_capacity 1 with parked workers: of a pipelined burst, exactly
  // one request is queued and the rest must bounce as typed QueueFull
  // responses on the wire — never silent drops, never blocked reads.
  service::EngineOptions options;
  options.worker_threads = 1;
  options.queue_capacity = 1;
  options.start_workers = false;
  options.enable_cache = false;
  service::QueryEngine engine(options);
  net::Server server(engine);
  ASSERT_TRUE(server.start()) << server.error();

  const auto& specs = arch::surveyed_architectures();
  std::vector<Request> batch;
  for (std::size_t i = 0; i < 6; ++i) {
    batch.push_back(service::ClassifyRequest::of(specs[i]));
  }
  std::thread starter([&engine] {
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    engine.start();
  });
  net::Client client(client_options(server.port()));
  const auto responses = client.call_batch(batch);
  starter.join();

  ASSERT_EQ(responses.size(), batch.size());
  std::size_t ok = 0;
  std::size_t queue_full = 0;
  for (const auto& response : responses) {
    if (response.ok()) ++ok;
    if (response.status.code == StatusCode::QueueFull) ++queue_full;
  }
  EXPECT_EQ(ok + queue_full, batch.size());
  EXPECT_GE(ok, 1u);
  EXPECT_GE(queue_full, 1u);
}

TEST(NetServer, MalformedPayloadGetsProtocolErrorAndStreamSurvives) {
  service::EngineOptions options;
  options.worker_threads = 1;
  service::QueryEngine engine(options);
  net::Server server(engine);
  ASSERT_TRUE(server.start()) << server.error();

  // Well-framed garbage: valid header, payload of 0xFF.  The server
  // must answer ProtocolError (keyed by our id), not kill the stream.
  auto bad = wire::encode_request_frame(55, classify_spec_request());
  for (std::size_t i = wire::kHeaderSize; i < bad.size(); ++i) bad[i] = 0xFF;
  auto reply = raw_exchange(server.port(), bad);
  ASSERT_FALSE(reply.empty());
  auto decoded = wire::decode_response_frame(reply.data(), reply.size());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value->request_id, 55u);
  EXPECT_EQ(decoded.value->response.status.code, StatusCode::ProtocolError);
  EXPECT_GE(engine.metrics().net_decode_errors.value(), 1u);

  // A broken *header* is different: framing is unrecoverable, so the
  // server closes the connection instead of answering.
  std::vector<std::uint8_t> junk(64, 'J');
  EXPECT_TRUE(raw_exchange(server.port(), junk).empty());
}

TEST(NetServer, GracefulStopDrainsMidTraffic) {
  service::EngineOptions options;
  options.worker_threads = 2;
  service::QueryEngine engine(options);
  net::Server server(engine);
  ASSERT_TRUE(server.start()) << server.error();

  std::atomic<bool> done{false};
  std::atomic<int> answered{0};
  std::thread traffic([&] {
    net::ClientOptions copts = client_options(server.port());
    copts.max_retries = 0;  // a cut connection at stop() is expected
    net::Client client(copts);
    const auto& specs = arch::surveyed_architectures();
    std::size_t i = 0;
    while (!done.load(std::memory_order_acquire)) {
      const QueryResponse response =
          client.call(service::ClassifyRequest::of(specs[i++ % specs.size()]));
      // Every outcome must be typed: a real answer while the server is
      // up, Unavailable once it went away — never a hang or a crash.
      if (response.ok()) {
        answered.fetch_add(1, std::memory_order_relaxed);
      } else {
        EXPECT_EQ(response.status.code, StatusCode::Unavailable);
      }
    }
  });

  // Let some traffic flow, then stop mid-stream.
  while (answered.load(std::memory_order_acquire) < 5) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  server.stop();
  done.store(true, std::memory_order_release);
  traffic.join();
  EXPECT_GE(answered.load(), 5);
  EXPECT_FALSE(server.running());
  EXPECT_EQ(engine.metrics().net_active_connections.value(), 0);
}

TEST(NetClient, UnreachableServerYieldsUnavailableAfterRetries) {
  // Grab an ephemeral port, then close the listener: nobody is home.
  service::EngineOptions eopts;
  eopts.worker_threads = 0;
  service::QueryEngine probe_engine(eopts);
  std::uint16_t dead_port = 0;
  {
    net::Server probe(probe_engine);
    ASSERT_TRUE(probe.start());
    dead_port = probe.port();
    probe.stop();
  }

  service::MetricsRegistry metrics;
  net::ClientOptions options = client_options(dead_port, &metrics);
  options.max_retries = 2;
  options.initial_backoff = std::chrono::milliseconds(1);
  options.connect_timeout = std::chrono::milliseconds(200);
  net::Client client(options);
  const QueryResponse response = client.call(classify_spec_request());
  EXPECT_EQ(response.status.code, StatusCode::Unavailable);
  EXPECT_FALSE(response.status.message.empty());
  EXPECT_EQ(metrics.net_retries.value(), 2u);
  // Retries re-send the *same* logical request: it is counted once, not
  // once per wire attempt (hedges would tick net_hedges_sent instead).
  EXPECT_EQ(metrics.net_requests_sent.value(), 1u);
  EXPECT_EQ(metrics.net_hedges_sent.value(), 0u);
}

TEST(NetClient, RequestAccountingCountsLogicalRequestsOnce) {
  service::EngineOptions options;
  options.worker_threads = 2;
  service::QueryEngine engine(options);
  net::Server server(engine);
  ASSERT_TRUE(server.start()) << server.error();

  service::MetricsRegistry metrics;
  net::Client client(client_options(server.port(), &metrics));
  const auto responses = client.call_batch(all_requests());
  for (const auto& response : responses) ASSERT_TRUE(response.ok());
  EXPECT_EQ(metrics.net_requests_sent.value(), all_requests().size());
  EXPECT_EQ(metrics.net_retries.value(), 0u);
  EXPECT_EQ(metrics.net_hedges_sent.value(), 0u);
}

// ---------------------------------------------------------------------------
// Protocol version negotiation (wire v2)

TEST(NetVersion, NegotiateAgreesOnTheHighestCommonVersion) {
  service::EngineOptions options;
  options.worker_threads = 1;
  service::QueryEngine engine(options);
  net::Server server(engine);
  ASSERT_TRUE(server.start()) << server.error();

  net::Client client(client_options(server.port()));
  const auto status = client.negotiate();
  ASSERT_TRUE(status.ok()) << status.to_string();
  EXPECT_EQ(client.agreed_version(), wire::kProtocolVersion);
  // The negotiated connection still serves traffic.
  EXPECT_TRUE(client.call(classify_spec_request()).ok());
}

TEST(NetVersion, OldV1ClientIsStillServed) {
  service::EngineOptions options;
  options.worker_threads = 2;
  service::QueryEngine engine(options);
  net::Server server(engine);
  ASSERT_TRUE(server.start()) << server.error();

  service::EngineOptions ref_options;
  ref_options.worker_threads = 0;
  service::QueryEngine reference(ref_options);

  // A client pinned to protocol v1 (an old binary): every request frame
  // goes out with the short header, and the server must answer each at
  // v1 — bit-identical payloads, no version bleed.
  net::ClientOptions copts = client_options(server.port());
  copts.protocol_version = 1;
  net::Client v1_client(copts);
  const auto status = v1_client.negotiate();
  ASSERT_TRUE(status.ok()) << status.to_string();
  EXPECT_EQ(v1_client.agreed_version(), 1u);
  for (const Request& request : all_requests()) {
    const QueryResponse wire_response = v1_client.call(request);
    ASSERT_TRUE(wire_response.ok()) << wire_response.status.to_string();
    expect_payload_parity(wire_response, reference.execute(request));
  }
}

TEST(NetVersion, ImpossibleRangeGetsTypedUnsupportedVersion) {
  service::EngineOptions options;
  options.worker_threads = 1;
  service::QueryEngine engine(options);
  net::Server server(engine);
  ASSERT_TRUE(server.start()) << server.error();

  // A future client speaking only versions we do not: the server must
  // answer a typed UnsupportedVersion HelloAck, not cut the stream.
  const auto hello = wire::encode_hello_frame(4, 99, 104);
  const auto reply = raw_exchange(server.port(), hello);
  ASSERT_FALSE(reply.empty());
  const auto ack = wire::decode_hello_ack_frame(reply.data(), reply.size());
  ASSERT_TRUE(ack.ok()) << ack.error.to_string();
  EXPECT_EQ(ack.value->request_id, 4u);
  EXPECT_EQ(ack.value->status.code, StatusCode::UnsupportedVersion);
}

TEST(NetVersion, PingPongRoundTrips) {
  service::EngineOptions options;
  options.worker_threads = 0;  // pings never touch the engine
  service::QueryEngine engine(options);
  net::Server server(engine);
  ASSERT_TRUE(server.start()) << server.error();

  net::Client client(client_options(server.port()));
  std::string error;
  EXPECT_TRUE(client.ping(std::chrono::milliseconds(2000), error)) << error;
}

// ---------------------------------------------------------------------------
// Streaming flight-recorder export (net::TraceStreamer -> span_sink)

/// The Tracer is process-wide; these tests bracket themselves with a
/// full reset so earlier suites' buffers contribute nothing.
void reset_tracer() {
  trace::Tracer::instance().disable();
  trace::Tracer::instance().set_capacity_per_thread(
      trace::Tracer::kDefaultCapacity);
  trace::Tracer::instance().clear();
}

/// End-to-end assembly parity: spans recorded in-process must arrive at
/// the collector over the wire bit-identical to the inline snapshot
/// view of the same trace.  Runs under TSan in CI.
TEST(NetTrace, StreamerShipsSpansToTheCollectorWithParity) {
  reset_tracer();
  service::EngineOptions eopts;
  eopts.worker_threads = 0;
  service::QueryEngine engine(eopts);

  trace::Collector collector;
  std::mutex received_mutex;
  std::vector<trace::ExportSpan> received;
  net::ServerOptions sopts;
  sopts.span_sink = [&](wire::SpanBatchFrame frame) {
    std::lock_guard<std::mutex> lock(received_mutex);
    collector.ingest(frame.batch, trace::Tracer::instance().now_ns());
    for (const trace::ExportSpan& span : frame.batch.spans) {
      received.push_back(span);
    }
  };
  net::Server server(engine, sopts);
  ASSERT_TRUE(server.start()) << server.error();

  constexpr std::uint64_t kTrace = 0x7ace;
  trace::Tracer::instance().enable();
  {
    trace::TraceContextScope context(kTrace);
    {
      trace::ScopedSpan a("parity.a", trace::Category::Core, "i", 1);
      trace::ScopedSpan b("parity.b", trace::Category::Cost);
    }
    trace::emit_instant("parity.mark", trace::Category::Mark);
  }
  // Inline reference BEFORE the streamer runs: snapshot() does not move
  // the export cursor, so the streamer still ships the same spans.
  std::vector<trace::ExportSpan> expected;
  for (const trace::Span& span : trace::Tracer::instance().snapshot().spans) {
    if (span.trace_id == kTrace) {
      expected.push_back(trace::ExportSpan::of(span));
    }
  }
  ASSERT_EQ(expected.size(), 3u);

  net::TraceStreamerOptions topts;
  topts.port = server.port();
  topts.node = "parity-node";
  topts.interval = std::chrono::milliseconds(5);
  net::TraceStreamer streamer(topts);
  ASSERT_TRUE(streamer.start()) << streamer.error();

  // Wait for the wire copies (the enabled tracer also records server
  // loop spans with trace id 0 — the filter below ignores them).
  std::vector<trace::ExportSpan> wire_spans;
  for (int round = 0; round < 400; ++round) {
    {
      std::lock_guard<std::mutex> lock(received_mutex);
      wire_spans.clear();
      for (const trace::ExportSpan& span : received) {
        if (span.trace_id == kTrace) wire_spans.push_back(span);
      }
    }
    if (wire_spans.size() >= expected.size()) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  streamer.stop();
  server.stop();
  trace::Tracer::instance().disable();

  const auto by_id = [](const trace::ExportSpan& a,
                        const trace::ExportSpan& b) { return a.id < b.id; };
  std::sort(wire_spans.begin(), wire_spans.end(), by_id);
  std::sort(expected.begin(), expected.end(), by_id);
  EXPECT_EQ(wire_spans, expected);  // bit-for-bit across the wire

  EXPECT_EQ(streamer.spans_dropped(), 0u);
  EXPECT_EQ(streamer.spans_sampled_out(), 0u);
  EXPECT_GE(streamer.batches_sent(), 1u);
  EXPECT_GE(collector.stats().batches, 1u);
  EXPECT_EQ(collector.node_count(kTrace), 1u);
  const std::string timeline = collector.assemble(kTrace);
  EXPECT_NE(timeline.find("parity.a"), std::string::npos);
  EXPECT_NE(timeline.find("\"name\":\"parity-node\""), std::string::npos);
  reset_tracer();
}

/// Drop accounting under a stalled collector: a listener that never
/// accepts cannot empty the outbox, so once the back-pressure bound is
/// hit every batch is shed whole and counted — memory stays bounded and
/// the hot path never blocks.
TEST(NetTrace, StalledCollectorShedsBatchesAndCountsEveryDrop) {
  reset_tracer();
  // A raw listener nobody ever accepts from: the streamer's connect
  // succeeds (kernel backlog) but nothing drains the pipe.
  const int listener = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(listener, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  ASSERT_EQ(::bind(listener, reinterpret_cast<sockaddr*>(&addr),
                   sizeof(addr)),
            0);
  ASSERT_EQ(::listen(listener, 1), 0);
  socklen_t addr_len = sizeof(addr);
  ASSERT_EQ(::getsockname(listener, reinterpret_cast<sockaddr*>(&addr),
                          &addr_len),
            0);

  service::MetricsRegistry metrics;
  net::TraceStreamerOptions topts;
  topts.port = ntohs(addr.sin_port);
  topts.node = "stalled";
  topts.interval = std::chrono::milliseconds(2);
  // A bound smaller than any span-bearing frame: every non-empty batch
  // sheds deterministically, whatever the kernel buffers absorb.
  topts.max_outbox_bytes = 256;
  topts.metrics = &metrics;
  net::TraceStreamer streamer(topts);
  ASSERT_TRUE(streamer.start()) << streamer.error();

  trace::Tracer::instance().enable();
  constexpr int kRounds = 20;
  constexpr int kPerRound = 1024;
  for (int round = 0; round < kRounds; ++round) {
    for (int i = 0; i < kPerRound; ++i) {
      trace::ScopedSpan span("stall.span", trace::Category::Core);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  trace::Tracer::instance().disable();
  streamer.stop();  // final pump drains whatever the rings still hold

  // Every recorded span is accounted for exactly once — exported (a
  // rare tiny batch can slip under the bound), shed with its batch, or
  // lost to ring wrap — never silently vanished.
  EXPECT_GT(streamer.spans_dropped(), 0u);
  EXPECT_GT(streamer.batches_dropped(), 0u);
  EXPECT_EQ(streamer.spans_exported() + streamer.spans_dropped(),
            static_cast<std::uint64_t>(kRounds * kPerRound));
  EXPECT_EQ(streamer.spans_sampled_out(), 0u);
  // The Prometheus mirror carries the same totals.
  EXPECT_EQ(metrics.trace_spans_dropped.value(), streamer.spans_dropped());
  EXPECT_EQ(metrics.trace_batches_dropped.value(),
            streamer.batches_dropped());
  ::close(listener);
  reset_tracer();
}

TEST(NetClient, DeadlineAlreadyExpiredShortCircuitsLocally) {
  service::EngineOptions options;
  options.worker_threads = 0;
  service::QueryEngine engine(options);
  net::Server server(engine);
  ASSERT_TRUE(server.start()) << server.error();

  net::Client client(client_options(server.port()));
  const QueryResponse response = client.call(
      classify_spec_request(),
      service::Deadline::at_time(service::Clock::now() -
                                 std::chrono::seconds(1)));
  EXPECT_EQ(response.status.code, StatusCode::DeadlineExceeded);
  // Nothing was sent: the server saw no frames from this client.
  EXPECT_EQ(engine.metrics().net_frames_in.value(), 0u);
}

}  // namespace
