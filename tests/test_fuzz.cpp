/// Randomised property sweeps: 1000 machine structures drawn from a
/// seeded generator, checked against the library's core invariants.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "core/classifier.hpp"
#include "core/comparison.hpp"
#include "core/flexibility.hpp"
#include "core/flynn.hpp"
#include "core/taxonomy_table.hpp"
#include "cost/area_model.hpp"
#include "cost/config_bits.hpp"
#include "fault/fault.hpp"
#include "interconnect/traffic.hpp"
#include "service/service.hpp"
#include "trace/export.hpp"
#include "wire/wire.hpp"

namespace mpct {
namespace {

using interconnect::Rng;

MachineClass random_class(Rng& rng) {
  MachineClass mc;
  mc.granularity =
      rng.next_below(8) == 0 ? Granularity::Lut : Granularity::IpDp;
  mc.ips = static_cast<Multiplicity>(rng.next_below(4));
  mc.dps = static_cast<Multiplicity>(rng.next_below(4));
  for (ConnectivityRole role : kAllConnectivityRoles) {
    mc.set_switch(role, static_cast<SwitchKind>(rng.next_below(3)));
  }
  return mc;
}

TEST(Fuzz, ClassifierNeverCrashesAndRoundTrips) {
  Rng rng(2012);
  int classified = 0;
  for (int i = 0; i < 1000; ++i) {
    const MachineClass mc = random_class(rng);
    const Classification result = classify(mc);
    if (!result.ok()) {
      EXPECT_FALSE(result.note.empty()) << to_string(mc);
      continue;
    }
    ++classified;
    // The name decodes to a canonical class that classifies to itself.
    const auto canonical = canonical_class(*result.name);
    ASSERT_TRUE(canonical.has_value()) << to_string(mc);
    const Classification again = classify(*canonical);
    ASSERT_TRUE(again.ok());
    EXPECT_EQ(*again.name, *result.name) << to_string(mc);
  }
  // The generator should hit plenty of classifiable shapes.
  EXPECT_GT(classified, 200);
}

TEST(Fuzz, FlexibilityBoundsAndBreakdownConsistency) {
  Rng rng(88);
  for (int i = 0; i < 1000; ++i) {
    const MachineClass mc = random_class(rng);
    const FlexibilityBreakdown b = flexibility(mc);
    EXPECT_GE(b.total(), 0);
    EXPECT_LE(b.total(), 8);  // USP is the ceiling
    EXPECT_EQ(b.total(), b.many_ips + b.many_dps + b.crossbar_switches +
                             b.variability_bonus);
    EXPECT_LE(b.crossbar_switches, 5);
  }
}

TEST(Fuzz, SubtypeEncodesSwitchKindsExactly) {
  // For every classifiable coarse structure, the canonical class decoded
  // from its name agrees on the crossbar-ness of every column the
  // sub-type numeral encodes (all except IP-IP, where any connectivity
  // marks the class spatial whether or not it is a full crossbar).
  Rng rng(404);
  for (int i = 0; i < 1000; ++i) {
    const MachineClass mc = random_class(rng);
    const Classification result = classify(mc);
    if (!result.ok()) continue;
    if (mc.granularity == Granularity::Lut) continue;  // USP normalises
    const MachineClass canonical = *canonical_class(*result.name);
    // Which columns the family's numeral encodes: the DP-side pair for
    // DMP/IAP, all four for IMP/ISP; uni-processors encode none.
    std::vector<ConnectivityRole> encoded;
    if (result.name->machine_type == MachineType::InstructionFlow &&
        (result.name->processing_type == ProcessingType::MultiProcessor ||
         result.name->processing_type ==
             ProcessingType::SpatialProcessor)) {
      encoded = {ConnectivityRole::IpDp, ConnectivityRole::IpIm,
                 ConnectivityRole::DpDm, ConnectivityRole::DpDp};
    } else if (result.name->subtype > 0) {
      encoded = {ConnectivityRole::DpDm, ConnectivityRole::DpDp};
    }
    for (ConnectivityRole role : encoded) {
      EXPECT_EQ(is_flexible_switch(mc.switch_at(role)),
                is_flexible_switch(canonical.switch_at(role)))
          << to_string(mc) << " role " << to_string(role);
    }
  }
}

TEST(Fuzz, MorphPartialOrderProperties) {
  // Reflexivity and transitivity over the canonical classes (sampled
  // pairs/triples).
  std::vector<TaxonomicName> names;
  for (const TaxonomyEntry& row : extended_taxonomy()) {
    if (row.name) names.push_back(*row.name);
  }
  Rng rng(7);
  for (int i = 0; i < 2000; ++i) {
    const TaxonomicName& a = names[rng.next_below(names.size())];
    const TaxonomicName& b = names[rng.next_below(names.size())];
    const TaxonomicName& c = names[rng.next_below(names.size())];
    EXPECT_TRUE(can_morph_into(a, a));
    if (can_morph_into(a, b) && can_morph_into(b, c)) {
      EXPECT_TRUE(can_morph_into(a, c))
          << to_string(a) << " -> " << to_string(b) << " -> "
          << to_string(c);
    }
  }
}

TEST(Fuzz, CostModelsAreFiniteAndNonNegative) {
  const cost::ComponentLibrary lib = cost::ComponentLibrary::default_library();
  Rng rng(5150);
  for (int i = 0; i < 500; ++i) {
    const MachineClass mc = random_class(rng);
    cost::EstimateOptions options;
    options.n = 1 + static_cast<std::int64_t>(rng.next_below(64));
    options.v = 1 + static_cast<std::int64_t>(rng.next_below(1024));
    const auto area = cost::estimate_area(mc, lib, options);
    EXPECT_GE(area.total_kge(), 0);
    EXPECT_TRUE(std::isfinite(area.total_kge()));
    const auto bits = cost::estimate_config_bits(mc, lib, options);
    EXPECT_GE(bits.total(), 0);
    EXPECT_GE(bits.total(), bits.switch_bits());
  }
}

TEST(Fuzz, FlynnProjectionAgreesWithClassifier) {
  Rng rng(1966);
  for (int i = 0; i < 1000; ++i) {
    const MachineClass mc = random_class(rng);
    const auto flynn = flynn_class(mc);
    const Classification result = classify(mc);
    if (!result.ok()) continue;
    switch (result.name->machine_type) {
      case MachineType::DataFlow:
      case MachineType::UniversalFlow:
        EXPECT_EQ(flynn, std::nullopt);
        break;
      case MachineType::InstructionFlow:
        ASSERT_TRUE(flynn.has_value());
        switch (result.name->processing_type) {
          case ProcessingType::UniProcessor:
            EXPECT_EQ(*flynn, FlynnClass::SISD);
            break;
          case ProcessingType::ArrayProcessor:
            EXPECT_EQ(*flynn, FlynnClass::SIMD);
            break;
          default:
            EXPECT_EQ(*flynn, FlynnClass::MIMD);
        }
        break;
    }
  }
}

TEST(Fuzz, FaultSetApplicationNeverCrashes) {
  // Random structures x random fault sets (sampled and hand-scattered,
  // including out-of-range component indices): degrade() must always
  // come back with a valid classification or a well-typed error, keep
  // every fraction in range, and never gain flexibility.
  Rng rng(31337);
  const cost::ComponentLibrary lib = cost::ComponentLibrary::default_library();
  for (int i = 0; i < 300; ++i) {
    const MachineClass mc = random_class(rng);
    cost::EstimateOptions bindings;
    bindings.n = 1 + static_cast<std::int64_t>(rng.next_below(8));
    bindings.v = 1 + static_cast<std::int64_t>(rng.next_below(32));
    const fault::FabricShape shape = fault::FabricShape::of(mc, bindings);
    fault::FaultSet faults = fault::sample_faults(
        shape, fault::FaultRates::uniform(rng.next_double()), rng.next());
    // Scatter in faults the shape cannot contain; they must be inert or
    // harmless, never fatal.
    for (int extra = 0; extra < 3; ++extra) {
      faults.add(static_cast<fault::FaultKind>(rng.next_below(6)),
                 static_cast<std::int32_t>(rng.next_below(4096)));
    }
    const fault::DegradeResult result =
        fault::degrade(mc, shape, faults, lib, bindings);
    EXPECT_TRUE(result.classification.ok() ||
                !result.classification.note.empty())
        << to_string(mc);
    EXPECT_GE(result.component_survival, 0.0);
    EXPECT_LE(result.component_survival, 1.0);
    EXPECT_GE(result.flexibility_retention(), 0.0);
    EXPECT_LE(result.flexibility_retention(), 1.0);
    EXPECT_GE(result.surviving_ips, 0);
    EXPECT_LE(result.surviving_ips, shape.ips);
    EXPECT_GE(result.surviving_dps, 0);
    EXPECT_LE(result.surviving_dps, shape.dps);
    if (result.original_classification.ok() && result.classification.ok()) {
      EXPECT_LE(result.degraded_score, result.original_score) << to_string(mc);
    }
    // Degradation is idempotent: re-applying the same set to the
    // degraded structure cannot change the class again.
    if (result.alive()) {
      const fault::FabricShape degraded_shape =
          fault::FabricShape::of(result.degraded, bindings);
      const fault::DegradeResult again =
          fault::degrade(result.degraded, degraded_shape, fault::FaultSet{},
                         lib, bindings);
      EXPECT_EQ(again.degraded, result.degraded);
    }
  }
}

TEST(Fuzz, SkillicornProjectionIsIdempotent) {
  Rng rng(1988);
  for (int i = 0; i < 1000; ++i) {
    const MachineClass mc = random_class(rng);
    const SkillicornProjection once = project_to_skillicorn(mc);
    const SkillicornProjection twice =
        project_to_skillicorn(once.projected);
    EXPECT_EQ(twice.projected, once.projected);
    EXPECT_FALSE(twice.required_extension);
  }
}

// ---------------------------------------------------------------------------
// Wire decoder (src/wire): untrusted bytes must always produce a typed
// verdict — NeedMore / Bad / a decoded frame / a WireError — and never
// crash, hang, or read out of bounds.  CI runs this under ASan/UBSan,
// which is what turns "never overreads" from a comment into a check.

/// Feed one buffer through the full decode path the server uses.
void decode_untrusted(const std::uint8_t* data, std::size_t size) {
  const wire::FrameScan scan = wire::scan_frame(data, size);
  switch (scan.state) {
    case wire::FrameScan::State::NeedMore:
      return;
    case wire::FrameScan::State::Bad:
      EXPECT_NE(scan.error.code, wire::WireErrorCode{});
      return;
    case wire::FrameScan::State::Ready: {
      ASSERT_LE(scan.frame_size, size);
      // Both decoders must reach a verdict on any well-framed bytes.
      const auto request =
          wire::decode_request_frame(data, scan.frame_size);
      if (!request.ok()) {
        EXPECT_FALSE(wire::to_string(request.error.code).empty());
      }
      const auto response =
          wire::decode_response_frame(data, scan.frame_size);
      if (!response.ok()) {
        EXPECT_FALSE(wire::to_string(response.error.code).empty());
      }
      const auto batch = wire::decode_span_batch_frame(data, scan.frame_size);
      if (!batch.ok()) {
        EXPECT_FALSE(wire::to_string(batch.error.code).empty());
      }
      const auto cancel = wire::decode_cancel_frame(data, scan.frame_size);
      if (!cancel.ok()) {
        EXPECT_FALSE(wire::to_string(cancel.error.code).empty());
      }
      return;
    }
  }
}

/// A representative flight-recorder batch: a nested pair, an annotated
/// span, a failover instant, and sender-side drop accounting.
trace::SpanBatch sample_span_batch() {
  trace::SpanBatch batch;
  batch.node = "backend-0";
  batch.send_ns = 123456789;
  batch.dropped = 17;
  trace::ExportSpan call;
  call.name = "cluster.call";
  call.arg_name = "trace_id";
  call.arg = 42;
  call.id = 7;
  call.parent = 3;
  call.trace_id = 0x7ace0001;
  call.thread = 2;
  call.category = trace::Category::Cluster;
  call.start_ns = 1000;
  call.dur_ns = 250;
  batch.spans.push_back(call);
  trace::ExportSpan failover;
  failover.name = "cluster.failover";
  failover.id = 8;
  failover.parent = 7;
  failover.trace_id = 0x7ace0001;
  failover.thread = 2;
  failover.category = trace::Category::Mark;
  failover.start_ns = 1200;
  failover.dur_ns = trace::Span::kInstant;
  batch.spans.push_back(failover);
  return batch;
}

TEST(Fuzz, WireDecoderSurvivesRandomByteStrings) {
  Rng rng(2012);
  for (int i = 0; i < 2000; ++i) {
    const std::size_t size = rng.next_below(256);
    std::vector<std::uint8_t> bytes(size);
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.next_below(256));
    decode_untrusted(bytes.data(), bytes.size());
  }
}

TEST(Fuzz, WireDecoderSurvivesRandomBytesBehindAValidHeader) {
  // Random payloads that pass frame scanning exercise the payload
  // codecs (enum ranges, length plausibility, string bounds) instead of
  // dying at the magic check.
  Rng rng(777);
  for (int i = 0; i < 2000; ++i) {
    const std::uint32_t payload_size = rng.next_below(96);
    std::vector<std::uint8_t> frame(wire::kHeaderSize + payload_size);
    frame[0] = 'M';
    frame[1] = 'P';
    frame[2] = 'C';
    frame[3] = 'T';
    frame[4] = 2;  // version (LE); v2 headers span the full kHeaderSize
    frame[5] = 0;
    frame[6] = static_cast<std::uint8_t>(1 + rng.next_below(2));  // kind
    frame[7] = 0;  // reserved
    for (std::size_t b = 8; b < 16; ++b) {
      frame[b] = static_cast<std::uint8_t>(rng.next_below(256));
    }
    std::memcpy(frame.data() + 16, &payload_size, sizeof(payload_size));
    for (std::size_t b = 20; b < 28; ++b) {  // trace id: any bits are legal
      frame[b] = static_cast<std::uint8_t>(rng.next_below(256));
    }
    for (std::size_t b = wire::kHeaderSize; b < frame.size(); ++b) {
      frame[b] = static_cast<std::uint8_t>(rng.next_below(256));
    }
    decode_untrusted(frame.data(), frame.size());
  }
}

TEST(Fuzz, WireDecoderSurvivesBitFlippedValidFrames) {
  // Start from genuine frames (one request, one response) and flip one
  // bit at a time: every corruption must land on a typed verdict.
  service::EngineOptions options;
  options.worker_threads = 0;
  service::QueryEngine engine(options);
  service::RecommendRequest recommend;
  recommend.requirements.min_flexibility = 2;
  recommend.top_k = 3;
  const service::Request request{std::move(recommend)};
  // The simulate pair exercises the v2-only codec paths (workload spec,
  // fault set, run options, result) under corruption as well.
  service::SimulateRequest simulate;
  simulate.target = *canonical_class(*parse_taxonomic_name("IMP-IV"));
  simulate.options.width = 4;
  simulate.faults.add_noc_link(0, 1);
  simulate.seed = 7;
  const service::Request simulate_request{simulate};
  const std::vector<std::vector<std::uint8_t>> seeds = {
      wire::encode_request_frame(11, request, 250),
      wire::encode_response_frame(11, engine.execute(request)),
      wire::encode_request_frame(12, simulate_request, 250),
      wire::encode_response_frame(12, engine.execute(simulate_request)),
      wire::encode_span_batch_frame(13, sample_span_batch()),
      // The QoS wire surface: a frame carrying the trailing priority
      // extension, and a CancelRequest.
      wire::encode_request_frame(14, request, 250, wire::kProtocolVersion, 0,
                                 qos::PriorityClass::Background),
      wire::encode_cancel_frame(15, 0x7ace0002),
  };
  Rng rng(31337);
  for (const auto& seed : seeds) {
    for (int i = 0; i < 2000; ++i) {
      std::vector<std::uint8_t> frame = seed;
      const std::size_t bit = rng.next_below(
          static_cast<std::uint32_t>(frame.size() * 8));
      frame[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
      decode_untrusted(frame.data(), frame.size());
    }
  }
}

TEST(Fuzz, WireDecoderSurvivesEveryTruncationPrefix) {
  service::CostRequest cost;
  cost.target = MachineClass{};
  cost.n_sweep = {2, 4, 8};
  service::SimulateRequest simulate;
  simulate.target = *canonical_class(*parse_taxonomic_name("DMP-II"));
  simulate.faults.add(fault::FaultKind::DpDead, 3);
  for (const service::Request& request :
       {service::Request{std::move(cost)},
        service::Request{std::move(simulate)}}) {
    const auto frame = wire::encode_request_frame(3, request, 0);
    for (std::size_t len = 0; len <= frame.size(); ++len) {
      decode_untrusted(frame.data(), len);
      // decode_* must also reject a frame cut mid-payload (the server
      // never calls it that way, but the decoder must not rely on that).
      if (len > 0) {
        const auto decoded = wire::decode_request_frame(frame.data(), len);
        EXPECT_EQ(decoded.ok(), len == frame.size());
      }
    }
  }
}

TEST(Fuzz, PriorityExtensionAndCancelFramesSurviveEveryTruncation) {
  // A request frame with an explicit priority byte: every proper prefix
  // must be rejected (NeedMore or a typed error), only the whole frame
  // decodes.  The one-byte-short case in particular must *not* decode
  // as a priority-less frame here — the header still promises the
  // longer payload.
  service::RecommendRequest recommend;
  recommend.top_k = 2;
  const auto tagged = wire::encode_request_frame(
      31, service::Request{std::move(recommend)}, 100, wire::kProtocolVersion,
      0, qos::PriorityClass::Background);
  for (std::size_t len = 0; len <= tagged.size(); ++len) {
    decode_untrusted(tagged.data(), len);
    if (len > 0) {
      const auto decoded = wire::decode_request_frame(tagged.data(), len);
      EXPECT_EQ(decoded.ok(), len == tagged.size());
    }
  }

  const auto cancel = wire::encode_cancel_frame(32, 0x7ace0004);
  for (std::size_t len = 0; len <= cancel.size(); ++len) {
    decode_untrusted(cancel.data(), len);
    if (len > 0) {
      const auto decoded = wire::decode_cancel_frame(cancel.data(), len);
      EXPECT_EQ(decoded.ok(), len == cancel.size());
    }
  }
}

TEST(Fuzz, CancelFramesSurviveBitFlips) {
  // Bit-flipped CancelRequests must never crash and, when they still
  // decode, must carry plausible fields (any u64 ids are legal — the
  // registry lookup is the safety net).  Most flips corrupt the header
  // and land on a typed verdict instead.
  const auto seed = wire::encode_cancel_frame(33, 0x7ace0005);
  Rng rng(90210);
  for (int i = 0; i < 2000; ++i) {
    std::vector<std::uint8_t> frame = seed;
    const std::size_t bit =
        rng.next_below(static_cast<std::uint32_t>(frame.size() * 8));
    frame[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    decode_untrusted(frame.data(), frame.size());
  }
}

TEST(Fuzz, SpanBatchCodecRoundTripsAndRejectsEveryTruncation) {
  const trace::SpanBatch batch = sample_span_batch();
  const auto frame = wire::encode_span_batch_frame(21, batch);
  const auto decoded = wire::decode_span_batch_frame(frame.data(),
                                                     frame.size());
  ASSERT_TRUE(decoded.ok()) << decoded.error.to_string();
  EXPECT_EQ(decoded.value->request_id, 21u);
  EXPECT_EQ(decoded.value->batch, batch);

  // An empty batch (a heartbeat tick with nothing kept) also survives.
  trace::SpanBatch empty;
  empty.node = "proxy";
  const auto empty_frame = wire::encode_span_batch_frame(22, empty);
  const auto empty_decoded =
      wire::decode_span_batch_frame(empty_frame.data(), empty_frame.size());
  ASSERT_TRUE(empty_decoded.ok()) << empty_decoded.error.to_string();
  EXPECT_EQ(empty_decoded.value->batch, empty);

  // Every proper prefix must be rejected with a typed verdict — the
  // decoder never accepts a frame cut mid-span or mid-string.
  for (std::size_t len = 0; len <= frame.size(); ++len) {
    decode_untrusted(frame.data(), len);
    if (len > 0) {
      const auto cut = wire::decode_span_batch_frame(frame.data(), len);
      EXPECT_EQ(cut.ok(), len == frame.size());
    }
  }
}

}  // namespace
}  // namespace mpct
