#include "arch/registry.hpp"

#include <gtest/gtest.h>

#include "arch/validate.hpp"

namespace mpct::arch {
namespace {

TEST(Registry, HasTwentyFiveRows) {
  EXPECT_EQ(surveyed_count(), 25);
  EXPECT_EQ(surveyed_architectures().size(), 25u);
}

TEST(Registry, FindIsCaseInsensitive) {
  EXPECT_NE(find_architecture("MorphoSys"), nullptr);
  EXPECT_NE(find_architecture("morphosys"), nullptr);
  EXPECT_NE(find_architecture("FPGA"), nullptr);
  EXPECT_EQ(find_architecture("NotAnArchitecture"), nullptr);
}

TEST(Registry, EveryRowHasMetadata) {
  for (const ArchitectureSpec& spec : surveyed_architectures()) {
    EXPECT_FALSE(spec.name.empty());
    EXPECT_FALSE(spec.citation.empty()) << spec.name;
    EXPECT_FALSE(spec.description.empty()) << spec.name;
    EXPECT_FALSE(spec.category.empty()) << spec.name;
    EXPECT_GT(spec.year, 1990) << spec.name;
    EXPECT_TRUE(spec.paper_name.has_value()) << spec.name;
    EXPECT_TRUE(spec.paper_flexibility.has_value()) << spec.name;
  }
}

struct TableIIIRow {
  const char* arch;
  const char* name;
  int flexibility;
};

/// Table III ground truth: the Name and Flexibility columns as printed.
constexpr TableIIIRow kTableIII[] = {
    {"ARM7TDMI", "IUP", 0},
    {"AT89C51", "IUP", 0},
    {"IMAGINE", "IAP-II", 2},
    {"MorphoSys", "IAP-II", 2},
    {"REMARC", "IAP-II", 2},
    {"RICA", "IAP-II", 2},
    {"PADDI", "IAP-II", 2},
    {"PACT XPP", "IMP-II", 2},  // paper prints 2; the formula yields 3
    {"Chimaera", "IAP-II", 2},
    {"ADRES", "IAP-II", 2},
    {"Montium", "IAP-IV", 3},
    {"GARP", "IAP-IV", 3},
    {"PipeRench", "IAP-IV", 3},
    {"EGRA", "IAP-IV", 3},
    {"ELM", "IAP-IV", 3},
    {"PADDI-2", "IMP-I", 2},
    {"Cortex-A9 (Quad core)", "IMP-I", 2},
    {"Core2Duo", "IMP-I", 2},
    {"Pleiades", "IMP-II", 3},
    {"RaPiD", "IMP-XIV", 5},
    {"REDEFINE", "DMP-IV", 3},
    {"Colt", "DMP-IV", 3},
    {"DRRA", "ISP-IV", 5},
    {"MATRIX", "ISP-XVI", 7},
    {"FPGA", "USP", 8},
};

TEST(Registry, ClassifierReproducesEveryTableIIIName) {
  for (const TableIIIRow& row : kTableIII) {
    const ArchitectureSpec* spec = find_architecture(row.arch);
    ASSERT_NE(spec, nullptr) << row.arch;
    const Classification result = spec->classify();
    ASSERT_TRUE(result.ok()) << row.arch << ": " << result.note;
    EXPECT_EQ(to_string(*result.name), row.name) << row.arch;
    EXPECT_EQ(*spec->paper_name, row.name) << row.arch;
  }
}

TEST(Registry, FlexibilityMatchesTableIIIExceptKnownErratum) {
  for (const TableIIIRow& row : kTableIII) {
    const ArchitectureSpec* spec = find_architecture(row.arch);
    ASSERT_NE(spec, nullptr) << row.arch;
    const int computed = spec->flexibility().total();
    EXPECT_EQ(*spec->paper_flexibility, row.flexibility) << row.arch;
    if (std::string_view(row.arch) == "PACT XPP") {
      // Known paper erratum: Table II assigns IMP-II flexibility 3, but
      // Table III prints 2 for PACT XPP.  The formula is authoritative.
      EXPECT_EQ(computed, 3);
      EXPECT_EQ(*spec->paper_flexibility, 2);
    } else {
      EXPECT_EQ(computed, row.flexibility) << row.arch;
    }
  }
}

TEST(Registry, RowOrderMatchesTableIII) {
  const auto rows = surveyed_architectures();
  for (std::size_t i = 0; i < std::size(kTableIII); ++i) {
    EXPECT_EQ(rows[i].name, kTableIII[i].arch) << i;
  }
}

TEST(Registry, EveryRowIsStructurallyValid) {
  for (const ArchitectureSpec& spec : surveyed_architectures()) {
    EXPECT_TRUE(is_valid(spec)) << spec.name;
  }
}

TEST(Registry, FpgaIsTheOnlyLutGrainRow) {
  for (const ArchitectureSpec& spec : surveyed_architectures()) {
    if (spec.name == "FPGA") {
      EXPECT_EQ(spec.granularity, Granularity::Lut);
    } else {
      EXPECT_EQ(spec.granularity, Granularity::IpDp) << spec.name;
    }
  }
}

TEST(Registry, SpotCheckConnectivityCells) {
  // Montium's asymmetric DP-DM crossbar (5 ALUs to 10 banks).
  const ArchitectureSpec* montium = find_architecture("Montium");
  ASSERT_NE(montium, nullptr);
  EXPECT_EQ(montium->at(ConnectivityRole::DpDm).to_string(), "5x10");
  // DRRA's 3-hop window printed as nx14.
  const ArchitectureSpec* drra = find_architecture("DRRA");
  ASSERT_NE(drra, nullptr);
  EXPECT_EQ(drra->at(ConnectivityRole::IpIp).to_string(), "nx14");
  // GARP's scaled products.
  const ArchitectureSpec* garp = find_architecture("GARP");
  ASSERT_NE(garp, nullptr);
  EXPECT_EQ(garp->dps.to_string(), "24n");
  EXPECT_EQ(garp->at(ConnectivityRole::DpDp).to_string(), "24nx24n");
  // RaPiD uses both symbols.
  const ArchitectureSpec* rapid = find_architecture("RaPiD");
  ASSERT_NE(rapid, nullptr);
  EXPECT_EQ(rapid->ips.to_string(), "n");
  EXPECT_EQ(rapid->dps.to_string(), "m");
  EXPECT_EQ(rapid->at(ConnectivityRole::IpDp).to_string(), "nxm");
}

TEST(Registry, DataFlowRowsHaveNoIp) {
  for (const char* name : {"REDEFINE", "Colt"}) {
    const ArchitectureSpec* spec = find_architecture(name);
    ASSERT_NE(spec, nullptr);
    EXPECT_EQ(spec->ips, Count::fixed(0)) << name;
    EXPECT_EQ(spec->classify().name->machine_type, MachineType::DataFlow)
        << name;
  }
}

}  // namespace
}  // namespace mpct::arch
