#include "sim/cgra/pipeline.hpp"

#include <gtest/gtest.h>

#include "sim/cgra/scheduler.hpp"
#include "sim/dataflow/expr_parser.hpp"
#include "sim/memory.hpp"

namespace mpct::sim::cgra {
namespace {

using Sample = std::vector<std::pair<std::string, Word>>;

df::Graph axpy() { return df::compile_expression_or_throw("out = a*x + y"); }

TEST(Pipeline, AxpyMappingShape) {
  const df::Graph g = axpy();
  Cgra cgra(CgraShape{.fus = 8, .contexts = 4, .primary_inputs = 4});
  const PipelineSchedule schedule = map_graph_pipelined(g, cgra);
  EXPECT_EQ(schedule.depth, 2);     // mul level 1, add level 2
  EXPECT_EQ(schedule.pass_fus, 1);  // 'y' delayed one stage into the add
  EXPECT_EQ(schedule.fus_used, 3);  // mul + add + pass
}

TEST(Pipeline, StreamMatchesPerSampleEvaluation) {
  const df::Graph g = axpy();
  Cgra cgra(CgraShape{.fus = 8, .contexts = 4, .primary_inputs = 4});
  const PipelineSchedule schedule = map_graph_pipelined(g, cgra);

  std::vector<Sample> samples;
  for (int s = 0; s < 10; ++s) {
    samples.push_back(
        {{"a", s + 1}, {"x", 2 * s + 1}, {"y", 7 - s}});
  }
  const auto results = run_stream(cgra, schedule, samples);
  ASSERT_EQ(results.size(), samples.size());
  for (std::size_t s = 0; s < samples.size(); ++s) {
    const auto expected = df::evaluate(g, samples[s]);
    ASSERT_EQ(results[s].size(), expected.size()) << s;
    for (std::size_t o = 0; o < expected.size(); ++o) {
      EXPECT_EQ(results[s][o], expected[o].second) << "sample " << s;
    }
  }
}

TEST(Pipeline, ThroughputIsOneSamplePerCycle) {
  // N samples drain in N + depth - 1 cycles; the one-shot spatial
  // schedule needs N * depth cycles — the PipeRench win.
  const df::Graph g = df::compile_expression_or_throw(
      "out = ((a + b) * (a - b) + a) * b");
  Cgra pipe(CgraShape{.fus = 32, .contexts = 4, .primary_inputs = 4});
  const PipelineSchedule pipelined = map_graph_pipelined(g, pipe);

  const int n_samples = 20;
  const std::int64_t pipelined_cycles = n_samples + pipelined.depth - 1;
  Cgra oneshot(CgraShape{.fus = 32, .contexts = 8, .primary_inputs = 4});
  const Schedule spatial = map_graph(g, oneshot);
  const std::int64_t oneshot_cycles =
      static_cast<std::int64_t>(n_samples) * spatial.depth;
  EXPECT_LT(pipelined_cycles, oneshot_cycles / 2);
}

TEST(Pipeline, DeepInputsGetDelayChains) {
  // Levels: a*b (1), +c (2), *2 (3), +d (4).  'c' needs one delay stage
  // and 'd' needs three.
  const df::Graph g =
      df::compile_expression_or_throw("out = (a*b + c) * 2 + d");
  Cgra cgra(CgraShape{.fus = 16, .contexts = 4, .primary_inputs = 4});
  const PipelineSchedule schedule = map_graph_pipelined(g, cgra);
  EXPECT_EQ(schedule.depth, 4);
  EXPECT_EQ(schedule.pass_fus, 4);  // c@1 + d@{1,2,3}
}

TEST(Pipeline, SharedDelayChainsAreReused) {
  // 'a' feeds two level-2 consumers: one pass FU serves both.  Output
  // 's' (level 1) is padded to the common depth 3 with two more.
  const df::Graph g = df::compile_expression_or_throw(
      "s = b + c\nout = (s * a) + (s - a)");
  Cgra cgra(CgraShape{.fus = 16, .contexts = 4, .primary_inputs = 4});
  const PipelineSchedule schedule = map_graph_pipelined(g, cgra);
  EXPECT_EQ(schedule.depth, 3);
  EXPECT_EQ(schedule.pass_fus, 3);  // a@1 shared + s@{2,3}
}

TEST(Pipeline, MultipleOutputsPaddedToCommonDepth) {
  const df::Graph g = df::compile_expression_or_throw(
      "early = a + b\nlate = (a * b) * (a + 1)");
  Cgra cgra(CgraShape{.fus = 16, .contexts = 4, .primary_inputs = 4});
  const PipelineSchedule schedule = map_graph_pipelined(g, cgra);
  std::vector<Sample> samples{{{"a", 3}, {"b", 4}},
                              {{"a", 10}, {"b", 20}}};
  const auto results = run_stream(cgra, schedule, samples);
  // Both outputs of the same sample arrive together.
  EXPECT_EQ(results[0][0], 7);        // early(3,4)
  EXPECT_EQ(results[0][1], 48);       // late(3,4) = 12*4
  EXPECT_EQ(results[1][0], 30);
  EXPECT_EQ(results[1][1], 2200);     // 200*11
}

TEST(Pipeline, RejectsTooSmallFabric) {
  const df::Graph g = axpy();
  Cgra tiny(CgraShape{.fus = 2, .contexts = 4, .primary_inputs = 4});
  EXPECT_THROW(map_graph_pipelined(g, tiny), SimError);
}

TEST(Pipeline, RejectsOutputFedByInput) {
  df::Graph g;
  g.add_output("echo", g.add_input("a"));
  Cgra cgra(CgraShape{.fus = 4, .contexts = 4, .primary_inputs = 4});
  EXPECT_THROW(map_graph_pipelined(g, cgra), SimError);
}

TEST(Pipeline, UnknownStreamInputThrows) {
  const df::Graph g = axpy();
  Cgra cgra(CgraShape{.fus = 8, .contexts = 4, .primary_inputs = 4});
  const PipelineSchedule schedule = map_graph_pipelined(g, cgra);
  EXPECT_THROW(run_stream(cgra, schedule, {{{"zz", 1}}}), SimError);
}

TEST(Pipeline, EmptyStreamYieldsNothing) {
  const df::Graph g = axpy();
  Cgra cgra(CgraShape{.fus = 8, .contexts = 4, .primary_inputs = 4});
  const PipelineSchedule schedule = map_graph_pipelined(g, cgra);
  EXPECT_TRUE(run_stream(cgra, schedule, {}).empty());
}

/// Property: streams of any length match the reference on a reduction
/// expression with constants and selects.
class PipelineStreamSweep : public ::testing::TestWithParam<int> {};

TEST_P(PipelineStreamSweep, MatchesReference) {
  const df::Graph g = df::compile_expression_or_throw(
      "clamped = min(a * b + 5, 100)\nout = clamped < c ? clamped : c");
  Cgra cgra(CgraShape{.fus = 32, .contexts = 4, .primary_inputs = 4});
  const PipelineSchedule schedule = map_graph_pipelined(g, cgra);
  std::vector<Sample> samples;
  for (int s = 0; s < GetParam(); ++s) {
    samples.push_back({{"a", s}, {"b", 3 - s}, {"c", 40 + s}});
  }
  const auto results = run_stream(cgra, schedule, samples);
  for (std::size_t s = 0; s < samples.size(); ++s) {
    const auto expected = df::evaluate(g, samples[s]);
    for (std::size_t o = 0; o < expected.size(); ++o) {
      EXPECT_EQ(results[s][o], expected[o].second)
          << "sample " << s << " output " << o;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Lengths, PipelineStreamSweep,
                         ::testing::Values(1, 2, 5, 16, 64));

}  // namespace
}  // namespace mpct::sim::cgra
