#include "arch/adl_parser.hpp"

#include <gtest/gtest.h>

namespace mpct::arch {
namespace {

constexpr const char* kGoodDoc = R"(
# A comment line
architecture "Toy CGRA" {
  citation = "[99]"
  year = 2011
  category = "CGRA"
  granularity = ip/dp
  ips = 1
  dps = 16            # inline comment
  ip-ip = none
  ip-dp = 1-16
  ip-im = 1-1
  dp-dm = 16-1
  dp-dp = 16x16
  paper-name = "IAP-II"
  paper-flexibility = 2
  description = "a toy"
}
)";

TEST(AdlParser, ParsesWellFormedBlock) {
  const ParseResult result = parse_adl(kGoodDoc);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.specs.size(), 1u);
  const ArchitectureSpec& spec = result.specs[0];
  EXPECT_EQ(spec.name, "Toy CGRA");
  EXPECT_EQ(spec.citation, "[99]");
  EXPECT_EQ(spec.year, 2011);
  EXPECT_EQ(spec.category, "CGRA");
  EXPECT_EQ(spec.ips, Count::fixed(1));
  EXPECT_EQ(spec.dps, Count::fixed(16));
  EXPECT_EQ(spec.at(ConnectivityRole::DpDp).kind, SwitchKind::Crossbar);
  EXPECT_EQ(spec.paper_name, "IAP-II");
  EXPECT_EQ(spec.paper_flexibility, 2);
  EXPECT_EQ(spec.description, "a toy");
}

TEST(AdlParser, ParsesMultipleBlocks) {
  const std::string doc = std::string(kGoodDoc) + R"(
architecture Second {
  ips = n
  dps = n
  dp-dp = nxn
}
)";
  const ParseResult result = parse_adl(doc);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.specs.size(), 2u);
  EXPECT_EQ(result.specs[1].name, "Second");
  EXPECT_EQ(result.specs[1].ips, Count::symbolic('n'));
}

TEST(AdlParser, UnquotedNamesWork) {
  const ParseResult result = parse_adl(
      "architecture GARP {\n  ips = 1\n  dps = 24n\n}\n");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.specs[0].name, "GARP");
  EXPECT_EQ(result.specs[0].dps, Count::scaled_symbolic(24, 'n'));
}

TEST(AdlParser, ReportsUnknownKeyWithLine) {
  const ParseResult result = parse_adl(
      "architecture X {\n  ips = 1\n  dps = 1\n  bogus = 3\n}\n");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.errors[0].line, 4);
  EXPECT_NE(result.errors[0].message.find("unknown key"),
            std::string::npos);
  EXPECT_TRUE(result.specs.empty());  // the broken block is dropped
}

TEST(AdlParser, ReportsBadCount) {
  const ParseResult result =
      parse_adl("architecture X {\n  ips = 1\n  dps = lots\n}\n");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.errors[0].message.find("bad count"), std::string::npos);
}

TEST(AdlParser, ReportsBadConnectivity) {
  const ParseResult result = parse_adl(
      "architecture X {\n  ips = 1\n  dps = 4\n  dp-dp = 4~4\n}\n");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.errors[0].message.find("bad connectivity"),
            std::string::npos);
}

TEST(AdlParser, RequiresIpsAndDps) {
  const ParseResult result = parse_adl("architecture X {\n  ips = 1\n}\n");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.errors[0].message.find("missing required key 'dps'"),
            std::string::npos);
}

TEST(AdlParser, ReportsUnterminatedBlock) {
  const ParseResult result =
      parse_adl("architecture X {\n  ips = 1\n  dps = 1\n");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.errors.back().message.find("unterminated"),
            std::string::npos);
}

TEST(AdlParser, ReportsUnterminatedString) {
  const ParseResult result = parse_adl(
      "architecture X {\n  ips = 1\n  dps = 1\n  description = \"oops\n}\n");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.errors[0].message.find("unterminated string"),
            std::string::npos);
}

TEST(AdlParser, GoodBlocksSurviveBadNeighbours) {
  const std::string doc = std::string("architecture Bad {\n  zzz = 1\n}\n") +
                          kGoodDoc;
  const ParseResult result = parse_adl(doc);
  EXPECT_FALSE(result.ok());
  ASSERT_EQ(result.specs.size(), 1u);
  EXPECT_EQ(result.specs[0].name, "Toy CGRA");
}

TEST(AdlParser, SingleBlockHelperEnforcesCount) {
  EXPECT_FALSE(parse_single_adl("").ok());
  const std::string two = std::string(kGoodDoc) + kGoodDoc;
  EXPECT_FALSE(parse_single_adl(two).ok());
  EXPECT_TRUE(parse_single_adl(kGoodDoc).ok());
}

TEST(AdlParser, HashInsideQuotesIsNotComment) {
  const ParseResult result = parse_adl(
      "architecture X {\n  ips = 1\n  dps = 1\n"
      "  description = \"issue #42\"\n}\n");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.specs[0].description, "issue #42");
}

TEST(AdlParser, LutGranularityKeyword) {
  const ParseResult result = parse_adl(
      "architecture F {\n  granularity = lut\n  ips = v\n  dps = v\n}\n");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.specs[0].granularity, Granularity::Lut);
}

}  // namespace
}  // namespace mpct::arch
