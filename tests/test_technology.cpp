#include "cost/technology.hpp"

#include <gtest/gtest.h>

namespace mpct::cost {
namespace {

TEST(Technology, AnchorNodeDensity) {
  const TechnologyNode node = technology_node("90nm");
  EXPECT_DOUBLE_EQ(node.feature_nm, 90);
  EXPECT_DOUBLE_EQ(node.um2_per_ge, 2.5);
}

TEST(Technology, QuadraticScaling) {
  const TechnologyNode n90 = technology_node("90nm");
  const TechnologyNode n45 = technology_node("45nm");
  // Halving the feature size quarters the gate area.
  EXPECT_NEAR(n45.um2_per_ge, n90.um2_per_ge / 4.0, 1e-12);
  const TechnologyNode n180 = technology_node("180nm");
  EXPECT_NEAR(n180.um2_per_ge, n90.um2_per_ge * 4.0, 1e-12);
}

TEST(Technology, KgeToMm2) {
  const TechnologyNode node = technology_node("90nm");
  // 1 kGE = 1000 gates * 2.5 um^2 = 2500 um^2 = 0.0025 mm^2.
  EXPECT_NEAR(node.kge_to_mm2(1.0), 0.0025, 1e-9);
  EXPECT_NEAR(node.kge_to_mm2(400.0), 1.0, 1e-9);
}

TEST(Technology, AllStandardNodesExist) {
  for (const char* name :
       {"180nm", "130nm", "90nm", "65nm", "45nm", "32nm", "22nm"}) {
    EXPECT_NO_THROW(technology_node(name)) << name;
  }
}

TEST(Technology, UnknownNodeThrows) {
  EXPECT_THROW(technology_node("7nm"), std::invalid_argument);
  EXPECT_THROW(technology_node(""), std::invalid_argument);
}

TEST(Technology, DensityMonotoneInFeatureSize) {
  const char* names[] = {"22nm", "32nm", "45nm", "65nm", "90nm", "130nm",
                         "180nm"};
  double previous = 0;
  for (const char* name : names) {
    const TechnologyNode node = technology_node(name);
    EXPECT_GT(node.um2_per_ge, previous) << name;
    previous = node.um2_per_ge;
  }
}

TEST(Technology, DefaultIs90nm) {
  EXPECT_EQ(default_node().name, "90nm");
}

}  // namespace
}  // namespace mpct::cost
