#include "interconnect/crossbar.hpp"

#include <gtest/gtest.h>

#include "cost/switch_cost.hpp"

namespace mpct::interconnect {
namespace {

TEST(Crossbar, StartsDisconnected) {
  Crossbar xbar(4, 4);
  for (PortId out = 0; out < 4; ++out) {
    EXPECT_EQ(xbar.source_of(out), std::nullopt);
    EXPECT_EQ(xbar.route_latency(out), 0);
  }
}

TEST(Crossbar, AnyToAnyRouting) {
  Crossbar xbar(4, 4);
  for (PortId in = 0; in < 4; ++in) {
    for (PortId out = 0; out < 4; ++out) {
      EXPECT_TRUE(xbar.reachable(in, out));
      EXPECT_TRUE(xbar.connect(in, out));
      EXPECT_EQ(xbar.source_of(out), in);
    }
  }
}

TEST(Crossbar, OneInputMayDriveManyOutputs) {
  Crossbar xbar(2, 4);
  for (PortId out = 0; out < 4; ++out) {
    EXPECT_TRUE(xbar.connect(0, out));
  }
  const auto result = xbar.propagate({7, 9});
  EXPECT_EQ(result, (std::vector<std::uint64_t>{7, 7, 7, 7}));
}

TEST(Crossbar, ReprogrammingReplacesRoute) {
  Crossbar xbar(4, 4);
  EXPECT_TRUE(xbar.connect(1, 2));
  EXPECT_TRUE(xbar.connect(3, 2));
  EXPECT_EQ(xbar.source_of(2), 3);
}

TEST(Crossbar, DisconnectAndReset) {
  Crossbar xbar(4, 4);
  xbar.connect(0, 1);
  xbar.connect(2, 3);
  xbar.disconnect(1);
  EXPECT_EQ(xbar.source_of(1), std::nullopt);
  EXPECT_EQ(xbar.source_of(3), 2);
  xbar.reset();
  EXPECT_EQ(xbar.source_of(3), std::nullopt);
}

TEST(Crossbar, RejectsOutOfRangePorts) {
  Crossbar xbar(2, 3);
  EXPECT_FALSE(xbar.connect(-1, 0));
  EXPECT_FALSE(xbar.connect(2, 0));
  EXPECT_FALSE(xbar.connect(0, 3));
  EXPECT_FALSE(xbar.reachable(0, 5));
}

TEST(Crossbar, RejectsDegenerateShape) {
  EXPECT_THROW(Crossbar(0, 4), std::invalid_argument);
  EXPECT_THROW(Crossbar(4, 0), std::invalid_argument);
}

TEST(Crossbar, PropagateReadsConfiguredSources) {
  Crossbar xbar(3, 3);
  xbar.connect(2, 0);
  xbar.connect(0, 1);
  const auto out = xbar.propagate({10, 20, 30});
  EXPECT_EQ(out, (std::vector<std::uint64_t>{30, 10, 0}));
}

TEST(Crossbar, MeasuredConfigBitsMatchEq2Prediction) {
  // The headline cross-check: the executable crossbar stores exactly the
  // state Eq. 2's crossbar term predicts.
  for (int inputs : {1, 2, 4, 5, 8, 16, 64}) {
    for (int outputs : {1, 3, 8, 10, 64}) {
      Crossbar xbar(inputs, outputs);
      const auto predicted =
          cost::switch_cost(SwitchKind::Crossbar, inputs, outputs, 32)
              .config_bits;
      EXPECT_EQ(xbar.config_bits(), predicted) << inputs << "x" << outputs;
    }
  }
}

TEST(Crossbar, BitstreamRoundTrip) {
  Crossbar xbar(5, 7);
  xbar.connect(4, 0);
  xbar.connect(0, 3);
  xbar.connect(2, 6);
  const std::vector<bool> bits = xbar.bitstream();
  EXPECT_EQ(bits.size(), static_cast<std::size_t>(xbar.config_bits()));

  Crossbar other(5, 7);
  ASSERT_TRUE(other.load_bitstream(bits));
  for (PortId out = 0; out < 7; ++out) {
    EXPECT_EQ(other.source_of(out), xbar.source_of(out)) << out;
  }
}

TEST(Crossbar, LoadBitstreamRejectsWrongLength) {
  Crossbar xbar(4, 4);
  EXPECT_FALSE(xbar.load_bitstream(std::vector<bool>(3, false)));
}

TEST(Crossbar, LoadBitstreamRejectsInvalidSelect) {
  Crossbar xbar(4, 1);  // select field: 3 bits, valid codes 0..4
  const std::vector<bool> bits{true, true, true};  // code 7 > 4
  EXPECT_FALSE(xbar.load_bitstream(bits));
  // Configuration untouched.
  EXPECT_EQ(xbar.source_of(0), std::nullopt);
}

TEST(Crossbar, NameDescribesShape) {
  EXPECT_EQ(Crossbar(8, 4).name(), "crossbar 8x4");
}

/// Property: route_latency of a plain crossbar is exactly 1 when routed.
class CrossbarSizes : public ::testing::TestWithParam<int> {};

TEST_P(CrossbarSizes, SingleCycleRoutes) {
  const int n = GetParam();
  Crossbar xbar(n, n);
  for (PortId p = 0; p < n; ++p) {
    ASSERT_TRUE(xbar.connect((p + 1) % n, p));
    EXPECT_EQ(xbar.route_latency(p), 1);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, CrossbarSizes,
                         ::testing::Values(1, 2, 5, 16, 64));

}  // namespace
}  // namespace mpct::interconnect
