#include "sim/isa/isa.hpp"

#include <gtest/gtest.h>

#include "sim/memory.hpp"

namespace mpct::sim {
namespace {

TEST(Isa, MnemonicRoundTrip) {
  for (Opcode op :
       {Opcode::Nop, Opcode::Halt, Opcode::Ldi, Opcode::Mov, Opcode::Add,
        Opcode::Sub, Opcode::Mul, Opcode::Divs, Opcode::And, Opcode::Or,
        Opcode::Xor, Opcode::Shl, Opcode::Shr, Opcode::Addi, Opcode::Ld,
        Opcode::St, Opcode::Beq, Opcode::Bne, Opcode::Blt, Opcode::Jmp,
        Opcode::Lane, Opcode::Shuf, Opcode::Send, Opcode::Recv,
        Opcode::Out}) {
    EXPECT_EQ(opcode_from_mnemonic(mnemonic(op)), op)
        << static_cast<int>(op);
  }
}

TEST(Isa, UnknownMnemonic) {
  EXPECT_EQ(opcode_from_mnemonic("frobnicate"), std::nullopt);
  EXPECT_EQ(opcode_from_mnemonic(""), std::nullopt);
}

TEST(Isa, AluArithmetic) {
  EXPECT_EQ(alu(Opcode::Add, 3, 4), 7);
  EXPECT_EQ(alu(Opcode::Sub, 3, 4), -1);
  EXPECT_EQ(alu(Opcode::Mul, -3, 4), -12);
  EXPECT_EQ(alu(Opcode::Divs, 7, 2), 3);
  EXPECT_EQ(alu(Opcode::Divs, -7, 2), -3);
}

TEST(Isa, AluLogic) {
  EXPECT_EQ(alu(Opcode::And, 0b1100, 0b1010), 0b1000);
  EXPECT_EQ(alu(Opcode::Or, 0b1100, 0b1010), 0b1110);
  EXPECT_EQ(alu(Opcode::Xor, 0b1100, 0b1010), 0b0110);
}

TEST(Isa, AluShifts) {
  EXPECT_EQ(alu(Opcode::Shl, 1, 4), 16);
  EXPECT_EQ(alu(Opcode::Shr, 16, 4), 1);
  // Shift amounts wrap at 64 and negative values are masked.
  EXPECT_EQ(alu(Opcode::Shl, 1, 64), 1);
  // Logical right shift of a negative number.
  EXPECT_EQ(alu(Opcode::Shr, -1, 63), 1);
}

TEST(Isa, AluDivByZeroTraps) {
  EXPECT_THROW(alu(Opcode::Divs, 1, 0), SimError);
}

TEST(Isa, AluRejectsNonAluOps) {
  EXPECT_THROW(alu(Opcode::Jmp, 1, 2), SimError);
  EXPECT_THROW(alu(Opcode::Ld, 1, 2), SimError);
}

TEST(Isa, IsAluOpPartition) {
  EXPECT_TRUE(is_alu_op(Opcode::Add));
  EXPECT_TRUE(is_alu_op(Opcode::Shr));
  EXPECT_FALSE(is_alu_op(Opcode::Ldi));
  EXPECT_FALSE(is_alu_op(Opcode::Beq));
  EXPECT_FALSE(is_alu_op(Opcode::Out));
}

TEST(Isa, DisassemblyFormats) {
  EXPECT_EQ(to_string(Instruction{Opcode::Halt, 0, 0, 0, 0}), "halt");
  EXPECT_EQ(to_string(Instruction{Opcode::Ldi, 3, 0, 0, 42}), "ldi r3, 42");
  EXPECT_EQ(to_string(Instruction{Opcode::Add, 1, 2, 3, 0}),
            "add r1, r2, r3");
  EXPECT_EQ(to_string(Instruction{Opcode::Ld, 3, 1, 0, 4}),
            "ld r3, [r1+4]");
  EXPECT_EQ(to_string(Instruction{Opcode::St, 0, 1, 2, 0}),
            "st [r1+0], r2");
  EXPECT_EQ(to_string(Instruction{Opcode::Beq, 0, 1, 2, 7}),
            "beq r1, r2, @7");
  EXPECT_EQ(to_string(Instruction{Opcode::Jmp, 0, 0, 0, 3}), "jmp @3");
  EXPECT_EQ(to_string(Instruction{Opcode::Out, 0, 5, 0, 0}), "out r5");
}

TEST(Memory, BoundsCheckedAccess) {
  Memory mem("DM", 8);
  mem.store(0, 42);
  EXPECT_EQ(mem.load(0), 42);
  EXPECT_THROW(mem.load(8), SimError);
  EXPECT_THROW(mem.store(8, 1), SimError);
}

TEST(Memory, ErrorsNameTheBank) {
  Memory mem("DM3", 4);
  try {
    mem.load(99);
    FAIL() << "expected SimError";
  } catch (const SimError& error) {
    EXPECT_NE(std::string(error.what()).find("DM3"), std::string::npos);
  }
}

TEST(Memory, AccessCounters) {
  Memory mem("DM", 8);
  mem.store(1, 5);
  mem.store(2, 6);
  (void)mem.load(1);
  EXPECT_EQ(mem.stores(), 2u);
  EXPECT_EQ(mem.loads(), 1u);
  mem.reset_counters();
  EXPECT_EQ(mem.stores(), 0u);
  EXPECT_EQ(mem.loads(), 0u);
}

TEST(Memory, FillInitialises) {
  Memory mem("DM", 4);
  mem.fill({1, 2, 3, 4, 5});  // fifth value ignored
  EXPECT_EQ(mem.data(), (std::vector<Word>{1, 2, 3, 4}));
}

}  // namespace
}  // namespace mpct::sim
