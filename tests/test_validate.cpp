#include "arch/validate.hpp"

#include <gtest/gtest.h>

#include "arch/registry.hpp"

namespace mpct::arch {
namespace {

bool has_code(const std::vector<Issue>& issues, std::string_view code) {
  for (const Issue& issue : issues) {
    if (issue.code == code) return true;
  }
  return false;
}

ArchitectureSpec base_iup() {
  ArchitectureSpec spec;
  spec.name = "test";
  spec.ips = Count::fixed(1);
  spec.dps = Count::fixed(1);
  spec.at(ConnectivityRole::IpDp) = *ConnectivityExpr::parse("1-1");
  spec.at(ConnectivityRole::IpIm) = *ConnectivityExpr::parse("1-1");
  spec.at(ConnectivityRole::DpDm) = *ConnectivityExpr::parse("1-1");
  return spec;
}

TEST(Validate, CleanIupHasNoIssues) {
  EXPECT_TRUE(validate(base_iup()).empty());
  EXPECT_TRUE(is_valid(base_iup()));
}

TEST(Validate, NoDataProcessors) {
  ArchitectureSpec spec = base_iup();
  spec.dps = Count::fixed(0);
  spec.at(ConnectivityRole::DpDm) = ConnectivityExpr::none();
  const auto issues = validate(spec);
  EXPECT_TRUE(has_code(issues, "E_NO_PROCESSORS"));
  EXPECT_FALSE(is_valid(spec));
}

TEST(Validate, IpConnectivityWithoutIp) {
  ArchitectureSpec spec;
  spec.dps = Count::fixed(4);
  spec.ips = Count::fixed(0);
  spec.at(ConnectivityRole::IpDp) = *ConnectivityExpr::parse("1-4");
  spec.at(ConnectivityRole::DpDm) = *ConnectivityExpr::parse("4-4");
  EXPECT_TRUE(has_code(validate(spec), "E_IP_CONN_WITHOUT_IP"));
}

TEST(Validate, VariableNeedsLut) {
  ArchitectureSpec spec = base_iup();
  spec.ips = Count::variable();
  spec.dps = Count::variable();
  EXPECT_TRUE(has_code(validate(spec), "E_VARIABLE_NEEDS_LUT"));
  spec.granularity = Granularity::Lut;
  EXPECT_FALSE(has_code(validate(spec), "E_VARIABLE_NEEDS_LUT"));
}

TEST(Validate, NiShape) {
  ArchitectureSpec spec = base_iup();
  spec.ips = Count::fixed(4);
  spec.dps = Count::fixed(1);
  EXPECT_TRUE(has_code(validate(spec), "E_NI_SHAPE"));
}

TEST(Validate, SelfConnectivityNeedsTwo) {
  ArchitectureSpec spec = base_iup();
  spec.at(ConnectivityRole::DpDp) = *ConnectivityExpr::parse("1x1");
  EXPECT_TRUE(has_code(validate(spec), "E_SELF_CONN_SINGLE"));

  ArchitectureSpec spec2 = base_iup();
  spec2.at(ConnectivityRole::IpIp) = *ConnectivityExpr::parse("1x1");
  EXPECT_TRUE(has_code(validate(spec2), "E_SELF_CONN_SINGLE"));
}

TEST(Validate, LutWithFixedCountsWarns) {
  ArchitectureSpec spec = base_iup();
  spec.granularity = Granularity::Lut;
  const auto issues = validate(spec);
  EXPECT_TRUE(has_code(issues, "W_LUT_FIXED_COUNTS"));
  EXPECT_TRUE(is_valid(spec));  // warning, not error
}

TEST(Validate, MissingMemoryPathWarns) {
  ArchitectureSpec spec = base_iup();
  spec.at(ConnectivityRole::DpDm) = ConnectivityExpr::none();
  EXPECT_TRUE(has_code(validate(spec), "W_NO_MEMORY_PATH"));
}

TEST(Validate, IpWithoutIpDpWarns) {
  ArchitectureSpec spec = base_iup();
  spec.at(ConnectivityRole::IpDp) = ConnectivityExpr::none();
  EXPECT_TRUE(has_code(validate(spec), "W_IP_WITHOUT_IPDP"));
}

TEST(Validate, IpWithoutImWarns) {
  ArchitectureSpec spec = base_iup();
  spec.at(ConnectivityRole::IpIm) = ConnectivityExpr::none();
  EXPECT_TRUE(has_code(validate(spec), "W_IP_WITHOUT_IM"));
}

TEST(Validate, EndpointMismatchIsInfo) {
  // ADRES connects only the first RC row to the register file: DP-DM
  // left endpoint 8 on a 64-DP fabric — legitimate, reported as info.
  const ArchitectureSpec* adres = find_architecture("ADRES");
  ASSERT_NE(adres, nullptr);
  const auto issues = validate(*adres);
  EXPECT_TRUE(has_code(issues, "I_ENDPOINT_MISMATCH"));
  for (const Issue& issue : issues) {
    EXPECT_NE(issue.severity, Severity::Error) << issue.to_string();
  }
}

TEST(Validate, IssueToStringIsReadable) {
  ArchitectureSpec spec = base_iup();
  spec.ips = Count::fixed(4);
  spec.dps = Count::fixed(1);
  const auto issues = validate(spec);
  ASSERT_FALSE(issues.empty());
  const std::string text = issues.front().to_string();
  EXPECT_NE(text.find("error"), std::string::npos);
  EXPECT_NE(text.find("E_NI_SHAPE"), std::string::npos);
}

TEST(Validate, SeverityNames) {
  EXPECT_EQ(to_string(Severity::Error), "error");
  EXPECT_EQ(to_string(Severity::Warning), "warning");
  EXPECT_EQ(to_string(Severity::Info), "info");
}

}  // namespace
}  // namespace mpct::arch
