#include "core/naming.hpp"

#include <gtest/gtest.h>

#include "core/taxonomy_table.hpp"

namespace mpct {
namespace {

TEST(Naming, CodesMatchPaperNames) {
  EXPECT_EQ(code(MachineType::DataFlow), 'D');
  EXPECT_EQ(code(MachineType::InstructionFlow), 'I');
  EXPECT_EQ(code(MachineType::UniversalFlow), 'U');
  EXPECT_EQ(code(ProcessingType::UniProcessor), "UP");
  EXPECT_EQ(code(ProcessingType::ArrayProcessor), "AP");
  EXPECT_EQ(code(ProcessingType::MultiProcessor), "MP");
  EXPECT_EQ(code(ProcessingType::SpatialProcessor), "SP");
}

TEST(Naming, RendersUnnumberedClasses) {
  EXPECT_EQ(to_string(TaxonomicName{MachineType::DataFlow,
                                    ProcessingType::UniProcessor, 0}),
            "DUP");
  EXPECT_EQ(to_string(TaxonomicName{MachineType::InstructionFlow,
                                    ProcessingType::UniProcessor, 0}),
            "IUP");
  EXPECT_EQ(to_string(TaxonomicName{MachineType::UniversalFlow,
                                    ProcessingType::SpatialProcessor, 0}),
            "USP");
}

TEST(Naming, RendersNumberedClasses) {
  EXPECT_EQ(to_string(TaxonomicName{MachineType::DataFlow,
                                    ProcessingType::MultiProcessor, 3}),
            "DMP-III");
  EXPECT_EQ(to_string(TaxonomicName{MachineType::InstructionFlow,
                                    ProcessingType::ArrayProcessor, 2}),
            "IAP-II");
  EXPECT_EQ(to_string(TaxonomicName{MachineType::InstructionFlow,
                                    ProcessingType::MultiProcessor, 16}),
            "IMP-XVI");
  EXPECT_EQ(to_string(TaxonomicName{MachineType::InstructionFlow,
                                    ProcessingType::SpatialProcessor, 4}),
            "ISP-IV");
}

TEST(Naming, ParsesAllPaperNames) {
  const auto check = [](const char* text, MachineType mt, ProcessingType pt,
                        int subtype) {
    const auto name = parse_taxonomic_name(text);
    ASSERT_TRUE(name.has_value()) << text;
    EXPECT_EQ(name->machine_type, mt) << text;
    EXPECT_EQ(name->processing_type, pt) << text;
    EXPECT_EQ(name->subtype, subtype) << text;
  };
  check("DUP", MachineType::DataFlow, ProcessingType::UniProcessor, 0);
  check("DMP-IV", MachineType::DataFlow, ProcessingType::MultiProcessor, 4);
  check("IUP", MachineType::InstructionFlow, ProcessingType::UniProcessor, 0);
  check("IAP-II", MachineType::InstructionFlow,
        ProcessingType::ArrayProcessor, 2);
  check("IMP-XIV", MachineType::InstructionFlow,
        ProcessingType::MultiProcessor, 14);
  check("ISP-XVI", MachineType::InstructionFlow,
        ProcessingType::SpatialProcessor, 16);
  check("USP", MachineType::UniversalFlow, ProcessingType::SpatialProcessor,
        0);
}

TEST(Naming, ParseIsCaseInsensitiveOnLetters) {
  EXPECT_TRUE(parse_taxonomic_name("imp-ii").has_value());
  EXPECT_TRUE(parse_taxonomic_name("Usp").has_value());
}

TEST(Naming, ParseRejectsMalformedNames) {
  EXPECT_EQ(parse_taxonomic_name(""), std::nullopt);
  EXPECT_EQ(parse_taxonomic_name("XUP"), std::nullopt);     // unknown MT
  EXPECT_EQ(parse_taxonomic_name("IZP"), std::nullopt);     // unknown PT
  EXPECT_EQ(parse_taxonomic_name("IUP-II"), std::nullopt);  // IUP unnumbered
  EXPECT_EQ(parse_taxonomic_name("IMP"), std::nullopt);     // needs numeral
  EXPECT_EQ(parse_taxonomic_name("IMP-"), std::nullopt);
  EXPECT_EQ(parse_taxonomic_name("IMP-XVII"), std::nullopt);  // > 16
  EXPECT_EQ(parse_taxonomic_name("IAP-V"), std::nullopt);     // > 4
  EXPECT_EQ(parse_taxonomic_name("DAP-I"), std::nullopt);  // no DF array
  EXPECT_EQ(parse_taxonomic_name("DSP-I"), std::nullopt);  // no DF spatial
  EXPECT_EQ(parse_taxonomic_name("UUP"), std::nullopt);    // UF only SP
  EXPECT_EQ(parse_taxonomic_name("USP-I"), std::nullopt);  // USP unnumbered
  EXPECT_EQ(parse_taxonomic_name("IMP-IIII"), std::nullopt);  // bad numeral
}

TEST(Naming, SubtypeCountsMatchTableI) {
  EXPECT_EQ(subtype_count(MachineType::DataFlow,
                          ProcessingType::UniProcessor),
            1);
  EXPECT_EQ(subtype_count(MachineType::DataFlow,
                          ProcessingType::MultiProcessor),
            4);
  EXPECT_EQ(subtype_count(MachineType::InstructionFlow,
                          ProcessingType::UniProcessor),
            1);
  EXPECT_EQ(subtype_count(MachineType::InstructionFlow,
                          ProcessingType::ArrayProcessor),
            4);
  EXPECT_EQ(subtype_count(MachineType::InstructionFlow,
                          ProcessingType::MultiProcessor),
            16);
  EXPECT_EQ(subtype_count(MachineType::InstructionFlow,
                          ProcessingType::SpatialProcessor),
            16);
  EXPECT_EQ(subtype_count(MachineType::UniversalFlow,
                          ProcessingType::SpatialProcessor),
            1);
  EXPECT_EQ(subtype_count(MachineType::DataFlow,
                          ProcessingType::ArrayProcessor),
            0);
}

TEST(Naming, CombinationExistence) {
  EXPECT_TRUE(combination_exists(MachineType::DataFlow,
                                 ProcessingType::UniProcessor));
  EXPECT_TRUE(combination_exists(MachineType::DataFlow,
                                 ProcessingType::MultiProcessor));
  EXPECT_FALSE(combination_exists(MachineType::DataFlow,
                                  ProcessingType::ArrayProcessor));
  EXPECT_FALSE(combination_exists(MachineType::DataFlow,
                                  ProcessingType::SpatialProcessor));
  EXPECT_TRUE(combination_exists(MachineType::InstructionFlow,
                                 ProcessingType::SpatialProcessor));
  EXPECT_FALSE(combination_exists(MachineType::UniversalFlow,
                                  ProcessingType::UniProcessor));
  EXPECT_FALSE(combination_exists(MachineType::UniversalFlow,
                                  ProcessingType::MultiProcessor));
}

/// Property: every canonical class name round-trips through
/// to_string/parse (bijection over the 43 named rows of Table I).
TEST(Naming, BijectionOverCanonicalTable) {
  for (const TaxonomyEntry& row : extended_taxonomy()) {
    if (!row.name) continue;
    const std::string text = to_string(*row.name);
    const auto parsed = parse_taxonomic_name(text);
    ASSERT_TRUE(parsed.has_value()) << text;
    EXPECT_EQ(*parsed, *row.name) << text;
  }
}

}  // namespace
}  // namespace mpct
