#include "explore/upgrade.hpp"

#include <gtest/gtest.h>

#include "arch/registry.hpp"
#include "core/flexibility.hpp"
#include "core/taxonomy_table.hpp"

namespace mpct::explore {
namespace {

MachineClass named(const char* text) {
  return *canonical_class(*parse_taxonomic_name(text));
}

TaxonomicName name_of(const char* text) {
  return *parse_taxonomic_name(text);
}

TEST(Upgrade, AlreadyThereIsEmptyPlan) {
  const auto plan = upgrade_path(named("IAP-II"), name_of("IAP-II"));
  ASSERT_TRUE(plan.has_value());
  EXPECT_TRUE(plan->steps.empty());
}

TEST(Upgrade, SingleSwitchUpgrade) {
  const auto plan = upgrade_path(named("IMP-I"), name_of("IMP-II"));
  ASSERT_TRUE(plan.has_value());
  ASSERT_EQ(plan->steps.size(), 1u);
  EXPECT_EQ(plan->steps[0].kind, UpgradeStep::Kind::UpgradeSwitch);
  EXPECT_NE(plan->steps[0].description.find("DP-DP"), std::string::npos);
  EXPECT_NE(plan->steps[0].description.find("crossbar"),
            std::string::npos);
}

TEST(Upgrade, FamilyJumpNeedsProcessorsAndSwitch) {
  // IAP-II -> IMP-II: grow IPs from 1 to n; the DP-side switches match.
  const auto plan = upgrade_path(named("IAP-II"), name_of("IMP-II"));
  ASSERT_TRUE(plan.has_value());
  bool grew_ips = false;
  for (const UpgradeStep& step : plan->steps) {
    if (step.kind == UpgradeStep::Kind::AddProcessors &&
        step.description.find("IPs") != std::string::npos) {
      grew_ips = true;
    }
  }
  EXPECT_TRUE(grew_ips);
}

TEST(Upgrade, SpatialNeedsIpIpSwitch) {
  const auto plan = upgrade_path(named("IMP-IV"), name_of("ISP-IV"));
  ASSERT_TRUE(plan.has_value());
  ASSERT_EQ(plan->steps.size(), 1u);
  EXPECT_NE(plan->steps[0].description.find("IP-IP"), std::string::npos);
}

TEST(Upgrade, DowngradesAreRejected) {
  EXPECT_EQ(upgrade_path(named("IMP-II"), name_of("IMP-I")), std::nullopt);
  EXPECT_EQ(upgrade_path(named("IMP-I"), name_of("IAP-I")), std::nullopt);
  EXPECT_EQ(upgrade_path(named("ISP-XVI"), name_of("IMP-XVI")),
            std::nullopt);
}

TEST(Upgrade, ParadigmDivideIsUncrossable) {
  EXPECT_EQ(upgrade_path(named("DMP-IV"), name_of("IMP-IV")), std::nullopt);
  EXPECT_EQ(upgrade_path(named("IUP"), name_of("DUP")), std::nullopt);
  EXPECT_EQ(upgrade_path(named("IMP-XVI"), name_of("USP")), std::nullopt);
  EXPECT_EQ(upgrade_path(named("USP"), name_of("IMP-I")), std::nullopt);
}

TEST(Upgrade, SurveyedArchitectureToNextTier) {
  // The designer question on a real row: what does MorphoSys (IAP-II)
  // need to become an IAP-IV?  One switch: DP-DM direct -> crossbar.
  const arch::ArchitectureSpec* morphosys =
      arch::find_architecture("MorphoSys");
  ASSERT_NE(morphosys, nullptr);
  const auto plan =
      upgrade_path(morphosys->machine_class(), name_of("IAP-IV"));
  ASSERT_TRUE(plan.has_value());
  ASSERT_EQ(plan->steps.size(), 1u);
  EXPECT_NE(plan->steps[0].description.find("DP-DM"), std::string::npos);
}

/// Property: every successful plan's upgraded machine classifies to the
/// target and never loses flexibility; plans within a family have
/// exactly (flex(target) - flex(from)) switch steps.
TEST(Upgrade, PlansAreConsistentAcrossAllPairs) {
  for (const TaxonomyEntry& a : extended_taxonomy()) {
    if (!a.name) continue;
    for (const TaxonomyEntry& b : extended_taxonomy()) {
      if (!b.name) continue;
      const auto plan = upgrade_path(a.machine, *b.name);
      if (!plan) continue;
      const Classification result = classify(plan->upgraded);
      ASSERT_TRUE(result.ok());
      EXPECT_EQ(*result.name, *b.name);
      EXPECT_GE(flexibility_score(plan->upgraded),
                flexibility_score(a.machine));
      EXPECT_EQ(plan->steps.empty(), *a.name == *b.name);
    }
  }
}

}  // namespace
}  // namespace mpct::explore
