#include "core/machine_class.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

#include "core/classifier.hpp"
#include "core/taxonomy_table.hpp"

namespace mpct {
namespace {

MachineClass iap2() {
  MachineClass mc;
  mc.ips = Multiplicity::One;
  mc.dps = Multiplicity::Many;
  mc.set_switch(ConnectivityRole::IpDp, SwitchKind::Direct);
  mc.set_switch(ConnectivityRole::IpIm, SwitchKind::Direct);
  mc.set_switch(ConnectivityRole::DpDm, SwitchKind::Direct);
  mc.set_switch(ConnectivityRole::DpDp, SwitchKind::Crossbar);
  return mc;
}

TEST(MachineClass, DefaultIsEmptyShell) {
  const MachineClass mc;
  EXPECT_EQ(mc.granularity, Granularity::IpDp);
  EXPECT_EQ(mc.ips, Multiplicity::Zero);
  EXPECT_EQ(mc.dps, Multiplicity::One);
  for (ConnectivityRole role : kAllConnectivityRoles) {
    EXPECT_EQ(mc.switch_at(role), SwitchKind::None);
  }
}

TEST(MachineClass, SwitchAccessorsRoundTrip) {
  MachineClass mc;
  mc.set_switch(ConnectivityRole::DpDm, SwitchKind::Crossbar);
  EXPECT_EQ(mc.switch_at(ConnectivityRole::DpDm), SwitchKind::Crossbar);
  EXPECT_EQ(mc.switch_at(ConnectivityRole::DpDp), SwitchKind::None);
}

TEST(MachineClass, EqualityIsStructural) {
  EXPECT_EQ(iap2(), iap2());
  MachineClass other = iap2();
  other.set_switch(ConnectivityRole::DpDp, SwitchKind::None);
  EXPECT_NE(iap2(), other);
}

TEST(MachineClass, FormatCellUsesEndpointMultiplicities) {
  const MachineClass mc = iap2();
  EXPECT_EQ(format_cell(mc, ConnectivityRole::IpDp), "1-n");
  EXPECT_EQ(format_cell(mc, ConnectivityRole::IpIm), "1-1");
  EXPECT_EQ(format_cell(mc, ConnectivityRole::DpDm), "n-n");
  EXPECT_EQ(format_cell(mc, ConnectivityRole::DpDp), "nxn");
  EXPECT_EQ(format_cell(mc, ConnectivityRole::IpIp), "none");
}

TEST(MachineClass, ToStringMentionsEveryColumn) {
  const std::string text = to_string(iap2());
  EXPECT_NE(text.find("IP/DP"), std::string::npos);
  EXPECT_NE(text.find("ips=1"), std::string::npos);
  EXPECT_NE(text.find("dps=n"), std::string::npos);
  EXPECT_NE(text.find("DP-DP:nxn"), std::string::npos);
}

TEST(MachineClass, GranularityNames) {
  EXPECT_EQ(to_string(Granularity::IpDp), "IP/DP");
  EXPECT_EQ(to_string(Granularity::Lut), "LUTs");
}

TEST(MachineClassHash, DistinctCanonicalClassesHashDistinctly) {
  // 13 bits of packed state: the 47 canonical classes must be collision
  // free (the hash is injective on the packed representation, so this
  // also guards the packing).
  std::unordered_set<std::size_t> hashes;
  for (const TaxonomyEntry& row : extended_taxonomy()) {
    hashes.insert(MachineClassHash{}(row.machine));
  }
  EXPECT_EQ(hashes.size(), extended_taxonomy().size());
}

TEST(MachineClassHash, UsableAsUnorderedKey) {
  std::unordered_set<MachineClass, MachineClassHash> set;
  set.insert(iap2());
  set.insert(iap2());
  EXPECT_EQ(set.size(), 1u);
}

}  // namespace
}  // namespace mpct
