#include "core/flynn.hpp"

#include <gtest/gtest.h>

#include "core/classifier.hpp"
#include "core/taxonomy_table.hpp"

namespace mpct {
namespace {

std::optional<FlynnClass> flynn_of(const char* name) {
  return flynn_class(*parse_taxonomic_name(name));
}

TEST(Flynn, NamesRender) {
  EXPECT_EQ(to_string(FlynnClass::SISD), "SISD");
  EXPECT_EQ(to_string(FlynnClass::SIMD), "SIMD");
  EXPECT_EQ(to_string(FlynnClass::MISD), "MISD");
  EXPECT_EQ(to_string(FlynnClass::MIMD), "MIMD");
}

TEST(Flynn, UniProcessorIsSisd) { EXPECT_EQ(flynn_of("IUP"), FlynnClass::SISD); }

TEST(Flynn, ArrayProcessorsAreSimd) {
  for (const char* name : {"IAP-I", "IAP-II", "IAP-III", "IAP-IV"}) {
    EXPECT_EQ(flynn_of(name), FlynnClass::SIMD) << name;
  }
}

TEST(Flynn, MultiAndSpatialAreMimd) {
  EXPECT_EQ(flynn_of("IMP-I"), FlynnClass::MIMD);
  EXPECT_EQ(flynn_of("IMP-XVI"), FlynnClass::MIMD);
  EXPECT_EQ(flynn_of("ISP-IV"), FlynnClass::MIMD);
}

TEST(Flynn, NiClassesAreMisd) {
  // The taxonomy's not-implementable rows are exactly Flynn's famously
  // near-empty MISD quadrant.
  for (const TaxonomyEntry& row : extended_taxonomy()) {
    if (row.implementable) continue;
    EXPECT_EQ(flynn_class(row.machine), FlynnClass::MISD) << row.serial;
  }
}

TEST(Flynn, DataAndUniversalFlowAreOutsideFlynn) {
  EXPECT_EQ(flynn_of("DUP"), std::nullopt);
  EXPECT_EQ(flynn_of("DMP-IV"), std::nullopt);
  EXPECT_EQ(flynn_of("USP"), std::nullopt);
}

TEST(Flynn, EveryInstructionFlowRowHasAFlynnClass) {
  for (const TaxonomyEntry& row : extended_taxonomy()) {
    if (!row.name) continue;
    const bool instruction_flow =
        row.name->machine_type == MachineType::InstructionFlow;
    EXPECT_EQ(flynn_class(row.machine).has_value(), instruction_flow)
        << row.serial;
  }
}

TEST(Skillicorn, ProjectionStripsIpIp) {
  const MachineClass isp =
      *canonical_class(*parse_taxonomic_name("ISP-VII"));
  const SkillicornProjection projection = project_to_skillicorn(isp);
  EXPECT_TRUE(projection.required_extension);
  EXPECT_EQ(projection.projected.switch_at(ConnectivityRole::IpIp),
            SwitchKind::None);
  // The stripped structure is the matching IMP class.
  const Classification result = classify(projection.projected);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(to_string(*result.name), "IMP-VII");
}

TEST(Skillicorn, ProjectionDemotesVariableCounts) {
  const MachineClass usp = *canonical_class(*parse_taxonomic_name("USP"));
  const SkillicornProjection projection = project_to_skillicorn(usp);
  EXPECT_TRUE(projection.required_extension);
  EXPECT_EQ(projection.projected.ips, Multiplicity::Many);
  EXPECT_EQ(projection.projected.granularity, Granularity::IpDp);
}

TEST(Skillicorn, OriginalClassesProjectToThemselves) {
  for (const char* name : {"DUP", "DMP-III", "IUP", "IAP-II", "IMP-XVI"}) {
    const MachineClass mc = *canonical_class(*parse_taxonomic_name(name));
    const SkillicornProjection projection = project_to_skillicorn(mc);
    EXPECT_FALSE(projection.required_extension) << name;
    EXPECT_EQ(projection.projected, mc) << name;
  }
}

TEST(Skillicorn, NineteenNewClasses) {
  // Section II-C: "created a table with extension to Skillicorn's
  // classification and introduced 19 new classes."
  EXPECT_EQ(extension_only_class_count(), 19);
}

}  // namespace
}  // namespace mpct
