/// Tests of mpct::service — the concurrent taxonomy query engine.
///
/// The concurrency strategy mirrors the engine's own design: every
/// deterministic property (result values, cache accounting, rejection
/// paths) is checked in the single-threaded fallback mode
/// (worker_threads == 0, fully reproducible under ctest), and the
/// multi-threaded paths are stress-checked for agreement with the
/// sequential API rather than for exact metric counts.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "arch/registry.hpp"
#include "core/taxonomy_table.hpp"
#include "service/service.hpp"

namespace {

using namespace mpct;
using namespace mpct::service;

EngineOptions single_threaded() {
  EngineOptions options;
  options.worker_threads = 0;
  return options;
}

Request classify_request(const arch::ArchitectureSpec& spec) {
  return ClassifyRequest::of(spec);
}

// ---------------------------------------------------------------------------
// BoundedQueue

TEST(BoundedQueue, PushPopFifo) {
  BoundedQueue<int> queue(4);
  for (int i = 0; i < 4; ++i) {
    int v = i;
    EXPECT_TRUE(queue.try_push(v));
  }
  int overflow = 99;
  EXPECT_FALSE(queue.try_push(overflow));
  EXPECT_EQ(overflow, 99);  // rejected item untouched
  for (int i = 0; i < 4; ++i) {
    int out = -1;
    EXPECT_TRUE(queue.pop(out));
    EXPECT_EQ(out, i);
  }
  EXPECT_EQ(queue.size(), 0u);
}

TEST(BoundedQueue, CloseDrainsThenStops) {
  BoundedQueue<int> queue(4);
  int v = 7;
  ASSERT_TRUE(queue.try_push(v));
  queue.close();
  int rejected = 8;
  EXPECT_FALSE(queue.try_push(rejected));
  int out = 0;
  EXPECT_TRUE(queue.pop(out));  // enqueued-before-close still drains
  EXPECT_EQ(out, 7);
  EXPECT_FALSE(queue.pop(out));  // closed and empty
}

TEST(BoundedQueue, PopUnblocksOnClose) {
  BoundedQueue<int> queue(4);
  std::thread consumer([&queue] {
    int out = 0;
    EXPECT_FALSE(queue.pop(out));
  });
  queue.close();
  consumer.join();
}

// ---------------------------------------------------------------------------
// Fingerprints

TEST(Fingerprint, EqualSpecsHashEqual) {
  const auto specs = arch::surveyed_architectures();
  arch::ArchitectureSpec copy = specs[2];
  EXPECT_EQ(fingerprint(specs[2]), fingerprint(copy));
  EXPECT_EQ(fingerprint(Request(ClassifyRequest::of(specs[2]))),
            fingerprint(Request(ClassifyRequest::of(copy))));
}

TEST(Fingerprint, FieldChangesChangeHash) {
  arch::ArchitectureSpec spec = arch::surveyed_architectures()[2];
  const Fingerprint base = fingerprint(spec);
  arch::ArchitectureSpec renamed = spec;
  renamed.name += "'";
  EXPECT_NE(fingerprint(renamed), base);
  arch::ArchitectureSpec reconnected = spec;
  reconnected.at(ConnectivityRole::DpDp) = arch::ConnectivityExpr::none();
  EXPECT_NE(fingerprint(reconnected), base);
}

TEST(Fingerprint, RequestTypesCannotCollide) {
  // A classify and a cost request over the same spec must key apart.
  const arch::ArchitectureSpec& spec = arch::surveyed_architectures()[4];
  CostRequest cost;
  cost.target = spec;
  EXPECT_NE(fingerprint(Request(ClassifyRequest::of(spec))),
            fingerprint(Request(std::move(cost))));
}

TEST(Fingerprint, RequirementFieldsAllParticipate) {
  explore::Requirements base;
  const auto key = [](const explore::Requirements& r) {
    RecommendRequest req;
    req.requirements = r;
    return fingerprint(Request(std::move(req)));
  };
  const Fingerprint base_key = key(base);
  explore::Requirements changed = base;
  changed.min_flexibility = 3;
  EXPECT_NE(key(changed), base_key);
  changed = base;
  changed.paradigm = MachineType::DataFlow;
  EXPECT_NE(key(changed), base_key);
  changed = base;
  changed.needs_shared_memory = true;
  EXPECT_NE(key(changed), base_key);
  changed = base;
  changed.objective = explore::Requirements::Objective::MinArea;
  EXPECT_NE(key(changed), base_key);
}

// ---------------------------------------------------------------------------
// Sharded LRU cache

TEST(ShardedLruCache, HitMissAndEvictionAccounting) {
  ShardedLruCache<int> cache(/*shard_count=*/1, /*capacity_per_shard=*/2);
  EXPECT_EQ(cache.get(1), nullptr);  // miss
  cache.put(1, 10);
  cache.put(2, 20);
  ASSERT_NE(cache.get(1), nullptr);
  EXPECT_EQ(*cache.get(1), 10);
  cache.put(3, 30);  // evicts key 2 (LRU; key 1 was just touched)
  EXPECT_EQ(cache.get(2), nullptr);
  ASSERT_NE(cache.get(3), nullptr);

  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.insertions, 3u);
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_GT(stats.hits, 0u);
  EXPECT_GT(stats.misses, 0u);
}

TEST(ShardedLruCache, LruOrderIsPerShardRecency) {
  ShardedLruCache<int> cache(1, 3);
  cache.put(1, 1);
  cache.put(2, 2);
  cache.put(3, 3);
  EXPECT_NE(cache.get(1), nullptr);  // refresh 1; LRU victim is now 2
  cache.put(4, 4);
  EXPECT_EQ(cache.get(2), nullptr);
  EXPECT_NE(cache.get(1), nullptr);
  EXPECT_NE(cache.get(3), nullptr);
  EXPECT_NE(cache.get(4), nullptr);
}

TEST(ShardedLruCache, ShardCountRoundsUpToPowerOfTwo) {
  ShardedLruCache<int> cache(5, 1);
  EXPECT_EQ(cache.shard_count(), 8u);
  EXPECT_EQ(cache.capacity(), 8u);
}

TEST(ShardedLruCache, EvictedValueSurvivesThroughSharedPtr) {
  ShardedLruCache<std::string> cache(1, 1);
  cache.put(1, std::string("first"));
  std::shared_ptr<const std::string> held = cache.get(1);
  cache.put(2, std::string("second"));  // evicts key 1
  ASSERT_NE(held, nullptr);
  EXPECT_EQ(*held, "first");  // reader's reference stays valid
}

// ---------------------------------------------------------------------------
// Metrics

TEST(LatencyHistogram, PercentilesBracketTheSamples) {
  LatencyHistogram hist;
  for (int i = 0; i < 100; ++i) {
    hist.record(std::chrono::microseconds(100));  // ~102.4us bucket
  }
  hist.record(std::chrono::milliseconds(50));  // one outlier
  const auto snap = hist.snapshot();
  EXPECT_EQ(snap.count, 101u);
  EXPECT_GT(snap.p50_us, 50.0);
  EXPECT_LT(snap.p50_us, 300.0);
  EXPECT_GE(snap.p99_us, snap.p50_us);
  EXPECT_GE(snap.max_us, 30000.0);
  EXPECT_GT(snap.mean_us, 0.0);
  EXPECT_LE(snap.min_us, snap.p50_us);
}

// The pinned boundary contract from metrics.hpp: bucket i covers
// [2^i, 2^(i+1)) ns — lower bound inclusive, upper exclusive — with
// bucket 0 irregular ([0, 2) ns) and the last bucket unbounded.
TEST(LatencyHistogram, BucketEdgesArePinned) {
  using std::chrono::nanoseconds;
  // Bucket 0 absorbs zero, clamped-negative and 1 ns samples.
  EXPECT_EQ(LatencyHistogram::bucket_of(nanoseconds(0)), 0u);
  EXPECT_EQ(LatencyHistogram::bucket_of(nanoseconds(-5)), 0u);
  EXPECT_EQ(LatencyHistogram::bucket_of(nanoseconds(1)), 0u);
  // Lower bound inclusive, upper exclusive, at every power of two.
  EXPECT_EQ(LatencyHistogram::bucket_of(nanoseconds(2)), 1u);
  EXPECT_EQ(LatencyHistogram::bucket_of(nanoseconds(3)), 1u);
  EXPECT_EQ(LatencyHistogram::bucket_of(nanoseconds(4)), 2u);
  for (std::size_t k = 2; k < 39; ++k) {
    const std::int64_t edge = std::int64_t{1} << k;
    EXPECT_EQ(LatencyHistogram::bucket_of(nanoseconds(edge - 1)), k - 1)
        << "2^" << k << " - 1";
    EXPECT_EQ(LatencyHistogram::bucket_of(nanoseconds(edge)), k)
        << "2^" << k;
  }
  // The last bucket is unbounded above.
  EXPECT_EQ(LatencyHistogram::bucket_of(nanoseconds(std::int64_t{1} << 39)),
            39u);
  EXPECT_EQ(
      LatencyHistogram::bucket_of(nanoseconds((std::int64_t{1} << 45) + 7)),
      39u);

  // The inclusive per-bucket upper edges the Prometheus exposition uses.
  EXPECT_EQ(LatencyHistogram::bucket_upper_ns(0), 1);
  EXPECT_EQ(LatencyHistogram::bucket_upper_ns(1), 3);
  EXPECT_EQ(LatencyHistogram::bucket_upper_ns(10), 2047);
  EXPECT_EQ(LatencyHistogram::bucket_upper_ns(39),
            std::numeric_limits<std::int64_t>::max());
}

TEST(LatencyHistogram, BucketsViewMatchesRecords) {
  using std::chrono::nanoseconds;
  LatencyHistogram hist;
  hist.record(nanoseconds(0));
  hist.record(nanoseconds(1));
  hist.record(nanoseconds(2));    // bucket 1
  hist.record(nanoseconds(7));    // bucket 2
  hist.record(nanoseconds(8));    // bucket 3
  hist.record(nanoseconds(std::int64_t{1} << 39));  // last bucket
  const LatencyHistogram::Buckets view = hist.buckets();
  EXPECT_EQ(view.counts[0], 2u);
  EXPECT_EQ(view.counts[1], 1u);
  EXPECT_EQ(view.counts[2], 1u);
  EXPECT_EQ(view.counts[3], 1u);
  EXPECT_EQ(view.counts[39], 1u);
  EXPECT_EQ(view.count, 6u);
  std::uint64_t total = 0;
  for (const std::uint64_t c : view.counts) total += c;
  EXPECT_EQ(total, view.count);
  EXPECT_EQ(view.sum_ns, 0u + 1 + 2 + 7 + 8 + (std::uint64_t{1} << 39));
}

TEST(BatchSizeHistogram, TracksBatchesAndMean) {
  BatchSizeHistogram hist;
  hist.record(1);
  hist.record(3);
  hist.record(200);  // clamps into the last slot
  EXPECT_EQ(hist.batches(), 3u);
  EXPECT_EQ(hist.requests(), 204u);
  EXPECT_EQ(hist.size_count(1), 1u);
  EXPECT_EQ(hist.size_count(3), 1u);
  EXPECT_EQ(hist.size_count(BatchSizeHistogram::kMaxTracked), 1u);
  EXPECT_DOUBLE_EQ(hist.mean(), 68.0);
}

TEST(Metrics, RendersTableAndCsv) {
  QueryEngine engine(single_threaded());
  const auto& spec = arch::surveyed_architectures()[0];
  engine.submit(classify_request(spec)).get();
  engine.submit(classify_request(spec)).get();  // cache hit

  const std::string table = engine.metrics().to_table(engine.cache_stats());
  EXPECT_NE(table.find("cache"), std::string::npos);
  EXPECT_NE(table.find("latency: classify"), std::string::npos);

  const std::string csv = engine.metrics().to_csv(engine.cache_stats());
  EXPECT_NE(csv.find("cache_hits,1"), std::string::npos);
  EXPECT_NE(csv.find("submitted,2"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Single-threaded fallback: deterministic results and accounting

TEST(QueryEngineSingleThread, MatchesSequentialClassifyExactly) {
  QueryEngine engine(single_threaded());
  for (const arch::ArchitectureSpec& spec : arch::surveyed_architectures()) {
    const QueryResponse response =
        engine.submit(classify_request(spec)).get();
    ASSERT_TRUE(response.ok()) << spec.name;
    const ClassifyResponse* payload = response.classify();
    ASSERT_NE(payload, nullptr);

    const Classification expected = spec.classify();
    EXPECT_EQ(payload->classification.name, expected.name) << spec.name;
    EXPECT_EQ(payload->classification.implementable, expected.implementable);
    EXPECT_EQ(payload->flexibility.total(), spec.flexibility().total());
    EXPECT_EQ(payload->spec, spec);
  }
}

TEST(QueryEngineSingleThread, AdlTextInputClassifies) {
  QueryEngine engine(single_threaded());
  const std::string adl = arch::to_adl(*arch::find_architecture("MorphoSys"));
  const QueryResponse response =
      engine.submit(ClassifyRequest::of_adl(adl)).get();
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response.classify()->classification.name,
            arch::find_architecture("MorphoSys")->classify().name);
}

TEST(QueryEngineSingleThread, AdlParseErrorIsStructured) {
  QueryEngine engine(single_threaded());
  const QueryResponse response =
      engine.submit(ClassifyRequest::of_adl("architecture Broken {")).get();
  EXPECT_FALSE(response.ok());
  EXPECT_EQ(response.status.code, StatusCode::ParseError);
  EXPECT_FALSE(response.status.message.empty());
  EXPECT_EQ(engine.metrics().failed.value(), 1u);
}

TEST(QueryEngineSingleThread, RecommendMatchesSequential) {
  QueryEngine engine(single_threaded());
  explore::Requirements requirements;
  requirements.min_flexibility = 4;
  RecommendRequest request;
  request.requirements = requirements;

  const QueryResponse response = engine.submit(Request(request)).get();
  ASSERT_TRUE(response.ok());
  const auto expected = explore::recommend(requirements);
  const RecommendResponse* payload = response.recommend();
  ASSERT_NE(payload, nullptr);
  ASSERT_EQ(payload->recommendations.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(payload->recommendations[i].name, expected[i].name);
    EXPECT_EQ(payload->recommendations[i].flexibility,
              expected[i].flexibility);
    EXPECT_EQ(payload->recommendations[i].config_bits,
              expected[i].config_bits);
  }
}

TEST(QueryEngineSingleThread, RecommendTopKTruncates) {
  QueryEngine engine(single_threaded());
  RecommendRequest request;
  request.top_k = 3;
  const QueryResponse response = engine.submit(Request(request)).get();
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response.recommend()->recommendations.size(), 3u);
}

TEST(QueryEngineSingleThread, CostSweepMatchesSequential) {
  QueryEngine engine(single_threaded());
  const arch::ArchitectureSpec& spec = *arch::find_architecture("MorphoSys");
  CostRequest request;
  request.target = spec;
  request.n_sweep = {4, 16, 64};

  const QueryResponse response = engine.submit(Request(request)).get();
  ASSERT_TRUE(response.ok());
  const CostResponse* payload = response.cost();
  ASSERT_NE(payload, nullptr);
  ASSERT_EQ(payload->points.size(), 3u);

  const auto library = cost::ComponentLibrary::default_library();
  for (const CostResponse::Point& point : payload->points) {
    cost::EstimateOptions options;
    options.n = point.n;
    EXPECT_DOUBLE_EQ(point.area.total_kge(),
                     cost::estimate_area(spec, library, options).total_kge());
    EXPECT_EQ(
        point.config_bits.total(),
        cost::estimate_config_bits(spec, library, options).total());
  }
}

TEST(QueryEngineSingleThread, InvalidCostSweepRejected) {
  QueryEngine engine(single_threaded());
  CostRequest request;
  request.target = MachineClass{};
  request.n_sweep = {8, -1};
  const QueryResponse response = engine.submit(Request(request)).get();
  EXPECT_EQ(response.status.code, StatusCode::InvalidRequest);
}

TEST(QueryEngineSingleThread, CacheHitsAndEvictions) {
  EngineOptions options = single_threaded();
  options.cache_shards = 1;
  options.cache_capacity_per_shard = 2;
  QueryEngine engine(options);
  const auto specs = arch::surveyed_architectures();

  // Miss, then hit.
  EXPECT_FALSE(engine.submit(classify_request(specs[0])).get().cache_hit);
  EXPECT_TRUE(engine.submit(classify_request(specs[0])).get().cache_hit);
  EXPECT_EQ(engine.metrics().cache_hits.value(), 1u);
  EXPECT_EQ(engine.metrics().cache_misses.value(), 1u);

  // Fill past capacity: specs[0] becomes the eviction victim (LRU).
  engine.submit(classify_request(specs[1])).get();
  engine.submit(classify_request(specs[2])).get();
  EXPECT_EQ(engine.cache_stats().evictions, 1u);
  EXPECT_FALSE(engine.submit(classify_request(specs[0])).get().cache_hit);

  // A cached payload is identical to a computed one.
  const QueryResponse computed = engine.submit(classify_request(specs[2])).get();
  EXPECT_TRUE(computed.cache_hit);
  EXPECT_EQ(computed.classify()->classification.name,
            specs[2].classify().name);
}

TEST(QueryEngineSingleThread, CacheDisabledNeverHits) {
  EngineOptions options = single_threaded();
  options.enable_cache = false;
  QueryEngine engine(options);
  const auto& spec = arch::surveyed_architectures()[0];
  engine.submit(classify_request(spec)).get();
  EXPECT_FALSE(engine.submit(classify_request(spec)).get().cache_hit);
  EXPECT_EQ(engine.metrics().cache_hits.value(), 0u);
  EXPECT_EQ(engine.cache_stats().insertions, 0u);
}

TEST(QueryEngineSingleThread, ExpiredDeadlineRejectedUpFront) {
  QueryEngine engine(single_threaded());
  const Deadline expired = Deadline::at_time(Clock::now() -
                                             std::chrono::milliseconds(1));
  const QueryResponse response =
      engine.submit(classify_request(arch::surveyed_architectures()[0]),
                    expired)
          .get();
  EXPECT_EQ(response.status.code, StatusCode::DeadlineExceeded);
  EXPECT_EQ(engine.metrics().rejected_deadline.value(), 1u);
  EXPECT_EQ(engine.metrics().completed.value(), 0u);
}

TEST(QueryEngineSingleThread, MetricCountsAddUp) {
  QueryEngine engine(single_threaded());
  const auto specs = arch::surveyed_architectures();
  for (int round = 0; round < 2; ++round) {
    for (const arch::ArchitectureSpec& spec : specs) {
      ASSERT_TRUE(engine.submit(classify_request(spec)).get().ok());
    }
  }
  const std::uint64_t n = static_cast<std::uint64_t>(specs.size());
  EXPECT_EQ(engine.metrics().submitted.value(), 2 * n);
  EXPECT_EQ(engine.metrics().completed.value(), 2 * n);
  EXPECT_EQ(engine.metrics().cache_misses.value(), n);
  EXPECT_EQ(engine.metrics().cache_hits.value(), n);
  EXPECT_DOUBLE_EQ(engine.metrics().cache_hit_rate(), 0.5);
  const auto latency =
      engine.metrics().latency(RequestType::Classify).snapshot();
  EXPECT_EQ(latency.count, 2 * n);
}

// ---------------------------------------------------------------------------
// Backpressure (workers suspended so the queue fills deterministically)

TEST(QueryEngineBackpressure, QueueFullRejectsWithoutBlocking) {
  EngineOptions options;
  options.worker_threads = 2;
  options.queue_capacity = 4;
  options.start_workers = false;  // nothing drains yet
  QueryEngine engine(options);
  const auto& spec = arch::surveyed_architectures()[0];

  std::vector<std::future<QueryResponse>> accepted;
  for (int i = 0; i < 4; ++i) {
    accepted.push_back(engine.submit(classify_request(spec)));
  }
  EXPECT_EQ(engine.queue_depth(), 4u);

  // Fifth request: queue full -> immediate, structured rejection.
  QueryResponse overflow = engine.submit(classify_request(spec)).get();
  EXPECT_EQ(overflow.status.code, StatusCode::QueueFull);
  EXPECT_EQ(engine.metrics().rejected_queue_full.value(), 1u);

  // Start the pool; the four accepted requests complete correctly.
  engine.start();
  for (auto& future : accepted) {
    const QueryResponse response = future.get();
    ASSERT_TRUE(response.ok());
    EXPECT_EQ(response.classify()->classification.name, spec.classify().name);
  }
  engine.drain();
  EXPECT_EQ(engine.metrics().completed.value(), 4u);
}

TEST(QueryEngineBackpressure, NeverStartedEngineRejectsPendingOnShutdown) {
  EngineOptions options;
  options.worker_threads = 2;
  options.queue_capacity = 8;
  options.start_workers = false;
  std::future<QueryResponse> pending;
  {
    QueryEngine engine(options);
    pending =
        engine.submit(classify_request(arch::surveyed_architectures()[0]));
  }  // destructor: queue drained by rejection, future must be ready
  const QueryResponse response = pending.get();
  EXPECT_EQ(response.status.code, StatusCode::ShuttingDown);
}

TEST(QueryEngineBackpressure, DeadlineExpiresWhileQueued) {
  EngineOptions options;
  options.worker_threads = 1;
  options.queue_capacity = 8;
  options.start_workers = false;
  QueryEngine engine(options);

  auto future =
      engine.submit(classify_request(arch::surveyed_architectures()[0]),
                    Deadline::in(std::chrono::milliseconds(1)));
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  engine.start();  // worker picks it up after the deadline passed
  EXPECT_EQ(future.get().status.code, StatusCode::DeadlineExceeded);
}

// ---------------------------------------------------------------------------
// Multi-threaded stress: concurrent correctness vs the sequential API

TEST(QueryEngineConcurrent, FourWorkersMatchSequentialOverRegistry) {
  EngineOptions options;
  options.worker_threads = 4;
  options.queue_capacity = 4096;
  QueryEngine engine(options);
  const auto specs = arch::surveyed_architectures();

  // Expected results via the sequential API.
  std::vector<Classification> expected;
  std::vector<int> expected_flex;
  for (const arch::ArchitectureSpec& spec : specs) {
    expected.push_back(spec.classify());
    expected_flex.push_back(spec.flexibility().total());
  }

  constexpr int kRounds = 40;
  std::vector<std::future<QueryResponse>> futures;
  futures.reserve(static_cast<std::size_t>(kRounds) * specs.size());
  for (int round = 0; round < kRounds; ++round) {
    for (const arch::ArchitectureSpec& spec : specs) {
      futures.push_back(engine.submit(classify_request(spec)));
    }
  }
  for (std::size_t i = 0; i < futures.size(); ++i) {
    const QueryResponse response = futures[i].get();
    const std::size_t spec_index = i % specs.size();
    ASSERT_TRUE(response.ok()) << specs[spec_index].name;
    // Bit-identical to the sequential API, cache hit or not.
    EXPECT_EQ(response.classify()->classification.name,
              expected[spec_index].name);
    EXPECT_EQ(response.classify()->flexibility.total(),
              expected_flex[spec_index]);
  }
  engine.drain();
  EXPECT_EQ(engine.metrics().completed.value(), futures.size());
  EXPECT_EQ(engine.metrics().queue_depth.value(), 0);
}

TEST(QueryEngineConcurrent, ManyProducersMixedRequestTypes) {
  EngineOptions options;
  options.worker_threads = 4;
  options.queue_capacity = 4096;
  QueryEngine engine(options);
  const auto specs = arch::surveyed_architectures();

  constexpr int kProducers = 4;
  constexpr int kPerProducer = 50;
  std::atomic<int> ok_count{0};
  std::atomic<int> mismatch_count{0};

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        const auto& spec = specs[static_cast<std::size_t>(p * kPerProducer + i) %
                                 specs.size()];
        switch (i % 3) {
          case 0: {
            QueryResponse r = engine.submit(classify_request(spec)).get();
            if (r.ok() &&
                r.classify()->classification.name == spec.classify().name) {
              ok_count.fetch_add(1);
            } else {
              mismatch_count.fetch_add(1);
            }
            break;
          }
          case 1: {
            RecommendRequest request;
            request.requirements.min_flexibility = i % 8;
            request.top_k = 5;
            QueryResponse r = engine.submit(Request(request)).get();
            (r.ok() ? ok_count : mismatch_count).fetch_add(1);
            break;
          }
          default: {
            CostRequest request;
            request.target = spec;
            request.n_sweep = {4, 16};
            QueryResponse r = engine.submit(Request(request)).get();
            (r.ok() ? ok_count : mismatch_count).fetch_add(1);
            break;
          }
        }
      }
    });
  }
  for (std::thread& producer : producers) producer.join();

  EXPECT_EQ(mismatch_count.load(), 0);
  EXPECT_EQ(ok_count.load(), kProducers * kPerProducer);
  EXPECT_EQ(engine.metrics().completed.value(),
            static_cast<std::uint64_t>(kProducers * kPerProducer));
  EXPECT_GT(engine.metrics().cache_hits.value(), 0u);
}

TEST(QueryEngineConcurrent, SubmitBatchResolvesEveryFuture) {
  EngineOptions options;
  options.worker_threads = 2;
  QueryEngine engine(options);
  const auto specs = arch::surveyed_architectures();

  std::vector<Request> batch;
  for (const arch::ArchitectureSpec& spec : specs) {
    batch.push_back(classify_request(spec));
  }
  auto futures = engine.submit_batch(std::move(batch));
  ASSERT_EQ(futures.size(), specs.size());
  for (std::size_t i = 0; i < futures.size(); ++i) {
    const QueryResponse response = futures[i].get();
    ASSERT_TRUE(response.ok());
    EXPECT_EQ(response.classify()->classification.name,
              specs[i].classify().name);
  }
}

TEST(QueryEngineConcurrent, ShutdownIsIdempotentAndDrains) {
  EngineOptions options;
  options.worker_threads = 2;
  QueryEngine engine(options);
  std::vector<std::future<QueryResponse>> futures;
  for (int i = 0; i < 20; ++i) {
    futures.push_back(
        engine.submit(classify_request(arch::surveyed_architectures()
                                           [static_cast<std::size_t>(i) % 25])));
  }
  engine.shutdown();
  engine.shutdown();  // second call is a no-op
  for (auto& future : futures) {
    const QueryResponse response = future.get();
    // Accepted before shutdown -> completed (never dropped).
    EXPECT_TRUE(response.ok());
  }
}

}  // namespace
