#include "explore/recommend.hpp"

#include <gtest/gtest.h>

#include "core/flexibility.hpp"

namespace mpct::explore {
namespace {

TEST(Recommend, EmptyRequirementsAdmitEverything) {
  const auto recs = recommend(Requirements{});
  EXPECT_EQ(recs.size(), 43u);  // every implementable class
}

TEST(Recommend, FlexibilityFloorFilters) {
  Requirements req;
  req.min_flexibility = 7;
  const auto recs = recommend(req);
  ASSERT_EQ(recs.size(), 2u);  // ISP-XVI (7) and USP (8)
  for (const Recommendation& rec : recs) {
    EXPECT_GE(rec.flexibility, 7);
  }
}

TEST(Recommend, ImpossibleFloorYieldsNothing) {
  Requirements req;
  req.min_flexibility = 9;
  EXPECT_TRUE(recommend(req).empty());
}

TEST(Recommend, ParadigmRestriction) {
  Requirements req;
  req.paradigm = MachineType::DataFlow;
  const auto recs = recommend(req);
  // DUP + DMP I-IV + USP (universal always qualifies).
  EXPECT_EQ(recs.size(), 6u);
  for (const Recommendation& rec : recs) {
    EXPECT_TRUE(rec.name.machine_type == MachineType::DataFlow ||
                rec.name.machine_type == MachineType::UniversalFlow)
        << to_string(rec.name);
  }
}

TEST(Recommend, IndependentProgramsForceManyIps) {
  Requirements req;
  req.needs_independent_programs = true;
  const auto recs = recommend(req);
  ASSERT_FALSE(recs.empty());
  for (const Recommendation& rec : recs) {
    EXPECT_TRUE(rec.name.processing_type == ProcessingType::MultiProcessor ||
                rec.name.processing_type ==
                    ProcessingType::SpatialProcessor ||
                rec.name.machine_type == MachineType::UniversalFlow)
        << to_string(rec.name);
  }
}

TEST(Recommend, PeExchangeForcesDpDpCrossbar) {
  Requirements req;
  req.paradigm = MachineType::InstructionFlow;
  req.needs_pe_exchange = true;
  const auto recs = recommend(req);
  ASSERT_FALSE(recs.empty());
  for (const Recommendation& rec : recs) {
    if (rec.name.machine_type == MachineType::UniversalFlow) continue;
    // Sub-type numeral's DP-DP bit must be set (even subtypes).
    EXPECT_EQ(rec.name.subtype % 2, 0) << to_string(rec.name);
  }
}

TEST(Recommend, SortedByObjective) {
  Requirements req;
  req.min_flexibility = 3;
  req.objective = Requirements::Objective::MinConfigBits;
  const auto by_bits = recommend(req);
  for (std::size_t i = 1; i < by_bits.size(); ++i) {
    EXPECT_LE(by_bits[i - 1].config_bits, by_bits[i].config_bits);
  }
  req.objective = Requirements::Objective::MinArea;
  const auto by_area = recommend(req);
  for (std::size_t i = 1; i < by_area.size(); ++i) {
    EXPECT_LE(by_area[i - 1].area_kge, by_area[i].area_kge);
  }
}

TEST(Recommend, PaperUseCase) {
  // "Which class offers flexibility >= 3 in the instruction-flow world
  // with minimum configuration overhead?" -> IAP-IV, the cheapest class
  // with a score of 3 (one IP to configure, two small crossbars).
  Requirements req;
  req.min_flexibility = 3;
  req.paradigm = MachineType::InstructionFlow;
  const auto recs = recommend(req);
  ASSERT_FALSE(recs.empty());
  EXPECT_EQ(to_string(recs.front().name), "IAP-IV");
}

TEST(Recommend, RationaleIsPopulated) {
  Requirements req;
  req.needs_shared_memory = true;
  for (const Recommendation& rec : recommend(req)) {
    EXPECT_FALSE(rec.rationale.empty()) << to_string(rec.name);
  }
}

TEST(Recommend, UspAlwaysQualifies) {
  Requirements req;
  req.min_flexibility = 8;
  req.needs_independent_programs = true;
  req.needs_pe_exchange = true;
  req.needs_shared_memory = true;
  const auto recs = recommend(req);
  ASSERT_EQ(recs.size(), 1u);
  EXPECT_EQ(to_string(recs.front().name), "USP");
}

TEST(Recommend, TieBreakOnNameIsDeterministic) {
  // A zero-cost library zeroes every component term, leaving only the
  // structural crossbar select bits — so many classes tie exactly on
  // both objectives.  Ties must fall through to the rendered-name
  // comparison, making the full order observable and repeatable.
  cost::ComponentLibrary zero;
  zero.name = "zero";
  zero.ip = zero.dp = zero.im = zero.dm = zero.lut = {};
  zero.switch_params.ge_per_crosspoint_bit = 0;
  zero.switch_params.ge_per_wire_bit = 0;

  Requirements req;
  const auto recs = recommend(req, zero);
  ASSERT_EQ(recs.size(), 43u);
  std::size_t tied_pairs = 0;
  for (std::size_t i = 1; i < recs.size(); ++i) {
    EXPECT_EQ(recs[i].area_kge, 0.0);
    if (recs[i - 1].config_bits == recs[i].config_bits) {
      ++tied_pairs;
      EXPECT_LT(to_string(recs[i - 1].name), to_string(recs[i].name));
    }
  }
  EXPECT_GT(tied_pairs, 0u) << "expected cost ties under the zero library";
  // And the whole ranking is reproducible call to call.
  const auto again = recommend(req, zero);
  ASSERT_EQ(recs.size(), again.size());
  for (std::size_t i = 0; i < recs.size(); ++i) {
    EXPECT_EQ(recs[i].name, again[i].name);
    EXPECT_EQ(recs[i].rationale, again[i].rationale);
  }
}

TEST(Recommend, ImpossibleFloorEmptyEvenWithEveryFilter) {
  Requirements req;
  req.min_flexibility = 9;  // above USP's maximum score of 8
  req.paradigm = MachineType::InstructionFlow;
  req.needs_independent_programs = true;
  req.needs_pe_exchange = true;
  req.needs_shared_memory = true;
  EXPECT_TRUE(recommend(req).empty());
}

TEST(Recommend, CostsScaleWithDesignPoint) {
  Requirements small;
  small.min_flexibility = 6;
  small.n = 8;
  Requirements large = small;
  large.n = 64;
  const auto recs_small = recommend(small);
  const auto recs_large = recommend(large);
  ASSERT_FALSE(recs_small.empty());
  ASSERT_EQ(recs_small.size(), recs_large.size());
  // Compare per-class (sort order may differ): find IMP-XVI in both.
  const auto find = [](const std::vector<Recommendation>& recs) {
    for (const Recommendation& rec : recs) {
      if (to_string(rec.name) == "IMP-XVI") return rec;
    }
    throw std::runtime_error("IMP-XVI missing");
  };
  EXPECT_LT(find(recs_small).area_kge, find(recs_large).area_kge);
  EXPECT_LT(find(recs_small).config_bits, find(recs_large).config_bits);
}

}  // namespace
}  // namespace mpct::explore
