#include <gtest/gtest.h>

#include "bibliometrics/corpus.hpp"
#include "bibliometrics/query.hpp"
#include "bibliometrics/topics.hpp"
#include "bibliometrics/trends.hpp"

namespace mpct::biblio {
namespace {

TEST(Topics, SixDefaultTopics) {
  EXPECT_EQ(default_topics().size(), 6u);
  EXPECT_NE(find_topic("multicore"), nullptr);
  EXPECT_NE(find_topic("reconfigurable computing"), nullptr);
  EXPECT_EQ(find_topic("quantum"), nullptr);
}

TEST(Topics, LogisticCurveShape) {
  const TopicModel* multicore = find_topic("multicore");
  ASSERT_NE(multicore, nullptr);
  // Near-zero before the midpoint, near-saturation after.
  EXPECT_LT(multicore->expected(1995), multicore->saturation * 0.05);
  EXPECT_GT(multicore->expected(2010),
            multicore->base + multicore->saturation * 0.9);
  // Monotone nondecreasing.
  for (int year = 1995; year < 2010; ++year) {
    EXPECT_LE(multicore->expected(year), multicore->expected(year + 1))
        << year;
  }
}

TEST(Corpus, DeterministicForSeed) {
  const Corpus a = Corpus::standard(7);
  const Corpus b = Corpus::standard(7);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.publications()[i].title, b.publications()[i].title);
    EXPECT_EQ(a.publications()[i].year, b.publications()[i].year);
  }
}

TEST(Corpus, DifferentSeedsDiffer) {
  const Corpus a = Corpus::standard(1);
  const Corpus b = Corpus::standard(2);
  EXPECT_NE(a.size(), b.size());
}

TEST(Corpus, RecordsAreWellFormed) {
  const Corpus corpus = Corpus::standard();
  ASSERT_GT(corpus.size(), 1000u);
  std::int64_t last_id = 0;
  for (const Publication& pub : corpus.publications()) {
    EXPECT_GT(pub.id, last_id);  // ids strictly increase
    last_id = pub.id;
    EXPECT_GE(pub.year, 1995);
    EXPECT_LE(pub.year, 2010);
    EXPECT_FALSE(pub.title.empty());
    EXPECT_FALSE(pub.venue.empty());
    EXPECT_FALSE(pub.keywords.empty());
  }
}

TEST(Corpus, TitlesMentionTheTopic) {
  const Corpus corpus = Corpus::standard();
  int mentioning = 0;
  for (const Publication& pub : corpus.publications()) {
    if (pub.title.find("multicore") != std::string::npos) ++mentioning;
  }
  EXPECT_GT(mentioning, 100);
}

TEST(Query, CountsMatchManualScan) {
  const Corpus corpus = Corpus::standard();
  const QueryEngine engine(corpus);
  int manual = 0;
  for (const Publication& pub : corpus.publications()) {
    if (pub.year != 2008) continue;
    for (const auto& keyword : pub.keywords) {
      if (keyword == "fpga") ++manual;
    }
  }
  EXPECT_EQ(engine.count("fpga", 2008), manual);
}

TEST(Query, TotalSumsYears) {
  const QueryEngine engine(Corpus::standard());
  int sum = 0;
  for (int year = 1995; year <= 2010; ++year) {
    sum += engine.count("cgra", year);
  }
  EXPECT_EQ(engine.total("cgra"), sum);
}

TEST(Query, YearlyCountsSpanCorpusRange) {
  const QueryEngine engine(Corpus::standard());
  const auto counts = engine.yearly_counts("parallel");
  EXPECT_EQ(counts.size(), 16u);  // 1995..2010
  EXPECT_EQ(counts.front(), engine.count("parallel", 1995));
  EXPECT_EQ(counts.back(), engine.count("parallel", 2010));
}

TEST(Query, UnknownKeywordIsZero) {
  const QueryEngine engine(Corpus::standard());
  EXPECT_EQ(engine.count("blockchain", 2008), 0);
  EXPECT_EQ(engine.total("blockchain"), 0);
}

TEST(Query, ConjunctiveQueries) {
  const Corpus corpus = Corpus::standard();
  const QueryEngine engine(corpus);
  // Papers tagged both with a narrow keyword and "parallel".
  const int both = engine.count_all_of({"fpga", "parallel"}, 2008);
  EXPECT_GT(both, 0);
  EXPECT_LE(both, engine.count("fpga", 2008));
  EXPECT_EQ(engine.count_all_of({"fpga", "blockchain"}, 2008), 0);
  EXPECT_EQ(engine.count_all_of({}, 2008), 0);
}

TEST(Query, KeywordListCoversTopics) {
  const QueryEngine engine(Corpus::standard());
  const auto keywords = engine.keywords();
  EXPECT_GE(keywords.size(), 6u);
}

TEST(Trends, SeriesPerTopic) {
  const QueryEngine engine(Corpus::standard());
  const auto series = research_trends(engine);
  ASSERT_EQ(series.size(), 6u);
  for (const TrendSeries& s : series) {
    EXPECT_EQ(s.years.size(), 16u);
    EXPECT_EQ(s.counts.size(), 16u);
  }
}

TEST(Trends, Figure1ShapeHolds) {
  // The paper's Section I claim: research interest in multicore and
  // reconfigurable architectures "increased significantly in the last
  // five years" (2005-2010), while broad parallel computing grew
  // steadily.
  const QueryEngine engine(Corpus::standard());
  const auto series = research_trends(engine);
  const auto find = [&](std::string_view name) -> const TrendSeries& {
    for (const TrendSeries& s : series) {
      if (s.topic == name) return s;
    }
    throw std::runtime_error("missing series");
  };
  EXPECT_TRUE(took_off(find("multicore"), 2005));
  EXPECT_TRUE(took_off(find("reconfigurable computing"), 2005));
  EXPECT_TRUE(took_off(find("GPU computing"), 2005));
  // Parallel computing is the largest series at the end of the window.
  const TrendSeries& parallel = find("parallel computing");
  const TrendSeries& cgra = find("CGRA");
  EXPECT_GT(parallel.counts.back(), cgra.counts.back());
  // CGRA is the smallest of the six in 2010 (a niche the paper surveys).
  for (const TrendSeries& s : series) {
    if (s.topic == "CGRA") continue;
    EXPECT_GE(s.counts.back(), cgra.counts.back()) << s.topic;
  }
}

TEST(Trends, AverageSlopeComputation) {
  TrendSeries series;
  series.topic = "test";
  series.years = {2000, 2001, 2002, 2003, 2004};
  series.counts = {0, 10, 20, 40, 80};
  EXPECT_NEAR(average_slope(series, 2000, 2002), 10.0, 1e-9);
  EXPECT_NEAR(average_slope(series, 2002, 2004), 30.0, 1e-9);
  EXPECT_TRUE(took_off(series, 2002, 2.0));
  EXPECT_FALSE(took_off(series, 2002, 4.0));
}

TEST(Trends, FlatSeriesNeverTakesOff) {
  TrendSeries series;
  series.years = {2000, 2001, 2002, 2003};
  series.counts = {50, 50, 50, 50};
  EXPECT_FALSE(took_off(series, 2001));
}

}  // namespace
}  // namespace mpct::biblio
