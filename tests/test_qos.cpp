/// QoS serving path (src/qos): priority classes, weighted fair
/// queueing, the admission controller's degrade/shed ladder, server-
/// side cancellation, trace-collector retention, and the wire-level
/// compatibility rules for clients that predate all of it.
#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <future>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include <atomic>

#include "arch/registry.hpp"
#include "explore/sweep.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "qos/admission.hpp"
#include "qos/cancel.hpp"
#include "qos/priority.hpp"
#include "qos/wfq_queue.hpp"
#include "service/engine.hpp"
#include "trace/collector.hpp"
#include "wire/wire.hpp"

namespace mpct {
namespace {

using qos::Admission;
using qos::AdmissionAction;
using qos::AdmissionController;
using qos::AdmissionOptions;
using qos::PriorityClass;
using qos::WfqQueue;
using qos::WfqWeights;
using service::Deadline;
using service::EngineOptions;
using service::QueryEngine;
using service::QueryResponse;
using service::RecommendRequest;
using service::Request;
using service::StatusCode;

// ---------------------------------------------------------------------------
// WfqQueue: the engine's per-class bounded queue with deficit-round-
// robin dispatch.

TEST(WfqQueue, FifoWithinASingleClass) {
  WfqQueue<int> queue(8);
  for (int value : {1, 2, 3, 4, 5}) {
    int item = value;
    ASSERT_TRUE(queue.try_push(PriorityClass::Interactive, item));
  }
  for (int expected : {1, 2, 3, 4, 5}) {
    int out = 0;
    ASSERT_TRUE(queue.pop(out));
    EXPECT_EQ(out, expected);
  }
  EXPECT_EQ(queue.size(), 0u);
}

TEST(WfqQueue, DeficitRoundRobinFollowsWeights) {
  // weight(Interactive)=2, weight(Batch)=1, weight(Background)=1: each
  // non-empty class drains `weight` items per visit, empty classes are
  // skipped without consuming a turn, and an emptied class forfeits its
  // remaining credit.
  WfqWeights weights;
  weights.interactive = 2;
  weights.batch = 1;
  weights.background = 1;
  WfqQueue<std::string> queue(8, weights);
  const auto push = [&queue](PriorityClass cls, const char* label) {
    std::string item = label;
    ASSERT_TRUE(queue.try_push(cls, item));
  };
  push(PriorityClass::Interactive, "i1");
  push(PriorityClass::Interactive, "i2");
  push(PriorityClass::Interactive, "i3");
  push(PriorityClass::Interactive, "i4");
  push(PriorityClass::Batch, "b1");
  push(PriorityClass::Batch, "b2");
  push(PriorityClass::Batch, "b3");
  push(PriorityClass::Background, "g1");
  push(PriorityClass::Background, "g2");

  std::vector<std::string> order;
  while (std::optional<std::string> out = queue.try_pop()) {
    order.push_back(*out);
  }
  const std::vector<std::string> expected = {"i1", "i2", "b1", "g1", "i3",
                                             "i4", "b2", "g2", "b3"};
  EXPECT_EQ(order, expected);
}

TEST(WfqQueue, EmptyClassesAreSkippedWithoutConsumingTurns) {
  // Work-conserving: with only Background queued, Background drains
  // back-to-back — the higher classes' weights never stall the queue.
  WfqQueue<int> queue(4);
  for (int value : {10, 11, 12}) {
    int item = value;
    ASSERT_TRUE(queue.try_push(PriorityClass::Background, item));
  }
  for (int expected : {10, 11, 12}) {
    int out = 0;
    ASSERT_TRUE(queue.pop(out));
    EXPECT_EQ(out, expected);
  }
}

TEST(WfqQueue, TryPushRespectsPerClassCapacityAndLeavesItemUntouched) {
  WfqQueue<std::string> queue(2);
  std::string a = "a";
  std::string b = "b";
  std::string c = "still mine";
  ASSERT_TRUE(queue.try_push(PriorityClass::Interactive, a));
  ASSERT_TRUE(queue.try_push(PriorityClass::Interactive, b));
  EXPECT_FALSE(queue.try_push(PriorityClass::Interactive, c));
  EXPECT_EQ(c, "still mine");  // rejected pushes never consume the item

  // Capacity is per class: Batch admission is independent of the
  // Interactive backlog.
  EXPECT_FALSE(queue.has_room(PriorityClass::Interactive, 1));
  EXPECT_TRUE(queue.has_room(PriorityClass::Batch, 2));
  EXPECT_FALSE(queue.has_room(PriorityClass::Batch, 3));
  std::string d = "d";
  EXPECT_TRUE(queue.try_push(PriorityClass::Batch, d));
}

TEST(WfqQueue, CloseDrainsQueuedItemsThenUnblocksPop) {
  WfqQueue<int> queue(4);
  int one = 1;
  int two = 2;
  ASSERT_TRUE(queue.try_push(PriorityClass::Batch, one));
  ASSERT_TRUE(queue.try_push(PriorityClass::Batch, two));
  queue.close();
  int rejected = 3;
  EXPECT_FALSE(queue.try_push(PriorityClass::Interactive, rejected));
  int out = 0;
  EXPECT_TRUE(queue.pop(out));
  EXPECT_EQ(out, 1);
  EXPECT_TRUE(queue.pop(out));
  EXPECT_EQ(out, 2);
  EXPECT_FALSE(queue.pop(out));  // closed and empty
}

TEST(WfqQueue, PopBlocksUntilAPushArrives) {
  WfqQueue<int> queue(4);
  int out = 0;
  std::thread popper([&queue, &out] { ASSERT_TRUE(queue.pop(out)); });
  int value = 42;
  ASSERT_TRUE(queue.try_push(PriorityClass::Interactive, value));
  popper.join();
  EXPECT_EQ(out, 42);
}

TEST(WfqQueue, RemoveAllIfReclaimsMatchesAndPreservesSurvivorOrder) {
  WfqQueue<int> queue(8);
  for (int value : {1, 2, 3, 4}) {
    int item = value;
    ASSERT_TRUE(queue.try_push(PriorityClass::Interactive, item));
  }
  for (int value : {5, 6}) {
    int item = value;
    ASSERT_TRUE(queue.try_push(PriorityClass::Batch, item));
  }
  std::vector<int> removed;
  const std::size_t count =
      queue.remove_all_if([](int v) { return v % 2 == 1; }, removed);
  EXPECT_EQ(count, 3u);
  EXPECT_EQ(removed, (std::vector<int>{1, 3, 5}));
  EXPECT_EQ(queue.size(), 3u);
  std::vector<int> survivors;
  int out = 0;
  while (queue.size() > 0) {
    ASSERT_TRUE(queue.pop(out));
    survivors.push_back(out);
  }
  // Interactive survivors stay FIFO; DRR then visits Batch.
  EXPECT_EQ(survivors, (std::vector<int>{2, 4, 6}));
}

TEST(WfqQueue, MaxFillTracksTheFullestClass) {
  WfqQueue<int> queue(4);
  EXPECT_DOUBLE_EQ(queue.max_fill(), 0.0);
  int item = 0;
  ASSERT_TRUE(queue.try_push(PriorityClass::Interactive, item));
  ASSERT_TRUE(queue.try_push(PriorityClass::Interactive, item));
  ASSERT_TRUE(queue.try_push(PriorityClass::Batch, item));
  EXPECT_DOUBLE_EQ(queue.max_fill(), 0.5);  // fullest subqueue: 2/4
}

// ---------------------------------------------------------------------------
// Priority taxonomy: point queries are Interactive, grid work is
// Batch, and nothing defaults to Background.

TEST(Priority, DefaultsFollowTheRequestTaxonomy) {
  using service::RequestType;
  EXPECT_EQ(qos::default_priority(RequestType::Classify),
            PriorityClass::Interactive);
  EXPECT_EQ(qos::default_priority(RequestType::Recommend),
            PriorityClass::Interactive);
  EXPECT_EQ(qos::default_priority(RequestType::Cost),
            PriorityClass::Interactive);
  EXPECT_EQ(qos::default_priority(RequestType::Simulate),
            PriorityClass::Interactive);
  EXPECT_EQ(qos::default_priority(RequestType::Sweep), PriorityClass::Batch);
  EXPECT_EQ(qos::default_priority(RequestType::FaultSweep),
            PriorityClass::Batch);
  EXPECT_EQ(qos::default_priority(RequestType::SweepChunk),
            PriorityClass::Batch);
  EXPECT_EQ(qos::default_priority(RequestType::FaultChunk),
            PriorityClass::Batch);
}

// ---------------------------------------------------------------------------
// AdmissionController: the degrade/shed ladder over a dimensionless
// pressure signal (max of queue fill and windowed-p99 / budget).

TEST(Admission, LadderStepsAtTheConfiguredPressures) {
  const AdmissionOptions options;  // 0.70 / 0.85 / 0.95
  AdmissionController controller(options);

  // Below degrade_pressure everything is admitted verbatim.
  for (PriorityClass cls : {PriorityClass::Interactive, PriorityClass::Batch,
                            PriorityClass::Background}) {
    EXPECT_EQ(controller.decide(cls, 0.5).action, AdmissionAction::Admit);
  }

  // [degrade, shed_background): everything degrades, nothing is shed.
  for (PriorityClass cls : {PriorityClass::Interactive, PriorityClass::Batch,
                            PriorityClass::Background}) {
    EXPECT_EQ(controller.decide(cls, 0.75).action, AdmissionAction::Degrade);
  }

  // [shed_background, shed_batch): Background is rejected, Batch and
  // Interactive still degrade.
  EXPECT_EQ(controller.decide(PriorityClass::Background, 0.90).action,
            AdmissionAction::Shed);
  EXPECT_EQ(controller.decide(PriorityClass::Batch, 0.90).action,
            AdmissionAction::Degrade);
  EXPECT_EQ(controller.decide(PriorityClass::Interactive, 0.90).action,
            AdmissionAction::Degrade);

  // Past shed_batch, Batch goes too; Interactive is never shed.
  EXPECT_EQ(controller.decide(PriorityClass::Batch, 0.96).action,
            AdmissionAction::Shed);
  EXPECT_EQ(controller.decide(PriorityClass::Interactive, 0.96).action,
            AdmissionAction::Degrade);
}

TEST(Admission, InteractiveIsNeverShedEvenAtExtremePressure) {
  AdmissionController controller(AdmissionOptions{});
  const Admission decision = controller.decide(PriorityClass::Interactive, 5.0);
  EXPECT_EQ(decision.action, AdmissionAction::Degrade);
  EXPECT_DOUBLE_EQ(decision.pressure, 5.0);
}

TEST(Admission, RetryAfterScalesWithOvershootAndCaps) {
  AdmissionOptions options;
  options.retry_after_base_ms = 25;
  AdmissionController controller(options);

  // At the first shed threshold: one base unit.
  const Admission at_threshold =
      controller.decide(PriorityClass::Background, 0.85);
  EXPECT_EQ(at_threshold.action, AdmissionAction::Shed);
  EXPECT_EQ(at_threshold.retry_after_ms, 25u);

  // Deeper overload quotes longer hints...
  const Admission deeper = controller.decide(PriorityClass::Background, 1.10);
  EXPECT_EQ(deeper.action, AdmissionAction::Shed);
  EXPECT_GT(deeper.retry_after_ms, at_threshold.retry_after_ms);

  // ...capped at 8x base so clients never give up outright.
  const Admission extreme = controller.decide(PriorityClass::Background, 50.0);
  EXPECT_EQ(extreme.retry_after_ms, 25u * 8u);
}

TEST(Admission, QuantileOfWindowDiffsSnapshotsAndInterpolates) {
  using Buckets = AdmissionController::Buckets;
  Buckets prev;
  Buckets now;

  // An empty window (no traffic between snapshots) reads as zero.
  EXPECT_DOUBLE_EQ(AdmissionController::quantile_of_window(now, prev, 0.99),
                   0.0);

  // 100 requests all landing in bucket 10 — latencies in
  // (2^10, 2^11] ns.  The interpolated p99 sits near the top of that
  // bucket, and cumulative history (equal counts in prev and now)
  // cancels out of the diff.
  prev.counts[10] = 50;
  now.counts[10] = 150;
  const double p99_us =
      AdmissionController::quantile_of_window(now, prev, 0.99);
  EXPECT_GT(p99_us, 1024.0 / 1000.0);
  EXPECT_LE(p99_us, 2048.0 / 1000.0);

  // A racing snapshot where now < prev clamps to zero instead of
  // underflowing.
  Buckets behind;
  behind.counts[10] = 10;
  EXPECT_DOUBLE_EQ(
      AdmissionController::quantile_of_window(behind, now, 0.99), 0.0);
}

TEST(Admission, ObservedLatencyDrivesPressureWithoutAnyQueueBacklog) {
  using Buckets = AdmissionController::Buckets;
  AdmissionOptions options;
  options.refresh_interval = std::chrono::milliseconds(0);
  options.interactive_p99_budget = std::chrono::microseconds(1000);
  AdmissionController controller(options);

  const auto at = [](std::int64_t ns) {
    return std::chrono::steady_clock::time_point(std::chrono::nanoseconds(ns));
  };
  Buckets first;  // baseline snapshot
  controller.observe(first, at(1));

  // The next window carries 100 requests around 2^20 ns ≈ 1.05 ms —
  // past the 1 ms budget, so pressure exceeds 1.0 at queue fill zero
  // and Background sheds on latency alone.
  Buckets second;
  second.counts[20] = 100;
  controller.observe(second, at(2));
  EXPECT_GT(controller.windowed_p99_us(), 1000.0);
  EXPECT_GT(controller.pressure(0.0), 1.0);
  EXPECT_EQ(controller.decide(PriorityClass::Background, 0.0).action,
            AdmissionAction::Shed);
}

// ---------------------------------------------------------------------------
// CancelRegistry: (owner, id) keyed cooperative cancellation tokens.

TEST(CancelRegistry, CancelFlagsLiveKeysAndIgnoresUnknownOnes) {
  qos::CancelRegistry registry;
  const qos::CancelToken token = registry.add(7, 42);
  ASSERT_NE(token, nullptr);
  EXPECT_FALSE(token->is_cancelled());

  // Re-registering a live key returns the same token.
  EXPECT_EQ(registry.add(7, 42), token);
  EXPECT_EQ(registry.size(), 1u);

  // Another owner's identical id is a different request.
  EXPECT_EQ(registry.cancel(8, 42), nullptr);
  EXPECT_FALSE(token->is_cancelled());

  EXPECT_EQ(registry.cancel(7, 42), token);
  EXPECT_TRUE(token->is_cancelled());

  registry.erase(7, 42);
  EXPECT_EQ(registry.cancel(7, 42), nullptr);
  EXPECT_EQ(registry.size(), 0u);
}

// ---------------------------------------------------------------------------
// Engine integration: the ladder, degradation, and cancellation as the
// serving path actually runs them.  start_workers = false lets the
// tests set the queue fill deterministically before anything drains.

explore::SweepGrid qos_grid() {
  explore::SweepGrid grid;
  grid.n_values = {2, 4, 8, 16, 32, 64};
  grid.lut_budgets = {64, 512, 4096};
  grid.objectives = {explore::Requirements::Objective::MinConfigBits,
                     explore::Requirements::Objective::MinArea};
  return grid;
}

TEST(QosEngine, ShedsBackgroundWithOverloadedAndDisjointCounters) {
  EngineOptions options;
  options.enable_qos = true;
  options.worker_threads = 2;
  options.start_workers = false;
  options.queue_capacity = 10;
  options.enable_cache = false;
  QueryEngine engine(options);

  // Fill the Interactive subqueue to 0.9 — past shed_background (0.85)
  // but short of shed_batch (0.95).
  std::vector<std::future<QueryResponse>> fillers;
  for (int i = 0; i < 9; ++i) {
    fillers.push_back(engine.submit(RecommendRequest{}));
  }

  QueryResponse shed = engine
                           .submit(RecommendRequest{}, Deadline::never(),
                                   PriorityClass::Background)
                           .get();
  EXPECT_EQ(shed.status.code, StatusCode::Overloaded);
  EXPECT_GE(shed.status.retry_after_ms, options.admission.retry_after_base_ms);
  EXPECT_EQ(shed.payload, nullptr);

  // Batch still degrades at this pressure instead of shedding.
  std::future<QueryResponse> batch = engine.submit(
      RecommendRequest{}, Deadline::never(), PriorityClass::Batch);

  const auto& metrics = engine.metrics();
  EXPECT_EQ(metrics.qos_shed_background.value(), 1u);
  EXPECT_EQ(metrics.qos_shed_batch.value(), 0u);
  // Counting invariant (docs/SERVICE.md): a shed is a policy refusal,
  // disjoint from every lifecycle rejection counter.
  EXPECT_EQ(metrics.rejected_deadline.value(), 0u);
  EXPECT_EQ(metrics.expired_in_queue.value(), 0u);
  EXPECT_EQ(metrics.rejected_queue_full.value(), 0u);

  engine.start();
  for (auto& filler : fillers) EXPECT_TRUE(filler.get().ok());
  EXPECT_TRUE(batch.get().ok());
}

TEST(QosEngine, BatchShedsAtFullQueueButInteractiveOnlyHitsCapacity) {
  EngineOptions options;
  options.enable_qos = true;
  options.worker_threads = 2;
  options.start_workers = false;
  options.queue_capacity = 10;
  options.enable_cache = false;
  QueryEngine engine(options);

  std::vector<std::future<QueryResponse>> fillers;
  for (int i = 0; i < 10; ++i) {
    fillers.push_back(engine.submit(RecommendRequest{}));
  }

  // Pressure 1.0: Batch is policy-shed before any enqueue is tried.
  QueryResponse batch = engine
                            .submit(RecommendRequest{}, Deadline::never(),
                                    PriorityClass::Batch)
                            .get();
  EXPECT_EQ(batch.status.code, StatusCode::Overloaded);

  // Interactive is never policy-shed: it rides the ladder to the queue
  // itself, whose full subqueue answers QueueFull — a capacity fact,
  // not a shed, and counted as such.
  QueryResponse interactive = engine.submit(RecommendRequest{}).get();
  EXPECT_EQ(interactive.status.code, StatusCode::QueueFull);

  const auto& metrics = engine.metrics();
  EXPECT_EQ(metrics.qos_shed_batch.value(), 1u);
  EXPECT_EQ(metrics.qos_shed_background.value(), 0u);
  EXPECT_EQ(metrics.rejected_queue_full.value(), 1u);

  engine.start();
  for (auto& filler : fillers) EXPECT_TRUE(filler.get().ok());
}

TEST(QosEngine, DegradeStridesSweepGridsAndMarksResponsesSampled) {
  EngineOptions options;
  options.enable_qos = true;
  options.worker_threads = 2;
  options.start_workers = false;
  options.queue_capacity = 32;
  options.enable_cache = false;
  QueryEngine engine(options);

  // 24/32 = 0.75 — inside [degrade, shed_background).
  std::vector<std::future<QueryResponse>> fillers;
  for (int i = 0; i < 24; ++i) {
    fillers.push_back(engine.submit(RecommendRequest{}));
  }

  std::future<QueryResponse> future =
      engine.submit(Request{service::SweepRequest{qos_grid()}});
  engine.start();
  const QueryResponse response = future.get();
  ASSERT_TRUE(response.ok()) << response.status.to_string();
  EXPECT_TRUE(response.sampled);

  // The strided subgrid keeps every second n and LUT budget, so the
  // answer is a genuine sweep of the smaller grid, not an approximation
  // of the full one.
  explore::SweepGrid strided = qos_grid();
  strided.n_values = {2, 8, 32};
  strided.lut_budgets = {64, 4096};
  const service::SweepResponse* payload = response.sweep();
  ASSERT_NE(payload, nullptr);
  EXPECT_EQ(payload->result, explore::sweep(strided));
  EXPECT_EQ(payload->result.points.size(), 12u);

  EXPECT_GE(engine.metrics().qos_degraded_responses.value(), 1u);
  for (auto& filler : fillers) EXPECT_TRUE(filler.get().ok());
}

TEST(QosEngine, DegradeServesCacheEntriesPastSoftTtlAsSampled) {
  EngineOptions options;
  options.enable_qos = true;
  options.worker_threads = 2;
  options.start_workers = false;
  options.queue_capacity = 10;
  options.enable_cache = true;
  options.cache_soft_ttl = std::chrono::milliseconds(1);
  QueryEngine engine(options);

  service::CostRequest cost;
  cost.target = MachineClass{};
  cost.n_sweep = {2, 4, 8};
  const Request request{cost};

  // Prime the cache, then let the entry age past its soft TTL.
  ASSERT_TRUE(engine.execute(request).ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(10));

  // Unpressured, a stale entry is a miss: recomputed, refreshed, and
  // served at full precision.
  const QueryResponse fresh = engine.execute(request);
  ASSERT_TRUE(fresh.ok());
  EXPECT_FALSE(fresh.sampled);
  EXPECT_FALSE(fresh.cache_hit);
  std::this_thread::sleep_for(std::chrono::milliseconds(10));

  // Under Degrade pressure the stale entry is served as-is, flagged
  // sampled — freshness traded for not spending a worker.
  std::vector<std::future<QueryResponse>> fillers;
  for (int i = 0; i < 8; ++i) {  // fill 0.8: Degrade, no shedding
    fillers.push_back(engine.submit(RecommendRequest{}));
  }
  std::future<QueryResponse> future = engine.submit(request);
  engine.start();
  const QueryResponse stale = future.get();
  ASSERT_TRUE(stale.ok()) << stale.status.to_string();
  EXPECT_TRUE(stale.sampled);
  EXPECT_GE(engine.metrics().qos_degraded_responses.value(), 1u);
  for (auto& filler : fillers) EXPECT_TRUE(filler.get().ok());
}

TEST(QosEngine, CancelDequeuesQueuedWorkAndCountsReclaimedCapacity) {
  EngineOptions options;
  options.enable_qos = true;
  options.worker_threads = 2;
  options.start_workers = false;
  options.queue_capacity = 8;
  QueryEngine engine(options);

  std::mutex mutex;
  std::vector<StatusCode> resolved;
  const auto capture = [&mutex, &resolved](QueryResponse response) {
    std::lock_guard<std::mutex> lock(mutex);
    resolved.push_back(response.status.code);
  };

  engine.submit_async(RecommendRequest{}, Deadline::never(),
                      PriorityClass::Interactive, /*cancel_owner=*/7,
                      /*cancel_id=*/42, capture);
  EXPECT_EQ(engine.queue_depth(), 1u);

  // A cancel naming an unknown key is a no-op...
  EXPECT_FALSE(engine.cancel(7, 41));
  EXPECT_FALSE(engine.cancel(9, 42));

  // ...the real one dequeues the waiting request right now: reclaimed
  // capacity, resolved Cancelled, counted qos_cancelled_queued.
  EXPECT_TRUE(engine.cancel(7, 42));
  EXPECT_EQ(engine.queue_depth(), 0u);
  {
    std::lock_guard<std::mutex> lock(mutex);
    ASSERT_EQ(resolved.size(), 1u);
    EXPECT_EQ(resolved.front(), StatusCode::Cancelled);
  }
  const auto& metrics = engine.metrics();
  EXPECT_GT(metrics.qos_cancelled_queued.value(), 0u);

  // The registration died with the request: cancelling again misses.
  EXPECT_FALSE(engine.cancel(7, 42));

  // Cancellation is not a deadline or queue event.
  EXPECT_EQ(metrics.rejected_deadline.value(), 0u);
  EXPECT_EQ(metrics.expired_in_queue.value(), 0u);
  EXPECT_EQ(metrics.rejected_queue_full.value(), 0u);

  engine.start();
  engine.drain();
}

TEST(QosEngine, QosOffPreservesFifoOrderAcrossClasses) {
  EngineOptions options;
  options.enable_qos = false;
  options.worker_threads = 1;
  options.start_workers = false;
  options.enable_cache = false;
  QueryEngine engine(options);

  std::mutex mutex;
  std::vector<int> order;
  const auto capture = [&mutex, &order](int index) {
    return [&mutex, &order, index](QueryResponse response) {
      ASSERT_TRUE(response.ok());
      std::lock_guard<std::mutex> lock(mutex);
      order.push_back(index);
    };
  };

  // Mixed classes, submitted 0..2: with QoS off everything rides the
  // single legacy FIFO regardless of class.
  engine.submit_async(RecommendRequest{}, Deadline::never(),
                      PriorityClass::Background, 0, 0, capture(0));
  engine.submit_async(RecommendRequest{}, Deadline::never(),
                      PriorityClass::Background, 0, 0, capture(1));
  engine.submit_async(RecommendRequest{}, Deadline::never(),
                      PriorityClass::Interactive, 0, 0, capture(2));
  engine.start();
  engine.drain();

  std::lock_guard<std::mutex> lock(mutex);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(QosEngine, QosOnLetsInteractiveJumpQueuedBackgroundWork) {
  EngineOptions options;
  options.enable_qos = true;
  options.worker_threads = 1;
  options.start_workers = false;
  options.enable_cache = false;
  QueryEngine engine(options);

  std::mutex mutex;
  std::vector<int> order;
  const auto capture = [&mutex, &order](int index) {
    return [&mutex, &order, index](QueryResponse response) {
      ASSERT_TRUE(response.ok());
      std::lock_guard<std::mutex> lock(mutex);
      order.push_back(index);
    };
  };

  // Same submission order as the QoS-off test — but WFQ dispatches the
  // Interactive request first even though it arrived last.
  engine.submit_async(RecommendRequest{}, Deadline::never(),
                      PriorityClass::Background, 0, 0, capture(0));
  engine.submit_async(RecommendRequest{}, Deadline::never(),
                      PriorityClass::Background, 0, 0, capture(1));
  engine.submit_async(RecommendRequest{}, Deadline::never(),
                      PriorityClass::Interactive, 0, 0, capture(2));
  engine.start();
  engine.drain();

  std::lock_guard<std::mutex> lock(mutex);
  EXPECT_EQ(order, (std::vector<int>{2, 0, 1}));
}

// ---------------------------------------------------------------------------
// Wire compatibility: clients that predate QoS (v1, or v2 without the
// trailing priority byte) must decode to the request type's default
// class — an unaware client is never accidentally reclassified.

service::Request classify_request() {
  return service::Request{
      service::ClassifyRequest::of(arch::surveyed_architectures().front())};
}

TEST(QosWire, V1FramesDecodeToTheRequestTypesDefaultClass) {
  const auto classify =
      wire::encode_request_frame(1, classify_request(), 100, /*version=*/1);
  const auto decoded_classify =
      wire::decode_request_frame(classify.data(), classify.size());
  ASSERT_TRUE(decoded_classify.ok()) << decoded_classify.error.to_string();
  EXPECT_EQ(decoded_classify.value->priority, PriorityClass::Interactive);

  const Request sweep{service::SweepRequest{qos_grid()}};
  const auto sweep_frame =
      wire::encode_request_frame(2, sweep, 100, /*version=*/1);
  const auto decoded_sweep =
      wire::decode_request_frame(sweep_frame.data(), sweep_frame.size());
  ASSERT_TRUE(decoded_sweep.ok()) << decoded_sweep.error.to_string();
  EXPECT_EQ(decoded_sweep.value->priority, PriorityClass::Batch);
}

TEST(QosWire, ExplicitPriorityRidesV2AndIsDroppedAtV1) {
  const auto v2 = wire::encode_request_frame(
      3, classify_request(), 100, wire::kProtocolVersion, 0,
      PriorityClass::Background);
  const auto decoded_v2 = wire::decode_request_frame(v2.data(), v2.size());
  ASSERT_TRUE(decoded_v2.ok()) << decoded_v2.error.to_string();
  EXPECT_EQ(decoded_v2.value->priority, PriorityClass::Background);

  // v1 has no byte to carry the class: an explicit one is silently
  // dropped and the decoder falls back to the type default.
  const auto v1 = wire::encode_request_frame(4, classify_request(), 100,
                                             /*version=*/1, 0,
                                             PriorityClass::Background);
  const auto decoded_v1 = wire::decode_request_frame(v1.data(), v1.size());
  ASSERT_TRUE(decoded_v1.ok()) << decoded_v1.error.to_string();
  EXPECT_EQ(decoded_v1.value->priority, PriorityClass::Interactive);
}

TEST(QosWire, PreQosV2FramesWithoutThePriorityByteStillDecode) {
  // Simulate a v2 client from before the QoS extension: same header,
  // payload one byte shorter.  The decoder must treat the missing
  // extension as "use the request type's default".
  const Request sweep{service::SweepRequest{qos_grid()}};
  std::vector<std::uint8_t> frame = wire::encode_request_frame(5, sweep, 100);
  std::uint32_t payload_size = 0;
  std::memcpy(&payload_size, frame.data() + 16, sizeof(payload_size));
  payload_size -= 1;
  std::memcpy(frame.data() + 16, &payload_size, sizeof(payload_size));
  frame.pop_back();

  const auto decoded = wire::decode_request_frame(frame.data(), frame.size());
  ASSERT_TRUE(decoded.ok()) << decoded.error.to_string();
  EXPECT_EQ(decoded.value->priority, PriorityClass::Batch);
}

TEST(QosWire, CancelFrameRoundTripsAndRejectsEveryTruncation) {
  const auto frame = wire::encode_cancel_frame(77, 0x7ace0003);
  const auto decoded = wire::decode_cancel_frame(frame.data(), frame.size());
  ASSERT_TRUE(decoded.ok()) << decoded.error.to_string();
  EXPECT_EQ(decoded.value->request_id, 77u);
  EXPECT_EQ(decoded.value->trace_id, 0x7ace0003u);

  for (std::size_t len = 0; len < frame.size(); ++len) {
    EXPECT_FALSE(wire::decode_cancel_frame(frame.data(), len).ok());
  }

  // A CancelRequest decoder pointed at a different frame kind must
  // answer with a typed error, not a bogus cancel.
  const auto request_frame = wire::encode_request_frame(6, classify_request());
  EXPECT_FALSE(
      wire::decode_cancel_frame(request_frame.data(), request_frame.size())
          .ok());
}

// ---------------------------------------------------------------------------
// Over the wire: a CancelRequest frame must reach the server's engine
// and reclaim queued work, and an Overloaded answer must be the one
// server response a client treats as transient.

TEST(QosNet, WireCancelReclaimsAQueuedRequestServerSide) {
  EngineOptions options;
  options.enable_qos = true;
  options.worker_threads = 2;
  options.start_workers = false;  // submissions stay queued: cancellable
  QueryEngine engine(options);
  net::Server server(engine);
  ASSERT_TRUE(server.start()) << server.error();

  service::MetricsRegistry client_metrics;
  net::ClientOptions copts;
  copts.port = server.port();
  copts.metrics = &client_metrics;
  net::Client client(copts);

  std::string error;
  std::uint64_t id = 0;
  ASSERT_TRUE(client.send_request(Request{RecommendRequest{}},
                                  Deadline::in(std::chrono::seconds(5)), 0, id,
                                  error))
      << error;
  ASSERT_TRUE(client.send_cancel(id, error)) << error;

  // The cancelled request's own response is the acknowledgement.
  QueryResponse response;
  bool answered = false;
  for (int i = 0; i < 500 && !answered; ++i) {
    std::string pump_error;
    client.pump(std::chrono::milliseconds(10), pump_error);
    answered = client.take_response(id, response);
  }
  ASSERT_TRUE(answered);
  EXPECT_EQ(response.status.code, StatusCode::Cancelled);

  // Reclaimed capacity on the server, accounted on both sides.
  EXPECT_EQ(engine.metrics().qos_cancels_received.value(), 1u);
  EXPECT_EQ(engine.metrics().qos_cancelled_queued.value(), 1u);
  EXPECT_EQ(client_metrics.qos_cancels_sent.value(), 1u);
  EXPECT_EQ(engine.queue_depth(), 0u);

  server.stop();
  engine.start();
}

TEST(QosNet, ClientRetriesOverloadedAnswersAndSucceeds) {
  // A handler that sheds the first attempt with a retry-after hint and
  // serves the second: the client must resend (Overloaded is the one
  // retryable server answer) and come back with the real result.
  EngineOptions inline_options;
  inline_options.worker_threads = 0;
  QueryEngine inline_engine(inline_options);
  std::atomic<int> calls{0};
  service::MetricsRegistry server_metrics;
  net::Server server(
      [&inline_engine, &calls](service::Request request, Deadline,
                               const net::Server::RequestContext&,
                               QueryEngine::ResponseCallback callback) {
        if (calls.fetch_add(1) == 0) {
          QueryResponse shed;
          shed.status = service::Status::overloaded("admission shed", 5);
          callback(std::move(shed));
          return;
        }
        callback(inline_engine.execute(request));
      },
      server_metrics);
  ASSERT_TRUE(server.start()) << server.error();

  service::MetricsRegistry client_metrics;
  net::ClientOptions copts;
  copts.port = server.port();
  copts.metrics = &client_metrics;
  net::Client client(copts);

  const QueryResponse response = client.call(Request{RecommendRequest{}});
  ASSERT_TRUE(response.ok()) << response.status.to_string();
  EXPECT_EQ(calls.load(), 2);
  EXPECT_GE(client_metrics.net_retries.value(), 1u);
}

// ---------------------------------------------------------------------------
// Collector retention: the span store is bounded; whole traces evict
// oldest-first so everything retained still assembles.

trace::SpanBatch batch_of(std::uint64_t trace_id, std::size_t span_count,
                          const char* node = "alpha") {
  trace::SpanBatch batch;
  batch.node = node;
  batch.send_ns = 1000;
  for (std::size_t i = 0; i < span_count; ++i) {
    trace::ExportSpan span;
    span.name = "span";
    span.id = trace_id * 100 + i;
    span.trace_id = trace_id;
    span.start_ns = static_cast<std::int64_t>(100 * i);
    span.dur_ns = 10;
    span.category = trace::Category::Engine;
    batch.spans.push_back(span);
  }
  return batch;
}

TEST(TraceRetention, EvictsWholeTracesOldestFirst) {
  trace::Collector collector(/*max_spans=*/5);
  collector.ingest(batch_of(1, 3), 2000);
  collector.ingest(batch_of(2, 3), 2000);  // 6 > 5: trace 1 evicts whole

  EXPECT_EQ(collector.resident_spans(), 3u);
  EXPECT_EQ(collector.trace_ids(), (std::vector<std::uint64_t>{2}));
  const trace::CollectorStats stats = collector.stats();
  EXPECT_EQ(stats.evicted_traces, 1u);
  EXPECT_EQ(stats.evicted_spans, 3u);
  // The monotonic ingest counters keep counting everything seen.
  EXPECT_EQ(stats.spans, 6u);

  // The survivor still assembles completely; the victim is gone.
  EXPECT_EQ(collector.assemble(1), "");
  const std::string timeline = collector.assemble(2);
  EXPECT_NE(timeline.find("\"trace\":2"), std::string::npos);

  // A re-ingested trace 1 is a brand-new trace, at the back of the
  // eviction queue.
  collector.ingest(batch_of(1, 3), 2000);  // 6 > 5 again: trace 2 evicts
  EXPECT_EQ(collector.trace_ids(), (std::vector<std::uint64_t>{1}));
  EXPECT_EQ(collector.stats().evicted_traces, 2u);
}

TEST(TraceRetention, ASingleOversizedTraceStaysResident) {
  trace::Collector collector(/*max_spans=*/2);
  collector.ingest(batch_of(9, 4), 2000);

  // Eviction never strips a trace span-by-span, and stops when one
  // trace remains — the cap is soft by at most one trace.
  EXPECT_EQ(collector.resident_spans(), 4u);
  EXPECT_EQ(collector.stats().evicted_traces, 0u);

  // A second trace arriving pushes the oversized one out.
  collector.ingest(batch_of(10, 1), 2000);
  EXPECT_EQ(collector.resident_spans(), 1u);
  EXPECT_EQ(collector.trace_ids(), (std::vector<std::uint64_t>{10}));
  const trace::CollectorStats stats = collector.stats();
  EXPECT_EQ(stats.evicted_traces, 1u);
  EXPECT_EQ(stats.evicted_spans, 4u);
}

TEST(TraceRetention, UnboundedByDefault) {
  trace::Collector collector;
  EXPECT_EQ(collector.max_spans(), 0u);
  for (std::uint64_t id = 1; id <= 50; ++id) {
    collector.ingest(batch_of(id, 2), 2000);
  }
  EXPECT_EQ(collector.resident_spans(), 100u);
  EXPECT_EQ(collector.stats().evicted_traces, 0u);
}

}  // namespace
}  // namespace mpct
