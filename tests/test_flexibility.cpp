#include "core/flexibility.hpp"

#include <gtest/gtest.h>

#include <map>

#include "core/classifier.hpp"
#include "core/taxonomy_table.hpp"

namespace mpct {
namespace {

int flex(const char* name) {
  const auto parsed = parse_taxonomic_name(name);
  EXPECT_TRUE(parsed.has_value()) << name;
  return flexibility_of(*parsed);
}

/// Table II, transcribed: the ground truth this module must reproduce.
const std::map<std::string, int> kTableII{
    {"DUP", 0},      {"DMP-I", 1},    {"DMP-II", 2},   {"DMP-III", 2},
    {"DMP-IV", 3},   {"IUP", 0},      {"IAP-I", 1},    {"IAP-II", 2},
    {"IAP-III", 2},  {"IAP-IV", 3},   {"IMP-I", 2},    {"IMP-II", 3},
    {"IMP-III", 3},  {"IMP-IV", 4},   {"IMP-V", 3},    {"IMP-VI", 4},
    {"IMP-VII", 4},  {"IMP-VIII", 5}, {"IMP-IX", 3},   {"IMP-X", 4},
    {"IMP-XI", 4},   {"IMP-XII", 5},  {"IMP-XIII", 4}, {"IMP-XIV", 5},
    {"IMP-XV", 5},   {"IMP-XVI", 6},  {"ISP-I", 3},    {"ISP-II", 4},
    {"ISP-III", 4},  {"ISP-IV", 5},   {"ISP-V", 4},    {"ISP-VI", 5},
    {"ISP-VII", 5},  {"ISP-VIII", 6}, {"ISP-IX", 4},   {"ISP-X", 5},
    {"ISP-XI", 5},   {"ISP-XII", 6},  {"ISP-XIII", 5}, {"ISP-XIV", 6},
    {"ISP-XV", 6},   {"ISP-XVI", 7},  {"USP", 8},
};

TEST(Flexibility, ReproducesTableII) {
  for (const auto& [name, expected] : kTableII) {
    EXPECT_EQ(flex(name.c_str()), expected) << name;
  }
}

TEST(Flexibility, TableIICoversAllNamedClasses) {
  // Every named row of Table I has a Table II value and vice versa.
  int named = 0;
  for (const TaxonomyEntry& row : extended_taxonomy()) {
    if (!row.name) continue;
    ++named;
    EXPECT_EQ(kTableII.count(to_string(*row.name)), 1u)
        << to_string(*row.name);
  }
  EXPECT_EQ(named, static_cast<int>(kTableII.size()));
}

TEST(Flexibility, BreakdownExplainsUsp) {
  const auto usp = canonical_class(TaxonomicName{
      MachineType::UniversalFlow, ProcessingType::SpatialProcessor, 0});
  const FlexibilityBreakdown b = flexibility(*usp);
  EXPECT_EQ(b.many_ips, 1);
  EXPECT_EQ(b.many_dps, 1);
  EXPECT_EQ(b.crossbar_switches, 5);
  EXPECT_EQ(b.variability_bonus, 1);
  EXPECT_EQ(b.total(), 8);
}

TEST(Flexibility, BreakdownToStringShowsDerivation) {
  const auto usp = canonical_class(TaxonomicName{
      MachineType::UniversalFlow, ProcessingType::SpatialProcessor, 0});
  EXPECT_EQ(flexibility(*usp).to_string(),
            "1(nIP) + 1(nDP) + 5(x) + 1(v) = 8");
  const auto iup = canonical_class(TaxonomicName{
      MachineType::InstructionFlow, ProcessingType::UniProcessor, 0});
  EXPECT_EQ(flexibility(*iup).to_string(), "0 = 0");
}

TEST(Flexibility, CategoryOffsetsMatchTableIIHeaders) {
  const auto offset = [](const char* name) {
    return category_offset(*parse_taxonomic_name(name));
  };
  EXPECT_EQ(offset("DUP"), 0);
  EXPECT_EQ(offset("DMP-I"), 1);
  EXPECT_EQ(offset("IUP"), 0);
  EXPECT_EQ(offset("IAP-III"), 1);
  EXPECT_EQ(offset("IMP-VII"), 2);
  EXPECT_EQ(offset("ISP-XVI"), 2);  // ISP rows sit under the (+2) header
  EXPECT_EQ(offset("USP"), 3);
}

/// Property: upgrading any switch to a crossbar never decreases the
/// score, and strictly increases it when the switch was not a crossbar.
class SwitchUpgradeMonotonic
    : public ::testing::TestWithParam<ConnectivityRole> {};

TEST_P(SwitchUpgradeMonotonic, UpgradeNeverDecreases) {
  const ConnectivityRole role = GetParam();
  for (const TaxonomyEntry& row : extended_taxonomy()) {
    MachineClass upgraded = row.machine;
    if (upgraded.switch_at(role) == SwitchKind::Crossbar) continue;
    const int before = flexibility_score(upgraded);
    upgraded.set_switch(role, SwitchKind::Crossbar);
    EXPECT_EQ(flexibility_score(upgraded), before + 1)
        << to_string(row.machine) << " role " << to_string(role);
  }
}

INSTANTIATE_TEST_SUITE_P(AllRoles, SwitchUpgradeMonotonic,
                         ::testing::ValuesIn(kAllConnectivityRoles.begin(),
                                             kAllConnectivityRoles.end()));

TEST(Flexibility, DirectSwitchScoresNothing) {
  // Direct vs none is flexibility-neutral under the paper's scoring.
  for (const TaxonomyEntry& row : extended_taxonomy()) {
    MachineClass modified = row.machine;
    if (modified.switch_at(ConnectivityRole::DpDp) != SwitchKind::None) {
      continue;
    }
    const int before = flexibility_score(modified);
    modified.set_switch(ConnectivityRole::DpDp, SwitchKind::Direct);
    EXPECT_EQ(flexibility_score(modified), before);
  }
}

TEST(Flexibility, MultiplicityUpgradeMonotonic) {
  for (const TaxonomyEntry& row : extended_taxonomy()) {
    MachineClass upgraded = row.machine;
    if (upgraded.dps != Multiplicity::One) continue;
    const int before = flexibility_score(upgraded);
    upgraded.dps = Multiplicity::Many;
    EXPECT_EQ(flexibility_score(upgraded), before + 1);
  }
}

TEST(Flexibility, UspDominatesEverything) {
  const int usp = flex("USP");
  for (const auto& [name, value] : kTableII) {
    EXPECT_LE(value, usp) << name;
  }
}

TEST(Flexibility, IspExceedsMatchingImpByOne) {
  // The IP-IP crossbar is worth exactly one point: ISP-k = IMP-k + 1.
  for (int sub = 1; sub <= 16; ++sub) {
    const TaxonomicName imp{MachineType::InstructionFlow,
                            ProcessingType::MultiProcessor, sub};
    const TaxonomicName isp{MachineType::InstructionFlow,
                            ProcessingType::SpatialProcessor, sub};
    EXPECT_EQ(flexibility_of(isp), flexibility_of(imp) + 1) << sub;
  }
}

TEST(Flexibility, ImpExceedsMatchingIapByOne) {
  // IMP-k has n IPs where IAP-k has one: exactly one extra point for the
  // sub-types whose switch patterns align (k in 1..4 maps to the DP-side
  // bits only when the IP-side bits are zero, i.e. IMP I..IV).
  for (int sub = 1; sub <= 4; ++sub) {
    const TaxonomicName iap{MachineType::InstructionFlow,
                            ProcessingType::ArrayProcessor, sub};
    const TaxonomicName imp{MachineType::InstructionFlow,
                            ProcessingType::MultiProcessor, sub};
    EXPECT_EQ(flexibility_of(imp), flexibility_of(iap) + 1) << sub;
  }
}

TEST(Flexibility, ComparabilityRules) {
  EXPECT_TRUE(flexibility_comparable(MachineType::DataFlow,
                                     MachineType::DataFlow));
  EXPECT_FALSE(flexibility_comparable(MachineType::DataFlow,
                                      MachineType::InstructionFlow));
  EXPECT_TRUE(flexibility_comparable(MachineType::DataFlow,
                                     MachineType::UniversalFlow));
  EXPECT_TRUE(flexibility_comparable(MachineType::InstructionFlow,
                                     MachineType::UniversalFlow));
}

TEST(Flexibility, NonCanonicalNameThrows) {
  EXPECT_THROW(flexibility_of(TaxonomicName{MachineType::DataFlow,
                                            ProcessingType::ArrayProcessor,
                                            1}),
               std::invalid_argument);
  EXPECT_THROW(category_offset(TaxonomicName{MachineType::InstructionFlow,
                                             ProcessingType::MultiProcessor,
                                             42}),
               std::invalid_argument);
}

}  // namespace
}  // namespace mpct
