#include "report/dot.hpp"

#include <gtest/gtest.h>

namespace mpct::report {
namespace {

TEST(HierarchyDot, WellFormedDigraph) {
  const std::string dot = hierarchy_dot(machine_hierarchy());
  EXPECT_EQ(dot.rfind("digraph hierarchy {", 0), 0u);
  EXPECT_EQ(dot.back(), '\n');
  EXPECT_NE(dot.find("}"), std::string::npos);
  EXPECT_NE(dot.find("Computing Machines"), std::string::npos);
  EXPECT_NE(dot.find("Instruction Flow"), std::string::npos);
  EXPECT_NE(dot.find("IMP-I .. IMP-XVI"), std::string::npos);
}

TEST(HierarchyDot, EdgeCountMatchesTree) {
  // Tree with 1 root + 3 machine types + 7 processing branches: 10
  // edges (every non-root node has exactly one parent edge).
  const std::string dot = hierarchy_dot(machine_hierarchy());
  std::size_t edges = 0;
  std::size_t pos = 0;
  while ((pos = dot.find(" -> ", pos)) != std::string::npos) {
    ++edges;
    ++pos;
  }
  EXPECT_EQ(edges, 10u);
}

TEST(MorphDot, ContainsAllNamedClasses) {
  const std::string dot = morph_dot();
  EXPECT_EQ(dot.rfind("digraph morph {", 0), 0u);
  for (const char* name : {"DUP", "DMP-IV", "IUP", "IAP-II", "IMP-XVI",
                           "ISP-IV", "USP"}) {
    EXPECT_NE(dot.find("\"" + std::string(name) + "\""),
              std::string::npos)
        << name;
  }
  EXPECT_NE(dot.find("flex 8"), std::string::npos);  // USP label
}

TEST(MorphDot, HasseEdgesOnly) {
  // USP can morph into everything, but after transitive reduction it
  // must NOT point directly at IUP (the path goes through intermediate
  // classes).
  const std::string dot = morph_dot();
  EXPECT_EQ(dot.find("\"USP\" -> \"IUP\""), std::string::npos);
  // Covering edges survive: IAP-I -> IUP is immediate.
  EXPECT_NE(dot.find("\"IAP-I\" -> \"IUP\""), std::string::npos);
  // No self loops.
  EXPECT_EQ(dot.find("\"IUP\" -> \"IUP\""), std::string::npos);
}

TEST(MorphDot, NoCrossParadigmEdges) {
  const std::string dot = morph_dot();
  EXPECT_EQ(dot.find("\"IMP-XVI\" -> \"DMP-I\""), std::string::npos);
  EXPECT_EQ(dot.find("\"DMP-IV\" -> \"IUP\""), std::string::npos);
}

}  // namespace
}  // namespace mpct::report
