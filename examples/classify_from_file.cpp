/// Classify architecture descriptions written in the ADL text format.
///
/// Usage: classify_from_file [file.adl]
///   with no argument, reads the bundled my_cgra.adl next to the binary.
#include <fstream>
#include <iostream>
#include <sstream>

#include "arch/adl_parser.hpp"
#include "arch/validate.hpp"
#include "cost/config_bits.hpp"

int main(int argc, char** argv) {
  using namespace mpct;

  const std::string path = argc > 1 ? argv[1] : "my_cgra.adl";
  std::ifstream file(path);
  if (!file) {
    std::cerr << "cannot open " << path << "\n";
    return 1;
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();

  const arch::ParseResult result = arch::parse_adl(buffer.str());
  for (const arch::ParseError& error : result.errors) {
    std::cerr << path << ":" << error.to_string() << "\n";
  }
  if (result.specs.empty()) {
    std::cerr << "no architectures parsed\n";
    return 1;
  }

  const cost::ComponentLibrary lib = cost::ComponentLibrary::default_library();
  for (const arch::ArchitectureSpec& spec : result.specs) {
    std::cout << "== " << spec.name << " ==\n";
    bool valid = true;
    for (const arch::Issue& issue : arch::validate(spec)) {
      std::cout << "  " << issue.to_string() << "\n";
      if (issue.severity == arch::Severity::Error) valid = false;
    }
    if (!valid) {
      std::cout << "  (not classifiable)\n";
      continue;
    }
    const Classification classification = spec.classify();
    if (!classification.ok()) {
      std::cout << "  not classifiable: " << classification.note << "\n";
      continue;
    }
    std::cout << "  class: " << to_string(*classification.name)
              << "\n  flexibility: " << spec.flexibility().to_string()
              << "\n  est. configuration: "
              << cost::estimate_config_bits(spec, lib).total() << " bits\n";
  }
  return result.ok() ? 0 : 1;
}
