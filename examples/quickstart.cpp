/// Quickstart: describe an architecture, classify it against the
/// extended Skillicorn taxonomy, read its flexibility score, and get the
/// Eq. 1 / Eq. 2 early estimates — the whole public API in one page.
#include <iostream>

#include "arch/spec.hpp"
#include "arch/validate.hpp"
#include "core/comparison.hpp"
#include "core/hierarchy.hpp"
#include "cost/area_model.hpp"
#include "cost/config_bits.hpp"

int main() {
  using namespace mpct;

  // 1. Describe the machine: a single controller driving 16 ALUs whose
  //    outputs can be exchanged through a full crossbar; each ALU owns
  //    its scratchpad.
  arch::ArchitectureSpec design;
  design.name = "QuickCGRA";
  design.ips = arch::Count::fixed(1);
  design.dps = arch::Count::fixed(16);
  design.at(ConnectivityRole::IpDp) = *arch::ConnectivityExpr::parse("1-16");
  design.at(ConnectivityRole::IpIm) = *arch::ConnectivityExpr::parse("1-1");
  design.at(ConnectivityRole::DpDm) = *arch::ConnectivityExpr::parse("16-1");
  design.at(ConnectivityRole::DpDp) = *arch::ConnectivityExpr::parse("16x16");

  // 2. Lint it.
  for (const arch::Issue& issue : arch::validate(design)) {
    std::cout << "lint: " << issue.to_string() << "\n";
  }

  // 3. Classify.
  const Classification result = design.classify();
  if (!result.ok()) {
    std::cerr << "not classifiable: " << result.note << "\n";
    return 1;
  }
  std::cout << design.name << " is a " << to_string(*result.name) << " ("
            << to_string(result.name->machine_type) << " -> "
            << to_string(result.name->processing_type) << ")\n";

  // 4. Where it sits in the Fig. 2 hierarchy.
  std::cout << "hierarchy path: ";
  bool first = true;
  for (const std::string& part : hierarchy_path(*result.name)) {
    std::cout << (first ? "" : " -> ") << part;
    first = false;
  }
  std::cout << "\n";

  // 5. Flexibility (Table II scoring).
  const FlexibilityBreakdown flex = design.flexibility();
  std::cout << "flexibility: " << flex.to_string() << "\n";

  // 6. Early area / configuration estimates (Eq. 1 / Eq. 2).
  const cost::ComponentLibrary lib = cost::ComponentLibrary::default_library();
  const cost::AreaEstimate area = cost::estimate_area(design, lib);
  const cost::ConfigBitsEstimate cb = cost::estimate_config_bits(design, lib);
  const cost::TechnologyNode node = cost::default_node();
  std::cout << "estimated area: " << area.total_kge() << " kGE ("
            << area.total_mm2(node) << " mm2 at " << node.name << ")\n"
            << "estimated configuration: " << cb.total() << " bits ("
            << cb.switch_bits() << " in switches)\n";

  // 7. Compare against a known machine by name alone.
  const TaxonomicName morphosys = *parse_taxonomic_name("IAP-II");
  const NameComparison cmp = compare(*result.name, morphosys);
  std::cout << "vs MorphoSys (IAP-II): " << cmp.summary() << "\n";
  std::cout << "can this design act as a plain uniprocessor? "
            << (can_morph_into(*result.name, *parse_taxonomic_name("IUP"))
                    ? "yes"
                    : "no")
            << "\n";
  return 0;
}
