/// taxonomy_server — the taxonomy query engine behind a TCP socket.
///
/// Starts a QueryEngine, wraps it in a net::Server and serves the wire
/// protocol until SIGINT/SIGTERM.  SIGUSR1 dumps a Chrome trace of
/// everything recorded so far to taxonomy_server_trace.json (load it in
/// chrome://tracing or Perfetto); the handler only flips a flag — the
/// snapshot and export run on the main loop, where allocation is safe.
///
///   usage: taxonomy_server [port] [workers]
///
/// Port 0 (the default) binds an ephemeral port; the actual one is
/// printed on stdout, so scripts can parse it.
#include <csignal>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>

#include "net/net.hpp"
#include "service/service.hpp"
#include "trace/chrome_trace.hpp"
#include "trace/trace.hpp"

using namespace mpct;

namespace {

// Signal handlers may only touch lock-free sig_atomic_t flags; all real
// work happens on the main loop below.
volatile std::sig_atomic_t g_dump_trace = 0;
volatile std::sig_atomic_t g_shutdown = 0;

void on_sigusr1(int) { g_dump_trace = 1; }
void on_terminate(int) { g_shutdown = 1; }

void dump_chrome_trace(const char* path) {
  const trace::TraceSnapshot snap = trace::Tracer::instance().snapshot();
  std::ofstream out(path, std::ios::trunc);
  out << trace::to_chrome_json(snap);
  std::cout << "[taxonomy_server] dumped " << snap.spans.size()
            << " spans to " << path << std::endl;
}

}  // namespace

int main(int argc, char** argv) {
  service::EngineOptions engine_options;
  engine_options.worker_threads =
      argc > 2 ? static_cast<unsigned>(std::atoi(argv[2])) : 4;
  service::QueryEngine engine(engine_options);

  net::ServerOptions server_options;
  server_options.port =
      argc > 1 ? static_cast<std::uint16_t>(std::atoi(argv[1])) : 0;

  trace::Tracer::instance().enable();

  net::Server server(engine, server_options);
  if (!server.start()) {
    std::cerr << "taxonomy_server: " << server.error() << "\n";
    return 1;
  }

  std::signal(SIGUSR1, on_sigusr1);
  std::signal(SIGINT, on_terminate);
  std::signal(SIGTERM, on_terminate);

  std::cout << "taxonomy_server listening on " << server.options().host << ":"
            << server.port() << " (" << engine_options.worker_threads
            << " workers)\n"
            << "  SIGUSR1 dumps a Chrome trace, SIGINT/SIGTERM drains and "
               "exits"
            << std::endl;  // flush so scripts polling the log see the port

  while (!g_shutdown) {
    if (g_dump_trace) {
      g_dump_trace = 0;
      dump_chrome_trace("taxonomy_server_trace.json");
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  std::cout << "[taxonomy_server] draining...\n";
  server.stop();
  if (g_dump_trace) dump_chrome_trace("taxonomy_server_trace.json");
  std::cout << "\n-- metrics --\n"
            << engine.metrics().to_table(engine.cache_stats()) << "\n";
  return 0;
}
