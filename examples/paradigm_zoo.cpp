/// Run the same logical workload — a dot product of two 8-element
/// vectors — on one machine from each branch of the taxonomy, showing
/// how the paradigms differ in organisation while agreeing on the
/// answer:
///
///   IUP    (instruction flow, uni):    sequential loop
///   IAP-II (instruction flow, array):  lanes multiply, log-step shuffle
///                                      reduction
///   IMP-II (instruction flow, multi):  cores multiply, message-passing
///                                      reduction to core 0
///   DMP-IV (data flow, multi):         multiply/add token graph
///   USP    (universal flow):           LUT fabric bit-serial-free demo —
///                                      computes the low bits with a
///                                      mapped adder tree (4-bit slice)
#include <iostream>

#include "sim/dataflow/token_machine.hpp"
#include "sim/isa/assembler.hpp"
#include "sim/isa/uniprocessor.hpp"
#include "sim/mimd/multiprocessor.hpp"
#include "sim/simd/array_processor.hpp"
#include "sim/spatial/mapper.hpp"

namespace {

using namespace mpct::sim;

constexpr int kN = 8;
constexpr Word kA[kN] = {1, 2, 3, 4, 5, 6, 7, 8};
constexpr Word kB[kN] = {7, 3, 1, 9, 2, 8, 5, 4};

Word reference() {
  Word sum = 0;
  for (int i = 0; i < kN; ++i) sum += kA[i] * kB[i];
  return sum;
}

Word run_iup() {
  // Memory layout: a[0..7] at 0, b[0..7] at 8.
  Uniprocessor cpu(assemble_or_throw(R"(
    ldi r1, 0      ; i
    ldi r2, 8      ; n
    ldi r3, 0      ; sum
loop:
    beq r1, r2, done
    ld r4, r1, 0
    ld r5, r1, 8
    mul r6, r4, r5
    add r3, r3, r6
    addi r1, r1, 1
    jmp loop
done:
    out r3
    halt
  )"),
                   32);
  std::vector<Word> init(16);
  for (int i = 0; i < kN; ++i) {
    init[static_cast<std::size_t>(i)] = kA[i];
    init[static_cast<std::size_t>(i + 8)] = kB[i];
  }
  cpu.dm().fill(init);
  const RunStats stats = cpu.run();
  std::cout << "  IUP:    result " << stats.output.at(0) << " in "
            << stats.cycles << " cycles\n";
  return stats.output.at(0);
}

Word run_iap() {
  // Each lane holds a[i] at local 0 and b[i] at local 1; lanes multiply
  // in one step, then a 3-stage shuffle tree reduces.
  ArrayProcessor iap(assemble_or_throw(R"(
    ldi r1, 0
    ld r2, r1, 0    ; a[lane]
    ld r3, r1, 1    ; b[lane]
    mul r4, r2, r3
    lane r5
    ; tree reduction: stride 1, 2, 4
    addi r6, r5, 1
    shuf r7, r4, r6
    add r4, r4, r7
    addi r6, r5, 2
    shuf r7, r4, r6
    add r4, r4, r7
    addi r6, r5, 4
    shuf r7, r4, r6
    add r4, r4, r7
    out r4
    halt
  )"),
                     ArrayProcessorConfig::for_subtype(2, kN, 8));
  for (int i = 0; i < kN; ++i) {
    iap.bank(i).store(0, kA[i]);
    iap.bank(i).store(1, kB[i]);
  }
  const RunStats stats = iap.run();
  // Lane 0 holds the full sum after log2(8) = 3 stages.
  std::cout << "  IAP-II: result " << stats.output.at(0) << " in "
            << stats.cycles << " broadcast cycles ("
            << iap.lanes() << " lanes)\n";
  return stats.output.at(0);
}

Word run_imp() {
  // Every core multiplies its pair and sends the product to core 0,
  // which accumulates — n different-by-id programs via LANE.
  const Program worker = assemble_or_throw(R"(
    ldi r1, 0
    ld r2, r1, 0
    ld r3, r1, 1
    mul r4, r2, r3
    lane r5
    ldi r6, 0
    beq r5, r6, master
    send r4, r6
    halt
master:
    ldi r7, 7      ; messages to receive
    ldi r8, 0
gather:
    beq r7, r8, done
    recv r9
    add r4, r4, r9
    addi r7, r7, -1
    jmp gather
done:
    out r4
    halt
  )");
  MultiprocessorConfig config = MultiprocessorConfig::for_subtype(2);
  config.cores = kN;
  config.bank_words = 8;
  Multiprocessor imp = Multiprocessor::broadcast(worker, config);
  for (int i = 0; i < kN; ++i) {
    imp.bank(i).store(0, kA[i]);
    imp.bank(i).store(1, kB[i]);
  }
  const RunStats stats = imp.run();
  std::cout << "  IMP-II: result " << stats.output.at(0) << " in "
            << stats.cycles << " cycles (" << config.cores << " cores, "
            << "message-passing reduction)\n";
  return stats.output.at(0);
}

Word run_dataflow() {
  df::Graph g;
  std::vector<df::NodeId> products;
  for (int i = 0; i < kN; ++i) {
    const df::NodeId a = g.add_input("a" + std::to_string(i));
    const df::NodeId b = g.add_input("b" + std::to_string(i));
    products.push_back(g.add_op(df::Op::Mul, a, b));
  }
  while (products.size() > 1) {
    std::vector<df::NodeId> next;
    for (std::size_t i = 0; i + 1 < products.size(); i += 2) {
      next.push_back(g.add_op(df::Op::Add, products[i], products[i + 1]));
    }
    products = std::move(next);
  }
  g.add_output("dot", products[0]);

  std::vector<std::pair<std::string, Word>> inputs;
  for (int i = 0; i < kN; ++i) {
    inputs.emplace_back("a" + std::to_string(i), kA[i]);
    inputs.emplace_back("b" + std::to_string(i), kB[i]);
  }
  df::TokenMachine machine(g, df::TokenMachineConfig::for_subtype(4, 4));
  const auto result = machine.run(inputs);
  std::cout << "  DMP-IV: result " << result.outputs.at(0).second << " in "
            << result.stats.cycles << " cycles ("
            << result.stats.instructions << " token firings on 4 PEs)\n";
  return result.outputs.at(0).second;
}

Word run_usp() {
  // The universal fabric demonstrates paradigm freedom rather than
  // width: configure it as a 4-bit adder and add the two low products
  // (1*7 + 2*3 = 13) the same way the data-flow graph's first adder
  // does.
  using namespace mpct::sim::spatial;
  LutFabric fabric(64, 16, 8);
  const Netlist adder = build_ripple_adder(4);
  const MappingReport report = map_netlist(adder, fabric);

  const unsigned p0 = static_cast<unsigned>(kA[0] * kB[0]);  // 7
  const unsigned p1 = static_cast<unsigned>(kA[1] * kB[1]);  // 6
  std::vector<std::pair<std::string, bool>> values;
  for (int i = 0; i < 4; ++i) {
    values.emplace_back("a" + std::to_string(i), (p0 >> i) & 1u);
    values.emplace_back("b" + std::to_string(i), (p1 >> i) & 1u);
  }
  values.emplace_back("cin", false);
  const auto out =
      fabric.step(pack_inputs(report, fabric.primary_inputs(), values));
  unsigned sum = 0;
  for (int i = 0; i < 4; ++i) {
    if (out[static_cast<std::size_t>(
            report.output_index.at("s" + std::to_string(i)))]) {
      sum |= 1u << i;
    }
  }
  if (out[static_cast<std::size_t>(report.output_index.at("cout"))]) {
    sum |= 1u << 4;
  }
  std::cout << "  USP:    partial a0*b0 + a1*b1 = " << sum
            << " on a LUT fabric configured as a 4-bit adder ("
            << report.cells_used << " cells)\n";
  return sum;
}

}  // namespace

int main() {
  std::cout << "dot product of " << kN << "-element vectors across the "
            << "taxonomy's paradigms\n"
            << "reference: " << reference() << "\n\n";
  const Word expected = reference();
  bool all_ok = run_iup() == expected;
  all_ok = (run_iap() == expected) && all_ok;
  all_ok = (run_imp() == expected) && all_ok;
  all_ok = (run_dataflow() == expected) && all_ok;
  const Word partial = run_usp();
  all_ok = (partial == static_cast<Word>(kA[0] * kB[0] + kA[1] * kB[1])) &&
           all_ok;
  std::cout << "\n" << (all_ok ? "all machines agree" : "MISMATCH") << "\n";
  return all_ok ? 0 : 1;
}
