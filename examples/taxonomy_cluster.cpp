/// taxonomy_cluster — a whole fleet in one process (or, with
/// --collector, across real processes).
///
/// Default mode boots N backend taxonomy servers in-process, puts a
/// cluster::CombiningProxy in front of them, and drives a seeded mixed
/// workload (classifies, a parallel-scattered design sweep, a fault
/// sweep) through the proxy with plain net::Clients — the proxy speaks
/// the same wire protocol as a single server, so clients need no fleet
/// awareness.  Halfway through, one backend is killed to show
/// health-driven failover: every request still answers, the dead
/// endpoint goes Down, traffic redistributes over the ring.
///
/// --collector mode is the always-on-tracing demo: each backend becomes
/// a real child process (re-exec of this binary) running its own
/// net::TraceStreamer, the parent runs the proxy plus a collector
/// server feeding a trace::Collector, one backend is SIGKILLed mid-run,
/// and the run ends by writing one assembled cross-fleet timeline for a
/// trace that (a) touched at least two distinct processes and (b)
/// contains a hedge or failover instant — the exit code enforces both.
///
///   usage: taxonomy_cluster [--collector] [--timeline FILE]
///                           [backends=3] [requests=64]
#include <limits.h>
#include <signal.h>
#include <stdio.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "arch/registry.hpp"
#include "cluster/cluster.hpp"
#include "net/net.hpp"
#include "net/trace_stream.hpp"
#include "service/service.hpp"
#include "trace/collector.hpp"
#include "trace/trace.hpp"

using namespace mpct;

namespace {

service::Request random_request(std::mt19937_64& rng) {
  const auto& survey = arch::surveyed_architectures();
  switch (rng() % 4) {
    case 0:
    case 1:  // classifies dominate, like a real mix
      return service::ClassifyRequest::of(survey[rng() % survey.size()]);
    case 2: {
      service::SweepRequest sweep;
      sweep.grid.base.min_flexibility = 1 + static_cast<int>(rng() % 3);
      sweep.grid.n_values = {4, 16};
      sweep.grid.lut_budgets = {256, 1024};
      return sweep;
    }
    default: {
      service::FaultSweepRequest fault;
      MachineClass machine;
      machine.granularity = Granularity::IpDp;
      machine.ips = Multiplicity::Many;
      machine.dps = Multiplicity::Many;
      machine.set_switch(ConnectivityRole::IpDp, SwitchKind::Crossbar);
      machine.set_switch(ConnectivityRole::DpDm, SwitchKind::Crossbar);
      fault.spec.machine = machine;
      fault.spec.bindings.n = 4;
      fault.spec.fault_rates = {0.0, 0.05, 0.1};
      fault.spec.trials_per_rate = 4;
      fault.spec.seed = 7 + rng() % 3;
      return fault;
    }
  }
}

int usage() {
  std::cerr << "usage: taxonomy_cluster [--collector] [--timeline FILE] "
               "[backends=3] [requests=64]\n";
  return 2;
}

// --- child process: one backend server + trace streamer ---------------

/// Entry point of a `--backend <collector_port> <node>` child: serve on
/// an ephemeral port (announced as "PORT <n>" on stdout), stream spans
/// at the collector, run until the parent closes our stdin.
int run_backend(std::uint16_t collector_port, const char* node) {
  trace::Tracer::instance().enable();

  service::EngineOptions engine_options;
  engine_options.worker_threads = 2;
  service::QueryEngine engine(engine_options);
  net::Server server(engine);
  if (!server.start()) {
    std::cerr << node << ": " << server.error() << "\n";
    return 1;
  }
  std::cout << "PORT " << server.port() << "\n" << std::flush;

  net::TraceStreamerOptions stream_options;
  stream_options.port = collector_port;
  stream_options.node = node;
  stream_options.metrics = &engine.metrics();
  net::TraceStreamer streamer(stream_options);
  if (!streamer.start()) {
    std::cerr << node << ": " << streamer.error() << "\n";
  }

  // Parent closing the pipe (or dying) is the shutdown signal — a
  // SIGKILLed backend never reaches this, which is the point.
  char buffer[16];
  while (::read(STDIN_FILENO, buffer, sizeof buffer) > 0) {
  }
  streamer.stop();  // final drain + bounded flush ships the tail
  server.stop();
  return 0;
}

// --- parent process: collector + proxy + load + assembly --------------

struct BackendProcess {
  pid_t pid = -1;
  int shutdown_fd = -1;  ///< write end of the child's stdin; close = stop
  std::uint16_t port = 0;
  bool killed = false;
};

/// Fork+exec one `--backend` child and read its announced port.
bool spawn_backend(const char* self, std::uint16_t collector_port,
                   const std::string& node, BackendProcess& out) {
  int to_child[2];
  int from_child[2];
  if (::pipe(to_child) != 0 || ::pipe(from_child) != 0) {
    std::cerr << node << ": pipe failed\n";
    return false;
  }
  const pid_t pid = ::fork();
  if (pid < 0) {
    std::cerr << node << ": fork failed\n";
    return false;
  }
  if (pid == 0) {
    ::dup2(to_child[0], STDIN_FILENO);
    ::dup2(from_child[1], STDOUT_FILENO);
    ::close(to_child[0]);
    ::close(to_child[1]);
    ::close(from_child[0]);
    ::close(from_child[1]);
    const std::string port_arg = std::to_string(collector_port);
    const char* argv[] = {self, "--backend", port_arg.c_str(), node.c_str(),
                          nullptr};
    ::execv(self, const_cast<char* const*>(argv));
    ::perror("execv");
    ::_exit(127);
  }
  ::close(to_child[0]);
  ::close(from_child[1]);
  out.pid = pid;
  out.shutdown_fd = to_child[1];

  FILE* stream = ::fdopen(from_child[0], "r");
  char line[64];
  unsigned port = 0;
  if (stream == nullptr || ::fgets(line, sizeof line, stream) == nullptr ||
      std::sscanf(line, "PORT %u", &port) != 1 || port == 0 ||
      port > 65535) {
    std::cerr << node << ": no port announcement from child\n";
    if (stream != nullptr) ::fclose(stream);
    return false;
  }
  ::fclose(stream);  // also closes from_child[0]; child ignores EPIPE
  out.port = static_cast<std::uint16_t>(port);
  return true;
}

int run_collector_demo(std::size_t backends, std::size_t requests,
                       const std::string& timeline_path) {
  trace::Tracer::instance().enable();

  // --- collector: a plain server whose span sink feeds the assembler --
  trace::Collector collector;
  service::EngineOptions collector_engine_options;
  collector_engine_options.worker_threads = 0;
  service::QueryEngine collector_engine(collector_engine_options);
  net::ServerOptions collector_options;
  collector_options.span_sink = [&collector](wire::SpanBatchFrame frame) {
    collector.ingest(frame.batch, trace::Tracer::instance().now_ns());
  };
  net::Server collector_server(collector_engine, collector_options);
  if (!collector_server.start()) {
    std::cerr << "collector: " << collector_server.error() << "\n";
    return 1;
  }
  std::cout << "collector listening on 127.0.0.1:" << collector_server.port()
            << "\n";

  // --- fleet: N backend *processes*, each streaming its own spans -----
  char self[PATH_MAX];
  const ssize_t len = ::readlink("/proc/self/exe", self, sizeof self - 1);
  if (len <= 0) {
    std::cerr << "cannot resolve /proc/self/exe\n";
    return 1;
  }
  self[len] = '\0';

  std::vector<BackendProcess> children(backends);
  std::vector<cluster::Endpoint> endpoints;
  for (std::size_t i = 0; i < backends; ++i) {
    const std::string node = "backend-" + std::to_string(i);
    if (!spawn_backend(self, collector_server.port(), node, children[i])) {
      for (BackendProcess& child : children) {
        if (child.pid > 0) ::kill(child.pid, SIGKILL);
      }
      return 1;
    }
    endpoints.push_back({"127.0.0.1", children[i].port});
    std::cout << node << " (pid " << children[i].pid << ") listening on "
              << endpoints.back().to_string() << "\n";
  }

  // --- proxy + its own streamer, node "proxy" -------------------------
  cluster::ProxyOptions proxy_options;
  proxy_options.cluster.endpoints = endpoints;
  proxy_options.cluster.pinger.interval = std::chrono::milliseconds(100);
  // Hedge aggressively so the demo reliably shows speculative retries:
  // anything slower than 2 ms (every scattered sweep) gets a hedge.
  proxy_options.cluster.hedge_max_delay = std::chrono::milliseconds(2);
  cluster::CombiningProxy proxy(proxy_options);
  if (!proxy.start()) {
    std::cerr << "proxy: " << proxy.error() << "\n";
    return 1;
  }
  std::cout << "proxy listening on 127.0.0.1:" << proxy.port() << "\n\n";

  net::TraceStreamerOptions proxy_stream_options;
  proxy_stream_options.port = collector_server.port();
  proxy_stream_options.node = "proxy";
  proxy_stream_options.metrics = &proxy.metrics();
  net::TraceStreamer proxy_streamer(proxy_stream_options);
  if (!proxy_streamer.start()) {
    std::cerr << "proxy streamer: " << proxy_streamer.error() << "\n";
  }

  // --- seeded load; SIGKILL one backend halfway -----------------------
  std::mt19937_64 rng(2026);
  net::ClientOptions client_options;
  client_options.port = proxy.port();
  net::Client client(client_options);

  // Explicit wire trace ids, one per request, so the timeline check can
  // speak about "one trace id" without fingerprint-fallback ambiguity.
  const std::uint64_t trace_base = 0x7ace'0000;
  std::size_t ok = 0, failed = 0;
  for (std::size_t i = 0; i < requests; ++i) {
    if (backends > 1 && i == requests / 2) {
      std::cout << "-- SIGKILL backend " << backends - 1 << " mid-run --\n";
      ::kill(children[backends - 1].pid, SIGKILL);
      children[backends - 1].killed = true;
    }
    const service::QueryResponse response = client.call(
        random_request(rng), service::Deadline::never(), trace_base + i);
    if (response.ok()) {
      ++ok;
    } else {
      ++failed;
      std::cout << "request " << i << " failed: "
                << response.status.to_string() << "\n";
    }
  }

  // --- wind down: final flushes, child exits, collector quiescence ----
  proxy_streamer.stop();
  proxy.stop();
  for (BackendProcess& child : children) {
    if (child.shutdown_fd >= 0) ::close(child.shutdown_fd);
  }
  for (BackendProcess& child : children) {
    if (child.pid > 0) ::waitpid(child.pid, nullptr, 0);
  }
  // Children have exited, so every batch they sent is at least in our
  // socket buffers; wait for the collector's counters to go quiet.
  trace::CollectorStats last = collector.stats();
  for (int i = 0; i < 20; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    const trace::CollectorStats now = collector.stats();
    if (now.batches == last.batches && now.spans == last.spans) break;
    last = now;
  }
  collector_server.stop();

  const trace::CollectorStats stats = collector.stats();
  std::cout << "\n" << ok << "/" << requests << " answered, " << failed
            << " failed\ncollector absorbed " << stats.spans << " spans in "
            << stats.batches << " batches from " << stats.nodes
            << " nodes (" << stats.dropped << " reported dropped)\n";

  // --- the structural check the exit code enforces --------------------
  // One trace id must have spans from >= 2 distinct processes AND carry
  // a hedge or failover instant; its timeline is the artifact we write.
  std::uint64_t chosen = 0;
  std::string timeline;
  for (const std::uint64_t id : collector.trace_ids()) {
    if (collector.node_count(id) < 2) continue;
    std::string candidate = collector.assemble(id);
    if (candidate.find("cluster.hedge") == std::string::npos &&
        candidate.find("cluster.failover") == std::string::npos) {
      continue;
    }
    chosen = id;
    timeline = std::move(candidate);
    break;
  }
  if (chosen == 0) {
    // Still leave an artifact to debug with, but fail the run.
    const std::uint64_t richest = collector.richest_trace();
    std::ofstream(timeline_path) << collector.assemble(richest);
    std::cerr << "FAIL: no trace with >= 2 nodes and a hedge/failover "
                 "instant; wrote richest trace "
              << richest << " to " << timeline_path << "\n";
    return 1;
  }
  std::ofstream out(timeline_path);
  out << timeline;
  out.close();
  std::cout << "wrote cross-fleet timeline for trace " << chosen << " ("
            << collector.node_count(chosen) << " processes) to "
            << timeline_path << "\n";
  return failed == 0 ? 0 : 1;
}

// --- default single-process demo --------------------------------------

int run_local(std::size_t backends, std::size_t requests) {
  // --- fleet: N single-process backend servers ------------------------
  std::vector<std::unique_ptr<service::QueryEngine>> engines;
  std::vector<std::unique_ptr<net::Server>> servers;
  std::vector<cluster::Endpoint> endpoints;
  for (std::size_t i = 0; i < backends; ++i) {
    service::EngineOptions engine_options;
    engine_options.worker_threads = 2;
    engines.push_back(std::make_unique<service::QueryEngine>(engine_options));
    servers.push_back(std::make_unique<net::Server>(*engines.back()));
    if (!servers.back()->start()) {
      std::cerr << "backend " << i << ": " << servers.back()->error() << "\n";
      return 1;
    }
    endpoints.push_back({"127.0.0.1", servers.back()->port()});
    std::cout << "backend " << i << " listening on "
              << endpoints.back().to_string() << "\n";
  }

  // --- combining proxy in front --------------------------------------
  cluster::ProxyOptions proxy_options;
  proxy_options.cluster.endpoints = endpoints;
  proxy_options.cluster.pinger.interval = std::chrono::milliseconds(100);
  cluster::CombiningProxy proxy(proxy_options);
  if (!proxy.start()) {
    std::cerr << "proxy: " << proxy.error() << "\n";
    return 1;
  }
  std::cout << "proxy listening on 127.0.0.1:" << proxy.port() << "\n\n";

  // --- seeded load through the proxy; kill a backend halfway ----------
  std::mt19937_64 rng(2026);
  net::ClientOptions client_options;
  client_options.port = proxy.port();
  net::Client client(client_options);

  std::size_t ok = 0, cached = 0, failed = 0;
  for (std::size_t i = 0; i < requests; ++i) {
    if (backends > 1 && i == requests / 2) {
      std::cout << "-- killing backend " << backends - 1 << " mid-run --\n";
      servers[backends - 1]->stop();
    }
    const service::QueryResponse response = client.call(random_request(rng));
    if (response.ok()) {
      ++ok;
      if (response.cache_hit) ++cached;
    } else {
      ++failed;
      std::cout << "request " << i << " failed: " << response.status.to_string()
                << "\n";
    }
  }

  std::cout << "\n" << ok << "/" << requests << " answered (" << cached
            << " cache hits at the backends' LRU via hash affinity), "
            << failed << " failed\n\nfleet health:\n";
  for (std::size_t i = 0; i < endpoints.size(); ++i) {
    std::cout << "  " << endpoints[i].to_string() << "  "
              << to_string(proxy.health().state(i)) << "\n";
  }
  // The proxy has no result cache of its own — caching happens at the
  // backends — so its table reports empty CacheStats.
  std::cout << "\nproxy metrics:\n"
            << proxy.metrics().to_table(service::CacheStats{}) << "\n";

  proxy.stop();
  for (auto& server : servers) server->stop();
  return failed == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 3 && std::string(argv[1]) == "--backend") {
    const int port = std::atoi(argv[2]);
    if (port <= 0 || port > 65535) return usage();
    return run_backend(static_cast<std::uint16_t>(port),
                       argc > 3 ? argv[3] : "backend");
  }

  bool collector_mode = false;
  std::string timeline_path = "cluster.trace.json";
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--collector") {
      collector_mode = true;
    } else if (arg == "--timeline" && i + 1 < argc) {
      timeline_path = argv[++i];
    } else if (!arg.empty() && arg[0] == '-') {
      return usage();
    } else {
      positional.push_back(arg);
    }
  }
  const std::size_t backends =
      positional.size() > 0
          ? static_cast<std::size_t>(std::atoi(positional[0].c_str()))
          : 3;
  const std::size_t requests =
      positional.size() > 1
          ? static_cast<std::size_t>(std::atoi(positional[1].c_str()))
          : 64;
  if (backends == 0 || requests == 0 || positional.size() > 2) return usage();

  if (collector_mode) {
    return run_collector_demo(backends, requests, timeline_path);
  }
  return run_local(backends, requests);
}
