/// taxonomy_cluster — a whole fleet in one process.
///
/// Boots N backend taxonomy servers, puts a cluster::CombiningProxy in
/// front of them, and drives a seeded mixed workload (classifies, a
/// parallel-scattered design sweep, a fault sweep) through the proxy
/// with plain net::Clients — the proxy speaks the same wire protocol as
/// a single server, so clients need no fleet awareness.  Halfway
/// through, one backend is killed to show health-driven failover: every
/// request still answers, the dead endpoint goes Down, traffic
/// redistributes over the ring.
///
///   usage: taxonomy_cluster [backends=3] [requests=64]
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "arch/registry.hpp"
#include "cluster/cluster.hpp"
#include "net/net.hpp"
#include "service/service.hpp"

using namespace mpct;

namespace {

service::Request random_request(std::mt19937_64& rng) {
  const auto& survey = arch::surveyed_architectures();
  switch (rng() % 4) {
    case 0:
    case 1:  // classifies dominate, like a real mix
      return service::ClassifyRequest::of(survey[rng() % survey.size()]);
    case 2: {
      service::SweepRequest sweep;
      sweep.grid.base.min_flexibility = 1 + static_cast<int>(rng() % 3);
      sweep.grid.n_values = {4, 16};
      sweep.grid.lut_budgets = {256, 1024};
      return sweep;
    }
    default: {
      service::FaultSweepRequest fault;
      MachineClass machine;
      machine.granularity = Granularity::IpDp;
      machine.ips = Multiplicity::Many;
      machine.dps = Multiplicity::Many;
      machine.set_switch(ConnectivityRole::IpDp, SwitchKind::Crossbar);
      machine.set_switch(ConnectivityRole::DpDm, SwitchKind::Crossbar);
      fault.spec.machine = machine;
      fault.spec.bindings.n = 4;
      fault.spec.fault_rates = {0.0, 0.05, 0.1};
      fault.spec.trials_per_rate = 4;
      fault.spec.seed = 7 + rng() % 3;
      return fault;
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t backends =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 3;
  const std::size_t requests =
      argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 64;
  if (backends == 0 || requests == 0) {
    std::cerr << "usage: taxonomy_cluster [backends=3] [requests=64]\n";
    return 2;
  }

  // --- fleet: N single-process backend servers ------------------------
  std::vector<std::unique_ptr<service::QueryEngine>> engines;
  std::vector<std::unique_ptr<net::Server>> servers;
  std::vector<cluster::Endpoint> endpoints;
  for (std::size_t i = 0; i < backends; ++i) {
    service::EngineOptions engine_options;
    engine_options.worker_threads = 2;
    engines.push_back(std::make_unique<service::QueryEngine>(engine_options));
    servers.push_back(std::make_unique<net::Server>(*engines.back()));
    if (!servers.back()->start()) {
      std::cerr << "backend " << i << ": " << servers.back()->error() << "\n";
      return 1;
    }
    endpoints.push_back({"127.0.0.1", servers.back()->port()});
    std::cout << "backend " << i << " listening on " << endpoints.back().to_string()
              << "\n";
  }

  // --- combining proxy in front --------------------------------------
  cluster::ProxyOptions proxy_options;
  proxy_options.cluster.endpoints = endpoints;
  proxy_options.cluster.pinger.interval = std::chrono::milliseconds(100);
  cluster::CombiningProxy proxy(proxy_options);
  if (!proxy.start()) {
    std::cerr << "proxy: " << proxy.error() << "\n";
    return 1;
  }
  std::cout << "proxy listening on 127.0.0.1:" << proxy.port() << "\n\n";

  // --- seeded load through the proxy; kill a backend halfway ----------
  std::mt19937_64 rng(2026);
  net::ClientOptions client_options;
  client_options.port = proxy.port();
  net::Client client(client_options);

  std::size_t ok = 0, cached = 0, failed = 0;
  for (std::size_t i = 0; i < requests; ++i) {
    if (backends > 1 && i == requests / 2) {
      std::cout << "-- killing backend " << backends - 1 << " mid-run --\n";
      servers[backends - 1]->stop();
    }
    const service::QueryResponse response = client.call(random_request(rng));
    if (response.ok()) {
      ++ok;
      if (response.cache_hit) ++cached;
    } else {
      ++failed;
      std::cout << "request " << i << " failed: " << response.status.to_string()
                << "\n";
    }
  }

  std::cout << "\n" << ok << "/" << requests << " answered (" << cached
            << " cache hits at the backends' LRU via hash affinity), "
            << failed << " failed\n\nfleet health:\n";
  for (std::size_t i = 0; i < endpoints.size(); ++i) {
    std::cout << "  " << endpoints[i].to_string() << "  "
              << to_string(proxy.health().state(i)) << "\n";
  }
  // The proxy has no result cache of its own — caching happens at the
  // backends — so its table reports empty CacheStats.
  std::cout << "\nproxy metrics:\n"
            << proxy.metrics().to_table(service::CacheStats{}) << "\n";

  proxy.stop();
  for (auto& server : servers) server->stop();
  return failed == 0 ? 0 : 1;
}
