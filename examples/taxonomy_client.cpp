/// taxonomy_client — query a running taxonomy_server over TCP.
///
/// Pipelines a batch on one connection: classify every named survey
/// architecture (or the whole survey when no names are given), then a
/// recommendation, a symbolic cost sweep, and a stencil5 simulation on
/// the IMP-IV mesh multiprocessor (wire v2).  Demonstrates the typed
/// failure model: an unreachable server comes back as
/// StatusCode::Unavailable after retries, never as an exception.
///
///   usage: taxonomy_client <port> [architecture-name...]
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "arch/registry.hpp"
#include "core/classifier.hpp"
#include "core/naming.hpp"
#include "core/taxonomy_table.hpp"
#include "net/net.hpp"
#include "service/service.hpp"

using namespace mpct;
using namespace mpct::service;

namespace {

std::string describe(const QueryResponse& response) {
  if (!response.ok()) return "ERROR " + response.status.to_string();
  std::string out = response.cache_hit ? "[cached] " : "[computed] ";
  if (const ClassifyResponse* c = response.classify()) {
    out += c->spec.name + " -> ";
    if (c->classification.ok()) {
      out += to_string(*c->classification.name);
    } else {
      out += "unclassifiable: ";
      out += c->classification.note;
    }
  } else if (const RecommendResponse* r = response.recommend()) {
    out += "top classes:";
    for (const auto& rec : r->recommendations) {
      out += " ";
      out += to_string(rec.name);
    }
  } else if (const CostResponse* c = response.cost()) {
    out += "cost sweep:";
    for (const auto& point : c->points) {
      char cell[64];
      std::snprintf(cell, sizeof(cell), " n=%lld:%.0fkGE",
                    static_cast<long long>(point.n), point.area.total_kge());
      out += cell;
    }
  } else if (const SimulateResponse* s = response.simulate()) {
    char cell[128];
    std::snprintf(cell, sizeof(cell),
                  "stencil5 on %s: %lld cycles, checksum %016llx%s",
                  to_string(s->result.machine).c_str(),
                  static_cast<long long>(s->result.cycles),
                  static_cast<unsigned long long>(s->result.output_checksum),
                  s->result.matches_reference ? " (matches reference)"
                                              : " (MISMATCH)");
    out += cell;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: taxonomy_client <port> [architecture-name...]\n";
    return 2;
  }

  std::vector<Request> batch;
  if (argc > 2) {
    for (int i = 2; i < argc; ++i) {
      const arch::ArchitectureSpec* spec = arch::find_architecture(argv[i]);
      if (!spec) {
        std::cerr << "unknown architecture: " << argv[i] << "\n";
        return 2;
      }
      batch.push_back(ClassifyRequest::of(*spec));
    }
  } else {
    for (const arch::ArchitectureSpec& spec : arch::surveyed_architectures()) {
      batch.push_back(ClassifyRequest::of(spec));
    }
  }
  {
    RecommendRequest recommend;
    recommend.requirements.min_flexibility = 4;
    recommend.top_k = 3;
    batch.push_back(recommend);
  }
  {
    CostRequest cost;
    cost.target = find_entry(*parse_taxonomic_name("IMP-XVI"))->machine;
    cost.n_sweep = {4, 16, 64};
    batch.push_back(cost);
  }
  {
    SimulateRequest simulate;
    simulate.workload.kernel = workload::Kernel::Stencil5;
    simulate.workload.size = 8;
    simulate.workload.iterations = 4;
    simulate.target = *canonical_class(*parse_taxonomic_name("IMP-IV"));
    simulate.options.width = 4;
    simulate.seed = 7;
    batch.push_back(simulate);
  }

  net::ClientOptions options;
  options.port = static_cast<std::uint16_t>(std::atoi(argv[1]));
  net::Client client(options);

  const auto deadline = Deadline::in(std::chrono::seconds(10));
  const std::vector<QueryResponse> responses =
      client.call_batch(std::move(batch), deadline);

  std::cout << "-- responses (" << responses.size() << " requests) --\n";
  bool all_ok = true;
  for (const QueryResponse& response : responses) {
    std::cout << "  " << describe(response) << "\n";
    all_ok = all_ok && response.ok();
  }
  return all_ok ? 0 : 1;
}
