/// End-to-end CGRA flow: compile an expression program into a dataflow
/// graph, spatially map it onto a CGRA fabric, execute it, and compare
/// the fabric's measured configuration size with the taxonomy's Eq. 2
/// estimate for the matching class (IAP-IV: one sequencer, n DPs,
/// crossbars on DP-DM and DP-DP).
///
/// Usage: cgra_flow ["expression program"]
///   default program: a 4-tap FIR step with saturation.
#include <iostream>

#include "core/classifier.hpp"
#include "core/flexibility.hpp"
#include "cost/config_map.hpp"
#include "sim/cgra/scheduler.hpp"
#include "sim/dataflow/expr_parser.hpp"
#include "sim/memory.hpp"

int main(int argc, char** argv) {
  using namespace mpct;
  using namespace mpct::sim;

  const std::string source = argc > 1 ? argv[1] : R"(
    acc = x0*c0 + x1*c1 + x2*c2 + x3*c3
    out = min(acc, 1000)
  )";

  df::Graph graph;
  try {
    graph = df::compile_expression_or_throw(source);
  } catch (const SimError& error) {
    std::cerr << error.what() << "\n";
    return 1;
  }
  std::cout << "program:\n" << source << "\n"
            << "graph: " << graph.node_count() << " nodes, "
            << graph.input_nodes().size() << " inputs, "
            << graph.output_nodes().size() << " outputs\n\n";

  cgra::CgraShape shape;
  shape.fus = 16;
  shape.contexts = 16;
  shape.primary_inputs =
      std::max<int>(8, static_cast<int>(graph.input_nodes().size()));
  cgra::Cgra fabric(shape);

  cgra::Schedule schedule;
  try {
    schedule = cgra::map_graph(graph, fabric);
  } catch (const SimError& error) {
    std::cerr << "mapping failed: " << error.what() << "\n";
    return 1;
  }
  std::cout << "mapped onto " << schedule.fus_used << " of " << shape.fus
            << " FUs, depth " << schedule.depth << " contexts\n";
  for (int id = 0; id < graph.node_count(); ++id) {
    if (schedule.node_fu[static_cast<std::size_t>(id)] < 0) continue;
    std::cout << "  node " << id << " ("
              << to_string(graph.node(id).op) << ") -> FU"
              << schedule.node_fu[static_cast<std::size_t>(id)]
              << " @cycle "
              << schedule.node_cycle[static_cast<std::size_t>(id)] << "\n";
  }

  // Run with a deterministic sample binding: input i gets value i+1.
  std::vector<std::pair<std::string, sim::Word>> inputs;
  int value = 1;
  for (df::NodeId id : graph.input_nodes()) {
    inputs.emplace_back(graph.node(id).name, value++);
  }
  std::cout << "\ninputs:";
  for (const auto& [name, v] : inputs) std::cout << ' ' << name << '=' << v;
  const auto outputs = cgra::run_mapped(fabric, schedule, inputs);
  std::cout << "\noutputs:";
  for (const auto& [name, v] : outputs) std::cout << ' ' << name << '=' << v;
  const auto reference = df::evaluate(graph, inputs);
  std::cout << "\nreference agrees: "
            << (outputs == reference ? "yes" : "NO") << "\n\n";

  // The taxonomy's view of this machine.
  MachineClass mc;
  mc.ips = Multiplicity::One;
  mc.dps = Multiplicity::Many;
  mc.set_switch(ConnectivityRole::IpDp, SwitchKind::Direct);
  mc.set_switch(ConnectivityRole::IpIm, SwitchKind::Direct);
  mc.set_switch(ConnectivityRole::DpDm, SwitchKind::Crossbar);
  mc.set_switch(ConnectivityRole::DpDp, SwitchKind::Crossbar);
  const Classification cls = classify(mc);
  std::cout << "taxonomy class of this fabric: " << to_string(*cls.name)
            << " (flexibility " << flexibility_score(mc) << ")\n";
  std::cout << "measured context-memory configuration: "
            << fabric.config_bits() << " bits\n";

  const cost::ComponentLibrary lib = cost::ComponentLibrary::default_library();
  cost::EstimateOptions options;
  options.n = shape.fus;
  const cost::ConfigMap map = cost::plan_config_map(mc, lib, options);
  std::cout << "Eq.2 class-level plan (" << map.total_bits()
            << " bits):\n" << map.to_string();
  std::cout << "(the measured fabric stores per-cycle contexts — "
               "time-multiplexed configuration the class-level equation "
               "does not model; both views are useful)\n";
  return 0;
}
