/// Compare two surveyed architectures through the taxonomy: names,
/// structural differences, flexibility, morphability and cost estimates.
///
/// Usage: compare_architectures [arch_a] [arch_b]
///   defaults: MorphoSys vs DRRA.  Names are the Table III rows
///   (case-insensitive); run with --list to enumerate them.
#include <iostream>
#include <string>

#include "arch/registry.hpp"
#include "core/comparison.hpp"
#include "cost/area_model.hpp"
#include "cost/config_bits.hpp"
#include "explore/upgrade.hpp"

int main(int argc, char** argv) {
  using namespace mpct;

  if (argc > 1 && std::string(argv[1]) == "--list") {
    for (const arch::ArchitectureSpec& spec :
         arch::surveyed_architectures()) {
      std::cout << spec.name << "\n";
    }
    return 0;
  }

  const std::string name_a = argc > 1 ? argv[1] : "MorphoSys";
  const std::string name_b = argc > 2 ? argv[2] : "DRRA";
  const arch::ArchitectureSpec* a = arch::find_architecture(name_a);
  const arch::ArchitectureSpec* b = arch::find_architecture(name_b);
  if (!a || !b) {
    std::cerr << "unknown architecture '" << (a ? name_b : name_a)
              << "' (use --list)\n";
    return 1;
  }

  const auto describe = [](const arch::ArchitectureSpec& spec) {
    const Classification result = spec.classify();
    std::cout << spec.name << " " << spec.citation << " (" << spec.year
              << ", " << spec.category << ")\n  " << spec.description
              << "\n  class: "
              << (result.ok() ? to_string(*result.name) : "?")
              << ", flexibility: " << spec.flexibility().to_string()
              << "\n  cells:";
    for (ConnectivityRole role : kAllConnectivityRoles) {
      std::cout << ' ' << to_string(role) << '='
                << spec.at(role).to_string();
    }
    std::cout << "\n\n";
  };
  describe(*a);
  describe(*b);

  const Classification ca = a->classify();
  const Classification cb = b->classify();
  if (ca.ok() && cb.ok()) {
    const NameComparison cmp = compare(*ca.name, *cb.name);
    std::cout << "structural comparison: " << cmp.summary() << "\n";
    if (flexibility_comparable(ca.name->machine_type,
                               cb.name->machine_type)) {
      const int fa = a->flexibility().total();
      const int fb = b->flexibility().total();
      std::cout << "flexibility: " << a->name << " " << fa
                << (fa == fb ? " == " : (fa > fb ? " > " : " < "))
                << fb << " " << b->name << "\n";
    } else {
      std::cout << "flexibility values are NOT comparable (different flow "
                   "paradigms; Section III-B)\n";
    }
    std::cout << "morphability: " << a->name << " -> " << b->name << ": "
              << (can_morph_into(*ca.name, *cb.name) ? "yes" : "no")
              << "; " << b->name << " -> " << a->name << ": "
              << (can_morph_into(*cb.name, *ca.name) ? "yes" : "no")
              << "\n";
    if (!can_morph_into(*ca.name, *cb.name)) {
      const auto plan =
          explore::upgrade_path(a->machine_class(), *cb.name);
      if (plan) {
        std::cout << "to retrofit " << a->name << " into a "
                  << to_string(*cb.name) << ":\n";
        for (const explore::UpgradeStep& step : plan->steps) {
          std::cout << "  - " << step.description << "\n";
        }
      } else {
        std::cout << "no additive retrofit takes " << a->name << " into "
                  << to_string(*cb.name)
                  << " (paradigm divide or would require removing "
                     "hardware)\n";
      }
    }
  }

  const cost::ComponentLibrary lib = cost::ComponentLibrary::default_library();
  const cost::EstimateOptions options{.n = 16, .m = 16, .v = 1024};
  for (const arch::ArchitectureSpec* spec : {a, b}) {
    const auto area = cost::estimate_area(*spec, lib, options);
    const auto bits = cost::estimate_config_bits(*spec, lib, options);
    std::cout << "estimates for " << spec->name << ": "
              << static_cast<long long>(area.total_kge()) << " kGE, "
              << bits.total() << " configuration bits\n";
  }
  return 0;
}
