/// The paper's conclusion use-case, as a tool: "a designer can decide
/// which computer class offers the required flexibility with minimum
/// configuration overhead for single or set of target applications."
///
/// Usage: design_space_explorer [min_flexibility] [N] [paradigm]
///   min_flexibility  required flexibility score (default 3)
///   N                component count to cost the classes at (default 16)
///   paradigm         'instruction' (default), 'data' or 'any'
///
/// Sweeps every implementable class, filters by flexibility and
/// paradigm, and ranks the survivors by estimated configuration bits,
/// then area.
#include <cstdlib>
#include <iostream>
#include <string>

#include "arch/template_spec.hpp"
#include "explore/recommend.hpp"
#include "report/table.hpp"

int main(int argc, char** argv) {
  using namespace mpct;

  explore::Requirements req;
  req.min_flexibility = argc > 1 ? std::atoi(argv[1]) : 3;
  req.n = argc > 2 ? std::atoll(argv[2]) : 16;
  req.lut_budget = req.n * 64;  // ~64 4-LUTs per coarse DP equivalent
  const std::string paradigm = argc > 3 ? argv[3] : "instruction";
  if (paradigm == "instruction") {
    req.paradigm = MachineType::InstructionFlow;
  } else if (paradigm == "data") {
    req.paradigm = MachineType::DataFlow;
  } else if (paradigm != "any") {
    std::cerr << "paradigm must be 'instruction', 'data' or 'any'\n";
    return 1;
  }

  const auto candidates = explore::recommend(req);

  std::cout << "classes with flexibility >= " << req.min_flexibility << " ("
            << paradigm << " paradigm, N = " << req.n
            << "), cheapest configuration first:\n\n";
  report::TextTable table(
      {"Rank", "Class", "Flex", "CB bits", "Area kGE", "Why"});
  for (std::size_t c = 0; c < 5; ++c) table.set_align(c, report::Align::Right);
  int rank = 0;
  for (const explore::Recommendation& rec : candidates) {
    table.add_row({std::to_string(++rank), to_string(rec.name),
                   std::to_string(rec.flexibility),
                   std::to_string(rec.config_bits),
                   std::to_string(
                       static_cast<long long>(rec.area_kge + 0.5)),
                   rec.rationale});
  }
  std::cout << table.render_ascii();

  if (candidates.empty()) {
    std::cout << "no class satisfies the requirement (max flexibility is "
                 "8, the FPGA/USP)\n";
    return 1;
  }
  std::cout << "\nrecommendation: " << to_string(candidates.front().name)
            << " — the least configuration overhead that still provides "
            << "flexibility " << candidates.front().flexibility << ".\n";

  if (const auto spec =
          arch::spec_from_class(candidates.front().name, req.n)) {
    std::cout << "\nstarting-point ADL for the recommended class:\n\n"
              << arch::to_adl(*spec);
  }
  return 0;
}
