/// Simulation-as-a-service, end to end: one stencil5 Jacobi workload
/// classified, costed, simulated and degraded under an injected mesh
/// fault — every step a wire request through a CombiningProxy over
/// loopback TCP — then the whole recorded session replayed twice
/// against a fresh server and diffed by response fingerprint.
///
///   workload_demo [capture-path] [report-path]
///
/// Writes the raw capture (default workload.capture) and a replay
/// report (default workload.replay.txt); exits non-zero if any step or
/// the fingerprint comparison fails, so CI can run it as a check.
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "arch/registry.hpp"
#include "cluster/cluster.hpp"
#include "core/classifier.hpp"
#include "core/naming.hpp"
#include "net/net.hpp"
#include "service/service.hpp"
#include "workload/runner.hpp"

using namespace mpct;

namespace {

int fail(const std::string& message) {
  std::cerr << "workload_demo: " << message << "\n";
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string capture_path = argc > 1 ? argv[1] : "workload.capture";
  const std::string report_path = argc > 2 ? argv[2] : "workload.replay.txt";

  // The workload: a 5-point Jacobi stencil, 8x8 grid, 4 sweeps.
  workload::WorkloadSpec spec;
  spec.kernel = workload::Kernel::Stencil5;
  spec.size = 8;
  spec.iterations = 4;

  // The serving stack: engine behind a TCP server, combining proxy in
  // front, recorder on the proxy's front door — every frame the client
  // sends below lands in the capture file.
  service::EngineOptions engine_options;
  engine_options.worker_threads = 2;
  service::QueryEngine engine(engine_options);
  net::Server backend(engine);
  if (!backend.start()) return fail("backend: " + backend.error());

  cluster::ProxyOptions proxy_options;
  proxy_options.cluster.endpoints = {{"127.0.0.1", backend.port()}};
  proxy_options.worker_threads = 2;
  proxy_options.enable_pinger = false;
  proxy_options.server.capture_path = capture_path;
  cluster::CombiningProxy proxy(proxy_options);
  if (!proxy.start()) return fail("proxy: " + proxy.error());

  net::ClientOptions client_options;
  client_options.port = proxy.port();
  net::Client client(client_options);

  std::cout << "== 1. classify ==\n";
  const arch::ArchitectureSpec& montium = *arch::find_architecture("Montium");
  const service::QueryResponse classified =
      client.call(service::ClassifyRequest::of(montium));
  if (!classified.ok()) return fail(classified.status.to_string());
  const service::ClassifyResponse& cls = *classified.classify();
  std::cout << montium.name << " -> " << to_string(*cls.classification.name)
            << " (flexibility " << cls.flexibility.total() << ")\n\n";

  // The degraded-mesh arc needs a mesh: IMP-IV, the full-crossbar MIMD
  // multiprocessor, on a 2x2 NoC (width 4).
  const MachineClass mesh_class =
      *canonical_class(*parse_taxonomic_name("IMP-IV"));

  std::cout << "== 2. cost ==\n";
  service::CostRequest cost;
  cost.target = mesh_class;
  cost.options.n = 4;
  const service::QueryResponse costed = client.call(cost);
  if (!costed.ok()) return fail(costed.status.to_string());
  const service::CostResponse::Point& point = costed.cost()->points.front();
  std::cout << "IMP-IV n=4: " << point.area.total_kge() << " kGE, "
            << point.config_bits.total() << " config bits\n\n";

  std::cout << "== 3. simulate (clean) ==\n";
  service::SimulateRequest simulate;
  simulate.workload = spec;
  simulate.target = mesh_class;
  simulate.options.width = 4;
  simulate.seed = 7;
  const service::QueryResponse clean = client.call(simulate);
  if (!clean.ok()) return fail(clean.status.to_string());
  const workload::WorkloadResult& clean_result = clean.simulate()->result;
  std::cout << "stencil5 " << spec.size << "x" << spec.size << "x"
            << spec.iterations << " on " << to_string(clean_result.machine)
            << ": " << clean_result.cycles << " cycles, "
            << clean_result.messages << " messages, checksum 0x" << std::hex
            << clean_result.output_checksum << std::dec
            << (clean_result.matches_reference ? " (matches reference)\n\n"
                                               : " (MISMATCH)\n\n");
  if (!clean_result.matches_reference) return fail("clean run diverged");

  std::cout << "== 4. simulate (mesh link 0-1 dead) ==\n";
  simulate.faults.add_noc_link(0, 1);
  const service::QueryResponse degraded = client.call(simulate);
  if (!degraded.ok()) return fail(degraded.status.to_string());
  const workload::WorkloadResult& degraded_result =
      degraded.simulate()->result;
  std::cout << "route-around cost: " << clean_result.cycles << " -> "
            << degraded_result.cycles << " cycles (+"
            << (degraded_result.cycles - clean_result.cycles)
            << "), same checksum: "
            << (degraded_result.output_checksum ==
                        clean_result.output_checksum
                    ? "yes"
                    : "NO")
            << "\n\n";
  if (!degraded_result.matches_reference ||
      degraded_result.cycles <= clean_result.cycles) {
    return fail("degraded run should match the reference and cost cycles");
  }

  // Tear the stack down; the proxy closes the capture file.
  proxy.stop();
  backend.stop();

  std::cout << "== 5. replay the recorded session ==\n";
  net::CaptureFile capture;
  std::string error;
  if (!net::read_capture(capture_path, capture, error)) return fail(error);
  std::cout << capture_path << ": " << capture.records.size()
            << " recorded request frames\n";

  // Fresh engine, fresh server: the replayer only needs a compatible
  // wire endpoint, and deterministic serving means the fingerprints
  // must come out identical, run after run.
  service::QueryEngine replay_engine(engine_options);
  net::Server replay_server(replay_engine);
  if (!replay_server.start()) return fail(replay_server.error());
  net::ReplayOptions replay_options;
  replay_options.port = replay_server.port();
  replay_options.max_speed = true;
  const net::ReplayOutcome first = net::replay_capture(capture, replay_options);
  if (!first.ok()) return fail(first.error);
  const net::ReplayOutcome second =
      net::replay_capture(capture, replay_options);
  if (!second.ok()) return fail(second.error);
  replay_server.stop();

  std::size_t matched = 0;
  for (std::size_t i = 0;
       i < first.fingerprints.size() && i < second.fingerprints.size(); ++i) {
    if (first.fingerprints[i] == second.fingerprints[i]) ++matched;
  }
  std::ofstream report(report_path);
  report << "capture=" << capture_path << " frames="
         << capture.records.size() << "\n"
         << "run1 sent=" << first.sent << " answered=" << first.answered
         << "\nrun2 sent=" << second.sent << " answered=" << second.answered
         << "\nfingerprints matched=" << matched << "/"
         << first.fingerprints.size() << "\n";
  for (const auto& [id, print] : first.fingerprints) {
    report << "id=" << id << " fp=0x" << std::hex << print << std::dec
           << "\n";
  }
  std::cout << "two max-speed replays: " << matched << "/"
            << first.fingerprints.size()
            << " response fingerprints identical (report: " << report_path
            << ")\n";
  if (first.sent != capture.records.size() || !(first == second) ||
      matched != first.fingerprints.size() || matched == 0) {
    return fail("replay fingerprints diverged");
  }
  std::cout << "\nOK: classified, costed, simulated, degraded and replayed "
               "over the wire.\n";
  return 0;
}
