/// serve_queries — the concurrent query engine end to end.
///
/// Fires a mixed batch (classify over the whole survey twice, an ADL-text
/// classify, a recommend, a cost sweep, plus deliberate failure cases)
/// at a 4-worker QueryEngine, then prints per-request outcomes and the
/// engine's metrics table.
///
/// SIGUSR1 dumps a Chrome trace of the run so far to
/// serve_queries_trace.json — the handler only flips a flag; the
/// snapshot and export happen between responses on the main loop.
///
///   usage: serve_queries [workers]
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "arch/registry.hpp"
#include "core/naming.hpp"
#include "core/taxonomy_table.hpp"
#include "service/service.hpp"
#include "trace/chrome_trace.hpp"
#include "trace/trace.hpp"

using namespace mpct;
using namespace mpct::service;

// GCC 12 flags the never-constructed MachineClass alternative of the
// Request variant as "maybe uninitialized" when vector::push_back moves
// it (false positive; the variant index guards the access).
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

namespace {

// Async-signal-safe flag; the main loop does the actual export.
volatile std::sig_atomic_t g_dump_trace = 0;

void on_sigusr1(int) { g_dump_trace = 1; }

void maybe_dump_trace() {
  if (!g_dump_trace) return;
  g_dump_trace = 0;
  const trace::TraceSnapshot snap = trace::Tracer::instance().snapshot();
  std::ofstream out("serve_queries_trace.json", std::ios::trunc);
  out << trace::to_chrome_json(snap);
  std::cout << "[serve_queries] dumped " << snap.spans.size()
            << " spans to serve_queries_trace.json\n";
}

std::string describe(const QueryResponse& response) {
  if (!response.ok()) return "ERROR " + response.status.to_string();
  std::string out = response.cache_hit ? "[cached] " : "[computed] ";
  if (const ClassifyResponse* c = response.classify()) {
    out += c->spec.name + " -> ";
    out += c->classification.ok() ? to_string(*c->classification.name)
                                  : ("unclassifiable: " + c->classification.note);
    out += " (flexibility " + std::to_string(c->flexibility.total()) + ")";
  } else if (const RecommendResponse* r = response.recommend()) {
    out += "top classes:";
    for (const auto& rec : r->recommendations) {
      out += " " + to_string(rec.name);
    }
  } else if (const CostResponse* c = response.cost()) {
    out += "cost sweep:";
    for (const auto& point : c->points) {
      char cell[64];
      std::snprintf(cell, sizeof(cell), " n=%lld:%.0fkGE",
                    static_cast<long long>(point.n), point.area.total_kge());
      out += cell;
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  EngineOptions options;
  options.worker_threads =
      argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 4;
  QueryEngine engine(options);

  trace::Tracer::instance().enable();
  std::signal(SIGUSR1, on_sigusr1);

  std::cout << "== serve_queries: " << options.worker_threads
            << " workers, queue capacity " << options.queue_capacity
            << ", cache " << options.cache_shards << "x"
            << options.cache_capacity_per_shard << " ==\n\n";

  // Build the mixed batch.
  std::vector<Request> batch;
  for (int round = 0; round < 2; ++round) {  // second round hits the cache
    for (const arch::ArchitectureSpec& spec : arch::surveyed_architectures()) {
      batch.push_back(ClassifyRequest::of(spec));
    }
  }
  batch.push_back(ClassifyRequest::of_adl(
      "architecture InlineCGRA {\n"
      "  ips = 1\n  dps = 16\n"
      "  ip-dp = \"1-16\"\n  ip-im = \"1-1\"\n"
      "  dp-dm = \"16x16\"\n  dp-dp = \"16x16\"\n}\n"));
  {
    RecommendRequest recommend;
    recommend.requirements.min_flexibility = 4;
    recommend.top_k = 3;
    batch.push_back(recommend);
  }
  {
    // Sweep a canonical class with symbolic counts so the cost actually
    // scales with n (a fixed-size survey row would be flat).
    CostRequest cost;
    cost.target = find_entry(*parse_taxonomic_name("IMP-XVI"))->machine;
    cost.n_sweep = {4, 16, 64};
    batch.push_back(cost);
  }
  // Failure cases: a parse error and an invalid sweep.
  batch.push_back(ClassifyRequest::of_adl("architecture Broken {"));
  {
    CostRequest bad;
    bad.target = MachineClass{};
    bad.n_sweep = {-3};
    batch.push_back(bad);
  }

  const auto deadline = Deadline::in(std::chrono::seconds(10));
  auto futures = engine.submit_batch(std::move(batch), deadline);

  std::cout << "-- responses (" << futures.size() << " requests) --\n";
  std::size_t shown = 0;
  for (auto& future : futures) {
    maybe_dump_trace();
    const QueryResponse response = future.get();
    // The first survey round and the tail requests tell the story; skip
    // the repeat round except for one representative cache hit.
    const bool repeat_round = shown >= 25 && shown < 50;
    if (!repeat_round || shown == 25) {
      std::cout << "  " << describe(response) << "\n";
    }
    ++shown;
  }

  engine.drain();
  maybe_dump_trace();
  std::cout << "\n-- metrics --\n"
            << engine.metrics().to_table(engine.cache_stats()) << "\n";
  return 0;
}
