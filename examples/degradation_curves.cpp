/// Graceful-degradation study of three Table III architectures.
///
/// Sweeps a uniform per-component fault rate from 0 to 40% over
/// MorphoSys (instruction-flow array, IAP-II), REDEFINE (data-flow
/// multiprocessor on a packet-switched 8x8 NoC, DMP-IV) and a generic
/// FPGA (universal flow, USP), Monte-Carlo sampling component failures
/// and reclassifying the surviving fabric at every trial.  Writes one
/// CSV and one SVG line chart (yield / flexibility retention /
/// connectivity) per architecture and prints a summary table.
///
/// Usage: degradation_curves [trials_per_rate] [seed]
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "arch/registry.hpp"
#include "fault/fault.hpp"
#include "report/table.hpp"

int main(int argc, char** argv) {
  using namespace mpct;

  const int trials = argc > 1 ? std::atoi(argv[1]) : 64;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 1;

  struct Subject {
    const char* name;
    int noc_width;   ///< 0 = no NoC overlay
    int noc_height;
    const char* file_stem;
  };
  // MorphoSys' 8x8 RC fabric and REDEFINE's 8x8 NoC bind at n = 64;
  // the FPGA is a LUT fabric, so only v matters.
  const Subject subjects[] = {
      {"MorphoSys", 8, 8, "degradation_morphosys"},
      {"REDEFINE", 8, 8, "degradation_redefine"},
      {"FPGA", 0, 0, "degradation_fpga"},
  };

  std::vector<double> rates;
  for (int i = 0; i <= 20; ++i) rates.push_back(0.02 * i);

  report::TextTable summary({"Architecture", "Class", "Fault rate",
                             "Yield", "Flex retention", "Connectivity"});
  for (std::size_t c = 2; c < 6; ++c)
    summary.set_align(c, report::Align::Right);

  for (const Subject& subject : subjects) {
    const arch::ArchitectureSpec* spec = arch::find_architecture(subject.name);
    if (!spec) {
      std::cerr << "registry is missing " << subject.name << "\n";
      return 1;
    }

    fault::CurveSpec curve;
    curve.machine = spec->machine_class();
    curve.bindings.n = 64;
    curve.bindings.m = 64;
    curve.bindings.v = 256;
    curve.noc_width = subject.noc_width;
    curve.noc_height = subject.noc_height;
    curve.fault_rates = rates;
    curve.trials_per_rate = trials;
    curve.seed = seed;

    const fault::CurveResult result = fault::evaluate_curve(curve);

    const std::string csv_path = std::string(subject.file_stem) + ".csv";
    const std::string svg_path = std::string(subject.file_stem) + ".svg";
    std::ofstream(csv_path) << fault::to_csv(result);
    std::ofstream(svg_path) << fault::to_svg(
        result, std::string(subject.name) + " graceful degradation");
    std::cout << subject.name << ": wrote " << csv_path << " and "
              << svg_path << "\n";

    const Classification cls = spec->classify();
    const std::string class_name = cls.ok() ? to_string(*cls.name) : "?";
    for (std::size_t i = 0; i < result.points.size(); i += 5) {
      const fault::CurvePoint& p = result.points[i];
      char rate[16], yield[16], flex[16], conn[16];
      std::snprintf(rate, sizeof(rate), "%.0f%%", p.fault_rate * 100);
      std::snprintf(yield, sizeof(yield), "%.2f", p.yield);
      std::snprintf(flex, sizeof(flex), "%.2f", p.mean_flexibility);
      std::snprintf(conn, sizeof(conn), "%.2f", p.mean_connectivity);
      summary.add_row({i == 0 ? subject.name : "", i == 0 ? class_name : "",
                       rate, yield, flex, conn});
    }
  }

  std::cout << "\nMonte-Carlo degradation summary (" << trials
            << " trials per rate, seed " << seed << "):\n\n"
            << summary.render_ascii()
            << "\nStructural yield is robust to random attrition — the "
               "survivors keep\nforming a classifiable machine (an array "
               "whose host IP dies degrades\ninto a data-flow "
               "multiprocessor rather than failing) — so connectivity\nis "
               "the first casualty: both packet-switched meshes lose "
               "pairwise\nreachability sharply past ~20% component loss, "
               "while the LUT fabric's\nport survival falls only linearly "
               "with the fault rate.\n";
  return 0;
}
