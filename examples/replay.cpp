/// Recorded-traffic replayer: feed a capture file (net::ServerOptions::
/// capture_path) back into any live server speaking the wire protocol
/// and compare runs by normalized response fingerprint.
///
///   replay <capture> <port> [--host H] [--max-speed] [--save FILE]
///          [--compare FILE] [--loop N] [--duration S] [--self-host]
///
///   --max-speed      ignore recorded arrival gaps (default: honour them)
///   --save FILE      write "id fingerprint" lines for a later --compare
///   --compare FILE   diff this run against a saved fingerprint file;
///                    exit 1 on any mismatch
///   --loop N         soak: replay the capture N times (0 = unbounded,
///                    bounded by --duration); exit 1 if any iteration's
///                    fingerprints drift from the first
///   --duration S     soak: keep looping until S seconds have elapsed
///   --self-host      boot the engine + server in this process (port may
///                    then be 0 for ephemeral) with tracing streamed back
///                    at the same server, and report sim_* / trace_*
///                    metric drift between the first and last iteration
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/net.hpp"
#include "net/trace_stream.hpp"
#include "service/service.hpp"
#include "trace/trace.hpp"

using namespace mpct;

namespace {

int usage() {
  std::cerr << "usage: replay <capture> <port> [--host H] [--max-speed] "
               "[--save FILE] [--compare FILE] [--loop N] [--duration S] "
               "[--self-host]\n";
  return 2;
}

/// The registry counters the soak report tracks across iterations.
struct SoakCounters {
  std::uint64_t sim_runs = 0;
  std::uint64_t sim_cycles = 0;
  std::uint64_t sim_fault_runs = 0;
  std::uint64_t trace_spans_exported = 0;
  std::uint64_t trace_spans_dropped = 0;
  std::uint64_t trace_spans_sampled_out = 0;
  std::uint64_t trace_batches_sent = 0;
  std::uint64_t trace_batches_dropped = 0;
  std::uint64_t trace_collector_batches = 0;
  std::uint64_t trace_collector_spans = 0;
  std::uint64_t qos_shed_background = 0;
  std::uint64_t qos_shed_batch = 0;
  std::uint64_t qos_degraded_responses = 0;
  std::uint64_t qos_cancelled_queued = 0;
  std::uint64_t qos_cancelled_inflight = 0;

  static SoakCounters of(const service::MetricsRegistry& m) {
    SoakCounters c;
    c.sim_runs = m.sim_runs.value();
    c.sim_cycles = m.sim_cycles.value();
    c.sim_fault_runs = m.sim_fault_runs.value();
    c.trace_spans_exported = m.trace_spans_exported.value();
    c.trace_spans_dropped = m.trace_spans_dropped.value();
    c.trace_spans_sampled_out = m.trace_spans_sampled_out.value();
    c.trace_batches_sent = m.trace_batches_sent.value();
    c.trace_batches_dropped = m.trace_batches_dropped.value();
    c.trace_collector_batches = m.trace_collector_batches.value();
    c.trace_collector_spans = m.trace_collector_spans.value();
    c.qos_shed_background = m.qos_shed_background.value();
    c.qos_shed_batch = m.qos_shed_batch.value();
    c.qos_degraded_responses = m.qos_degraded_responses.value();
    c.qos_cancelled_queued = m.qos_cancelled_queued.value();
    c.qos_cancelled_inflight = m.qos_cancelled_inflight.value();
    return c;
  }

  SoakCounters delta(const SoakCounters& since) const {
    SoakCounters d;
    d.sim_runs = sim_runs - since.sim_runs;
    d.sim_cycles = sim_cycles - since.sim_cycles;
    d.sim_fault_runs = sim_fault_runs - since.sim_fault_runs;
    d.trace_spans_exported = trace_spans_exported - since.trace_spans_exported;
    d.trace_spans_dropped = trace_spans_dropped - since.trace_spans_dropped;
    d.trace_spans_sampled_out =
        trace_spans_sampled_out - since.trace_spans_sampled_out;
    d.trace_batches_sent = trace_batches_sent - since.trace_batches_sent;
    d.trace_batches_dropped =
        trace_batches_dropped - since.trace_batches_dropped;
    d.trace_collector_batches =
        trace_collector_batches - since.trace_collector_batches;
    d.trace_collector_spans =
        trace_collector_spans - since.trace_collector_spans;
    d.qos_shed_background = qos_shed_background - since.qos_shed_background;
    d.qos_shed_batch = qos_shed_batch - since.qos_shed_batch;
    d.qos_degraded_responses =
        qos_degraded_responses - since.qos_degraded_responses;
    d.qos_cancelled_queued =
        qos_cancelled_queued - since.qos_cancelled_queued;
    d.qos_cancelled_inflight =
        qos_cancelled_inflight - since.qos_cancelled_inflight;
    return d;
  }
};

void print_drift(const SoakCounters& first, const SoakCounters& last) {
  const auto row = [](const char* name, std::uint64_t a, std::uint64_t b) {
    std::cout << "  " << name << ": first " << a << ", last " << b;
    if (b > a) {
      std::cout << " (+" << b - a << ")";
    } else if (a > b) {
      std::cout << " (-" << a - b << ")";
    }
    std::cout << "\n";
  };
  std::cout << "per-iteration metric drift (first vs last iteration):\n";
  row("sim_runs", first.sim_runs, last.sim_runs);
  row("sim_cycles", first.sim_cycles, last.sim_cycles);
  row("sim_fault_runs", first.sim_fault_runs, last.sim_fault_runs);
  row("trace_spans_exported", first.trace_spans_exported,
      last.trace_spans_exported);
  row("trace_spans_dropped", first.trace_spans_dropped,
      last.trace_spans_dropped);
  row("trace_spans_sampled_out", first.trace_spans_sampled_out,
      last.trace_spans_sampled_out);
  row("trace_batches_sent", first.trace_batches_sent,
      last.trace_batches_sent);
  row("trace_batches_dropped", first.trace_batches_dropped,
      last.trace_batches_dropped);
  row("trace_collector_batches", first.trace_collector_batches,
      last.trace_collector_batches);
  row("trace_collector_spans", first.trace_collector_spans,
      last.trace_collector_spans);
  // A steady-state soak should shed and degrade at a steady rate too:
  // drift here means the replayed load is pushing the engine up or
  // down the QoS ladder over time (see docs/QOS.md).
  row("qos_shed_background", first.qos_shed_background,
      last.qos_shed_background);
  row("qos_shed_batch", first.qos_shed_batch, last.qos_shed_batch);
  row("qos_degraded_responses", first.qos_degraded_responses,
      last.qos_degraded_responses);
  row("qos_cancelled_queued", first.qos_cancelled_queued,
      last.qos_cancelled_queued);
  row("qos_cancelled_inflight", first.qos_cancelled_inflight,
      last.qos_cancelled_inflight);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string capture_path = argv[1];
  net::ReplayOptions options;
  options.port = static_cast<std::uint16_t>(std::atoi(argv[2]));
  std::string save_path;
  std::string compare_path;
  std::size_t loop = 1;
  bool loop_set = false;
  long duration_s = 0;
  bool self_host = false;
  for (int i = 3; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--max-speed") {
      options.max_speed = true;
    } else if (arg == "--host" && i + 1 < argc) {
      options.host = argv[++i];
    } else if (arg == "--save" && i + 1 < argc) {
      save_path = argv[++i];
    } else if (arg == "--compare" && i + 1 < argc) {
      compare_path = argv[++i];
    } else if (arg == "--loop" && i + 1 < argc) {
      loop = static_cast<std::size_t>(std::atoll(argv[++i]));
      loop_set = true;
    } else if (arg == "--duration" && i + 1 < argc) {
      duration_s = std::atol(argv[++i]);
      if (duration_s <= 0) return usage();
      if (!loop_set) loop = 0;  // unbounded; the clock is the limit
    } else if (arg == "--self-host") {
      self_host = true;
    } else {
      return usage();
    }
  }
  if (loop == 0 && duration_s == 0) return usage();
  const bool soak = loop != 1 || duration_s != 0;

  net::CaptureFile capture;
  std::string error;
  if (!net::read_capture(capture_path, capture, error)) {
    std::cerr << "replay: " << error << "\n";
    return 1;
  }

  // --self-host: the replay target lives in this process, so the soak
  // report can read its registry.  The trace streamer points back at
  // the same server — it absorbs SpanBatch frames sink-less, which
  // still exercises export + collector-side counters end to end.
  std::unique_ptr<service::QueryEngine> engine;
  std::unique_ptr<net::Server> server;
  std::unique_ptr<net::TraceStreamer> streamer;
  if (self_host) {
    trace::Tracer::instance().enable();
    service::EngineOptions engine_options;
    engine_options.worker_threads = 2;
    engine = std::make_unique<service::QueryEngine>(engine_options);
    net::ServerOptions server_options;
    server_options.port = options.port;
    server = std::make_unique<net::Server>(*engine, server_options);
    if (!server->start()) {
      std::cerr << "replay: self-host server: " << server->error() << "\n";
      return 1;
    }
    options.host = "127.0.0.1";
    options.port = server->port();
    net::TraceStreamerOptions stream_options;
    stream_options.port = server->port();
    stream_options.node = "replay-soak";
    stream_options.metrics = &engine->metrics();
    streamer = std::make_unique<net::TraceStreamer>(stream_options);
    if (!streamer->start()) {
      std::cerr << "replay: trace streamer: " << streamer->error() << "\n";
    }
  }

  std::cout << capture_path << ": " << capture.records.size()
            << " frames, replaying against " << options.host << ":"
            << options.port
            << (options.max_speed ? " at max speed" : " at recorded pace");
  if (soak) {
    std::cout << " [soak:";
    if (loop != 0) std::cout << " loop=" << loop;
    if (duration_s != 0) std::cout << " duration=" << duration_s << "s";
    std::cout << "]";
  }
  std::cout << "\n";

  const auto soak_start = std::chrono::steady_clock::now();
  const auto expired = [&] {
    return duration_s != 0 &&
           std::chrono::steady_clock::now() - soak_start >=
               std::chrono::seconds(duration_s);
  };

  net::ReplayOutcome first_outcome;
  SoakCounters first_delta, last_delta;
  std::size_t iterations = 0;
  std::size_t drifted = 0;
  while ((loop == 0 || iterations < loop) &&
         (iterations == 0 || !expired())) {
    const SoakCounters before =
        engine ? SoakCounters::of(engine->metrics()) : SoakCounters{};
    const net::ReplayOutcome outcome = net::replay_capture(capture, options);
    if (!outcome.ok()) {
      std::cerr << outcome.error << "\n";
      return 1;
    }
    if (engine) {
      // Let the streamer complete a couple of export ticks so the
      // iteration's trace counters land before the snapshot.
      std::this_thread::sleep_for(std::chrono::milliseconds(120));
      last_delta = SoakCounters::of(engine->metrics()).delta(before);
    }
    if (iterations == 0) {
      first_outcome = outcome;
      first_delta = last_delta;
    } else if (outcome.fingerprints != first_outcome.fingerprints) {
      std::cerr << "iteration " << iterations
                << ": fingerprints drifted from iteration 0\n";
      ++drifted;
    }
    ++iterations;
  }
  const net::ReplayOutcome& outcome = first_outcome;
  std::cout << "sent " << outcome.sent << ", answered " << outcome.answered;
  if (soak) std::cout << " per iteration, " << iterations << " iterations";
  std::cout << "\n";

  if (soak && engine) print_drift(first_delta, last_delta);

  if (streamer) streamer->stop();
  if (server) server->stop();

  if (!save_path.empty()) {
    std::ofstream out(save_path);
    for (const auto& [id, print] : outcome.fingerprints) {
      out << id << " " << print << "\n";
    }
    std::cout << "fingerprints saved to " << save_path << "\n";
  }

  if (!compare_path.empty()) {
    std::ifstream in(compare_path);
    if (!in) {
      std::cerr << "replay: cannot read " << compare_path << "\n";
      return 1;
    }
    std::map<std::uint64_t, std::uint64_t> expected;
    std::uint64_t id = 0;
    std::uint64_t print = 0;
    while (in >> id >> print) expected[id] = print;
    std::size_t mismatches = 0;
    for (const auto& [got_id, got_print] : outcome.fingerprints) {
      const auto it = expected.find(got_id);
      if (it == expected.end() || it->second != got_print) {
        std::cerr << "mismatch: id " << got_id << "\n";
        ++mismatches;
      }
    }
    if (outcome.fingerprints.size() != expected.size()) {
      std::cerr << "count differs: got " << outcome.fingerprints.size()
                << ", expected " << expected.size() << "\n";
      ++mismatches;
    }
    if (mismatches > 0) return 1;
    std::cout << "all " << outcome.fingerprints.size()
              << " fingerprints match " << compare_path << "\n";
  }
  return drifted == 0 ? 0 : 1;
}
