/// Recorded-traffic replayer: feed a capture file (net::ServerOptions::
/// capture_path) back into any live server speaking the wire protocol
/// and compare runs by normalized response fingerprint.
///
///   replay <capture> <port> [--host H] [--max-speed] [--save FILE]
///          [--compare FILE]
///
///   --max-speed      ignore recorded arrival gaps (default: honour them)
///   --save FILE      write "id fingerprint" lines for a later --compare
///   --compare FILE   diff this run against a saved fingerprint file;
///                    exit 1 on any mismatch
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "net/net.hpp"

using namespace mpct;

namespace {

int usage() {
  std::cerr << "usage: replay <capture> <port> [--host H] [--max-speed] "
               "[--save FILE] [--compare FILE]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string capture_path = argv[1];
  net::ReplayOptions options;
  options.port = static_cast<std::uint16_t>(std::atoi(argv[2]));
  std::string save_path;
  std::string compare_path;
  for (int i = 3; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--max-speed") {
      options.max_speed = true;
    } else if (arg == "--host" && i + 1 < argc) {
      options.host = argv[++i];
    } else if (arg == "--save" && i + 1 < argc) {
      save_path = argv[++i];
    } else if (arg == "--compare" && i + 1 < argc) {
      compare_path = argv[++i];
    } else {
      return usage();
    }
  }

  net::CaptureFile capture;
  std::string error;
  if (!net::read_capture(capture_path, capture, error)) {
    std::cerr << "replay: " << error << "\n";
    return 1;
  }
  std::cout << capture_path << ": " << capture.records.size()
            << " frames, replaying against " << options.host << ":"
            << options.port
            << (options.max_speed ? " at max speed" : " at recorded pace")
            << "\n";

  const net::ReplayOutcome outcome = net::replay_capture(capture, options);
  if (!outcome.ok()) {
    std::cerr << outcome.error << "\n";
    return 1;
  }
  std::cout << "sent " << outcome.sent << ", answered " << outcome.answered
            << "\n";

  if (!save_path.empty()) {
    std::ofstream out(save_path);
    for (const auto& [id, print] : outcome.fingerprints) {
      out << id << " " << print << "\n";
    }
    std::cout << "fingerprints saved to " << save_path << "\n";
  }

  if (!compare_path.empty()) {
    std::ifstream in(compare_path);
    if (!in) {
      std::cerr << "replay: cannot read " << compare_path << "\n";
      return 1;
    }
    std::map<std::uint64_t, std::uint64_t> expected;
    std::uint64_t id = 0;
    std::uint64_t print = 0;
    while (in >> id >> print) expected[id] = print;
    std::size_t mismatches = 0;
    for (const auto& [got_id, got_print] : outcome.fingerprints) {
      const auto it = expected.find(got_id);
      if (it == expected.end() || it->second != got_print) {
        std::cerr << "mismatch: id " << got_id << "\n";
        ++mismatches;
      }
    }
    if (outcome.fingerprints.size() != expected.size()) {
      std::cerr << "count differs: got " << outcome.fingerprints.size()
                << ", expected " << expected.size() << "\n";
      ++mismatches;
    }
    if (mismatches > 0) return 1;
    std::cout << "all " << outcome.fingerprints.size()
              << " fingerprints match " << compare_path << "\n";
  }
  return 0;
}
