/// Microbenchmarks of the classification engine: classify, naming,
/// parsing, comparison, morph ordering, ADL round-trips.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"

#include <iostream>

#include "arch/adl_parser.hpp"
#include "arch/registry.hpp"
#include "core/comparison.hpp"
#include "core/taxonomy_index.hpp"
#include "core/taxonomy_table.hpp"

namespace {

using namespace mpct;

void bm_classify_single(benchmark::State& state) {
  const TaxonomyEntry* row = find_entry(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    Classification result = classify(row->machine);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(bm_classify_single)->Arg(1)->Arg(8)->Arg(22)->Arg(40)->Arg(47);

/// The realistic single-point operation a sweep performs per candidate:
/// structure -> classification + rendered name + flexibility score.
/// Through TaxonomyIndex this is one table load plus two field reads
/// (interned name, cached score) — no rule walk, no allocation.  The
/// per-iteration MachineClass copy stops the compiler from hoisting the
/// lookup out of the loop.
void bm_classify_single_point(benchmark::State& state) {
  const TaxonomyIndex& index = taxonomy_index();
  const TaxonomyIndex::ClassInfo* row =
      index.by_serial(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    MachineClass mc = row->machine;
    benchmark::DoNotOptimize(mc);
    const TaxonomyIndex::FastClassification fast = index.classify(mc);
    std::string_view name = fast.info ? fast.info->interned_name : fast.note;
    const int flexibility = fast.info ? fast.info->flexibility : -1;
    benchmark::DoNotOptimize(name);
    benchmark::DoNotOptimize(flexibility);
  }
}
BENCHMARK(bm_classify_single_point)->Arg(1)->Arg(8)->Arg(22)->Arg(40)->Arg(47);

void bm_name_to_string(benchmark::State& state) {
  std::vector<TaxonomicName> names;
  for (const TaxonomyEntry& row : extended_taxonomy()) {
    if (row.name) names.push_back(*row.name);
  }
  for (auto _ : state) {
    for (const TaxonomicName& name : names) {
      std::string text = to_string(name);
      benchmark::DoNotOptimize(text);
    }
  }
}
BENCHMARK(bm_name_to_string);

void bm_name_parse(benchmark::State& state) {
  std::vector<std::string> texts;
  for (const TaxonomyEntry& row : extended_taxonomy()) {
    if (row.name) texts.push_back(to_string(*row.name));
  }
  for (auto _ : state) {
    for (const std::string& text : texts) {
      auto parsed = parse_taxonomic_name(text);
      benchmark::DoNotOptimize(parsed);
    }
  }
}
BENCHMARK(bm_name_parse);

void bm_compare_all_pairs(benchmark::State& state) {
  std::vector<TaxonomicName> names;
  for (const TaxonomyEntry& row : extended_taxonomy()) {
    if (row.name) names.push_back(*row.name);
  }
  for (auto _ : state) {
    int levels = 0;
    for (const TaxonomicName& a : names) {
      for (const TaxonomicName& b : names) {
        levels += compare(a, b).similarity_level();
      }
    }
    benchmark::DoNotOptimize(levels);
  }
}
BENCHMARK(bm_compare_all_pairs);

void bm_morph_matrix(benchmark::State& state) {
  std::vector<TaxonomicName> names;
  for (const TaxonomyEntry& row : extended_taxonomy()) {
    if (row.name) names.push_back(*row.name);
  }
  for (auto _ : state) {
    int edges = 0;
    for (const TaxonomicName& a : names) {
      for (const TaxonomicName& b : names) {
        if (can_morph_into(a, b)) ++edges;
      }
    }
    benchmark::DoNotOptimize(edges);
  }
}
BENCHMARK(bm_morph_matrix);

void bm_adl_roundtrip_survey(benchmark::State& state) {
  std::string document;
  for (const arch::ArchitectureSpec& spec :
       arch::surveyed_architectures()) {
    document += to_adl(spec);
    document += "\n";
  }
  for (auto _ : state) {
    arch::ParseResult result = arch::parse_adl(document);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(bm_adl_roundtrip_survey);

}  // namespace

int main(int argc, char** argv) {
  std::cout << "CLASSIFICATION ENGINE MICROBENCHMARKS\n"
            << "(47-class table, 25-row survey, all-pairs comparisons)\n\n";
  mpct::bench::apply_csv_flag(&argc, argv);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
