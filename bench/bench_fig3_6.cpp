/// Regenerates Figures 3-6 — the machine organisations the paper
/// illustrates (data-flow sub-types, array-processor sub-types,
/// instruction-flow spatial processors, universal-flow spatial
/// processors) — as *executable* demonstrations rather than drawings,
/// and benchmarks each paradigm machine.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"

#include <iostream>

#include "core/roman.hpp"
#include "core/taxonomy_table.hpp"
#include "sim/dataflow/token_machine.hpp"
#include "sim/isa/assembler.hpp"
#include "sim/mimd/multiprocessor.hpp"
#include "sim/morph.hpp"
#include "sim/simd/array_processor.hpp"
#include "sim/spatial/mapper.hpp"

namespace {

using namespace mpct;
using namespace mpct::sim;

// ---------------------------------------------------------------- Fig 3

df::Graph make_chain(int length) {
  df::Graph g;
  df::NodeId prev = g.add_input("x");
  for (int i = 0; i < length; ++i) {
    prev = g.add_op(df::Op::Add, prev, g.add_const(1));
  }
  g.add_output("r", prev);
  return g;
}

df::Graph make_wide(int chains) {
  df::Graph g;
  for (int i = 0; i < chains; ++i) {
    const df::NodeId a = g.add_input("a" + std::to_string(i));
    const df::NodeId b = g.add_input("b" + std::to_string(i));
    g.add_output("o" + std::to_string(i), g.add_op(df::Op::Mul, a, b));
  }
  return g;
}

void print_fig3() {
  std::cout << "FIGURE 3: DATA FLOW MACHINE WITH SUB-TYPES (executable)\n"
            << "workload A: one connected 24-node chain; workload B: 8 "
               "independent chains.\n"
            << "4 PEs; makespan in cycles per DMP sub-type:\n\n";
  const df::Graph chain = make_chain(24);
  const df::Graph wide = make_wide(8);
  std::vector<std::pair<std::string, Word>> wide_inputs;
  for (int i = 0; i < 8; ++i) {
    wide_inputs.emplace_back("a" + std::to_string(i), i);
    wide_inputs.emplace_back("b" + std::to_string(i), 3);
  }
  std::cout << "  sub-type   connected-chain   independent-chains\n";
  for (int subtype = 1; subtype <= 4; ++subtype) {
    const auto config = df::TokenMachineConfig::for_subtype(subtype, 4);
    df::TokenMachine machine_a(chain, config);
    df::TokenMachine machine_b(wide, config);
    std::cout << "  DMP-" << to_roman(subtype) << "\t\t"
              << machine_a.run({{"x", 0}}).stats.cycles << "\t\t"
              << machine_b.run(wide_inputs).stats.cycles << "\n";
  }
  df::TokenMachine dup(chain, df::TokenMachineConfig::uniprocessor());
  std::cout << "  DUP\t\t" << dup.run({{"x", 0}}).stats.cycles
            << "\t\t(single PE reference)\n\n";
}

// ---------------------------------------------------------------- Fig 4

void print_fig4() {
  std::cout << "FIGURE 4: ARRAY PROCESSOR WITH SUB-TYPES (executable)\n"
            << "8 lanes; which kernels each IAP sub-type can run:\n\n";
  const Program affine = assemble_or_throw(R"(
    lane r1
    ldi r2, 3
    mul r3, r1, r2
    out r3
    halt
  )");
  const Program shuffle = assemble_or_throw(R"(
    lane r1
    addi r2, r1, 1
    shuf r3, r1, r2
    out r3
    halt
  )");
  std::cout << "  sub-type  affine-kernel  lane-shuffle-kernel\n";
  for (int subtype = 1; subtype <= 4; ++subtype) {
    std::cout << "  IAP-" << to_roman(subtype) << "\tok\t\t";
    try {
      ArrayProcessor iap(shuffle,
                         ArrayProcessorConfig::for_subtype(subtype, 8, 64));
      iap.run();
      std::cout << "ok (DP-DP crossbar present)";
    } catch (const SimError&) {
      std::cout << "traps (no DP-DP switch)";
    }
    ArrayProcessor check(affine,
                         ArrayProcessorConfig::for_subtype(subtype, 8, 64));
    check.run();
    std::cout << "\n";
  }
  std::cout << "\n";
}

// ---------------------------------------------------------------- Fig 5

void print_fig5() {
  std::cout << "FIGURE 5: INSTRUCTION FLOW SPATIAL/MULTI PROCESSORS "
               "(executable)\n"
            << "morphing experiments backing Section III-B's flexibility "
               "ordering:\n\n";
  for (const MorphDemo& demo : all_morph_demos(4)) {
    std::cout << "  [" << to_string(demo.from) << " -> "
              << to_string(demo.to) << "] "
              << (demo.succeeded ? "MORPHS" : "CANNOT MORPH") << "\n    "
              << demo.description << "\n    " << demo.detail << "\n";
  }
  std::cout << "\n";
}

// ---------------------------------------------------------------- Fig 6

void print_fig6() {
  std::cout << "FIGURE 6: UNIVERSAL FLOW SPATIAL PROCESSOR (executable)\n"
            << "one 64-cell LUT fabric, reconfigured across paradigms:\n\n";
  spatial::LutFabric fabric(64, 16, 8);

  const spatial::Netlist adder = spatial::build_ripple_adder(4);
  const auto adder_map = spatial::map_netlist(adder, fabric);
  std::vector<std::pair<std::string, bool>> inputs;
  const unsigned a = 11, b = 5;
  for (int i = 0; i < 4; ++i) {
    inputs.emplace_back("a" + std::to_string(i), (a >> i) & 1u);
    inputs.emplace_back("b" + std::to_string(i), (b >> i) & 1u);
  }
  inputs.emplace_back("cin", false);
  const auto sum_bits = fabric.step(
      spatial::pack_inputs(adder_map, fabric.primary_inputs(), inputs));
  unsigned sum = 0;
  for (int i = 0; i < 4; ++i) {
    if (sum_bits[static_cast<std::size_t>(
            adder_map.output_index.at("s" + std::to_string(i)))]) {
      sum |= 1u << i;
    }
  }
  if (sum_bits[static_cast<std::size_t>(adder_map.output_index.at("cout"))]) {
    sum |= 1u << 4;
  }
  std::cout << "  personality 1 (data flow): 4-bit ripple adder, " << a
            << " + " << b << " = " << sum << " (cells used: "
            << adder_map.cells_used << ")\n";

  const spatial::Netlist counter = spatial::build_counter(3);
  const auto counter_map = spatial::map_netlist(counter, fabric);
  std::cout << "  personality 2 (instruction flow): 3-bit counter FSM: ";
  for (int cycle = 0; cycle < 6; ++cycle) {
    const auto out = fabric.step(spatial::pack_inputs(
        counter_map, fabric.primary_inputs(), {{"en", true}}));
    unsigned value = 0;
    for (int bit = 0; bit < 3; ++bit) {
      if (out[static_cast<std::size_t>(
              counter_map.output_index.at("q" + std::to_string(bit)))]) {
        value |= 1u << bit;
      }
    }
    std::cout << value << ' ';
  }
  std::cout << "(cells used: " << counter_map.cells_used << ")\n";
  std::cout << "  fabric configuration size: " << fabric.config_bits()
            << " bits — the overhead flexibility costs (Section III-B)\n\n";
}

// ----------------------------------------------------------- benchmarks

void bm_dmp_subtype(benchmark::State& state) {
  const df::Graph chain = make_chain(24);
  const auto config = df::TokenMachineConfig::for_subtype(
      static_cast<int>(state.range(0)), 4);
  df::TokenMachine machine(chain, config);
  for (auto _ : state) {
    auto result = machine.run({{"x", 0}});
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(bm_dmp_subtype)->DenseRange(1, 4);

void bm_iap_lanes(benchmark::State& state) {
  const Program affine = assemble_or_throw(R"(
    lane r1
    ldi r2, 3
    mul r3, r1, r2
    out r3
    halt
  )");
  for (auto _ : state) {
    ArrayProcessor iap(affine,
                       ArrayProcessorConfig::for_subtype(
                           1, static_cast<int>(state.range(0)), 64));
    auto stats = iap.run();
    benchmark::DoNotOptimize(stats);
  }
}
BENCHMARK(bm_iap_lanes)->RangeMultiplier(4)->Range(4, 64);

void bm_fabric_reconfigure(benchmark::State& state) {
  spatial::LutFabric fabric(64, 16, 8);
  const spatial::Netlist adder = spatial::build_ripple_adder(4);
  const spatial::Netlist counter = spatial::build_counter(3);
  for (auto _ : state) {
    auto m1 = spatial::map_netlist(adder, fabric);
    auto m2 = spatial::map_netlist(counter, fabric);
    benchmark::DoNotOptimize(m1);
    benchmark::DoNotOptimize(m2);
  }
}
BENCHMARK(bm_fabric_reconfigure);

}  // namespace

int main(int argc, char** argv) {
  print_fig3();
  print_fig4();
  print_fig5();
  print_fig6();
  mpct::bench::apply_csv_flag(&argc, argv);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
