/// Cluster-tier benchmarks: proxy throughput vs fleet size, and the
/// cost of losing a server mid-run.
///
/// Artifact: a CSV matrix (requests/s, p99 round-trip latency and
/// failed-request count) measured through a live cluster::CombiningProxy
/// fronting 1 / 2 / 4 single-process backends, plus a degraded cell
/// where one of four backends is killed mid-run — health-driven
/// failover means its failed count must stay 0.  The workload is a
/// seeded mix of classifies (consistent-hash routed, cache-affine) and
/// design sweeps (scattered into chunks across the fleet and merged
/// bit-identically), driven by fixed-work closed-loop client threads.
///
/// Flags (both stripped before benchmark::Initialize):
///   --csv <path>    also write google-benchmark timings as CSV
///   --json <path>   write the matrix as BENCH_cluster JSON
#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <random>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "arch/registry.hpp"
#include "bench_util.hpp"
#include "cluster/cluster.hpp"
#include "net/net.hpp"
#include "report/csv.hpp"
#include "service/service.hpp"

namespace {

using namespace mpct;

struct CellResult {
  std::string label;
  std::size_t backends = 0;
  double req_per_s = 0;
  double p99_us = 0;
  std::size_t failed = 0;
};

/// Seeded workload mix: mostly classifies (distinct ring keys), every
/// eighth request a small design sweep the proxy scatters.
service::Request workload_request(std::mt19937_64& rng) {
  if (rng() % 8 == 0) {
    service::SweepRequest sweep;
    sweep.grid.base.min_flexibility = 1 + static_cast<int>(rng() % 3);
    sweep.grid.n_values = {4, 16};
    sweep.grid.lut_budgets = {256, 1024};
    return sweep;
  }
  const auto& survey = arch::surveyed_architectures();
  return service::ClassifyRequest::of(survey[rng() % survey.size()]);
}

/// One process-local fleet behind a proxy.
struct Fleet {
  std::vector<std::unique_ptr<service::QueryEngine>> engines;
  std::vector<std::unique_ptr<net::Server>> servers;
  std::unique_ptr<cluster::CombiningProxy> proxy;

  explicit Fleet(std::size_t backends) {
    std::vector<cluster::Endpoint> endpoints;
    for (std::size_t i = 0; i < backends; ++i) {
      service::EngineOptions engine_options;
      engine_options.worker_threads = 2;
      engines.push_back(std::make_unique<service::QueryEngine>(engine_options));
      servers.push_back(std::make_unique<net::Server>(*engines.back()));
      if (!servers.back()->start()) {
        std::cerr << "bench_cluster: backend: " << servers.back()->error()
                  << "\n";
        std::exit(1);
      }
      endpoints.push_back({"127.0.0.1", servers.back()->port()});
    }
    cluster::ProxyOptions options;
    options.cluster.endpoints = endpoints;
    options.cluster.health.down_after = 1;
    options.cluster.pinger.interval = std::chrono::milliseconds(50);
    proxy = std::make_unique<cluster::CombiningProxy>(options);
    if (!proxy->start()) {
      std::cerr << "bench_cluster: proxy: " << proxy->error() << "\n";
      std::exit(1);
    }
  }

  ~Fleet() {
    proxy->stop();
    for (auto& server : servers) server->stop();
  }
};

/// Fixed-work closed loop: @p connections client threads each push
/// per_client seeded requests through the proxy.  When @p kill_one,
/// the last backend dies once a quarter of the work is done.
CellResult run_cell(std::string label, std::size_t backends, int connections,
                    int per_client, bool kill_one) {
  Fleet fleet(backends);

  {  // Warm backend caches and TCP paths so the cell measures steady state.
    net::ClientOptions options;
    options.port = fleet.proxy->port();
    net::Client warm(options);
    std::mt19937_64 rng(1);
    for (int i = 0; i < 64; ++i) {
      if (!warm.call(workload_request(rng)).ok()) {
        std::cerr << "bench_cluster: warmup request failed\n";
        std::exit(1);
      }
    }
  }

  std::vector<std::vector<double>> latencies_us(
      static_cast<std::size_t>(connections));
  std::atomic<std::size_t> failed{0};
  std::atomic<int> done{0};
  const int kill_at = connections * per_client / 4;

  std::vector<std::thread> clients;
  clients.reserve(static_cast<std::size_t>(connections));
  const auto start = std::chrono::steady_clock::now();
  for (int c = 0; c < connections; ++c) {
    clients.emplace_back([&, c] {
      net::ClientOptions options;
      options.port = fleet.proxy->port();
      net::Client client(options);
      std::mt19937_64 rng(static_cast<std::uint64_t>(100 + c));
      auto& samples = latencies_us[static_cast<std::size_t>(c)];
      samples.reserve(static_cast<std::size_t>(per_client));
      for (int i = 0; i < per_client; ++i) {
        if (kill_one && done.fetch_add(1, std::memory_order_relaxed) == kill_at)
          fleet.servers.back()->stop();
        const auto t0 = std::chrono::steady_clock::now();
        const service::QueryResponse response =
            client.call(workload_request(rng));
        samples.push_back(std::chrono::duration<double, std::micro>(
                              std::chrono::steady_clock::now() - t0)
                              .count());
        if (!response.ok()) failed.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (std::thread& t : clients) t.join();
  const double elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  std::vector<double> all;
  for (const auto& samples : latencies_us)
    all.insert(all.end(), samples.begin(), samples.end());
  std::sort(all.begin(), all.end());

  CellResult cell;
  cell.label = std::move(label);
  cell.backends = backends;
  cell.req_per_s = static_cast<double>(all.size()) / elapsed_s;
  cell.p99_us = all.empty() ? 0 : all[all.size() * 99 / 100];
  cell.failed = failed.load();
  return cell;
}

std::string fmt(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.4g", value);
  return buffer;
}

std::vector<CellResult> run_matrix() {
  std::vector<CellResult> cells;
  for (std::size_t backends : {1u, 2u, 4u}) {
    cells.push_back(run_cell("fleet_" + std::to_string(backends), backends,
                             /*connections=*/4, /*per_client=*/256,
                             /*kill_one=*/false));
  }
  cells.push_back(run_cell("fleet_4_kill1", 4, /*connections=*/4,
                           /*per_client=*/256, /*kill_one=*/true));
  return cells;
}

void print_artifact(const std::vector<CellResult>& cells,
                    const std::string& json_path) {
  report::CsvWriter csv;
  csv.add_row({"cell", "backends", "req_per_s", "p99_us", "failed"});
  for (const CellResult& cell : cells) {
    csv.add_row({cell.label, std::to_string(cell.backends),
                 fmt(cell.req_per_s), fmt(cell.p99_us),
                 std::to_string(cell.failed)});
  }
  std::cout << "# proxy throughput vs fleet size (4 closed-loop clients, "
               "classify/sweep mix; kill1 = one of four backends dies "
               "mid-run and failed must stay 0)\n"
            << csv.str() << "\n";

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << "{\n"
        << "  \"bench\": \"bench_cluster\",\n"
        << "  \"host_cpus\": " << std::thread::hardware_concurrency() << ",\n"
        << "  \"op\": \"mixed classify/sweep round trips through a "
           "combining proxy (req/s, p99 us and failed count per fleet "
           "cell; kill1 loses one of four backends mid-run)\",\n"
        << "  \"current\": {\n";
    for (std::size_t i = 0; i < cells.size(); ++i) {
      const CellResult& cell = cells[i];
      out << "    \"req_per_s_" << cell.label << "\": " << fmt(cell.req_per_s)
          << ",\n"
          << "    \"p99_us_" << cell.label << "\": " << fmt(cell.p99_us)
          << ",\n"
          << "    \"failed_" << cell.label << "\": " << cell.failed
          << (i + 1 < cells.size() ? ",\n" : "\n");
    }
    out << "  }\n}\n";
    std::cout << "JSON written to " << json_path << "\n\n";
  }
}

// ---------------------------------------------------------------------------
// Registered microbenchmarks: the routing-layer pieces alone.

void bm_ring_owner(benchmark::State& state) {
  std::vector<cluster::Endpoint> endpoints;
  for (std::uint16_t i = 0; i < 8; ++i) endpoints.push_back({"10.0.0.1", i});
  cluster::HashRing ring(endpoints, 64);
  const service::Fingerprint key = service::fingerprint(
      service::ClassifyRequest::of(arch::surveyed_architectures().front()));
  for (auto _ : state) {
    std::size_t owner = ring.owner(key);
    benchmark::DoNotOptimize(owner);
  }
}
BENCHMARK(bm_ring_owner);

void bm_cluster_round_trip(benchmark::State& state) {
  service::EngineOptions engine_options;
  engine_options.worker_threads = 2;
  service::QueryEngine engine(engine_options);
  net::Server server(engine);
  if (!server.start()) {
    state.SkipWithError(server.error().c_str());
    return;
  }
  cluster::ClusterOptions options;
  options.endpoints = {{"127.0.0.1", server.port()}};
  cluster::ClusterClient client(options);
  const service::Request request =
      service::ClassifyRequest::of(arch::surveyed_architectures().front());
  for (auto _ : state) {
    service::QueryResponse response = client.call(request);
    benchmark::DoNotOptimize(response);
  }
  server.stop();
}
BENCHMARK(bm_cluster_round_trip)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  // Strip --json before benchmark::Initialize (it aborts on unknown
  // flags); --csv is handled by apply_csv_flag below.
  std::string json_path;
  for (int i = 1; i + 1 < argc;) {
    if (std::string_view(argv[i]) != "--json") {
      ++i;
      continue;
    }
    json_path = argv[i + 1];
    for (int j = i; j + 2 < argc; ++j) argv[j] = argv[j + 2];
    argc -= 2;
  }
  std::cout << "CLUSTER BENCHMARKS\n"
            << "(loopback fleets behind a live cluster::CombiningProxy; "
               "every number includes sockets + wire codec + routing + "
               "scatter/merge + engine)\n\n";
  print_artifact(run_matrix(), json_path);
  mpct::bench::apply_csv_flag(&argc, argv);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
