/// Service-layer benchmarks: classify-query throughput and tail latency
/// of the concurrent QueryEngine vs worker-thread count (1/2/4/8) and vs
/// cache hit ratio (0%, 50%, 95%).
///
/// Like every bench binary, the regenerated artifact prints first — here
/// a CSV sweep (threads x hit-ratio -> qps, p50, p95, p99) emitted via
/// report::CsvWriter — followed by google-benchmark timings.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "arch/registry.hpp"
#include "report/csv.hpp"
#include "service/service.hpp"

namespace {

using namespace mpct;
using namespace mpct::service;

/// Monotonic source of never-seen-before specs, so a "miss" request can
/// never accidentally hit an earlier iteration's cache entry.
std::atomic<std::uint64_t> unique_counter{0};

arch::ArchitectureSpec unique_spec() {
  arch::ArchitectureSpec spec = arch::surveyed_architectures()[2];
  spec.name += "#" + std::to_string(unique_counter.fetch_add(1));
  return spec;
}

// GCC 12 flags the never-constructed MachineClass alternative of the
// Request variant as "maybe uninitialized" when vector::push_back moves
// it (false positive; the variant index guards the access).
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

/// A request stream with ~hit_pct% repeats of the 25 surveyed specs
/// (cache hits once warmed) and the rest unique specs (always misses).
std::vector<Request> make_stream(std::size_t count, int hit_pct) {
  const auto surveyed = arch::surveyed_architectures();
  std::vector<Request> requests;
  requests.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const bool hit = static_cast<int>((i * 100) / count) <
                     hit_pct;  // deterministic interleave
    if (hit) {
      requests.push_back(ClassifyRequest::of(surveyed[i % surveyed.size()]));
    } else {
      requests.push_back(ClassifyRequest::of(unique_spec()));
    }
  }
  return requests;
}

EngineOptions engine_options(unsigned threads) {
  EngineOptions options;
  options.worker_threads = threads;
  options.queue_capacity = 16384;
  options.cache_shards = 16;
  options.cache_capacity_per_shard = 256;
  return options;
}

void warm_cache(QueryEngine& engine) {
  std::vector<Request> warmup;
  for (const arch::ArchitectureSpec& spec : arch::surveyed_architectures()) {
    warmup.push_back(ClassifyRequest::of(spec));
  }
  for (auto& future : engine.submit_batch(std::move(warmup))) future.get();
}

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

/// The printed artifact: one timed sweep per (threads, hit ratio) cell.
void print_sweep_csv() {
  constexpr std::size_t kRequests = 2000;
  report::CsvWriter csv;
  csv.add_row({"workers", "hit_pct", "requests", "qps", "p50_us", "p95_us",
               "p99_us", "cache_hit_rate"});

  for (unsigned threads : {1u, 2u, 4u, 8u}) {
    for (int hit_pct : {0, 50, 95}) {
      QueryEngine engine(engine_options(threads));
      warm_cache(engine);
      std::vector<Request> stream = make_stream(kRequests, hit_pct);

      const auto start = std::chrono::steady_clock::now();
      auto futures = engine.submit_batch(std::move(stream));
      for (auto& future : futures) future.get();
      const auto elapsed = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - start)
                               .count();

      const auto snap =
          engine.metrics().latency(RequestType::Classify).snapshot();
      char qps[32], rate[32], p50[32], p95[32], p99[32];
      std::snprintf(qps, sizeof(qps), "%.0f",
                    static_cast<double>(kRequests) / elapsed);
      std::snprintf(rate, sizeof(rate), "%.3f",
                    engine.metrics().cache_hit_rate());
      std::snprintf(p50, sizeof(p50), "%.1f", snap.p50_us);
      std::snprintf(p95, sizeof(p95), "%.1f", snap.p95_us);
      std::snprintf(p99, sizeof(p99), "%.1f", snap.p99_us);
      csv.add_row({std::to_string(threads), std::to_string(hit_pct),
                   std::to_string(kRequests), qps, p50, p95, p99, rate});
    }
  }
  std::cout << "# service sweep: classify throughput / latency\n"
            << csv.str() << "\n";
}

/// Throughput: batched classify queries; range(0) = workers,
/// range(1) = cache hit percentage.
void bm_classify_qps(benchmark::State& state) {
  const auto threads = static_cast<unsigned>(state.range(0));
  const int hit_pct = static_cast<int>(state.range(1));
  constexpr std::size_t kBatch = 500;

  QueryEngine engine(engine_options(threads));
  warm_cache(engine);

  for (auto _ : state) {
    state.PauseTiming();
    std::vector<Request> stream = make_stream(kBatch, hit_pct);
    state.ResumeTiming();
    auto futures = engine.submit_batch(std::move(stream));
    for (auto& future : futures) {
      QueryResponse response = future.get();
      benchmark::DoNotOptimize(response);
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kBatch));
  state.counters["cache_hit_rate"] = engine.metrics().cache_hit_rate();
  state.counters["p99_us"] =
      engine.metrics().latency(RequestType::Classify).quantile_us(0.99);
}
BENCHMARK(bm_classify_qps)
    ->ArgNames({"workers", "hit_pct"})
    ->ArgsProduct({{1, 2, 4, 8}, {0, 50, 95}})
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

/// Single-request end-to-end latency through the queue (uncached).
void bm_single_query_latency(benchmark::State& state) {
  QueryEngine engine(engine_options(static_cast<unsigned>(state.range(0))));
  for (auto _ : state) {
    QueryResponse response = engine.submit(ClassifyRequest::of(unique_spec())).get();
    benchmark::DoNotOptimize(response);
  }
}
BENCHMARK(bm_single_query_latency)
    ->ArgName("workers")
    ->Arg(1)
    ->Arg(4)
    ->UseRealTime();

/// Inline (single-threaded fallback) execution, cached vs uncached — the
/// cache's raw win independent of threading.
void bm_inline_execute(benchmark::State& state) {
  const bool cached = state.range(0) != 0;
  EngineOptions options;
  options.worker_threads = 0;
  options.enable_cache = cached;
  QueryEngine engine(options);
  const Request request =
      ClassifyRequest::of(arch::surveyed_architectures()[2]);
  engine.execute(request);  // warm
  for (auto _ : state) {
    QueryResponse response = engine.execute(request);
    benchmark::DoNotOptimize(response);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(bm_inline_execute)->ArgName("cached")->Arg(0)->Arg(1);

/// Recommend + cost sweeps through the engine, the two heavier request
/// types, single worker so numbers are comparable across machines.
void bm_recommend_query(benchmark::State& state) {
  QueryEngine engine(engine_options(1));
  for (auto _ : state) {
    RecommendRequest request;
    request.requirements.min_flexibility =
        static_cast<int>(unique_counter.fetch_add(1) % 9);
    QueryResponse response = engine.submit(Request(request)).get();
    benchmark::DoNotOptimize(response);
  }
}
BENCHMARK(bm_recommend_query)->UseRealTime();

void bm_cost_sweep_query(benchmark::State& state) {
  QueryEngine engine(engine_options(1));
  for (auto _ : state) {
    CostRequest request;
    request.target = arch::surveyed_architectures()
        [unique_counter.fetch_add(1) % arch::surveyed_count()];
    request.n_sweep = {4, 8, 16, 32, 64};
    QueryResponse response = engine.submit(Request(request)).get();
    benchmark::DoNotOptimize(response);
  }
}
BENCHMARK(bm_cost_sweep_query)->UseRealTime();

}  // namespace

int main(int argc, char** argv) {
  std::cout << "SERVICE LAYER BENCHMARKS\n"
            << "(concurrent query engine: batching, sharded cache, "
               "backpressure)\n\n";
  print_sweep_csv();
  mpct::bench::apply_csv_flag(&argc, argv);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
