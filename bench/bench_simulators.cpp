/// Microbenchmarks of the paradigm simulators: instructions/second for
/// the instruction-flow machines, firings/second for the dataflow
/// machines, steps/second for the LUT fabric.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"

#include <iostream>

#include "sim/cgra/scheduler.hpp"
#include "sim/dataflow/expr_parser.hpp"
#include "sim/dataflow/token_machine.hpp"
#include "sim/isa/assembler.hpp"
#include "sim/isa/uniprocessor.hpp"
#include "sim/mimd/multiprocessor.hpp"
#include "sim/simd/array_processor.hpp"
#include "sim/spatial/mapper.hpp"

namespace {

using namespace mpct::sim;

const char* kLoopKernel = R"(
  ldi r1, 0
  ldi r2, 1000
  ldi r3, 0
loop:
  beq r2, r3, done
  add r1, r1, r2
  addi r2, r2, -1
  jmp loop
done:
  halt
)";

/// Dynamic instruction count of kLoopKernel (3 ldi + 1000x loop body of
/// 4 + exit beq + halt).
constexpr std::int64_t kLoopInstructions = 4005;

void bm_iup_loop(benchmark::State& state) {
  const Program program = assemble_or_throw(kLoopKernel);
  for (auto _ : state) {
    Uniprocessor cpu(program, 16);
    RunStats stats = cpu.run();
    benchmark::DoNotOptimize(stats);
  }
  state.SetItemsProcessed(state.iterations() * kLoopInstructions);
}
BENCHMARK(bm_iup_loop);

void bm_iap_lanes(benchmark::State& state) {
  const Program program = assemble_or_throw(kLoopKernel);
  const int lanes = static_cast<int>(state.range(0));
  for (auto _ : state) {
    ArrayProcessor iap(program,
                       ArrayProcessorConfig::for_subtype(1, lanes, 16));
    RunStats stats = iap.run();
    benchmark::DoNotOptimize(stats);
  }
  state.SetItemsProcessed(state.iterations() * kLoopInstructions * lanes);
}
BENCHMARK(bm_iap_lanes)->RangeMultiplier(4)->Range(4, 64);

void bm_imp_cores(benchmark::State& state) {
  const Program program = assemble_or_throw(kLoopKernel);
  const int cores = static_cast<int>(state.range(0));
  MultiprocessorConfig config = MultiprocessorConfig::for_subtype(1);
  config.cores = cores;
  config.bank_words = 16;
  for (auto _ : state) {
    Multiprocessor imp = Multiprocessor::broadcast(program, config);
    RunStats stats = imp.run();
    benchmark::DoNotOptimize(stats);
  }
  state.SetItemsProcessed(state.iterations() * kLoopInstructions * cores);
}
BENCHMARK(bm_imp_cores)->RangeMultiplier(4)->Range(4, 64);

void bm_imp_message_ring(benchmark::State& state) {
  // Token ring: each core receives and forwards 100 times.
  const int cores = static_cast<int>(state.range(0));
  std::vector<Program> programs;
  for (int c = 0; c < cores; ++c) {
    std::string source;
    if (c == 0) {
      source = R"(
        ldi r1, 0
        ldi r2, 1
        send r1, r2
        ldi r4, 100
        ldi r5, 0
loop:
        recv r3
        addi r3, r3, 1
        send r3, r2
        addi r4, r4, -1
        bne r4, r5, loop
        recv r3
        halt
      )";
    } else {
      source = R"(
        ldi r2, )" + std::to_string((c + 1) % cores) + R"(
        ldi r4, 101
        ldi r5, 0
loop:
        recv r3
        send r3, r2
        addi r4, r4, -1
        bne r4, r5, loop
        halt
      )";
    }
    programs.push_back(assemble_or_throw(source));
  }
  MultiprocessorConfig config = MultiprocessorConfig::for_subtype(2);
  config.cores = cores;
  for (auto _ : state) {
    Multiprocessor imp(programs, config);
    RunStats stats = imp.run(10'000'000);
    benchmark::DoNotOptimize(stats);
  }
}
BENCHMARK(bm_imp_message_ring)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond);

void bm_dataflow_firings(benchmark::State& state) {
  const int pes = static_cast<int>(state.range(0));
  mpct::sim::df::Graph g;
  std::vector<mpct::sim::df::NodeId> layer;
  for (int i = 0; i < 32; ++i) {
    layer.push_back(g.add_input("i" + std::to_string(i)));
  }
  // Reduction tree: 32 -> 1.
  while (layer.size() > 1) {
    std::vector<mpct::sim::df::NodeId> next;
    for (std::size_t i = 0; i + 1 < layer.size(); i += 2) {
      next.push_back(g.add_op(mpct::sim::df::Op::Add, layer[i],
                              layer[i + 1]));
    }
    if (layer.size() % 2) next.push_back(layer.back());
    layer = std::move(next);
  }
  g.add_output("sum", layer[0]);

  std::vector<std::pair<std::string, mpct::sim::Word>> inputs;
  for (int i = 0; i < 32; ++i) {
    inputs.emplace_back("i" + std::to_string(i), i);
  }
  const auto config =
      pes == 1 ? mpct::sim::df::TokenMachineConfig::uniprocessor()
               : mpct::sim::df::TokenMachineConfig::for_subtype(4, pes);
  mpct::sim::df::TokenMachine machine(g, config);
  for (auto _ : state) {
    auto result = machine.run(inputs);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * g.node_count());
}
BENCHMARK(bm_dataflow_firings)->Arg(1)->Arg(4)->Arg(16);

void bm_fabric_steps(benchmark::State& state) {
  using namespace mpct::sim::spatial;
  LutFabric fabric(64, 16, 8);
  const Netlist adder = build_ripple_adder(4);
  const MappingReport report = map_netlist(adder, fabric);
  std::vector<std::pair<std::string, bool>> values;
  for (int i = 0; i < 4; ++i) {
    values.emplace_back("a" + std::to_string(i), i % 2 == 0);
    values.emplace_back("b" + std::to_string(i), i % 2 == 1);
  }
  values.emplace_back("cin", false);
  const auto inputs = pack_inputs(report, fabric.primary_inputs(), values);
  for (auto _ : state) {
    auto outputs = fabric.step(inputs);
    benchmark::DoNotOptimize(outputs);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(bm_fabric_steps);

void bm_assemble(benchmark::State& state) {
  for (auto _ : state) {
    AssemblyResult result = assemble(kLoopKernel);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(bm_assemble);

constexpr std::string_view kFirProgram = R"(
  acc = x0*c0 + x1*c1 + x2*c2 + x3*c3
  out = min(acc, 1000)
)";

void bm_expression_compile(benchmark::State& state) {
  for (auto _ : state) {
    auto result = mpct::sim::df::compile_expression(kFirProgram);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(bm_expression_compile);

void bm_cgra_map(benchmark::State& state) {
  const auto graph = mpct::sim::df::compile_expression_or_throw(kFirProgram);
  mpct::sim::cgra::Cgra fabric(mpct::sim::cgra::CgraShape{
      .fus = 16, .contexts = 16, .primary_inputs = 8});
  for (auto _ : state) {
    auto schedule = mpct::sim::cgra::map_graph(graph, fabric);
    benchmark::DoNotOptimize(schedule);
  }
}
BENCHMARK(bm_cgra_map);

void bm_cgra_run(benchmark::State& state) {
  const auto graph = mpct::sim::df::compile_expression_or_throw(kFirProgram);
  mpct::sim::cgra::Cgra fabric(mpct::sim::cgra::CgraShape{
      .fus = 16, .contexts = 16, .primary_inputs = 8});
  const auto schedule = mpct::sim::cgra::map_graph(graph, fabric);
  std::vector<std::pair<std::string, Word>> inputs;
  int value = 1;
  for (const auto& [name, index] : schedule.input_index) {
    inputs.emplace_back(name, value++);
  }
  for (auto _ : state) {
    auto outputs = mpct::sim::cgra::run_mapped(fabric, schedule, inputs);
    benchmark::DoNotOptimize(outputs);
  }
  state.SetItemsProcessed(state.iterations() * schedule.fus_used);
}
BENCHMARK(bm_cgra_run);

}  // namespace

int main(int argc, char** argv) {
  std::cout << "PARADIGM SIMULATOR MICROBENCHMARKS\n"
            << "(items/s = simulated instructions, node firings, or "
               "fabric clock steps)\n\n";
  mpct::bench::apply_csv_flag(&argc, argv);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
