/// Regenerates Table III of the paper — the survey of 25 modern parallel
/// and reconfigurable architectures with taxonomic names and flexibility
/// values — and benchmarks the classification pipeline end to end.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"

#include <iostream>
#include <map>

#include "arch/registry.hpp"
#include "arch/validate.hpp"
#include "report/csv.hpp"
#include "report/table.hpp"

namespace {

using namespace mpct;
using arch::ArchitectureSpec;

void print_table3() {
  report::TextTable table({"Architecture", "IPs", "DPs", "IP-IP", "IP-DP",
                           "IP-IM", "DP-DM", "DP-DP", "Name", "Flex",
                           "Paper"});
  table.set_align(9, report::Align::Right);
  table.set_align(10, report::Align::Right);

  int mismatches = 0;
  for (const ArchitectureSpec& spec : arch::surveyed_architectures()) {
    const Classification result = spec.classify();
    const int flex = spec.flexibility().total();
    if (spec.paper_flexibility && flex != *spec.paper_flexibility) {
      ++mismatches;
    }
    table.add_row({spec.name + spec.citation,
                   spec.ips.to_string(),
                   spec.dps.to_string(),
                   spec.at(ConnectivityRole::IpIp).to_string(),
                   spec.at(ConnectivityRole::IpDp).to_string(),
                   spec.at(ConnectivityRole::IpIm).to_string(),
                   spec.at(ConnectivityRole::DpDm).to_string(),
                   spec.at(ConnectivityRole::DpDp).to_string(),
                   result.ok() ? to_string(*result.name) : "?",
                   std::to_string(flex),
                   std::to_string(spec.paper_flexibility.value_or(-1))});
  }
  std::cout << "TABLE III: SURVEY OF MODERN PARALLEL AND RECONFIGURABLE "
               "ARCHITECTURES\n"
            << "(Name and Flex computed by the classifier from the "
               "structural cells;\n 'Paper' is the value printed in the "
               "paper's table)\n\n"
            << table.render_ascii() << "\n"
            << "computed-vs-paper mismatches: " << mismatches
            << " (PACT XPP: the paper prints 2 but its own Table II "
               "assigns IMP-II\n flexibility 3 — a documented erratum; "
               "the formula value is shown)\n\n";

  // Class histogram: how the surveyed field distributes over the
  // taxonomy (Section IV's narrative, condensed).
  std::map<std::string, int> histogram;
  for (const ArchitectureSpec& spec : arch::surveyed_architectures()) {
    const Classification result = spec.classify();
    if (result.ok()) ++histogram[to_string(*result.name)];
  }
  std::cout << "class histogram:";
  for (const auto& [name, count] : histogram) {
    std::cout << ' ' << name << "=" << count;
  }
  std::cout << "\n\n";

  // CSV companion for downstream plotting.
  report::CsvWriter csv;
  csv.add_row({"architecture", "name", "flexibility", "paper_flexibility",
               "category", "year"});
  for (const ArchitectureSpec& spec : arch::surveyed_architectures()) {
    csv.add_row({spec.name, spec.paper_name.value_or(""),
                 std::to_string(spec.flexibility().total()),
                 std::to_string(spec.paper_flexibility.value_or(-1)),
                 spec.category, std::to_string(spec.year)});
  }
  std::cout << "CSV:\n" << csv.str() << "\n";
}

void bm_classify_survey(benchmark::State& state) {
  for (auto _ : state) {
    for (const ArchitectureSpec& spec : arch::surveyed_architectures()) {
      Classification result = spec.classify();
      benchmark::DoNotOptimize(result);
    }
  }
}
BENCHMARK(bm_classify_survey);

void bm_validate_survey(benchmark::State& state) {
  for (auto _ : state) {
    for (const ArchitectureSpec& spec : arch::surveyed_architectures()) {
      auto issues = arch::validate(spec);
      benchmark::DoNotOptimize(issues);
    }
  }
}
BENCHMARK(bm_validate_survey);

void bm_flexibility_survey(benchmark::State& state) {
  for (auto _ : state) {
    int total = 0;
    for (const ArchitectureSpec& spec : arch::surveyed_architectures()) {
      total += spec.flexibility().total();
    }
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(bm_flexibility_survey);

}  // namespace

int main(int argc, char** argv) {
  print_table3();
  mpct::bench::apply_csv_flag(&argc, argv);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
