/// Regenerates the Eq. 1 (area) and Eq. 2 (configuration bits)
/// predictions — the paper gives the equations without numeric tables,
/// so this bench produces the predicted curves across the class families
/// plus two ablations: (a) the omitted IP-DP switch term, (b) direct vs
/// crossbar switch families.  Cross-checks against the executable
/// crossbar's measured state.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"

#include <iomanip>
#include <iostream>

#include "arch/registry.hpp"
#include "core/classifier.hpp"
#include "core/flexibility.hpp"
#include "cost/area_model.hpp"
#include "cost/config_bits.hpp"
#include "interconnect/crossbar.hpp"
#include "report/table.hpp"

namespace {

using namespace mpct;
using namespace mpct::cost;

MachineClass named(const char* text) {
  return *canonical_class(*parse_taxonomic_name(text));
}

void print_family_sweep() {
  const ComponentLibrary lib = ComponentLibrary::default_library();
  const TechnologyNode node = default_node();
  std::cout << "EQ.1 / EQ.2 PREDICTIONS (component library '" << lib.name
            << "', " << node.name << ", N = 16, v = 2048)\n\n";

  report::TextTable table({"Class", "Flex", "Area kGE", "Area mm2",
                           "Switch kGE", "CB bits", "Switch CB"});
  for (std::size_t c = 1; c < 7; ++c) table.set_align(c, report::Align::Right);

  const EstimateOptions options{.n = 16, .m = 16, .v = 2048};
  for (const char* name :
       {"DUP", "DMP-I", "DMP-IV", "IUP", "IAP-I", "IAP-II", "IAP-IV",
        "IMP-I", "IMP-II", "IMP-IV", "IMP-VIII", "IMP-XVI", "ISP-I",
        "ISP-XVI", "USP"}) {
    const MachineClass mc = named(name);
    const AreaEstimate area = estimate_area(mc, lib, options);
    const ConfigBitsEstimate cb = estimate_config_bits(mc, lib, options);
    std::ostringstream mm2;
    mm2 << std::fixed << std::setprecision(3) << area.total_mm2(node);
    std::ostringstream kge;
    kge << std::fixed << std::setprecision(1) << area.total_kge();
    std::ostringstream sw;
    sw << std::fixed << std::setprecision(1) << area.switch_kge();
    table.add_row({name, std::to_string(flexibility_score(mc)), kge.str(),
                   mm2.str(), sw.str(), std::to_string(cb.total()),
                   std::to_string(cb.switch_bits())});
  }
  std::cout << table.render_ascii() << "\n";
}

void print_scaling_curves() {
  const ComponentLibrary lib = ComponentLibrary::default_library();
  std::cout << "SCALING: IMP-I (all direct) vs IMP-XVI (all crossbar) "
               "area in kGE by N\n"
            << "  N      IMP-I      IMP-XVI    ratio\n";
  for (std::int64_t n : {4, 8, 16, 32, 64, 128, 256, 512, 1024}) {
    EstimateOptions options;
    options.n = n;
    const double a1 = estimate_area(named("IMP-I"), lib, options).total_kge();
    const double a16 =
        estimate_area(named("IMP-XVI"), lib, options).total_kge();
    std::cout << "  " << std::setw(5) << n << std::setw(11) << std::fixed
              << std::setprecision(0) << a1 << std::setw(12) << a16
              << std::setw(9) << std::setprecision(2) << a16 / a1 << "\n";
  }
  std::cout << "(crossbar quadratic growth dominates: the 'flexibility "
               "costs area' law)\n\n";
}

void print_ablation() {
  const ComponentLibrary lib = ComponentLibrary::default_library();
  std::cout << "ABLATION: the IP-DP switch term Eq.1/Eq.2 omit (IMP-IX, "
               "N = 64)\n";
  const MachineClass mc = named("IMP-IX");  // IP-DP crossbar
  const EstimateOptions faithful{.n = 64};
  EstimateOptions extended = faithful;
  extended.include_ip_dp_switch = true;
  const double a0 = estimate_area(mc, lib, faithful).total_kge();
  const double a1 = estimate_area(mc, lib, extended).total_kge();
  std::cout << "  faithful Eq.1:    " << std::fixed << std::setprecision(1)
            << a0 << " kGE\n"
            << "  + IP-DP term:     " << a1 << " kGE  (+"
            << std::setprecision(1) << (a1 / a0 - 1) * 100 << "%)\n";
  const auto cb0 = estimate_config_bits(mc, lib, faithful).total();
  const auto cb1 = estimate_config_bits(mc, lib, extended).total();
  std::cout << "  faithful Eq.2:    " << cb0 << " bits\n"
            << "  + CW_IP-DP term:  " << cb1 << " bits\n\n";
}

void print_crosscheck() {
  const ComponentLibrary lib = ComponentLibrary::default_library();
  std::cout << "CROSS-CHECK: Eq.2 crossbar terms vs measured executable "
               "crossbars\n";
  struct Case {
    const char* arch;
    int inputs;
    int outputs;
  };
  for (const Case& c : {Case{"MorphoSys DP-DP", 64, 64},
                        Case{"Montium DP-DM", 5, 10},
                        Case{"PADDI DP-DP", 8, 8}}) {
    interconnect::Crossbar xbar(c.inputs, c.outputs);
    const auto predicted =
        switch_cost(SwitchKind::Crossbar, c.inputs, c.outputs,
                    lib.data_width)
            .config_bits;
    std::cout << "  " << c.arch << " (" << c.inputs << "x" << c.outputs
              << "): predicted " << predicted << ", measured "
              << xbar.config_bits()
              << (predicted == xbar.config_bits() ? "  [match]"
                                                  : "  [MISMATCH]")
              << "\n";
  }
  std::cout << "\n";
}

void print_survey_costs() {
  const ComponentLibrary lib = ComponentLibrary::default_library();
  std::cout << "SURVEY COST ESTIMATES (n = m = 16, v = 2048)\n";
  report::TextTable table({"Architecture", "Flex", "Area kGE", "CB bits"});
  table.set_align(1, report::Align::Right);
  table.set_align(2, report::Align::Right);
  table.set_align(3, report::Align::Right);
  const EstimateOptions options{.n = 16, .m = 16, .v = 2048};
  for (const arch::ArchitectureSpec& spec :
       arch::surveyed_architectures()) {
    const auto area = estimate_area(spec, lib, options);
    const auto cb = estimate_config_bits(spec, lib, options);
    std::ostringstream kge;
    kge << std::fixed << std::setprecision(1) << area.total_kge();
    table.add_row({spec.name, std::to_string(spec.flexibility().total()),
                   kge.str(), std::to_string(cb.total())});
  }
  std::cout << table.render_ascii() << "\n";
}

void bm_estimate_area(benchmark::State& state) {
  const ComponentLibrary lib = ComponentLibrary::default_library();
  const MachineClass mc = named("IMP-XVI");
  EstimateOptions options;
  options.n = state.range(0);
  for (auto _ : state) {
    AreaEstimate e = estimate_area(mc, lib, options);
    benchmark::DoNotOptimize(e);
  }
}
BENCHMARK(bm_estimate_area)->RangeMultiplier(4)->Range(4, 1024);

void bm_estimate_config_bits_survey(benchmark::State& state) {
  const ComponentLibrary lib = ComponentLibrary::default_library();
  for (auto _ : state) {
    std::int64_t total = 0;
    for (const arch::ArchitectureSpec& spec :
         arch::surveyed_architectures()) {
      total += estimate_config_bits(spec, lib).total();
    }
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(bm_estimate_config_bits_survey);

}  // namespace

int main(int argc, char** argv) {
  print_family_sweep();
  print_scaling_curves();
  print_ablation();
  print_crosscheck();
  print_survey_costs();
  mpct::bench::apply_csv_flag(&argc, argv);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
