#!/usr/bin/env python3
"""Compare fresh bench JSON against the committed BENCH_* baselines.

Usage:
    check_regression.py COMMITTED FRESH [COMMITTED FRESH ...]

Each pair is two files in the BENCH_* format (bench_sweep/bench_fault/
bench_trace --json output).  Every numeric leaf under the "current"
block is compared pairwise; a relative deviation beyond the band
(default +/-30%, override with --band 0.5) prints a WARNING line.

Band deviations are warn-only by design: CI runners are noisy shared
machines and the committed numbers come from a different host, so
deviations are a prompt to look, not a gate.

Floors are a gate.  A committed baseline may carry a "floors" block
mapping dotted "current"-relative paths to hard minimums, e.g.

    "floors": {"sweep_cells_per_s.threads_0": 1.38e6}

A fresh value below its floor (or a floored metric missing from the
fresh run) prints a FAIL line and the script exits 1.  Floors encode
order-of-magnitude guarantees (the batch sweep kernel must stay >= 5x
the pre-batch scalar baseline), far below host-to-host noise.

Ceilings are the same gate upside down: a "ceilings" block maps dotted
paths to hard maximums, e.g.

    "ceilings": {"disabled_span_ns": 2.0}

A fresh value above its ceiling (or missing) FAILs.  Ceilings encode
cost budgets — the disabled tracing path must never creep past its
per-span budget no matter the host.

Exit code is also 1 when the inputs themselves are unusable (missing
file, malformed JSON, mismatched bench names).  Only stdlib, no
third-party deps.
"""

import argparse
import json
import sys


def numeric_leaves(value, prefix=""):
    """Flatten nested dicts/lists to (dotted-path, number) pairs."""
    if isinstance(value, bool):  # bool is an int subclass; skip it
        return
    if isinstance(value, (int, float)):
        yield prefix, float(value)
    elif isinstance(value, dict):
        for key in value:
            yield from numeric_leaves(value[key], f"{prefix}.{key}" if prefix else key)
    elif isinstance(value, list):
        for i, item in enumerate(value):
            yield from numeric_leaves(item, f"{prefix}[{i}]")


def compare(committed_path, fresh_path, band):
    try:
        with open(committed_path) as f:
            committed = json.load(f)
        with open(fresh_path) as f:
            fresh = json.load(f)
    except (OSError, json.JSONDecodeError) as error:
        print(f"ERROR: {error}", file=sys.stderr)
        return None

    name = committed.get("bench", committed_path)
    if committed.get("bench") != fresh.get("bench"):
        print(
            f"ERROR: bench name mismatch: {committed_path} is "
            f"{committed.get('bench')!r}, {fresh_path} is {fresh.get('bench')!r}",
            file=sys.stderr,
        )
        return None

    base = dict(numeric_leaves(committed.get("current", {})))
    new = dict(numeric_leaves(fresh.get("current", {})))
    warnings = 0

    for path in sorted(base):
        if path not in new:
            print(f"WARNING [{name}] {path}: present in baseline, missing in fresh run")
            warnings += 1
            continue
        old_value, new_value = base[path], new[path]
        if old_value == 0:
            if new_value != 0:
                print(f"WARNING [{name}] {path}: baseline 0, now {new_value:g}")
                warnings += 1
            continue
        ratio = new_value / old_value
        if abs(ratio - 1.0) > band:
            print(
                f"WARNING [{name}] {path}: {old_value:g} -> {new_value:g} "
                f"({(ratio - 1.0) * 100.0:+.0f}%, band +/-{band * 100.0:.0f}%)"
            )
            warnings += 1
    for path in sorted(set(new) - set(base)):
        print(f"NOTE [{name}] {path}: new metric, no baseline")

    failures = 0
    floors = committed.get("floors", {})
    for path in sorted(floors):
        floor = float(floors[path])
        if path not in new:
            print(f"FAIL [{name}] {path}: floored at {floor:g} but missing "
                  f"from the fresh run")
            failures += 1
        elif new[path] < floor:
            print(f"FAIL [{name}] {path}: {new[path]:g} below the hard "
                  f"floor {floor:g}")
            failures += 1
    ceilings = committed.get("ceilings", {})
    for path in sorted(ceilings):
        ceiling = float(ceilings[path])
        if path not in new:
            print(f"FAIL [{name}] {path}: capped at {ceiling:g} but missing "
                  f"from the fresh run")
            failures += 1
        elif new[path] > ceiling:
            print(f"FAIL [{name}] {path}: {new[path]:g} above the hard "
                  f"ceiling {ceiling:g}")
            failures += 1

    compared = len(set(base) & set(new))
    print(f"[{name}] compared {compared} metrics, {warnings} outside the "
          f"band, {failures} outside hard floors/ceilings")
    return failures


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("files", nargs="+", metavar="COMMITTED FRESH",
                        help="pairs of baseline and fresh BENCH_*.json files")
    parser.add_argument("--band", type=float, default=0.30,
                        help="allowed relative deviation (default 0.30)")
    args = parser.parse_args()
    if len(args.files) % 2 != 0:
        parser.error("expected pairs of files: COMMITTED FRESH [...]")

    failed = False
    for committed, fresh in zip(args.files[::2], args.files[1::2]):
        result = compare(committed, fresh, args.band)
        if result is None or result > 0:
            failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
