/// Regenerates Table I of the paper — the 47-class extended Skillicorn
/// taxonomy — and benchmarks the generation/classification machinery.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"

#include <iostream>

#include "core/classifier.hpp"
#include "core/flynn.hpp"
#include "core/taxonomy_table.hpp"
#include "report/table.hpp"

namespace {

using namespace mpct;

void print_table1() {
  report::TextTable table(
      {"S.N", "Gran.", "IPs", "DPs", "IP-IP", "IP-DP", "IP-IM", "DP-DM",
       "DP-DP", "Comments", "Flynn"});
  table.set_align(0, report::Align::Right);

  std::string_view current_section;
  for (const TaxonomyEntry& row : extended_taxonomy()) {
    if (row.section != current_section) {
      current_section = row.section;
      table.add_section(std::string(current_section));
    }
    table.add_row({std::to_string(row.serial),
                   std::string(to_string(row.machine.granularity)),
                   std::string(to_symbol(row.machine.ips)),
                   std::string(to_symbol(row.machine.dps)),
                   format_cell(row.machine, ConnectivityRole::IpIp),
                   format_cell(row.machine, ConnectivityRole::IpDp),
                   format_cell(row.machine, ConnectivityRole::IpIm),
                   format_cell(row.machine, ConnectivityRole::DpDm),
                   format_cell(row.machine, ConnectivityRole::DpDp),
                   row.comment(),
                   [&] {
                     const auto f = flynn_class(row.machine);
                     return f ? std::string(to_string(*f)) : std::string("-");
                   }()});
  }
  std::cout << "TABLE I: EXTENDED TABLE FROM SKILLICORN'S TAXONOMY\n"
            << "(generated from the structural rules, not transcribed; the "
               "Flynn column is\n this library's addition — note the NI "
               "rows land exactly on MISD)\n\n"
            << table.render_ascii() << "\n"
            << "rows: " << extended_taxonomy().size()
            << ", implementable classes: " << implementable_class_count()
            << ", NI classes: "
            << extended_taxonomy().size() - implementable_class_count()
            << ", classes only expressible with the paper's extensions: "
            << extension_only_class_count() << "\n\n";
}

void bm_generate_table(benchmark::State& state) {
  for (auto _ : state) {
    // The table is cached; measure the lookup + iteration cost.
    int named = 0;
    for (const TaxonomyEntry& row : extended_taxonomy()) {
      if (row.name) ++named;
    }
    benchmark::DoNotOptimize(named);
  }
}
BENCHMARK(bm_generate_table);

void bm_classify_all_rows(benchmark::State& state) {
  for (auto _ : state) {
    for (const TaxonomyEntry& row : extended_taxonomy()) {
      Classification result = classify(row.machine);
      benchmark::DoNotOptimize(result);
    }
  }
}
BENCHMARK(bm_classify_all_rows);

void bm_canonical_roundtrip(benchmark::State& state) {
  for (auto _ : state) {
    for (const TaxonomyEntry& row : extended_taxonomy()) {
      if (!row.name) continue;
      auto mc = canonical_class(*row.name);
      benchmark::DoNotOptimize(mc);
    }
  }
}
BENCHMARK(bm_canonical_roundtrip);

}  // namespace

int main(int argc, char** argv) {
  print_table1();
  mpct::bench::apply_csv_flag(&argc, argv);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
