/// Regenerates Table II of the paper — relative flexibility values for
/// every class — and benchmarks the scoring system.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"

#include <iostream>

#include "core/classifier.hpp"
#include "core/flexibility.hpp"
#include "core/taxonomy_table.hpp"
#include "report/table.hpp"

namespace {

using namespace mpct;

std::string section_header(const TaxonomicName& name) {
  std::string header(to_string(name.machine_type));
  header += " -> ";
  header += name.machine_type == MachineType::UniversalFlow
                ? "Fine Grained"
                : std::string(to_string(name.processing_type));
  header += " (+" + std::to_string(category_offset(name)) + ")";
  return header;
}

void print_table2() {
  report::TextTable table({"ST", "Flx.", "ST", "Flx.", "ST", "Flx.", "ST",
                           "Flx."});
  std::string current_section;
  std::vector<std::string> pending;

  const auto flush = [&] {
    while (!pending.empty()) {
      std::vector<std::string> row;
      for (int c = 0; c < 4 && !pending.empty(); ++c) {
        row.push_back(pending.front());
        pending.erase(pending.begin());
        row.push_back(pending.front());
        pending.erase(pending.begin());
      }
      while (row.size() < 8) row.push_back("-");
      table.add_row(std::move(row));
    }
  };

  for (const TaxonomyEntry& entry : extended_taxonomy()) {
    if (!entry.name) continue;
    const std::string section = section_header(*entry.name);
    if (section != current_section) {
      flush();
      table.add_section(section);
      current_section = section;
    }
    pending.push_back(to_string(*entry.name));
    pending.push_back(std::to_string(flexibility_score(entry.machine)));
  }
  flush();

  std::cout << "TABLE II: RELATIVE FLEXIBILITY VALUES FOR DIFFERENT "
               "CLASSES\n"
            << "(computed by the scoring system: 1 point per n/v IP set, "
               "per n/v DP set,\n per crossbar switch; +1 for "
               "universal-flow variability)\n\n"
            << table.render_ascii() << "\n";

  // Derivations for the extremes.
  const auto iup = canonical_class(*parse_taxonomic_name("IUP"));
  const auto usp = canonical_class(*parse_taxonomic_name("USP"));
  const auto isp16 = canonical_class(*parse_taxonomic_name("ISP-XVI"));
  std::cout << "derivations:\n"
            << "  IUP:     " << flexibility(*iup).to_string() << "\n"
            << "  ISP-XVI: " << flexibility(*isp16).to_string() << "\n"
            << "  USP:     " << flexibility(*usp).to_string() << "\n\n";
}

void bm_score_all_classes(benchmark::State& state) {
  for (auto _ : state) {
    int total = 0;
    for (const TaxonomyEntry& row : extended_taxonomy()) {
      total += flexibility_score(row.machine);
    }
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(bm_score_all_classes);

void bm_flexibility_breakdown(benchmark::State& state) {
  const auto usp = canonical_class(*parse_taxonomic_name("USP"));
  for (auto _ : state) {
    FlexibilityBreakdown b = flexibility(*usp);
    benchmark::DoNotOptimize(b);
  }
}
BENCHMARK(bm_flexibility_breakdown);

}  // namespace

int main(int argc, char** argv) {
  print_table2();
  mpct::bench::apply_csv_flag(&argc, argv);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
