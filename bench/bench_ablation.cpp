/// Ablation studies for the design choices DESIGN.md calls out:
///  (a) token-machine placement policy (component-aware vs round-robin),
///  (b) switch-cost model parameter sensitivity,
///  (c) interconnect family routability at equal port count
///      (crossbar / omega / bus / window),
///  (d) energy: the same dot-product workload priced across paradigms.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"

#include <iomanip>
#include <iostream>
#include <numeric>

#include "cost/energy.hpp"
#include "cost/switch_cost.hpp"
#include "interconnect/benes.hpp"
#include "interconnect/bus.hpp"
#include "interconnect/crossbar.hpp"
#include "interconnect/neighbor.hpp"
#include "interconnect/omega.hpp"
#include "interconnect/traffic.hpp"
#include "sim/cgra/pipeline.hpp"
#include "sim/cgra/scheduler.hpp"
#include "sim/dataflow/expr_parser.hpp"
#include "sim/dataflow/token_machine.hpp"
#include "sim/isa/assembler.hpp"
#include "sim/isa/uniprocessor.hpp"
#include "sim/simd/array_processor.hpp"

namespace {

using namespace mpct;
using namespace mpct::sim;

// ------------------------------------------------- placement ablation

void print_placement_ablation() {
  std::cout << "ABLATION (a): token-machine placement policy\n"
            << "8 independent 3-node chains on 4 PEs; makespan with the "
               "component-aware policy vs what naive round-robin costs "
               "per DMP sub-type:\n\n";
  df::Graph wide;
  for (int i = 0; i < 8; ++i) {
    const df::NodeId a = wide.add_input("a" + std::to_string(i));
    const df::NodeId b = wide.add_input("b" + std::to_string(i));
    wide.add_output("o" + std::to_string(i),
                    wide.add_op(df::Op::Mul, a, b));
  }
  std::vector<std::pair<std::string, Word>> inputs;
  for (int i = 0; i < 8; ++i) {
    inputs.emplace_back("a" + std::to_string(i), i);
    inputs.emplace_back("b" + std::to_string(i), 2);
  }
  // The shipped policy is component-aware; approximating the round-robin
  // alternative by a connected workload of the same size shows what
  // cross-PE transfers cost.
  df::Graph chain;
  df::NodeId prev = chain.add_input("x");
  for (int i = 0; i < 31; ++i) {
    prev = chain.add_op(df::Op::Add, prev, chain.add_const(1));
  }
  chain.add_output("r", prev);

  std::cout << "  sub-type  component-parallel  forced-cross-PE(chain)\n";
  for (int subtype = 2; subtype <= 4; ++subtype) {
    df::TokenMachine parallel(wide,
                              df::TokenMachineConfig::for_subtype(subtype, 4));
    df::TokenMachine serial(chain,
                            df::TokenMachineConfig::for_subtype(subtype, 4));
    std::cout << "  DMP-" << subtype << "\t\t"
              << parallel.run(inputs).stats.cycles << "\t\t"
              << serial.run({{"x", 0}}).stats.cycles << "\n";
  }
  std::cout << "\n";
}

// ---------------------------------------------- parameter sensitivity

void print_parameter_sensitivity() {
  std::cout << "ABLATION (b): switch-cost parameter sensitivity "
               "(64x64 crossbar, 32-bit)\n"
            << "  ge/crosspoint-bit   area kGE\n";
  for (double ge : {1.0, 2.5, 5.0, 10.0}) {
    cost::SwitchCostParams params;
    params.ge_per_crosspoint_bit = ge;
    const auto cost =
        cost::switch_cost(SwitchKind::Crossbar, 64, 64, 32, params);
    std::cout << "  " << std::setw(8) << ge << std::setw(17) << std::fixed
              << std::setprecision(1) << cost.area_kge << "\n";
  }
  std::cout << "(config bits are parameter-free: always outputs * "
               "ceil(log2(inputs+1)))\n\n";
}

// --------------------------------------------------- family routability

void print_family_routability() {
  using namespace mpct::interconnect;
  std::cout << "ABLATION (c): interconnect families at 64 ports — routes "
               "completed out of 64 requests, against configuration "
               "bits\n\n  family          shift+1  shift+17  random   "
               "config-bits\n";
  Rng rng(11);
  std::vector<PortId> random_perm(64);
  std::iota(random_perm.begin(), random_perm.end(), 0);
  for (int i = 63; i > 0; --i) {
    std::swap(random_perm[static_cast<std::size_t>(i)],
              random_perm[rng.next_below(static_cast<std::uint64_t>(i + 1))]);
  }
  const auto route_all = [&](Network& net,
                             const std::vector<PortId>& perm) {
    net.reset();
    int routed = 0;
    for (int out = 0; out < 64; ++out) {
      if (net.connect(perm[static_cast<std::size_t>(out)], out)) ++routed;
    }
    return routed;
  };
  std::vector<PortId> shift1(64), shift17(64);
  for (int i = 0; i < 64; ++i) {
    shift1[static_cast<std::size_t>(i)] = (i + 1) % 64;
    shift17[static_cast<std::size_t>(i)] = (i + 17) % 64;
  }

  Crossbar xbar(64, 64);
  OmegaNetwork omega(64);
  BusNetwork bus(64, 64, 4);
  NeighborNetwork window(64, 3, true);
  const auto row = [&](Network& net, const char* label) {
    std::cout << "  " << std::left << std::setw(15) << label << std::right
              << std::setw(8) << route_all(net, shift1) << std::setw(10)
              << route_all(net, shift17) << std::setw(9)
              << route_all(net, random_perm) << std::setw(13)
              << net.config_bits() << "\n";
  };
  row(xbar, "crossbar");
  row(omega, "omega");
  row(bus, "bus x4");
  row(window, "window +-3");
  // The Beneš programs whole permutations (rearrangeable): all three
  // patterns route fully.
  BenesNetwork benes(64);
  const auto benes_routes = [&](const std::vector<PortId>& perm) {
    benes.route_permutation(perm);
    int correct = 0;
    for (int o = 0; o < 64; ++o) {
      if (benes.source_of(o) == perm[static_cast<std::size_t>(o)]) {
        ++correct;
      }
    }
    return correct;
  };
  std::cout << "  " << std::left << std::setw(15) << "benes" << std::right
            << std::setw(8) << benes_routes(shift1) << std::setw(10)
            << benes_routes(shift17) << std::setw(9)
            << benes_routes(random_perm) << std::setw(13)
            << benes.config_bits() << "\n";
  std::cout << "(routability rises with configuration bits — the paper's "
               "flexibility/overhead axis inside a single switch "
               "column)\n\n";
}

// --------------------------------------------------------- energy lens

void print_energy_comparison() {
  std::cout << "ABLATION (d): energy of an 8-element dot product per "
               "paradigm (defaults in pJ)\n";
  constexpr int kN = 8;
  constexpr Word kA[kN] = {1, 2, 3, 4, 5, 6, 7, 8};
  constexpr Word kB[kN] = {7, 3, 1, 9, 2, 8, 5, 4};

  // IUP: loop.
  Uniprocessor iup(assemble_or_throw(R"(
    ldi r1, 0
    ldi r2, 8
    ldi r3, 0
loop:
    beq r1, r2, done
    ld r4, r1, 0
    ld r5, r1, 8
    mul r6, r4, r5
    add r3, r3, r6
    addi r1, r1, 1
    jmp loop
done:
    out r3
    halt
  )"),
                   32);
  std::vector<Word> init(16);
  for (int i = 0; i < kN; ++i) {
    init[static_cast<std::size_t>(i)] = kA[i];
    init[static_cast<std::size_t>(i + 8)] = kB[i];
  }
  iup.dm().fill(init);
  iup.dm().reset_counters();
  const RunStats iup_stats = iup.run();
  cost::ActivityCounts iup_activity;
  iup_activity.instructions = iup_stats.instructions;
  iup_activity.memory_accesses =
      static_cast<std::int64_t>(iup.dm().loads() + iup.dm().stores());
  std::cout << "  IUP:    "
            << cost::estimate_energy(iup_activity).to_string() << "\n";

  // IAP-II: lanes multiply + shuffle reduce; shuffles count as hops.
  ArrayProcessor iap(assemble_or_throw(R"(
    ldi r1, 0
    ld r2, r1, 0
    ld r3, r1, 1
    mul r4, r2, r3
    lane r5
    addi r6, r5, 1
    shuf r7, r4, r6
    add r4, r4, r7
    addi r6, r5, 2
    shuf r7, r4, r6
    add r4, r4, r7
    addi r6, r5, 4
    shuf r7, r4, r6
    add r4, r4, r7
    out r4
    halt
  )"),
                     ArrayProcessorConfig::for_subtype(2, kN, 8));
  for (int i = 0; i < kN; ++i) {
    iap.bank(i).store(0, kA[i]);
    iap.bank(i).store(1, kB[i]);
    iap.bank(i).reset_counters();
  }
  const RunStats iap_stats = iap.run();
  cost::ActivityCounts iap_activity;
  iap_activity.instructions = iap_stats.instructions;
  for (int i = 0; i < kN; ++i) {
    iap_activity.memory_accesses += static_cast<std::int64_t>(
        iap.bank(i).loads() + iap.bank(i).stores());
  }
  iap_activity.interconnect_hops = 3 * kN;  // 3 shuffle stages x 8 lanes
  std::cout << "  IAP-II: "
            << cost::estimate_energy(iap_activity).to_string() << "\n";

  // DMP-IV: token graph; every firing's operands arrive over the fabric.
  df::Graph g;
  std::vector<df::NodeId> products;
  for (int i = 0; i < kN; ++i) {
    const df::NodeId a = g.add_input("a" + std::to_string(i));
    const df::NodeId b = g.add_input("b" + std::to_string(i));
    products.push_back(g.add_op(df::Op::Mul, a, b));
  }
  while (products.size() > 1) {
    std::vector<df::NodeId> next;
    for (std::size_t i = 0; i + 1 < products.size(); i += 2) {
      next.push_back(g.add_op(df::Op::Add, products[i], products[i + 1]));
    }
    products = std::move(next);
  }
  g.add_output("dot", products[0]);
  std::vector<std::pair<std::string, Word>> inputs;
  for (int i = 0; i < kN; ++i) {
    inputs.emplace_back("a" + std::to_string(i), kA[i]);
    inputs.emplace_back("b" + std::to_string(i), kB[i]);
  }
  df::TokenMachine dmp(g, df::TokenMachineConfig::for_subtype(4, 4));
  const auto dmp_result = dmp.run(inputs);
  cost::ActivityCounts dmp_activity;
  dmp_activity.instructions = dmp_result.stats.instructions;
  // Each edge carries one token; count the graph's edges as hops.
  std::int64_t edges = 0;
  for (const auto& node : g.nodes()) {
    edges += static_cast<std::int64_t>(node.inputs.size());
  }
  dmp_activity.interconnect_hops = edges;
  std::cout << "  DMP-IV: "
            << cost::estimate_energy(dmp_activity, {},
                                     /*has_instruction_processor=*/false)
                   .to_string()
            << "  (no IP control overhead)\n\n";
}

// --------------------------------------------------- pipelined CGRA (e)

void print_pipelining_ablation() {
  std::cout << "ABLATION (e): pipelined vs one-shot CGRA execution "
               "(PipeRench's pitch)\n";
  const df::Graph g = df::compile_expression_or_throw(
      "acc = x0*c0 + x1*c1 + x2*c2 + x3*c3\nout = min(acc, 1000)");
  cgra::Cgra oneshot(cgra::CgraShape{
      .fus = 32, .contexts = 16, .primary_inputs = 8});
  const cgra::Schedule spatial = cgra::map_graph(g, oneshot);
  cgra::Cgra pipe(cgra::CgraShape{
      .fus = 32, .contexts = 16, .primary_inputs = 8});
  const cgra::PipelineSchedule pipelined =
      cgra::map_graph_pipelined(g, pipe);

  std::cout << "  one-shot: " << spatial.fus_used << " FUs, "
            << spatial.depth << " cycles/sample\n"
            << "  pipelined: " << pipelined.fus_used << " FUs ("
            << pipelined.pass_fus << " delay registers), 1 sample/cycle "
            << "after " << pipelined.depth << "-cycle fill\n";
  for (int samples : {16, 256}) {
    const std::int64_t oneshot_cycles =
        static_cast<std::int64_t>(samples) * spatial.depth;
    const std::int64_t pipe_cycles = samples + pipelined.depth - 1;
    std::cout << "  " << samples << " samples: one-shot "
              << oneshot_cycles << " cycles, pipelined " << pipe_cycles
              << " cycles (" << std::fixed << std::setprecision(1)
              << static_cast<double>(oneshot_cycles) /
                     static_cast<double>(pipe_cycles)
              << "x)\n";
  }
  std::cout << "(pipelining buys throughput with extra FUs — area for "
               "time, the same axis as the paper's flexibility "
               "trade-offs)\n\n";
}

// ----------------------------------------------------------- benchmarks

void bm_cgra_stream(benchmark::State& state) {
  const df::Graph g = df::compile_expression_or_throw(
      "acc = x0*c0 + x1*c1 + x2*c2 + x3*c3\nout = min(acc, 1000)");
  cgra::Cgra pipe(cgra::CgraShape{
      .fus = 32, .contexts = 16, .primary_inputs = 8});
  const cgra::PipelineSchedule schedule =
      cgra::map_graph_pipelined(g, pipe);
  std::vector<std::vector<std::pair<std::string, Word>>> samples;
  for (int s = 0; s < 64; ++s) {
    samples.push_back({{"x0", s}, {"x1", s + 1}, {"x2", s + 2},
                       {"x3", s + 3}, {"c0", 1}, {"c1", 2}, {"c2", 3},
                       {"c3", 4}});
  }
  for (auto _ : state) {
    auto results = cgra::run_stream(pipe, schedule, samples);
    benchmark::DoNotOptimize(results);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(samples.size()));
}
BENCHMARK(bm_cgra_stream);

void bm_omega_permutation(benchmark::State& state) {
  using namespace mpct::interconnect;
  OmegaNetwork omega(static_cast<int>(state.range(0)));
  std::vector<PortId> shift(static_cast<std::size_t>(state.range(0)));
  for (std::size_t i = 0; i < shift.size(); ++i) {
    shift[i] = static_cast<PortId>((i + 1) % shift.size());
  }
  for (auto _ : state) {
    int routed = omega.route_permutation(shift);
    benchmark::DoNotOptimize(routed);
  }
}
BENCHMARK(bm_omega_permutation)->Arg(16)->Arg(64)->Arg(256);

void bm_energy_estimate(benchmark::State& state) {
  cost::ActivityCounts activity;
  activity.instructions = 100000;
  activity.memory_accesses = 20000;
  activity.interconnect_hops = 5000;
  for (auto _ : state) {
    auto e = cost::estimate_energy(activity);
    benchmark::DoNotOptimize(e);
  }
}
BENCHMARK(bm_energy_estimate);

}  // namespace

int main(int argc, char** argv) {
  print_placement_ablation();
  print_parameter_sensitivity();
  print_family_routability();
  print_energy_comparison();
  print_pipelining_ablation();
  mpct::bench::apply_csv_flag(&argc, argv);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
