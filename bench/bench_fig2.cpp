/// Regenerates Figure 2 — the hierarchy of computing machines — and
/// benchmarks name parsing/formatting over the hierarchy.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"

#include <fstream>
#include <iostream>

#include "core/hierarchy.hpp"
#include "core/taxonomy_table.hpp"
#include "report/dot.hpp"

namespace {

using namespace mpct;

void print_fig2() {
  std::cout << "FIGURE 2: HIERARCHY OF COMPUTING MACHINES\n"
            << "(Machine Type -> Processing Type -> named classes, "
               "derived from Table I)\n\n"
            << render_hierarchy(machine_hierarchy()) << "\n";

  std::cout << "example paths:\n";
  for (const char* name : {"DUP", "IAP-II", "IMP-XVI", "ISP-IV", "USP"}) {
    const auto parsed = parse_taxonomic_name(name);
    std::cout << "  ";
    bool first = true;
    for (const std::string& part : hierarchy_path(*parsed)) {
      if (!first) std::cout << " -> ";
      first = false;
      std::cout << part;
    }
    std::cout << "\n";
  }
  std::cout << "\n";

  const std::string hierarchy = report::hierarchy_dot(machine_hierarchy());
  std::ofstream("fig2_hierarchy.dot") << hierarchy;
  const std::string morph = report::morph_dot();
  std::ofstream("fig2_morph.dot") << morph;
  std::cout << "Graphviz exports: ./fig2_hierarchy.dot ("
            << hierarchy.size() << " bytes), ./fig2_morph.dot ("
            << morph.size() << " bytes — the morphability Hasse "
            << "diagram over all 43 classes)\n\n";
}

void bm_build_hierarchy(benchmark::State& state) {
  for (auto _ : state) {
    HierarchyNode root = machine_hierarchy();
    benchmark::DoNotOptimize(root);
  }
}
BENCHMARK(bm_build_hierarchy);

void bm_render_hierarchy(benchmark::State& state) {
  const HierarchyNode root = machine_hierarchy();
  for (auto _ : state) {
    std::string art = render_hierarchy(root);
    benchmark::DoNotOptimize(art);
  }
}
BENCHMARK(bm_render_hierarchy);

void bm_parse_names(benchmark::State& state) {
  for (auto _ : state) {
    for (const TaxonomyEntry& row : extended_taxonomy()) {
      if (!row.name) continue;
      auto parsed = parse_taxonomic_name(to_string(*row.name));
      benchmark::DoNotOptimize(parsed);
    }
  }
}
BENCHMARK(bm_parse_names);

}  // namespace

int main(int argc, char** argv) {
  print_fig2();
  mpct::bench::apply_csv_flag(&argc, argv);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
