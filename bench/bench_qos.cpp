/// QoS serving-path benchmarks: goodput and interactive tail latency
/// under offered load, with and without the QoS ladder.
///
/// Artifact: a CSV matrix driving one QueryEngine with a paced
/// open-loop mix (7 Interactive classifies : 1 Batch design sweep) at
/// 0.5x / 1x / 2x of its measured capacity, once with enable_qos off
/// (the pre-QoS single FIFO) and once on (WFQ + admission ladder).
/// Per cell: goodput (ok responses per second), the interactive p99
/// (submit-to-callback), and how many requests were shed Overloaded.
/// The claims under test:
///
///  * at 2x overload the QoS engine's interactive p99 stays a small
///    fraction of the FIFO engine's (Interactive jumps the queue while
///    Batch is degraded/shed);
///  * goodput under QoS stays near capacity (shedding is cheap; the
///    machine keeps doing useful work);
///  * Interactive is never shed, at any load.
///
/// A separate cancellation cell fills a stalled queue, wire-cancels
/// half of it, and reports the reclaim ratio (cancelled-while-queued /
/// cancels issued) — queued cancels must be reclaimed capacity, not
/// ignored responses.
///
/// Flags (both stripped before benchmark::Initialize):
///   --csv <path>    also write google-benchmark timings as CSV
///   --json <path>   write the matrix as BENCH_qos JSON
#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "arch/registry.hpp"
#include "bench_util.hpp"
#include "qos/admission.hpp"
#include "qos/cancel.hpp"
#include "qos/priority.hpp"
#include "qos/wfq_queue.hpp"
#include "report/csv.hpp"
#include "service/service.hpp"

namespace {

using namespace mpct;
using Clock = std::chrono::steady_clock;

constexpr unsigned kWorkers = 2;
constexpr int kMixPeriod = 2;  ///< every 2nd request is a Batch sweep

/// The Batch half of the mix: a dense ~4k-cell design sweep (a few ms
/// of evaluator work, split into ~1 ms chunks by the engine).  Heavy
/// enough that a FIFO queue holding a few of them stalls every classify
/// behind them — the head-of-line blocking the WFQ exists to break.
service::Request sweep_request() {
  service::SweepRequest sweep;
  for (std::int64_t n = 2; n <= 130; n += 2) {
    sweep.grid.n_values.push_back(n);
  }
  for (std::int64_t lut = 64; lut < 1088; lut += 16) {
    sweep.grid.lut_budgets.push_back(lut);
  }
  return service::Request{std::move(sweep)};
}

/// The Interactive half: classify one surveyed architecture.
service::Request classify_request(std::size_t i) {
  const auto& survey = arch::surveyed_architectures();
  return service::Request{
      service::ClassifyRequest::of(survey[i % survey.size()])};
}

service::EngineOptions engine_options(bool enable_qos) {
  service::EngineOptions options;
  options.worker_threads = kWorkers;
  options.queue_capacity = 256;
  options.enable_cache = false;  // every request costs real work
  options.enable_qos = enable_qos;
  return options;
}

/// Requests per second the engine completes when the whole mix is
/// already queued (one deep backlog, no pacing and no submitter in the
/// way): the capacity the load cells are scaled against.
double measure_capacity() {
  service::EngineOptions options = engine_options(false);
  options.queue_capacity = 4096;  // hold the full backlog (incl. chunks)
  service::QueryEngine engine(options);
  std::atomic<std::size_t> completed{0};
  const int total = 600;
  const Clock::time_point start = Clock::now();
  for (int i = 0; i < total; ++i) {
    const bool is_sweep = i % kMixPeriod == kMixPeriod - 1;
    service::Request request = is_sweep
                                   ? sweep_request()
                                   : classify_request(static_cast<std::size_t>(i));
    engine.submit_async(std::move(request), service::Deadline::never(),
                        [&completed](service::QueryResponse response) {
                          if (response.ok()) {
                            completed.fetch_add(1, std::memory_order_relaxed);
                          }
                        });
  }
  engine.drain();
  const double elapsed_s =
      std::chrono::duration<double>(Clock::now() - start).count();
  return static_cast<double>(completed.load()) / elapsed_s;
}

struct CellResult {
  std::string label;
  double offered_per_s = 0;
  double goodput_per_s = 0;
  double interactive_p99_us = 0;
  std::size_t shed = 0;              ///< Overloaded answers (any class)
  std::size_t interactive_shed = 0;  ///< must stay 0 — Interactive is never shed
  std::size_t queue_full = 0;        ///< capacity rejections (FIFO overload mode)
};

/// Open-loop cell: submit the mix in 2 ms paced bursts at @p rate for
/// ~1.5 s, then drain.  Goodput counts ok responses over the full
/// submit-to-drained window; interactive latency is submit-to-callback.
CellResult run_cell(std::string label, bool enable_qos, double rate) {
  service::QueryEngine engine(engine_options(enable_qos));

  std::mutex mutex;
  std::vector<double> interactive_us;
  std::atomic<std::size_t> ok{0};
  std::atomic<std::size_t> shed{0};
  std::atomic<std::size_t> interactive_shed{0};
  std::atomic<std::size_t> queue_full{0};

  const auto tick = std::chrono::milliseconds(2);
  const int total = static_cast<int>(rate * 1.5);
  const Clock::time_point start = Clock::now();
  Clock::time_point next_tick = start;
  int submitted = 0;
  while (submitted < total) {
    next_tick += tick;
    const double window_s =
        std::chrono::duration<double>(next_tick - start).count();
    const int due = std::min(
        total, static_cast<int>(rate * window_s));
    for (; submitted < due; ++submitted) {
      const bool is_sweep = submitted % kMixPeriod == kMixPeriod - 1;
      const Clock::time_point submit_time = Clock::now();
      const auto callback = [&, is_sweep,
                             submit_time](service::QueryResponse response) {
        if (response.ok()) {
          ok.fetch_add(1, std::memory_order_relaxed);
          if (!is_sweep) {
            const double us = std::chrono::duration<double, std::micro>(
                                  Clock::now() - submit_time)
                                  .count();
            std::lock_guard<std::mutex> lock(mutex);
            interactive_us.push_back(us);
          }
        } else if (response.status.code == service::StatusCode::Overloaded) {
          shed.fetch_add(1, std::memory_order_relaxed);
          if (!is_sweep) {
            interactive_shed.fetch_add(1, std::memory_order_relaxed);
          }
        } else if (response.status.code == service::StatusCode::QueueFull) {
          queue_full.fetch_add(1, std::memory_order_relaxed);
        }
      };
      if (is_sweep) {
        engine.submit_async(sweep_request(), service::Deadline::never(),
                            callback);
      } else {
        engine.submit_async(
            classify_request(static_cast<std::size_t>(submitted)),
            service::Deadline::never(), callback);
      }
    }
    std::this_thread::sleep_until(next_tick);
  }
  engine.drain();
  const double elapsed_s =
      std::chrono::duration<double>(Clock::now() - start).count();

  CellResult cell;
  cell.label = std::move(label);
  cell.offered_per_s = rate;
  cell.goodput_per_s = static_cast<double>(ok.load()) / elapsed_s;
  std::sort(interactive_us.begin(), interactive_us.end());
  cell.interactive_p99_us =
      interactive_us.empty()
          ? 0
          : interactive_us[interactive_us.size() * 99 / 100];
  cell.shed = shed.load();
  cell.interactive_shed = interactive_shed.load();
  cell.queue_full = queue_full.load();
  return cell;
}

/// Fill a stalled engine's queue, cancel half of it, and measure how
/// much of the cancelled work was reclaimed while still queued.
double measure_cancel_reclaim() {
  service::EngineOptions options = engine_options(true);
  options.start_workers = false;  // everything stays queued until start()
  service::QueryEngine engine(options);

  const int total = 128;
  std::atomic<std::size_t> resolved{0};
  for (int i = 0; i < total; ++i) {
    engine.submit_async(classify_request(static_cast<std::size_t>(i)),
                        service::Deadline::never(),
                        qos::PriorityClass::Interactive,
                        /*cancel_owner=*/1,
                        /*cancel_id=*/static_cast<std::uint64_t>(i + 1),
                        [&resolved](service::QueryResponse) {
                          resolved.fetch_add(1, std::memory_order_relaxed);
                        });
  }
  const int cancelled = total / 2;
  for (int i = 0; i < cancelled; ++i) {
    engine.cancel(1, static_cast<std::uint64_t>(i * 2 + 1));
  }
  const double reclaimed = static_cast<double>(
      engine.metrics().qos_cancelled_queued.value());
  engine.start();
  engine.drain();
  return reclaimed / static_cast<double>(cancelled);
}

std::string fmt(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.4g", value);
  return buffer;
}

/// Returns false (failing the run) if a QoS invariant broke: the
/// timing columns are load-dependent and only reported, but Interactive
/// being shed or a queued cancel being ignored is a bug at any speed.
bool print_artifact(const std::string& json_path) {
  const double capacity = measure_capacity();

  std::vector<CellResult> cells;
  for (const double factor : {0.5, 1.0, 2.0}) {
    const std::string suffix =
        factor == 0.5 ? "x0_5" : (factor == 1.0 ? "x1" : "x2");
    cells.push_back(run_cell("fifo_" + suffix, false, capacity * factor));
    cells.push_back(run_cell("qos_" + suffix, true, capacity * factor));
  }
  const double reclaim = measure_cancel_reclaim();

  report::CsvWriter csv;
  csv.add_row({"cell", "offered_per_s", "goodput_per_s", "interactive_p99_us",
               "shed", "interactive_shed", "queue_full"});
  for (const CellResult& cell : cells) {
    csv.add_row({cell.label, fmt(cell.offered_per_s), fmt(cell.goodput_per_s),
                 fmt(cell.interactive_p99_us), std::to_string(cell.shed),
                 std::to_string(cell.interactive_shed),
                 std::to_string(cell.queue_full)});
  }
  std::cout << "# goodput vs offered load (1 classify : 1 sweep mix, "
            << kWorkers << " workers; capacity " << fmt(capacity)
            << " req/s measured closed-loop)\n"
            << csv.str() << "\n";

  const CellResult& fifo_2x = cells[4];
  const CellResult& qos_2x = cells[5];
  std::cout << "# 2x overload: interactive p99 " << fmt(qos_2x.interactive_p99_us)
            << " us with QoS vs " << fmt(fifo_2x.interactive_p99_us)
            << " us FIFO ("
            << fmt(fifo_2x.interactive_p99_us > 0
                       ? 100.0 * qos_2x.interactive_p99_us /
                             fifo_2x.interactive_p99_us
                       : 0)
            << "% of baseline); goodput "
            << fmt(100.0 * qos_2x.goodput_per_s / capacity)
            << "% of full-fidelity capacity (degraded batch answers "
               "cost less than full ones, so >100% is the shed ladder "
               "working, not a measurement error); interactive sheds "
            << qos_2x.interactive_shed << "\n";
  std::cout << "# cancel reclaim ratio " << fmt(reclaim)
            << " (cancelled-while-queued / cancels issued)\n\n";

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << "{\n"
        << "  \"bench\": \"bench_qos\",\n"
        << "  \"host_cpus\": " << std::thread::hardware_concurrency() << ",\n"
        << "  \"op\": \"paced open-loop classify/sweep mix through one "
           "QueryEngine at 0.5x/1x/2x capacity, QoS ladder off (fifo) "
           "and on (qos): goodput, interactive p99, shed counts, and "
           "the queued-cancel reclaim ratio\",\n"
        << "  \"current\": {\n"
        << "    \"capacity_per_s\": " << fmt(capacity) << ",\n";
    for (const CellResult& cell : cells) {
      out << "    \"goodput_per_s_" << cell.label
          << "\": " << fmt(cell.goodput_per_s) << ",\n"
          << "    \"interactive_p99_us_" << cell.label
          << "\": " << fmt(cell.interactive_p99_us) << ",\n"
          << "    \"interactive_shed_" << cell.label
          << "\": " << cell.interactive_shed << ",\n";
    }
    out << "    \"cancel_reclaim_ratio\": " << fmt(reclaim) << "\n"
        << "  }\n}\n";
    std::cout << "JSON written to " << json_path << "\n\n";
  }

  bool ok = true;
  for (const CellResult& cell : cells) {
    if (cell.interactive_shed != 0) {
      std::cerr << "FAIL: " << cell.interactive_shed
                << " Interactive requests shed in cell " << cell.label
                << " — Interactive must never be shed\n";
      ok = false;
    }
  }
  if (reclaim < 1.0) {
    std::cerr << "FAIL: cancel reclaim ratio " << fmt(reclaim)
              << " < 1 — every cancel of still-queued work must reclaim "
                 "its queue slot\n";
    ok = false;
  }
  return ok;
}

// ---------------------------------------------------------------------------
// Registered microbenchmarks: the QoS primitives alone.

void bm_wfq_push_pop(benchmark::State& state) {
  qos::WfqQueue<int> queue(1024);
  int item = 7;
  for (auto _ : state) {
    queue.try_push(qos::PriorityClass::Interactive, item);
    queue.try_push(qos::PriorityClass::Batch, item);
    int out = 0;
    queue.pop(out);
    queue.pop(out);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(bm_wfq_push_pop);

void bm_admission_decide(benchmark::State& state) {
  // The wait-free hot path every submit pays when QoS is on.
  qos::AdmissionController controller{qos::AdmissionOptions{}};
  double fill = 0.0;
  for (auto _ : state) {
    fill = fill < 1.0 ? fill + 0.001 : 0.0;
    qos::Admission admission =
        controller.decide(qos::PriorityClass::Batch, fill);
    benchmark::DoNotOptimize(admission);
  }
}
BENCHMARK(bm_admission_decide);

void bm_cancel_registry_cycle(benchmark::State& state) {
  // add + resolve-erase, the bookkeeping every cancellable request pays.
  qos::CancelRegistry registry;
  std::uint64_t id = 0;
  for (auto _ : state) {
    ++id;
    qos::CancelToken token = registry.add(1, id);
    benchmark::DoNotOptimize(token);
    registry.erase(1, id);
  }
}
BENCHMARK(bm_cancel_registry_cycle);

}  // namespace

int main(int argc, char** argv) {
  // Strip --json before benchmark::Initialize (it aborts on unknown
  // flags); --csv is handled by apply_csv_flag below.
  std::string json_path;
  for (int i = 1; i + 1 < argc;) {
    if (std::string_view(argv[i]) != "--json") {
      ++i;
      continue;
    }
    json_path = argv[i + 1];
    for (int j = i; j + 2 < argc; ++j) argv[j] = argv[j + 2];
    argc -= 2;
  }
  std::cout << "QOS BENCHMARKS\n"
            << "(one live QueryEngine under paced offered load; every "
               "number includes queueing, admission control and the "
               "worker pool)\n\n";
  const bool invariants_ok = print_artifact(json_path);
  mpct::bench::apply_csv_flag(&argc, argv);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return invariants_ok ? 0 : 1;
}
