/// Regenerates Figure 1 — "Research Trends in Parallel Computing",
/// publications per topic per year 1995-2010 — from the synthetic corpus
/// substitute for the IEEE database, and benchmarks the query engine.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"

#include <iostream>

#include "bibliometrics/corpus.hpp"
#include "bibliometrics/query.hpp"
#include "bibliometrics/trends.hpp"
#include "report/chart.hpp"
#include "report/csv.hpp"

namespace {

using namespace mpct;
using namespace mpct::biblio;

void print_fig1() {
  const Corpus corpus = Corpus::standard();
  const QueryEngine engine(corpus);
  const auto trends = research_trends(engine);

  std::cout << "FIGURE 1: RESEARCH TRENDS IN PARALLEL COMPUTING\n"
            << "(synthetic corpus substitute for the IEEE database: "
            << corpus.size() << " records, seed "
            << corpus.params().seed << ")\n\n";

  std::vector<std::string> labels;
  for (int year = engine.first_year(); year <= engine.last_year(); ++year) {
    labels.push_back(std::to_string(year));
  }
  std::vector<report::Series> series;
  for (const TrendSeries& t : trends) {
    report::Series s;
    s.name = t.topic;
    s.values.assign(t.counts.begin(), t.counts.end());
    series.push_back(std::move(s));
  }
  std::cout << render_line_chart(labels, series) << "\n";

  report::CsvWriter csv;
  {
    std::vector<std::string> header{"year"};
    for (const TrendSeries& t : trends) header.push_back(t.topic);
    csv.add_row(header);
  }
  for (std::size_t i = 0; i < labels.size(); ++i) {
    std::vector<std::string> row{labels[i]};
    for (const TrendSeries& t : trends) {
      row.push_back(std::to_string(t.counts[i]));
    }
    csv.add_row(row);
  }
  std::cout << "CSV:\n" << csv.str() << "\n";

  std::cout << "take-off analysis (pivot 2005, the paper's 'last five "
               "years'):\n";
  for (const TrendSeries& t : trends) {
    std::cout << "  " << t.topic << ": slope before = "
              << average_slope(t, 1995, 2005) << "/yr, after = "
              << average_slope(t, 2005, 2010) << "/yr"
              << (took_off(t, 2005) ? "  [took off]" : "") << "\n";
  }
  std::cout << "\n";
}

void bm_build_corpus(benchmark::State& state) {
  for (auto _ : state) {
    Corpus corpus = Corpus::standard(static_cast<std::uint64_t>(
        state.iterations()));
    benchmark::DoNotOptimize(corpus.size());
  }
}
BENCHMARK(bm_build_corpus)->Unit(benchmark::kMillisecond);

void bm_index_corpus(benchmark::State& state) {
  const Corpus corpus = Corpus::standard();
  for (auto _ : state) {
    QueryEngine engine(corpus);
    benchmark::DoNotOptimize(engine.total("parallel"));
  }
}
BENCHMARK(bm_index_corpus)->Unit(benchmark::kMillisecond);

void bm_yearly_counts(benchmark::State& state) {
  const Corpus corpus = Corpus::standard();
  const QueryEngine engine(corpus);
  for (auto _ : state) {
    for (const TopicModel& topic : default_topics()) {
      auto counts = engine.yearly_counts(topic.keyword);
      benchmark::DoNotOptimize(counts);
    }
  }
}
BENCHMARK(bm_yearly_counts);

void bm_conjunctive_query(benchmark::State& state) {
  const Corpus corpus = Corpus::standard();
  const QueryEngine engine(corpus);
  for (auto _ : state) {
    int count = engine.count_all_of({"fpga", "parallel"}, 2008);
    benchmark::DoNotOptimize(count);
  }
}
BENCHMARK(bm_conjunctive_query);

}  // namespace

int main(int argc, char** argv) {
  print_fig1();
  mpct::bench::apply_csv_flag(&argc, argv);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
