/// Design-space sweep benchmarks + the repo's benchmark baseline
/// artifact.
///
/// Artifact: a CSV summary (classify fast-path ns/op vs the pre-index
/// baseline; sweep throughput vs thread count) printed first, and —
/// with `--json <path>` — the same numbers as JSON in the BENCH_sweep
/// format committed at the repo root (see docs/PERF.md for how the
/// baseline block was measured and how to regenerate).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "core/classifier.hpp"
#include "core/taxonomy_index.hpp"
#include "cost/area_model.hpp"
#include "cost/config_bits.hpp"
#include "cost/cost_plan.hpp"
#include "cost/cost_plan_set.hpp"
#include "explore/recommend.hpp"
#include "explore/sweep.hpp"
#include "report/csv.hpp"
#include "service/service.hpp"

namespace {

using namespace mpct;

// Pre-index baseline, measured at commit 08a248c (Release, same
// harness): the single-point op was classify() + to_string(name) +
// flexibility_score(), i.e. rule walk + name render + per-call scoring.
constexpr int kProbeSerials[] = {1, 8, 22, 40, 47};
constexpr double kBaselineSinglePointNs[] = {10.6, 31.3, 39.4, 29.0, 7.32};
constexpr double kBaselineClassifyNs[] = {4.13, 3.00, 3.91, 3.62, 1.68};

// Hard regression floor for single-thread sweep throughput, enforced by
// bench/check_regression.py against the "floors" block this binary
// emits: 5x the scalar-path baseline committed before the batch-kernel
// rewrite (sweep_cells_per_s.threads_0 = 2.76e5 at commit 586f006).
constexpr double kSweepCellsPerSFloor = 1.38e6;

/// ns/op of @p fn via a fixed-count timed loop, minimum over 7 runs —
/// scheduler noise on a shared machine is strictly additive, so the
/// minimum is the robust estimator for a deterministic micro-op.  The
/// artifact needs numbers available in-process, which the registered
/// google-benchmark timings below are not.
template <typename Fn>
double measure_ns(Fn&& fn, std::size_t iterations) {
  double best = 0;
  for (int run = 0; run < 7; ++run) {
    const auto start = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < iterations; ++i) fn();
    const auto elapsed = std::chrono::steady_clock::now() - start;
    const double ns =
        std::chrono::duration<double, std::nano>(elapsed).count() /
        static_cast<double>(iterations);
    if (run == 0 || ns < best) best = ns;
  }
  return best;
}

/// The post-index single-point op: one table load + two field reads.
double current_single_point_ns(int serial) {
  const TaxonomyIndex& index = taxonomy_index();
  const MachineClass mc = index.by_serial(serial)->machine;
  return measure_ns(
      [&] {
        MachineClass probe = mc;
        benchmark::DoNotOptimize(probe);
        const TaxonomyIndex::FastClassification fast = index.classify(probe);
        std::string_view name =
            fast.info ? fast.info->interned_name : fast.note;
        const int flexibility = fast.info ? fast.info->flexibility : -1;
        benchmark::DoNotOptimize(name);
        benchmark::DoNotOptimize(flexibility);
      },
      1u << 16);
}

double current_classify_ns(int serial) {
  const MachineClass mc = taxonomy_index().by_serial(serial)->machine;
  return measure_ns(
      [&] {
        MachineClass probe = mc;
        benchmark::DoNotOptimize(probe);
        Classification result = classify(probe);
        benchmark::DoNotOptimize(result);
      },
      1u << 15);
}

explore::SweepGrid scaling_grid() {
  explore::SweepGrid grid;
  grid.base.min_flexibility = 0;
  for (std::int64_t n = 2; n <= 128; n += 2) grid.n_values.push_back(n);
  for (std::int64_t v = 64; v <= 65536; v *= 2) grid.lut_budgets.push_back(v);
  grid.objectives = {explore::Requirements::Objective::MinConfigBits,
                     explore::Requirements::Objective::MinArea};
  return grid;  // 64 * 11 * 2 = 1408 cells
}

struct ScalingRow {
  unsigned threads = 0;
  double cells_per_s = 0;
  double speedup = 1;
};

std::vector<ScalingRow> measure_scaling() {
  const explore::SweepGrid grid = scaling_grid();
  const double cells = static_cast<double>(grid.cell_count());
  std::vector<ScalingRow> rows;
  double sequential_s = 0;
  for (unsigned threads : {0u, 1u, 2u, 4u}) {
    std::vector<double> runs;
    for (int run = 0; run < 3; ++run) {
      const auto start = std::chrono::steady_clock::now();
      explore::SweepResult result = explore::sweep(
          grid, cost::ComponentLibrary::default_library(), threads);
      benchmark::DoNotOptimize(result);
      runs.push_back(std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - start)
                         .count());
    }
    std::sort(runs.begin(), runs.end());
    const double seconds = runs[runs.size() / 2];
    if (threads == 0) sequential_s = seconds;
    rows.push_back(
        {threads, cells / seconds, threads == 0 ? 1 : sequential_s / seconds});
  }
  return rows;
}

/// Per-cell time split of the batch sweep path.  `total` and `decode`
/// and `evaluate` are measured; `reduce` is the remainder — the
/// winner-fold cannot be timed in isolation through the public API, but
/// total = decode + evaluate + reduce by construction of the kernel
/// (see docs/PERF.md).
struct StageBreakdown {
  double decode_ns = 0;
  double evaluate_ns = 0;
  double reduce_ns = 0;
  double total_ns = 0;
};

StageBreakdown measure_stages() {
  const explore::SweepGrid grid = scaling_grid().normalized();
  const explore::SweepEvaluator evaluator(grid);
  const std::size_t cells = evaluator.cell_count();
  const double cells_d = static_cast<double>(cells);
  StageBreakdown stages;

  // Total: the batch path end to end, single thread.
  std::vector<explore::SweepPoint> points(cells);
  stages.total_ns = measure_ns(
                        [&] {
                          evaluator.evaluate_range(0, cells, points.data());
                          benchmark::DoNotOptimize(points.data());
                        },
                        4) /
                    cells_d;

  // Decode: flat cell index -> (ni, li, oi), once per cell.
  const std::size_t row = evaluator.row_cells();
  const std::size_t o_count = grid.objectives.size();
  stages.decode_ns = measure_ns(
                         [&] {
                           std::size_t acc = 0;
                           for (std::size_t i = 0; i < cells; ++i) {
                             const std::size_t ni = i / row;
                             const std::size_t rest = i - ni * row;
                             const std::size_t li = rest / o_count;
                             acc += ni + li + (rest - li * o_count);
                           }
                           benchmark::DoNotOptimize(acc);
                         },
                         16) /
                     cells_d;

  // Evaluate: replay exactly the kernel's CostPlanSet calls — the
  // scaling grid's min_flexibility 0 admits every named taxonomy row,
  // so this is the same candidate set the evaluator built; v-dependent
  // plans price every (n, v) lane, v-independent ones once per row.
  const cost::ComponentLibrary lib = cost::ComponentLibrary::default_library();
  cost::CostPlanSet plans;
  std::vector<std::size_t> v_dep, v_indep;
  for (const TaxonomyIndex::ClassInfo& taxon : taxonomy_index().rows()) {
    if (!taxon.named) continue;
    const std::size_t p = plans.size();
    plans.add(taxon.machine, lib);
    (plans.depends_v(p) ? v_dep : v_indep).push_back(p);
  }
  std::vector<cost::CostPoint> lane(grid.lut_budgets.size());
  stages.evaluate_ns =
      measure_ns(
          [&] {
            for (const std::int64_t n : grid.n_values) {
              for (const std::size_t p : v_indep) {
                cost::CostPoint point =
                    plans.evaluate(p, n, grid.lut_budgets[0]);
                benchmark::DoNotOptimize(point);
              }
              for (const std::size_t p : v_dep) {
                plans.evaluate_row(p, n, grid.lut_budgets, lane.data());
                benchmark::DoNotOptimize(lane.data());
              }
            }
          },
          4) /
      cells_d;
  stages.reduce_ns = std::max(
      0.0, stages.total_ns - stages.evaluate_ns - stages.decode_ns);
  return stages;
}

double measure_engine_sweep_s() {
  service::EngineOptions options;
  options.worker_threads = 4;
  options.enable_cache = false;  // measure execution, not the cache
  service::QueryEngine engine(options);
  const explore::SweepGrid grid = scaling_grid();
  std::vector<double> runs;
  for (int run = 0; run < 3; ++run) {
    const auto start = std::chrono::steady_clock::now();
    service::QueryResponse response =
        engine.submit(service::SweepRequest{grid}).get();
    benchmark::DoNotOptimize(response);
    runs.push_back(std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start)
                       .count());
  }
  std::sort(runs.begin(), runs.end());
  return runs[runs.size() / 2];
}

std::string fmt(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.3g", value);
  return buffer;
}

/// Prints the artifact CSV and, when @p json_path is non-empty, writes
/// the BENCH_sweep JSON (baseline block + freshly measured numbers).
void print_artifact(const std::string& json_path) {
  report::CsvWriter classify_csv;
  classify_csv.add_row({"serial", "baseline_classify_ns", "classify_ns",
                        "baseline_single_point_ns", "single_point_ns",
                        "speedup"});
  std::vector<double> classify_ns, single_point_ns;
  for (std::size_t i = 0; i < std::size(kProbeSerials); ++i) {
    classify_ns.push_back(current_classify_ns(kProbeSerials[i]));
    single_point_ns.push_back(current_single_point_ns(kProbeSerials[i]));
    classify_csv.add_row({std::to_string(kProbeSerials[i]),
                          fmt(kBaselineClassifyNs[i]), fmt(classify_ns[i]),
                          fmt(kBaselineSinglePointNs[i]),
                          fmt(single_point_ns[i]),
                          fmt(kBaselineSinglePointNs[i] / single_point_ns[i])});
  }
  std::cout << "# classify fast path: ns/op vs pre-index baseline (08a248c)\n"
            << classify_csv.str() << "\n";

  const std::vector<ScalingRow> scaling = measure_scaling();
  const StageBreakdown stages = measure_stages();
  const double engine_s = measure_engine_sweep_s();
  const double cells = static_cast<double>(scaling_grid().cell_count());
  report::CsvWriter scaling_csv;
  scaling_csv.add_row({"threads", "cells_per_s", "speedup_vs_sequential"});
  for (const ScalingRow& row : scaling) {
    scaling_csv.add_row({std::to_string(row.threads), fmt(row.cells_per_s),
                         fmt(row.speedup)});
  }
  scaling_csv.add_row({"engine(4 workers)", fmt(cells / engine_s),
                       fmt(scaling[0].cells_per_s > 0
                               ? (cells / engine_s) / scaling[0].cells_per_s
                               : 0)});
  std::cout << "# sweep scaling: 1408-cell grid, library sweep() + engine "
               "SweepRequest\n"
            << scaling_csv.str() << "\n";

  report::CsvWriter stage_csv;
  stage_csv.add_row({"stage", "ns_per_cell"});
  stage_csv.add_row({"decode", fmt(stages.decode_ns)});
  stage_csv.add_row({"evaluate", fmt(stages.evaluate_ns)});
  stage_csv.add_row({"reduce", fmt(stages.reduce_ns)});
  stage_csv.add_row({"total", fmt(stages.total_ns)});
  std::cout << "# batch kernel per-cell stage breakdown (single thread)\n"
            << stage_csv.str() << "\n";

  // Monotone-scaling gate: with the worker pool clamped to
  // hardware_concurrency, asking for the most threads must never run
  // slower than one thread (the regression this PR removes).  10% noise
  // guard for shared CI machines.
  const double single_thread = scaling[0].cells_per_s;
  const double clamped_max = scaling.back().cells_per_s;
  if (clamped_max < 0.9 * single_thread) {
    std::cerr << "FAIL: sweep at the clamped max thread count ("
              << fmt(clamped_max) << " cells/s) fell below the "
              << "single-thread figure (" << fmt(single_thread)
              << " cells/s)\n";
    std::exit(1);
  }

  if (json_path.empty()) return;
  std::ofstream out(json_path);
  out << "{\n"
      << "  \"bench\": \"bench_sweep\",\n"
      << "  \"host_cpus\": " << std::thread::hardware_concurrency()
      << ",\n"
      << "  \"op\": \"classify + rendered name + flexibility (single "
         "design point)\",\n"
      << "  \"baseline\": {\n"
      << "    \"commit\": \"08a248c\",\n"
      << "    \"serials\": [1, 8, 22, 40, 47],\n"
      << "    \"classify_ns\": [4.13, 3.00, 3.91, 3.62, 1.68],\n"
      << "    \"single_point_ns\": [10.6, 31.3, 39.4, 29.0, 7.32]\n"
      << "  },\n"
      << "  \"current\": {\n"
      << "    \"classify_ns\": [" << fmt(classify_ns[0]);
  for (std::size_t i = 1; i < classify_ns.size(); ++i) {
    out << ", " << fmt(classify_ns[i]);
  }
  out << "],\n    \"single_point_ns\": [" << fmt(single_point_ns[0]);
  for (std::size_t i = 1; i < single_point_ns.size(); ++i) {
    out << ", " << fmt(single_point_ns[i]);
  }
  out << "],\n    \"sweep_grid_cells\": " << static_cast<long>(cells)
      << ",\n    \"sweep_cells_per_s\": {";
  for (std::size_t i = 0; i < scaling.size(); ++i) {
    out << (i ? ", " : "") << "\"threads_" << scaling[i].threads
        << "\": " << fmt(scaling[i].cells_per_s);
  }
  out << "},\n    \"sweep_speedup\": {";
  for (std::size_t i = 0; i < scaling.size(); ++i) {
    out << (i ? ", " : "") << "\"threads_" << scaling[i].threads
        << "\": " << fmt(scaling[i].speedup);
  }
  out << "},\n    \"sweep_stage_ns_per_cell\": {\"decode\": "
      << fmt(stages.decode_ns) << ", \"evaluate\": " << fmt(stages.evaluate_ns)
      << ", \"reduce\": " << fmt(stages.reduce_ns)
      << ", \"total\": " << fmt(stages.total_ns) << "}";
  out << ",\n    \"engine_sweep_cells_per_s\": " << fmt(cells / engine_s)
      << "\n  },\n"
      << "  \"floors\": {\n"
      << "    \"sweep_cells_per_s.threads_0\": " << fmt(kSweepCellsPerSFloor)
      << "\n  }\n}\n";
  std::cout << "JSON written to " << json_path << "\n\n";
}

// ---------------------------------------------------------------------------
// Registered microbenchmarks.

void bm_classify_fast(benchmark::State& state) {
  const MachineClass mc =
      taxonomy_index().by_serial(static_cast<int>(state.range(0)))->machine;
  for (auto _ : state) {
    MachineClass probe = mc;
    benchmark::DoNotOptimize(probe);
    TaxonomyIndex::FastClassification fast = classify_fast(probe);
    benchmark::DoNotOptimize(fast);
  }
}
BENCHMARK(bm_classify_fast)->Arg(1)->Arg(22)->Arg(47);

void bm_cost_plan_evaluate(benchmark::State& state) {
  const MachineClass mc = taxonomy_index().by_serial(22)->machine;
  const cost::CostPlan plan(mc, cost::ComponentLibrary::default_library());
  std::int64_t n = 1;
  for (auto _ : state) {
    cost::CostPoint point = plan.evaluate(n, 1024);
    benchmark::DoNotOptimize(point);
    n = (n % 64) + 1;
  }
}
BENCHMARK(bm_cost_plan_evaluate);

void bm_estimate_pair(benchmark::State& state) {
  const MachineClass mc = taxonomy_index().by_serial(22)->machine;
  const cost::ComponentLibrary lib = cost::ComponentLibrary::default_library();
  cost::EstimateOptions options;
  for (auto _ : state) {
    double area = cost::estimate_area(mc, lib, options).total_kge();
    std::int64_t bits = cost::estimate_config_bits(mc, lib, options).total();
    benchmark::DoNotOptimize(area);
    benchmark::DoNotOptimize(bits);
    options.n = (options.n % 64) + 1;
    options.m = options.n;
  }
}
BENCHMARK(bm_estimate_pair);

void bm_recommend(benchmark::State& state) {
  explore::Requirements req;
  req.min_flexibility = static_cast<int>(state.range(0));
  for (auto _ : state) {
    std::vector<explore::Recommendation> recs = explore::recommend(req);
    benchmark::DoNotOptimize(recs);
  }
}
BENCHMARK(bm_recommend)->ArgName("min_flex")->Arg(0)->Arg(6);

void bm_sweep(benchmark::State& state) {
  const explore::SweepGrid grid = scaling_grid();
  const auto threads = static_cast<unsigned>(state.range(0));
  for (auto _ : state) {
    explore::SweepResult result = explore::sweep(
        grid, cost::ComponentLibrary::default_library(), threads);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(grid.cell_count()));
}
BENCHMARK(bm_sweep)
    ->ArgName("threads")
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void bm_engine_sweep(benchmark::State& state) {
  service::EngineOptions options;
  options.worker_threads = static_cast<unsigned>(state.range(0));
  options.enable_cache = false;
  service::QueryEngine engine(options);
  const explore::SweepGrid grid = scaling_grid();
  for (auto _ : state) {
    service::QueryResponse response =
        engine.submit(service::SweepRequest{grid}).get();
    benchmark::DoNotOptimize(response);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(grid.cell_count()));
}
BENCHMARK(bm_engine_sweep)
    ->ArgName("workers")
    ->Arg(2)
    ->Arg(4)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  // Strip the artifact flag (--json <path>) before benchmark::Initialize.
  std::string json_path;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string_view(argv[i]) == "--json") {
      json_path = argv[i + 1];
      for (int j = i; j + 2 < argc; ++j) argv[j] = argv[j + 2];
      argc -= 2;
      break;
    }
  }
  std::cout << "DESIGN-SPACE SWEEP BENCHMARKS\n"
            << "(zero-allocation classify fast path, memoized cost plans, "
               "parallel Pareto sweep)\n\n";
  print_artifact(json_path);
  mpct::bench::apply_csv_flag(&argc, argv);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
