#pragma once

/// Shared plumbing for the bench binaries.
///
/// Every bench in bench/ honors a common `--csv <path>` flag: the timing
/// results google-benchmark reports on stdout are also written to
/// <path> as CSV (machine-readable; CI uploads these as artifacts).
/// Call apply_csv_flag(&argc, argv) in main() BEFORE
/// benchmark::Initialize — Initialize aborts on flags it does not know.

#include <cstring>
#include <iostream>
#include <string>
#include <string_view>
#include <vector>

namespace mpct::bench {

/// Rewrites the two-token `--csv <path>` into google-benchmark's own
/// `--benchmark_out=<path> --benchmark_out_format=csv` pair in place
/// (same argument count, so argv never grows).  No-op when the flag is
/// absent; the rewritten strings outlive Initialize via static storage.
inline void apply_csv_flag(int* argc, char** argv) {
  static std::vector<std::string> storage;
  for (int i = 1; i + 1 < *argc; ++i) {
    if (std::string_view(argv[i]) != "--csv") continue;
    storage.push_back(std::string("--benchmark_out=") + argv[i + 1]);
    storage.push_back("--benchmark_out_format=csv");
    argv[i] = storage[storage.size() - 2].data();
    argv[i + 1] = storage.back().data();
    return;
  }
  // A trailing `--csv` with no path would otherwise reach
  // benchmark::Initialize and abort with its own flag error; say why.
  if (*argc >= 2 && std::string_view(argv[*argc - 1]) == "--csv") {
    std::cerr << "warning: --csv requires a path argument; ignoring\n";
    --*argc;
  }
}

}  // namespace mpct::bench
