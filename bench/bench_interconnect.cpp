/// Microbenchmarks of the interconnect substrate: crossbar vs bus vs
/// windowed vs hierarchical programming/propagation, and mesh NoC
/// simulation throughput under the standard traffic patterns.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"

#include <iostream>

#include "interconnect/benes.hpp"
#include "interconnect/bus.hpp"
#include "interconnect/crossbar.hpp"
#include "interconnect/hierarchical.hpp"
#include "interconnect/mesh_noc.hpp"
#include "interconnect/neighbor.hpp"
#include "interconnect/traffic.hpp"

namespace {

using namespace mpct::interconnect;

void bm_crossbar_program(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Crossbar xbar(n, n);
  for (auto _ : state) {
    for (PortId p = 0; p < n; ++p) {
      xbar.connect((p + 1) % n, p);
    }
    benchmark::DoNotOptimize(xbar.source_of(0));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(bm_crossbar_program)->RangeMultiplier(4)->Range(4, 256);

void bm_crossbar_propagate(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Crossbar xbar(n, n);
  for (PortId p = 0; p < n; ++p) xbar.connect((p + 1) % n, p);
  std::vector<std::uint64_t> inputs(static_cast<std::size_t>(n), 42);
  for (auto _ : state) {
    auto outputs = xbar.propagate(inputs);
    benchmark::DoNotOptimize(outputs);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(bm_crossbar_propagate)->RangeMultiplier(4)->Range(4, 256);

void bm_crossbar_bitstream(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Crossbar xbar(n, n);
  for (PortId p = 0; p < n; ++p) xbar.connect((p + 1) % n, p);
  for (auto _ : state) {
    auto bits = xbar.bitstream();
    bool ok = xbar.load_bitstream(bits);
    benchmark::DoNotOptimize(ok);
  }
}
BENCHMARK(bm_crossbar_bitstream)->Arg(64)->Arg(256);

void bm_bus_program(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  BusNetwork bus(n, n, 4);
  for (auto _ : state) {
    bus.reset();
    int routed = 0;
    for (PortId p = 0; p < n; ++p) {
      if (bus.connect(p % 4, p)) ++routed;
    }
    benchmark::DoNotOptimize(routed);
  }
}
BENCHMARK(bm_bus_program)->Arg(16)->Arg(64);

void bm_neighbor_program(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  NeighborNetwork net(n, 3, true);
  for (auto _ : state) {
    for (PortId p = 0; p < n; ++p) {
      net.connect((p + 1) % n, p);
    }
    benchmark::DoNotOptimize(net.source_of(0));
  }
}
BENCHMARK(bm_neighbor_program)->Arg(64)->Arg(256);

void bm_hierarchical_program(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  HierarchicalNetwork net(n, 8, 2);
  for (auto _ : state) {
    net.reset();
    int routed = 0;
    for (PortId p = 0; p < n; ++p) {
      if (net.connect((p + 8) % n, p)) ++routed;
    }
    benchmark::DoNotOptimize(routed);
  }
}
BENCHMARK(bm_hierarchical_program)->Arg(48)->Arg(128);

void bm_benes_permutation(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  BenesNetwork benes(n);
  std::vector<int> shift(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    shift[static_cast<std::size_t>(i)] = (i + 5) % n;
  }
  for (auto _ : state) {
    benes.route_permutation(shift);
    benchmark::DoNotOptimize(benes.source_of(0));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(bm_benes_permutation)->Arg(16)->Arg(64)->Arg(256);

void bm_mesh_uniform(benchmark::State& state) {
  const int side = static_cast<int>(state.range(0));
  MeshNoc mesh(side, side);
  TrafficParams params{.cycles = 200, .rate = 0.05, .seed = 7};
  const auto base = uniform_traffic(mesh, params);
  for (auto _ : state) {
    auto packets = base;
    auto stats = mesh.simulate(packets);
    benchmark::DoNotOptimize(stats);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(base.size()));
}
BENCHMARK(bm_mesh_uniform)->Arg(4)->Arg(8)->Arg(16)
    ->Unit(benchmark::kMillisecond);

void bm_mesh_transpose(benchmark::State& state) {
  MeshNoc mesh(8, 8);
  TrafficParams params{.cycles = 200, .rate = 0.05, .seed = 7};
  const auto base = transpose_traffic(mesh, params);
  for (auto _ : state) {
    auto packets = base;
    auto stats = mesh.simulate(packets);
    benchmark::DoNotOptimize(stats);
  }
}
BENCHMARK(bm_mesh_transpose)->Unit(benchmark::kMillisecond);

void print_latency_comparison() {
  std::cout << "INTERCONNECT LATENCY/BLOCKING COMPARISON (64 elements)\n"
            << "  model                      reach    routed-of-64  "
               "config-bits\n";
  const int n = 64;
  Crossbar xbar(n, n);
  BusNetwork bus(n, n, 4);
  NeighborNetwork win(n, 3, true);
  HierarchicalNetwork hier(n, 8, 2);
  const auto attempt = [&](Network& net, const char* name) {
    net.reset();
    int routed = 0;
    for (PortId p = 0; p < n; ++p) {
      if (net.connect((p + 17) % n, p)) ++routed;  // long-range pattern
    }
    std::cout << "  " << name << routed << "\t\t" << net.config_bits()
              << "\n";
  };
  attempt(xbar, "crossbar 64x64\t\tall      ");
  attempt(bus, "bus (4 buses)\t\tall      ");
  attempt(win, "window +-3 (torus)\t7-hood   ");
  attempt(hier, "hierarchy 8x8+2\t\tall      ");
  std::cout << "(the flexibility/overhead trade-off of Section III, in "
               "executable form)\n\n";
}

}  // namespace

int main(int argc, char** argv) {
  print_latency_comparison();
  mpct::bench::apply_csv_flag(&argc, argv);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
