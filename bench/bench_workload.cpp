/// Workload-runner benchmarks: the same stencil5 Jacobi kernel lowered
/// onto every runnable paradigm, plus SimulateRequest round trips over
/// loopback TCP.
///
/// The artifact prints first (machine -> cycles, wall us, simulated
/// cycles/s; then the TCP req/s cell), followed by google-benchmark
/// timings.  Flags:
///   --csv <path>    timing results as CSV (bench_util.hpp)
///   --json <path>   write the artifact as BENCH_workload JSON
#include <benchmark/benchmark.h>

#include "bench_util.hpp"

#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "core/classifier.hpp"
#include "core/naming.hpp"
#include "net/net.hpp"
#include "report/csv.hpp"
#include "service/service.hpp"
#include "workload/runner.hpp"

namespace {

using namespace mpct;

/// The per-paradigm machine list of docs/WORKLOAD.md.
const std::vector<std::string> kMachines = {
    "IUP", "IAP-III", "IMP-IV", "DUP", "DMP-II", "ISP-II", "USP",
};

workload::WorkloadSpec stencil_spec() {
  workload::WorkloadSpec spec;
  spec.kernel = workload::Kernel::Stencil5;
  spec.size = 8;
  spec.iterations = 4;
  return spec;
}

std::string fmt(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.4g", value);
  return buffer;
}

/// "IAP-III" -> "IAP_III": JSON keys check_regression.py can pair up.
std::string key_of(const std::string& machine) {
  std::string key = machine;
  for (char& c : key) {
    if (c == '-') c = '_';
  }
  return key;
}

struct MachineResult {
  std::string machine;
  std::int64_t cycles = 0;
  double wall_us = 0;
  double sim_cycles_per_s = 0;
};

struct TcpResult {
  double req_per_s = 0;
  std::size_t requests = 0;
};

MachineResult run_machine(const std::string& machine) {
  const TaxonomicName name = *parse_taxonomic_name(machine);
  const workload::WorkloadSpec spec = stencil_spec();
  // One warm-up run, then time a small fixed batch: the runner is
  // deterministic, so every repetition does identical work.
  workload::WorkloadResult result = workload::run_workload(spec, name);
  constexpr int kRepetitions = 10;
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < kRepetitions; ++i) {
    result = workload::run_workload(spec, name);
    benchmark::DoNotOptimize(result);
  }
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  MachineResult out;
  out.machine = machine;
  out.cycles = result.cycles;
  out.wall_us = seconds * 1e6 / kRepetitions;
  out.sim_cycles_per_s =
      static_cast<double>(result.cycles) * kRepetitions / seconds;
  return out;
}

/// SimulateRequest round trips over loopback TCP against a live server;
/// every request uses a fresh seed so the fingerprint cache never hits
/// and each trip simulates for real.
TcpResult run_tcp_cell() {
  service::EngineOptions engine_options;
  engine_options.worker_threads = 2;
  service::QueryEngine engine(engine_options);
  net::Server server(engine);
  TcpResult out;
  if (!server.start()) {
    std::cerr << "bench_workload: " << server.error() << "\n";
    return out;
  }
  net::ClientOptions options;
  options.port = server.port();
  net::Client client(options);

  service::SimulateRequest request;
  request.workload = stencil_spec();
  request.target = *canonical_class(*parse_taxonomic_name("IMP-IV"));
  request.options.width = 4;

  constexpr std::size_t kRequests = 64;
  request.seed = 1'000'000;  // warm the connection, not the cache
  if (!client.call(request).ok()) {
    std::cerr << "bench_workload: warm-up round trip failed\n";
    server.stop();
    return out;
  }
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < kRequests; ++i) {
    request.seed = i + 1;
    const service::QueryResponse response = client.call(request);
    if (!response.ok()) {
      std::cerr << "bench_workload: round trip " << i << " failed: "
                << response.status.to_string() << "\n";
      server.stop();
      return out;
    }
  }
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  client.disconnect();
  server.stop();
  out.requests = kRequests;
  out.req_per_s = static_cast<double>(kRequests) / seconds;
  return out;
}

void print_artifact(const std::vector<MachineResult>& machines,
                    const TcpResult& tcp, const std::string& json_path) {
  report::CsvWriter csv;
  csv.add_row({"machine", "cycles", "wall_us", "sim_cycles_per_s"});
  for (const MachineResult& m : machines) {
    csv.add_row({m.machine, std::to_string(m.cycles), fmt(m.wall_us),
                 fmt(m.sim_cycles_per_s)});
  }
  std::cout << "# stencil5 8x8x4 per paradigm (simulated cycles are exact "
               "and deterministic; wall time is this host)\n"
            << csv.str() << "\n"
            << "# SimulateRequest over loopback TCP (cache-miss, 2-worker "
               "engine): "
            << fmt(tcp.req_per_s) << " req/s\n\n";

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << "{\n"
        << "  \"bench\": \"bench_workload\",\n"
        << "  \"host_cpus\": " << std::thread::hardware_concurrency() << ",\n"
        << "  \"op\": \"stencil5 8x8x4 lowered onto every paradigm "
           "(deterministic simulated cycles, host sim cycles/s) plus "
           "cache-miss SimulateRequest round trips over loopback TCP\",\n"
        << "  \"current\": {\n";
    for (const MachineResult& m : machines) {
      out << "    \"cycles_" << key_of(m.machine) << "\": " << m.cycles
          << ",\n"
          << "    \"sim_cycles_per_s_" << key_of(m.machine)
          << "\": " << fmt(m.sim_cycles_per_s) << ",\n";
    }
    out << "    \"req_per_s_tcp\": " << fmt(tcp.req_per_s) << "\n"
        << "  }\n}\n";
    std::cout << "JSON written to " << json_path << "\n\n";
  }
}

// ---------------------------------------------------------------------------
// Registered microbenchmarks: one full run per paradigm family, the
// lowering alone, and the live TCP round trip.

void bm_run_stencil(benchmark::State& state, const char* machine) {
  const TaxonomicName name = *parse_taxonomic_name(machine);
  const workload::WorkloadSpec spec = stencil_spec();
  for (auto _ : state) {
    workload::WorkloadResult result = workload::run_workload(spec, name);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK_CAPTURE(bm_run_stencil, uniprocessor, "IUP")
    ->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(bm_run_stencil, simd, "IAP-III")
    ->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(bm_run_stencil, mesh_mimd, "IMP-IV")
    ->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(bm_run_stencil, dataflow, "DMP-II")
    ->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(bm_run_stencil, cgra, "USP")
    ->Unit(benchmark::kMicrosecond);

void bm_lower_stencil_mimd(benchmark::State& state) {
  const workload::WorkloadSpec spec = stencil_spec();
  for (auto _ : state) {
    std::vector<std::string> programs =
        workload::multiprocessor_programs(spec, 4);
    benchmark::DoNotOptimize(programs);
  }
}
BENCHMARK(bm_lower_stencil_mimd);

void bm_simulate_round_trip(benchmark::State& state) {
  service::EngineOptions engine_options;
  engine_options.worker_threads = 2;
  service::QueryEngine engine(engine_options);
  net::Server server(engine);
  if (!server.start()) {
    state.SkipWithError(server.error().c_str());
    return;
  }
  net::ClientOptions options;
  options.port = server.port();
  net::Client client(options);
  service::SimulateRequest request;
  request.workload = stencil_spec();
  request.target = *canonical_class(*parse_taxonomic_name("IMP-IV"));
  request.options.width = 4;
  std::uint64_t seed = 0;
  for (auto _ : state) {
    request.seed = ++seed;  // cache-miss every iteration
    service::QueryResponse response = client.call(request);
    benchmark::DoNotOptimize(response);
  }
  client.disconnect();
  server.stop();
}
BENCHMARK(bm_simulate_round_trip)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  // Strip --json before benchmark::Initialize (it aborts on unknown
  // flags); --csv is handled by apply_csv_flag below.
  std::string json_path;
  for (int i = 1; i + 1 < argc;) {
    if (std::string_view(argv[i]) != "--json") {
      ++i;
      continue;
    }
    json_path = argv[i + 1];
    for (int j = i; j + 2 < argc; ++j) argv[j] = argv[j + 2];
    argc -= 2;
  }
  std::cout << "WORKLOAD BENCHMARKS\n"
            << "(one kernel, five paradigms: identical output checksums, "
               "very different cycle counts)\n\n";
  std::vector<MachineResult> machines;
  for (const std::string& machine : kMachines) {
    machines.push_back(run_machine(machine));
  }
  print_artifact(machines, run_tcp_cell(), json_path);
  mpct::bench::apply_csv_flag(&argc, argv);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
