/// Network-layer benchmarks: loopback throughput and tail latency.
///
/// Artifact: a CSV matrix (requests/s and p99 round-trip latency for
/// every connections x pipeline-depth cell) printed first, measured
/// against a real net::Server on 127.0.0.1 — kernel sockets, framing,
/// encode/decode and the engine all included.  Depth 1 is the classic
/// request/response ping-pong; deeper cells pipeline whole batches on
/// one connection, which is where the wire format earns its keep.
///
/// Flags (both stripped before benchmark::Initialize):
///   --csv <path>    also write google-benchmark timings as CSV
///   --json <path>   write the matrix as BENCH_net JSON
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "arch/registry.hpp"
#include "bench_util.hpp"
#include "net/net.hpp"
#include "report/csv.hpp"
#include "service/service.hpp"
#include "wire/wire.hpp"

namespace {

using namespace mpct;

/// One matrix cell: @p connections clients, each pipelining batches of
/// @p depth classify requests until the cell total is reached.
struct CellResult {
  int connections = 0;
  int depth = 0;
  double req_per_s = 0;
  double p99_us = 0;
};

std::vector<service::Request> make_batch(int depth) {
  const auto& survey = arch::surveyed_architectures();
  std::vector<service::Request> batch;
  batch.reserve(static_cast<std::size_t>(depth));
  for (int i = 0; i < depth; ++i) {
    batch.push_back(service::ClassifyRequest::of(
        survey[static_cast<std::size_t>(i) % survey.size()]));
  }
  return batch;
}

CellResult run_cell(std::uint16_t port, int connections, int depth,
                    int total_requests) {
  const int per_client = total_requests / connections;
  const int batches = std::max(1, per_client / depth);

  std::vector<std::vector<double>> latencies_us(
      static_cast<std::size_t>(connections));
  std::vector<std::thread> clients;
  clients.reserve(static_cast<std::size_t>(connections));

  const auto start = std::chrono::steady_clock::now();
  for (int c = 0; c < connections; ++c) {
    clients.emplace_back([port, depth, batches, c, &latencies_us] {
      net::ClientOptions options;
      options.port = port;
      net::Client client(options);
      auto& samples = latencies_us[static_cast<std::size_t>(c)];
      samples.reserve(static_cast<std::size_t>(batches * depth));
      for (int b = 0; b < batches; ++b) {
        std::vector<service::Request> batch = make_batch(depth);
        const auto t0 = std::chrono::steady_clock::now();
        const auto responses = client.call_batch(std::move(batch));
        const double us =
            std::chrono::duration<double, std::micro>(
                std::chrono::steady_clock::now() - t0)
                .count();
        for (const service::QueryResponse& response : responses) {
          if (!response.ok()) {
            std::cerr << "bench_net: request failed: "
                      << response.status.to_string() << "\n";
            std::exit(1);
          }
          // Every request in a pipelined batch waited for the batch's
          // round trip; charging each the full latency is the honest
          // client-visible number.
          samples.push_back(us);
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  const double elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  std::vector<double> all;
  for (const auto& samples : latencies_us)
    all.insert(all.end(), samples.begin(), samples.end());
  std::sort(all.begin(), all.end());

  CellResult cell;
  cell.connections = connections;
  cell.depth = depth;
  cell.req_per_s = static_cast<double>(all.size()) / elapsed_s;
  cell.p99_us = all.empty() ? 0 : all[all.size() * 99 / 100];
  return cell;
}

std::string fmt(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.4g", value);
  return buffer;
}

std::vector<CellResult> run_matrix() {
  service::EngineOptions engine_options;
  engine_options.worker_threads = 4;
  service::QueryEngine engine(engine_options);
  net::Server server(engine);
  if (!server.start()) {
    std::cerr << "bench_net: " << server.error() << "\n";
    std::exit(1);
  }

  std::vector<CellResult> cells;
  for (int connections : {1, 4}) {
    for (int depth : {1, 8, 32}) {
      // Warm the cache (and the TCP path) so the matrix measures the
      // wire, not first-touch classification.
      run_cell(server.port(), connections, depth, 256);
      cells.push_back(run_cell(server.port(), connections, depth, 4096));
    }
  }
  server.stop();
  return cells;
}

void print_artifact(const std::vector<CellResult>& cells,
                    const std::string& json_path) {
  report::CsvWriter csv;
  csv.add_row({"connections", "pipeline_depth", "req_per_s", "p99_us"});
  for (const CellResult& cell : cells) {
    csv.add_row({std::to_string(cell.connections), std::to_string(cell.depth),
                 fmt(cell.req_per_s), fmt(cell.p99_us)});
  }
  std::cout << "# loopback wire throughput (classify requests, cache-warm "
               "4-worker engine)\n"
            << csv.str() << "\n";

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << "{\n"
        << "  \"bench\": \"bench_net\",\n"
        << "  \"host_cpus\": " << std::thread::hardware_concurrency() << ",\n"
        << "  \"op\": \"pipelined classify round trips over loopback TCP "
           "(req/s and p99 us per connections x depth cell)\",\n"
        << "  \"current\": {\n";
    for (std::size_t i = 0; i < cells.size(); ++i) {
      const CellResult& cell = cells[i];
      const std::string suffix = "_c" + std::to_string(cell.connections) +
                                 "_d" + std::to_string(cell.depth);
      out << "    \"req_per_s" << suffix << "\": " << fmt(cell.req_per_s)
          << ",\n"
          << "    \"p99_us" << suffix << "\": " << fmt(cell.p99_us)
          << (i + 1 < cells.size() ? ",\n" : "\n");
    }
    out << "  }\n}\n";
    std::cout << "JSON written to " << json_path << "\n\n";
  }
}

// ---------------------------------------------------------------------------
// Registered microbenchmarks: the wire codec alone (no sockets), then a
// live single round trip — the per-op numbers behind the matrix above.

void bm_encode_request_frame(benchmark::State& state) {
  const service::Request request =
      service::ClassifyRequest::of(arch::surveyed_architectures().front());
  for (auto _ : state) {
    std::vector<std::uint8_t> bytes = wire::encode_request_frame(7, request);
    benchmark::DoNotOptimize(bytes);
  }
}
BENCHMARK(bm_encode_request_frame);

void bm_decode_request_frame(benchmark::State& state) {
  const std::vector<std::uint8_t> bytes = wire::encode_request_frame(
      7, service::ClassifyRequest::of(arch::surveyed_architectures().front()));
  for (auto _ : state) {
    auto decoded = wire::decode_request_frame(bytes.data(), bytes.size());
    benchmark::DoNotOptimize(decoded);
  }
}
BENCHMARK(bm_decode_request_frame);

void bm_loopback_round_trip(benchmark::State& state) {
  service::EngineOptions engine_options;
  engine_options.worker_threads = 2;
  service::QueryEngine engine(engine_options);
  net::Server server(engine);
  if (!server.start()) {
    state.SkipWithError(server.error().c_str());
    return;
  }
  net::ClientOptions options;
  options.port = server.port();
  net::Client client(options);
  const service::Request request =
      service::ClassifyRequest::of(arch::surveyed_architectures().front());
  for (auto _ : state) {
    service::QueryResponse response = client.call(request);
    benchmark::DoNotOptimize(response);
  }
  client.disconnect();
  server.stop();
}
BENCHMARK(bm_loopback_round_trip)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  // Strip --json before benchmark::Initialize (it aborts on unknown
  // flags); --csv is handled by apply_csv_flag below.
  std::string json_path;
  for (int i = 1; i + 1 < argc;) {
    if (std::string_view(argv[i]) != "--json") {
      ++i;
      continue;
    }
    json_path = argv[i + 1];
    for (int j = i; j + 2 < argc; ++j) argv[j] = argv[j + 2];
    argc -= 2;
  }
  std::cout << "NETWORK BENCHMARKS\n"
            << "(loopback TCP against a live net::Server; every number "
               "includes kernel sockets + wire codec + engine)\n\n";
  print_artifact(run_matrix(), json_path);
  mpct::bench::apply_csv_flag(&argc, argv);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
