/// Fault-injection benchmarks + the BENCH_fault baseline artifact.
///
/// Artifact: a CSV summary (degrade ns/op per canonical probe class;
/// Monte-Carlo degradation-curve throughput vs thread count, library
/// evaluate_curve() vs the engine's chunk-parallel FaultSweepRequest)
/// printed first, and — with `--json <path>` — the same numbers as JSON
/// in the BENCH_fault format committed at the repo root.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "core/taxonomy_index.hpp"
#include "fault/fault.hpp"
#include "report/csv.hpp"
#include "service/service.hpp"

namespace {

using namespace mpct;

// Probe rows spanning the taxonomy: IUP (1), a data-flow multi (8), an
// array processor (22), an instruction-flow multi (40) and USP (47).
constexpr int kProbeSerials[] = {1, 8, 22, 40, 47};

/// ns/op via a fixed-count timed loop, minimum over 7 runs (scheduler
/// noise is additive; the minimum is the robust estimator).
template <typename Fn>
double measure_ns(Fn&& fn, std::size_t iterations) {
  double best = 0;
  for (int run = 0; run < 7; ++run) {
    const auto start = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < iterations; ++i) fn();
    const auto elapsed = std::chrono::steady_clock::now() - start;
    const double ns =
        std::chrono::duration<double, std::nano>(elapsed).count() /
        static_cast<double>(iterations);
    if (run == 0 || ns < best) best = ns;
  }
  return best;
}

cost::EstimateOptions bench_bindings() {
  cost::EstimateOptions bindings;
  bindings.n = 16;
  bindings.m = 16;
  bindings.v = 256;
  return bindings;
}

double current_degrade_ns(int serial) {
  const MachineClass mc = taxonomy_index().by_serial(serial)->machine;
  const fault::FabricShape shape = fault::FabricShape::of(mc, bench_bindings());
  const cost::ComponentLibrary lib = cost::ComponentLibrary::default_library();
  std::uint64_t seed = 1;
  return measure_ns(
      [&] {
        const fault::FaultSet faults = fault::sample_faults(
            shape, fault::FaultRates::uniform(0.1), seed++);
        fault::DegradeResult result =
            fault::degrade(mc, shape, faults, lib, bench_bindings());
        benchmark::DoNotOptimize(result);
      },
      1u << 11);
}

fault::CurveSpec scaling_spec() {
  fault::CurveSpec spec;
  spec.machine = taxonomy_index().by_serial(40)->machine;
  spec.bindings = bench_bindings();
  spec.noc_width = 4;
  spec.noc_height = 4;
  for (int i = 0; i <= 20; ++i) spec.fault_rates.push_back(0.02 * i);
  spec.trials_per_rate = 48;
  spec.seed = 7;
  return spec;  // 21 * 48 = 1008 Monte-Carlo cells
}

struct ScalingRow {
  unsigned threads = 0;
  double cells_per_s = 0;
  double speedup = 1;
};

std::vector<ScalingRow> measure_scaling() {
  const fault::CurveSpec spec = scaling_spec();
  const double cells = static_cast<double>(spec.cell_count());
  std::vector<ScalingRow> rows;
  double sequential_s = 0;
  for (unsigned threads : {0u, 1u, 2u, 4u}) {
    std::vector<double> runs;
    for (int run = 0; run < 3; ++run) {
      const auto start = std::chrono::steady_clock::now();
      fault::CurveResult result = fault::evaluate_curve(
          spec, cost::ComponentLibrary::default_library(), threads);
      benchmark::DoNotOptimize(result);
      runs.push_back(std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - start)
                         .count());
    }
    std::sort(runs.begin(), runs.end());
    const double seconds = runs[runs.size() / 2];
    if (threads == 0) sequential_s = seconds;
    rows.push_back(
        {threads, cells / seconds, threads == 0 ? 1 : sequential_s / seconds});
  }
  return rows;
}

double measure_engine_curve_s() {
  service::EngineOptions options;
  options.worker_threads = 4;
  options.enable_cache = false;  // measure execution, not the cache
  service::QueryEngine engine(options);
  const fault::CurveSpec spec = scaling_spec();
  std::vector<double> runs;
  for (int run = 0; run < 3; ++run) {
    const auto start = std::chrono::steady_clock::now();
    service::QueryResponse response =
        engine.submit(service::FaultSweepRequest{spec}).get();
    benchmark::DoNotOptimize(response);
    runs.push_back(std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start)
                       .count());
  }
  std::sort(runs.begin(), runs.end());
  return runs[runs.size() / 2];
}

std::string fmt(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.3g", value);
  return buffer;
}

/// Prints the artifact CSV and, when @p json_path is non-empty, writes
/// the BENCH_fault JSON.
void print_artifact(const std::string& json_path) {
  report::CsvWriter degrade_csv;
  degrade_csv.add_row({"serial", "class", "degrade_ns"});
  std::vector<double> degrade_ns;
  for (int serial : kProbeSerials) {
    degrade_ns.push_back(current_degrade_ns(serial));
    degrade_csv.add_row(
        {std::to_string(serial),
         std::string(taxonomy_index().by_serial(serial)->interned_name),
         fmt(degrade_ns.back())});
  }
  std::cout << "# sample_faults + degrade: ns/op at 10% uniform fault rate "
               "(n=16, v=256)\n"
            << degrade_csv.str() << "\n";

  const std::vector<ScalingRow> scaling = measure_scaling();
  const double engine_s = measure_engine_curve_s();
  const double cells = static_cast<double>(scaling_spec().cell_count());
  report::CsvWriter scaling_csv;
  scaling_csv.add_row({"threads", "cells_per_s", "speedup_vs_sequential"});
  for (const ScalingRow& row : scaling) {
    scaling_csv.add_row({std::to_string(row.threads), fmt(row.cells_per_s),
                         fmt(row.speedup)});
  }
  scaling_csv.add_row({"engine(4 workers)", fmt(cells / engine_s),
                       fmt(scaling[0].cells_per_s > 0
                               ? (cells / engine_s) / scaling[0].cells_per_s
                               : 0)});
  std::cout << "# degradation-curve scaling: 1008-cell Monte-Carlo grid, "
               "library evaluate_curve() + engine FaultSweepRequest\n"
            << scaling_csv.str() << "\n";

  if (json_path.empty()) return;
  std::ofstream out(json_path);
  out << "{\n"
      << "  \"bench\": \"bench_fault\",\n"
      << "  \"host_cpus\": " << std::thread::hardware_concurrency() << ",\n"
      << "  \"op\": \"sample_faults + degrade (10% uniform rate, n=16, "
         "v=256)\",\n"
      << "  \"current\": {\n"
      << "    \"serials\": [1, 8, 22, 40, 47],\n"
      << "    \"degrade_ns\": [" << fmt(degrade_ns[0]);
  for (std::size_t i = 1; i < degrade_ns.size(); ++i) {
    out << ", " << fmt(degrade_ns[i]);
  }
  out << "],\n    \"curve_grid_cells\": " << static_cast<long>(cells)
      << ",\n    \"curve_cells_per_s\": {";
  for (std::size_t i = 0; i < scaling.size(); ++i) {
    out << (i ? ", " : "") << "\"threads_" << scaling[i].threads
        << "\": " << fmt(scaling[i].cells_per_s);
  }
  out << "},\n    \"curve_speedup\": {";
  for (std::size_t i = 0; i < scaling.size(); ++i) {
    out << (i ? ", " : "") << "\"threads_" << scaling[i].threads
        << "\": " << fmt(scaling[i].speedup);
  }
  out << "},\n    \"engine_curve_cells_per_s\": " << fmt(cells / engine_s)
      << "\n  }\n}\n";
  std::cout << "JSON written to " << json_path << "\n\n";
}

// ---------------------------------------------------------------------------
// Registered microbenchmarks.

void bm_sample_faults(benchmark::State& state) {
  const MachineClass mc =
      taxonomy_index().by_serial(static_cast<int>(state.range(0)))->machine;
  const fault::FabricShape shape = fault::FabricShape::of(mc, bench_bindings());
  std::uint64_t seed = 1;
  for (auto _ : state) {
    fault::FaultSet faults =
        fault::sample_faults(shape, fault::FaultRates::uniform(0.1), seed++);
    benchmark::DoNotOptimize(faults);
  }
}
BENCHMARK(bm_sample_faults)->Arg(22)->Arg(40)->Arg(47);

void bm_degrade(benchmark::State& state) {
  const MachineClass mc =
      taxonomy_index().by_serial(static_cast<int>(state.range(0)))->machine;
  const fault::FabricShape shape = fault::FabricShape::of(mc, bench_bindings());
  const cost::ComponentLibrary lib = cost::ComponentLibrary::default_library();
  const fault::FaultSet faults =
      fault::sample_faults(shape, fault::FaultRates::uniform(0.1), 99);
  for (auto _ : state) {
    fault::DegradeResult result =
        fault::degrade(mc, shape, faults, lib, bench_bindings());
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(bm_degrade)->Arg(1)->Arg(22)->Arg(40)->Arg(47);

void bm_noc_route_around(benchmark::State& state) {
  fault::FabricShape shape;
  shape.dps = 64;
  shape.noc_width = 8;
  shape.noc_height = 8;
  fault::FaultSet faults;
  faults.add(fault::FaultKind::NocRouterDead, 27);
  faults.add_noc_link(0, 1);
  faults.add_noc_link(9, 17);
  for (auto _ : state) {
    fault::NocDegradation d = fault::analyze_noc(shape, faults);
    benchmark::DoNotOptimize(d);
  }
}
BENCHMARK(bm_noc_route_around)->Unit(benchmark::kMicrosecond);

void bm_curve(benchmark::State& state) {
  const fault::CurveSpec spec = scaling_spec();
  const auto threads = static_cast<unsigned>(state.range(0));
  for (auto _ : state) {
    fault::CurveResult result = fault::evaluate_curve(
        spec, cost::ComponentLibrary::default_library(), threads);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(spec.cell_count()));
}
BENCHMARK(bm_curve)
    ->ArgName("threads")
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void bm_engine_fault_sweep(benchmark::State& state) {
  service::EngineOptions options;
  options.worker_threads = static_cast<unsigned>(state.range(0));
  options.enable_cache = false;
  service::QueryEngine engine(options);
  const fault::CurveSpec spec = scaling_spec();
  for (auto _ : state) {
    service::QueryResponse response =
        engine.submit(service::FaultSweepRequest{spec}).get();
    benchmark::DoNotOptimize(response);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(spec.cell_count()));
}
BENCHMARK(bm_engine_fault_sweep)
    ->ArgName("workers")
    ->Arg(2)
    ->Arg(4)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  // Strip the artifact flag (--json <path>) before benchmark::Initialize.
  std::string json_path;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string_view(argv[i]) == "--json") {
      json_path = argv[i + 1];
      for (int j = i; j + 2 < argc; ++j) argv[j] = argv[j + 2];
      argc -= 2;
      break;
    }
  }
  std::cout << "FAULT-INJECTION / GRACEFUL-DEGRADATION BENCHMARKS\n"
            << "(seeded fault sampling, structural degrade, NoC "
               "route-around, Monte-Carlo degradation curves)\n\n";
  print_artifact(json_path);
  mpct::bench::apply_csv_flag(&argc, argv);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
