/// Tracing-overhead benchmarks + the disabled-path budget gate.
///
/// Artifact: a CSV summary (disabled/enabled span cost, profile-hook
/// cost, snapshot + Chrome-export throughput) printed first.  The
/// disabled-tracer ScopedSpan cost is a hard budget, not a report: if
/// it measures at or above kDisabledSpanBudgetNs the binary exits
/// nonzero, so CI fails when instrumentation creeps into the fast path.
///
/// Flags (both stripped before benchmark::Initialize):
///   --json <path>       write the numbers as BENCH_trace JSON
///   --trace-out <path>  record one engine SweepRequest and write the
///                       Chrome trace (load it at ui.perfetto.dev)
#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "explore/sweep.hpp"
#include "net/net.hpp"
#include "net/trace_stream.hpp"
#include "report/csv.hpp"
#include "service/service.hpp"
#include "trace/chrome_trace.hpp"
#include "trace/sampler.hpp"
#include "trace/trace.hpp"

namespace {

using namespace mpct;

/// The acceptance budget for a ScopedSpan while the tracer is off: one
/// relaxed atomic load and a predicted branch.  2 ns is ~6 cycles at
/// 3 GHz — generous for that, unreachable for anything heavier.
constexpr double kDisabledSpanBudgetNs = 2.0;

/// ns/op via a fixed-count timed loop, minimum over 7 runs (noise on a
/// shared machine is additive; the minimum is the robust estimator).
template <typename Fn>
double measure_ns(Fn&& fn, std::size_t iterations) {
  double best = 0;
  for (int run = 0; run < 7; ++run) {
    const auto start = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < iterations; ++i) fn();
    const auto elapsed = std::chrono::steady_clock::now() - start;
    const double ns =
        std::chrono::duration<double, std::nano>(elapsed).count() /
        static_cast<double>(iterations);
    if (run == 0 || ns < best) best = ns;
  }
  return best;
}

double measure_disabled_span_ns() {
  trace::Tracer::instance().disable();
  return measure_ns(
      [] {
        trace::ScopedSpan span("bench.disabled", trace::Category::Core);
        benchmark::DoNotOptimize(span);
      },
      1u << 20);
}

double measure_disabled_profile_ns() {
  trace::Tracer::instance().disable();
  return measure_ns(
      [] { trace::profile_count(trace::ProfilePoint::ClassifyFast); },
      1u << 20);
}

double measure_enabled_span_ns() {
  trace::Tracer& tracer = trace::Tracer::instance();
  tracer.set_capacity_per_thread(trace::Tracer::kDefaultCapacity);
  tracer.clear();
  tracer.enable();
  const double ns = measure_ns(
      [] {
        trace::ScopedSpan span("bench.enabled", trace::Category::Core,
                               "i", 1);
        benchmark::DoNotOptimize(span);
      },
      1u << 16);
  tracer.disable();
  tracer.clear();
  return ns;
}

/// Spans/s for snapshot() + to_chrome_json() over a full default ring.
double measure_export_spans_per_s(std::size_t* exported_spans) {
  trace::Tracer& tracer = trace::Tracer::instance();
  tracer.set_capacity_per_thread(trace::Tracer::kDefaultCapacity);
  tracer.clear();
  tracer.enable();
  for (int i = 0; i < 10000; ++i) {
    trace::ScopedSpan span("bench.fill", trace::Category::Sweep, "i", i);
  }
  tracer.disable();

  std::size_t spans = 0;
  const double ns_per_export = measure_ns(
      [&spans] {
        trace::TraceSnapshot snap = trace::Tracer::instance().snapshot();
        std::string json = trace::to_chrome_json(snap);
        benchmark::DoNotOptimize(json);
        spans = snap.spans.size();
      },
      64);
  *exported_spans = spans;
  tracer.clear();
  return spans == 0 ? 0
                    : static_cast<double>(spans) / (ns_per_export * 1e-9);
}

/// Streaming-export overhead cells: hot-path span costs while a live
/// net::TraceStreamer drains the rings, and export throughput / drop
/// rate when span production far outruns the drain cadence.
struct StreamingCells {
  double disabled_span_ns = 0;  ///< disabled path, exporter thread live
  double enabled_1pct_ns = 0;   ///< enabled path, exporter at 1% sampling
  double export_spans_per_s = 0;
  double drop_rate = 0;  ///< dropped / (exported + dropped) at saturation
  std::uint64_t exported = 0;
  std::uint64_t dropped = 0;
};

StreamingCells measure_streaming_export() {
  StreamingCells cells;
  trace::Tracer& tracer = trace::Tracer::instance();
  tracer.set_capacity_per_thread(trace::Tracer::kDefaultCapacity);
  tracer.clear();

  // A collector in the same process: inline engine, sink just counts.
  service::EngineOptions engine_options;
  engine_options.worker_threads = 0;
  service::QueryEngine engine(engine_options);
  std::atomic<std::uint64_t> received{0};
  net::ServerOptions server_options;
  server_options.span_sink = [&received](wire::SpanBatchFrame frame) {
    received.fetch_add(frame.batch.spans.size(), std::memory_order_relaxed);
  };
  net::Server server(engine, server_options);
  if (!server.start()) {
    std::cerr << "bench_trace: collector server: " << server.error() << "\n";
    return cells;
  }

  // Hot-path costs with the exporter live at 1% head sampling: the
  // recorder must not feel the export thread on either path.
  {
    net::TraceStreamerOptions stream_options;
    stream_options.port = server.port();
    stream_options.node = "bench";
    stream_options.policy = trace::SamplerPolicy::probabilistic(0.01);
    stream_options.interval = std::chrono::milliseconds(5);
    net::TraceStreamer streamer(stream_options);
    streamer.start();
    tracer.disable();
    cells.disabled_span_ns = measure_ns(
        [] {
          trace::ScopedSpan span("bench.disabled", trace::Category::Core);
          benchmark::DoNotOptimize(span);
        },
        1u << 20);
    tracer.enable();
    cells.enabled_1pct_ns = measure_ns(
        [] {
          trace::ScopedSpan span("bench.streamed", trace::Category::Core,
                                 "i", 1);
          benchmark::DoNotOptimize(span);
        },
        1u << 16);
    tracer.disable();
    streamer.stop();
    tracer.clear();
  }

  // Saturation: hammer spans for a fixed window at a drain cadence they
  // easily outrun, then count what crossed the wire vs what the ring
  // wrapped away — the drop-counted back-pressure story in one number.
  {
    net::TraceStreamerOptions stream_options;
    stream_options.port = server.port();
    stream_options.node = "bench";
    stream_options.interval = std::chrono::milliseconds(2);
    net::TraceStreamer streamer(stream_options);
    streamer.start();
    tracer.enable();
    const auto start = std::chrono::steady_clock::now();
    while (std::chrono::steady_clock::now() - start <
           std::chrono::milliseconds(400)) {
      for (int i = 0; i < 1024; ++i) {
        trace::ScopedSpan span("bench.saturate", trace::Category::Sweep,
                               "i", i);
      }
    }
    tracer.disable();
    streamer.stop();  // final drain + flush included in the window
    const double elapsed_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    cells.exported = streamer.spans_exported();
    cells.dropped = streamer.spans_dropped();
    const double total =
        static_cast<double>(cells.exported + cells.dropped);
    cells.drop_rate =
        total == 0 ? 0 : static_cast<double>(cells.dropped) / total;
    cells.export_spans_per_s =
        elapsed_s == 0 ? 0 : static_cast<double>(cells.exported) / elapsed_s;
    tracer.clear();
  }
  server.stop();
  return cells;
}

/// Trace one chunk-parallel SweepRequest end to end and return the
/// Chrome JSON — the sample artifact CI uploads.
std::string record_sample_trace() {
  trace::Tracer& tracer = trace::Tracer::instance();
  tracer.set_capacity_per_thread(1u << 16);
  tracer.clear();
  tracer.enable();

  service::EngineOptions options;
  options.worker_threads = 2;
  options.enable_cache = true;
  service::QueryEngine engine(options);
  explore::SweepGrid grid;
  for (std::int64_t n = 2; n <= 64; n *= 2) grid.n_values.push_back(n);
  grid.lut_budgets = {64, 1024, 16384};
  grid.objectives = {explore::Requirements::Objective::MinConfigBits,
                     explore::Requirements::Objective::MinArea};
  service::QueryResponse response =
      engine.submit(service::SweepRequest{grid}).get();
  benchmark::DoNotOptimize(response);
  // Resubmit so the trace also shows a cache hit.
  response = engine.submit(service::SweepRequest{grid}).get();
  benchmark::DoNotOptimize(response);

  tracer.disable();
  std::string json = trace::to_chrome_json(tracer.snapshot());
  tracer.clear();
  tracer.set_capacity_per_thread(trace::Tracer::kDefaultCapacity);
  return json;
}

std::string fmt(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.3g", value);
  return buffer;
}

/// Prints the artifact CSV, writes the optional JSON/trace outputs, and
/// returns false when the disabled-path budget is blown.
bool print_artifact(const std::string& json_path,
                    const std::string& trace_path) {
  const double disabled_span_ns = measure_disabled_span_ns();
  const double disabled_profile_ns = measure_disabled_profile_ns();
  const double enabled_span_ns = measure_enabled_span_ns();
  std::size_t exported_spans = 0;
  const double export_spans_per_s =
      measure_export_spans_per_s(&exported_spans);
  const StreamingCells streaming = measure_streaming_export();

  report::CsvWriter csv;
  csv.add_row({"metric", "value", "budget"});
  csv.add_row({"disabled_scoped_span_ns", fmt(disabled_span_ns),
               fmt(kDisabledSpanBudgetNs)});
  csv.add_row({"disabled_span_exporter_on_ns",
               fmt(streaming.disabled_span_ns), fmt(kDisabledSpanBudgetNs)});
  csv.add_row({"disabled_profile_count_ns", fmt(disabled_profile_ns), ""});
  csv.add_row({"enabled_scoped_span_ns", fmt(enabled_span_ns), ""});
  csv.add_row({"enabled_span_1pct_exporter_ns",
               fmt(streaming.enabled_1pct_ns), ""});
  csv.add_row({"snapshot_export_spans_per_s", fmt(export_spans_per_s), ""});
  csv.add_row({"streaming_export_spans_per_s",
               fmt(streaming.export_spans_per_s), ""});
  csv.add_row({"streaming_drop_rate", fmt(streaming.drop_rate), ""});
  std::cout << "# tracing overhead (disabled path is the CI-enforced "
               "budget, with and without a live exporter)\n"
            << csv.str() << "\n";

  const bool within_budget =
      disabled_span_ns < kDisabledSpanBudgetNs &&
      streaming.disabled_span_ns < kDisabledSpanBudgetNs;
  std::cout << (within_budget ? "BUDGET OK: " : "BUDGET EXCEEDED: ")
            << fmt(disabled_span_ns) << " ns/span disabled, "
            << fmt(streaming.disabled_span_ns)
            << " ns/span disabled with exporter live (budget "
            << fmt(kDisabledSpanBudgetNs) << " ns)\n\n";

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << "{\n"
        << "  \"bench\": \"bench_trace\",\n"
        << "  \"host_cpus\": " << std::thread::hardware_concurrency()
        << ",\n"
        << "  \"op\": \"ScopedSpan record (disabled / enabled) and "
           "snapshot export\",\n"
        << "  \"budget\": {\n"
        << "    \"disabled_span_ns\": " << fmt(kDisabledSpanBudgetNs)
        << "\n  },\n"
        << "  \"current\": {\n"
        << "    \"disabled_span_ns\": " << fmt(disabled_span_ns) << ",\n"
        << "    \"disabled_span_exporter_on_ns\": "
        << fmt(streaming.disabled_span_ns) << ",\n"
        << "    \"disabled_profile_count_ns\": " << fmt(disabled_profile_ns)
        << ",\n"
        << "    \"enabled_span_ns\": " << fmt(enabled_span_ns) << ",\n"
        << "    \"enabled_span_1pct_exporter_ns\": "
        << fmt(streaming.enabled_1pct_ns) << ",\n"
        << "    \"snapshot_export_spans_per_s\": " << fmt(export_spans_per_s)
        << ",\n"
        << "    \"snapshot_export_span_count\": " << exported_spans << ",\n"
        << "    \"streaming_export_spans_per_s\": "
        << fmt(streaming.export_spans_per_s) << ",\n"
        << "    \"streaming_export_spans\": " << streaming.exported << ",\n"
        << "    \"streaming_dropped_spans\": " << streaming.dropped << ",\n"
        << "    \"streaming_drop_rate\": " << fmt(streaming.drop_rate)
        << "\n  }\n}\n";
    std::cout << "JSON written to " << json_path << "\n\n";
  }

  if (!trace_path.empty()) {
    std::ofstream out(trace_path);
    out << record_sample_trace();
    std::cout << "Chrome trace written to " << trace_path
              << " (load at ui.perfetto.dev)\n\n";
  }
  return within_budget;
}

// ---------------------------------------------------------------------------
// Registered microbenchmarks (the artifact numbers above are the gate;
// these give the usual google-benchmark statistics for the same ops).

void bm_scoped_span_disabled(benchmark::State& state) {
  trace::Tracer::instance().disable();
  for (auto _ : state) {
    trace::ScopedSpan span("bench.disabled", trace::Category::Core);
    benchmark::DoNotOptimize(span);
  }
}
BENCHMARK(bm_scoped_span_disabled);

void bm_scoped_span_enabled(benchmark::State& state) {
  trace::Tracer& tracer = trace::Tracer::instance();
  tracer.clear();
  tracer.enable();
  for (auto _ : state) {
    trace::ScopedSpan span("bench.enabled", trace::Category::Core, "i", 1);
    benchmark::DoNotOptimize(span);
  }
  tracer.disable();
  tracer.clear();
}
BENCHMARK(bm_scoped_span_enabled);

void bm_profile_count_enabled(benchmark::State& state) {
  trace::Tracer& tracer = trace::Tracer::instance();
  tracer.clear();
  tracer.enable();
  for (auto _ : state) {
    trace::profile_count(trace::ProfilePoint::ClassifyFast);
  }
  tracer.disable();
  tracer.clear();
}
BENCHMARK(bm_profile_count_enabled);

void bm_snapshot_export(benchmark::State& state) {
  trace::Tracer& tracer = trace::Tracer::instance();
  tracer.clear();
  tracer.enable();
  for (int i = 0; i < 4096; ++i) {
    trace::ScopedSpan span("bench.fill", trace::Category::Sweep, "i", i);
  }
  tracer.disable();
  for (auto _ : state) {
    trace::TraceSnapshot snap = tracer.snapshot();
    std::string json = trace::to_chrome_json(snap);
    benchmark::DoNotOptimize(json);
  }
  tracer.clear();
}
BENCHMARK(bm_snapshot_export)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  // Strip the artifact flags before benchmark::Initialize.
  std::string json_path, trace_path;
  for (int i = 1; i + 1 < argc;) {
    const std::string_view flag(argv[i]);
    std::string* target = flag == "--json"        ? &json_path
                          : flag == "--trace-out" ? &trace_path
                                                  : nullptr;
    if (target == nullptr) {
      ++i;
      continue;
    }
    *target = argv[i + 1];
    for (int j = i; j + 2 < argc; ++j) argv[j] = argv[j + 2];
    argc -= 2;
  }
  std::cout << "TRACING BENCHMARKS\n"
            << "(per-thread ring spans; the disabled path must stay under "
            << kDisabledSpanBudgetNs << " ns/span)\n\n";
  const bool within_budget = print_artifact(json_path, trace_path);
  mpct::bench::apply_csv_flag(&argc, argv);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return within_budget ? 0 : 1;
}
