/// Regenerates Figure 7 — comparison of the 25 surveyed architectures by
/// relative flexibility — as an ASCII bar chart plus an SVG file, and
/// benchmarks the scoring sweep.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"

#include <algorithm>
#include <fstream>
#include <iostream>

#include "arch/registry.hpp"
#include "core/flexibility.hpp"
#include "report/chart.hpp"
#include "report/svg.hpp"

namespace {

using namespace mpct;

std::vector<report::Bar> survey_bars() {
  std::vector<report::Bar> bars;
  for (const arch::ArchitectureSpec& spec :
       arch::surveyed_architectures()) {
    bars.push_back({spec.name,
                    static_cast<double>(spec.flexibility().total())});
  }
  return bars;
}

void print_fig7() {
  std::cout << "FIGURE 7: COMPARISON OF PUBLISHED ARCHITECTURES W.R.T. "
               "RELATIVE FLEXIBILITY\n"
            << "(data-flow scores are not comparable against "
               "instruction-flow ones;\n both compare against the "
               "universal-flow FPGA — Section III-B)\n\n";
  std::cout << "table order (as surveyed):\n"
            << render_bar_chart(survey_bars()) << "\n";

  std::vector<report::Bar> sorted = survey_bars();
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const report::Bar& a, const report::Bar& b) {
                     return a.value > b.value;
                   });
  std::cout << "ranked:\n" << render_bar_chart(sorted) << "\n";
  std::cout << "headline ordering: " << sorted[0].label << " ("
            << sorted[0].value << ") > " << sorted[1].label << " ("
            << sorted[1].value << ") > " << sorted[2].label << " ("
            << sorted[2].value << ") — matches the paper's 'FPGA first, "
            << "MATRIX second, DRRA third'.\n\n";

  report::SvgOptions options;
  options.title = "Relative flexibility of surveyed architectures";
  const std::string svg = report::svg_bar_chart(survey_bars(), options);
  std::ofstream("fig7.svg") << svg;
  std::cout << "SVG written to ./fig7.svg (" << svg.size() << " bytes)\n\n";
}

void bm_score_survey(benchmark::State& state) {
  for (auto _ : state) {
    auto bars = survey_bars();
    benchmark::DoNotOptimize(bars);
  }
}
BENCHMARK(bm_score_survey);

void bm_render_ascii_chart(benchmark::State& state) {
  const auto bars = survey_bars();
  for (auto _ : state) {
    std::string chart = render_bar_chart(bars);
    benchmark::DoNotOptimize(chart);
  }
}
BENCHMARK(bm_render_ascii_chart);

void bm_render_svg_chart(benchmark::State& state) {
  const auto bars = survey_bars();
  for (auto _ : state) {
    std::string svg = report::svg_bar_chart(bars);
    benchmark::DoNotOptimize(svg);
  }
}
BENCHMARK(bm_render_svg_chart);

}  // namespace

int main(int argc, char** argv) {
  print_fig7();
  mpct::bench::apply_csv_flag(&argc, argv);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
