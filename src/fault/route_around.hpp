#pragma once

#include <string>

#include "fault/fault_model.hpp"
#include "interconnect/mesh_noc.hpp"
#include "interconnect/traffic.hpp"

namespace mpct::fault {

/// Connectivity and performance loss of a NoC-backed fabric under a
/// FaultSet, measured by re-running the existing traffic generators on
/// the route-around mesh (dead routers/links masked, BFS detours).
struct NocDegradation {
  int width = 0;
  int height = 0;
  int total_routers = 0;
  int alive_routers = 0;
  int failed_links = 0;  ///< NocLinkDead faults that named a real link
  /// Ordered alive-router pairs still connected (1.0 fault-free).
  double reachable_fraction = 1.0;
  int bisection_before = 0;  ///< mid-cut links of the pristine mesh
  int bisection_after = 0;   ///< surviving mid-cut links
  interconnect::MeshNoc::Stats baseline;  ///< uniform traffic, no faults
  interconnect::MeshNoc::Stats degraded;  ///< same packets, faulted mesh
  /// degraded.delivered / baseline.delivered in [0, 1] (1.0 when the
  /// baseline delivered nothing — no traffic means nothing was lost).
  double delivered_ratio = 1.0;

  double bisection_retention() const {
    return bisection_before == 0
               ? 1.0
               : static_cast<double>(bisection_after) / bisection_before;
  }
};

/// Build the shape's mesh with every NocRouterDead / NocLinkDead fault
/// applied.  Faults naming routers or links outside the shape's mesh are
/// inert.  Throws std::invalid_argument when the shape carries no NoC
/// (noc_width * noc_height == 0).
interconnect::MeshNoc build_degraded_noc(const FabricShape& shape,
                                         const FaultSet& faults,
                                         int link_capacity = 1);

/// Simulate the same uniform traffic (same params, same packet stream)
/// on the pristine and the degraded mesh and report connectivity /
/// bisection / delivery loss.  Fully deterministic in (shape, faults,
/// params).  Throws like build_degraded_noc when the shape has no NoC.
NocDegradation analyze_noc(const FabricShape& shape, const FaultSet& faults,
                           const interconnect::TrafficParams& params = {});

/// One-line human summary for reports and examples.
std::string to_string(const NocDegradation& d);

}  // namespace mpct::fault
