#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>

#include "arch/spec.hpp"
#include "core/classifier.hpp"
#include "core/machine_class.hpp"
#include "cost/component_library.hpp"
#include "cost/cost_plan.hpp"
#include "fault/fault_model.hpp"

namespace mpct::fault {

/// The structural consequence of a FaultSet applied to a bound fabric:
/// the surviving component census, the *degraded* machine class the
/// survivors form, its (re)classification, flexibility, and the Eq. 1 /
/// Eq. 2 cost of the surviving fabric.
///
/// Classification of the degraded structure may legitimately fail — a
/// fabric whose last DP died computes nothing, and n IPs left driving a
/// single surviving DP is one of Table I's NI rows.  Those cases come
/// back as a well-typed `classification` with `ok() == false` and a
/// non-empty note (never an assert, never silent garbage); `alive()`
/// folds them into one predicate.
///
/// Monotonicity guarantee (test-enforced over all 47 canonical classes
/// and fuzzed structures): faults only remove capability, so whenever
/// both the original and the degraded structure classify,
/// `degraded_score <= original_score`, i.e. degradation only moves a
/// class *down* the flexibility order of Table I — multiplicities only
/// shrink (n -> 1 -> 0), crossbars can only disappear, and the
/// granularity never changes.
struct DegradeResult {
  MachineClass original;
  Classification original_classification;
  int original_score = 0;

  FaultSet faults;  ///< the applied set (canonical order)

  // Surviving census.
  std::int64_t surviving_ips = 0;
  std::int64_t surviving_dps = 0;
  std::int64_t surviving_luts = 0;
  std::array<std::int64_t, kConnectivityRoleCount> surviving_ports{};
  /// Fraction of the shape's components (blocks + switch ports) still
  /// alive; 1.0 for an empty FaultSet.
  double component_survival = 1.0;

  // Degraded structure.
  MachineClass degraded;
  Classification classification;  ///< of `degraded`
  int degraded_score = 0;         ///< 0 when !classification.ok()

  // Eq. 1 / Eq. 2 of the original and the surviving fabric (degraded
  // values are 0 when the degraded structure does not classify).
  cost::CostPoint original_cost;
  cost::CostPoint degraded_cost;

  /// The fabric still classifies as an implementable machine.
  bool alive() const {
    return classification.ok() && classification.implementable;
  }

  /// degraded flexibility / original flexibility in [0, 1]; 0 when dead,
  /// 1 when the original scored 0 but the fabric is still alive (an
  /// inflexible machine that survives retains all of nothing).
  double flexibility_retention() const;
};

namespace detail {

/// degrade() minus everything a Monte-Carlo trial does not consume: the
/// surviving census, the degraded structure, its (re)classification and
/// flexibility — but no Eq. 1 / Eq. 2 pricing and no re-derivation of
/// the original's classification (both are per-spec invariants a curve
/// hoists out of the trial loop).
struct StructuralDegrade {
  std::int64_t surviving_ips = 0;
  std::int64_t surviving_dps = 0;
  std::int64_t surviving_luts = 0;
  std::array<std::int64_t, kConnectivityRoleCount> surviving_ports{};
  double component_survival = 1.0;
  MachineClass degraded;
  Classification classification;
  int degraded_score = 0;

  bool alive() const {
    return classification.ok() && classification.implementable;
  }
};

/// Shared structural kernel: both degrade() and the curve batch path
/// funnel through this, so their census/classification/score agree bit
/// for bit.  @p faults must be in FaultSet's canonical order (sorted,
/// unique) — FaultSet::faults() and sample_faults_into() both are.
StructuralDegrade structural_degrade(const MachineClass& mc,
                                     const FabricShape& shape,
                                     std::span<const Fault> faults);

}  // namespace detail

/// Apply @p faults to the class @p mc bound at @p shape.
///
/// Degradation rules:
///  * block multiplicities re-derive from the surviving counts
///    (0 -> Zero, 1 -> One, >= 2 -> Many; a Variable population stays
///    Variable while any block survives);
///  * a connectivity column whose ports all died becomes None; a column
///    with any surviving port keeps its switch kind (a crossbar with dead
///    ports is a smaller crossbar, not a direct wire);
///  * columns whose endpoint population died out are stripped (a dead IP
///    set cannot keep IP-side connectivity) — this is what lets "all IPs
///    dead" degrade an IMP gracefully into a data-flow multiprocessor
///    instead of an inconsistent orphan structure;
///  * NocRouterDead i kills the co-located DP i when the shape carries a
///    NoC; NocLinkDead affects only the connectivity analysis
///    (fault/route_around.hpp), not the structural class.
///
/// Cost binding of the surviving fabric: Many binds to the smallest
/// surviving Many-population (a lockstep fabric is paced by its scarcest
/// resource) and Variable to the surviving block count.
///
/// Deterministic and allocation-light; safe for concurrent callers
/// (reads only the taxonomy singletons documented thread-safe).
DegradeResult degrade(const MachineClass& mc, const FabricShape& shape,
                      const FaultSet& faults,
                      const cost::ComponentLibrary& lib =
                          cost::ComponentLibrary::default_library(),
                      const cost::EstimateOptions& bindings = {});

/// Convenience: bind @p spec's counts through @p bindings (FabricShape::of)
/// and degrade the resulting shape.
DegradeResult degrade(const arch::ArchitectureSpec& spec,
                      const FaultSet& faults,
                      const cost::ComponentLibrary& lib =
                          cost::ComponentLibrary::default_library(),
                      const cost::EstimateOptions& bindings = {});

/// One-line human summary: "IMP-XVI -> DMP-IV (flex 6 -> 3, 71% alive)".
std::string to_string(const DegradeResult& result);

}  // namespace mpct::fault
