#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "arch/spec.hpp"
#include "core/machine_class.hpp"
#include "core/rng.hpp"
#include "cost/area_model.hpp"

namespace mpct::fault {

/// Kind of component a fault removes from the fabric.
///
/// The first three express against the structural model (arch::ArchSpec
/// counts and the five connectivity columns); the NoC kinds express
/// against a packet-switched interconnect::MeshNoc topology mapped onto
/// the fabric (router i co-located with DP i).  LutDead targets the
/// fine-grained blocks of universal-flow fabrics, which have no discrete
/// IPs/DPs to kill.
enum class FaultKind : std::uint8_t {
  IpDead = 0,         ///< instruction processor `index` failed
  DpDead = 1,         ///< data processor `index` failed
  SwitchPortDead = 2, ///< port `index` of the `role` connectivity column
  NocRouterDead = 3,  ///< NoC router at node `index` failed
  NocLinkDead = 4,    ///< NoC link `index` -> `index2` failed (undirected)
  LutDead = 5,        ///< LUT/CLB block `index` of a universal-flow fabric
};

inline constexpr std::size_t kFaultKindCount = 6;

std::string_view to_string(FaultKind kind);

/// One failed component.  Identity is structural, so Faults order and
/// compare deterministically — FaultSet keeps them canonically sorted.
struct Fault {
  FaultKind kind = FaultKind::IpDead;
  /// Connectivity column of a SwitchPortDead fault; ignored otherwise.
  ConnectivityRole role = ConnectivityRole::IpIp;
  /// Component index (block, port, or NoC node of the link source).
  std::int32_t index = 0;
  /// NocLinkDead: the link's other endpoint (canonicalised index <
  /// index2); 0 for every other kind.
  std::int32_t index2 = 0;

  friend bool operator==(const Fault&, const Fault&) = default;
  friend auto operator<=>(const Fault&, const Fault&) = default;
};

/// Render "ip[3]", "port[DP-DM:7]", "link[2-3]" — used in reports and
/// test diagnostics.
std::string to_string(const Fault& fault);

/// A reproducible set of component failures.
///
/// Canonical representation: faults are kept sorted (Fault's structural
/// order) and deduplicated, so two FaultSets built from the same faults
/// in any insertion order compare equal, iterate identically, and hash
/// identically in the service cache.  Everything downstream (degrade(),
/// the Monte-Carlo curves, the engine's FaultSweepRequest) relies on this
/// for bit-reproducibility.
class FaultSet {
 public:
  FaultSet() = default;
  explicit FaultSet(std::vector<Fault> faults);

  /// Insert (idempotent).
  void add(const Fault& fault);
  void add(FaultKind kind, std::int32_t index);
  void add_switch_port(ConnectivityRole role, std::int32_t port);
  void add_noc_link(std::int32_t a, std::int32_t b);

  bool contains(const Fault& fault) const;
  bool empty() const { return faults_.empty(); }
  std::size_t size() const { return faults_.size(); }
  std::span<const Fault> faults() const { return faults_; }

  /// Number of faults of one kind.
  std::size_t count(FaultKind kind) const;
  /// Number of SwitchPortDead faults against one column.
  std::size_t count_ports(ConnectivityRole role) const;

  /// Union (canonical order preserved).
  void merge(const FaultSet& other);

  friend bool operator==(const FaultSet&, const FaultSet&) = default;

 private:
  std::vector<Fault> faults_;  ///< sorted, unique
};

/// Concrete component counts of a fabric instance — the universe the
/// fault sampler draws from and the denominator of every survival
/// fraction.  Obtained by binding an ArchitectureSpec / MachineClass's
/// symbolic multiplicities through cost::EstimateOptions (Many -> n,
/// Variable -> v), exactly as the cost equations bind them.
struct FabricShape {
  std::int64_t ips = 0;
  std::int64_t dps = 0;
  std::int64_t luts = 0;  ///< universal-flow block count (0 for coarse)
  /// Port count of each connectivity column (0 when the column is None).
  std::array<std::int64_t, kConnectivityRoleCount> switch_ports{};
  /// Optional packet-switched NoC mapped onto the fabric; both 0 when the
  /// fabric has no NoC model.  Router i is co-located with DP i.
  int noc_width = 0;
  int noc_height = 0;

  /// Bind a machine class at a design point.  Column ports resolve to the
  /// endpoint populations of the column (e.g. IP-DP has ips + dps ports,
  /// DP-DM has dps data + dps memory ports); universal-flow fabrics get v
  /// ports per populated column, mirroring Eq. 1/Eq. 2's crossbar terms.
  static FabricShape of(const MachineClass& mc,
                        const cost::EstimateOptions& bindings = {});
  /// Bind a concrete spec (counts evaluate through the spec's symbols:
  /// 'n'/'m' -> bindings.n/m, variable -> bindings.v).
  static FabricShape of(const arch::ArchitectureSpec& spec,
                        const cost::EstimateOptions& bindings = {});

  std::int64_t total_blocks() const { return ips + dps + luts; }
  std::int64_t total_ports() const;
  /// Blocks + ports: the component universe a fault rate applies to.
  std::int64_t total_components() const {
    return total_blocks() + total_ports();
  }
  int noc_nodes() const { return noc_width * noc_height; }

  friend bool operator==(const FabricShape&, const FabricShape&) = default;
};

/// Per-kind Bernoulli failure probabilities (per component).
struct FaultRates {
  double ip = 0;
  double dp = 0;
  double lut = 0;
  double switch_port = 0;
  double noc_router = 0;
  double noc_link = 0;

  /// Same probability for every component kind — the single-axis sweep
  /// the degradation curves use.
  static FaultRates uniform(double p) { return {p, p, p, p, p, p}; }

  friend bool operator==(const FaultRates&, const FaultRates&) = default;
};

/// Draw a FaultSet: one Bernoulli trial per component, in a fixed
/// canonical order (IPs, DPs, LUTs, switch ports column by column, NoC
/// routers, NoC +x/+y links) from a single xorshift64* stream — so the
/// same (shape, rates, seed) triple yields the same FaultSet on every
/// platform, thread count, and call site.  This is the reproducibility
/// contract docs/FAULT.md documents and tests/test_fault.cpp pins.
FaultSet sample_faults(const FabricShape& shape, const FaultRates& rates,
                       std::uint64_t seed);

/// Allocation-reusing variant: clear @p out and refill it with exactly
/// the faults sample_faults() would return, in FaultSet's canonical
/// order (sorted, unique).  Draws the identical RNG stream — byte-for-
/// byte the same set — while letting a Monte-Carlo loop recycle one
/// vector across trials instead of allocating a FaultSet per trial.
void sample_faults_into(const FabricShape& shape, const FaultRates& rates,
                        std::uint64_t seed, std::vector<Fault>& out);

/// Deterministic whole-population kill sets (the degradation table test's
/// worst cases).
FaultSet kill_all_ips(const FabricShape& shape);
FaultSet kill_all_dps(const FabricShape& shape);
FaultSet kill_all_luts(const FabricShape& shape);
FaultSet kill_all_switch_ports(const FabricShape& shape);

}  // namespace mpct::fault
