#include "fault/degrade.hpp"

#include <algorithm>
#include <cstdio>

#include "core/flexibility.hpp"

namespace mpct::fault {

namespace {

/// Well-typed diagnosis for the one degraded shape classify() cannot
/// describe itself: a universal-flow fabric whose whole block population
/// died (classify would still call any LUT-grain structure a USP).
constexpr std::string_view kNoteFabricDead =
    "universal-flow fabric: every LUT block failed; nothing remains to "
    "assume an IP or DP role";

Multiplicity degrade_multiplicity(Multiplicity original,
                                  std::int64_t surviving) {
  if (original == Multiplicity::Variable) {
    return surviving > 0 ? Multiplicity::Variable : Multiplicity::Zero;
  }
  if (surviving <= 0) return Multiplicity::Zero;
  if (surviving == 1) return Multiplicity::One;
  return Multiplicity::Many;
}

void strip_column(MachineClass& mc, ConnectivityRole role) {
  mc.set_switch(role, SwitchKind::None);
}

}  // namespace

double DegradeResult::flexibility_retention() const {
  if (!alive()) return 0.0;
  if (original_score <= 0) return 1.0;
  return static_cast<double>(degraded_score) /
         static_cast<double>(original_score);
}

namespace detail {

StructuralDegrade structural_degrade(const MachineClass& mc,
                                     const FabricShape& shape,
                                     std::span<const Fault> faults) {
  StructuralDegrade result;

  // --- Surviving census -------------------------------------------------
  // Count each dead component once, respecting the shape's bounds (an
  // out-of-range fault names a component this fabric instance does not
  // have; it is inert by construction, not an error).
  std::int64_t dead_ips = 0, dead_dps = 0, dead_luts = 0;
  std::array<std::int64_t, kConnectivityRoleCount> dead_ports{};
  const int noc_nodes = shape.noc_nodes();
  for (const Fault& fault : faults) {
    switch (fault.kind) {
      case FaultKind::IpDead:
        if (fault.index >= 0 && fault.index < shape.ips) ++dead_ips;
        break;
      case FaultKind::DpDead:
        if (fault.index >= 0 && fault.index < shape.dps) ++dead_dps;
        break;
      case FaultKind::LutDead:
        if (fault.index >= 0 && fault.index < shape.luts) ++dead_luts;
        break;
      case FaultKind::SwitchPortDead: {
        const auto role = static_cast<std::size_t>(fault.role);
        if (fault.index >= 0 && fault.index < shape.switch_ports[role]) {
          ++dead_ports[role];
        }
        break;
      }
      case FaultKind::NocRouterDead:
        // Router i is co-located with DP i: losing the router unreaches
        // the DP.  Count it dead unless a DpDead fault already did.
        if (fault.index >= 0 && fault.index < noc_nodes &&
            fault.index < shape.dps &&
            !std::binary_search(faults.begin(), faults.end(),
                                Fault{FaultKind::DpDead,
                                      ConnectivityRole::IpIp, fault.index,
                                      0})) {
          ++dead_dps;
        }
        break;
      case FaultKind::NocLinkDead:
        // Topology-level: handled by the route-around analysis, not the
        // structural class.
        break;
    }
  }
  result.surviving_ips = shape.ips - dead_ips;
  result.surviving_dps = shape.dps - dead_dps;
  result.surviving_luts = shape.luts - dead_luts;
  std::int64_t alive_components =
      result.surviving_ips + result.surviving_dps + result.surviving_luts;
  for (ConnectivityRole role : kAllConnectivityRoles) {
    const auto i = static_cast<std::size_t>(role);
    result.surviving_ports[i] = shape.switch_ports[i] - dead_ports[i];
    alive_components += result.surviving_ports[i];
  }
  const std::int64_t total = shape.total_components();
  result.component_survival =
      total <= 0 ? 1.0
                 : static_cast<double>(alive_components) /
                       static_cast<double>(total);

  // --- Degraded structure ----------------------------------------------
  MachineClass degraded = mc;
  // A column whose ports all died can no longer switch anything.
  for (ConnectivityRole role : kAllConnectivityRoles) {
    const auto i = static_cast<std::size_t>(role);
    if (degraded.switch_at(role) != SwitchKind::None &&
        shape.switch_ports[i] > 0 && result.surviving_ports[i] <= 0) {
      strip_column(degraded, role);
    }
  }
  if (mc.granularity == Granularity::Lut) {
    result.degraded = degraded;
    if (shape.luts > 0 && result.surviving_luts <= 0) {
      result.classification.name.reset();
      result.classification.implementable = false;
      result.classification.note = std::string(kNoteFabricDead);
    } else {
      result.classification = classify(degraded);
    }
  } else {
    degraded.ips = degrade_multiplicity(mc.ips, result.surviving_ips);
    degraded.dps = degrade_multiplicity(mc.dps, result.surviving_dps);
    // A dead population cannot keep its side's connectivity: stripping
    // these columns is what lets the survivors form a coherent smaller
    // machine (IMP with no IPs left -> data-flow multiprocessor) instead
    // of an orphan structure classify() must reject.
    if (result.surviving_ips <= 0) {
      strip_column(degraded, ConnectivityRole::IpIp);
      strip_column(degraded, ConnectivityRole::IpDp);
      strip_column(degraded, ConnectivityRole::IpIm);
    }
    if (result.surviving_dps <= 0) {
      strip_column(degraded, ConnectivityRole::IpDp);
      strip_column(degraded, ConnectivityRole::DpDm);
      strip_column(degraded, ConnectivityRole::DpDp);
    }
    result.degraded = degraded;
    result.classification = classify(degraded);
  }
  result.degraded_score =
      result.classification.ok() ? flexibility_score(result.degraded) : 0;
  return result;
}

}  // namespace detail

DegradeResult degrade(const MachineClass& mc, const FabricShape& shape,
                      const FaultSet& faults,
                      const cost::ComponentLibrary& lib,
                      const cost::EstimateOptions& bindings) {
  DegradeResult result;
  result.original = mc;
  result.original_classification = classify(mc);
  result.original_score = flexibility_score(mc);
  result.faults = faults;

  detail::StructuralDegrade structural =
      detail::structural_degrade(mc, shape, faults.faults());
  result.surviving_ips = structural.surviving_ips;
  result.surviving_dps = structural.surviving_dps;
  result.surviving_luts = structural.surviving_luts;
  result.surviving_ports = structural.surviving_ports;
  result.component_survival = structural.component_survival;
  result.degraded = structural.degraded;
  result.classification = std::move(structural.classification);
  result.degraded_score = structural.degraded_score;

  // --- Costs ------------------------------------------------------------
  const cost::CostPlan original_plan(mc, lib, bindings.include_ip_dp_switch);
  result.original_cost = original_plan.evaluate(bindings.n, bindings.v);
  if (result.alive()) {
    // The surviving fabric is paced by its scarcest Many-population; a
    // Variable population binds to its surviving block count.
    std::int64_t n_eff = bindings.n;
    bool have_many = false;
    const auto consider = [&](Multiplicity m, std::int64_t surviving) {
      if (m != Multiplicity::Many) return;
      n_eff = have_many ? std::min(n_eff, surviving) : surviving;
      have_many = true;
    };
    consider(result.degraded.ips, result.surviving_ips);
    consider(result.degraded.dps, result.surviving_dps);
    if (have_many) n_eff = std::max<std::int64_t>(n_eff, 2);
    const std::int64_t v_eff =
        result.surviving_luts > 0 ? result.surviving_luts : bindings.v;
    const cost::CostPlan degraded_plan(result.degraded, lib,
                                       bindings.include_ip_dp_switch);
    result.degraded_cost = degraded_plan.evaluate(n_eff, v_eff);
  }
  return result;
}

DegradeResult degrade(const arch::ArchitectureSpec& spec,
                      const FaultSet& faults,
                      const cost::ComponentLibrary& lib,
                      const cost::EstimateOptions& bindings) {
  return degrade(spec.machine_class(), FabricShape::of(spec, bindings),
                 faults, lib, bindings);
}

std::string to_string(const DegradeResult& result) {
  const auto name_of = [](const Classification& c) -> std::string {
    if (c.ok()) return mpct::to_string(*c.name);
    return c.note.empty() ? std::string("unclassifiable") : c.note;
  };
  char survival[32];
  std::snprintf(survival, sizeof(survival), "%.0f%% alive",
                100.0 * result.component_survival);
  return name_of(result.original_classification) + " -> " +
         name_of(result.classification) + " (flex " +
         std::to_string(result.original_score) + " -> " +
         std::to_string(result.degraded_score) + ", " + survival + ")";
}

}  // namespace mpct::fault
