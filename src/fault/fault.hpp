#pragma once

/// Umbrella header for the fault-injection and graceful-degradation
/// engine (docs/FAULT.md):
///  * fault_model.hpp  — Fault / FaultSet / FabricShape / sample_faults
///  * degrade.hpp      — apply a FaultSet, reclassify the survivors
///  * route_around.hpp — NoC connectivity loss under router/link faults
///  * degradation_curve.hpp — Monte-Carlo yield/flexibility curves

#include "fault/degradation_curve.hpp"
#include "fault/degrade.hpp"
#include "fault/fault_model.hpp"
#include "fault/route_around.hpp"
