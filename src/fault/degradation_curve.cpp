#include "fault/degradation_curve.hpp"

#include <algorithm>
#include <cstdio>
#include <thread>

#include "core/flexibility.hpp"
#include "fault/route_around.hpp"
#include "report/csv.hpp"
#include "report/svg.hpp"
#include "trace/trace.hpp"

namespace mpct::fault {

CurveSpec CurveSpec::normalized() const {
  CurveSpec spec = *this;
  if (spec.fault_rates.empty()) spec.fault_rates.push_back(0.0);
  spec.trials_per_rate = std::max(spec.trials_per_rate, 1);
  if (spec.noc_width <= 0 || spec.noc_height <= 0) {
    spec.noc_width = 0;
    spec.noc_height = 0;
  }
  return spec;
}

std::size_t CurveSpec::cell_count() const {
  const std::size_t rates = fault_rates.empty() ? 1 : fault_rates.size();
  return rates * static_cast<std::size_t>(std::max(trials_per_rate, 1));
}

CurveEvaluator::CurveEvaluator(const CurveSpec& spec,
                               const cost::ComponentLibrary& lib)
    : spec_(spec.normalized()), cells_(spec_.cell_count()), lib_(&lib) {
  shape_ = FabricShape::of(spec_.machine, spec_.bindings);
  shape_.noc_width = spec_.noc_width;
  shape_.noc_height = spec_.noc_height;
  // Per-spec invariant every trial consumes (the denominator of
  // flexibility retention) — hoisted so the batch path never re-scores
  // the pristine structure.
  original_score_ = flexibility_score(spec_.machine);
}

TrialOutcome CurveEvaluator::evaluate_cell(std::size_t index) const {
  trace::profile_count(trace::ProfilePoint::CurveTrial);
  const std::size_t trials =
      static_cast<std::size_t>(spec_.trials_per_rate);
  const double rate = spec_.fault_rates[index / trials];

  // Every trial owns an independent derived stream, so outcomes depend
  // only on (spec, cell index) — the thread-count-invariance the
  // service path relies on.
  const FaultSet faults = sample_faults(
      shape_, FaultRates::uniform(rate),
      Rng::derive_seed(spec_.seed, static_cast<std::uint64_t>(index)));
  const DegradeResult degraded =
      degrade(spec_.machine, shape_, faults, *lib_, spec_.bindings);

  TrialOutcome outcome;
  outcome.alive = degraded.alive();
  outcome.degraded_score = degraded.degraded_score;
  outcome.flexibility_retention = degraded.flexibility_retention();
  outcome.component_survival = degraded.component_survival;
  if (shape_.noc_nodes() > 0) {
    outcome.connectivity =
        build_degraded_noc(shape_, faults).reachable_fraction();
  } else {
    const std::int64_t total = shape_.total_ports();
    std::int64_t surviving = 0;
    for (const std::int64_t ports : degraded.surviving_ports) {
      surviving += ports;
    }
    outcome.connectivity = total <= 0 ? 1.0
                                      : static_cast<double>(surviving) /
                                            static_cast<double>(total);
  }
  return outcome;
}

void CurveEvaluator::evaluate_range(std::size_t begin, std::size_t end,
                                    TrialOutcome* out) const {
  trace::ScopedSpan span("fault.cells", trace::Category::Fault, "cells",
                         static_cast<std::int64_t>(end - begin));
  // Batch path: per-cell CurveTrial ticks become one bulk count plus a
  // timed SweepBatch hook over the whole block.
  trace::profile_count_n(trace::ProfilePoint::CurveTrial, end - begin);
  trace::ProfileTimer timer(trace::ProfilePoint::SweepBatch);
  const std::size_t trials =
      static_cast<std::size_t>(spec_.trials_per_rate);
  std::vector<Fault> faults;  // recycled across every trial in the range
  for (std::size_t i = begin; i < end; ++i) {
    const double rate = spec_.fault_rates[i / trials];
    // Identical derived stream per cell as the scalar path — outcomes
    // depend only on (spec, cell index).
    sample_faults_into(shape_, FaultRates::uniform(rate),
                       Rng::derive_seed(spec_.seed,
                                        static_cast<std::uint64_t>(i)),
                       faults);
    const detail::StructuralDegrade degraded =
        detail::structural_degrade(spec_.machine, shape_, faults);

    TrialOutcome outcome;
    outcome.alive = degraded.alive();
    outcome.degraded_score = degraded.degraded_score;
    if (!outcome.alive) {
      outcome.flexibility_retention = 0.0;
    } else if (original_score_ <= 0) {
      outcome.flexibility_retention = 1.0;
    } else {
      outcome.flexibility_retention =
          static_cast<double>(degraded.degraded_score) /
          static_cast<double>(original_score_);
    }
    outcome.component_survival = degraded.component_survival;
    if (shape_.noc_nodes() > 0) {
      outcome.connectivity =
          build_degraded_noc(shape_, FaultSet(faults)).reachable_fraction();
    } else {
      const std::int64_t total = shape_.total_ports();
      std::int64_t surviving = 0;
      for (const std::int64_t ports : degraded.surviving_ports) {
        surviving += ports;
      }
      outcome.connectivity = total <= 0 ? 1.0
                                        : static_cast<double>(surviving) /
                                              static_cast<double>(total);
    }
    out[i - begin] = outcome;
  }
}

std::vector<CurvePoint> CurveEvaluator::finalize(
    std::span<const TrialOutcome> outcomes) const {
  const std::size_t trials =
      static_cast<std::size_t>(spec_.trials_per_rate);
  std::vector<CurvePoint> points;
  points.reserve(spec_.fault_rates.size());
  for (std::size_t r = 0; r < spec_.fault_rates.size(); ++r) {
    CurvePoint point;
    point.fault_rate = spec_.fault_rates[r];
    point.trials = spec_.trials_per_rate;
    std::int64_t alive = 0;
    double flex = 0, conn = 0, survival = 0;
    // Fixed index-order summation: identical result no matter how the
    // cells were chunked across workers.
    for (std::size_t t = 0; t < trials; ++t) {
      const TrialOutcome& o = outcomes[r * trials + t];
      alive += o.alive ? 1 : 0;
      flex += o.flexibility_retention;
      conn += o.connectivity;
      survival += o.component_survival;
    }
    const double denom = static_cast<double>(trials);
    point.yield = static_cast<double>(alive) / denom;
    point.mean_flexibility = flex / denom;
    point.mean_connectivity = conn / denom;
    point.mean_survival = survival / denom;
    points.push_back(point);
  }
  return points;
}

CurveResult evaluate_curve(const CurveSpec& spec,
                           const cost::ComponentLibrary& lib,
                           unsigned threads) {
  const CurveEvaluator evaluator(spec, lib);
  const std::size_t cells = evaluator.cell_count();
  std::vector<TrialOutcome> outcomes(cells);

  // Clamp to the core count: trials are CPU-bound, so oversubscription
  // only adds context-switch overhead (see the sweep() clamp rationale).
  const std::size_t hw = std::max(1u, std::thread::hardware_concurrency());
  const std::size_t workers =
      threads > 1
          ? std::min({static_cast<std::size_t>(threads), hw,
                      cells ? cells : std::size_t{1}})
          : 1;
  if (workers <= 1) {
    evaluator.evaluate_range(0, cells, outcomes.data());
  } else {
    // Contiguous disjoint slices; each worker writes only its own range.
    std::vector<std::thread> pool;
    pool.reserve(workers);
    const std::size_t chunk = (cells + workers - 1) / workers;
    for (unsigned w = 0; w < workers; ++w) {
      const std::size_t begin = std::min<std::size_t>(w * chunk, cells);
      const std::size_t end = std::min<std::size_t>(begin + chunk, cells);
      if (begin == end) break;
      pool.emplace_back([&evaluator, &outcomes, begin, end] {
        evaluator.evaluate_range(begin, end, outcomes.data() + begin);
      });
    }
    for (std::thread& t : pool) t.join();
  }

  CurveResult result;
  result.spec = evaluator.spec();
  result.points = evaluator.finalize(outcomes);
  return result;
}

namespace {

std::string fixed6(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.6f", value);
  return buffer;
}

}  // namespace

std::string to_csv(const CurveResult& result) {
  report::CsvWriter csv;
  csv.add_row({"fault_rate", "trials", "yield", "flexibility_retention",
               "connectivity", "survival"});
  for (const CurvePoint& p : result.points) {
    csv.add_row({fixed6(p.fault_rate), std::to_string(p.trials),
                 fixed6(p.yield), fixed6(p.mean_flexibility),
                 fixed6(p.mean_connectivity), fixed6(p.mean_survival)});
  }
  return csv.str();
}

std::string to_svg(const CurveResult& result, const std::string& title) {
  std::vector<std::string> x_labels;
  x_labels.reserve(result.points.size());
  report::Series yield{"yield", {}};
  report::Series flex{"flexibility retention", {}};
  report::Series conn{"connectivity", {}};
  for (const CurvePoint& p : result.points) {
    char label[32];
    std::snprintf(label, sizeof(label), "%.3f", p.fault_rate);
    x_labels.push_back(label);
    yield.values.push_back(p.yield);
    flex.values.push_back(p.mean_flexibility);
    conn.values.push_back(p.mean_connectivity);
  }
  report::SvgOptions options;
  options.title = title.empty() ? "graceful degradation" : title;
  return report::svg_line_chart(x_labels, {yield, flex, conn}, options);
}

}  // namespace mpct::fault
