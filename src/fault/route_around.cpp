#include "fault/route_around.hpp"

#include <cstdio>
#include <stdexcept>

#include "trace/trace.hpp"

namespace mpct::fault {

interconnect::MeshNoc build_degraded_noc(const FabricShape& shape,
                                         const FaultSet& faults,
                                         int link_capacity) {
  if (shape.noc_nodes() <= 0) {
    throw std::invalid_argument("build_degraded_noc: shape has no NoC");
  }
  interconnect::MeshNoc mesh(shape.noc_width, shape.noc_height,
                             link_capacity);
  for (const Fault& fault : faults.faults()) {
    switch (fault.kind) {
      case FaultKind::NocRouterDead:
        if (fault.index >= 0 && fault.index < mesh.node_count()) {
          mesh.fail_node(fault.index);
        }
        break;
      case FaultKind::NocLinkDead:
        mesh.fail_link(fault.index, fault.index2);
        break;
      default:
        break;  // structural faults do not touch the NoC topology
    }
  }
  return mesh;
}

NocDegradation analyze_noc(const FabricShape& shape, const FaultSet& faults,
                           const interconnect::TrafficParams& params) {
  trace::ProfileTimer timer(trace::ProfilePoint::RouteAround);
  NocDegradation d;
  d.width = shape.noc_width;
  d.height = shape.noc_height;

  interconnect::MeshNoc pristine(shape.noc_width, shape.noc_height);
  interconnect::MeshNoc degraded = build_degraded_noc(shape, faults);
  d.total_routers = pristine.node_count();
  d.alive_routers = degraded.alive_node_count();
  for (const Fault& fault : faults.faults()) {
    if (fault.kind == FaultKind::NocLinkDead &&
        !degraded.link_alive(fault.index, fault.index2) &&
        fault.index >= 0 && fault.index2 < pristine.node_count()) {
      ++d.failed_links;
    }
  }
  d.reachable_fraction = degraded.reachable_fraction();
  d.bisection_before = pristine.bisection_width();
  d.bisection_after = degraded.bisection_width();

  // Identical packet stream on both meshes: the generators draw from the
  // pristine topology, so the comparison isolates the routing fabric.
  std::vector<interconnect::Packet> packets =
      interconnect::uniform_traffic(pristine, params);
  std::vector<interconnect::Packet> replay = packets;
  d.baseline = pristine.simulate(packets);
  d.degraded = degraded.simulate(replay);
  d.delivered_ratio =
      d.baseline.delivered == 0
          ? 1.0
          : static_cast<double>(d.degraded.delivered) /
                static_cast<double>(d.baseline.delivered);
  return d;
}

std::string to_string(const NocDegradation& d) {
  char buffer[160];
  std::snprintf(buffer, sizeof(buffer),
                "mesh %dx%d: %d/%d routers, %d links down, reach %.3f, "
                "bisection %d->%d, delivery %.3f",
                d.width, d.height, d.alive_routers, d.total_routers,
                d.failed_links, d.reachable_fraction, d.bisection_before,
                d.bisection_after, d.delivered_ratio);
  return buffer;
}

}  // namespace mpct::fault
