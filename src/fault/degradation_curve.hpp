#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "cost/component_library.hpp"
#include "fault/degrade.hpp"
#include "fault/fault_model.hpp"

namespace mpct::fault {

/// The (fault-rate x trial) Monte-Carlo grid a degradation curve covers.
///
/// Determinism contract: trial t of rate r draws its FaultSet from
/// Rng::derive_seed(seed, r * trials_per_rate + t), so every cell's
/// outcome depends only on (spec, cell index) — never on thread count,
/// chunking, or evaluation order.  The same spec therefore produces a
/// byte-identical CSV on every run (tests/test_fault.cpp pins this
/// across 0, 1 and N worker threads).
struct CurveSpec {
  MachineClass machine;
  /// Binds the machine to a concrete FabricShape (Many -> n, Variable ->
  /// v), exactly as degrade() and the cost equations bind it.
  cost::EstimateOptions bindings;
  /// Optional mesh NoC laid over the fabric (router i at DP i); both 0
  /// to analyse the structural fabric alone.
  int noc_width = 0;
  int noc_height = 0;
  /// Swept axis: uniform per-component failure probabilities.
  std::vector<double> fault_rates;
  int trials_per_rate = 32;
  std::uint64_t seed = 1;

  /// Copy with an empty rate axis replaced by {0.0} and trials clamped
  /// to >= 1.
  CurveSpec normalized() const;
  std::size_t cell_count() const;

  friend bool operator==(const CurveSpec&, const CurveSpec&) = default;
};

/// One Monte-Carlo trial: the facts of a single degrade() call the
/// curve aggregates.  Plain data so chunk workers can write disjoint
/// slices.
struct TrialOutcome {
  bool alive = false;
  int degraded_score = 0;
  double flexibility_retention = 0;
  double component_survival = 1.0;
  /// Surviving connectivity: NoC reachable fraction when the spec lays
  /// a mesh over the fabric, else the surviving switch-port fraction.
  double connectivity = 1.0;

  friend bool operator==(const TrialOutcome&, const TrialOutcome&) = default;
};

/// Aggregated outcomes of all trials at one fault rate.
struct CurvePoint {
  double fault_rate = 0;
  int trials = 0;
  double yield = 0;               ///< fraction of trials still alive()
  double mean_flexibility = 0;    ///< mean flexibility retention
  double mean_connectivity = 0;   ///< mean connectivity retention
  double mean_survival = 0;       ///< mean component survival

  friend bool operator==(const CurvePoint&, const CurvePoint&) = default;
};

/// Full curve output.
struct CurveResult {
  CurveSpec spec;  ///< normalized
  std::vector<CurvePoint> points;  ///< one per fault rate, in axis order

  friend bool operator==(const CurveResult&, const CurveResult&) = default;
};

/// Memoized Monte-Carlo evaluator, the fault analogue of
/// explore::SweepEvaluator.  Construction binds the shape once and
/// hoists the per-spec invariants every trial used to re-derive (the
/// original structure's flexibility score); evaluate_range() then runs
/// trials through the batch path: one recycled fault vector across the
/// whole range (sample_faults_into) and the shared structural kernel
/// (fault::detail::structural_degrade), skipping the Eq. 1 / Eq. 2
/// pricing degrade() performs but no TrialOutcome field consumes.
///
/// Determinism: the batch path draws the identical per-cell
/// `Rng::derive_seed(seed, index)` streams as evaluate_cell(), so
/// outcomes — and the finalize() curve, and its CSV — are byte-for-byte
/// what the scalar path produces (tests/test_fault.cpp pins this).
///
/// Thread safety: immutable after construction; evaluate_range() is
/// const and touches only the output slice (scratch is per-call) — the
/// service engine's workers share one evaluator and write disjoint
/// ranges concurrently (engine.cpp), bit-identical to the sequential
/// path.
class CurveEvaluator {
 public:
  explicit CurveEvaluator(const CurveSpec& spec,
                          const cost::ComponentLibrary& lib =
                              cost::ComponentLibrary::default_library());

  std::size_t cell_count() const { return cells_; }
  const CurveSpec& spec() const { return spec_; }
  const FabricShape& shape() const { return shape_; }

  /// Evaluate one trial by flat index `rate_index * trials + trial`.
  /// Scalar reference path: full sample_faults + degrade per trial (the
  /// oracle the batch-parity tests compare evaluate_range against).
  TrialOutcome evaluate_cell(std::size_t index) const;

  /// Evaluate cells [begin, end) into @p out (out[i] = cell begin + i)
  /// through the batch path.
  void evaluate_range(std::size_t begin, std::size_t end,
                      TrialOutcome* out) const;

  /// Sequential index-order reduction of all cell outcomes into the
  /// per-rate curve (deterministic double summation order).
  std::vector<CurvePoint> finalize(
      std::span<const TrialOutcome> outcomes) const;

 private:
  CurveSpec spec_;  ///< normalized
  std::size_t cells_ = 0;
  FabricShape shape_;
  const cost::ComponentLibrary* lib_;
  int original_score_ = 0;  ///< flexibility of the pristine structure
};

/// Sweep the whole curve.  @p threads == 0 (or 1) evaluates
/// sequentially on the caller's thread; otherwise the cell range is
/// chunked across that many scoped workers writing disjoint slices
/// (bit-identical either way).  The service layer instead chunks over
/// its own worker pool (FaultSweepRequest in engine.cpp); this entry
/// point serves library callers and the sequential reference the tests
/// compare against.
CurveResult evaluate_curve(const CurveSpec& spec,
                           const cost::ComponentLibrary& lib =
                               cost::ComponentLibrary::default_library(),
                           unsigned threads = 0);

/// Render the curve as CSV (fixed %.6f formatting, so equal doubles
/// produce byte-identical documents):
/// fault_rate,trials,yield,flexibility_retention,connectivity,survival.
std::string to_csv(const CurveResult& result);

/// Render yield / flexibility-retention / connectivity as an SVG line
/// chart (report::svg_line_chart).
std::string to_svg(const CurveResult& result, const std::string& title = "");

}  // namespace mpct::fault
