#include "fault/fault_model.hpp"

#include <algorithm>
#include <limits>
#include <map>

namespace mpct::fault {

namespace {

/// Shape counts bound from multiplicities can be arbitrary int64 design
/// points, but Fault indices are int32; clamp so sampling never overflows
/// (a fabric with > 2^31 components is outside the model's scope anyway).
std::int64_t clamp_count(std::int64_t count) {
  return std::clamp<std::int64_t>(count, 0,
                                  std::numeric_limits<std::int32_t>::max());
}

std::int64_t bind(Multiplicity m, const cost::EstimateOptions& bindings) {
  switch (m) {
    case Multiplicity::Zero:
      return 0;
    case Multiplicity::One:
      return 1;
    case Multiplicity::Many:
      return clamp_count(bindings.n);
    case Multiplicity::Variable:
      return clamp_count(bindings.v);
  }
  return 0;
}

}  // namespace

std::string_view to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::IpDead:
      return "ip";
    case FaultKind::DpDead:
      return "dp";
    case FaultKind::SwitchPortDead:
      return "switch-port";
    case FaultKind::NocRouterDead:
      return "noc-router";
    case FaultKind::NocLinkDead:
      return "noc-link";
    case FaultKind::LutDead:
      return "lut";
  }
  return "unknown";
}

std::string to_string(const Fault& fault) {
  switch (fault.kind) {
    case FaultKind::SwitchPortDead:
      return "port[" + std::string(to_string(fault.role)) + ":" +
             std::to_string(fault.index) + "]";
    case FaultKind::NocLinkDead:
      return "link[" + std::to_string(fault.index) + "-" +
             std::to_string(fault.index2) + "]";
    default:
      return std::string(to_string(fault.kind)) + "[" +
             std::to_string(fault.index) + "]";
  }
}

FaultSet::FaultSet(std::vector<Fault> faults) : faults_(std::move(faults)) {
  std::sort(faults_.begin(), faults_.end());
  faults_.erase(std::unique(faults_.begin(), faults_.end()), faults_.end());
}

void FaultSet::add(const Fault& fault) {
  const auto at = std::lower_bound(faults_.begin(), faults_.end(), fault);
  if (at != faults_.end() && *at == fault) return;
  faults_.insert(at, fault);
}

void FaultSet::add(FaultKind kind, std::int32_t index) {
  add(Fault{kind, ConnectivityRole::IpIp, index, 0});
}

void FaultSet::add_switch_port(ConnectivityRole role, std::int32_t port) {
  add(Fault{FaultKind::SwitchPortDead, role, port, 0});
}

void FaultSet::add_noc_link(std::int32_t a, std::int32_t b) {
  add(Fault{FaultKind::NocLinkDead, ConnectivityRole::IpIp, std::min(a, b),
            std::max(a, b)});
}

bool FaultSet::contains(const Fault& fault) const {
  return std::binary_search(faults_.begin(), faults_.end(), fault);
}

std::size_t FaultSet::count(FaultKind kind) const {
  return static_cast<std::size_t>(
      std::count_if(faults_.begin(), faults_.end(),
                    [kind](const Fault& f) { return f.kind == kind; }));
}

std::size_t FaultSet::count_ports(ConnectivityRole role) const {
  return static_cast<std::size_t>(std::count_if(
      faults_.begin(), faults_.end(), [role](const Fault& f) {
        return f.kind == FaultKind::SwitchPortDead && f.role == role;
      }));
}

void FaultSet::merge(const FaultSet& other) {
  for (const Fault& fault : other.faults_) add(fault);
}

std::int64_t FabricShape::total_ports() const {
  std::int64_t total = 0;
  for (std::int64_t ports : switch_ports) total += ports;
  return total;
}

FabricShape FabricShape::of(const MachineClass& mc,
                            const cost::EstimateOptions& bindings) {
  FabricShape shape;
  if (mc.granularity == Granularity::Lut) {
    // Universal flow: v fine-grained blocks; every populated column is a
    // crossbar over the block population (the Eq. 1/Eq. 2 view).
    shape.luts = clamp_count(bindings.v);
    for (ConnectivityRole role : kAllConnectivityRoles) {
      if (mc.switch_at(role) != SwitchKind::None) {
        shape.switch_ports[static_cast<std::size_t>(role)] = shape.luts;
      }
    }
    return shape;
  }
  shape.ips = bind(mc.ips, bindings);
  shape.dps = bind(mc.dps, bindings);
  for (ConnectivityRole role : kAllConnectivityRoles) {
    if (mc.switch_at(role) == SwitchKind::None) continue;
    std::int64_t ports = 0;
    switch (role) {
      case ConnectivityRole::IpIp:
        ports = shape.ips;  // one port per participating IP
        break;
      case ConnectivityRole::IpDp:
        ports = shape.ips + shape.dps;
        break;
      case ConnectivityRole::IpIm:
        ports = 2 * shape.ips;  // one IM per IP in the cost model
        break;
      case ConnectivityRole::DpDm:
        ports = 2 * shape.dps;  // one DM per DP
        break;
      case ConnectivityRole::DpDp:
        ports = shape.dps;
        break;
    }
    shape.switch_ports[static_cast<std::size_t>(role)] = clamp_count(ports);
  }
  return shape;
}

FabricShape FabricShape::of(const arch::ArchitectureSpec& spec,
                            const cost::EstimateOptions& bindings) {
  // Concrete fixed counts bind exactly; symbolic counts through the same
  // n/m/v substitutions the cost estimators use.
  FabricShape shape = of(spec.machine_class(), bindings);
  const std::map<char, std::int64_t> symbols{{'n', bindings.n},
                                             {'m', bindings.m}};
  const MachineClass mc = spec.machine_class();
  if (mc.granularity == Granularity::IpDp) {
    if (const auto ips = spec.ips.evaluate(symbols)) {
      shape.ips = clamp_count(*ips);
    }
    if (const auto dps = spec.dps.evaluate(symbols)) {
      shape.dps = clamp_count(*dps);
    }
    // Re-derive port populations from the concrete block counts.
    for (ConnectivityRole role : kAllConnectivityRoles) {
      if (mc.switch_at(role) == SwitchKind::None) continue;
      std::int64_t ports = 0;
      switch (role) {
        case ConnectivityRole::IpIp:
          ports = shape.ips;
          break;
        case ConnectivityRole::IpDp:
          ports = shape.ips + shape.dps;
          break;
        case ConnectivityRole::IpIm:
          ports = 2 * shape.ips;
          break;
        case ConnectivityRole::DpDm:
          ports = 2 * shape.dps;
          break;
        case ConnectivityRole::DpDp:
          ports = shape.dps;
          break;
      }
      shape.switch_ports[static_cast<std::size_t>(role)] = clamp_count(ports);
    }
  }
  return shape;
}

namespace {

/// Shared sampler: appends the drawn faults to @p faults in draw order.
/// Both public entry points funnel through this one loop so they share
/// the RNG stream position contract below.
void draw_faults(const FabricShape& shape, const FaultRates& rates,
                 std::uint64_t seed, std::vector<Fault>& faults) {
  Rng rng(seed);
  const auto bernoulli = [&rng](double rate) {
    // Draw unconditionally so the stream position of every later
    // component is independent of earlier rates — changing one rate must
    // not reshuffle which components fail elsewhere.
    const double u = rng.next_double();
    return u < rate;
  };
  for (std::int64_t i = 0; i < shape.ips; ++i) {
    if (bernoulli(rates.ip)) {
      faults.push_back(Fault{FaultKind::IpDead, ConnectivityRole::IpIp,
                             static_cast<std::int32_t>(i), 0});
    }
  }
  for (std::int64_t i = 0; i < shape.dps; ++i) {
    if (bernoulli(rates.dp)) {
      faults.push_back(Fault{FaultKind::DpDead, ConnectivityRole::IpIp,
                             static_cast<std::int32_t>(i), 0});
    }
  }
  for (std::int64_t i = 0; i < shape.luts; ++i) {
    if (bernoulli(rates.lut)) {
      faults.push_back(Fault{FaultKind::LutDead, ConnectivityRole::IpIp,
                             static_cast<std::int32_t>(i), 0});
    }
  }
  for (ConnectivityRole role : kAllConnectivityRoles) {
    const std::int64_t ports =
        shape.switch_ports[static_cast<std::size_t>(role)];
    for (std::int64_t p = 0; p < ports; ++p) {
      if (bernoulli(rates.switch_port)) {
        faults.push_back(Fault{FaultKind::SwitchPortDead, role,
                               static_cast<std::int32_t>(p), 0});
      }
    }
  }
  const int nodes = shape.noc_nodes();
  for (int node = 0; node < nodes; ++node) {
    if (bernoulli(rates.noc_router)) {
      faults.push_back(Fault{FaultKind::NocRouterDead, ConnectivityRole::IpIp,
                             node, 0});
    }
  }
  for (int y = 0; y < shape.noc_height; ++y) {
    for (int x = 0; x < shape.noc_width; ++x) {
      const int node = y * shape.noc_width + x;
      if (x + 1 < shape.noc_width && bernoulli(rates.noc_link)) {
        faults.push_back(Fault{FaultKind::NocLinkDead, ConnectivityRole::IpIp,
                               node, node + 1});
      }
      if (y + 1 < shape.noc_height && bernoulli(rates.noc_link)) {
        faults.push_back(Fault{FaultKind::NocLinkDead, ConnectivityRole::IpIp,
                               node, node + shape.noc_width});
      }
    }
  }
}

}  // namespace

FaultSet sample_faults(const FabricShape& shape, const FaultRates& rates,
                       std::uint64_t seed) {
  std::vector<Fault> faults;
  draw_faults(shape, rates, seed, faults);
  return FaultSet(std::move(faults));
}

void sample_faults_into(const FabricShape& shape, const FaultRates& rates,
                        std::uint64_t seed, std::vector<Fault>& out) {
  out.clear();
  draw_faults(shape, rates, seed, out);
  // Canonicalise exactly as the FaultSet constructor does (the draw
  // order mixes kinds — e.g. LutDead sorts after SwitchPortDead but is
  // drawn before it).
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
}

namespace {

FaultSet kill_range(FaultKind kind, std::int64_t count) {
  std::vector<Fault> faults;
  faults.reserve(static_cast<std::size_t>(count));
  for (std::int64_t i = 0; i < count; ++i) {
    faults.push_back(
        Fault{kind, ConnectivityRole::IpIp, static_cast<std::int32_t>(i), 0});
  }
  return FaultSet(std::move(faults));
}

}  // namespace

FaultSet kill_all_ips(const FabricShape& shape) {
  return kill_range(FaultKind::IpDead, shape.ips);
}

FaultSet kill_all_dps(const FabricShape& shape) {
  return kill_range(FaultKind::DpDead, shape.dps);
}

FaultSet kill_all_luts(const FabricShape& shape) {
  return kill_range(FaultKind::LutDead, shape.luts);
}

FaultSet kill_all_switch_ports(const FabricShape& shape) {
  FaultSet set;
  for (ConnectivityRole role : kAllConnectivityRoles) {
    const std::int64_t ports =
        shape.switch_ports[static_cast<std::size_t>(role)];
    for (std::int64_t p = 0; p < ports; ++p) {
      set.add_switch_port(role, static_cast<std::int32_t>(p));
    }
  }
  return set;
}

}  // namespace mpct::fault
