#pragma once

#include <cstdint>
#include <vector>

#include "core/taxonomy_index.hpp"
#include "cost/cost_plan.hpp"
#include "explore/recommend.hpp"

namespace mpct::explore {

/// The (n x lut_budget x objective) design-space grid a sweep covers.
///
/// `base` carries everything a single recommend() call would take except
/// the swept axes: paradigm, the needs_* constraints and min_flexibility
/// all apply uniformly across the grid (they are design-point
/// independent, so the candidate set is filtered exactly once per
/// sweep).  Empty axis vectors normalize to the corresponding value in
/// `base`, so a default SweepGrid prices one point.
struct SweepGrid {
  Requirements base;
  std::vector<std::int64_t> n_values;
  std::vector<std::int64_t> lut_budgets;
  std::vector<Requirements::Objective> objectives;

  /// Copy with empty axes replaced by the single base value.
  SweepGrid normalized() const;
  /// Cell count of the normalized grid.
  std::size_t cell_count() const;

  bool operator==(const SweepGrid&) const = default;
};

/// One evaluated grid cell: the winning class (if any) at this design
/// point under this objective, with its costs.
struct SweepPoint {
  std::int64_t n = 0;
  std::int64_t lut_budget = 0;
  Requirements::Objective objective = Requirements::Objective::MinConfigBits;
  bool feasible = false;  ///< false iff no class passed the filter
  TaxonomicName best;     ///< valid only when feasible
  int flexibility = 0;
  double area_kge = 0;
  std::int64_t config_bits = 0;

  bool operator==(const SweepPoint&) const = default;
};

/// Full sweep output: every cell, plus the per-objective Pareto front
/// over (flexibility maximize, objective cost minimize).
struct SweepResult {
  std::vector<SweepPoint> points;        ///< row-major (n, lut, objective)
  std::vector<SweepPoint> pareto_front;  ///< non-dominated subset
  std::size_t candidate_classes = 0;     ///< rows surviving the filter

  bool operator==(const SweepResult&) const = default;
};

/// Cells of @p points not dominated by any other cell *under the same
/// objective*: a point dominates another when its flexibility is >= and
/// its objective cost is <= with at least one strict.  Infeasible cells
/// never appear.  Output order is deterministic (input order preserved).
std::vector<SweepPoint> pareto_front(const std::vector<SweepPoint>& points);

/// Memoized sweep evaluator.  Construction filters the 47-row taxonomy
/// once against `grid.base` and builds one cost::CostPlan per surviving
/// class; each cell evaluation is then `candidates x evaluate(n, v)` —
/// a handful of multiplies per candidate, no allocation, no library
/// walks.
///
/// Bit-identity contract: evaluate_cell() picks the same winner with
/// bit-identical costs as `recommend()` called at that cell's
/// Requirements and taking the front row (tests/test_sweep.cpp).
///
/// Thread safety: immutable after construction; evaluate_cell() and
/// evaluate_range() are const and touch only the output range — workers
/// may share one evaluator and write disjoint ranges concurrently.
class SweepEvaluator {
 public:
  explicit SweepEvaluator(const SweepGrid& grid,
                          const cost::ComponentLibrary& lib =
                              cost::ComponentLibrary::default_library());

  std::size_t cell_count() const { return cells_; }
  std::size_t candidate_count() const { return candidates_.size(); }

  /// Evaluate one cell by flat row-major index
  /// `(ni * lut_budgets.size() + li) * objectives.size() + oi`.
  SweepPoint evaluate_cell(std::size_t index) const;

  /// Evaluate cells [begin, end) into @p out (out[i] = cell begin + i).
  void evaluate_range(std::size_t begin, std::size_t end,
                      SweepPoint* out) const;

  const SweepGrid& grid() const { return grid_; }

 private:
  struct Candidate {
    const TaxonomyIndex::ClassInfo* info = nullptr;
    cost::CostPlan plan;
  };

  SweepGrid grid_;  ///< normalized
  std::size_t cells_ = 0;
  std::vector<Candidate> candidates_;
};

/// Sweep the whole grid.  @p threads == 0 (or 1) evaluates sequentially
/// on the caller's thread; otherwise the cell range is chunked across
/// that many scoped workers writing disjoint slices of the result
/// (results are bit-identical either way).  The service layer instead
/// chunks over its own worker pool (engine.cpp) — this entry point is
/// for library callers and for the sequential reference the tests
/// compare against.
SweepResult sweep(const SweepGrid& grid,
                  const cost::ComponentLibrary& lib =
                      cost::ComponentLibrary::default_library(),
                  unsigned threads = 0);

}  // namespace mpct::explore
