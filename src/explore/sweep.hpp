#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "core/taxonomy_index.hpp"
#include "cost/cost_plan_set.hpp"
#include "explore/recommend.hpp"

namespace mpct::explore {

/// The (n x lut_budget x objective) design-space grid a sweep covers.
///
/// `base` carries everything a single recommend() call would take except
/// the swept axes: paradigm, the needs_* constraints and min_flexibility
/// all apply uniformly across the grid (they are design-point
/// independent, so the candidate set is filtered exactly once per
/// sweep).  Empty axis vectors normalize to the corresponding value in
/// `base`, so a default SweepGrid prices one point.
struct SweepGrid {
  Requirements base;
  std::vector<std::int64_t> n_values;
  std::vector<std::int64_t> lut_budgets;
  std::vector<Requirements::Objective> objectives;

  /// Copy with empty axes replaced by the single base value.
  SweepGrid normalized() const;
  /// Cell count of the normalized grid.
  std::size_t cell_count() const;

  bool operator==(const SweepGrid&) const = default;
};

/// One evaluated grid cell: the winning class (if any) at this design
/// point under this objective, with its costs.
struct SweepPoint {
  std::int64_t n = 0;
  std::int64_t lut_budget = 0;
  Requirements::Objective objective = Requirements::Objective::MinConfigBits;
  bool feasible = false;  ///< false iff no class passed the filter
  TaxonomicName best;     ///< valid only when feasible
  int flexibility = 0;
  double area_kge = 0;
  std::int64_t config_bits = 0;

  bool operator==(const SweepPoint&) const = default;
};

/// Full sweep output: every cell, plus the per-objective Pareto front
/// over (flexibility maximize, objective cost minimize).
struct SweepResult {
  std::vector<SweepPoint> points;        ///< row-major (n, lut, objective)
  std::vector<SweepPoint> pareto_front;  ///< non-dominated subset
  std::size_t candidate_classes = 0;     ///< rows surviving the filter

  bool operator==(const SweepResult&) const = default;
};

/// Cells of @p points not dominated by any other cell *under the same
/// objective*: a point dominates another when its flexibility is >= and
/// its objective cost is <= with at least one strict.  Infeasible cells
/// never appear.  Output order is deterministic (input order preserved).
///
/// O(N log N): per objective group, sort by cost and sweep tracking the
/// best flexibility seen at strictly smaller cost.  Returns exactly the
/// front detail::pareto_front_reference computes, in the same order.
std::vector<SweepPoint> pareto_front(const std::vector<SweepPoint>& points);

namespace detail {

/// The original all-pairs O(N^2) implementation, kept as the oracle the
/// randomized equivalence test compares the sort-then-sweep front
/// against (tests/test_sweep.cpp, ParetoFront.MatchesReference*).
std::vector<SweepPoint> pareto_front_reference(
    const std::vector<SweepPoint>& points);

}  // namespace detail

/// Memoized sweep evaluator.  Construction filters the 47-row taxonomy
/// once against `grid.base` and folds each survivor's Eq. 1 / Eq. 2
/// invariants into one slot of a plan-major cost::CostPlanSet; each
/// candidate's interned name and flexibility are cached alongside, so
/// cell evaluation touches no taxonomy or library state at all.
///
/// evaluate_range() runs the batch kernel: cell indices are decoded once
/// per grid row (no per-cell div/mod), candidates whose cost is
/// independent of the LUT-budget axis are priced once per row and folded
/// into a per-objective champion, and the remaining candidates are
/// evaluated candidate-major over cache-sized blocks of LUT-budget lanes
/// before a per-cell winner reduction.  evaluate_cell() is the scalar
/// reference the parity tests compare against.
///
/// Bit-identity contract: both paths pick the same winner with
/// bit-identical costs as `recommend()` called at that cell's
/// Requirements and taking the front row (tests/test_sweep.cpp).  This
/// holds because each candidate's cost at a given (n, v) is computed by
/// the one shared cost::detail::evaluate_terms kernel regardless of
/// batching, and the winner ordering (`cell_precedes`, tie-broken by the
/// unique interned class name) is a strict total order — the minimum is
/// a property of the cell's cost set, independent of fold order or how
/// cells are partitioned into ranges.
///
/// Thread safety: immutable after construction; evaluate_cell() and
/// evaluate_range() are const and touch only the output range (batch
/// scratch is per-call) — workers may share one evaluator and write
/// disjoint ranges concurrently.
class SweepEvaluator {
 public:
  explicit SweepEvaluator(const SweepGrid& grid,
                          const cost::ComponentLibrary& lib =
                              cost::ComponentLibrary::default_library());

  std::size_t cell_count() const { return cells_; }
  std::size_t candidate_count() const { return candidates_.size(); }

  /// Cells per grid row (one n value x all LUT budgets x all
  /// objectives) — the batch kernel's natural granularity.  Chunking
  /// callers round their chunk sizes up to a multiple of this so no
  /// range splits a row (a split row still evaluates correctly, just
  /// through the scalar edge path).
  std::size_t row_cells() const {
    return grid_.lut_budgets.size() * grid_.objectives.size();
  }

  /// Evaluate one cell by flat row-major index
  /// `(ni * lut_budgets.size() + li) * objectives.size() + oi`.
  /// Scalar reference path.
  SweepPoint evaluate_cell(std::size_t index) const;

  /// Evaluate cells [begin, end) into @p out (out[i] = cell begin + i)
  /// through the batch kernel (scalar edge path for partial rows).
  void evaluate_range(std::size_t begin, std::size_t end,
                      SweepPoint* out) const;

  const SweepGrid& grid() const { return grid_; }

 private:
  /// Everything the winner reduction reads about one candidate, cached
  /// at construction (the plan itself lives in plans_ at the same
  /// index).
  struct Candidate {
    TaxonomicName name;
    std::string_view interned;  ///< unique -> cell_precedes totally orders
    int flexibility = 0;
  };

  void evaluate_row_batch(std::size_t ni, SweepPoint* out,
                          cost::CostPoint* scratch) const;

  SweepGrid grid_;  ///< normalized
  std::size_t cells_ = 0;
  cost::CostPlanSet plans_;            ///< plan-major, index-aligned with
  std::vector<Candidate> candidates_;  ///< ...this metadata array
  std::vector<std::uint32_t> v_dep_;   ///< candidates whose cost reads v
  std::vector<std::uint32_t> v_indep_;  ///< ...and those priced once/row
};

/// Sweep the whole grid.  @p threads == 0 (or 1) evaluates sequentially
/// on the caller's thread; otherwise the cell range is chunked across
/// scoped workers writing disjoint slices of the result (results are
/// bit-identical either way).  The worker count is clamped to
/// std::thread::hardware_concurrency() — oversubscribing cores only adds
/// scheduling overhead to a CPU-bound kernel — and chunks are rounded up
/// to whole grid rows so every worker runs the batch path.  The service
/// layer instead chunks over its own worker pool (engine.cpp); this
/// entry point is for library callers and for the sequential reference
/// the tests compare against.
SweepResult sweep(const SweepGrid& grid,
                  const cost::ComponentLibrary& lib =
                      cost::ComponentLibrary::default_library(),
                  unsigned threads = 0);

}  // namespace mpct::explore
