#include "explore/sweep.hpp"

#include <algorithm>
#include <limits>
#include <span>
#include <thread>

#include "trace/trace.hpp"

namespace mpct::explore {

SweepGrid SweepGrid::normalized() const {
  SweepGrid g = *this;
  if (g.n_values.empty()) g.n_values.push_back(base.n);
  if (g.lut_budgets.empty()) g.lut_budgets.push_back(base.lut_budget);
  if (g.objectives.empty()) g.objectives.push_back(base.objective);
  return g;
}

std::size_t SweepGrid::cell_count() const {
  const std::size_t n = n_values.empty() ? 1 : n_values.size();
  const std::size_t l = lut_budgets.empty() ? 1 : lut_budgets.size();
  const std::size_t o = objectives.empty() ? 1 : objectives.size();
  return n * l * o;
}

namespace {

/// LUT-budget lanes evaluated per batch block: bounds the candidate-major
/// scratch (up to 47 candidates x 128 lanes x 16 B = 96 KiB) so a block's
/// costs stay cache-resident through the winner reduction.
constexpr std::size_t kBlockLanes = 128;

/// The exact ordering recommendation_precedes() applies, on raw fields —
/// the sweep's winner must be the row recommend() would sort first.
/// With distinct names (interned class names are unique) this is a
/// strict total order, so the minimum over any candidate set is unique
/// and independent of the order the set is folded in — the property the
/// batch kernel's champion + per-cell reduction relies on.
bool cell_precedes(Requirements::Objective objective, double a_area,
                   std::int64_t a_bits, std::string_view a_name,
                   double b_area, std::int64_t b_bits,
                   std::string_view b_name) {
  if (objective == Requirements::Objective::MinConfigBits &&
      a_bits != b_bits) {
    return a_bits < b_bits;
  }
  if (a_area != b_area) return a_area < b_area;
  if (a_bits != b_bits) return a_bits < b_bits;
  return a_name < b_name;
}

std::int64_t objective_cost_bits(const SweepPoint& p) {
  return p.config_bits;
}

bool dominates(const SweepPoint& a, const SweepPoint& b) {
  // Same-objective comparison only; caller guarantees it.
  const bool by_bits =
      a.objective == Requirements::Objective::MinConfigBits;
  const bool flex_ge = a.flexibility >= b.flexibility;
  const bool flex_gt = a.flexibility > b.flexibility;
  bool cost_le = false, cost_lt = false;
  if (by_bits) {
    cost_le = objective_cost_bits(a) <= objective_cost_bits(b);
    cost_lt = objective_cost_bits(a) < objective_cost_bits(b);
  } else {
    cost_le = a.area_kge <= b.area_kge;
    cost_lt = a.area_kge < b.area_kge;
  }
  return flex_ge && cost_le && (flex_gt || cost_lt);
}

}  // namespace

namespace detail {

std::vector<SweepPoint> pareto_front_reference(
    const std::vector<SweepPoint>& points) {
  std::vector<SweepPoint> front;
  for (const SweepPoint& p : points) {
    if (!p.feasible) continue;
    bool dominated = false;
    for (const SweepPoint& q : points) {
      if (!q.feasible || q.objective != p.objective) continue;
      if (dominates(q, p)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) front.push_back(p);
  }
  return front;
}

}  // namespace detail

std::vector<SweepPoint> pareto_front(const std::vector<SweepPoint>& points) {
  // Per objective group: sort indices by objective cost ascending, then
  // sweep once.  A point is dominated iff some same-objective point has
  // (strictly smaller cost, flexibility >=) — tracked by best_flex_lt,
  // the maximum flexibility at strictly smaller cost — or (equal cost,
  // strictly greater flexibility) — tracked by run_max over its
  // equal-cost run.  Equal cost *and* equal flexibility dominates
  // neither way, matching the reference's strict-part requirement.
  std::vector<char> dominated(points.size(), 0);
  std::array<std::vector<std::size_t>, 2> groups;
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (!points[i].feasible) continue;
    const bool by_bits =
        points[i].objective == Requirements::Objective::MinConfigBits;
    groups[by_bits ? 0 : 1].push_back(i);
  }
  for (std::size_t g = 0; g < groups.size(); ++g) {
    std::vector<std::size_t>& idx = groups[g];
    if (idx.empty()) continue;
    const bool by_bits = g == 0;
    const auto cost_less = [&](std::size_t a, std::size_t b) {
      return by_bits ? points[a].config_bits < points[b].config_bits
                     : points[a].area_kge < points[b].area_kge;
    };
    std::sort(idx.begin(), idx.end(), cost_less);
    int best_flex_lt = std::numeric_limits<int>::min();
    std::size_t i = 0;
    while (i < idx.size()) {
      // [i, j) is one equal-cost run.
      std::size_t j = i;
      int run_max = std::numeric_limits<int>::min();
      while (j < idx.size() && !cost_less(idx[i], idx[j])) {
        run_max = std::max(run_max, points[idx[j]].flexibility);
        ++j;
      }
      for (std::size_t k = i; k < j; ++k) {
        const int flex = points[idx[k]].flexibility;
        if (best_flex_lt >= flex || run_max > flex) dominated[idx[k]] = 1;
      }
      best_flex_lt = std::max(best_flex_lt, run_max);
      i = j;
    }
  }
  std::vector<SweepPoint> front;
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (points[i].feasible && !dominated[i]) front.push_back(points[i]);
  }
  return front;
}

SweepEvaluator::SweepEvaluator(const SweepGrid& grid,
                               const cost::ComponentLibrary& lib)
    : grid_(grid.normalized()), cells_(grid_.cell_count()) {
  trace::ScopedSpan span("sweep.build", trace::Category::Sweep);
  // The requirements filter is design-point independent, so the
  // candidate set is shared by every cell: filter the 47 rows once and
  // fold each survivor's Eq. 1 / Eq. 2 invariants into one contiguous
  // CostPlanSet slot, with the name and flexibility the winner reduction
  // needs cached index-aligned.
  const TaxonomyIndex& index = taxonomy_index();
  candidates_.reserve(index.rows().size());
  plans_.reserve(index.rows().size());
  for (const TaxonomyIndex::ClassInfo& row : index.rows()) {
    if (!row.named) continue;
    if (!satisfies_requirements(row.machine, row.name, grid_.base,
                                row.flexibility)) {
      continue;
    }
    const std::size_t p = plans_.add(row.machine, lib);
    candidates_.push_back(Candidate{row.name, index.interned_name(row.name),
                                    row.flexibility});
    (plans_.depends_v(p) ? v_dep_ : v_indep_)
        .push_back(static_cast<std::uint32_t>(p));
  }
}

SweepPoint SweepEvaluator::evaluate_cell(std::size_t index) const {
  trace::profile_count(trace::ProfilePoint::SweepCell);
  const std::size_t o_count = grid_.objectives.size();
  const std::size_t l_count = grid_.lut_budgets.size();
  const std::size_t oi = index % o_count;
  const std::size_t li = (index / o_count) % l_count;
  const std::size_t ni = index / (o_count * l_count);

  SweepPoint point;
  point.n = grid_.n_values[ni];
  point.lut_budget = grid_.lut_budgets[li];
  point.objective = grid_.objectives[oi];

  trace::profile_count_n(trace::ProfilePoint::CostEvaluate,
                         candidates_.size());
  int best = -1;
  cost::CostPoint best_cost;
  std::string_view best_name;
  for (std::size_t c = 0; c < candidates_.size(); ++c) {
    const cost::CostPoint cost =
        plans_.evaluate(c, point.n, point.lut_budget);
    const std::string_view name = candidates_[c].interned;
    if (best < 0 || cell_precedes(point.objective, cost.area_kge,
                                  cost.config_bits, name, best_cost.area_kge,
                                  best_cost.config_bits, best_name)) {
      best = static_cast<int>(c);
      best_cost = cost;
      best_name = name;
    }
  }
  if (best >= 0) {
    point.feasible = true;
    point.best = candidates_[static_cast<std::size_t>(best)].name;
    point.flexibility =
        candidates_[static_cast<std::size_t>(best)].flexibility;
    point.area_kge = best_cost.area_kge;
    point.config_bits = best_cost.config_bits;
  }
  return point;
}

void SweepEvaluator::evaluate_row_batch(std::size_t ni, SweepPoint* out,
                                        cost::CostPoint* scratch) const {
  const std::int64_t n = grid_.n_values[ni];
  const std::size_t l_count = grid_.lut_budgets.size();
  const std::size_t o_count = grid_.objectives.size();
  const std::span<const std::int64_t> v_all(grid_.lut_budgets);

  // Candidates whose cost never reads the LUT-budget axis price
  // identically across the whole row: evaluate each once (the v argument
  // is immaterial — the kernel performs the same ops for any v) and fold
  // them into one champion per objective.  The per-cell reduction then
  // starts from the champion instead of re-folding them lane by lane.
  trace::profile_count_n(trace::ProfilePoint::CostEvaluate, v_indep_.size());
  struct Champion {
    int cand = -1;
    cost::CostPoint cost;
  };
  std::vector<Champion> champ(o_count);
  for (const std::uint32_t c : v_indep_) {
    const cost::CostPoint cost = plans_.evaluate(c, n, v_all[0]);
    for (std::size_t oi = 0; oi < o_count; ++oi) {
      Champion& ch = champ[oi];
      if (ch.cand < 0 ||
          cell_precedes(grid_.objectives[oi], cost.area_kge,
                        cost.config_bits, candidates_[c].interned,
                        ch.cost.area_kge, ch.cost.config_bits,
                        candidates_[static_cast<std::size_t>(ch.cand)]
                            .interned)) {
        ch.cand = static_cast<int>(c);
        ch.cost = cost;
      }
    }
  }

  // v-dependent candidates, candidate-major over cache-sized lane
  // blocks: for each block, stream every candidate's plan across the
  // lanes (pure multiply-add over one contiguous PlanTerms), then reduce
  // winners per cell while the block's costs are still cache-hot.
  for (std::size_t lb = 0; lb < l_count; lb += kBlockLanes) {
    const std::size_t lanes = std::min(kBlockLanes, l_count - lb);
    trace::ProfileTimer timer(trace::ProfilePoint::SweepBatch);
    for (std::size_t d = 0; d < v_dep_.size(); ++d) {
      plans_.evaluate_row(v_dep_[d], n, v_all.subspan(lb, lanes),
                          scratch + d * lanes);
    }
    for (std::size_t li = lb; li < lb + lanes; ++li) {
      for (std::size_t oi = 0; oi < o_count; ++oi) {
        SweepPoint point;
        point.n = n;
        point.lut_budget = grid_.lut_budgets[li];
        point.objective = grid_.objectives[oi];

        int best = champ[oi].cand;
        cost::CostPoint best_cost = champ[oi].cost;
        std::string_view best_name =
            best >= 0 ? candidates_[static_cast<std::size_t>(best)].interned
                      : std::string_view{};
        for (std::size_t d = 0; d < v_dep_.size(); ++d) {
          const cost::CostPoint cost = scratch[d * lanes + (li - lb)];
          const std::uint32_t c = v_dep_[d];
          if (best < 0 ||
              cell_precedes(point.objective, cost.area_kge,
                            cost.config_bits, candidates_[c].interned,
                            best_cost.area_kge, best_cost.config_bits,
                            best_name)) {
            best = static_cast<int>(c);
            best_cost = cost;
            best_name = candidates_[c].interned;
          }
        }
        if (best >= 0) {
          point.feasible = true;
          point.best = candidates_[static_cast<std::size_t>(best)].name;
          point.flexibility =
              candidates_[static_cast<std::size_t>(best)].flexibility;
          point.area_kge = best_cost.area_kge;
          point.config_bits = best_cost.config_bits;
        }
        out[li * o_count + oi] = point;
      }
    }
  }
}

void SweepEvaluator::evaluate_range(std::size_t begin, std::size_t end,
                                    SweepPoint* out) const {
  trace::ScopedSpan span("sweep.cells", trace::Category::Sweep, "cells",
                         static_cast<std::int64_t>(end - begin));
  const std::size_t row = row_cells();
  const std::size_t l_count = grid_.lut_budgets.size();
  // Per-call scratch keeps evaluate_range const and concurrency-safe.
  std::vector<cost::CostPoint> scratch(
      v_dep_.size() * std::min(kBlockLanes, l_count));
  std::size_t i = begin;
  while (i < end) {
    const std::size_t row_start = (i / row) * row;
    if (i == row_start && row_start + row <= end) {
      evaluate_row_batch(i / row, out + (i - begin), scratch.data());
      i += row;
    } else {
      // Partial row at a range edge: scalar path (bit-identical — the
      // per-cell winner is partition-independent).
      const std::size_t stop = std::min(end, row_start + row);
      for (; i < stop; ++i) out[i - begin] = evaluate_cell(i);
    }
  }
}

SweepResult sweep(const SweepGrid& grid, const cost::ComponentLibrary& lib,
                  unsigned threads) {
  const SweepEvaluator evaluator(grid, lib);
  const std::size_t cells = evaluator.cell_count();

  SweepResult result;
  result.candidate_classes = evaluator.candidate_count();
  result.points.resize(cells);

  // More workers than cores only adds context-switch overhead to a
  // CPU-bound kernel (the committed bench once measured 4 threads at
  // 0.6x the single-thread rate on a 1-core host) — clamp.
  const std::size_t hw = std::max(1u, std::thread::hardware_concurrency());
  const std::size_t workers =
      threads > 1
          ? std::min({static_cast<std::size_t>(threads), hw,
                      cells ? cells : std::size_t{1}})
          : 1;
  if (workers <= 1) {
    evaluator.evaluate_range(0, cells, result.points.data());
  } else {
    // Contiguous disjoint slices, rounded up to whole grid rows so every
    // worker runs the batch kernel; each worker writes only its own
    // range, so no synchronization beyond join() is needed.
    std::vector<std::thread> pool;
    pool.reserve(workers);
    const std::size_t row = evaluator.row_cells();
    std::size_t chunk = (cells + workers - 1) / workers;
    chunk = (chunk + row - 1) / row * row;
    for (std::size_t w = 0; w < workers; ++w) {
      const std::size_t begin = std::min(w * chunk, cells);
      const std::size_t end = std::min(begin + chunk, cells);
      if (begin == end) break;
      pool.emplace_back([&evaluator, &result, begin, end] {
        evaluator.evaluate_range(begin, end, result.points.data() + begin);
      });
    }
    for (std::thread& t : pool) t.join();
  }

  result.pareto_front = pareto_front(result.points);
  return result;
}

}  // namespace mpct::explore
