#include "explore/sweep.hpp"

#include <algorithm>
#include <thread>

#include "trace/trace.hpp"

namespace mpct::explore {

SweepGrid SweepGrid::normalized() const {
  SweepGrid g = *this;
  if (g.n_values.empty()) g.n_values.push_back(base.n);
  if (g.lut_budgets.empty()) g.lut_budgets.push_back(base.lut_budget);
  if (g.objectives.empty()) g.objectives.push_back(base.objective);
  return g;
}

std::size_t SweepGrid::cell_count() const {
  const std::size_t n = n_values.empty() ? 1 : n_values.size();
  const std::size_t l = lut_budgets.empty() ? 1 : lut_budgets.size();
  const std::size_t o = objectives.empty() ? 1 : objectives.size();
  return n * l * o;
}

namespace {

/// The exact ordering recommendation_precedes() applies, on raw fields —
/// the sweep's winner must be the row recommend() would sort first.
bool cell_precedes(Requirements::Objective objective, double a_area,
                   std::int64_t a_bits, std::string_view a_name,
                   double b_area, std::int64_t b_bits,
                   std::string_view b_name) {
  if (objective == Requirements::Objective::MinConfigBits &&
      a_bits != b_bits) {
    return a_bits < b_bits;
  }
  if (a_area != b_area) return a_area < b_area;
  if (a_bits != b_bits) return a_bits < b_bits;
  return a_name < b_name;
}

std::int64_t objective_cost_bits(const SweepPoint& p) {
  return p.config_bits;
}

bool dominates(const SweepPoint& a, const SweepPoint& b) {
  // Same-objective comparison only; caller guarantees it.
  const bool by_bits =
      a.objective == Requirements::Objective::MinConfigBits;
  const bool flex_ge = a.flexibility >= b.flexibility;
  const bool flex_gt = a.flexibility > b.flexibility;
  bool cost_le = false, cost_lt = false;
  if (by_bits) {
    cost_le = objective_cost_bits(a) <= objective_cost_bits(b);
    cost_lt = objective_cost_bits(a) < objective_cost_bits(b);
  } else {
    cost_le = a.area_kge <= b.area_kge;
    cost_lt = a.area_kge < b.area_kge;
  }
  return flex_ge && cost_le && (flex_gt || cost_lt);
}

}  // namespace

std::vector<SweepPoint> pareto_front(const std::vector<SweepPoint>& points) {
  std::vector<SweepPoint> front;
  for (const SweepPoint& p : points) {
    if (!p.feasible) continue;
    bool dominated = false;
    for (const SweepPoint& q : points) {
      if (!q.feasible || q.objective != p.objective) continue;
      if (dominates(q, p)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) front.push_back(p);
  }
  return front;
}

SweepEvaluator::SweepEvaluator(const SweepGrid& grid,
                               const cost::ComponentLibrary& lib)
    : grid_(grid.normalized()), cells_(grid_.cell_count()) {
  trace::ScopedSpan span("sweep.build", trace::Category::Sweep);
  // The requirements filter is design-point independent, so the
  // candidate set is shared by every cell: filter the 47 rows once and
  // fold each survivor's Eq. 1 / Eq. 2 invariants into a CostPlan.
  const TaxonomyIndex& index = taxonomy_index();
  candidates_.reserve(index.rows().size());
  for (const TaxonomyIndex::ClassInfo& row : index.rows()) {
    if (!row.named) continue;
    if (!satisfies_requirements(row.machine, row.name, grid_.base,
                                row.flexibility)) {
      continue;
    }
    candidates_.push_back(Candidate{&row, cost::CostPlan(row.machine, lib)});
  }
}

SweepPoint SweepEvaluator::evaluate_cell(std::size_t index) const {
  trace::profile_count(trace::ProfilePoint::SweepCell);
  const std::size_t o_count = grid_.objectives.size();
  const std::size_t l_count = grid_.lut_budgets.size();
  const std::size_t oi = index % o_count;
  const std::size_t li = (index / o_count) % l_count;
  const std::size_t ni = index / (o_count * l_count);

  SweepPoint point;
  point.n = grid_.n_values[ni];
  point.lut_budget = grid_.lut_budgets[li];
  point.objective = grid_.objectives[oi];

  const TaxonomyIndex& names = taxonomy_index();
  const Candidate* best = nullptr;
  cost::CostPoint best_cost;
  std::string_view best_name;
  for (const Candidate& cand : candidates_) {
    const cost::CostPoint cost = cand.plan.evaluate(point.n, point.lut_budget);
    const std::string_view name = names.interned_name(cand.info->name);
    if (!best || cell_precedes(point.objective, cost.area_kge,
                               cost.config_bits, name, best_cost.area_kge,
                               best_cost.config_bits, best_name)) {
      best = &cand;
      best_cost = cost;
      best_name = name;
    }
  }
  if (best) {
    point.feasible = true;
    point.best = best->info->name;
    point.flexibility = best->info->flexibility;
    point.area_kge = best_cost.area_kge;
    point.config_bits = best_cost.config_bits;
  }
  return point;
}

void SweepEvaluator::evaluate_range(std::size_t begin, std::size_t end,
                                    SweepPoint* out) const {
  trace::ScopedSpan span("sweep.cells", trace::Category::Sweep, "cells",
                         static_cast<std::int64_t>(end - begin));
  for (std::size_t i = begin; i < end; ++i) out[i - begin] = evaluate_cell(i);
}

SweepResult sweep(const SweepGrid& grid, const cost::ComponentLibrary& lib,
                  unsigned threads) {
  const SweepEvaluator evaluator(grid, lib);
  const std::size_t cells = evaluator.cell_count();

  SweepResult result;
  result.candidate_classes = evaluator.candidate_count();
  result.points.resize(cells);

  const unsigned workers =
      threads > 1 ? std::min<std::size_t>(threads, cells ? cells : 1) : 1;
  if (workers <= 1) {
    evaluator.evaluate_range(0, cells, result.points.data());
  } else {
    // Contiguous disjoint slices; each worker writes only its own range,
    // so no synchronization beyond join() is needed.
    std::vector<std::thread> pool;
    pool.reserve(workers);
    const std::size_t chunk = (cells + workers - 1) / workers;
    for (unsigned w = 0; w < workers; ++w) {
      const std::size_t begin = std::min<std::size_t>(w * chunk, cells);
      const std::size_t end = std::min<std::size_t>(begin + chunk, cells);
      if (begin == end) break;
      pool.emplace_back([&evaluator, &result, begin, end] {
        evaluator.evaluate_range(begin, end, result.points.data() + begin);
      });
    }
    for (std::thread& t : pool) t.join();
  }

  result.pareto_front = pareto_front(result.points);
  return result;
}

}  // namespace mpct::explore
