#include "explore/recommend.hpp"

#include <algorithm>

#include "core/flexibility.hpp"
#include "core/taxonomy_table.hpp"

namespace mpct::explore {

namespace {

bool satisfies(const MachineClass& mc, const TaxonomicName& name,
               const Requirements& req, std::string& rationale) {
  const bool universal = name.machine_type == MachineType::UniversalFlow;
  if (req.paradigm && !universal && name.machine_type != *req.paradigm) {
    return false;
  }
  if (flexibility_score(mc) < req.min_flexibility) return false;

  if (req.needs_independent_programs && !universal) {
    // Only classes with many IPs hold n programs (Section III-B's IAP vs
    // IMP argument).
    if (mc.ips != Multiplicity::Many) return false;
  }
  if (req.needs_pe_exchange && !universal) {
    if (mc.switch_at(ConnectivityRole::DpDp) != SwitchKind::Crossbar) {
      return false;
    }
  }
  if (req.needs_shared_memory && !universal) {
    if (mc.switch_at(ConnectivityRole::DpDm) != SwitchKind::Crossbar) {
      return false;
    }
  }

  rationale = "flexibility " + std::to_string(flexibility_score(mc));
  if (universal) {
    rationale += ", universal fabric (implements any requirement)";
  } else {
    if (req.needs_independent_programs) rationale += ", n IPs";
    if (req.needs_pe_exchange) rationale += ", DP-DP crossbar";
    if (req.needs_shared_memory) rationale += ", DP-DM crossbar";
  }
  return true;
}

}  // namespace

std::vector<Recommendation> recommend(const Requirements& requirements,
                                      const cost::ComponentLibrary& lib) {
  cost::EstimateOptions options;
  options.n = requirements.n;
  options.m = requirements.n;
  options.v = requirements.lut_budget;

  std::vector<Recommendation> out;
  for (const TaxonomyEntry& row : extended_taxonomy()) {
    if (!row.name) continue;
    std::string rationale;
    if (!satisfies(row.machine, *row.name, requirements, rationale)) {
      continue;
    }
    Recommendation rec;
    rec.name = *row.name;
    rec.flexibility = flexibility_score(row.machine);
    rec.area_kge = cost::estimate_area(row.machine, lib, options).total_kge();
    rec.config_bits =
        cost::estimate_config_bits(row.machine, lib, options).total();
    rec.rationale = std::move(rationale);
    out.push_back(std::move(rec));
  }

  const bool by_bits =
      requirements.objective == Requirements::Objective::MinConfigBits;
  std::sort(out.begin(), out.end(),
            [&](const Recommendation& a, const Recommendation& b) {
              if (by_bits && a.config_bits != b.config_bits) {
                return a.config_bits < b.config_bits;
              }
              if (a.area_kge != b.area_kge) return a.area_kge < b.area_kge;
              if (a.config_bits != b.config_bits) {
                return a.config_bits < b.config_bits;
              }
              return to_string(a.name) < to_string(b.name);
            });
  return out;
}

}  // namespace mpct::explore
