#include "explore/recommend.hpp"

#include <algorithm>

#include "core/flexibility.hpp"
#include "core/taxonomy_index.hpp"

namespace mpct::explore {

bool satisfies_requirements(const MachineClass& mc,
                            const TaxonomicName& name,
                            const Requirements& req, int flexibility) {
  const bool universal = name.machine_type == MachineType::UniversalFlow;
  if (req.paradigm && !universal && name.machine_type != *req.paradigm) {
    return false;
  }
  if (flexibility < req.min_flexibility) return false;

  if (req.needs_independent_programs && !universal) {
    // Only classes with many IPs hold n programs (Section III-B's IAP vs
    // IMP argument).
    if (mc.ips != Multiplicity::Many) return false;
  }
  if (req.needs_pe_exchange && !universal) {
    if (mc.switch_at(ConnectivityRole::DpDp) != SwitchKind::Crossbar) {
      return false;
    }
  }
  if (req.needs_shared_memory && !universal) {
    if (mc.switch_at(ConnectivityRole::DpDm) != SwitchKind::Crossbar) {
      return false;
    }
  }
  return true;
}

bool recommendation_precedes(const Recommendation& a, const Recommendation& b,
                             Requirements::Objective objective) {
  if (objective == Requirements::Objective::MinConfigBits &&
      a.config_bits != b.config_bits) {
    return a.config_bits < b.config_bits;
  }
  if (a.area_kge != b.area_kge) return a.area_kge < b.area_kge;
  if (a.config_bits != b.config_bits) return a.config_bits < b.config_bits;
  return taxonomy_index().interned_name(a.name) <
         taxonomy_index().interned_name(b.name);
}

namespace {

std::string make_rationale(const TaxonomicName& name, int flexibility,
                           const Requirements& req) {
  std::string rationale = "flexibility " + std::to_string(flexibility);
  if (name.machine_type == MachineType::UniversalFlow) {
    rationale += ", universal fabric (implements any requirement)";
  } else {
    if (req.needs_independent_programs) rationale += ", n IPs";
    if (req.needs_pe_exchange) rationale += ", DP-DP crossbar";
    if (req.needs_shared_memory) rationale += ", DP-DM crossbar";
  }
  return rationale;
}

}  // namespace

std::vector<Recommendation> recommend(const Requirements& requirements,
                                      const cost::ComponentLibrary& lib) {
  cost::EstimateOptions options;
  options.n = requirements.n;
  options.m = requirements.n;
  options.v = requirements.lut_budget;

  const TaxonomyIndex& index = taxonomy_index();
  std::vector<Recommendation> out;
  out.reserve(index.rows().size());
  for (const TaxonomyIndex::ClassInfo& row : index.rows()) {
    if (!row.named) continue;
    // Filter first; rationale strings are built only for survivors.
    if (!satisfies_requirements(row.machine, row.name, requirements,
                                row.flexibility)) {
      continue;
    }
    Recommendation rec;
    rec.name = row.name;
    rec.flexibility = row.flexibility;
    rec.area_kge = cost::estimate_area(row.machine, lib, options).total_kge();
    rec.config_bits =
        cost::estimate_config_bits(row.machine, lib, options).total();
    rec.rationale = make_rationale(row.name, row.flexibility, requirements);
    out.push_back(std::move(rec));
  }

  std::sort(out.begin(), out.end(),
            [&](const Recommendation& a, const Recommendation& b) {
              return recommendation_precedes(a, b, requirements.objective);
            });
  return out;
}

}  // namespace mpct::explore
