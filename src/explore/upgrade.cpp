#include "explore/upgrade.hpp"

namespace mpct::explore {

namespace {

int rank(SwitchKind k) { return static_cast<int>(k); }
int rank(Multiplicity m) { return static_cast<int>(m); }

std::string switch_step(ConnectivityRole role, SwitchKind from,
                        SwitchKind to) {
  return "upgrade " + std::string(to_string(role)) + ": " +
         std::string(to_string(from)) + " -> " +
         std::string(to_string(to));
}

}  // namespace

std::optional<UpgradePlan> upgrade_path(const MachineClass& from,
                                        const TaxonomicName& to) {
  const std::optional<MachineClass> target = canonical_class(to);
  if (!target) return std::nullopt;

  // Already in the target class: nothing to do.
  const Classification current = classify(from);
  if (current.ok() && *current.name == to) {
    return UpgradePlan{{}, from};
  }

  // Universal flow needs finer-grained silicon, not more of it; and a
  // LUT fabric is already beyond every coarse class.
  if (target->granularity == Granularity::Lut ||
      from.granularity == Granularity::Lut) {
    return std::nullopt;
  }
  // The data-flow / instruction-flow divide cannot be crossed by adding
  // hardware: the paradigms do not substitute (Section III-B).
  if ((from.ips == Multiplicity::Zero) !=
      (target->ips == Multiplicity::Zero)) {
    return std::nullopt;
  }

  UpgradePlan plan;
  plan.upgraded = from;

  const auto grow = [&](Multiplicity have, Multiplicity want,
                        const char* what) -> bool {
    if (rank(want) < rank(have)) return false;  // additive only
    if (rank(want) > rank(have)) {
      plan.steps.push_back(
          {UpgradeStep::Kind::AddProcessors,
           std::string("grow ") + what + ": " +
               std::string(to_symbol(have)) + " -> " +
               std::string(to_symbol(want))});
    }
    return true;
  };
  if (!grow(from.ips, target->ips, "IPs")) return std::nullopt;
  if (!grow(from.dps, target->dps, "DPs")) return std::nullopt;
  plan.upgraded.ips = target->ips;
  plan.upgraded.dps = target->dps;

  for (ConnectivityRole role : kAllConnectivityRoles) {
    const SwitchKind have = from.switch_at(role);
    const SwitchKind want = target->switch_at(role);
    if (rank(want) < rank(have)) return std::nullopt;  // would remove
    if (rank(want) > rank(have)) {
      plan.steps.push_back(
          {UpgradeStep::Kind::UpgradeSwitch, switch_step(role, have, want)});
    }
    plan.upgraded.set_switch(role, want);
  }

  // Sanity: the upgraded structure really lands in the target class.
  const Classification result = classify(plan.upgraded);
  if (!result.ok() || *result.name != to) return std::nullopt;
  return plan;
}

}  // namespace mpct::explore
