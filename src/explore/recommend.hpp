#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/naming.hpp"
#include "cost/area_model.hpp"
#include "cost/config_bits.hpp"

namespace mpct::explore {

/// What a designer asks of the taxonomy (the paper's conclusion: "a
/// designer can decide which computer class offers the required
/// flexibility with minimum configuration overhead").
struct Requirements {
  int min_flexibility = 0;
  /// Restrict to one flow paradigm; nullopt admits every paradigm.
  /// Universal flow always qualifies (its score compares against both,
  /// Section III-B).
  std::optional<MachineType> paradigm;
  /// Require the ability to run n independent programs (forces >= Multi).
  bool needs_independent_programs = false;
  /// Require lane/PE-level data exchange (forces a DP-DP switch).
  bool needs_pe_exchange = false;
  /// Require shared/global memory (forces a DP-DM crossbar).
  bool needs_shared_memory = false;
  /// Component-count design point for the cost estimates.
  std::int64_t n = 16;
  std::int64_t lut_budget = 1024;

  enum class Objective { MinConfigBits, MinArea };
  Objective objective = Objective::MinConfigBits;

  bool operator==(const Requirements&) const = default;
};

/// One ranked recommendation.
struct Recommendation {
  TaxonomicName name;
  int flexibility = 0;
  double area_kge = 0;
  std::int64_t config_bits = 0;
  /// Why this class satisfies the requirements (one line).
  std::string rationale;

  friend bool operator==(const Recommendation&,
                         const Recommendation&) = default;
};

/// Rank every implementable taxonomy class against @p requirements,
/// cheapest objective first.  Empty when nothing qualifies (impossible:
/// USP satisfies everything, so only a min_flexibility above 8 empties
/// the result).
std::vector<Recommendation> recommend(
    const Requirements& requirements,
    const cost::ComponentLibrary& lib =
        cost::ComponentLibrary::default_library());

/// The requirements filter recommend() applies to one taxonomy row,
/// shared with the sweep engine so both paths admit exactly the same
/// candidate set.  @p flexibility is the row's precomputed Table II
/// score (callers have it cached; passing it in keeps this
/// allocation-free and single-pass).  Design-point-independent: the
/// verdict does not depend on Requirements::n / lut_budget / objective.
bool satisfies_requirements(const MachineClass& mc,
                            const TaxonomicName& name,
                            const Requirements& requirements,
                            int flexibility);

/// Deterministic objective ordering shared by recommend() and the sweep:
/// primary objective value, then the other cost, then the rendered class
/// name (interned — no allocation).  A strict total order over distinct
/// classes, so sorting is implementation-independent and ties cannot
/// reorder between runs.
bool recommendation_precedes(const Recommendation& a,
                             const Recommendation& b,
                             Requirements::Objective objective);

}  // namespace mpct::explore
