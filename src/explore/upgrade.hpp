#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/classifier.hpp"
#include "core/machine_class.hpp"
#include "core/naming.hpp"

namespace mpct::explore {

/// One structural change on the way from an existing machine to a target
/// class — the designer-facing form of the taxonomy's predictive power
/// (Section III: "a designer can decide which computer class offers the
/// required flexibility").
struct UpgradeStep {
  enum class Kind : std::uint8_t {
    AddProcessors,   ///< raise a multiplicity (1 -> n)
    UpgradeSwitch,   ///< '-'/none -> 'x' (or none -> '-')
  };
  Kind kind = Kind::UpgradeSwitch;
  std::string description;  ///< e.g. "upgrade DP-DP: none -> crossbar"
};

/// Result of planning an upgrade.
struct UpgradePlan {
  std::vector<UpgradeStep> steps;  ///< empty when already in the class
  MachineClass upgraded;           ///< the machine after the steps
};

/// Plan the structural additions that take @p from into class @p to.
/// Only *additive* changes are considered — more processors, richer
/// switches — since removing hardware never raises flexibility.  Returns
/// std::nullopt when the target is unreachable additively:
///  * crossing the data-flow / instruction-flow divide (an IP cannot be
///    retrofitted into a paradigm that forbids it, nor removed);
///  * reaching the universal class (coarse blocks cannot become LUTs);
///  * any target whose multiplicities are *below* the current ones.
std::optional<UpgradePlan> upgrade_path(const MachineClass& from,
                                        const TaxonomicName& to);

}  // namespace mpct::explore
