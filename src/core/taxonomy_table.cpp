#include "core/taxonomy_table.hpp"

#include <algorithm>
#include <array>

#include "core/taxonomy_index.hpp"

namespace mpct {

namespace {

constexpr std::string_view kSectionDfSingle =
    "Data Flow Machines -> Single Processor";
constexpr std::string_view kSectionDfMulti =
    "Data Flow Machines -> Multi Processors";
constexpr std::string_view kSectionIfSingle =
    "Instruction Flow -> Single Processor";
constexpr std::string_view kSectionIfArray =
    "Instruction Flow -> Array Processor";
constexpr std::string_view kSectionIfMulti =
    "Instruction Flow -> Multi Processor";
constexpr std::string_view kSectionUfSpatial =
    "Universal Flow Machine -> Spatial Computing";

MachineClass ni_class(bool ip_ip_crossbar, bool ip_im_crossbar) {
  MachineClass mc;
  mc.ips = Multiplicity::Many;
  mc.dps = Multiplicity::One;
  mc.set_switch(ConnectivityRole::IpIp,
                ip_ip_crossbar ? SwitchKind::Crossbar : SwitchKind::None);
  mc.set_switch(ConnectivityRole::IpDp, SwitchKind::Direct);
  mc.set_switch(ConnectivityRole::IpIm,
                ip_im_crossbar ? SwitchKind::Crossbar : SwitchKind::Direct);
  mc.set_switch(ConnectivityRole::DpDm, SwitchKind::Direct);
  return mc;
}

std::vector<TaxonomyEntry> build_table() {
  std::vector<TaxonomyEntry> rows;
  rows.reserve(47);
  int serial = 0;

  // The rule-based inverse, not the public canonical_class(): the public
  // one answers from the TaxonomyIndex, which is built from this table —
  // calling it here would recurse into our own initialisation.
  const auto push_named = [&](const TaxonomicName& name,
                              std::string_view section) {
    const std::optional<MachineClass> mc =
        detail::canonical_class_by_rules(name);
    rows.push_back(TaxonomyEntry{++serial, *mc, name, true, section});
  };
  const auto push_ni = [&](const MachineClass& mc, std::string_view section) {
    rows.push_back(TaxonomyEntry{++serial, mc, std::nullopt, false, section});
  };

  // 1: DUP.
  push_named({MachineType::DataFlow, ProcessingType::UniProcessor, 0},
             kSectionDfSingle);
  // 2-5: DMP I-IV.
  for (int sub = 1; sub <= 4; ++sub) {
    push_named({MachineType::DataFlow, ProcessingType::MultiProcessor, sub},
               kSectionDfMulti);
  }
  // 6: IUP.
  push_named({MachineType::InstructionFlow, ProcessingType::UniProcessor, 0},
             kSectionIfSingle);
  // 7-10: IAP I-IV.
  for (int sub = 1; sub <= 4; ++sub) {
    push_named(
        {MachineType::InstructionFlow, ProcessingType::ArrayProcessor, sub},
        kSectionIfArray);
  }
  // 11-14: the not-implementable n-IP / 1-DP classes.  Row order follows
  // Table I: IP-IM upgrades before IP-IP does.
  push_ni(ni_class(false, false), kSectionIfArray);
  push_ni(ni_class(false, true), kSectionIfArray);
  push_ni(ni_class(true, false), kSectionIfArray);
  push_ni(ni_class(true, true), kSectionIfArray);
  // 15-30: IMP I-XVI.
  for (int sub = 1; sub <= 16; ++sub) {
    push_named(
        {MachineType::InstructionFlow, ProcessingType::MultiProcessor, sub},
        kSectionIfMulti);
  }
  // 31-46: ISP I-XVI.
  for (int sub = 1; sub <= 16; ++sub) {
    push_named(
        {MachineType::InstructionFlow, ProcessingType::SpatialProcessor, sub},
        kSectionIfMulti);
  }
  // 47: USP.
  push_named({MachineType::UniversalFlow, ProcessingType::SpatialProcessor, 0},
             kSectionUfSpatial);

  return rows;
}

}  // namespace

std::string TaxonomyEntry::comment() const {
  return name ? to_string(*name) : std::string("NI");
}

std::span<const TaxonomyEntry> extended_taxonomy() {
  static const std::vector<TaxonomyEntry> table = build_table();
  return table;
}

const TaxonomyEntry* find_entry(const TaxonomicName& name) {
  const TaxonomyIndex::ClassInfo* info =
      TaxonomyIndex::instance().by_name(name);
  return info ? find_entry(info->serial) : nullptr;
}

const TaxonomyEntry* find_entry(int serial) {
  const auto table = extended_taxonomy();
  if (serial < 1 || serial > static_cast<int>(table.size())) return nullptr;
  return &table[static_cast<std::size_t>(serial - 1)];
}

const TaxonomyEntry* find_entry(const MachineClass& mc) {
  const TaxonomyIndex::ClassInfo* info =
      TaxonomyIndex::instance().by_structure(mc);
  return info ? find_entry(info->serial) : nullptr;
}

int implementable_class_count() {
  const auto table = extended_taxonomy();
  return static_cast<int>(
      std::count_if(table.begin(), table.end(),
                    [](const TaxonomyEntry& e) { return e.implementable; }));
}

}  // namespace mpct
