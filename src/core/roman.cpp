#include "core/roman.hpp"

#include <array>
#include <stdexcept>

namespace mpct {

namespace {

struct RomanDigit {
  int value;
  std::string_view glyph;
};

constexpr std::array<RomanDigit, 13> kDigits{{
    {1000, "M"},
    {900, "CM"},
    {500, "D"},
    {400, "CD"},
    {100, "C"},
    {90, "XC"},
    {50, "L"},
    {40, "XL"},
    {10, "X"},
    {9, "IX"},
    {5, "V"},
    {4, "IV"},
    {1, "I"},
}};

}  // namespace

std::string to_roman(int value) {
  if (value < 1 || value > 3999) {
    throw std::invalid_argument("to_roman: value out of range [1,3999]: " +
                                std::to_string(value));
  }
  std::string out;
  for (const auto& digit : kDigits) {
    while (value >= digit.value) {
      out += digit.glyph;
      value -= digit.value;
    }
  }
  return out;
}

std::optional<int> from_roman(std::string_view text) {
  if (text.empty()) return std::nullopt;
  int value = 0;
  std::string_view rest = text;
  for (const auto& digit : kDigits) {
    // Canonical form allows at most three repetitions of the pure powers
    // of ten and a single occurrence of everything else.
    const bool repeatable = digit.glyph.size() == 1 &&
                            (digit.value == 1000 || digit.value == 100 ||
                             digit.value == 10 || digit.value == 1);
    int repeats = 0;
    while (rest.substr(0, digit.glyph.size()) == digit.glyph) {
      rest.remove_prefix(digit.glyph.size());
      value += digit.value;
      if (++repeats > (repeatable ? 3 : 1)) return std::nullopt;
    }
  }
  if (!rest.empty()) return std::nullopt;
  // Reject non-canonical encodings (e.g. "IVI") by round-tripping.
  if (to_roman(value) != text) return std::nullopt;
  return value;
}

}  // namespace mpct
