#include "core/classifier.hpp"

#include "core/taxonomy_index.hpp"

namespace mpct {

int array_subtype(SwitchKind dp_dm, SwitchKind dp_dp) {
  return 1 + 2 * (is_flexible_switch(dp_dm) ? 1 : 0) +
         (is_flexible_switch(dp_dp) ? 1 : 0);
}

int multi_subtype(SwitchKind ip_dp, SwitchKind ip_im, SwitchKind dp_dm,
                  SwitchKind dp_dp) {
  return 1 + 8 * (is_flexible_switch(ip_dp) ? 1 : 0) +
         4 * (is_flexible_switch(ip_im) ? 1 : 0) +
         2 * (is_flexible_switch(dp_dm) ? 1 : 0) +
         (is_flexible_switch(dp_dp) ? 1 : 0);
}

Classification detail::classify_by_rules(const MachineClass& mc) {
  // Universal flow: decided by granularity, not by counts.  MATRIX-style
  // fabrics with reconfigurable instruction distribution but IP/DP-grain
  // blocks stay in the instruction-flow branch (Section IV discusses this
  // for MATRIX explicitly).
  if (mc.granularity == Granularity::Lut) {
    return {TaxonomicName{MachineType::UniversalFlow,
                          ProcessingType::SpatialProcessor, 0},
            true,
            ""};
  }

  if (mc.ips == Multiplicity::Variable || mc.dps == Multiplicity::Variable) {
    return {std::nullopt, false, std::string(kNoteVariableCounts)};
  }

  const SwitchKind ip_ip = mc.switch_at(ConnectivityRole::IpIp);
  const SwitchKind ip_dp = mc.switch_at(ConnectivityRole::IpDp);
  const SwitchKind ip_im = mc.switch_at(ConnectivityRole::IpIm);
  const SwitchKind dp_dm = mc.switch_at(ConnectivityRole::DpDm);
  const SwitchKind dp_dp = mc.switch_at(ConnectivityRole::DpDp);

  if (mc.dps == Multiplicity::Zero) {
    return {std::nullopt, false, std::string(kNoteNoDataProcessor)};
  }

  switch (mc.ips) {
    case Multiplicity::Zero: {
      // Data flow machines.
      if (ip_ip != SwitchKind::None || ip_dp != SwitchKind::None ||
          ip_im != SwitchKind::None) {
        return {std::nullopt, false, std::string(kNoteDataFlowIpSide)};
      }
      if (mc.dps == Multiplicity::One) {
        return {TaxonomicName{MachineType::DataFlow,
                              ProcessingType::UniProcessor, 0},
                true,
                ""};
      }
      return {TaxonomicName{MachineType::DataFlow,
                            ProcessingType::MultiProcessor,
                            array_subtype(dp_dm, dp_dp)},
              true,
              ""};
    }
    case Multiplicity::One: {
      if (mc.dps == Multiplicity::One) {
        return {TaxonomicName{MachineType::InstructionFlow,
                              ProcessingType::UniProcessor, 0},
                true,
                ""};
      }
      return {TaxonomicName{MachineType::InstructionFlow,
                            ProcessingType::ArrayProcessor,
                            array_subtype(dp_dm, dp_dp)},
              true,
              ""};
    }
    case Multiplicity::Many: {
      if (mc.dps == Multiplicity::One) {
        // Table I classes 11-14.
        return {std::nullopt, false, std::string(kNoteNotImplementable)};
      }
      const bool spatial = ip_ip != SwitchKind::None;
      return {TaxonomicName{MachineType::InstructionFlow,
                            spatial ? ProcessingType::SpatialProcessor
                                    : ProcessingType::MultiProcessor,
                            multi_subtype(ip_dp, ip_im, dp_dm, dp_dp)},
              true,
              ""};
    }
    case Multiplicity::Variable:
      break;  // handled above
  }
  return {std::nullopt, false, std::string(kNoteUnclassifiable)};
}

Classification classify(const MachineClass& mc) {
  // One table load in the index; the rules above only run once, while
  // the index precomputes the whole structural key space.
  const TaxonomyIndex::FastClassification fast =
      TaxonomyIndex::instance().classify(mc);
  if (fast.info) return {fast.info->name, true, ""};
  return {std::nullopt, false, std::string(fast.note)};
}

std::optional<MachineClass> detail::canonical_class_by_rules(
    const TaxonomicName& name) {
  if (!combination_exists(name.machine_type, name.processing_type)) {
    return std::nullopt;
  }
  const int max_subtype =
      subtype_count(name.machine_type, name.processing_type);
  if (max_subtype == 1) {
    if (name.subtype != 0) return std::nullopt;
  } else if (name.subtype < 1 || name.subtype > max_subtype) {
    return std::nullopt;
  }

  MachineClass mc;
  const auto array_bits = [&](MachineClass& m) {
    const int bits = name.subtype - 1;
    m.set_switch(ConnectivityRole::DpDm,
                 (bits & 2) ? SwitchKind::Crossbar : SwitchKind::Direct);
    m.set_switch(ConnectivityRole::DpDp,
                 (bits & 1) ? SwitchKind::Crossbar : SwitchKind::None);
  };
  const auto multi_bits = [&](MachineClass& m) {
    const int bits = name.subtype - 1;
    m.set_switch(ConnectivityRole::IpDp,
                 (bits & 8) ? SwitchKind::Crossbar : SwitchKind::Direct);
    m.set_switch(ConnectivityRole::IpIm,
                 (bits & 4) ? SwitchKind::Crossbar : SwitchKind::Direct);
    m.set_switch(ConnectivityRole::DpDm,
                 (bits & 2) ? SwitchKind::Crossbar : SwitchKind::Direct);
    m.set_switch(ConnectivityRole::DpDp,
                 (bits & 1) ? SwitchKind::Crossbar : SwitchKind::None);
  };

  switch (name.machine_type) {
    case MachineType::DataFlow:
      mc.ips = Multiplicity::Zero;
      if (name.processing_type == ProcessingType::UniProcessor) {
        mc.dps = Multiplicity::One;
        mc.set_switch(ConnectivityRole::DpDm, SwitchKind::Direct);
      } else {
        mc.dps = Multiplicity::Many;
        array_bits(mc);
      }
      return mc;
    case MachineType::InstructionFlow:
      switch (name.processing_type) {
        case ProcessingType::UniProcessor:
          mc.ips = Multiplicity::One;
          mc.dps = Multiplicity::One;
          mc.set_switch(ConnectivityRole::IpDp, SwitchKind::Direct);
          mc.set_switch(ConnectivityRole::IpIm, SwitchKind::Direct);
          mc.set_switch(ConnectivityRole::DpDm, SwitchKind::Direct);
          return mc;
        case ProcessingType::ArrayProcessor:
          mc.ips = Multiplicity::One;
          mc.dps = Multiplicity::Many;
          mc.set_switch(ConnectivityRole::IpDp, SwitchKind::Direct);
          mc.set_switch(ConnectivityRole::IpIm, SwitchKind::Direct);
          array_bits(mc);
          return mc;
        case ProcessingType::MultiProcessor:
          mc.ips = Multiplicity::Many;
          mc.dps = Multiplicity::Many;
          multi_bits(mc);
          return mc;
        case ProcessingType::SpatialProcessor:
          mc.ips = Multiplicity::Many;
          mc.dps = Multiplicity::Many;
          mc.set_switch(ConnectivityRole::IpIp, SwitchKind::Crossbar);
          multi_bits(mc);
          return mc;
      }
      return std::nullopt;
    case MachineType::UniversalFlow:
      mc.granularity = Granularity::Lut;
      mc.ips = Multiplicity::Variable;
      mc.dps = Multiplicity::Variable;
      for (ConnectivityRole role : kAllConnectivityRoles) {
        mc.set_switch(role, SwitchKind::Crossbar);
      }
      return mc;
  }
  return std::nullopt;
}

std::optional<MachineClass> canonical_class(const TaxonomicName& name) {
  const TaxonomyIndex::ClassInfo* info =
      TaxonomyIndex::instance().by_name(name);
  if (!info) return std::nullopt;
  return info->machine;
}

}  // namespace mpct
