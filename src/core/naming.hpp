#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace mpct {

/// Machine Type — the primary branch of the naming hierarchy (Fig. 2).
///
/// Decided by the presence/absence of an instruction processor and by the
/// granularity of the building blocks (Section II-C.1):
///  * InstructionFlow: an IP fetches instructions that drive the DPs.
///  * DataFlow: no IP; instructions travel with the data and fire on
///    operand arrival.
///  * UniversalFlow: blocks finer than IP/DP that can implement either.
enum class MachineType : std::uint8_t {
  DataFlow = 0,
  InstructionFlow = 1,
  UniversalFlow = 2,
};

/// Processing Type — the secondary branch, the degree of parallelism
/// (Section II-C.2).
enum class ProcessingType : std::uint8_t {
  UniProcessor = 0,    ///< one IP (or none) driving one DP
  ArrayProcessor = 1,  ///< one IP broadcasting to n DPs
  MultiProcessor = 2,  ///< n IPs, n DPs, IPs mutually unconnected
  SpatialProcessor =
      3,  ///< n or v IPs with IP-IP connectivity: processors compose
};

std::string_view to_string(MachineType mt);
std::string_view to_string(ProcessingType pt);

/// One-letter code used as the first letter of a class name
/// ('D', 'I', 'U').
char code(MachineType mt);

/// Two-letter code used in class names ("UP", "AP", "MP", "SP").
std::string_view code(ProcessingType pt);

/// A hierarchical taxonomic name: Machine Type + Processing Type +
/// Sub-Processing Type, e.g. IMP-XVI = {InstructionFlow, MultiProcessor,
/// 16}.  Subtype 0 means the class has no sub-numbering (DUP, IUP, USP).
///
/// The name alone carries the structure (Section III-A): the first letter
/// gives the flow paradigm, the next two the parallelism, and the numeral
/// encodes exactly which connectivity columns are crossbars.
struct TaxonomicName {
  MachineType machine_type = MachineType::InstructionFlow;
  ProcessingType processing_type = ProcessingType::UniProcessor;
  int subtype = 0;  ///< 0 = unnumbered; otherwise 1-based

  friend bool operator==(const TaxonomicName&, const TaxonomicName&) = default;
  friend auto operator<=>(const TaxonomicName&,
                          const TaxonomicName&) = default;
};

/// Render the canonical class name: "DUP", "DMP-III", "IAP-II", "IMP-XVI",
/// "ISP-IV", "USP".
std::string to_string(const TaxonomicName& name);

/// Parse a canonical class name; accepts any case for the letters and
/// requires the subtype numeral to be a canonical roman numeral.  Returns
/// std::nullopt for unknown prefixes, invalid numerals, or a numeral on a
/// class that has none (e.g. "IUP-II").
std::optional<TaxonomicName> parse_taxonomic_name(std::string_view text);

/// Number of sub-types a (machine type, processing type) pair has:
/// 1 for unnumbered classes, 4 for DMP/IAP, 16 for IMP/ISP.
int subtype_count(MachineType mt, ProcessingType pt);

/// Whether the (machine type, processing type) combination exists in the
/// taxonomy at all (e.g. there is no data-flow array processor and the
/// universal flow only has its spatial class).
bool combination_exists(MachineType mt, ProcessingType pt);

}  // namespace mpct
