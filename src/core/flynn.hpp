#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "core/machine_class.hpp"
#include "core/naming.hpp"

namespace mpct {

/// Flynn's 1966 taxonomy — the lineage the paper's Section I starts
/// from.  The extended Skillicorn classes project onto Flynn as:
///  * IUP -> SISD (one instruction stream, one data stream)
///  * IAP -> SIMD (one instruction stream broadcast over n data streams)
///  * IMP/ISP -> MIMD (n instruction streams, n data streams)
///  * classes 11-14 (n IPs, one DP) -> MISD — the famously near-empty
///    Flynn quadrant, which is exactly why the paper marks them NI
///  * data-flow machines and variable-count fabrics fall outside Flynn:
///    there is no instruction *stream* to count, so they map to nullopt.
enum class FlynnClass : std::uint8_t {
  SISD,
  SIMD,
  MISD,
  MIMD,
};

std::string_view to_string(FlynnClass f);

/// Project a machine structure onto Flynn's taxonomy; nullopt for
/// machines Flynn cannot express (data flow, universal flow).
std::optional<FlynnClass> flynn_class(const MachineClass& mc);

/// Project a taxonomic name onto Flynn (via its canonical structure).
std::optional<FlynnClass> flynn_class(const TaxonomicName& name);

/// Result of projecting an extended-taxonomy structure back onto
/// Skillicorn's original 1988 table, which had no IP-IP column and no
/// variable counts.
struct SkillicornProjection {
  /// The structure with the extensions stripped: IP-IP forced to None,
  /// Variable counts demoted to Many, granularity coarse.
  MachineClass projected;
  /// True when stripping lost information — i.e. the machine only exists
  /// because of this paper's extensions (classes 13-14, 31-47).
  bool required_extension = false;
};

/// Strip the paper's extensions (Section II-A/B) from a structure.
SkillicornProjection project_to_skillicorn(const MachineClass& mc);

/// Count how many of the 47 extended classes exist only because of the
/// extensions (IP-IP column, variable counts).  Computed over the
/// canonical table; equals 19 — the "19 new classes" the paper's
/// Section II-C claims (rows 13-14, 31-46 and 47).
int extension_only_class_count();

}  // namespace mpct
