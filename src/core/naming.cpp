#include "core/naming.hpp"

#include <algorithm>
#include <cctype>

#include "core/roman.hpp"

namespace mpct {

std::string_view to_string(MachineType mt) {
  switch (mt) {
    case MachineType::DataFlow:
      return "Data Flow";
    case MachineType::InstructionFlow:
      return "Instruction Flow";
    case MachineType::UniversalFlow:
      return "Universal Flow";
  }
  return "?";
}

std::string_view to_string(ProcessingType pt) {
  switch (pt) {
    case ProcessingType::UniProcessor:
      return "Uni Processor";
    case ProcessingType::ArrayProcessor:
      return "Array Processor";
    case ProcessingType::MultiProcessor:
      return "Multi Processor";
    case ProcessingType::SpatialProcessor:
      return "Spatial Processor";
  }
  return "?";
}

char code(MachineType mt) {
  switch (mt) {
    case MachineType::DataFlow:
      return 'D';
    case MachineType::InstructionFlow:
      return 'I';
    case MachineType::UniversalFlow:
      return 'U';
  }
  return '?';
}

std::string_view code(ProcessingType pt) {
  switch (pt) {
    case ProcessingType::UniProcessor:
      return "UP";
    case ProcessingType::ArrayProcessor:
      return "AP";
    case ProcessingType::MultiProcessor:
      return "MP";
    case ProcessingType::SpatialProcessor:
      return "SP";
  }
  return "??";
}

int subtype_count(MachineType mt, ProcessingType pt) {
  if (!combination_exists(mt, pt)) return 0;
  if (mt == MachineType::UniversalFlow) return 1;
  switch (pt) {
    case ProcessingType::UniProcessor:
      return 1;
    case ProcessingType::ArrayProcessor:
      return 4;
    case ProcessingType::MultiProcessor:
      // Data-flow multiprocessors only vary the two DP-side switches
      // (DMP I-IV); instruction-flow ones vary four (IMP I-XVI).
      return mt == MachineType::DataFlow ? 4 : 16;
    case ProcessingType::SpatialProcessor:
      return 16;
  }
  return 0;
}

bool combination_exists(MachineType mt, ProcessingType pt) {
  switch (mt) {
    case MachineType::DataFlow:
      // Without an IP there is nothing to broadcast from or to compose,
      // so data flow machines are only uni or multi processors.
      return pt == ProcessingType::UniProcessor ||
             pt == ProcessingType::MultiProcessor;
    case MachineType::InstructionFlow:
      return true;
    case MachineType::UniversalFlow:
      // Fine-grained fabrics are inherently spatial (Fig. 2 places USP as
      // the sole universal-flow class).
      return pt == ProcessingType::SpatialProcessor;
  }
  return false;
}

std::string to_string(const TaxonomicName& name) {
  std::string out;
  out += code(name.machine_type);
  out += code(name.processing_type);
  if (name.subtype > 0 &&
      subtype_count(name.machine_type, name.processing_type) > 1) {
    out += '-';
    out += to_roman(name.subtype);
  }
  return out;
}

std::optional<TaxonomicName> parse_taxonomic_name(std::string_view text) {
  std::string upper(text);
  std::transform(upper.begin(), upper.end(), upper.begin(),
                 [](unsigned char c) { return std::toupper(c); });

  std::string_view rest = upper;
  if (rest.size() < 3) return std::nullopt;

  MachineType mt;
  switch (rest[0]) {
    case 'D':
      mt = MachineType::DataFlow;
      break;
    case 'I':
      mt = MachineType::InstructionFlow;
      break;
    case 'U':
      mt = MachineType::UniversalFlow;
      break;
    default:
      return std::nullopt;
  }

  ProcessingType pt;
  const std::string_view pt_code = rest.substr(1, 2);
  if (pt_code == "UP") {
    pt = ProcessingType::UniProcessor;
  } else if (pt_code == "AP") {
    pt = ProcessingType::ArrayProcessor;
  } else if (pt_code == "MP") {
    pt = ProcessingType::MultiProcessor;
  } else if (pt_code == "SP") {
    pt = ProcessingType::SpatialProcessor;
  } else {
    return std::nullopt;
  }
  if (!combination_exists(mt, pt)) return std::nullopt;

  rest.remove_prefix(3);
  const int max_subtype = subtype_count(mt, pt);
  if (rest.empty()) {
    // Unnumbered form is only valid for single-subtype classes.
    if (max_subtype != 1) return std::nullopt;
    return TaxonomicName{mt, pt, 0};
  }
  if (rest[0] != '-' || max_subtype <= 1) return std::nullopt;
  rest.remove_prefix(1);
  const std::optional<int> subtype = from_roman(rest);
  if (!subtype || *subtype < 1 || *subtype > max_subtype) return std::nullopt;
  return TaxonomicName{mt, pt, *subtype};
}

}  // namespace mpct
