#include "core/comparison.hpp"

#include <sstream>

#include "core/classifier.hpp"
#include "core/machine_class.hpp"

namespace mpct {

namespace {

int rank(SwitchKind k) { return static_cast<int>(k); }
int rank(Multiplicity m) { return static_cast<int>(m); }
int rank(ProcessingType pt) { return static_cast<int>(pt); }

}  // namespace

std::string NameComparison::summary() const {
  if (identical) return "identical classes";
  std::ostringstream os;
  os << (same_machine_type ? "same flow paradigm" : "different flow paradigms");
  os << "; "
     << (same_processing_type ? "same processing type"
                              : "different processing types");
  if (same_subtype) {
    os << "; identical sub-type connectivity";
  } else if (!differing_columns.empty()) {
    os << "; differs in";
    for (const ColumnDiff& d : differing_columns) {
      os << ' ' << to_string(d.role) << '(' << to_string(d.left) << " vs "
         << to_string(d.right) << ')';
    }
  }
  return os.str();
}

NameComparison compare(const TaxonomicName& a, const TaxonomicName& b) {
  NameComparison cmp;
  cmp.same_machine_type = a.machine_type == b.machine_type;
  cmp.same_processing_type =
      cmp.same_machine_type && a.processing_type == b.processing_type;
  // Sub-type equality is meaningful across families too: IAP-I and IMP-I
  // share the same DP-DM/DP-DP pattern (Section III-A).
  cmp.same_subtype = a.subtype == b.subtype;
  cmp.identical = a == b;

  const std::optional<MachineClass> ca = canonical_class(a);
  const std::optional<MachineClass> cb = canonical_class(b);
  if (ca && cb) {
    for (ConnectivityRole role : kAllConnectivityRoles) {
      const SwitchKind left = ca->switch_at(role);
      const SwitchKind right = cb->switch_at(role);
      if (left != right) {
        cmp.differing_columns.push_back({role, left, right});
      }
    }
  }
  return cmp;
}

bool can_morph_into(const TaxonomicName& from, const TaxonomicName& to) {
  const std::optional<MachineClass> mc_from = canonical_class(from);
  const std::optional<MachineClass> mc_to = canonical_class(to);
  if (!mc_from || !mc_to) return false;

  // Universal flow morphs into everything; nothing else reaches it, and
  // data-flow / instruction-flow machines cannot substitute each other
  // (Section III-B, last paragraph).
  if (from.machine_type == MachineType::UniversalFlow) return true;
  if (to.machine_type == MachineType::UniversalFlow) return from == to;
  if (from.machine_type != to.machine_type) return false;

  // A machine can always act as itself.
  if (from == to) return true;

  // Down the parallelism hierarchy only: a multiprocessor can act as an
  // array processor (one program everywhere) or uniprocessor (switch off
  // extras); an array processor cannot act as a multiprocessor because it
  // cannot run n different programs.
  if (rank(from.processing_type) < rank(to.processing_type)) return false;
  if (rank(mc_from->ips) < rank(mc_to->ips)) return false;
  if (rank(mc_from->dps) < rank(mc_to->dps)) return false;

  // Every connectivity the target relies on must be matched or exceeded:
  // a crossbar statically configured behaves as a direct link, and an
  // unused link behaves as none, but no switch can be conjured.
  for (ConnectivityRole role : kAllConnectivityRoles) {
    if (rank(mc_from->switch_at(role)) < rank(mc_to->switch_at(role))) {
      return false;
    }
  }
  return true;
}

}  // namespace mpct
