#pragma once

#include <string>
#include <vector>

#include "core/connectivity.hpp"
#include "core/naming.hpp"

namespace mpct {

/// Structural comparison of two taxonomic names (Section III-A: "by just
/// looking at the names of the classes ... one can compare two or more
/// architectures in terms of similarities or differences").
///
/// The comparison decodes each name back into its canonical connectivity
/// pattern and reports which levels of the naming hierarchy agree and
/// which switch columns differ.
struct NameComparison {
  bool same_machine_type = false;     ///< same flow paradigm (1st letter)
  bool same_processing_type = false;  ///< same parallelism (2nd/3rd letter)
  bool same_subtype = false;          ///< identical connectivity numeral
  bool identical = false;             ///< the names are equal

  /// Per-column relation for the five connectivity roles; only populated
  /// when both names decode to canonical classes.
  struct ColumnDiff {
    ConnectivityRole role;
    SwitchKind left;
    SwitchKind right;
  };
  std::vector<ColumnDiff> differing_columns;

  /// Count of shared hierarchy levels (0-3): machine type, processing
  /// type, subtype.  Higher means structurally closer.
  int similarity_level() const {
    return (same_machine_type ? 1 : 0) + (same_processing_type ? 1 : 0) +
           (same_subtype ? 1 : 0);
  }

  /// Prose summary, e.g. "both instruction flow; IAP vs IMP
  /// (array vs multi); same sub-type connectivity".
  std::string summary() const;
};

/// Compare two class names.  Subtype equality for classes with the same
/// numeral across families means identical IP-IM/IP-DP/DP-DM/DP-DP
/// switch kinds (the paper's IAP-I vs IMP-I example).
NameComparison compare(const TaxonomicName& a, const TaxonomicName& b);

/// Partial order "can morph into": true when a machine of class @p from
/// can behave as one of class @p to by under-using its resources
/// (Section III-B's argument: IMP-I can act as an array processor by
/// running one program on every IP; IAP-I can act as a uniprocessor by
/// switching off extra DPs; the converse directions fail).  Universal
/// flow can morph into anything; nothing (but USP) can morph across the
/// data-flow / instruction-flow divide.
bool can_morph_into(const TaxonomicName& from, const TaxonomicName& to);

}  // namespace mpct
