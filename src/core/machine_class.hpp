#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <functional>
#include <string>

#include "core/connectivity.hpp"
#include "core/multiplicity.hpp"

namespace mpct {

/// Granularity of the basic building blocks of a machine (Table I column
/// "Gran.").
///
/// Classes 1-46 are built from whole Instruction/Data Processors; class 47
/// (USP) is built from blocks finer than either — LUTs/CLBs — which can
/// assume the role of IP, DP, IM or DM on reconfiguration (Section II-A).
enum class Granularity : std::uint8_t {
  IpDp = 0,  ///< coarse: blocks are whole IPs/DPs, roles fixed at design time
  Lut = 1,   ///< fine: gate/LUT level, roles assigned by configuration
};

std::string_view to_string(Granularity g);

/// Structural description of a machine class in the extended Skillicorn
/// taxonomy: the multiplicity of instruction and data processors plus the
/// kind of switch in each of the five connectivity columns.
///
/// This is the abstract shape the classifier maps concrete architecture
/// specs onto; one MachineClass corresponds to exactly one row of Table I
/// (for the canonical rows) and to exactly one taxonomic name.
struct MachineClass {
  Granularity granularity = Granularity::IpDp;
  Multiplicity ips = Multiplicity::Zero;
  Multiplicity dps = Multiplicity::One;
  /// Switch kinds indexed by ConnectivityRole (IpIp, IpDp, IpIm, DpDm,
  /// DpDp — the column order of Table I).
  std::array<SwitchKind, kConnectivityRoleCount> switches{
      SwitchKind::None, SwitchKind::None, SwitchKind::None, SwitchKind::None,
      SwitchKind::None};

  SwitchKind switch_at(ConnectivityRole role) const {
    return switches[static_cast<std::size_t>(role)];
  }
  void set_switch(ConnectivityRole role, SwitchKind kind) {
    switches[static_cast<std::size_t>(role)] = kind;
  }

  friend bool operator==(const MachineClass&, const MachineClass&) = default;
  friend auto operator<=>(const MachineClass&, const MachineClass&) = default;
};

/// Render one connectivity cell of @p mc in the paper's notation, using
/// the endpoint multiplicities that the role implies (e.g. IP-DP of an
/// array processor prints as "1-n").
std::string format_cell(const MachineClass& mc, ConnectivityRole role);

/// Compact single-line structural signature, e.g.
/// "IP/DP ips=1 dps=n [IP-IP:none IP-DP:1-n IP-IM:1-1 DP-DM:nxn DP-DP:nxn]".
std::string to_string(const MachineClass& mc);

/// Stable hash so MachineClass can key unordered containers.
struct MachineClassHash {
  std::size_t operator()(const MachineClass& mc) const noexcept;
};

}  // namespace mpct
