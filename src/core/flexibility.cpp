#include "core/flexibility.hpp"

#include <sstream>
#include <stdexcept>

#include "core/classifier.hpp"

namespace mpct {

std::string FlexibilityBreakdown::to_string() const {
  std::ostringstream os;
  bool first = true;
  const auto term = [&](int value, const char* label) {
    if (value == 0) return;
    if (!first) os << " + ";
    first = false;
    os << value << '(' << label << ')';
  };
  term(many_ips, "nIP");
  term(many_dps, "nDP");
  term(crossbar_switches, "x");
  term(variability_bonus, "v");
  if (first) os << '0';
  os << " = " << total();
  return os.str();
}

FlexibilityBreakdown flexibility(const MachineClass& mc) {
  FlexibilityBreakdown b;
  b.many_ips = counts_as_many(mc.ips) ? 1 : 0;
  b.many_dps = counts_as_many(mc.dps) ? 1 : 0;
  for (SwitchKind k : mc.switches) {
    if (is_flexible_switch(k)) ++b.crossbar_switches;
  }
  b.variability_bonus = mc.granularity == Granularity::Lut ? 1 : 0;
  return b;
}

int category_offset(const TaxonomicName& name) {
  const std::optional<MachineClass> mc = canonical_class(name);
  if (!mc) {
    throw std::invalid_argument("category_offset: non-canonical name " +
                                to_string(name));
  }
  const FlexibilityBreakdown b = flexibility(*mc);
  return b.many_ips + b.many_dps + b.variability_bonus;
}

int flexibility_of(const TaxonomicName& name) {
  const std::optional<MachineClass> mc = canonical_class(name);
  if (!mc) {
    throw std::invalid_argument("flexibility_of: non-canonical name " +
                                to_string(name));
  }
  return flexibility_score(*mc);
}

bool flexibility_comparable(MachineType a, MachineType b) {
  if (a == b) return true;
  return a == MachineType::UniversalFlow || b == MachineType::UniversalFlow;
}

}  // namespace mpct
