#pragma once

#include <optional>
#include <string>
#include <string_view>

namespace mpct {

/// Roman-numeral conversion used by the hierarchical naming scheme.
///
/// Sub-Processing Types in the extended Skillicorn taxonomy are numbered
/// with roman numerals (IMP-I .. IMP-XVI, Table I of the paper).  The
/// implementation supports the full subtractive notation for values in
/// [1, 3999] so that hypothetical larger taxonomies (more switch columns)
/// keep working.

/// Render @p value as an uppercase roman numeral.
/// @pre 1 <= value <= 3999 (throws std::invalid_argument otherwise).
std::string to_roman(int value);

/// Parse an uppercase roman numeral. Returns std::nullopt on malformed
/// input (empty string, invalid characters, or non-canonical forms such
/// as "IIII").
std::optional<int> from_roman(std::string_view text);

}  // namespace mpct
