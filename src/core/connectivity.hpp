#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "core/multiplicity.hpp"

namespace mpct {

/// Kind of switch realising a connectivity column of the taxonomy table.
///
/// The paper distinguishes (Section IV): a *direct* interconnection,
/// printed as '-' (e.g. "1-1", "n-n", "64-1"), from interconnection
/// *through a full crossbar*, printed as 'x' (e.g. "nxn", "64x64",
/// "vxv").  A column may also be absent entirely ("none").  Crossbar
/// switches are what buy flexibility — and silicon area and configuration
/// bits (Sections III-B/C/D).
enum class SwitchKind : std::uint8_t {
  None = 0,      ///< the two component sets are not connected at all
  Direct = 1,    ///< fixed point-to-point / broadcast wiring ('-')
  Crossbar = 2,  ///< any-to-any programmable switch ('x')
};

/// True when a switch of this kind contributes a flexibility point
/// (paper: "presence of every switch of type 'x' will get another
/// point").
constexpr bool is_flexible_switch(SwitchKind k) {
  return k == SwitchKind::Crossbar;
}

/// Table glyph for the kind in isolation: "none", "-" or "x".
std::string_view to_symbol(SwitchKind k);

/// Human readable name ("none", "direct", "crossbar").
std::string_view to_string(SwitchKind k);

/// The five connectivity columns of the extended taxonomy table.
///
/// Skillicorn's original table has four (IP-DP, IP-IM, DP-DM, DP-DP);
/// the paper's Section II-B adds IP-IP, which opens classes 13-14 and
/// 31-47.  The enumerator order matches the column order of Table I.
enum class ConnectivityRole : std::uint8_t {
  IpIp = 0,  ///< instruction processor <-> instruction processor
  IpDp = 1,  ///< instruction processor -> data processor
  IpIm = 2,  ///< instruction processor <-> instruction memory
  DpDm = 3,  ///< data processor <-> data memory
  DpDp = 4,  ///< data processor <-> data processor
};

inline constexpr std::size_t kConnectivityRoleCount = 5;

inline constexpr std::array<ConnectivityRole, kConnectivityRoleCount>
    kAllConnectivityRoles{ConnectivityRole::IpIp, ConnectivityRole::IpDp,
                          ConnectivityRole::IpIm, ConnectivityRole::DpDm,
                          ConnectivityRole::DpDp};

/// Column header used in the paper's tables, e.g. "IP-DP".
std::string_view to_string(ConnectivityRole role);

/// Parse a column header ("IP-IP", "ip-dp", ...).
std::optional<ConnectivityRole> connectivity_role_from_string(
    std::string_view text);

/// Render one table cell in the paper's notation given the multiplicities
/// of the two endpoint sets: e.g. (Direct, One, Many) -> "1-n",
/// (Crossbar, Many, Many) -> "nxn", (None, ..) -> "none".
std::string format_connectivity(SwitchKind kind, Multiplicity left,
                                Multiplicity right);

/// Extract the switch kind from a table cell such as "none", "1-1",
/// "64x64", "nxm", "5x10".  Any cell containing the separator 'x' is a
/// crossbar, '-' is direct, the literal "none" is None.  Returns
/// std::nullopt for malformed cells.
std::optional<SwitchKind> switch_kind_from_cell(std::string_view cell);

}  // namespace mpct
