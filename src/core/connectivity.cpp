#include "core/connectivity.hpp"

#include <algorithm>
#include <cctype>

namespace mpct {

std::string_view to_symbol(SwitchKind k) {
  switch (k) {
    case SwitchKind::None:
      return "none";
    case SwitchKind::Direct:
      return "-";
    case SwitchKind::Crossbar:
      return "x";
  }
  return "?";
}

std::string_view to_string(SwitchKind k) {
  switch (k) {
    case SwitchKind::None:
      return "none";
    case SwitchKind::Direct:
      return "direct";
    case SwitchKind::Crossbar:
      return "crossbar";
  }
  return "?";
}

std::string_view to_string(ConnectivityRole role) {
  switch (role) {
    case ConnectivityRole::IpIp:
      return "IP-IP";
    case ConnectivityRole::IpDp:
      return "IP-DP";
    case ConnectivityRole::IpIm:
      return "IP-IM";
    case ConnectivityRole::DpDm:
      return "DP-DM";
    case ConnectivityRole::DpDp:
      return "DP-DP";
  }
  return "?";
}

std::optional<ConnectivityRole> connectivity_role_from_string(
    std::string_view text) {
  std::string upper(text);
  std::transform(upper.begin(), upper.end(), upper.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  for (ConnectivityRole role : kAllConnectivityRoles) {
    if (upper == to_string(role)) return role;
  }
  return std::nullopt;
}

std::string format_connectivity(SwitchKind kind, Multiplicity left,
                                Multiplicity right) {
  if (kind == SwitchKind::None) return "none";
  const char sep = kind == SwitchKind::Crossbar ? 'x' : '-';
  std::string out;
  out += to_symbol(left);
  out += sep;
  out += to_symbol(right);
  return out;
}

std::optional<SwitchKind> switch_kind_from_cell(std::string_view cell) {
  if (cell.empty()) return std::nullopt;
  std::string lower(cell);
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (lower == "none") return SwitchKind::None;

  // A cell is "<count><sep><count>"; the separator decides the kind.  We
  // scan for a separator that is not part of a count token.  Counts are
  // alphanumeric ('1', '64', 'n', 'm', 'v', and products like "24n");
  // note that 'x' only ever appears as the crossbar separator in the
  // paper's notation.
  const auto sep_pos = lower.find_first_of("x-");
  if (sep_pos == std::string::npos || sep_pos == 0 ||
      sep_pos + 1 >= lower.size()) {
    return std::nullopt;
  }
  const bool operands_ok = std::all_of(
      lower.begin(), lower.end(), [](unsigned char c) {
        return std::isalnum(c) || c == 'x' || c == '-';
      });
  if (!operands_ok) return std::nullopt;
  return lower[sep_pos] == 'x' ? SwitchKind::Crossbar : SwitchKind::Direct;
}

}  // namespace mpct
