#pragma once

#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace mpct {

/// Abstract multiplicity of a building block (IP, DP, IM, DM) in a
/// machine class.
///
/// Skillicorn's original taxonomy admits 0, 1 or n of each block; the
/// paper's extension adds 'v' — a *variable* number, meaning the fabric's
/// building blocks are finer than a whole IP/DP and can exchange roles on
/// reconfiguration (Section II-A).  The ordering
/// Zero < One < Many < Variable reflects increasing structural capability
/// and drives the flexibility monotonicity property.
enum class Multiplicity : std::uint8_t {
  Zero = 0,  ///< the block is absent (e.g. no IP in a data-flow machine)
  One = 1,   ///< exactly one instance, fixed at design time
  Many = 2,  ///< a design-time constant n > 1 (symbol 'n' or 'm')
  Variable = 3,  ///< 'v': count changes on reconfiguration, v >= 0
};

/// True for the multiplicities that score a flexibility point in the
/// paper's Table II scheme ("the presence of 'n' IPs or DPs each will get
/// 1 point"); Variable also counts since v subsumes n.
constexpr bool counts_as_many(Multiplicity m) {
  return m == Multiplicity::Many || m == Multiplicity::Variable;
}

/// Canonical one-character symbol used in the taxonomy tables:
/// "0", "1", "n" or "v".
std::string_view to_symbol(Multiplicity m);

/// Parse a table symbol ("0", "1", "n", "m", "v"); "m" is the second
/// symbolic constant the paper uses for RaPiD and maps to Many.
std::optional<Multiplicity> multiplicity_from_symbol(std::string_view s);

/// Human-readable name ("zero", "one", "many", "variable").
std::string_view to_string(Multiplicity m);

}  // namespace mpct
