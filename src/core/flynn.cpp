#include "core/flynn.hpp"

#include "core/classifier.hpp"
#include "core/taxonomy_table.hpp"

namespace mpct {

std::string_view to_string(FlynnClass f) {
  switch (f) {
    case FlynnClass::SISD:
      return "SISD";
    case FlynnClass::SIMD:
      return "SIMD";
    case FlynnClass::MISD:
      return "MISD";
    case FlynnClass::MIMD:
      return "MIMD";
  }
  return "?";
}

std::optional<FlynnClass> flynn_class(const MachineClass& mc) {
  // Flynn counts instruction streams: data-flow machines have none, and
  // a variable-count fabric has no fixed number to count.
  if (mc.granularity == Granularity::Lut) return std::nullopt;
  if (mc.ips == Multiplicity::Variable ||
      mc.dps == Multiplicity::Variable) {
    return std::nullopt;
  }
  if (mc.ips == Multiplicity::Zero) return std::nullopt;

  const bool multi_instruction = mc.ips == Multiplicity::Many;
  const bool multi_data = mc.dps == Multiplicity::Many;
  if (multi_instruction && multi_data) return FlynnClass::MIMD;
  if (multi_instruction) return FlynnClass::MISD;
  if (multi_data) return FlynnClass::SIMD;
  return FlynnClass::SISD;
}

std::optional<FlynnClass> flynn_class(const TaxonomicName& name) {
  const std::optional<MachineClass> mc = canonical_class(name);
  if (!mc) return std::nullopt;
  return flynn_class(*mc);
}

SkillicornProjection project_to_skillicorn(const MachineClass& mc) {
  SkillicornProjection projection;
  projection.projected = mc;
  if (mc.switch_at(ConnectivityRole::IpIp) != SwitchKind::None) {
    projection.projected.set_switch(ConnectivityRole::IpIp,
                                    SwitchKind::None);
    projection.required_extension = true;
  }
  if (mc.ips == Multiplicity::Variable) {
    projection.projected.ips = Multiplicity::Many;
    projection.required_extension = true;
  }
  if (mc.dps == Multiplicity::Variable) {
    projection.projected.dps = Multiplicity::Many;
    projection.required_extension = true;
  }
  if (mc.granularity == Granularity::Lut) {
    projection.projected.granularity = Granularity::IpDp;
    projection.required_extension = true;
  }
  return projection;
}

int extension_only_class_count() {
  int count = 0;
  for (const TaxonomyEntry& row : extended_taxonomy()) {
    if (project_to_skillicorn(row.machine).required_extension) ++count;
  }
  return count;
}

}  // namespace mpct
