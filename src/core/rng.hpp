#pragma once

#include <cstdint>

namespace mpct {

/// Small deterministic PRNG (xorshift64*, Vigna) shared by every seeded
/// sampler in the library: NoC traffic generation (interconnect/traffic),
/// fault sampling (fault/fault_model) and the randomised property tests.
/// One generator means one reproducibility contract: the same seed
/// produces the same stream bit-exactly on every platform — no dependence
/// on std::random distributions, whose outputs are implementation-defined.
///
/// Hoisted from interconnect/traffic so the fault engine does not have to
/// link the interconnect simulators to draw reproducible samples; the
/// algorithm and the zero-seed substitution constant are unchanged, so
/// pre-existing traffic streams are bit-identical for every seed
/// (tests/test_traffic.cpp pins the stream for the default seeds).
class Rng {
 public:
  explicit Rng(std::uint64_t seed)
      : state_(seed ? seed : 0x9e3779b97f4a7c15ULL) {}

  std::uint64_t next() {
    // xorshift64* (Vigna): passes BigCrush small-state tests, plenty for
    // workload generation and Monte-Carlo fault sampling.
    state_ ^= state_ >> 12;
    state_ ^= state_ << 25;
    state_ ^= state_ >> 27;
    return state_ * 0x2545F4914F6CDD1DULL;
  }

  /// Uniform integer in [0, bound).
  std::uint64_t next_below(std::uint64_t bound) {
    if (bound == 0) return 0;
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t limit = ~0ULL - ~0ULL % bound;
    std::uint64_t value = next();
    while (value >= limit) value = next();
    return value % bound;
  }

  /// Uniform double in [0, 1).
  double next_double() {
    // 53 high bits -> [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Seed for a statistically independent child stream: splitmix64
  /// finalisation over (base, stream).  Chunk-parallel Monte-Carlo sweeps
  /// seed every trial with derive_seed(base, trial_index), so the stream
  /// a trial consumes depends only on its index — never on which worker
  /// ran it or how the trial range was chunked (the thread-count
  /// invariance the fault curves are test-bound to).
  static std::uint64_t derive_seed(std::uint64_t base, std::uint64_t stream) {
    std::uint64_t z = base + 0x9e3779b97f4a7c15ULL * (stream + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

}  // namespace mpct
