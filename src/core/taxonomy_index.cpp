#include "core/taxonomy_index.hpp"

#include <cstring>

#include "core/classifier.hpp"
#include "core/flexibility.hpp"
#include "core/taxonomy_table.hpp"
#include "trace/trace.hpp"

namespace mpct {

namespace {

/// Diagnostic table; PackedResult::note indexes it.
constexpr std::array<std::string_view, 6> kNotes{
    std::string_view{},
    detail::kNoteVariableCounts,
    detail::kNoteNoDataProcessor,
    detail::kNoteDataFlowIpSide,
    detail::kNoteNotImplementable,
    detail::kNoteUnclassifiable,
};

std::uint8_t note_id(std::string_view note) {
  for (std::size_t i = 1; i < kNotes.size(); ++i) {
    if (kNotes[i] == note) return static_cast<std::uint8_t>(i);
  }
  return static_cast<std::uint8_t>(kNotes.size() - 1);  // unclassifiable
}

/// Table I serial of a canonical name, by arithmetic on the name alone
/// (the serial layout of the generated table: DUP, DMP I-IV, IUP,
/// IAP I-IV, NI x4, IMP I-XVI, ISP I-XVI, USP).  0 when non-canonical.
int name_serial(const TaxonomicName& name) {
  if (!combination_exists(name.machine_type, name.processing_type)) return 0;
  const int max_subtype =
      subtype_count(name.machine_type, name.processing_type);
  if (max_subtype == 1) {
    if (name.subtype != 0) return 0;
  } else if (name.subtype < 1 || name.subtype > max_subtype) {
    return 0;
  }

  switch (name.machine_type) {
    case MachineType::DataFlow:
      return name.processing_type == ProcessingType::UniProcessor
                 ? 1
                 : 1 + name.subtype;  // 2..5
    case MachineType::InstructionFlow:
      switch (name.processing_type) {
        case ProcessingType::UniProcessor:
          return 6;
        case ProcessingType::ArrayProcessor:
          return 6 + name.subtype;  // 7..10
        case ProcessingType::MultiProcessor:
          return 14 + name.subtype;  // 15..30
        case ProcessingType::SpatialProcessor:
          return 30 + name.subtype;  // 31..46
      }
      return 0;
    case MachineType::UniversalFlow:
      return 47;
  }
  return 0;
}

}  // namespace

std::uint32_t TaxonomyIndex::pack(const MachineClass& mc) {
  std::uint32_t key = static_cast<std::uint32_t>(mc.granularity) & 1u;
  key |= (static_cast<std::uint32_t>(mc.ips) & 3u) << 1;
  key |= (static_cast<std::uint32_t>(mc.dps) & 3u) << 3;
  for (std::size_t i = 0; i < kConnectivityRoleCount; ++i) {
    key |= (static_cast<std::uint32_t>(mc.switches[i]) & 3u) << (5 + 2 * i);
  }
  return key;
}

const TaxonomyIndex::ClassInfo* TaxonomyIndex::by_name(
    const TaxonomicName& name) const {
  const int serial = name_serial(name);
  return serial == 0 ? nullptr
                     : &rows_[static_cast<std::size_t>(serial - 1)];
}

TaxonomyIndex::FastClassification TaxonomyIndex::classify(
    const MachineClass& mc) const {
  // Count-only hook: this path is ~4 ns, so the budget is one relaxed
  // load and a predicted branch (bench_sweep guards the fast path).
  trace::profile_count(trace::ProfilePoint::ClassifyFast);
  const PackedResult result = classify_table_[pack(mc)];
  if (result.serial != 0) {
    return {&rows_[static_cast<std::size_t>(result.serial - 1)], {}};
  }
  return {nullptr, kNotes[result.note]};
}

TaxonomyIndex::TaxonomyIndex()
    : classify_table_(kKeySpace), canonical_serial_(kKeySpace, 0) {
  // 1. Flat row data + interned names, from the generated table.
  const std::span<const TaxonomyEntry> table = extended_taxonomy();
  for (const TaxonomyEntry& entry : table) {
    ClassInfo& info = rows_[static_cast<std::size_t>(entry.serial - 1)];
    info.machine = entry.machine;
    info.serial = static_cast<std::int16_t>(entry.serial);
    info.named = entry.name.has_value();
    info.implementable = entry.implementable;
    info.flexibility =
        static_cast<std::int8_t>(flexibility_score(entry.machine));
    if (entry.name) {
      info.name = *entry.name;
      const std::string rendered = to_string(*entry.name);
      char* slot = name_chars_.data() + (entry.serial - 1) * 8;
      std::memcpy(slot, rendered.data(), rendered.size());
      info.interned_name = std::string_view(slot, rendered.size());
    } else {
      info.interned_name = "NI";
    }
    canonical_serial_[pack(entry.machine)] =
        static_cast<std::uint8_t>(entry.serial);
  }

  // 2. Precompute classify() over the whole key space.  Keys whose
  // switch fields decode to no SwitchKind enumerator are unreachable
  // from real MachineClass values and stay "unclassifiable".
  const std::uint8_t unclassifiable = note_id(detail::kNoteUnclassifiable);
  for (std::uint32_t key = 0; key < kKeySpace; ++key) {
    PackedResult& result = classify_table_[key];
    MachineClass mc;
    mc.granularity = static_cast<Granularity>(key & 1u);
    mc.ips = static_cast<Multiplicity>((key >> 1) & 3u);
    mc.dps = static_cast<Multiplicity>((key >> 3) & 3u);
    bool valid = true;
    for (std::size_t i = 0; i < kConnectivityRoleCount; ++i) {
      const std::uint32_t kind = (key >> (5 + 2 * i)) & 3u;
      if (kind > static_cast<std::uint32_t>(SwitchKind::Crossbar)) {
        valid = false;
        break;
      }
      mc.switches[i] = static_cast<SwitchKind>(kind);
    }
    if (!valid) {
      result = {0, unclassifiable};
      continue;
    }
    const Classification ruled = detail::classify_by_rules(mc);
    if (ruled.name) {
      result = {static_cast<std::uint8_t>(name_serial(*ruled.name)), 0};
    } else {
      result = {0, note_id(ruled.note)};
    }
  }
}

const TaxonomyIndex& TaxonomyIndex::instance() {
  static const TaxonomyIndex index;
  return index;
}

}  // namespace mpct
