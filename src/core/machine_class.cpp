#include "core/machine_class.hpp"

#include <sstream>

namespace mpct {

std::string_view to_string(Granularity g) {
  switch (g) {
    case Granularity::IpDp:
      return "IP/DP";
    case Granularity::Lut:
      return "LUTs";
  }
  return "?";
}

namespace {

/// Multiplicities of the (left, right) endpoints of a connectivity role.
/// Memory multiplicities mirror their processor's multiplicity: the
/// taxonomy attaches one IM per IP and one DM per DP (Skillicorn's
/// convention; the paper keeps it implicit in cells like "n-n").
std::pair<Multiplicity, Multiplicity> endpoints(const MachineClass& mc,
                                                ConnectivityRole role) {
  switch (role) {
    case ConnectivityRole::IpIp:
      return {mc.ips, mc.ips};
    case ConnectivityRole::IpDp:
      return {mc.ips, mc.dps};
    case ConnectivityRole::IpIm:
      return {mc.ips, mc.ips};
    case ConnectivityRole::DpDm:
      return {mc.dps, mc.dps};
    case ConnectivityRole::DpDp:
      return {mc.dps, mc.dps};
  }
  return {Multiplicity::Zero, Multiplicity::Zero};
}

}  // namespace

std::string format_cell(const MachineClass& mc, ConnectivityRole role) {
  const auto [left, right] = endpoints(mc, role);
  return format_connectivity(mc.switch_at(role), left, right);
}

std::string to_string(const MachineClass& mc) {
  std::ostringstream os;
  os << to_string(mc.granularity) << " ips=" << to_symbol(mc.ips)
     << " dps=" << to_symbol(mc.dps) << " [";
  bool first = true;
  for (ConnectivityRole role : kAllConnectivityRoles) {
    if (!first) os << ' ';
    first = false;
    os << to_string(role) << ':' << format_cell(mc, role);
  }
  os << ']';
  return os.str();
}

std::size_t MachineClassHash::operator()(
    const MachineClass& mc) const noexcept {
  // Pack the whole class into 13 bits: 1 granularity, 2+2 multiplicities,
  // 2 bits per switch kind.
  std::size_t packed = static_cast<std::size_t>(mc.granularity);
  packed = packed << 2 | static_cast<std::size_t>(mc.ips);
  packed = packed << 2 | static_cast<std::size_t>(mc.dps);
  for (SwitchKind k : mc.switches) {
    packed = packed << 2 | static_cast<std::size_t>(k);
  }
  return std::hash<std::size_t>{}(packed);
}

}  // namespace mpct
