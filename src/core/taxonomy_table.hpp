#pragma once

#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/classifier.hpp"
#include "core/machine_class.hpp"
#include "core/naming.hpp"

namespace mpct {

/// One row of the extended taxonomy (Table I of the paper).
struct TaxonomyEntry {
  int serial = 0;  ///< "S.N" column, 1..47
  MachineClass machine;
  /// Taxonomic name; empty for the four not-implementable classes whose
  /// "Comments" cell reads "NI".
  std::optional<TaxonomicName> name;
  bool implementable = true;
  /// Section banner the row appears under, e.g.
  /// "Data Flow Machines -> Multi Processors".
  std::string_view section;

  /// "Comments" column text: the class name or "NI".
  std::string comment() const;
};

/// The full 47-row extended taxonomy table, generated (not transcribed):
/// the generator enumerates the multiplicity/connectivity space under the
/// structural rules of Section II and orders rows exactly as Table I.
/// The result is cached after the first call.
///
/// Thread safety: the cache is a function-local static (Meyers singleton;
/// C++11 guarantees exactly-once, race-free initialisation) and is
/// read-only afterwards.  All lookups below are const reads over it and
/// are safe to call from any number of threads concurrently — this is
/// the guarantee service::QueryEngine workers rely on.
std::span<const TaxonomyEntry> extended_taxonomy();

/// Look up the canonical row for a class name (nullptr if the name is not
/// canonical).
const TaxonomyEntry* find_entry(const TaxonomicName& name);

/// Look up a row by serial number 1..47 (nullptr out of range).
const TaxonomyEntry* find_entry(int serial);

/// Look up the row whose structure equals @p mc (nullptr if the structure
/// is not one of the 47 canonical rows).
const TaxonomyEntry* find_entry(const MachineClass& mc);

/// Number of implementable classes (47 minus the four NI rows).
int implementable_class_count();

}  // namespace mpct
