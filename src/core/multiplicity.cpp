#include "core/multiplicity.hpp"

namespace mpct {

std::string_view to_symbol(Multiplicity m) {
  switch (m) {
    case Multiplicity::Zero:
      return "0";
    case Multiplicity::One:
      return "1";
    case Multiplicity::Many:
      return "n";
    case Multiplicity::Variable:
      return "v";
  }
  return "?";
}

std::optional<Multiplicity> multiplicity_from_symbol(std::string_view s) {
  if (s == "0") return Multiplicity::Zero;
  if (s == "1") return Multiplicity::One;
  if (s == "n" || s == "m" || s == "N" || s == "M") return Multiplicity::Many;
  if (s == "v" || s == "V") return Multiplicity::Variable;
  return std::nullopt;
}

std::string_view to_string(Multiplicity m) {
  switch (m) {
    case Multiplicity::Zero:
      return "zero";
    case Multiplicity::One:
      return "one";
    case Multiplicity::Many:
      return "many";
    case Multiplicity::Variable:
      return "variable";
  }
  return "?";
}

}  // namespace mpct
