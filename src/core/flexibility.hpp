#pragma once

#include <string>

#include "core/machine_class.hpp"
#include "core/naming.hpp"

namespace mpct {

/// Itemised flexibility score of a machine class (Section III-B).
///
/// The paper's scoring system: one point if the machine has 'n' (or 'v')
/// instruction processors, one if it has 'n'/'v' data processors, one per
/// switch of type 'x' (crossbar), and one extra point for universal-flow
/// machines "because of 'variable number' of IPs and DPs".  The result
/// ranks classes from 0 (ASIC-like IUP/DUP) to 8 (FPGA/USP).
struct FlexibilityBreakdown {
  int many_ips = 0;          ///< 1 if IP multiplicity is n or v
  int many_dps = 0;          ///< 1 if DP multiplicity is n or v
  int crossbar_switches = 0; ///< number of 'x' connectivity columns
  int variability_bonus = 0; ///< 1 for universal-flow (LUT-grain) fabrics

  int total() const {
    return many_ips + many_dps + crossbar_switches + variability_bonus;
  }

  /// Readable derivation, e.g. "1(nIP) + 1(nDP) + 4(x) = 6".
  std::string to_string() const;

  friend bool operator==(const FlexibilityBreakdown&,
                         const FlexibilityBreakdown&) = default;
};

/// Score a machine structure.
FlexibilityBreakdown flexibility(const MachineClass& mc);

/// Total score directly.
inline int flexibility_score(const MachineClass& mc) {
  return flexibility(mc).total();
}

/// The "(+k)" category offset printed in Table II's section headers: the
/// non-switch part of the score shared by every member of the category
/// (Data Flow Uni +0, Data Flow Multi +1, Instruction Uni +0, Array +1,
/// Instruction Multi +2, Universal +3).
int category_offset(const TaxonomicName& name);

/// Flexibility of a canonical named class (Table II lookup, computed
/// rather than transcribed).  Throws std::invalid_argument for
/// non-canonical names.
int flexibility_of(const TaxonomicName& name);

/// Whether two classes' flexibility values are comparable under the
/// paper's semantics: data-flow and instruction-flow numbers cannot be
/// compared against each other, but both compare against universal flow
/// (Section III-B, last paragraph).
bool flexibility_comparable(MachineType a, MachineType b);

}  // namespace mpct
