#include "core/hierarchy.hpp"

#include <array>
#include <sstream>

#include "core/taxonomy_table.hpp"

namespace mpct {

namespace {

constexpr std::array<MachineType, 3> kMachineTypes{
    MachineType::DataFlow, MachineType::InstructionFlow,
    MachineType::UniversalFlow};
constexpr std::array<ProcessingType, 4> kProcessingTypes{
    ProcessingType::UniProcessor, ProcessingType::ArrayProcessor,
    ProcessingType::MultiProcessor, ProcessingType::SpatialProcessor};

std::string class_range_label(const std::vector<TaxonomicName>& classes) {
  if (classes.empty()) return "";
  if (classes.size() == 1) return to_string(classes.front());
  return to_string(classes.front()) + ".." + to_string(classes.back());
}

void render(const HierarchyNode& node, const std::string& prefix,
            bool is_last, bool is_root, std::ostream& os) {
  os << prefix;
  if (!is_root) os << (is_last ? "`-- " : "|-- ");
  os << node.label;
  if (!node.classes.empty()) {
    os << ": " << class_range_label(node.classes) << " ("
       << node.classes.size()
       << (node.classes.size() == 1 ? " class)" : " classes)");
  }
  os << '\n';
  const std::string child_prefix =
      is_root ? prefix : prefix + (is_last ? "    " : "|   ");
  for (std::size_t i = 0; i < node.children.size(); ++i) {
    render(node.children[i], child_prefix, i + 1 == node.children.size(),
           false, os);
  }
}

}  // namespace

HierarchyNode machine_hierarchy() {
  HierarchyNode root;
  root.label = "Computing Machines";
  for (MachineType mt : kMachineTypes) {
    HierarchyNode mt_node;
    mt_node.label = std::string(to_string(mt));
    for (ProcessingType pt : kProcessingTypes) {
      if (!combination_exists(mt, pt)) continue;
      HierarchyNode pt_node;
      pt_node.label = mt == MachineType::UniversalFlow
                          ? "Spatial Computing"
                          : std::string(to_string(pt));
      for (const TaxonomyEntry& row : extended_taxonomy()) {
        if (row.name && row.name->machine_type == mt &&
            row.name->processing_type == pt) {
          pt_node.classes.push_back(*row.name);
        }
      }
      if (!pt_node.classes.empty()) {
        mt_node.children.push_back(std::move(pt_node));
      }
    }
    root.children.push_back(std::move(mt_node));
  }
  return root;
}

std::string render_hierarchy(const HierarchyNode& root) {
  std::ostringstream os;
  render(root, "", true, true, os);
  return os.str();
}

std::vector<std::string> hierarchy_path(const TaxonomicName& name) {
  std::vector<std::string> path;
  path.emplace_back("Computing Machines");
  path.emplace_back(to_string(name.machine_type));
  path.emplace_back(name.machine_type == MachineType::UniversalFlow
                        ? "Spatial Computing"
                        : std::string(to_string(name.processing_type)));
  path.emplace_back(to_string(name));
  return path;
}

}  // namespace mpct
