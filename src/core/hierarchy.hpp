#pragma once

#include <string>
#include <vector>

#include "core/naming.hpp"

namespace mpct {

/// The hierarchy of computing machines of Figure 2: Computing Machines ->
/// Machine Type -> Processing Type -> named classes.
struct HierarchyNode {
  std::string label;
  /// Class names at this leaf level (empty on interior nodes).
  std::vector<TaxonomicName> classes;
  std::vector<HierarchyNode> children;
};

/// Build the full hierarchy tree (Fig. 2), derived from the canonical
/// taxonomy table so it stays consistent with Table I by construction.
HierarchyNode machine_hierarchy();

/// Render a tree as ASCII art with box-drawing characters, one node per
/// line; leaf class lists print as "DMP-I..DMP-IV" style ranges.
std::string render_hierarchy(const HierarchyNode& root);

/// Path of a class name through the hierarchy, e.g.
/// {"Computing Machines", "Instruction Flow", "Multi Processor",
///  "IMP-III"}.
std::vector<std::string> hierarchy_path(const TaxonomicName& name);

}  // namespace mpct
