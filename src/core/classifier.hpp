#pragma once

#include <optional>
#include <string>

#include "core/machine_class.hpp"
#include "core/naming.hpp"

namespace mpct {

/// Result of mapping a machine structure onto the extended taxonomy.
///
/// Classes 11-14 of Table I (many IPs driving a single DP) are structurally
/// enumerable but "practically not implementable (NI)" per Section
/// II-C.2b; for those `implementable` is false and `name` is empty.
/// Structures outside the taxonomy entirely (e.g. zero processors) yield
/// an empty name with an explanatory note.
struct Classification {
  std::optional<TaxonomicName> name;
  bool implementable = true;
  std::string note;  ///< empty on clean classifications

  bool ok() const { return name.has_value(); }

  friend bool operator==(const Classification&,
                         const Classification&) = default;
};

/// Classify a machine structure into its taxonomic name.
///
/// The rules follow Section II-C:
///  * LUT-granularity fabrics are Universal Flow Spatial Processors (USP).
///  * No IP -> Data Flow; one IP -> Uni/Array; many IPs -> Multi/Spatial.
///  * IP-IP connectivity of any kind turns a multiprocessor into a
///    spatial processor (classes 31-46).
///  * The sub-type numeral encodes which of the relevant connectivity
///    columns are crossbars: for DMP/IAP, bits (DP-DM, DP-DP); for
///    IMP/ISP, bits (IP-DP, IP-IM, DP-DM, DP-DP), most significant first,
///    numbered from I.
///
/// Thread safety: classify keeps no mutable state of its own; the only
/// shared data it (and canonical_class below) reaches is the taxonomy
/// table singleton, whose initialise-once/read-only guarantee is
/// documented in core/taxonomy_table.hpp.  Safe for concurrent callers.
Classification classify(const MachineClass& mc);

/// Sub-type numeral (1-based) from the crossbar pattern of an array or
/// data-flow multi processor: bits (DP-DM, DP-DP).
int array_subtype(SwitchKind dp_dm, SwitchKind dp_dp);

/// Sub-type numeral (1-based) from the crossbar pattern of a multi or
/// spatial processor: bits (IP-DP, IP-IM, DP-DM, DP-DP).
int multi_subtype(SwitchKind ip_dp, SwitchKind ip_im, SwitchKind dp_dm,
                  SwitchKind dp_dp);

/// Reconstruct the canonical Table I structure for a taxonomic name
/// (inverse of classify on the 43 implementable canonical classes).
/// Returns std::nullopt if the name does not denote a canonical class.
std::optional<MachineClass> canonical_class(const TaxonomicName& name);

namespace detail {

/// The Section II-C decision rules, evaluated directly (no precomputed
/// table).  This is the reference implementation the TaxonomyIndex is
/// built from; `classify()` answers from the index instead.  Also used
/// by the table generator, which must run before the index exists.
Classification classify_by_rules(const MachineClass& mc);

/// Rule-based inverse, used by the Table I generator (the public
/// `canonical_class` answers from the index, which the generator feeds —
/// routing the generator through it would be circular).
std::optional<MachineClass> canonical_class_by_rules(
    const TaxonomicName& name);

// Diagnostics classify() attaches to unclassifiable structures.  Static
// so the index can hand them out as string_views without copying.
inline constexpr std::string_view kNoteVariableCounts =
    "variable IP/DP counts require LUT granularity (only universal "
    "flow fabrics can re-role their blocks)";
inline constexpr std::string_view kNoteNoDataProcessor =
    "a machine with no data processor computes nothing";
inline constexpr std::string_view kNoteDataFlowIpSide =
    "data flow machine has IP-side connectivity but no IP";
inline constexpr std::string_view kNoteNotImplementable =
    "n instruction processors driving a single data processor "
    "is not implementable (Table I classes 11-14, 'NI')";
inline constexpr std::string_view kNoteUnclassifiable =
    "unclassifiable structure";

}  // namespace detail

}  // namespace mpct
