#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "core/machine_class.hpp"
#include "core/naming.hpp"

namespace mpct {

/// Dense, immutable index over the 47-class extended taxonomy — the
/// allocation-free fast path under `classify()`, `canonical_class()` and
/// the `find_entry()` lookups.
///
/// Built once at first touch from the same structural rules as
/// `extended_taxonomy()`:
///  * every canonical row's name is rendered once and interned, so hot
///    paths hand out `string_view`s instead of formatting strings;
///  * flexibility scores are precomputed per row (Table II without the
///    per-call switch walk);
///  * a `MachineClass` packs into a 15-bit structural key (granularity,
///    two multiplicities, five switch kinds), and two dense tables over
///    that key space precompute (a) the classification of *every*
///    possible structure and (b) the canonical-row match, making
///    `classify()` and structure lookup single loads.
///
/// Thread safety: the instance is a function-local static (Meyers
/// singleton, exactly-once initialisation) and strictly read-only
/// afterwards — the same const-read guarantee core/taxonomy_table.hpp
/// documents, which service::QueryEngine workers and the parallel sweep
/// rely on.
class TaxonomyIndex {
 public:
  /// Number of rows in Table I.
  static constexpr int kRowCount = 47;

  /// One taxonomy row in index form: everything the hot paths need,
  /// precomputed and flat.
  struct ClassInfo {
    TaxonomicName name{};    ///< meaningful only when `named`
    MachineClass machine;    ///< canonical Table I structure
    std::int16_t serial = 0; ///< 1..47, Table I order
    bool named = false;      ///< false for the four NI rows
    bool implementable = false;
    std::int8_t flexibility = 0;  ///< Table II score of `machine`
    /// Rendered class name ("DMP-III", "USP"), interned in the index;
    /// "NI" for the not-implementable rows.  Valid for the process
    /// lifetime.
    std::string_view interned_name;
  };

  /// Allocation-free classification result.  `info` points at the
  /// canonical row carrying the resulting name (so the caller gets the
  /// interned name and precomputed flexibility for free); null when the
  /// structure has no taxonomic name, with `note` referencing a static
  /// diagnostic.
  struct FastClassification {
    const ClassInfo* info = nullptr;
    std::string_view note;  ///< static storage; empty on success

    bool ok() const { return info != nullptr; }
  };

  static const TaxonomyIndex& instance();

  TaxonomyIndex(const TaxonomyIndex&) = delete;
  TaxonomyIndex& operator=(const TaxonomyIndex&) = delete;

  /// All 47 rows in Table I order.
  std::span<const ClassInfo> rows() const { return rows_; }

  /// Row by serial 1..47 (nullptr out of range).
  const ClassInfo* by_serial(int serial) const {
    if (serial < 1 || serial > kRowCount) return nullptr;
    return &rows_[static_cast<std::size_t>(serial - 1)];
  }

  /// Canonical row for a taxonomic name — O(1) arithmetic on the name,
  /// no scan.  nullptr when the name is not canonical.
  const ClassInfo* by_name(const TaxonomicName& name) const;

  /// Row whose canonical structure equals @p mc exactly — one table
  /// load.  nullptr when the structure is not one of the 47 rows.
  const ClassInfo* by_structure(const MachineClass& mc) const {
    return by_serial(canonical_serial_[pack(mc)]);
  }

  /// Classify any structure — one table load, no formatting, no
  /// allocation.  Same decision rules as `mpct::classify()` (which is a
  /// wrapper over this).
  FastClassification classify(const MachineClass& mc) const;

  /// Interned rendering of a canonical name; empty view when the name is
  /// not canonical.
  std::string_view interned_name(const TaxonomicName& name) const {
    const ClassInfo* info = by_name(name);
    return info ? info->interned_name : std::string_view{};
  }

 private:
  TaxonomyIndex();

  /// 15-bit structural key: granularity (1 bit) | ips (2) | dps (2) |
  /// five switch kinds (2 each, ConnectivityRole order).
  static constexpr std::size_t kKeySpace = std::size_t{1} << 15;
  static std::uint32_t pack(const MachineClass& mc);

  /// Table I serial (1..47) of the row carrying the name `classify`
  /// produces for each key; 0 when classification fails, with `note`
  /// indexing the static diagnostic table.
  struct PackedResult {
    std::uint8_t serial = 0;
    std::uint8_t note = 0;
  };

  std::array<ClassInfo, kRowCount> rows_{};
  /// Backing store for the interned names (max 7 chars each).
  std::array<char, kRowCount * 8> name_chars_{};
  std::vector<PackedResult> classify_table_;   ///< kKeySpace entries
  std::vector<std::uint8_t> canonical_serial_; ///< kKeySpace entries
};

/// Convenience accessor mirroring `extended_taxonomy()`.
inline const TaxonomyIndex& taxonomy_index() {
  return TaxonomyIndex::instance();
}

/// Allocation-free single-point classify — the hot-path entry the
/// service and sweep layers use.
inline TaxonomyIndex::FastClassification classify_fast(
    const MachineClass& mc) {
  return TaxonomyIndex::instance().classify(mc);
}

}  // namespace mpct
