#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "trace/export.hpp"

namespace mpct::trace {

/// What the collector has absorbed so far (monotonic counters; the
/// serving side mirrors them into the `trace_*` Prometheus block).
struct CollectorStats {
  std::uint64_t batches = 0;
  std::uint64_t spans = 0;
  std::uint64_t dropped = 0;  ///< sender-reported losses, summed
  std::uint32_t nodes = 0;
  /// Retention evictions (whole traces aged out by the span cap).
  /// Distinct from `dropped`, which counts spans the *senders* shed
  /// before they ever reached this collector.
  std::uint64_t evicted_traces = 0;
  std::uint64_t evicted_spans = 0;
};

/// Fleet-side trace assembler: many servers stream SpanBatches at one
/// Collector, which groups spans by trace id, aligns per-node clocks,
/// and renders one Chrome/Perfetto timeline in which a request's hops
/// across the fleet sit on a common time axis.
///
/// Clock model: every node's span times are relative to its own tracer
/// epoch.  Each batch carries the sender's clock at send time; the
/// collector pairs that with its own clock at receive time and keeps,
/// per node, the *minimum* observed (receive - send) delta — the
/// batch that crossed the wire fastest bounds the epoch offset most
/// tightly (standard one-way-delay-minimum alignment).  Rendered span
/// times are node time + that offset, i.e. collector time.
///
/// Retention: the span store is bounded by max_spans.  When an ingest
/// pushes the store past the cap, whole traces are evicted oldest-first
/// (by first-arrival order) until it fits again — never span-by-span,
/// so a retained trace is always complete and still assembles.
/// Eviction stops early when only one trace remains, so a single trace
/// larger than the cap stays resident (the cap is soft by at most one
/// trace).  Evictions are counted in
/// CollectorStats::evicted_{traces,spans}; the monotonic batches/spans
/// counters keep counting everything ingested.
///
/// Thread-safe: ingest() may be called from server callback threads
/// while stats()/assemble() run elsewhere.
class Collector {
 public:
  /// @p max_spans bounds the resident span store (0 = unbounded, the
  /// pre-retention behaviour).
  explicit Collector(std::size_t max_spans = 0) : max_spans_(max_spans) {}

  /// Absorb one batch. @p recv_ns is the collector's own monotonic
  /// clock when the batch arrived (Tracer::instance().now_ns() of the
  /// collecting process, or any fixed-epoch ns clock).
  void ingest(const SpanBatch& batch, std::int64_t recv_ns);

  CollectorStats stats() const;

  /// Spans currently resident (after retention), not the monotonic
  /// ingested count.
  std::size_t resident_spans() const;

  std::size_t max_spans() const { return max_spans_; }

  /// Every trace id seen, ascending.
  std::vector<std::uint64_t> trace_ids() const;

  /// How many distinct nodes contributed spans to @p trace_id.
  std::size_t node_count(std::uint64_t trace_id) const;

  /// The trace id touching the most nodes (ties: more spans, then the
  /// smaller id); 0 when nothing has been ingested.  The cross-fleet
  /// demo uses this to pick the timeline worth writing.
  std::uint64_t richest_trace() const;

  /// One Chrome-loadable timeline for @p trace_id: each node becomes a
  /// pid with a process_name metadata record, spans land clock-aligned.
  /// Empty string when the trace is unknown.  Deterministic for fixed
  /// ingested content.
  std::string assemble(std::uint64_t trace_id) const;

  /// Every span from every node on one timeline (trace filter off).
  std::string assemble_all() const;

 private:
  struct NodeState {
    std::uint32_t pid = 0;          ///< stable per-node Chrome pid (1-based)
    std::int64_t offset_ns = 0;     ///< best (recv - send) estimate
    bool offset_set = false;
  };

  /// Spans of one node, in arrival order, plus where they came from.
  struct StoredSpan {
    ExportSpan span;
    std::uint32_t pid = 0;
  };

  std::string render(const std::vector<const StoredSpan*>& spans) const;

  /// Drop whole traces oldest-first until the store fits max_spans_
  /// again (or a single trace remains).  Caller holds mutex_.
  void enforce_retention_locked();

  const std::size_t max_spans_;

  mutable std::mutex mutex_;
  std::map<std::string, NodeState> nodes_;  ///< name -> state
  /// Resident spans keyed by a monotonic arrival sequence — a map (not
  /// a vector) so retention can drop arbitrary traces without
  /// invalidating the indices by_trace_ holds.
  std::map<std::uint64_t, StoredSpan> spans_;
  std::map<std::uint64_t, std::vector<std::uint64_t>> by_trace_;
  /// Trace ids in first-arrival order — the retention eviction queue.
  std::vector<std::uint64_t> trace_order_;
  std::uint64_t next_seq_ = 0;
  CollectorStats stats_;
};

}  // namespace mpct::trace
