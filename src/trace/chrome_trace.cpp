#include "trace/chrome_trace.hpp"

#include <cinttypes>
#include <cstdio>

namespace mpct::trace {

namespace detail {

/// Escape for a JSON string literal.  Span names are static identifiers
/// under our control, but the exporter must never emit a malformed
/// document whatever an instrumentation site passes.
void append_json_escaped(std::string& out, const char* text) {
  if (text == nullptr) return;
  for (const char* p = text; *p != '\0'; ++p) {
    const char c = *p;
    switch (c) {
      case '"':  out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
}

/// ns -> fractional microseconds with fixed 3 decimals.
void append_json_us(std::string& out, std::int64_t ns) {
  char buffer[48];
  std::snprintf(buffer, sizeof(buffer), "%" PRId64 ".%03d", ns / 1000,
                static_cast<int>(ns % 1000));
  out += buffer;
}

}  // namespace detail

namespace {

using detail::append_json_escaped;
using detail::append_json_us;

}  // namespace

std::string to_chrome_json(const TraceSnapshot& snapshot) {
  std::string out;
  out.reserve(64 + snapshot.spans.size() * 144);
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const Span& span : snapshot.spans) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"";
    append_json_escaped(out, span.name);
    out += "\",\"cat\":\"";
    out += to_string(span.category);
    if (span.instant()) {
      out += "\",\"ph\":\"i\",\"s\":\"t\",\"ts\":";
      append_json_us(out, span.start_ns);
    } else {
      out += "\",\"ph\":\"X\",\"ts\":";
      append_json_us(out, span.start_ns);
      out += ",\"dur\":";
      append_json_us(out, span.dur_ns);
    }
    char buffer[96];
    std::snprintf(buffer, sizeof(buffer),
                  ",\"pid\":1,\"tid\":%u,\"args\":{\"span\":%" PRIu64
                  ",\"parent\":%" PRIu64,
                  span.thread, span.id, span.parent);
    out += buffer;
    if (span.trace_id != 0) {
      std::snprintf(buffer, sizeof(buffer), ",\"trace\":%" PRIu64,
                    span.trace_id);
      out += buffer;
    }
    if (span.arg_name != nullptr) {
      out += ",\"";
      append_json_escaped(out, span.arg_name);
      std::snprintf(buffer, sizeof(buffer), "\":%" PRId64, span.arg);
      out += buffer;
    }
    out += "}}";
  }
  out += "]}";
  return out;
}

}  // namespace mpct::trace
