#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "trace/trace.hpp"

namespace mpct::trace {

/// Minimal Prometheus text-exposition (version 0.0.4) writer.
///
/// Lives in src/trace (not src/service) so the dependency arrow keeps
/// pointing downward: service::MetricsRegistry::to_prometheus() renders
/// itself through this builder, and this library never sees a service
/// type.
///
/// Usage per metric family: header() once (emits `# HELP` / `# TYPE`),
/// then one sample() per time series.  Histograms are emitted with
/// explicit `_bucket{le="..."}` / `_sum` / `_count` samples by the
/// caller; bucket `le` bounds are *inclusive* upper bounds per the
/// exposition format, and counts are cumulative.
///
/// Deterministic: fixed formatting (integers exact, doubles `%.9g`,
/// `+Inf` for the unbounded bucket); output depends only on the call
/// sequence.
class PromWriter {
 public:
  enum class Type { Counter, Gauge, Histogram };

  /// `# HELP name help` and `# TYPE name <type>` lines.
  void header(std::string_view name, Type type, std::string_view help);

  /// `name{labels} <value>` — pass labels pre-rendered without braces
  /// (e.g. `type="sweep",le="0.001"`), empty for none.
  void sample(std::string_view name, std::string_view labels, double value);
  void sample(std::string_view name, std::string_view labels,
              std::uint64_t value);

  /// `name{...,le="+Inf"} <value>` convenience for the unbounded bucket.
  void inf_bucket(std::string_view name, std::string_view labels,
                  std::uint64_t cumulative);

  const std::string& str() const { return out_; }

 private:
  void sample_prefix(std::string_view name, std::string_view labels);
  std::string out_;
};

/// Render the Tracer's aggregate profile totals
/// (mpct_profile_calls_total / mpct_profile_ns_total per ProfilePoint).
void render_profile(PromWriter& writer, const TraceSnapshot& snapshot);

}  // namespace mpct::trace
