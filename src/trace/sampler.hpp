#pragma once

#include <cstdint>
#include <cstring>
#include <string_view>

#include "trace/trace.hpp"

namespace mpct::trace {

/// When tracing stays on under full production load, exporting every
/// span of every request is unaffordable — but dropping uniformly at
/// random hides exactly the requests worth looking at.  SamplerPolicy
/// combines the two classic answers:
///
///  * **Head sampling** decides per trace id, *deterministically*:
///    `head_keep()` hashes the trace id (splitmix64) against the keep
///    probability, so every server in the fleet makes the same keep /
///    drop call for the same trace without any coordination — a kept
///    trace is kept *everywhere* and assembles into a complete
///    cross-fleet timeline, never a partial one.
///  * **Tail triggers** force-keep traces that turn out to be
///    interesting after the fact: any span batch containing an error,
///    a deadline expiry, a hedge, a failover, or a span slower than
///    `slow_span_ns` marks its trace kept regardless of the head
///    decision (the exporter holds a bounded set of force-kept ids so
///    later batches of the same trace follow).
struct SamplerPolicy {
  enum class Mode : std::uint8_t {
    Always,         ///< keep every trace (tests, demos)
    Probabilistic,  ///< keep `probability` of traces, by trace-id hash
    Never,          ///< head-keep nothing; tail triggers still fire
  };

  Mode mode = Mode::Always;
  /// Probabilistic keep fraction in [0, 1]; 0.01 = 1% of traces.
  double probability = 0.01;
  /// Tail trigger: any span at least this slow force-keeps its trace
  /// (0 disables the latency trigger).  Feed it the live p99.
  std::int64_t slow_span_ns = 0;

  static SamplerPolicy always() { return SamplerPolicy{}; }
  static SamplerPolicy probabilistic(double p) {
    SamplerPolicy policy;
    policy.mode = Mode::Probabilistic;
    policy.probability = p;
    return policy;
  }
};

/// splitmix64 finalizer: maps a trace id to a uniform 64-bit value.
/// Stateless and portable, so every process computes the same hash.
inline std::uint64_t mix_trace_id(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// The head decision for @p trace_id under @p policy.  Pure function of
/// its arguments — the fleet-wide determinism the sampler promises is
/// exactly this purity (tests pin it).
bool head_keep(const SamplerPolicy& policy, std::uint64_t trace_id);

/// Whether @p span fires a tail trigger under @p policy: error /
/// deadline-expiry / hedge / failover instants by name, or a duration
/// at or above `slow_span_ns`.
bool tail_trigger(const SamplerPolicy& policy, const Span& span);

}  // namespace mpct::trace
