#include "trace/prometheus.hpp"

#include <cinttypes>
#include <cstdio>

namespace mpct::trace {

namespace {

std::string_view type_name(PromWriter::Type type) {
  switch (type) {
    case PromWriter::Type::Counter:   return "counter";
    case PromWriter::Type::Gauge:     return "gauge";
    case PromWriter::Type::Histogram: return "histogram";
  }
  return "untyped";
}

}  // namespace

void PromWriter::header(std::string_view name, Type type,
                        std::string_view help) {
  out_ += "# HELP ";
  out_ += name;
  out_ += ' ';
  out_ += help;
  out_ += "\n# TYPE ";
  out_ += name;
  out_ += ' ';
  out_ += type_name(type);
  out_ += '\n';
}

void PromWriter::sample_prefix(std::string_view name,
                               std::string_view labels) {
  out_ += name;
  if (!labels.empty()) {
    out_ += '{';
    out_ += labels;
    out_ += '}';
  }
  out_ += ' ';
}

void PromWriter::sample(std::string_view name, std::string_view labels,
                        double value) {
  sample_prefix(name, labels);
  char buffer[48];
  std::snprintf(buffer, sizeof(buffer), "%.9g", value);
  out_ += buffer;
  out_ += '\n';
}

void PromWriter::sample(std::string_view name, std::string_view labels,
                        std::uint64_t value) {
  sample_prefix(name, labels);
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%" PRIu64, value);
  out_ += buffer;
  out_ += '\n';
}

void PromWriter::inf_bucket(std::string_view name, std::string_view labels,
                            std::uint64_t cumulative) {
  std::string with_inf(labels);
  if (!with_inf.empty()) with_inf += ',';
  with_inf += "le=\"+Inf\"";
  sample(name, with_inf, cumulative);
}

void render_profile(PromWriter& writer, const TraceSnapshot& snapshot) {
  writer.header("mpct_profile_calls_total", PromWriter::Type::Counter,
                "Hot-path profiling hook call counts (trace::ProfilePoint).");
  for (std::size_t p = 0; p < kProfilePointCount; ++p) {
    std::string labels = "point=\"";
    labels += to_string(static_cast<ProfilePoint>(p));
    labels += '"';
    writer.sample("mpct_profile_calls_total", labels,
                  snapshot.profile[p].calls);
  }
  writer.header("mpct_profile_ns_total", PromWriter::Type::Counter,
                "Cumulative nanoseconds inside timed profiling hooks "
                "(0 for count-only points).");
  for (std::size_t p = 0; p < kProfilePointCount; ++p) {
    std::string labels = "point=\"";
    labels += to_string(static_cast<ProfilePoint>(p));
    labels += '"';
    writer.sample("mpct_profile_ns_total", labels,
                  static_cast<std::uint64_t>(
                      snapshot.profile[p].total_ns < 0
                          ? 0
                          : snapshot.profile[p].total_ns));
  }
}

}  // namespace mpct::trace
