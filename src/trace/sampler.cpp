#include "trace/sampler.hpp"

namespace mpct::trace {

bool head_keep(const SamplerPolicy& policy, std::uint64_t trace_id) {
  switch (policy.mode) {
    case SamplerPolicy::Mode::Always:
      return true;
    case SamplerPolicy::Mode::Never:
      return false;
    case SamplerPolicy::Mode::Probabilistic:
      break;
  }
  if (policy.probability >= 1.0) return true;
  if (policy.probability <= 0.0) return false;
  // Compare the hash against the probability as a fixed fraction of the
  // 64-bit space.  The multiplication is exact for any probability a
  // double can hold, so every node lands on the same side.
  const double threshold =
      policy.probability * 18446744073709551616.0;  // 2^64
  return static_cast<double>(mix_trace_id(trace_id)) < threshold;
}

bool tail_trigger(const SamplerPolicy& policy, const Span& span) {
  if (policy.slow_span_ns > 0 && !span.instant() &&
      span.dur_ns >= policy.slow_span_ns) {
    return true;
  }
  if (span.name == nullptr) return false;
  const std::string_view name(span.name);
  return name == "deadline.expired" || name == "request.failed" ||
         name == "cluster.hedge" || name == "cluster.failover";
}

}  // namespace mpct::trace
