#include "trace/export.hpp"

namespace mpct::trace {

bool ExportFilter::keep(std::uint64_t trace_id) const {
  if (forced_.count(trace_id) != 0) return true;
  return head_keep(policy_, trace_id);
}

std::vector<ExportSpan> ExportFilter::apply(const std::vector<Span>& spans) {
  // Pass 1: tail triggers anywhere in the batch force-keep their trace,
  // including spans of the same trace recorded *before* the trigger.
  for (const Span& span : spans) {
    if (tail_trigger(policy_, span)) {
      if (forced_.size() >= kMaxForced) forced_.clear();
      forced_.insert(span.trace_id);
    }
  }
  // Pass 2: convert the keepers.
  std::vector<ExportSpan> kept;
  for (const Span& span : spans) {
    if (keep(span.trace_id)) {
      kept.push_back(ExportSpan::of(span));
    } else {
      ++sampled_out_;
    }
  }
  return kept;
}

}  // namespace mpct::trace
